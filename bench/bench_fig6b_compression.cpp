// Fig. 6b: Compression factor.
//
// "For data compression, HV dimensionality (Dhv=2048) was maintained ...
//  Data compression varied between 24x to 108x across datasets."
//
// Two views: (a) the five paper datasets via their published size/spectrum
// ratios (raw peak bytes vs 256 B per HV), and (b) a measured value from the
// actual pipeline on synthetic data.
#include <iostream>

#include "bench_common.hpp"
#include "core/spechd.hpp"
#include "hdc/encoder.hpp"
#include "ms/datasets.hpp"
#include "ms/synthetic.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace spechd;
  using text_table = spechd::text_table;

  const auto opts = spechd::bench::parse_options(argc, argv);

  text_table table("Fig. 6b — compression factor per dataset (D_hv = 2048, 256 B/HV)");
  table.set_header({"PRIDE ID", "avg peaks/spectrum", "raw peak B/spectrum",
                    "compression (model)"});
  for (const auto& ds : ms::paper_datasets()) {
    // Raw profile data stores every acquired peak; the paper's raw sizes
    // imply the avg peak counts recorded in the descriptor.
    const double raw_bytes = ds.avg_peaks_per_spectrum * 12.0;
    const double factor = raw_bytes / 256.0;
    table.add_row({std::string(ds.pride_id), text_table::num(ds.avg_peaks_per_spectrum, 0),
                   text_table::num(raw_bytes, 0), text_table::num(factor, 1)});
  }
  table.print(std::cout);
  std::cout << "paper range: 24x - 108x\n\n";

  // Measured on the real pipeline.
  const auto data = ms::generate_dataset(spechd::bench::synthetic_workload(100));
  core::spechd_pipeline pipeline(spechd::bench::pipeline_config(opts));
  const auto result = pipeline.run(data.spectra);

  text_table measured("Measured on synthetic data (full pipeline)");
  measured.set_header({"spectra", "encoded", "compression factor"});
  measured.add_row({text_table::num(data.spectra.size()),
                    text_table::num(result.encoded_spectra),
                    text_table::num(result.compression_factor, 1)});
  measured.print(std::cout);
  std::cout << "\n(Synthetic spectra carry ~top-50 peaks only, so the measured factor\n"
               "sits below the profile-data figures of Fig. 6b; the model column above\n"
               "uses the paper's raw bytes/spectrum.)\n";
  return 0;
}
