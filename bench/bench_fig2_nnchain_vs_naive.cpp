// Fig. 2: Comparison between Naive and NN-chain HAC.
//
// Measures wall-clock of both algorithms over growing problem sizes with
// google-benchmark, prints the operation-count comparison that explains
// the gap (naive rescans the whole matrix after every merge; NN-chain does
// amortised O(n) work per merge), and records merges/sec of the
// kernel-backed flat NN-chain vs the pre-kernel condensed implementation
// into BENCH_fig2_nnchain.json (--json=PATH overrides the output path).
#include <benchmark/benchmark.h>

#include <iostream>
#include <limits>

#include "bench_common.hpp"
#include "cluster/naive_hac.hpp"
#include "cluster/nn_chain.hpp"
#include "hdc/distance.hpp"
#include "util/bench_json.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

spechd::hdc::distance_matrix_f32 random_matrix(std::size_t n, std::uint64_t seed) {
  spechd::xoshiro256ss rng(seed);
  spechd::hdc::distance_matrix_f32 m(n);
  for (std::size_t i = 1; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      m.at(i, j) = static_cast<float>(rng.uniform(0.01, 1.0));
    }
  }
  return m;
}

void bm_nn_chain(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = random_matrix(n, 42);
  for (auto _ : state) {
    auto result = spechd::cluster::nn_chain_hac(m, spechd::cluster::linkage::complete);
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(state.range(0));
}

void bm_naive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = random_matrix(n, 42);
  for (auto _ : state) {
    auto result = spechd::cluster::naive_hac(m, spechd::cluster::linkage::complete);
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(state.range(0));
}

BENCHMARK(bm_nn_chain)->RangeMultiplier(2)->Range(64, 1024)->Complexity();
BENCHMARK(bm_naive)->RangeMultiplier(2)->Range(64, 1024)->Complexity();

void print_operation_counts() {
  using spechd::text_table;
  text_table table("Fig. 2 — operation counts, naive vs NN-chain (complete linkage)");
  table.set_header({"n", "naive comparisons", "nn-chain comparisons", "ratio"});
  for (const std::size_t n : {64, 128, 256, 512, 1024}) {
    const auto m = random_matrix(n, 7);
    const auto naive = spechd::cluster::naive_hac(m, spechd::cluster::linkage::complete);
    const auto chain =
        spechd::cluster::nn_chain_hac(m, spechd::cluster::linkage::complete);
    table.add_row({text_table::num(n),
                   text_table::num(static_cast<std::size_t>(naive.stats.comparisons)),
                   text_table::num(static_cast<std::size_t>(chain.stats.comparisons)),
                   text_table::num(static_cast<double>(naive.stats.comparisons) /
                                       static_cast<double>(chain.stats.comparisons),
                                   1)});
  }
  table.print(std::cout);
}

// The HAC input matrix is itself an XOR+popcount product; time its
// construction through the kernel layer so the bench shows where the
// matrix-build cost sits relative to the clustering it feeds.
void print_matrix_build(const spechd::bench::bench_options& opts) {
  using spechd::text_table;
  namespace hdc = spechd::hdc;

  const std::size_t n = opts.n != 0 ? opts.n : 1024;
  const std::size_t dim = opts.dim != 0 ? opts.dim : 2048;
  spechd::xoshiro256ss rng(9);
  std::vector<hdc::hypervector> hvs;
  hvs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) hvs.push_back(hdc::hypervector::random(dim, rng));

  text_table table("Distance matrix build (q16), n=" + std::to_string(n) +
                   ", dim=" + std::to_string(dim));
  table.set_header({"kernel", "threads", "seconds"});
  spechd::thread_pool pool(opts.resolved_threads());
  std::vector<hdc::kernels::variant> variants{hdc::kernels::variant::scalar};
  if (opts.variant != hdc::kernels::variant::scalar) variants.push_back(opts.variant);
  for (const auto v : variants) {
    hdc::kernels::set_active(v);
    spechd::stopwatch watch;
    const auto serial = hdc::pairwise_hamming_q16(hvs);
    benchmark::DoNotOptimize(serial);
    const double serial_s = watch.seconds();
    watch.reset();
    const auto pooled = hdc::pairwise_hamming_q16(hvs, &pool);
    benchmark::DoNotOptimize(pooled);
    const double pooled_s = watch.seconds();
    table.add_row({hdc::kernels::variant_name(v), "1", text_table::num(serial_s, 3)});
    table.add_row({hdc::kernels::variant_name(v),
                   text_table::num(opts.resolved_threads()),
                   text_table::num(pooled_s, 3)});
  }
  hdc::kernels::set_active(opts.variant);
  table.print(std::cout);
  std::cout << '\n';
}

// Kernel-backed flat NN-chain vs the pre-kernel condensed implementation,
// single-threaded merges/sec over growing n (best of three runs per cell),
// recorded to JSON so the >= 3x acceptance bar at n >= 2048 is checkable
// against the PR-1 baseline in BENCH_kernels.json.
void print_hac_throughput(const spechd::bench::bench_options& opts) {
  using spechd::text_table;
  const std::string json_path =
      opts.json.empty() ? "BENCH_fig2_nnchain.json" : opts.json;

  spechd::json_writer json;
  json.begin_object();
  json.begin_object("hac_merges_per_sec");
  json.field("linkage", std::string("complete"));

  text_table table("NN-chain merges/sec — condensed (pre-kernel) vs flat kernel");
  table.set_header({"n", "condensed", "flat kernel", "speedup"});
  for (const std::size_t n : {512UL, 1024UL, 2048UL, 4096UL}) {
    const auto m = random_matrix(n, 42);
    auto best_of = [&](auto&& run) {
      double best = std::numeric_limits<double>::infinity();
      for (int rep = 0; rep < 3; ++rep) {
        spechd::stopwatch watch;
        auto r = run();
        benchmark::DoNotOptimize(r);
        best = std::min(best, watch.seconds());
      }
      return static_cast<double>(n - 1) / best;
    };
    const double condensed = best_of(
        [&] { return spechd::cluster::nn_chain_hac_condensed(m, spechd::cluster::linkage::complete); });
    const double flat = best_of(
        [&] { return spechd::cluster::nn_chain_hac(m, spechd::cluster::linkage::complete); });
    table.add_row({text_table::num(n), text_table::num(condensed, 0),
                   text_table::num(flat, 0), text_table::num(flat / condensed, 2)});
    json.begin_object("n" + std::to_string(n));
    json.field("condensed_merges_per_sec", condensed);
    json.field("flat_merges_per_sec", flat);
    json.field("speedup", flat / condensed);
    json.end_object();
  }
  json.end_object();
  json.end_object();
  table.print(std::cout);
  std::cout << '\n';

  if (!json_path.empty()) {
    json.write_file(json_path);
    std::cout << "wrote " << json_path << "\n\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = spechd::bench::parse_options(argc, argv);
  print_matrix_build(opts);
  print_hac_throughput(opts);
  print_operation_counts();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
