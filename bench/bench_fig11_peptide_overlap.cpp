// Fig. 11: Overlap of identified unique peptides.
//
// "Spec-HD closely trails GLEAMS by a mere 1.38% for peptides with a
//  precursor charge of 2+ and exceeds HyperSpec's performance by 7.33% in
//  the same charge category. When focusing on peptides with a precursor
//  charge of 3+, Spec-HD identifies 3.24% fewer unique peptides compared
//  to GLEAMS but leads HyperSpec by a margin of 5.10%."
//
// Pipeline: cluster with each tool -> build consensus spectra -> simulated
// database search -> unique peptide sets per charge -> Venn regions.
#include <iostream>

#include "baselines/tools.hpp"
#include "cluster/consensus.hpp"
#include "core/spechd.hpp"
#include "hdc/distance.hpp"
#include "metrics/ident.hpp"
#include "ms/synthetic.hpp"
#include "util/table.hpp"

namespace {

using namespace spechd;

ms::labelled_dataset make_dataset() {
  ms::synthetic_config c;
  c.peptide_count = 150;
  c.spectra_per_peptide_mean = 6.0;
  c.fragment_mz_sigma_ppm = 20.0;
  c.peak_dropout = 0.25;
  c.noise_peaks_per_spectrum = 20.0;
  c.seed = 1111;
  return ms::generate_dataset(c);
}

/// Consensus representatives for an arbitrary tool's flat clustering:
/// medoid by binned-cosine distance within each cluster, merged peaks.
std::vector<ms::spectrum> consensus_for(const cluster::flat_clustering& clustering,
                                        const std::vector<ms::spectrum>& spectra) {
  std::vector<std::vector<std::uint32_t>> members(clustering.cluster_count);
  for (std::uint32_t i = 0; i < spectra.size(); ++i) {
    const auto l = clustering.labels[i];
    if (l >= 0) members[static_cast<std::size_t>(l)].push_back(i);
  }
  std::vector<ms::spectrum> result;
  result.reserve(members.size());
  for (const auto& m : members) {
    if (m.empty()) continue;
    if (m.size() == 1) {
      result.push_back(spectra[m[0]]);
      continue;
    }
    // Medoid by average binned-cosine similarity.
    double best = -1.0;
    std::uint32_t medoid = m[0];
    for (const auto i : m) {
      double sum = 0.0;
      for (const auto j : m) {
        if (i != j) sum += ms::binned_cosine(spectra[i], spectra[j], 0.5);
      }
      if (sum > best) {
        best = sum;
        medoid = i;
      }
    }
    std::vector<const ms::spectrum*> ptrs;
    ptrs.reserve(m.size());
    for (const auto i : m) ptrs.push_back(&spectra[i]);
    result.push_back(cluster::merge_consensus(ptrs, spectra[medoid]));
  }
  return result;
}

}  // namespace

int main() {
  using text_table = spechd::text_table;

  const auto data = make_dataset();
  metrics::library_search engine(data.library, {});

  // SpecHD consensus via the full pipeline.
  core::spechd_config spechd_config;
  spechd_config.distance_threshold = 0.46;
  const auto spechd_result = core::spechd_pipeline(spechd_config).run(data.spectra);

  // HyperSpec and GLEAMS analogues at comparable operating points.
  const auto hyperspec = baselines::make_hyperspec(true)->run(data.spectra, 0.65);
  const auto gleams = baselines::make_gleams()->run(data.spectra, 0.65);

  const auto search = [&](const std::vector<ms::spectrum>& consensus) {
    return engine.search_batch(consensus);
  };
  const auto psms_spechd = search(spechd_result.consensus);
  const auto psms_hyperspec = search(consensus_for(hyperspec, data.spectra));
  const auto psms_gleams = search(consensus_for(gleams, data.spectra));

  for (const int charge : {2, 3}) {
    const auto set_spechd =
        metrics::library_search::unique_peptides(psms_spechd, engine, charge);
    const auto set_hyperspec =
        metrics::library_search::unique_peptides(psms_hyperspec, engine, charge);
    const auto set_gleams =
        metrics::library_search::unique_peptides(psms_gleams, engine, charge);
    const auto v = metrics::venn_overlap(set_spechd, set_hyperspec, set_gleams);

    text_table table("Fig. 11 — unique peptides, precursor charge " +
                     std::to_string(charge) + "+");
    table.set_header({"region", "count"});
    table.add_row({"SpecHD only", text_table::num(v.only_a)});
    table.add_row({"HyperSpec only", text_table::num(v.only_b)});
    table.add_row({"GLEAMS only", text_table::num(v.only_c)});
    table.add_row({"SpecHD & HyperSpec", text_table::num(v.ab)});
    table.add_row({"SpecHD & GLEAMS", text_table::num(v.ac)});
    table.add_row({"HyperSpec & GLEAMS", text_table::num(v.bc)});
    table.add_row({"all three", text_table::num(v.abc)});
    table.add_row({"total SpecHD", text_table::num(v.total_a())});
    table.add_row({"total HyperSpec", text_table::num(v.total_b())});
    table.add_row({"total GLEAMS", text_table::num(v.total_c())});
    table.print(std::cout);

    const double vs_gleams =
        v.total_c() ? 100.0 * (static_cast<double>(v.total_a()) - v.total_c()) /
                          static_cast<double>(v.total_c())
                    : 0.0;
    const double vs_hyperspec =
        v.total_b() ? 100.0 * (static_cast<double>(v.total_a()) - v.total_b()) /
                          static_cast<double>(v.total_b())
                    : 0.0;
    std::cout << "SpecHD vs GLEAMS: " << text_table::num(vs_gleams, 2)
              << "% (paper: " << (charge == 2 ? "-1.38%" : "-3.24%") << ")\n"
              << "SpecHD vs HyperSpec: " << text_table::num(vs_hyperspec, 2)
              << "% (paper: " << (charge == 2 ? "+7.33%" : "+5.10%") << ")\n\n";
  }
  std::cout << "Expected shape: large three-way overlap; SpecHD within a few\n"
               "percent of GLEAMS and ahead of HyperSpec.\n";
  return 0;
}
