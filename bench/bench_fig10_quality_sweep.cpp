// Fig. 10: Clustered spectra ratio vs incorrect clustering ratio.
//
// Sweeps every tool's aggressiveness knob over a labelled synthetic dataset
// and prints the (ICR, clustered ratio) series per tool — the data behind
// the paper's Fig. 10 curves. Also reports each tool's clustered ratio at
// the ICR ~1% operating point (paper: SpecHD 45%, HyperSpec 48%,
// MaRaCluster 44%, with msCRUSH/Falcon/MSCluster/spectra-cluster below).
#include <iostream>

#include "baselines/tools.hpp"
#include "core/spechd.hpp"
#include "core/sweep.hpp"
#include "util/table.hpp"

namespace {

spechd::ms::labelled_dataset make_dataset() {
  // Hard regime (see bench_fig6a): near-isobaric peptide classes + heavy
  // noise, so the tools trace distinct quality-vs-ICR curves.
  spechd::ms::synthetic_config c;
  c.peptide_count = 120;
  c.spectra_per_peptide_mean = 7.0;
  c.peptide_mass_min = 900.0;
  c.peptide_mass_max = 1150.0;
  c.fragment_mz_sigma_ppm = 45.0;
  c.precursor_mz_sigma_ppm = 30.0;
  c.intensity_sigma = 0.4;
  c.peak_dropout = 0.30;
  c.noise_peaks_per_spectrum = 35.0;
  c.unlabelled_fraction = 0.10;
  c.seed = 4242;
  return spechd::ms::generate_dataset(c);
}

}  // namespace

int main() {
  using namespace spechd;
  using text_table = spechd::text_table;

  const auto data = make_dataset();
  std::cout << "dataset: " << data.spectra.size() << " spectra, " << data.library.size()
            << " ground-truth peptides\n\n";

  std::vector<core::sweep_result> results;

  // SpecHD itself (threshold sweep on the real pipeline).
  results.push_back(core::run_sweep(
      "SpecHD", data,
      [](const std::vector<ms::spectrum>& spectra, double a) {
        core::spechd_config config;
        config.distance_threshold = 0.40 + 0.16 * a;
        return core::spechd_pipeline(config).run(spectra).clustering;
      },
      13));

  for (const auto& tool : baselines::make_all_baselines()) {
    results.push_back(core::run_sweep(
        std::string(tool->name()), data,
        [&](const std::vector<ms::spectrum>& spectra, double a) {
          return tool->run(spectra, a);
        },
        9));
  }

  // Full curves.
  for (const auto& sweep : results) {
    text_table curve("Fig. 10 curve — " + sweep.tool);
    curve.set_header({"aggressiveness", "ICR", "clustered ratio", "completeness"});
    for (const auto& p : sweep.points) {
      curve.add_row({text_table::num(p.aggressiveness, 2),
                     text_table::num(p.quality.incorrect_ratio, 4),
                     text_table::num(p.quality.clustered_ratio, 3),
                     text_table::num(p.quality.completeness, 3)});
    }
    curve.print(std::cout);
    std::cout << '\n';
  }

  // Operating points at ICR <= 1%.
  text_table summary("Fig. 10 — clustered ratio at ICR <= 1% (paper anchors in notes)");
  summary.set_header({"tool", "clustered ratio", "ICR", "completeness"});
  for (const auto& sweep : results) {
    const auto* best = sweep.best_at_icr(0.01);
    if (best == nullptr) {
      summary.add_row({sweep.tool, "n/a", "n/a", "n/a"});
    } else {
      summary.add_row({sweep.tool, text_table::num(best->quality.clustered_ratio, 3),
                       text_table::num(best->quality.incorrect_ratio, 4),
                       text_table::num(best->quality.completeness, 3)});
    }
  }
  summary.print(std::cout);
  std::cout << "\nPaper @1% ICR: SpecHD 0.45, HyperSpec 0.48, MaRaCluster 0.44;\n"
               "msCRUSH, Falcon, MSCluster, spectra-cluster lower. Expected shape:\n"
               "SpecHD competitive with HyperSpec/MaRaCluster, above the LSH tools.\n";
  return 0;
}
