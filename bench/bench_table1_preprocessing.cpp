// Table I: Preprocessing Performance Metrics.
//
// Reproduces the five-dataset preprocessing time/energy table using the
// MSAS near-storage model (src/fpga/msas), printing the paper's published
// values next to the model output.
#include <iostream>

#include "fpga/msas.hpp"
#include "ms/datasets.hpp"
#include "util/table.hpp"

int main() {
  using spechd::text_table;

  text_table table("Table I — Preprocessing Performance Metrics (paper vs model)");
  table.set_header({"Sample Type", "PRIDE ID", "#Spectra", "Size(GB)",
                    "PP Time(s) paper", "PP Time(s) model", "Energy(J) paper",
                    "Energy(J) model"});

  spechd::fpga::msas_config config;
  for (const auto& ds : spechd::ms::paper_datasets()) {
    const auto r = spechd::fpga::preprocess_dataset(ds, config);
    table.add_row({std::string(ds.sample_type), std::string(ds.pride_id),
                   text_table::num(static_cast<std::size_t>(ds.spectra)),
                   text_table::num(ds.size_gb, 1), text_table::num(ds.paper_pp_time_s, 2),
                   text_table::num(r.time_s, 2), text_table::num(ds.paper_pp_energy_j, 2),
                   text_table::num(r.energy_j, 2)});
  }
  table.print(std::cout);

  std::cout << "\nModel notes: streaming capped at ~3.0 GB/s effective (the rate\n"
               "Table I's rows imply); energy = 9 W SSD+MSAS active power over the\n"
               "run plus per-spectrum accelerator energy. See DESIGN.md.\n";
  return 0;
}
