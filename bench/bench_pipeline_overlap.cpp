// Extension experiment: dataflow overlap (Fig. 3's task-level parallelism).
//
// The paper's architecture overlaps the P2P stream, the encoder and the
// five clustering kernels via HLS dataflow. This bench quantifies what the
// overlap buys on each dataset: the discrete-event pipeline makespan vs
// the phase-additive estimate, plus the stage utilisations that show where
// the bottleneck sits (the single encoder, per Sec. IV-C).
#include <iostream>

#include "bench_common.hpp"
#include "core/spechd.hpp"
#include "fpga/des.hpp"
#include "ms/synthetic.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace spechd;
  using namespace spechd::fpga;
  using text_table = spechd::text_table;

  const auto opts = spechd::bench::parse_options(argc, argv);

  text_table table("Dataflow overlap — DES vs phase-additive model");
  table.set_header({"dataset", "additive (s)", "pipelined (s)", "saving", "encoder util",
                    "cluster util", "end-to-end w/ PP (s)"});
  for (const auto& ds : ms::paper_datasets()) {
    const auto r = simulate_dataflow(ds, {});
    table.add_row({std::string(ds.pride_id), text_table::num(r.additive_s, 1),
                   text_table::num(r.pipeline_s, 1),
                   text_table::num(r.overlap_saving * 100.0, 1) + "%",
                   text_table::num(r.encoder_utilisation * 100.0, 1) + "%",
                   text_table::num(r.cluster_utilisation * 100.0, 1) + "%",
                   text_table::num(r.makespan_s, 1)});
  }
  table.print(std::cout);

  std::cout << "\nExpected: high encoder utilisation (the paper's stated single-\n"
               "encoder constraint) with cluster CUs partially idle; the pipeline\n"
               "recovers a significant fraction of the additive transfer+encode\n"
               "time.\n\n";

  // Encoder-count what-if: the knob Sec. IV-C says would lift the bound.
  text_table enc("Encoder scaling under overlap (PXD000561)");
  enc.set_header({"encoders", "pipelined (s)", "encoder util", "cluster util"});
  for (const unsigned e : {1U, 2U, 4U}) {
    spechd_hw_config hw;
    hw.encoder_kernels = e;
    const auto r = simulate_dataflow(ms::paper_datasets()[4], hw);
    enc.add_row({text_table::num(std::size_t{e}), text_table::num(r.pipeline_s, 1),
                 text_table::num(r.encoder_utilisation * 100.0, 1) + "%",
                 text_table::num(r.cluster_utilisation * 100.0, 1) + "%"});
  }
  enc.print(std::cout);

  // CPU analogue of the same question: how much does overlapping work across
  // pool workers buy the reference pipeline? (--threads / --variant knobs)
  const auto data = ms::generate_dataset(
      spechd::bench::synthetic_workload(opts.n != 0 ? opts.n : 200));

  std::cout << '\n';
  text_table cpu("CPU reference pipeline — worker overlap");
  cpu.set_header({"threads", "total (s)", "speedup"});
  double single = 0.0;
  for (const std::size_t threads : {std::size_t{1}, opts.resolved_threads()}) {
    auto config = spechd::bench::pipeline_config(opts);
    config.threads = threads;
    core::spechd_pipeline pipeline(config);
    stopwatch watch;
    const auto result = pipeline.run(data.spectra);
    (void)result;
    const double total = watch.seconds();
    if (threads == 1) single = total;
    cpu.add_row({text_table::num(threads), text_table::num(total, 3),
                 text_table::num(single / total, 2)});
    if (opts.resolved_threads() == 1) break;
  }
  cpu.print(std::cout);
  return 0;
}
