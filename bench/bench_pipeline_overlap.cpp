// Extension experiment: dataflow overlap (Fig. 3's task-level parallelism).
//
// The paper's architecture overlaps the P2P stream, the encoder and the
// five clustering kernels via HLS dataflow. This bench quantifies what the
// overlap buys on each dataset: the discrete-event pipeline makespan vs
// the phase-additive estimate, plus the stage utilisations that show where
// the bottleneck sits (the single encoder, per Sec. IV-C).
#include <iostream>

#include "fpga/des.hpp"
#include "util/table.hpp"

int main() {
  using namespace spechd;
  using namespace spechd::fpga;
  using text_table = spechd::text_table;

  text_table table("Dataflow overlap — DES vs phase-additive model");
  table.set_header({"dataset", "additive (s)", "pipelined (s)", "saving", "encoder util",
                    "cluster util", "end-to-end w/ PP (s)"});
  for (const auto& ds : ms::paper_datasets()) {
    const auto r = simulate_dataflow(ds, {});
    table.add_row({std::string(ds.pride_id), text_table::num(r.additive_s, 1),
                   text_table::num(r.pipeline_s, 1),
                   text_table::num(r.overlap_saving * 100.0, 1) + "%",
                   text_table::num(r.encoder_utilisation * 100.0, 1) + "%",
                   text_table::num(r.cluster_utilisation * 100.0, 1) + "%",
                   text_table::num(r.makespan_s, 1)});
  }
  table.print(std::cout);

  std::cout << "\nExpected: high encoder utilisation (the paper's stated single-\n"
               "encoder constraint) with cluster CUs partially idle; the pipeline\n"
               "recovers a significant fraction of the additive transfer+encode\n"
               "time.\n\n";

  // Encoder-count what-if: the knob Sec. IV-C says would lift the bound.
  text_table enc("Encoder scaling under overlap (PXD000561)");
  enc.set_header({"encoders", "pipelined (s)", "encoder util", "cluster util"});
  for (const unsigned e : {1U, 2U, 4U}) {
    spechd_hw_config hw;
    hw.encoder_kernels = e;
    const auto r = simulate_dataflow(ms::paper_datasets()[4], hw);
    enc.add_row({text_table::num(std::size_t{e}), text_table::num(r.pipeline_s, 1),
                 text_table::num(r.encoder_utilisation * 100.0, 1) + "%",
                 text_table::num(r.cluster_utilisation * 100.0, 1) + "%"});
  }
  enc.print(std::cout);
  return 0;
}
