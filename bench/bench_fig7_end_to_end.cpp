// Fig. 7: End-to-end runtime speedup.
//
// "Across five datasets, Spec-HD achieves remarkable speed-ups, ranging
//  from 31x over GLEAMS for dataset PXD001511 to an impressive 54x for
//  PXD000561. Against HyperSpec-HAC, the current state-of-the-art in
//  runtime, we note a 6x speed-up."
//
// Prints modelled end-to-end runtime per tool per dataset and the speedup
// of SpecHD over each, with the paper's anchor ratios for comparison.
// Additionally runs the *real* CPU reference pipeline on synthetic spectra
// (knobs: --threads, --variant, --n) and writes per-phase seconds plus
// spectra/sec to BENCH_fig7_end_to_end.json for cross-PR tracking.
#include <iostream>

#include "bench_common.hpp"
#include "core/spechd.hpp"
#include "fpga/tool_models.hpp"
#include "ms/synthetic.hpp"
#include "util/bench_json.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace spechd;
  using namespace spechd::fpga;
  using text_table = spechd::text_table;

  const auto opts = spechd::bench::parse_options(argc, argv);

  const spechd_hw_config hw;
  const baseline_rates rates;

  text_table runtimes("Fig. 7 — modelled end-to-end runtime (seconds)");
  runtimes.set_header({"dataset", "SpecHD", "HyperSpec-HAC", "HyperSpec-DBSCAN", "GLEAMS",
                       "Falcon", "msCRUSH"});
  text_table speedups("Fig. 7 — SpecHD end-to-end speedup (x)");
  speedups.set_header({"dataset", "vs HyperSpec-HAC", "vs HyperSpec-DBSCAN", "vs GLEAMS",
                       "vs Falcon", "vs msCRUSH"});

  for (const auto& ds : ms::paper_datasets()) {
    const auto runs = model_all_tools(ds, hw, rates);
    const double spechd = runs[0].time.end_to_end();
    runtimes.add_row({std::string(ds.pride_id), text_table::num(spechd, 1),
                      text_table::num(runs[1].time.end_to_end(), 1),
                      text_table::num(runs[2].time.end_to_end(), 1),
                      text_table::num(runs[3].time.end_to_end(), 1),
                      text_table::num(runs[4].time.end_to_end(), 1),
                      text_table::num(runs[5].time.end_to_end(), 1)});
    speedups.add_row({std::string(ds.pride_id),
                      text_table::num(runs[1].time.end_to_end() / spechd, 1),
                      text_table::num(runs[2].time.end_to_end() / spechd, 1),
                      text_table::num(runs[3].time.end_to_end() / spechd, 1),
                      text_table::num(runs[4].time.end_to_end() / spechd, 1),
                      text_table::num(runs[5].time.end_to_end() / spechd, 1)});
  }
  runtimes.print(std::cout);
  std::cout << '\n';
  speedups.print(std::cout);

  std::cout << "\nPaper anchors: ~6x vs HyperSpec-HAC; 31x (PXD001511) to 54x\n"
               "(PXD000561) vs GLEAMS; msCRUSH and Falcon in between. SpecHD's\n"
               "largest dataset end-to-end should sit near the abstract's\n"
               "\"5 minutes\" (300 s) figure.\n\n";

  // --- measured CPU reference pipeline --------------------------------------
  const auto data = ms::generate_dataset(
      spechd::bench::synthetic_workload(opts.n != 0 ? opts.n : 500));
  const auto config = spechd::bench::pipeline_config(opts);
  core::spechd_pipeline pipeline(config);
  stopwatch watch;
  const auto result = pipeline.run(data.spectra);
  const double total = watch.seconds();
  const double spectra_per_sec = static_cast<double>(data.spectra.size()) / total;

  text_table measured("Measured CPU reference pipeline (synthetic data)");
  measured.set_header({"spectra", "preprocess (s)", "encode (s)", "cluster (s)",
                       "consensus (s)", "spectra/sec"});
  measured.add_row({text_table::num(data.spectra.size()),
                    text_table::num(result.phases.preprocess, 3),
                    text_table::num(result.phases.encode, 3),
                    text_table::num(result.phases.cluster, 3),
                    text_table::num(result.phases.consensus, 3),
                    text_table::num(spectra_per_sec, 0)});
  measured.print(std::cout);

  json_writer json;
  json.begin_object();
  json.begin_object("config");
  json.field("spectra", data.spectra.size());
  json.field("threads", config.threads);
  json.field("kernel_variant", config.kernel_variant);
  json.end_object();
  spechd::bench::emit_pipeline_phases(json, result, data.spectra.size(), total);
  json.end_object();
  const std::string json_path =
      opts.json.empty() ? "BENCH_fig7_end_to_end.json" : opts.json;
  json.write_file(json_path);
  std::cout << "\nwrote " << json_path << '\n';
  return 0;
}
