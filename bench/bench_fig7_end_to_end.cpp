// Fig. 7: End-to-end runtime speedup.
//
// "Across five datasets, Spec-HD achieves remarkable speed-ups, ranging
//  from 31x over GLEAMS for dataset PXD001511 to an impressive 54x for
//  PXD000561. Against HyperSpec-HAC, the current state-of-the-art in
//  runtime, we note a 6x speed-up."
//
// Prints modelled end-to-end runtime per tool per dataset and the speedup
// of SpecHD over each, with the paper's anchor ratios for comparison.
#include <iostream>

#include "fpga/tool_models.hpp"
#include "util/table.hpp"

int main() {
  using namespace spechd;
  using namespace spechd::fpga;
  using text_table = spechd::text_table;

  const spechd_hw_config hw;
  const baseline_rates rates;

  text_table runtimes("Fig. 7 — modelled end-to-end runtime (seconds)");
  runtimes.set_header({"dataset", "SpecHD", "HyperSpec-HAC", "HyperSpec-DBSCAN", "GLEAMS",
                       "Falcon", "msCRUSH"});
  text_table speedups("Fig. 7 — SpecHD end-to-end speedup (x)");
  speedups.set_header({"dataset", "vs HyperSpec-HAC", "vs HyperSpec-DBSCAN", "vs GLEAMS",
                       "vs Falcon", "vs msCRUSH"});

  for (const auto& ds : ms::paper_datasets()) {
    const auto runs = model_all_tools(ds, hw, rates);
    const double spechd = runs[0].time.end_to_end();
    runtimes.add_row({std::string(ds.pride_id), text_table::num(spechd, 1),
                      text_table::num(runs[1].time.end_to_end(), 1),
                      text_table::num(runs[2].time.end_to_end(), 1),
                      text_table::num(runs[3].time.end_to_end(), 1),
                      text_table::num(runs[4].time.end_to_end(), 1),
                      text_table::num(runs[5].time.end_to_end(), 1)});
    speedups.add_row({std::string(ds.pride_id),
                      text_table::num(runs[1].time.end_to_end() / spechd, 1),
                      text_table::num(runs[2].time.end_to_end() / spechd, 1),
                      text_table::num(runs[3].time.end_to_end() / spechd, 1),
                      text_table::num(runs[4].time.end_to_end() / spechd, 1),
                      text_table::num(runs[5].time.end_to_end() / spechd, 1)});
  }
  runtimes.print(std::cout);
  std::cout << '\n';
  speedups.print(std::cout);

  std::cout << "\nPaper anchors: ~6x vs HyperSpec-HAC; 31x (PXD001511) to 54x\n"
               "(PXD000561) vs GLEAMS; msCRUSH and Falcon in between. SpecHD's\n"
               "largest dataset end-to-end should sit near the abstract's\n"
               "\"5 minutes\" (300 s) figure.\n";
  return 0;
}
