// Ablation: Eq. 1 bucketing resolution.
//
// "The term 'resolution' ... can range from 0.05 to 1" (Sec. III-A). Finer
// resolution shrinks buckets (less pairwise work, more parallelism) but
// risks splitting true clusters across buckets. This bench sweeps the
// resolution on real synthetic data (quality + bucket stats) and on the
// modelled PXD000561 run (cluster time).
#include <iostream>

#include "core/spechd.hpp"
#include "fpga/dataflow.hpp"
#include "metrics/quality.hpp"
#include "ms/synthetic.hpp"
#include "util/table.hpp"

namespace {

spechd::ms::labelled_dataset make_dataset() {
  spechd::ms::synthetic_config c;
  c.peptide_count = 100;
  c.spectra_per_peptide_mean = 7.0;
  c.precursor_mz_sigma_ppm = 15.0;  // precursor jitter stresses bucketing
  c.seed = 909;
  return spechd::ms::generate_dataset(c);
}

}  // namespace

int main() {
  using namespace spechd;
  using text_table = spechd::text_table;

  const auto data = make_dataset();
  std::vector<std::int32_t> truth;
  truth.reserve(data.spectra.size());
  for (const auto& s : data.spectra) truth.push_back(s.label);

  text_table table("Ablation — bucketing resolution (Eq. 1)");
  table.set_header({"resolution", "buckets", "largest", "clustered ratio", "ICR",
                    "modelled cluster time PXD000561 (s)"});

  for (const double res : {0.05, 0.1, 0.2, 0.5, 1.0, 2.0}) {
    core::spechd_config config;
    config.preprocess.bucketing.resolution = res;
    const auto result = core::spechd_pipeline(config).run(data.spectra);
    const auto q = metrics::evaluate_clustering(truth, result.clustering);

    fpga::spechd_hw_config hw;
    hw.bucket_resolution = res;
    const auto run = fpga::model_spechd_run(ms::paper_datasets()[4], hw);

    // Bucket stats from the actual pipeline.
    auto batch = preprocess::run_preprocessing(data.spectra, config.preprocess);
    const auto st = preprocess::summarize(batch.buckets);

    table.add_row({text_table::num(res, 2), text_table::num(st.bucket_count),
                   text_table::num(st.largest), text_table::num(q.clustered_ratio, 3),
                   text_table::num(q.incorrect_ratio, 4),
                   text_table::num(run.time.cluster, 1)});
  }
  table.print(std::cout);
  std::cout << "\nExpected: coarser resolution -> fewer, larger buckets -> superlinear\n"
               "growth in modelled clustering time; quality stays flat until the\n"
               "resolution is fine enough to split precursor-jittered replicates.\n";
  return 0;
}
