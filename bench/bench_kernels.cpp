// Kernel-layer microbench: quantifies what the dispatching SIMD + bit-sliced
// kernels (src/hdc/cpu_kernels) buy over the seed's scalar hot loops, and
// writes BENCH_kernels.json so future PRs can track the perf trajectory.
//
// Three sections:
//   * pairwise Hamming — seed-style serial double loop (per-pair at() and
//     scalar word popcount) vs the tiled kernel, per variant, single- and
//     multi-threaded. The acceptance bar is >= 4x pairs/sec at n=2000,
//     dim=2048 on a multi-core host (>= 1.5x single-threaded from
//     SIMD/bit-slicing alone).
//   * packed tile (kernel layer v3) — the pointer-operand hamming_tile vs
//     pack_operands + hamming_tile_packed (contiguous arena blob,
//     carry-save popcount reduction) over the same tile sweep, per
//     variant; packing time is charged to the packed path.
//   * encoding — seed-style per-set-bit counter scatter vs the bit-sliced
//     carry-save accumulator, plus batch-parallel throughput.
//   * end-to-end — the real pipeline on synthetic spectra with per-phase
//     seconds and spectra/sec.
//   * arena — the shared scratch pool's counters (checkouts, reuse hits,
//     trims, high-water bytes) after the HAC/streaming/pipeline sections
//     exercised it, so memory behaviour is tracked alongside throughput.
//
// Knobs: --threads=N --variant=auto|scalar|avx2|avx512 --n=N --dim=D
//        --json=PATH (default BENCH_kernels.json)
#include <bit>
#include <iostream>
#include <map>
#include <vector>

#include "bench_common.hpp"
#include "cluster/nn_chain.hpp"
#include "core/incremental.hpp"
#include "core/spechd.hpp"
#include "hdc/cpu_kernels.hpp"
#include "hdc/distance.hpp"
#include "hdc/encoder.hpp"
#include "ms/synthetic.hpp"
#include "util/arena_pool.hpp"
#include "util/bench_json.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

namespace k = spechd::hdc::kernels;
using spechd::hdc::hypervector;

std::vector<hypervector> random_hvs(std::size_t n, std::size_t dim, std::uint64_t seed) {
  spechd::xoshiro256ss rng(seed);
  std::vector<hypervector> hvs;
  hvs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) hvs.push_back(hypervector::random(dim, rng));
  return hvs;
}

/// The seed's pairwise loop, verbatim: per-pair bounds-checked at() plus
/// word-at-a-time scalar popcount. This is the baseline every kernel-layer
/// measurement is normalised against.
spechd::hdc::distance_matrix_f32 seed_pairwise_f32(const std::vector<hypervector>& hvs) {
  spechd::hdc::distance_matrix_f32 m(hvs.size());
  for (std::size_t i = 1; i < hvs.size(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      const auto wa = hvs[i].words();
      const auto wb = hvs[j].words();
      std::size_t count = 0;
      for (std::size_t w = 0; w < wa.size(); ++w) {
        count += static_cast<std::size_t>(std::popcount(wa[w] ^ wb[w]));
      }
      m.at(i, j) = static_cast<float>(static_cast<double>(count) /
                                      static_cast<double>(hvs[i].dim()));
    }
  }
  return m;
}

/// The seed's encoder inner loop: scatter every set bound bit into a
/// per-dimension uint16 counter, then threshold.
hypervector seed_encode(const spechd::hdc::id_level_encoder& encoder,
                        const spechd::preprocess::quantized_spectrum& s,
                        const hypervector& tiebreak) {
  const std::size_t dim = encoder.dim();
  std::vector<std::uint16_t> counts(dim, 0);
  for (const auto& peak : s.peaks) {
    const auto wi = encoder.ids().at(peak.mz_bin).words();
    const auto wl = encoder.levels().at(peak.level).words();
    for (std::size_t w = 0; w < wi.size(); ++w) {
      std::uint64_t bound = wi[w] ^ wl[w];
      while (bound != 0) {
        const auto bit = static_cast<std::size_t>(std::countr_zero(bound));
        ++counts[w * 64 + bit];
        bound &= bound - 1;
      }
    }
  }
  hypervector out(dim);
  const std::size_t n = s.peaks.size();
  const std::size_t half = n / 2;
  const bool even = (n % 2) == 0;
  for (std::size_t d = 0; d < dim; ++d) {
    const std::size_t c = counts[d];
    out.assign(d, (even && c == half) ? tiebreak.test(d) : c > half);
  }
  return out;
}

struct measurement {
  double seconds = 0.0;
  double per_sec = 0.0;
};

template <typename F>
measurement time_run(std::size_t items, F&& run) {
  spechd::stopwatch watch;
  run();
  measurement m;
  m.seconds = watch.seconds();
  m.per_sec = m.seconds > 0.0 ? static_cast<double>(items) / m.seconds : 0.0;
  return m;
}

void emit(spechd::json_writer& json, const std::string& key, const measurement& m,
          const char* rate_name) {
  json.begin_object(key);
  json.field("seconds", m.seconds);
  json.field(rate_name, m.per_sec);
  json.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  using spechd::text_table;
  const auto opts = spechd::bench::parse_options(argc, argv);
  const std::size_t n = opts.n != 0 ? opts.n : 2000;
  const std::size_t dim = opts.dim != 0 ? opts.dim : 2048;
  const std::size_t threads = opts.resolved_threads();
  const std::string json_path = opts.json.empty() ? "BENCH_kernels.json" : opts.json;

  spechd::json_writer json;
  json.begin_object();
  json.begin_object("host");
  json.field("hardware_threads",
             static_cast<std::size_t>(std::thread::hardware_concurrency()));
  json.field("best_variant", k::variant_name(k::best_supported()));
  json.end_object();
  json.begin_object("config");
  json.field("n", n);
  json.field("dim", dim);
  json.field("threads", threads);
  json.end_object();

  // --- pairwise Hamming ------------------------------------------------------
  const auto hvs = random_hvs(n, dim, 42);
  const std::size_t pairs = n * (n - 1) / 2;
  std::map<std::string, measurement> pw;

  k::set_active(k::variant::scalar);
  pw["seed_scalar"] = time_run(pairs, [&] {
    auto m = seed_pairwise_f32(hvs);
    (void)m;
  });
  pw["tiled_scalar"] = time_run(pairs, [&] {
    auto m = spechd::hdc::pairwise_hamming_f32(hvs);
    (void)m;
  });
  for (const k::variant v : {k::variant::avx2, k::variant::avx512}) {
    if (!k::supported(v)) continue;
    k::set_active(v);
    pw[std::string("tiled_") + k::variant_name(v)] = time_run(pairs, [&] {
      auto m = spechd::hdc::pairwise_hamming_f32(hvs);
      (void)m;
    });
  }
  k::set_active(opts.variant);
  {
    spechd::thread_pool pool(threads);
    pw["tiled_active_threaded"] = time_run(pairs, [&] {
      auto m = spechd::hdc::pairwise_hamming_f32(hvs, &pool);
      (void)m;
    });
  }

  const double base_rate = pw["seed_scalar"].per_sec;
  text_table pw_table("pairwise Hamming, n=" + std::to_string(n) +
                      ", dim=" + std::to_string(dim));
  pw_table.set_header({"path", "seconds", "pairs/sec", "speedup vs seed"});
  json.begin_object("pairwise_hamming");
  json.field("pairs", pairs);
  double best_single = 0.0;
  for (const auto& [name, m] : pw) {
    pw_table.add_row({name, text_table::num(m.seconds, 3), text_table::num(m.per_sec, 0),
                      text_table::num(m.per_sec / base_rate, 2)});
    emit(json, name, m, "pairs_per_sec");
    if (name != "seed_scalar" && name != "tiled_active_threaded") {
      best_single = std::max(best_single, m.per_sec);
    }
  }
  json.field("speedup_single_thread", best_single / base_rate);
  json.field("speedup_total", pw["tiled_active_threaded"].per_sec / base_rate);
  json.end_object();
  pw_table.print(std::cout);
  std::cout << '\n';

  // --- packed tile (v3) vs pointer tile --------------------------------------
  // Same 64×64 tile sweep over the full n×n grid through both kernels. The
  // packed path pays pack_operands into an arena blob inside the timed
  // region (as the real pairwise path does); best of three runs each. The
  // acceptance bar is packed >= 1.2x unpacked pairs/sec on the AVX-512 dev
  // container.
  {
    constexpr std::size_t tile_edge = 64;
    const std::size_t words = hvs.front().word_count();
    std::vector<const std::uint64_t*> ptrs(n);
    for (std::size_t i = 0; i < n; ++i) ptrs[i] = hvs[i].words().data();
    const std::size_t grid_pairs = n * n;
    std::vector<std::uint32_t> counts(tile_edge * tile_edge);

    auto best_of = [&](auto&& run) {
      double best = std::numeric_limits<double>::infinity();
      for (int rep = 0; rep < 3; ++rep) {
        spechd::stopwatch watch;
        run();
        best = std::min(best, watch.seconds());
      }
      measurement m;
      m.seconds = best;
      m.per_sec = best > 0.0 ? static_cast<double>(grid_pairs) / best : 0.0;
      return m;
    };
    auto sweep_unpacked = [&] {
      for (std::size_t i0 = 0; i0 < n; i0 += tile_edge) {
        const std::size_t rows = std::min(tile_edge, n - i0);
        for (std::size_t j0 = 0; j0 < n; j0 += tile_edge) {
          const std::size_t cols = std::min(tile_edge, n - j0);
          k::hamming_tile(ptrs.data() + i0, rows, ptrs.data() + j0, cols, words,
                          counts.data());
        }
      }
    };
    auto sweep_packed = [&] {
      auto lease = spechd::arena_pool::global().checkout(n * words * sizeof(std::uint64_t));
      std::uint64_t* const blob = lease.as<std::uint64_t>(n * words);
      k::pack_operands(ptrs.data(), n, words, blob);
      for (std::size_t i0 = 0; i0 < n; i0 += tile_edge) {
        const std::size_t rows = std::min(tile_edge, n - i0);
        for (std::size_t j0 = 0; j0 < n; j0 += tile_edge) {
          const std::size_t cols = std::min(tile_edge, n - j0);
          k::hamming_tile_packed(blob + i0 * words, rows, blob + j0 * words, cols, words,
                                 counts.data());
        }
      }
    };

    text_table tile_table("packed vs unpacked Hamming tile, n=" + std::to_string(n) +
                          ", dim=" + std::to_string(dim));
    tile_table.set_header({"variant", "path", "seconds", "pairs/sec", "packed/unpacked"});
    json.begin_object("packed_tile");
    json.field("pairs", grid_pairs);
    double active_speedup = 0.0;
    for (const k::variant v : {k::variant::scalar, k::variant::avx2, k::variant::avx512}) {
      if (!k::supported(v)) continue;
      k::set_active(v);
      const auto unpacked = best_of(sweep_unpacked);
      const auto packed = best_of(sweep_packed);
      const double speedup = packed.per_sec / unpacked.per_sec;
      if (v == opts.variant) active_speedup = speedup;
      tile_table.add_row({k::variant_name(v), "unpacked", text_table::num(unpacked.seconds, 3),
                          text_table::num(unpacked.per_sec, 0), "1.00"});
      tile_table.add_row({k::variant_name(v), "packed", text_table::num(packed.seconds, 3),
                          text_table::num(packed.per_sec, 0), text_table::num(speedup, 2)});
      json.begin_object(k::variant_name(v));
      emit(json, "unpacked", unpacked, "pairs_per_sec");
      emit(json, "packed", packed, "pairs_per_sec");
      json.field("speedup_packed_vs_unpacked", speedup);
      json.end_object();
    }
    k::set_active(opts.variant);
    json.field("speedup_active_variant", active_speedup);
    json.end_object();
    tile_table.print(std::cout);
    std::cout << '\n';
  }

  // --- encoding --------------------------------------------------------------
  const spechd::hdc::encoder_config enc_config{.dim = dim, .seed = 0xC0FFEE};
  const spechd::preprocess::quantize_config qc;
  const spechd::hdc::id_level_encoder encoder(enc_config, qc.mz_bins, qc.intensity_levels);
  const auto& tiebreak = encoder.tiebreak();

  spechd::xoshiro256ss peak_rng(7);
  std::vector<spechd::preprocess::quantized_spectrum> spectra(n);
  for (auto& s : spectra) {
    for (std::size_t p = 0; p < 50; ++p) {
      s.peaks.push_back({static_cast<std::uint32_t>(peak_rng.bounded(qc.mz_bins)),
                         static_cast<std::uint16_t>(peak_rng.bounded(qc.intensity_levels))});
    }
  }

  std::map<std::string, measurement> enc;
  k::set_active(k::variant::scalar);
  enc["seed_scatter"] = time_run(n, [&] {
    for (const auto& s : spectra) {
      auto hv = seed_encode(encoder, s, tiebreak);
      (void)hv;
    }
  });
  enc["bitsliced_scalar"] = time_run(n, [&] {
    for (const auto& s : spectra) {
      auto hv = encoder.encode(s);
      (void)hv;
    }
  });
  k::set_active(opts.variant);
  enc["bitsliced_active"] = time_run(n, [&] {
    for (const auto& s : spectra) {
      auto hv = encoder.encode(s);
      (void)hv;
    }
  });
  {
    spechd::thread_pool pool(threads);
    enc["bitsliced_active_threaded"] = time_run(n, [&] {
      auto hvs_out = encoder.encode_batch(spectra, &pool);
      (void)hvs_out;
    });
  }

  const double enc_base = enc["seed_scatter"].per_sec;
  text_table enc_table("ID-Level encoding, n=" + std::to_string(n) + " spectra x 50 peaks");
  enc_table.set_header({"path", "seconds", "spectra/sec", "speedup vs seed"});
  json.begin_object("encode");
  json.field("spectra", n);
  for (const auto& [name, m] : enc) {
    enc_table.add_row({name, text_table::num(m.seconds, 3), text_table::num(m.per_sec, 0),
                       text_table::num(m.per_sec / enc_base, 2)});
    emit(json, name, m, "spectra_per_sec");
  }
  json.field("speedup_single_thread", enc["bitsliced_active"].per_sec / enc_base);
  json.field("speedup_total", enc["bitsliced_active_threaded"].per_sec / enc_base);
  json.end_object();
  enc_table.print(std::cout);
  std::cout << '\n';

  // --- NN-chain HAC (merges/sec) ---------------------------------------------
  // The kernel-backed flat-matrix NN-chain vs the pre-kernel condensed
  // implementation, single-threaded, best of three runs. The condensed
  // number doubles as the PR-1 baseline for cross-PR tracking.
  {
    const std::size_t n_hac = 2048;
    spechd::xoshiro256ss hac_rng(42);
    spechd::hdc::distance_matrix_f32 mf(n_hac);
    spechd::hdc::distance_matrix_q16 mq(n_hac);
    for (std::size_t i = 1; i < n_hac; ++i) {
      for (std::size_t j = 0; j < i; ++j) {
        const double v = hac_rng.uniform(0.01, 1.0);
        mf.at(i, j) = static_cast<float>(v);
        mq.at(i, j) = spechd::q16::from_double(v);
      }
    }
    auto best_of = [&](auto&& run) {
      double best = std::numeric_limits<double>::infinity();
      for (int rep = 0; rep < 3; ++rep) {
        spechd::stopwatch watch;
        auto r = run();
        (void)r;
        best = std::min(best, watch.seconds());
      }
      measurement m;
      m.seconds = best;
      m.per_sec = static_cast<double>(n_hac - 1) / best;
      return m;
    };
    const auto link = spechd::cluster::linkage::complete;
    const auto condensed =
        best_of([&] { return spechd::cluster::nn_chain_hac_condensed(mf, link); });
    const auto flat_f32 = best_of([&] { return spechd::cluster::nn_chain_hac(mf, link); });
    const auto flat_q16 = best_of([&] { return spechd::cluster::nn_chain_hac(mq, link); });

    text_table hac_table("NN-chain HAC, n=" + std::to_string(n_hac) +
                         " (complete linkage, single-threaded)");
    hac_table.set_header({"path", "seconds", "merges/sec", "speedup"});
    hac_table.add_row({"condensed (pre-kernel)", text_table::num(condensed.seconds, 3),
                       text_table::num(condensed.per_sec, 0), "1.00"});
    hac_table.add_row({"flat kernel f32", text_table::num(flat_f32.seconds, 3),
                       text_table::num(flat_f32.per_sec, 0),
                       text_table::num(flat_f32.per_sec / condensed.per_sec, 2)});
    hac_table.add_row({"flat kernel q16", text_table::num(flat_q16.seconds, 3),
                       text_table::num(flat_q16.per_sec, 0),
                       text_table::num(flat_q16.per_sec / condensed.per_sec, 2)});
    hac_table.print(std::cout);
    std::cout << '\n';

    json.begin_object("hac_nn_chain");
    json.field("n", n_hac);
    json.field("linkage", std::string("complete"));
    emit(json, "condensed_f32", condensed, "merges_per_sec");
    emit(json, "flat_f32", flat_f32, "merges_per_sec");
    emit(json, "flat_q16", flat_q16, "merges_per_sec");
    json.field("speedup_f32", flat_f32.per_sec / condensed.per_sec);
    json.field("speedup_q16", flat_q16.per_sec / condensed.per_sec);
    json.end_object();
  }

  // --- streaming ingestion (spectra/sec) -------------------------------------
  // Sequential one-spectrum-at-a-time ingestion vs push_batch over the same
  // spectra (encode + route + assign through the shared pool and the
  // dispatched Hamming row kernels).
  {
    const auto stream_data =
        spechd::ms::generate_dataset(spechd::bench::synthetic_workload(200));
    const auto stream_config = spechd::bench::pipeline_config(opts);
    measurement sequential;
    {
      spechd::core::incremental_clusterer inc(stream_config);
      sequential = time_run(stream_data.spectra.size(),
                            [&] { inc.add_spectra(stream_data.spectra); });
    }
    measurement batched;
    {
      spechd::core::incremental_clusterer inc(stream_config);
      batched = time_run(stream_data.spectra.size(),
                         [&] { inc.push_batch(stream_data.spectra); });
    }

    text_table stream_table("streaming ingestion, " +
                            std::to_string(stream_data.spectra.size()) +
                            " synthetic spectra");
    stream_table.set_header({"path", "seconds", "spectra/sec", "speedup"});
    stream_table.add_row({"sequential add_spectra", text_table::num(sequential.seconds, 3),
                          text_table::num(sequential.per_sec, 0), "1.00"});
    stream_table.add_row({"push_batch", text_table::num(batched.seconds, 3),
                          text_table::num(batched.per_sec, 0),
                          text_table::num(batched.per_sec / sequential.per_sec, 2)});
    stream_table.print(std::cout);
    std::cout << '\n';

    json.begin_object("streaming");
    json.field("spectra", stream_data.spectra.size());
    json.field("threads", threads);
    emit(json, "sequential", sequential, "spectra_per_sec");
    emit(json, "push_batch", batched, "spectra_per_sec");
    json.field("speedup", batched.per_sec / sequential.per_sec);
    json.end_object();
  }

  // --- end-to-end pipeline ---------------------------------------------------
  const auto data =
      spechd::ms::generate_dataset(spechd::bench::synthetic_workload(200));
  spechd::core::spechd_pipeline pipeline(spechd::bench::pipeline_config(opts));
  spechd::stopwatch e2e_watch;
  const auto result = pipeline.run(data.spectra);
  const double e2e_seconds = e2e_watch.seconds();
  const double spectra_per_sec = static_cast<double>(data.spectra.size()) / e2e_seconds;

  text_table e2e_table("end-to-end pipeline, " + std::to_string(data.spectra.size()) +
                       " synthetic spectra");
  e2e_table.set_header({"phase", "seconds"});
  e2e_table.add_row({"preprocess", text_table::num(result.phases.preprocess, 3)});
  e2e_table.add_row({"encode", text_table::num(result.phases.encode, 3)});
  e2e_table.add_row({"cluster", text_table::num(result.phases.cluster, 3)});
  e2e_table.add_row({"consensus", text_table::num(result.phases.consensus, 3)});
  e2e_table.add_row({"total (spectra/sec)", text_table::num(spectra_per_sec, 0)});
  e2e_table.print(std::cout);

  json.begin_object("end_to_end");
  json.field("spectra", data.spectra.size());
  spechd::bench::emit_pipeline_phases(json, result, data.spectra.size(), e2e_seconds);
  json.end_object();

  // --- shared arena pool -----------------------------------------------------
  // Counters after the tile/HAC/streaming/pipeline sections above pushed
  // all their scratch (packed operand blobs, NN-chain matrices, assignment
  // rows) through the pool. high_water_bytes is the bloat metric the pool
  // exists to bound: peak in-use + retained bytes across the process.
  {
    const auto arena = spechd::arena_pool::global().stats();
    text_table arena_table("shared arena pool");
    arena_table.set_header({"metric", "value"});
    arena_table.add_row({"checkouts", std::to_string(arena.checkouts)});
    arena_table.add_row({"reuse hits", std::to_string(arena.reuses)});
    arena_table.add_row({"allocations", std::to_string(arena.allocations)});
    arena_table.add_row({"trims", std::to_string(arena.trims)});
    arena_table.add_row({"high-water bytes", std::to_string(arena.high_water_bytes)});
    arena_table.add_row({"retained bytes", std::to_string(arena.retained_bytes)});
    arena_table.print(std::cout);
    std::cout << '\n';

    json.begin_object("arena");
    json.field("checkouts", static_cast<std::size_t>(arena.checkouts));
    json.field("reuses", static_cast<std::size_t>(arena.reuses));
    json.field("allocations", static_cast<std::size_t>(arena.allocations));
    json.field("trims", static_cast<std::size_t>(arena.trims));
    json.field("trimmed_bytes", arena.trimmed_bytes);
    json.field("in_use_bytes", arena.in_use_bytes);
    json.field("retained_bytes", arena.retained_bytes);
    json.field("high_water_bytes", arena.high_water_bytes);
    json.end_object();
  }
  json.end_object();

  json.write_file(json_path);
  std::cout << "\nwrote " << json_path << '\n';
  return 0;
}
