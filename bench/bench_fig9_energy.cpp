// Fig. 9: Energy efficiency (a: end-to-end, b: standalone clustering).
//
// "Spec-HD exhibited a 14x and 31x improvement in end-to-end energy
//  efficiency over HyperSpec-DBSCAN and HyperSpec-HAC, respectively, with
//  clustering-phase gains of 12x and 40x."
#include <iostream>

#include "fpga/tool_models.hpp"
#include "util/table.hpp"

int main() {
  using namespace spechd;
  using namespace spechd::fpga;
  using text_table = spechd::text_table;

  const auto ds = ms::paper_datasets()[4];  // PXD000561
  const auto runs = model_all_tools(ds, {}, {});

  const double spechd_e2e = runs[0].energy.end_to_end();
  const double spechd_cl = runs[0].energy.standalone_clustering();

  text_table a("Fig. 9a — end-to-end energy (PXD000561)");
  a.set_header({"tool", "energy (kJ, model)", "efficiency gain (model)",
                "efficiency gain (paper)"});
  text_table b("Fig. 9b — standalone clustering energy (PXD000561)");
  b.set_header({"tool", "energy (kJ, model)", "efficiency gain (model)",
                "efficiency gain (paper)"});

  struct anchor {
    const char* tool;
    std::size_t index;
    double paper_e2e;
    double paper_cl;
  };
  const anchor anchors[] = {
      {"SpecHD", 0, 1.0, 1.0},
      {"HyperSpec-HAC", 1, 31.0, 40.0},
      {"HyperSpec-DBSCAN", 2, 14.0, 12.0},
  };

  for (const auto& an : anchors) {
    const auto& run = runs[an.index];
    a.add_row({an.tool, text_table::num(run.energy.end_to_end() / 1e3, 2),
               text_table::num(run.energy.end_to_end() / spechd_e2e, 1),
               text_table::num(an.paper_e2e, 1)});
    b.add_row({an.tool, text_table::num(run.energy.standalone_clustering() / 1e3, 2),
               text_table::num(run.energy.standalone_clustering() / spechd_cl, 1),
               text_table::num(an.paper_cl, 1)});
  }
  a.print(std::cout);
  std::cout << '\n';
  b.print(std::cout);
  std::cout << "\nMeasurement analogues: Intel RAPL (CPU), nvidia-smi (GPU), Xilinx\n"
               "XRT (FPGA); here replaced by the documented power models in\n"
               "src/fpga/device.hpp.\n";
  return 0;
}
