// Ablation: bitonic top-k selector vs heap selection (Sec. III-A).
//
// On the FPGA the bitonic network wins by being branch-free and spatially
// pipelined; on a CPU the heap is faster. This bench quantifies the CPU
// cost of the faithful model and prints the comparator/stage counts that
// drive the hardware cost model.
#include <benchmark/benchmark.h>

#include <iostream>

#include "preprocess/topk.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace spechd;

ms::spectrum random_spectrum(std::size_t peaks, std::uint64_t seed) {
  xoshiro256ss rng(seed);
  ms::spectrum s;
  for (std::size_t i = 0; i < peaks; ++i) {
    s.peaks.push_back({rng.uniform(100.0, 1900.0),
                       static_cast<float>(rng.uniform(1.0, 1000.0))});
  }
  ms::sort_peaks(s);
  return s;
}

void bm_heap_topk(benchmark::State& state) {
  const auto base = random_spectrum(static_cast<std::size_t>(state.range(0)), 5);
  for (auto _ : state) {
    auto s = base;
    preprocess::heap_topk(s, 50);
    benchmark::DoNotOptimize(s);
  }
}

void bm_bitonic_topk(benchmark::State& state) {
  const auto base = random_spectrum(static_cast<std::size_t>(state.range(0)), 5);
  for (auto _ : state) {
    auto s = base;
    preprocess::bitonic_topk(s, 50);
    benchmark::DoNotOptimize(s);
  }
}

BENCHMARK(bm_heap_topk)->Arg(200)->Arg(1000)->Arg(4000);
BENCHMARK(bm_bitonic_topk)->Arg(200)->Arg(1000)->Arg(4000);

void print_network_stats() {
  text_table table("Bitonic network cost (drives the MSAS/FPGA model)");
  table.set_header({"peaks", "padded n", "stages", "comparators"});
  for (const std::size_t n : {128U, 424U, 1097U, 1894U, 4096U}) {
    const auto st = preprocess::bitonic_network_stats(n);
    table.add_row({text_table::num(n), text_table::num(st.padded_n),
                   text_table::num(st.stages), text_table::num(st.comparators)});
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  print_network_stats();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
