// Fig. 8: Standalone clustering speedup for PXD000561.
//
// "Spec-HD clocked in at 80 seconds, achieving a 12.3x speed-up in
//  comparison to HyperSpec, which took 1000 seconds. We also note a 14.3x
//  edge over GLEAMS ... These numbers become even more pronounced against
//  Falcon, with 100x speedup."
//
// Standalone = clustering of pre-encoded vectors only (one-time
// preprocessing amortised away, Sec. IV-C).
#include <iostream>

#include "fpga/tool_models.hpp"
#include "util/table.hpp"

int main() {
  using namespace spechd;
  using namespace spechd::fpga;
  using text_table = spechd::text_table;

  const auto ds = ms::paper_datasets()[4];  // PXD000561
  const auto runs = model_all_tools(ds, {}, {});
  const double spechd = runs[0].time.standalone_clustering();

  struct anchor {
    const char* tool;
    std::size_t index;
    double paper_speedup;  // 0 = not reported
  };
  const anchor anchors[] = {
      {"SpecHD", 0, 1.0},
      {"HyperSpec-HAC", 1, 12.3},
      {"GLEAMS", 3, 14.3},
      {"Falcon", 4, 100.0},
      {"msCRUSH", 5, 0.0},
      {"HyperSpec-DBSCAN", 2, 0.0},
  };

  text_table table("Fig. 8 — standalone clustering, PXD000561 (25M-spectra scale)");
  table.set_header({"tool", "clustering time (s, model)", "speedup (model)",
                    "speedup (paper)"});
  for (const auto& a : anchors) {
    const double t = runs[a.index].time.standalone_clustering();
    table.add_row({a.tool, text_table::num(t, 1), text_table::num(t / spechd, 1),
                   a.paper_speedup > 0 ? text_table::num(a.paper_speedup, 1) : "-"});
  }
  table.print(std::cout);
  std::cout << "\nPaper: SpecHD 80 s absolute; our model should land in the same\n"
               "regime (tens of seconds) with the ordering SpecHD << HyperSpec ~\n"
               "GLEAMS << Falcon.\n";
  return 0;
}
