// Ablation: HV dimensionality D_hv.
//
// The paper fixes D_hv = 2048 "optimizing resource use, memory, and
// accuracy" (Sec. IV-B). This bench sweeps D and reports clustering quality
// (at a fixed 1% ICR operating point), HV memory per spectrum, and the
// modelled FPGA clustering time — showing the knee at 2048.
#include <iostream>

#include "core/spechd.hpp"
#include "core/sweep.hpp"
#include "fpga/dataflow.hpp"
#include "util/table.hpp"

namespace {

spechd::ms::labelled_dataset make_dataset() {
  spechd::ms::synthetic_config c;
  c.peptide_count = 100;
  c.spectra_per_peptide_mean = 7.0;
  c.fragment_mz_sigma_ppm = 25.0;
  c.peak_dropout = 0.25;
  c.noise_peaks_per_spectrum = 25.0;
  c.seed = 808;
  return spechd::ms::generate_dataset(c);
}

}  // namespace

int main() {
  using namespace spechd;
  using text_table = spechd::text_table;

  const auto data = make_dataset();
  text_table table("Ablation — D_hv sweep (operating point: best clustered ratio at ICR <= 1%)");
  table.set_header({"D_hv", "clustered ratio", "ICR", "completeness", "bytes/HV",
                    "modelled cluster time PXD000561 (s)"});

  for (const std::size_t dim : {256U, 512U, 1024U, 2048U, 4096U, 8192U}) {
    const auto sweep = core::run_sweep(
        "D=" + std::to_string(dim), data,
        [&](const std::vector<ms::spectrum>& spectra, double a) {
          core::spechd_config config;
          config.encoder.dim = dim;
          config.distance_threshold = 0.25 + 0.30 * a;
          return core::spechd_pipeline(config).run(spectra).clustering;
        },
        9);
    const auto* best = sweep.best_at_icr(0.01);

    fpga::spechd_hw_config hw;
    hw.encoder.dim = dim;
    hw.cluster.dim = dim;
    const auto run = fpga::model_spechd_run(ms::paper_datasets()[4], hw);

    table.add_row({text_table::num(dim),
                   best ? text_table::num(best->quality.clustered_ratio, 3) : "n/a",
                   best ? text_table::num(best->quality.incorrect_ratio, 4) : "n/a",
                   best ? text_table::num(best->quality.completeness, 3) : "n/a",
                   text_table::num(dim / 8), text_table::num(run.time.cluster, 1)});
  }
  table.print(std::cout);
  std::cout << "\nExpected: quality saturates around D=2048 while memory and modelled\n"
               "clustering time keep growing linearly — the paper's chosen knee.\n";
  return 0;
}
