// Ablation: peak-selector strategy (global top-k vs per-window top-n).
//
// The FPGA uses a global bitonic top-k (Sec. III-A); window-based selection
// is the coverage-preserving alternative from the broader MS tooling. This
// bench compares clustering quality, surviving peak budgets, and the
// cophenetic fidelity of the resulting dendrograms under each selector.
#include <iostream>

#include "core/spechd.hpp"
#include "core/sweep.hpp"
#include "metrics/quality.hpp"
#include "ms/synthetic.hpp"
#include "util/table.hpp"

namespace {

spechd::ms::labelled_dataset make_dataset() {
  spechd::ms::synthetic_config c;
  c.peptide_count = 100;
  c.spectra_per_peptide_mean = 7.0;
  c.fragment_mz_sigma_ppm = 35.0;
  c.peak_dropout = 0.25;
  c.noise_peaks_per_spectrum = 30.0;
  c.seed = 515;
  return spechd::ms::generate_dataset(c);
}

}  // namespace

int main() {
  using namespace spechd;
  using text_table = spechd::text_table;

  const auto data = make_dataset();
  std::vector<std::int32_t> truth;
  truth.reserve(data.spectra.size());
  for (const auto& s : data.spectra) truth.push_back(s.label);

  struct variant {
    const char* name;
    preprocess::selector sel;
    std::size_t top_k;
    std::size_t per_window;
  };
  const variant variants[] = {
      {"heap top-50", preprocess::selector::heap_topk, 50, 0},
      {"bitonic top-50", preprocess::selector::bitonic_topk, 50, 0},
      {"window 6/100Da", preprocess::selector::window_topk, 0, 6},
      {"window 3/100Da", preprocess::selector::window_topk, 0, 3},
      {"heap top-25", preprocess::selector::heap_topk, 25, 0},
  };

  // Peak budgets shift the whole Hamming-distance scale (fewer peaks ->
  // tighter replicate distances), so a fixed cut is not a fair comparison.
  // Each variant is tuned to its own best operating point at ICR <= 1%,
  // exactly like the Fig. 6a protocol.
  text_table table("Ablation — peak selector (best operating point at ICR <= 1%)");
  table.set_header({"selector", "avg peaks kept", "clustered ratio", "ICR",
                    "completeness", "cut"});
  for (const auto& v : variants) {
    core::spechd_config base;
    base.preprocess.peak_selector = v.sel;
    if (v.top_k > 0) base.preprocess.top_k = v.top_k;
    if (v.per_window > 0) base.preprocess.window.peaks_per_window = v.per_window;

    const auto batch = preprocess::run_preprocessing(data.spectra, base.preprocess);
    const double avg_peaks =
        batch.spectra.empty()
            ? 0.0
            : static_cast<double>(batch.total_peaks_after) /
                  static_cast<double>(batch.spectra.size());

    const auto sweep = core::run_sweep(
        v.name, data,
        [&](const std::vector<ms::spectrum>& spectra, double a) {
          core::spechd_config config = base;
          config.distance_threshold = 0.25 + 0.30 * a;
          return core::spechd_pipeline(config).run(spectra).clustering;
        },
        13);
    const auto* best = sweep.best_at_icr(0.01);
    if (best == nullptr) {
      table.add_row({v.name, text_table::num(avg_peaks, 1), "n/a", "n/a", "n/a", "n/a"});
      continue;
    }
    table.add_row({v.name, text_table::num(avg_peaks, 1),
                   text_table::num(best->quality.clustered_ratio, 3),
                   text_table::num(best->quality.incorrect_ratio, 4),
                   text_table::num(best->quality.completeness, 3),
                   text_table::num(0.25 + 0.30 * best->aggressiveness, 3)});
  }
  table.print(std::cout);
  std::cout << "\nExpected: heap and bitonic tie exactly (same multiset); tuned\n"
               "operating points are comparable across selectors, with the cut\n"
               "moving to compensate for the peak budget; extreme budgets lose\n"
               "a little clustered ratio.\n";
  return 0;
}
