// Ablation: 16-bit fixed-point distance matrix (Sec. III-C).
//
// Measures (a) the memory saving and dendrogram fidelity of q16 vs f32 and
// (b) the runtime of both NN-chain paths with google-benchmark.
#include <benchmark/benchmark.h>

#include <iostream>

#include "cluster/nn_chain.hpp"
#include "hdc/distance.hpp"
#include "hdc/encoder.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace spechd;

std::vector<hdc::hypervector> random_hvs(std::size_t n, std::size_t dim,
                                         std::uint64_t seed) {
  xoshiro256ss rng(seed);
  std::vector<hdc::hypervector> hvs;
  hvs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) hvs.push_back(hdc::hypervector::random(dim, rng));
  return hvs;
}

void bm_nn_chain_f32(benchmark::State& state) {
  const auto hvs = random_hvs(static_cast<std::size_t>(state.range(0)), 2048, 3);
  const auto m = hdc::pairwise_hamming_f32(hvs);
  for (auto _ : state) {
    auto r = cluster::nn_chain_hac(m, cluster::linkage::complete);
    benchmark::DoNotOptimize(r);
  }
}

void bm_nn_chain_q16(benchmark::State& state) {
  const auto hvs = random_hvs(static_cast<std::size_t>(state.range(0)), 2048, 3);
  const auto m = hdc::pairwise_hamming_q16(hvs);
  for (auto _ : state) {
    auto r = cluster::nn_chain_hac(m, cluster::linkage::complete);
    benchmark::DoNotOptimize(r);
  }
}

BENCHMARK(bm_nn_chain_f32)->Arg(128)->Arg(512);
BENCHMARK(bm_nn_chain_q16)->Arg(128)->Arg(512);

void print_fidelity() {
  text_table table("Ablation — q16 vs f32 distance matrix");
  table.set_header({"n", "f32 bytes", "q16 bytes", "max |height diff|",
                    "flat labels equal @0.3"});
  for (const std::size_t n : {64U, 256U, 512U}) {
    const auto hvs = random_hvs(n, 2048, 11);
    const auto f = hdc::pairwise_hamming_f32(hvs);
    const auto q = hdc::pairwise_hamming_q16(hvs);
    const auto rf = cluster::nn_chain_hac(f, cluster::linkage::complete);
    const auto rq = cluster::nn_chain_hac(q, cluster::linkage::complete);
    double max_diff = 0.0;
    for (std::size_t k = 0; k < rf.tree.merges().size(); ++k) {
      max_diff = std::max(max_diff, std::abs(rf.tree.merges()[k].distance -
                                             rq.tree.merges()[k].distance));
    }
    const auto cf = rf.tree.cut(0.3);
    const auto cq = rq.tree.cut(0.3);
    table.add_row({text_table::num(n), text_table::num(f.bytes()),
                   text_table::num(q.bytes()), text_table::num(max_diff, 6),
                   cf.labels == cq.labels ? "yes" : "no"});
  }
  table.print(std::cout);
  std::cout << "q16 halves matrix memory; height deviations stay at the 2^-16\n"
               "quantisation scale (the paper's \"maintaining computational\n"
               "accuracy\" claim).\n";
}

}  // namespace

int main(int argc, char** argv) {
  print_fidelity();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
