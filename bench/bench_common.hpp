// Shared flag parsing for the bench executables.
//
// Every perf-sensitive bench takes the same knobs so the speedup of the
// kernel layer is measurable from the command line:
//
//   --threads=N        worker threads (0 = hardware concurrency)
//   --variant=NAME     kernel variant: auto | scalar | avx2 | avx512
//   --n=N, --dim=D     problem size overrides (benches pick defaults)
//   --json=PATH        override the BENCH_*.json output path ("" disables)
//
// Unrecognised flags are left alone (google-benchmark consumes its own).
#pragma once

#include <cstddef>
#include <iostream>
#include <string>
#include <thread>

#include "core/spechd.hpp"
#include "hdc/cpu_kernels.hpp"
#include "ms/synthetic.hpp"
#include "util/bench_json.hpp"

namespace spechd::bench {

struct bench_options {
  std::size_t threads = 0;  ///< 0 = hardware concurrency
  hdc::kernels::variant variant = hdc::kernels::best_supported();
  std::size_t n = 0;    ///< 0 = bench default
  std::size_t dim = 0;  ///< 0 = bench default
  std::string json;     ///< empty = bench default path

  std::size_t resolved_threads() const {
    return threads != 0 ? threads
                        : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
};

inline bool flag_value(const std::string& arg, const std::string& name, std::string& out) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  out = arg.substr(prefix.size());
  return true;
}

/// Parses the shared knobs from argv and applies the kernel variant.
inline bench_options parse_options(int argc, char** argv) {
  bench_options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (flag_value(arg, "threads", value)) {
      opts.threads = std::stoul(value);
    } else if (flag_value(arg, "variant", value)) {
      opts.variant = hdc::kernels::parse_variant(value);
    } else if (flag_value(arg, "n", value)) {
      opts.n = std::stoul(value);
    } else if (flag_value(arg, "dim", value)) {
      opts.dim = std::stoul(value);
    } else if (flag_value(arg, "json", value)) {
      opts.json = value;
    }
  }
  hdc::kernels::set_active(opts.variant);
  std::cout << "[bench] kernel variant: " << hdc::kernels::variant_name(opts.variant)
            << " (best supported: "
            << hdc::kernels::variant_name(hdc::kernels::best_supported())
            << "), threads: " << opts.resolved_threads() << "\n\n";
  return opts;
}

/// The shared synthetic workload: one dataset shape across the perf benches
/// so BENCH_*.json numbers stay comparable between benches and across PRs.
inline ms::synthetic_config synthetic_workload(std::size_t peptides) {
  ms::synthetic_config c;
  c.peptide_count = peptides;
  c.spectra_per_peptide_mean = 6.0;
  c.noise_peaks_per_spectrum = 30.0;
  c.seed = 5;
  return c;
}

/// Pipeline config wired from the shared knobs.
inline core::spechd_config pipeline_config(const bench_options& opts) {
  core::spechd_config config;
  config.threads = opts.resolved_threads();
  config.kernel_variant = hdc::kernels::variant_name(opts.variant);
  return config;
}

/// Emits the standard per-phase block ("phase_seconds" + spectra/sec) every
/// pipeline bench records, so the JSON schema can't drift between benches.
inline void emit_pipeline_phases(json_writer& json, const core::spechd_result& result,
                                 std::size_t spectra, double total_seconds) {
  json.begin_object("phase_seconds");
  json.field("preprocess", result.phases.preprocess);
  json.field("encode", result.phases.encode);
  json.field("cluster", result.phases.cluster);
  json.field("consensus", result.phases.consensus);
  json.field("total", total_seconds);
  json.end_object();
  json.field("spectra_per_sec",
             total_seconds > 0.0 ? static_cast<double>(spectra) / total_seconds : 0.0);
  json.field("clusters", result.clustering.cluster_count);
}

}  // namespace spechd::bench
