// Fig. 6a: Linkage Comparison.
//
// "We fixed an incorrect clustering ratio at 1% for these tests. Complete
//  linkage proved most effective with a 44% clustering ratio and 0.764
//  completeness score. Ward linkage was a close second at 40% and 0.756,
//  whereas single linkage lagged."
//
// We sweep the dendrogram-cut threshold per linkage on a labelled synthetic
// dataset, select the best operating point with ICR <= 1%, and report the
// clustered-spectra ratio and completeness alongside the paper's numbers.
#include <iostream>

#include "core/spechd.hpp"
#include "core/sweep.hpp"
#include "util/table.hpp"

namespace {

spechd::ms::labelled_dataset make_dataset() {
  // Hard regime: 120 peptides packed into a 250 Da neutral-mass window so
  // precursor buckets hold several confusable classes, plus heavy
  // fragment/intensity noise — the conditions under which linkage choice
  // actually matters (as on the paper's real PRIDE data).
  spechd::ms::synthetic_config c;
  c.peptide_count = 120;
  c.spectra_per_peptide_mean = 7.0;
  c.peptide_mass_min = 900.0;
  c.peptide_mass_max = 1150.0;
  c.fragment_mz_sigma_ppm = 45.0;
  c.precursor_mz_sigma_ppm = 30.0;
  c.intensity_sigma = 0.4;
  c.peak_dropout = 0.30;
  c.noise_peaks_per_spectrum = 35.0;
  c.unlabelled_fraction = 0.10;
  c.seed = 20240331;
  return spechd::ms::generate_dataset(c);
}

}  // namespace

int main() {
  using namespace spechd;
  using text_table = spechd::text_table;

  const auto data = make_dataset();
  std::cout << "dataset: " << data.spectra.size() << " spectra, " << data.library.size()
            << " peptides\n\n";

  struct paper_anchor {
    cluster::linkage link;
    double clustered;
    double completeness;
  };
  const paper_anchor anchors[] = {
      {cluster::linkage::complete, 0.44, 0.764},
      {cluster::linkage::ward, 0.40, 0.756},
      {cluster::linkage::single, 0.25, 0.70},  // "lagged" — no exact number
      {cluster::linkage::average, 0.0, 0.0},   // not reported; ours extra
  };

  text_table table("Fig. 6a — linkage efficacy at ICR <= 1%");
  table.set_header({"linkage", "clustered ratio (paper)", "clustered ratio (ours)",
                    "completeness (paper)", "completeness (ours)", "ICR (ours)"});

  for (const auto& anchor : anchors) {
    const auto sweep = core::run_sweep(
        std::string(cluster::linkage_name(anchor.link)), data,
        [&](const std::vector<ms::spectrum>& spectra, double aggressiveness) {
          core::spechd_config config;
          config.link = anchor.link;
          // The informative cut window on majority-binarised HVs is narrow
          // and high: ~0.40 (nothing merges) to ~0.56 (buckets collapse).
          config.distance_threshold = 0.40 + 0.16 * aggressiveness;
          return core::spechd_pipeline(config).run(spectra).clustering;
        },
        17);
    const auto* best = sweep.best_at_icr(0.01);
    const std::string paper_cr =
        anchor.clustered > 0 ? text_table::num(anchor.clustered, 2) : "-";
    const std::string paper_co =
        anchor.completeness > 0 ? text_table::num(anchor.completeness, 3) : "-";
    if (best == nullptr) {
      table.add_row({sweep.tool, paper_cr, "n/a", paper_co, "n/a", "n/a"});
      continue;
    }
    table.add_row({sweep.tool, paper_cr,
                   text_table::num(best->quality.clustered_ratio, 2), paper_co,
                   text_table::num(best->quality.completeness, 3),
                   text_table::num(best->quality.incorrect_ratio, 3)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: complete > ward > single on clustered ratio at "
               "fixed 1% ICR.\n";
  return 0;
}
