// Ablation: design-space exploration (Sec. III-A / IV).
//
// Sweeps cluster-kernel count, encoder count, bucketing resolution, P2P
// on/off and D_hv on the largest paper dataset, reporting end-to-end time,
// energy and EDP — the exploration that selected the paper's
// 1-encoder/5-cluster-kernel P2P configuration.
#include <iostream>

#include "fpga/dse.hpp"
#include "util/table.hpp"

int main() {
  using namespace spechd;
  using namespace spechd::fpga;
  using text_table = spechd::text_table;

  const auto ds = ms::paper_datasets()[4];  // PXD000561

  dse_sweep sweep;
  sweep.cluster_kernels = {1, 2, 4, 5, 8};
  sweep.encoder_kernels = {1, 2};
  sweep.resolutions = {0.05, 0.08, 0.2};
  sweep.p2p = {true, false};
  sweep.dims = {2048};

  const auto points = explore(ds, {}, sweep);

  text_table table("DSE — PXD000561, sorted by energy-delay product (top 15)");
  table.set_header({"cluster CUs", "encoders", "resolution", "P2P", "end-to-end (s)",
                    "cluster (s)", "energy (kJ)", "EDP", "fits HBM", "fabric util"});
  for (std::size_t i = 0; i < std::min<std::size_t>(15, points.size()); ++i) {
    const auto& p = points[i];
    table.add_row({text_table::num(std::size_t{p.cluster_kernels}),
                   text_table::num(std::size_t{p.encoder_kernels}),
                   text_table::num(p.bucket_resolution, 2), p.p2p ? "yes" : "no",
                   text_table::num(p.end_to_end_s, 1), text_table::num(p.cluster_s, 1),
                   text_table::num(p.energy_j / 1e3, 2),
                   text_table::num(p.edp() / 1e3, 1), p.fits_hbm ? "yes" : "no",
                   text_table::num(p.fabric_utilisation, 2) +
                       (p.fits_fabric ? "" : " (!)")});
  }
  table.print(std::cout);

  // Kernel-scaling curve at the paper's configuration.
  text_table scaling("Cluster-kernel scaling (resolution 0.08, P2P on)");
  scaling.set_header({"kernels", "cluster time (s)", "speedup vs 1"});
  double base = 0.0;
  for (const unsigned k : {1U, 2U, 4U, 5U, 8U}) {
    spechd_hw_config hw;
    hw.cluster_kernels = k;
    const auto run = model_spechd_run(ds, hw);
    if (k == 1) base = run.time.cluster;
    scaling.add_row({text_table::num(std::size_t{k}), text_table::num(run.time.cluster, 1),
                     text_table::num(base / run.time.cluster, 2)});
  }
  std::cout << '\n';
  scaling.print(std::cout);
  std::cout << "\nExpected: near-linear scaling to 5 kernels (bucket-level\n"
               "parallelism), diminishing beyond as the largest buckets dominate;\n"
               "P2P strictly better than host-staged transfers.\n";
  return 0;
}
