// Serving-path bench: sustained ingest throughput (journaled and
// unjournaled), query latency percentiles (idle and under concurrent
// ingest), snapshot round-trip time, crash-recovery replay time, an
// ingest/query thread-scaling sweep, a fault phase (journaled ingest
// under injected fsync latency/errors via the failpoint registry), an
// open-modification search phase (spectral-library build rate + shifted-
// bucket top-k query latency), and an observability phase (micro cost of
// the obs instruments + armed-vs-disarmed serving throughput; bar: armed
// >= 0.97x disarmed). Latency percentiles come from the shared
// obs::histogram — the same estimator `client --metrics` reports.
//
//   bench_serve [--threads=N] [--variant=V] [--n=SPECTRA] [--dim=D] [--json=PATH]
//
// Writes BENCH_serve.json (schema documented in bench/README.md). The
// thread-scaling section doubles the shard count up to --threads (default:
// hardware concurrency), feeding the ROADMAP's multi-core measurement item
// — on a 1-core container the sweep degenerates to a single entry, so run
// on a wide host for the interesting column.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "serve/search.hpp"
#include "serve/service.hpp"
#include "serve/snapshot.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace spechd;
using clock_type = std::chrono::steady_clock;

struct latency_stats {
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
  double qps = 0.0;
};

/// Percentiles straight from the shared obs::histogram: worker threads
/// record ns concurrently into per-thread shards (no sort, no merge of
/// per-worker vectors), and the summary reads one lossless merged view —
/// the same estimator `client --metrics` reports, bucket error ≤ 6.25%.
latency_stats summarize_histogram(const obs::histogram& hist, double wall_seconds) {
  std::vector<std::uint64_t> counts;
  std::uint64_t total = 0;
  std::uint64_t sum = 0;
  hist.merge(counts, total, sum);
  latency_stats stats;
  if (total == 0) return stats;
  obs::histogram_sample sample;
  sample.count = total;
  sample.sum = sum;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] > 0) {
      sample.buckets.push_back(
          {obs::hist_bucket_lo(i), obs::hist_bucket_hi(i), counts[i]});
    }
  }
  stats.p50_us = sample.percentile(0.50) / 1000.0;
  stats.p90_us = sample.percentile(0.90) / 1000.0;
  stats.p99_us = sample.percentile(0.99) / 1000.0;
  stats.mean_us =
      static_cast<double>(sum) / static_cast<double>(total) / 1000.0;
  stats.qps =
      wall_seconds > 0.0 ? static_cast<double>(total) / wall_seconds : 0.0;
  return stats;
}

/// Elapsed ns since `t0`, for recording into a histogram.
std::uint64_t ns_since(clock_type::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock_type::now() - t0)
          .count());
}

serve::serve_config make_config(const bench::bench_options& opts, std::size_t shards) {
  serve::serve_config config;
  config.pipeline = bench::pipeline_config(opts);
  config.pipeline.threads = 1;  // shard writers are the parallelism
  if (opts.dim != 0) config.pipeline.encoder.dim = opts.dim;
  config.shards = shards;
  config.queue_capacity = 16;
  return config;
}

double ingest_all(serve::clustering_service& service, const std::vector<ms::spectrum>& stream,
                  std::size_t batch) {
  const auto start = clock_type::now();
  for (std::size_t offset = 0; offset < stream.size(); offset += batch) {
    const auto end = std::min(offset + batch, stream.size());
    service.ingest({stream.begin() + static_cast<std::ptrdiff_t>(offset),
                    stream.begin() + static_cast<std::ptrdiff_t>(end)});
  }
  service.drain();
  return std::chrono::duration<double>(clock_type::now() - start).count();
}

/// `workers` threads issue `per_worker` queries each, recording per-query
/// ns straight into `hist` (concurrent per-thread shards — no per-worker
/// vectors to merge); returns the wall time of the whole volley.
double run_queries(const serve::clustering_service& service,
                   const std::vector<ms::spectrum>& stream, std::size_t workers,
                   std::size_t per_worker, obs::histogram& hist) {
  const auto start = clock_type::now();
  std::vector<std::thread> threads;
  for (std::size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      std::size_t index = w * 31;
      for (std::size_t i = 0; i < per_worker; ++i) {
        const auto& q = stream[index % stream.size()];
        const auto t0 = clock_type::now();
        const auto r = service.query(q);
        hist.record(ns_since(t0));
        if (r.matched && r.distance > 1.0) std::abort();  // keep the call un-elided
        index += 17;
      }
    });
  }
  for (auto& t : threads) t.join();
  return std::chrono::duration<double>(clock_type::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  const std::size_t spectra_target = opts.n != 0 ? opts.n : 4000;
  const std::size_t peptides = std::max<std::size_t>(1, spectra_target / 6);
  const std::size_t threads = opts.resolved_threads();
  const std::size_t batch = 64;

  const auto data = ms::generate_dataset(bench::synthetic_workload(peptides));
  const auto& stream = data.spectra;
  std::cout << "workload: " << stream.size() << " spectra, " << data.library.size()
            << " peptide classes\n\n";

  json_writer json;
  json.begin_object();
  json.field("bench", "serve");
  json.field("variant", hdc::kernels::variant_name(hdc::kernels::active()));
  json.field("threads", threads);
  json.begin_object("workload");
  json.field("spectra", stream.size());
  json.field("peptides", data.library.size());
  json.field("dim", opts.dim != 0 ? opts.dim : core::spechd_config{}.encoder.dim);
  json.field("ingest_batch", batch);
  json.end_object();

  // --- phase 1 + 1b: sustained ingest, unjournaled vs journaled ------------
  // Best-of-k_ingest_reps with *interleaved* repetitions (unjournaled, journaled,
  // unjournaled, ...): single-shot ingest walls swing wildly on a busy
  // 1-core container and background load drifts over seconds, so running
  // all of one mode first would bias the journaled/unjournaled ratio the
  // acceptance bar (>= 0.8) is judged on.
  constexpr int k_ingest_reps = 5;
  const auto journal_dir =
      (std::filesystem::temp_directory_path() / "bench_serve_journal").string();
  auto journaled_config = make_config(opts, threads);
  journaled_config.journal.dir = journal_dir;

  std::optional<serve::clustering_service> service_storage;
  double ingest_seconds = 0.0;
  double journaled_seconds = 0.0;
  std::string journaled_golden;
  std::uintmax_t journal_bytes = 0;
  for (int rep = 0; rep < k_ingest_reps; ++rep) {
    service_storage.emplace(make_config(opts, threads));
    const double plain = ingest_all(*service_storage, stream, batch);
    ingest_seconds = rep == 0 ? plain : std::min(ingest_seconds, plain);

    std::filesystem::remove_all(journal_dir);  // each rep journals from scratch
    serve::clustering_service journaled(journaled_config);
    const double jrnl = ingest_all(journaled, stream, batch);
    journaled_seconds = rep == 0 ? jrnl : std::min(journaled_seconds, jrnl);
    if (rep == k_ingest_reps - 1) {
      journaled_golden = serve::canonical_state(journaled.export_states());
      journal_bytes = journaled.stats().journal_bytes;
    }
  }
  serve::clustering_service& service = *service_storage;
  const auto stats = service.stats();
  const double ingest_rate =
      ingest_seconds > 0.0 ? static_cast<double>(stream.size()) / ingest_seconds : 0.0;
  std::cout << "ingest: " << stream.size() << " spectra in " << ingest_seconds << " s  ("
            << ingest_rate << " spectra/s, " << stats.cluster_count << " clusters)\n";
  json.begin_object("ingest");
  json.field("shards", threads);
  json.field("seconds", ingest_seconds);
  json.field("spectra_per_sec", ingest_rate);
  json.field("records", stats.record_count);
  json.field("clusters", stats.cluster_count);
  json.field("dropped", stats.dropped);
  json.end_object();

  // --- phase 1b report: journaled ingest + crash recovery -------------------
  // The journaled numbers were measured interleaved above; a fresh
  // construction on the last repetition's directory measures full journal
  // replay. The acceptance bar for the durability tier is journaled
  // ingest >= 0.8x the unjournaled rate.
  {
    const std::string& golden = journaled_golden;
    const double journaled_rate =
        journaled_seconds > 0.0 ? static_cast<double>(stream.size()) / journaled_seconds
                                : 0.0;
    const double vs_unjournaled = ingest_rate > 0.0 ? journaled_rate / ingest_rate : 0.0;
    std::cout << "ingest (journaled): " << stream.size() << " spectra in "
              << journaled_seconds << " s  (" << journaled_rate << " spectra/s, "
              << vs_unjournaled << "x the unjournaled rate, " << journal_bytes / 1024
              << " KiB journal)\n";
    json.begin_object("ingest_journaled");
    json.field("shards", threads);
    json.field("seconds", journaled_seconds);
    json.field("spectra_per_sec", journaled_rate);
    json.field("journal_bytes", static_cast<std::size_t>(journal_bytes));
    json.field("vs_unjournaled", vs_unjournaled);
    json.end_object();

    const auto recovery_start = clock_type::now();
    serve::clustering_service recovered(journaled_config);
    const double recovery_seconds =
        std::chrono::duration<double>(clock_type::now() - recovery_start).count();
    // A recovery bench that silently measured a wrong replay would be
    // worse than no bench.
    if (serve::canonical_state(recovered.export_states()) != golden) {
      std::cerr << "FATAL: journal recovery diverged from the journaled run\n";
      return 1;
    }
    const auto& report = recovered.recovery();
    const double replay_rate = recovery_seconds > 0.0
                                   ? static_cast<double>(report.spectra_replayed) /
                                         recovery_seconds
                                   : 0.0;
    std::cout << "recovery: " << report.spectra_replayed << " spectra ("
              << report.batches_replayed << " batches) replayed in " << recovery_seconds
              << " s  (" << replay_rate << " spectra/s)\n";
    json.begin_object("recovery");
    json.field("seconds", recovery_seconds);
    json.field("batches_replayed", report.batches_replayed);
    json.field("spectra_replayed", report.spectra_replayed);
    json.field("spectra_per_sec", replay_rate);
    json.end_object();
    std::filesystem::remove_all(journal_dir);
  }

  // --- phase 2: query latency against the idle service ---------------------
  const std::size_t query_count = std::min<std::size_t>(2000, stream.size() * 2);
  {
    obs::histogram hist;
    const double wall = run_queries(service, stream, threads,
                                    query_count / std::max<std::size_t>(1, threads), hist);
    const auto q = summarize_histogram(hist, wall);
    std::cout << "query (idle): p50 " << q.p50_us << " us, p90 " << q.p90_us
              << " us, p99 " << q.p99_us << " us, " << q.qps << " q/s\n";
    json.begin_object("query_idle");
    json.field("workers", threads);
    json.field("queries", query_count);
    json.field("p50_us", q.p50_us);
    json.field("p90_us", q.p90_us);
    json.field("p99_us", q.p99_us);
    json.field("mean_us", q.mean_us);
    json.field("qps", q.qps);
    json.end_object();
  }

  // --- phase 3: queries concurrent with ingest (the serving steady state) --
  {
    serve::clustering_service mixed(make_config(opts, threads));
    // Preload half so queries have state to hit, then query while the
    // second half streams in.
    const std::size_t half = stream.size() / 2;
    ingest_all(mixed, {stream.begin(), stream.begin() + static_cast<std::ptrdiff_t>(half)},
               batch);
    std::atomic<bool> ingest_done{false};
    double mixed_ingest_seconds = 0.0;
    std::thread producer([&] {
      const auto start = clock_type::now();
      for (std::size_t offset = half; offset < stream.size(); offset += batch) {
        const auto end = std::min(offset + batch, stream.size());
        mixed.ingest({stream.begin() + static_cast<std::ptrdiff_t>(offset),
                      stream.begin() + static_cast<std::ptrdiff_t>(end)});
      }
      mixed.drain();
      mixed_ingest_seconds = std::chrono::duration<double>(clock_type::now() - start).count();
      ingest_done = true;
    });
    obs::histogram hist;
    const double wall = run_queries(
        mixed, stream, threads, query_count / std::max<std::size_t>(1, threads), hist);
    producer.join();
    const auto q = summarize_histogram(hist, wall);
    const double mixed_rate = mixed_ingest_seconds > 0.0
                                  ? static_cast<double>(stream.size() - half) /
                                        mixed_ingest_seconds
                                  : 0.0;
    std::cout << "query (during ingest): p50 " << q.p50_us << " us, p99 " << q.p99_us
              << " us, " << q.qps << " q/s; concurrent ingest " << mixed_rate
              << " spectra/s\n";
    json.begin_object("query_under_ingest");
    json.field("workers", threads);
    json.field("queries", query_count);
    json.field("p50_us", q.p50_us);
    json.field("p90_us", q.p90_us);
    json.field("p99_us", q.p99_us);
    json.field("qps", q.qps);
    json.field("concurrent_ingest_spectra_per_sec", mixed_rate);
    json.end_object();
  }

  // --- phase 4: snapshot round trip ----------------------------------------
  {
    const std::string path =
        (std::filesystem::temp_directory_path() / "bench_serve.sphsnap").string();
    const auto save_start = clock_type::now();
    service.snapshot_file(path);
    const double save_seconds =
        std::chrono::duration<double>(clock_type::now() - save_start).count();
    const auto bytes = std::filesystem::file_size(path);

    serve::clustering_service restored(make_config(opts, threads));
    const auto load_start = clock_type::now();
    restored.restore_file(path);
    const double load_seconds =
        std::chrono::duration<double>(clock_type::now() - load_start).count();
    // The restore must be exact — a bench that silently measured a wrong
    // restore would be worse than no bench.
    if (serve::canonical_state(restored.export_states()) !=
        serve::canonical_state(service.export_states())) {
      std::cerr << "FATAL: snapshot round trip changed state\n";
      return 1;
    }
    std::remove(path.c_str());
    std::cout << "snapshot: save " << save_seconds << " s, restore " << load_seconds
              << " s, " << bytes / 1024 << " KiB\n";
    json.begin_object("snapshot");
    json.field("bytes", static_cast<std::size_t>(bytes));
    json.field("save_seconds", save_seconds);
    json.field("restore_seconds", load_seconds);
    json.field("round_trip_seconds", save_seconds + load_seconds);
    json.end_object();
  }

  // --- phase 5: thread scaling (shards = query workers = t) ----------------
  std::cout << "\nthread scaling (shards = workers = t):\n";
  json.begin_array("thread_scaling");
  std::vector<std::size_t> widths;
  for (std::size_t t = 1; t < threads; t *= 2) widths.push_back(t);
  widths.push_back(threads);  // the top width is always measured
  for (const std::size_t t : widths) {
    serve::clustering_service scaled(make_config(opts, t));
    const double seconds = ingest_all(scaled, stream, batch);
    obs::histogram hist;
    const double wall =
        run_queries(scaled, stream, t, query_count / std::max<std::size_t>(1, t), hist);
    const auto q = summarize_histogram(hist, wall);
    const double rate =
        seconds > 0.0 ? static_cast<double>(stream.size()) / seconds : 0.0;
    std::cout << "  t=" << t << ": ingest " << rate << " spectra/s, query " << q.qps
              << " q/s (p99 " << q.p99_us << " us)\n";
    json.begin_object();
    json.field("threads", t);
    json.field("ingest_spectra_per_sec", rate);
    json.field("query_qps", q.qps);
    json.field("query_p99_us", q.p99_us);
    json.end_object();
  }
  json.end_array();

  // --- phase 6: ingest under injected fsync faults --------------------------
  // The failure-hardening cost model: journaled+fsync'd ingest measured
  // disarmed (baseline), under injected fsync latency (a slow disk), and
  // under intermittent injected fsync errors (a flaky disk) where each hit
  // degrades a shard read-only and the bench runs the operator playbook —
  // compact to heal, retry the rejected batch. Seeds are fixed so the
  // fault pattern is part of the bench definition, not run-to-run noise.
  {
    auto fault_config = make_config(opts, threads);
    fault_config.journal.dir = journal_dir;
    fault_config.journal.fsync = true;
    // fsync every append: group commit would amortise the site down to a
    // handful of hits per run, and the phase is pricing the fsync path.
    fault_config.journal.group_commit_records = 1;

    util::registry().reset();
    std::filesystem::remove_all(journal_dir);
    double fault_baseline_seconds = 0.0;
    {
      serve::clustering_service svc(fault_config);
      fault_baseline_seconds = ingest_all(svc, stream, batch);
    }

    const char* delay_spec = "journal.fsync=delay:1@p0.5";
    std::filesystem::remove_all(journal_dir);
    util::registry().seed(20260808);
    util::registry().arm_from_spec(delay_spec);
    double delay_seconds = 0.0;
    {
      serve::clustering_service svc(fault_config);
      delay_seconds = ingest_all(svc, stream, batch);
    }
    util::registry().reset();

    const char* error_spec = "journal.fsync=error:EIO@p0.05";
    std::filesystem::remove_all(journal_dir);
    util::registry().seed(20260808);
    util::registry().arm_from_spec(error_spec);
    std::size_t rejected_batches = 0;
    std::size_t heal_compactions = 0;
    double error_seconds = 0.0;
    {
      serve::clustering_service svc(fault_config);
      const auto start = clock_type::now();
      for (std::size_t offset = 0; offset < stream.size(); offset += batch) {
        const auto end = std::min(offset + batch, stream.size());
        const std::vector<ms::spectrum> slice(
            stream.begin() + static_cast<std::ptrdiff_t>(offset),
            stream.begin() + static_cast<std::ptrdiff_t>(end));
        try {
          svc.ingest(slice);
          continue;
        } catch (const spechd::error&) {
          ++rejected_batches;
        }
        try {
          svc.drain();
        } catch (const spechd::error&) {
        }
        try {
          svc.compact_journal();
          ++heal_compactions;
        } catch (const spechd::error&) {
        }
        try {
          svc.ingest(slice);  // one retry after the heal; then move on
        } catch (const spechd::error&) {
          ++rejected_batches;
        }
      }
      try {
        svc.drain();
      } catch (const spechd::error&) {
      }
      error_seconds = std::chrono::duration<double>(clock_type::now() - start).count();
    }
    // Whatever the faults did, the directory must recover cleanly disarmed.
    util::registry().reset();
    std::size_t records_after_recovery = 0;
    {
      serve::clustering_service recovered(fault_config);
      records_after_recovery = recovered.stats().record_count;
    }
    std::filesystem::remove_all(journal_dir);

    const auto rate = [&](double s) {
      return s > 0.0 ? static_cast<double>(stream.size()) / s : 0.0;
    };
    std::cout << "\nfault ingest (journaled, fsync): baseline " << rate(fault_baseline_seconds)
              << " spectra/s; +fsync delay " << rate(delay_seconds) << " spectra/s; "
              << "+fsync errors " << rate(error_seconds) << " spectra/s ("
              << rejected_batches << " rejected batches, " << heal_compactions
              << " heal compactions, " << records_after_recovery
              << " records recovered)\n";
    json.begin_object("fault_ingest");
    json.field("shards", threads);
    json.field("baseline_seconds", fault_baseline_seconds);
    json.field("baseline_spectra_per_sec", rate(fault_baseline_seconds));
    json.field("fsync_delay_spec", delay_spec);
    json.field("fsync_delay_seconds", delay_seconds);
    json.field("fsync_delay_spectra_per_sec", rate(delay_seconds));
    json.field("fsync_delay_vs_baseline",
               fault_baseline_seconds > 0.0 ? fault_baseline_seconds / delay_seconds : 0.0);
    json.field("fsync_error_spec", error_spec);
    json.field("fsync_error_seconds", error_seconds);
    json.field("fsync_error_spectra_per_sec", rate(error_seconds));
    json.field("rejected_batches", rejected_batches);
    json.field("heal_compactions", heal_compactions);
    json.field("records_after_recovery", records_after_recovery);
    json.end_object();
  }

  // --- phase 7: networked serving (epoll front end + binary protocol) ------
  // The same service behind `spechd serve --listen`: a loopback load
  // generator measures the network tier's cost on top of the in-process
  // numbers above. Closed loop sweeps concurrent connections (each a
  // blocking request/response client); open loop paces one pipelined
  // connection at a fixed arrival rate; the overload phase hammers a
  // low-shed-threshold server and records typed shed_load responses —
  // admission control, not unbounded queueing.
  {
    net::server_config net_config;
    net_config.shed_queue_depth = 1u << 20;  // latency phases: never shed
    net::server srv(service, net_config);
    const std::uint16_t port = srv.port();

    std::cout << "\nnet serve (loopback):\n";
    json.begin_object("net_serve");
    double closed_qps_single = 0.0;
    json.begin_array("closed_loop");
    for (const std::size_t conns : {1, 2, 4, 8}) {
      const std::size_t per_conn =
          std::max<std::size_t>(1, query_count / conns);
      obs::histogram hist;
      const auto start = clock_type::now();
      std::vector<std::thread> workers;
      for (std::size_t c = 0; c < conns; ++c) {
        workers.emplace_back([&, c] {
          net::client cli("127.0.0.1", port);
          std::size_t index = c * 131;
          for (std::size_t i = 0; i < per_conn; ++i) {
            const auto& q = stream[index % stream.size()];
            const auto t0 = clock_type::now();
            const auto r = cli.query(q);
            hist.record(ns_since(t0));
            if (r.matched && r.distance > 1.0) std::abort();
            index += 17;
          }
        });
      }
      for (auto& w : workers) w.join();
      const double wall =
          std::chrono::duration<double>(clock_type::now() - start).count();
      const auto q = summarize_histogram(hist, wall);
      if (conns == 1) closed_qps_single = q.qps;
      std::cout << "  closed loop, " << conns << " conn: " << q.qps
                << " q/s, p50 " << q.p50_us << " us, p99 " << q.p99_us << " us\n";
      json.begin_object();
      json.field("connections", conns);
      json.field("queries", per_conn * conns);
      json.field("qps", q.qps);
      json.field("p50_us", q.p50_us);
      json.field("p90_us", q.p90_us);
      json.field("p99_us", q.p99_us);
      json.end_object();
    }
    json.end_array();

    // Open loop: fixed arrival rate (~70% of the single-connection
    // closed-loop throughput) on one pipelined connection, latency taken
    // from actual send to response. A bounded in-flight window keeps the
    // generator from degenerating into an unbounded burst if the server
    // cannot hold the rate.
    {
      const double target_qps = std::max(500.0, closed_qps_single * 0.7);
      const auto interval = std::chrono::duration<double>(1.0 / target_qps);
      constexpr std::size_t k_window = 64;
      net::client cli("127.0.0.1", port);
      std::vector<clock_type::time_point> sent;
      sent.reserve(query_count);
      obs::histogram hist;
      std::size_t read_index = 0;
      const auto start = clock_type::now();
      auto next_send = start;
      for (std::size_t i = 0; i < query_count; ++i) {
        std::this_thread::sleep_until(next_send);
        next_send += std::chrono::duration_cast<clock_type::duration>(interval);
        cli.send_query(stream[(i * 17) % stream.size()]);
        sent.push_back(clock_type::now());
        while (sent.size() - read_index > k_window) {
          (void)cli.read_query_response();
          hist.record(ns_since(sent[read_index]));
          ++read_index;
        }
      }
      while (read_index < sent.size()) {
        (void)cli.read_query_response();
        hist.record(ns_since(sent[read_index]));
        ++read_index;
      }
      const double wall =
          std::chrono::duration<double>(clock_type::now() - start).count();
      const auto q = summarize_histogram(hist, wall);
      std::cout << "  open loop @ " << target_qps << " q/s target: achieved "
                << q.qps << " q/s, p50 " << q.p50_us << " us, p99 " << q.p99_us
                << " us\n";
      json.begin_object("open_loop");
      json.field("target_qps", target_qps);
      json.field("achieved_qps", q.qps);
      json.field("queries", query_count);
      json.field("pipeline_window", k_window);
      json.field("p50_us", q.p50_us);
      json.field("p90_us", q.p90_us);
      json.field("p99_us", q.p99_us);
      json.end_object();
    }

    // Overload: a separate front end on the same service with the shed
    // threshold at 2 queued batches; four connections fire ingests with
    // no pacing and no retries. The typed shed_load responses are the
    // backpressure — in-flight work stays bounded by the shard queues.
    {
      net::server_config overload_config;
      overload_config.shed_queue_depth = 2;
      net::server overload_srv(service, overload_config);
      constexpr std::size_t k_conns = 4;
      constexpr std::size_t k_batches_per_conn = 50;
      std::atomic<std::size_t> accepted{0};
      std::atomic<std::size_t> shed{0};
      const auto start = clock_type::now();
      std::vector<std::thread> producers;
      for (std::size_t c = 0; c < k_conns; ++c) {
        producers.emplace_back([&, c] {
          net::client cli("127.0.0.1", overload_srv.port());
          std::size_t offset = c * 977;
          for (std::size_t i = 0; i < k_batches_per_conn; ++i) {
            std::vector<ms::spectrum> slice;
            slice.reserve(batch);
            for (std::size_t j = 0; j < batch; ++j) {
              slice.push_back(stream[(offset + j) % stream.size()]);
            }
            offset += batch;
            const auto r = cli.ingest(slice);
            if (r.accepted) {
              accepted.fetch_add(1, std::memory_order_relaxed);
            } else {
              shed.fetch_add(1, std::memory_order_relaxed);
            }
          }
        });
      }
      for (auto& p : producers) p.join();
      const double wall =
          std::chrono::duration<double>(clock_type::now() - start).count();
      service.drain();
      const auto counters = overload_srv.counters();
      std::cout << "  overload (shed threshold 2): " << accepted << " accepted, "
                << shed << " shed of " << k_conns * k_batches_per_conn
                << " batches in " << wall << " s\n";
      json.begin_object("overload");
      json.field("connections", k_conns);
      json.field("batches_sent", k_conns * k_batches_per_conn);
      json.field("shed_queue_depth", std::size_t{2});
      json.field("accepted", accepted.load());
      json.field("shed", shed.load());
      json.field("server_shed_counter", counters.shed);
      json.field("seconds", wall);
      json.end_object();
    }
    json.end_object();
  }

  // --- phase 8: open-modification search (library build + top-k query) ------
  {
    std::cout << "\n[search] spectral library build + shifted-bucket top-k\n";
    const auto search_config = make_config(opts, 1);

    const auto build_start = clock_type::now();
    const auto library =
        serve::spectral_library::from_spectra(stream, search_config.pipeline);
    const double build_seconds =
        std::chrono::duration<double>(clock_type::now() - build_start).count();
    const double build_rate =
        build_seconds > 0.0 ? static_cast<double>(stream.size()) / build_seconds : 0.0;
    std::cout << "  library build: " << library.size() << " entries in "
              << library.bucket_count() << " buckets, " << build_seconds << " s ("
              << build_rate << " spectra/s)\n";

    // Round-trip through the on-disk .sphlib so the measured query path is
    // the exact one `serve --library` answers query_topk with.
    const std::string lib_path =
        (std::filesystem::temp_directory_path() /
         ("spechd_bench_library_" + std::to_string(::getpid()) + ".sphlib"))
            .string();
    library.save(lib_path);
    serve::clustering_service searcher(search_config);
    searcher.load_library(lib_path);
    std::remove(lib_path.c_str());

    constexpr std::size_t k_top_k = 10;
    constexpr double k_tolerance_da = 2.5;
    const std::size_t search_queries = std::min<std::size_t>(stream.size(), 2000);
    obs::histogram hist;
    std::uint64_t candidates = 0;
    std::uint64_t buckets_probed = 0;
    const auto start = clock_type::now();
    for (std::size_t i = 0; i < search_queries; ++i) {
      const auto& q = stream[(i * 17) % stream.size()];
      const auto t0 = clock_type::now();
      const auto r = searcher.search(q, k_top_k, k_tolerance_da);
      hist.record(ns_since(t0));
      candidates += r.candidates;
      buckets_probed += r.buckets_probed;
      if (!r.hits.empty() && r.hits.front().distance > 1.0) std::abort();
    }
    const double wall =
        std::chrono::duration<double>(clock_type::now() - start).count();
    const auto q = summarize_histogram(hist, wall);
    const double mean_candidates =
        search_queries > 0 ? static_cast<double>(candidates) /
                                 static_cast<double>(search_queries)
                           : 0.0;
    std::cout << "  top-" << k_top_k << " @ ±" << k_tolerance_da << " Da: "
              << q.qps << " q/s, p50 " << q.p50_us << " us, p99 " << q.p99_us
              << " us (" << mean_candidates << " candidates/query)\n";

    json.begin_object("search");
    json.field("library_entries", library.size());
    json.field("library_buckets", library.bucket_count());
    json.field("build_seconds", build_seconds);
    json.field("build_spectra_per_sec", build_rate);
    json.field("queries", search_queries);
    json.field("top_k", k_top_k);
    json.field("tolerance_da", k_tolerance_da);
    json.field("mean_candidates_per_query", mean_candidates);
    json.field("mean_buckets_probed",
               search_queries > 0 ? static_cast<double>(buckets_probed) /
                                        static_cast<double>(search_queries)
                                  : 0.0);
    json.field("p50_us", q.p50_us);
    json.field("p90_us", q.p90_us);
    json.field("p99_us", q.p99_us);
    json.field("mean_us", q.mean_us);
    json.field("qps", q.qps);
    json.end_object();
  }

  // --- phase 9: observability overhead --------------------------------------
  // Prices the telemetry subsystem itself: micro cost of one counter add /
  // histogram record / armed+disarmed trace_span, then ingest and query
  // throughput with timing instrumentation armed vs disarmed. The
  // acceptance bar is armed >= 0.97x disarmed — observability that taxes
  // the hot path more than 3% is a bug, not a feature.
  {
    std::cout << "\n[observability] instrumentation overhead\n";
    constexpr std::size_t k_micro_iters = 1'000'000;
    const auto per_op_ns = [&](clock_type::time_point t0) {
      return static_cast<double>(ns_since(t0)) / static_cast<double>(k_micro_iters);
    };

    obs::counter micro_counter;
    auto t0 = clock_type::now();
    for (std::size_t i = 0; i < k_micro_iters; ++i) micro_counter.add(1);
    const double counter_add_ns = per_op_ns(t0);
    if (micro_counter.value() != k_micro_iters) std::abort();

    obs::histogram micro_hist;
    t0 = clock_type::now();
    for (std::size_t i = 0; i < k_micro_iters; ++i) micro_hist.record(i);
    const double histogram_record_ns = per_op_ns(t0);

    obs::set_armed(true);
    t0 = clock_type::now();
    for (std::size_t i = 0; i < k_micro_iters; ++i) {
      obs::trace_span span(micro_hist, obs::stage::route);
    }
    const double span_armed_ns = per_op_ns(t0);
    obs::set_armed(false);
    t0 = clock_type::now();
    for (std::size_t i = 0; i < k_micro_iters; ++i) {
      obs::trace_span span(micro_hist, obs::stage::route);
    }
    const double span_disarmed_ns = per_op_ns(t0);
    obs::set_armed(true);

    // Flight recorder (PR 10): one structured event into the per-thread
    // ring, armed and disarmed — this is what every serving-path
    // instrumentation site pays.
    obs::flight_recorder::instance().reset();
    t0 = clock_type::now();
    for (std::size_t i = 0; i < k_micro_iters; ++i) {
      obs::record_event(obs::event_kind::ingest_batch, i, 0);
    }
    const double event_armed_ns = per_op_ns(t0);
    if (obs::flight_recorder::instance().total_recorded() != k_micro_iters) {
      std::abort();
    }
    obs::set_armed(false);
    t0 = clock_type::now();
    for (std::size_t i = 0; i < k_micro_iters; ++i) {
      obs::record_event(obs::event_kind::ingest_batch, i, 0);
    }
    const double event_disarmed_ns = per_op_ns(t0);
    obs::set_armed(true);
    obs::flight_recorder::instance().reset();

    // Watchdog heartbeat: one clock read + one relaxed store, what every
    // writer-loop iteration pays once registered.
    auto beat = obs::watchdog::instance().register_component("bench/heartbeat");
    t0 = clock_type::now();
    for (std::size_t i = 0; i < k_micro_iters; ++i) beat.pulse();
    const double pulse_ns = per_op_ns(t0);
    beat.retire();

    std::cout << "  micro: counter add " << counter_add_ns << " ns, histogram record "
              << histogram_record_ns << " ns, span " << span_armed_ns
              << " ns armed / " << span_disarmed_ns << " ns disarmed\n";
    std::cout << "  micro: flight event " << event_armed_ns << " ns armed / "
              << event_disarmed_ns << " ns disarmed, watchdog pulse " << pulse_ns
              << " ns\n";

    // Macro: the serving paths end to end, interleaved best-of-3 per mode
    // (same anti-drift discipline as the journaled/unjournaled ratio).
    constexpr int k_obs_reps = 3;
    double armed_ingest_s = 0.0;
    double disarmed_ingest_s = 0.0;
    double armed_query_wall = 0.0;
    double disarmed_query_wall = 0.0;
    const std::size_t per_worker = query_count / std::max<std::size_t>(1, threads);
    for (int rep = 0; rep < k_obs_reps; ++rep) {
      obs::set_armed(true);
      {
        serve::clustering_service svc(make_config(opts, threads));
        const double s = ingest_all(svc, stream, batch);
        armed_ingest_s = rep == 0 ? s : std::min(armed_ingest_s, s);
        obs::histogram qh;
        const double w = run_queries(svc, stream, threads, per_worker, qh);
        armed_query_wall = rep == 0 ? w : std::min(armed_query_wall, w);
      }
      obs::set_armed(false);
      {
        serve::clustering_service svc(make_config(opts, threads));
        const double s = ingest_all(svc, stream, batch);
        disarmed_ingest_s = rep == 0 ? s : std::min(disarmed_ingest_s, s);
        obs::histogram qh;
        const double w = run_queries(svc, stream, threads, per_worker, qh);
        disarmed_query_wall = rep == 0 ? w : std::min(disarmed_query_wall, w);
      }
    }
    obs::set_armed(true);
    const auto rate = [&](double s) {
      return s > 0.0 ? static_cast<double>(stream.size()) / s : 0.0;
    };
    const std::size_t queries_issued =
        per_worker * std::max<std::size_t>(1, threads);
    const auto qps = [&](double w) {
      return w > 0.0 ? static_cast<double>(queries_issued) / w : 0.0;
    };
    const double ingest_ratio =
        rate(disarmed_ingest_s) > 0.0 ? rate(armed_ingest_s) / rate(disarmed_ingest_s) : 0.0;
    const double query_ratio =
        qps(disarmed_query_wall) > 0.0 ? qps(armed_query_wall) / qps(disarmed_query_wall)
                                       : 0.0;
    std::cout << "  ingest: armed " << rate(armed_ingest_s) << " vs disarmed "
              << rate(disarmed_ingest_s) << " spectra/s (" << ingest_ratio
              << "x, bar >= 0.97)\n";
    std::cout << "  query:  armed " << qps(armed_query_wall) << " vs disarmed "
              << qps(disarmed_query_wall) << " q/s (" << query_ratio
              << "x, bar >= 0.97)\n";

    json.begin_object("observability");
    json.field("micro_iters", k_micro_iters);
    json.field("counter_add_ns", counter_add_ns);
    json.field("histogram_record_ns", histogram_record_ns);
    json.field("span_armed_ns", span_armed_ns);
    json.field("span_disarmed_ns", span_disarmed_ns);
    json.field("flight_event_armed_ns", event_armed_ns);
    json.field("flight_event_disarmed_ns", event_disarmed_ns);
    json.field("watchdog_pulse_ns", pulse_ns);
    json.field("ingest_armed_spectra_per_sec", rate(armed_ingest_s));
    json.field("ingest_disarmed_spectra_per_sec", rate(disarmed_ingest_s));
    json.field("ingest_armed_vs_disarmed", ingest_ratio);
    json.field("query_armed_qps", qps(armed_query_wall));
    json.field("query_disarmed_qps", qps(disarmed_query_wall));
    json.field("query_armed_vs_disarmed", query_ratio);
    json.end_object();
  }

  json.end_object();

  const std::string path = opts.json.empty() ? "BENCH_serve.json" : opts.json;
  if (!path.empty()) {
    json.write_file(path);
    std::cout << "\nwrote " << path << "\n";
  }
  return 0;
}
