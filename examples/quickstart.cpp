// Quickstart: generate a small synthetic MS/MS dataset, run the full SpecHD
// pipeline (preprocess -> ID-Level encode -> NN-chain HAC -> consensus), and
// evaluate clustering quality against the known ground truth.
//
//   $ ./quickstart
#include <iostream>

#include "core/spechd.hpp"
#include "metrics/quality.hpp"
#include "ms/synthetic.hpp"

int main() {
  using namespace spechd;

  // 1. A labelled dataset: 50 peptides, ~8 replicate spectra each.
  ms::synthetic_config data_config;
  data_config.peptide_count = 50;
  data_config.spectra_per_peptide_mean = 8.0;
  data_config.seed = 7;
  const auto data = ms::generate_dataset(data_config);
  std::cout << "generated " << data.spectra.size() << " spectra from "
            << data.library.size() << " peptides\n";

  // 2. The SpecHD pipeline with paper defaults: D_hv = 2048, complete
  //    linkage, 16-bit fixed-point distance matrix, 0.42 Hamming cut.
  core::spechd_pipeline pipeline(core::spechd_config{});
  const auto result = pipeline.run(data.spectra);

  std::cout << "clusters: " << result.clustering.cluster_count << " ("
            << result.consensus.size() << " consensus spectra)\n"
            << "buckets: " << result.bucket_count << "\n"
            << "compression factor: " << result.compression_factor << "x\n"
            << "phases (s): preprocess=" << result.phases.preprocess
            << " encode=" << result.phases.encode
            << " cluster=" << result.phases.cluster
            << " consensus=" << result.phases.consensus << "\n";

  // 3. Quality against ground truth.
  std::vector<std::int32_t> truth;
  truth.reserve(data.spectra.size());
  for (const auto& s : data.spectra) truth.push_back(s.label);
  const auto quality = metrics::evaluate_clustering(truth, result.clustering);
  std::cout << "clustered ratio: " << quality.clustered_ratio << "\n"
            << "incorrect clustering ratio: " << quality.incorrect_ratio << "\n"
            << "completeness: " << quality.completeness << "\n";
  return 0;
}
