// incremental_update: the "one-time preprocessing and subsequent updates"
// workflow from Sec. IV-B — encode a repository once into a compact
// hypervector store, persist it, then cluster new acquisition batches
// incrementally against it without re-encoding history.
//
//   $ ./incremental_update
#include <filesystem>
#include <iostream>

#include "core/incremental.hpp"
#include "metrics/quality.hpp"
#include "ms/synthetic.hpp"

int main() {
  using namespace spechd;

  // A "repository" of existing spectra and two subsequent acquisition runs
  // covering the same peptides.
  ms::synthetic_config base;
  base.peptide_count = 60;
  base.spectra_per_peptide_mean = 6.0;
  base.seed = 11;
  const auto repository = ms::generate_dataset(base);

  const std::size_t third = repository.spectra.size() / 3;
  std::vector<ms::spectrum> initial(repository.spectra.begin(),
                                    repository.spectra.begin() + 2 * third);
  std::vector<ms::spectrum> run1(repository.spectra.begin() + 2 * third,
                                 repository.spectra.begin() + 2 * third + third / 2);
  std::vector<ms::spectrum> run2(repository.spectra.begin() + 2 * third + third / 2,
                                 repository.spectra.end());

  core::spechd_config config;
  core::incremental_clusterer clusterer(config);

  // One-time encoding of the repository: push_batch preprocesses and
  // encodes the whole batch through the shared pool and assigns buckets in
  // parallel (identical clusters to one-at-a-time push()).
  auto report = clusterer.push_batch(initial);
  clusterer.rebuild_dirty_buckets();
  std::cout << "bootstrap: " << report.added << " spectra -> "
            << clusterer.cluster_count() << " clusters\n";

  // Persist the hyperdimensional store (the compressed repository format).
  const auto store_path =
      (std::filesystem::temp_directory_path() / "spechd_repository.sphv").string();
  clusterer.to_store().save_file(store_path);
  std::cout << "persisted store: " << store_path << " ("
            << clusterer.to_store().file_bytes() / 1024 << " KiB for "
            << clusterer.size() << " spectra)\n";

  // A new session: reload the store, then stream in new runs.
  core::incremental_clusterer session(config);
  session.bootstrap(hdc::hv_store::load_file(store_path));
  for (const auto* batch : {&run1, &run2}) {
    report = session.push_batch(*batch);
    std::cout << "update: +" << report.added << " spectra, "
              << report.joined_existing << " joined existing clusters, "
              << report.new_clusters << " new clusters, "
              << report.buckets_touched << " buckets touched\n";
  }
  session.rebuild_dirty_buckets();

  // Quality of the final state against ground truth.
  std::vector<std::int32_t> truth;
  std::vector<const std::vector<ms::spectrum>*> order = {&initial, &run1, &run2};
  for (const auto* batch : order) {
    for (const auto& s : *batch) truth.push_back(s.label);
  }
  const auto q = metrics::evaluate_clustering(truth, session.clustering());
  std::cout << "final: " << session.cluster_count() << " clusters, clustered ratio "
            << q.clustered_ratio << ", ICR " << q.incorrect_ratio << "\n";

  std::filesystem::remove(store_path);
  return 0;
}
