// repository_scale_model: what-if analysis for repository-scale clustering.
//
// Uses the FPGA dataflow model to predict end-to-end time and energy for
// the five paper datasets — and for a hypothetical MassIVE-scale corpus —
// under different hardware configurations (kernel counts, P2P, resolution).
//
//   $ ./repository_scale_model
#include <iostream>

#include "fpga/dataflow.hpp"
#include "fpga/tool_models.hpp"
#include "util/table.hpp"

int main() {
  using namespace spechd;
  using namespace spechd::fpga;
  using text_table = spechd::text_table;

  text_table table("SpecHD modelled runs — paper datasets + extrapolation");
  table.set_header({"dataset", "spectra", "PP (s)", "transfer (s)", "encode (s)",
                    "cluster (s)", "end-to-end (s)", "energy (kJ)", "fits HBM"});

  auto add_dataset = [&](const ms::dataset_descriptor& ds) {
    const auto run = model_spechd_run(ds, {});
    table.add_row({std::string(ds.pride_id),
                   text_table::num(static_cast<std::size_t>(ds.spectra)),
                   text_table::num(run.time.preprocess, 1),
                   text_table::num(run.time.transfer, 1),
                   text_table::num(run.time.encode, 1),
                   text_table::num(run.time.cluster, 1),
                   text_table::num(run.time.end_to_end(), 1),
                   text_table::num(run.energy.end_to_end() / 1e3, 2),
                   run.fits_hbm ? "yes" : "NO"});
  };
  for (const auto& ds : ms::paper_datasets()) add_dataset(ds);

  // A repository-scale extrapolation: 100M spectra / 600 GB (MassIVE-like
  // monthly growth; Sec. I cites 500+ TB total).
  const ms::dataset_descriptor repo{"Repository slice", "MASSIVE-SIM", 100'000'000,
                                    600.0, 0.0, 0.0, 700.0};
  add_dataset(repo);
  table.print(std::cout);

  std::cout << "\nNote the HBM column: 100M HVs at 256 B = 25.6 GB exceeds the U280's\n"
               "8 GB HBM, so repository-scale runs must stream bucket groups — the\n"
               "paper's near-storage design keeps that streaming off the host path.\n\n";

  // Multi-FPGA what-if (Sec. IV-C: "could be further optimized by utilizing
  // more advanced or multiple FPGAs").
  text_table scale("What-if: multiple FPGAs on PXD000561 (cards share the NVMe source)");
  scale.set_header({"cards", "cluster kernels total", "end-to-end (s)", "speedup"});
  const auto ds = ms::paper_datasets()[4];
  double base = 0.0;
  for (const unsigned cards : {1U, 2U, 4U}) {
    spechd_hw_config hw;
    hw.cluster_kernels = 5 * cards;
    hw.encoder_kernels = cards;
    const auto run = model_spechd_run(ds, hw);
    if (cards == 1) base = run.time.end_to_end();
    scale.add_row({text_table::num(std::size_t{cards}),
                   text_table::num(std::size_t{hw.cluster_kernels}),
                   text_table::num(run.time.end_to_end(), 1),
                   text_table::num(base / run.time.end_to_end(), 2)});
  }
  scale.print(std::cout);
  return 0;
}
