// quality_explorer: trace the clustered-ratio vs ICR trade-off curve for
// the SpecHD pipeline on a labelled synthetic dataset, the analysis a user
// performs to pick a distance threshold for their data (Fig. 10 style).
//
//   $ ./quality_explorer [peptides] [replicates]
#include <iostream>
#include <string>

#include "core/spechd.hpp"
#include "core/sweep.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace spechd;
  using text_table = spechd::text_table;

  ms::synthetic_config data_config;
  data_config.peptide_count = argc > 1 ? std::stoul(argv[1]) : 80;
  data_config.spectra_per_peptide_mean = argc > 2 ? std::stod(argv[2]) : 7.0;
  data_config.unlabelled_fraction = 0.1;
  data_config.seed = 31337;
  const auto data = ms::generate_dataset(data_config);
  std::cout << "dataset: " << data.spectra.size() << " spectra ("
            << data.library.size() << " peptides + noise)\n\n";

  const auto sweep = core::run_sweep(
      "SpecHD", data,
      [](const std::vector<ms::spectrum>& spectra, double aggressiveness) {
        core::spechd_config config;
        config.distance_threshold = 0.25 + 0.30 * aggressiveness;
        return core::spechd_pipeline(config).run(spectra).clustering;
      },
      11);

  text_table table("threshold sweep (normalised Hamming cut)");
  table.set_header({"threshold", "clustered ratio", "ICR", "completeness",
                    "clusters"});
  for (const auto& p : sweep.points) {
    table.add_row({text_table::num(0.25 + 0.30 * p.aggressiveness, 3),
                   text_table::num(p.quality.clustered_ratio, 3),
                   text_table::num(p.quality.incorrect_ratio, 4),
                   text_table::num(p.quality.completeness, 3),
                   text_table::num(p.quality.cluster_count)});
  }
  table.print(std::cout);

  for (const double budget : {0.01, 0.02, 0.05}) {
    if (const auto* best = sweep.best_at_icr(budget)) {
      std::cout << "\nbest threshold at ICR <= " << budget << ": "
                << 0.25 + 0.30 * best->aggressiveness << " (clustered ratio "
                << best->quality.clustered_ratio << ")";
    }
  }
  std::cout << "\n";
  return 0;
}
