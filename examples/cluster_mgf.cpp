// cluster_mgf: the command-line workflow a proteomics user runs — cluster
// an MGF file and write one consensus spectrum per cluster to a new MGF.
//
//   $ ./cluster_mgf input.mgf output.mgf [threshold]
//
// Without arguments, a demonstration MGF is generated in /tmp first, so the
// example is runnable out of the box.
#include <filesystem>
#include <iostream>
#include <string>

#include "core/spechd.hpp"
#include "ms/mgf.hpp"
#include "ms/synthetic.hpp"

namespace {

std::string make_demo_input() {
  spechd::ms::synthetic_config c;
  c.peptide_count = 60;
  c.spectra_per_peptide_mean = 6.0;
  c.seed = 99;
  const auto data = spechd::ms::generate_dataset(c);
  const auto path =
      (std::filesystem::temp_directory_path() / "spechd_demo_input.mgf").string();
  spechd::ms::write_mgf_file(path, data.spectra);
  std::cout << "wrote demo input: " << path << " (" << data.spectra.size()
            << " spectra)\n";
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spechd;

  try {
    const std::string input = argc > 1 ? argv[1] : make_demo_input();
    const std::string output =
        argc > 2 ? argv[2]
                 : (std::filesystem::temp_directory_path() / "spechd_consensus.mgf")
                       .string();

    core::spechd_config config;
    if (argc > 3) config.distance_threshold = std::stod(argv[3]);

    const auto spectra = ms::read_mgf_file(input);
    std::cout << "read " << spectra.size() << " spectra from " << input << "\n";

    core::spechd_pipeline pipeline(config);
    const auto result = pipeline.run(spectra);

    ms::write_mgf_file(output, result.consensus);
    std::cout << "clusters: " << result.clustering.cluster_count << "\n"
              << "consensus spectra written: " << result.consensus.size() << " -> "
              << output << "\n"
              << "reduction: " << spectra.size() << " -> " << result.consensus.size()
              << " spectra ("
              << (spectra.empty() ? 0.0
                                  : 100.0 * (1.0 - static_cast<double>(
                                                       result.consensus.size()) /
                                                       static_cast<double>(spectra.size())))
              << "% fewer database-search queries)\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
