#include "metrics/ident.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace spechd::metrics {

namespace {

/// Decoy generation: shuffle the peptide's internal residues, keeping the
/// C-terminal residue (K/R for tryptic peptides) fixed so the decoy remains
/// mass-identical and tryptic-looking — the standard "shuffled" decoy.
ms::peptide make_decoy(const ms::peptide& target, xoshiro256ss& rng) {
  std::string seq = target.sequence();
  if (seq.size() > 2) {
    for (std::size_t i = seq.size() - 1; i > 1; --i) {
      // Shuffle positions [0, size-2]; keep the terminal residue.
      const std::size_t j = rng.bounded(i);
      std::swap(seq[i - 1], seq[j]);
    }
  }
  return ms::peptide(std::move(seq));
}

}  // namespace

library_search::library_search(std::vector<ms::peptide> targets, const search_config& config)
    : config_(config), targets_(std::move(targets)) {
  xoshiro256ss rng(config.decoy_seed);
  decoys_.reserve(targets_.size());
  for (const auto& t : targets_) decoys_.push_back(make_decoy(t, rng));

  entries_.reserve(2 * 2 * targets_.size());
  auto add_entries = [&](const std::vector<ms::peptide>& peptides, bool decoy) {
    for (std::uint32_t i = 0; i < peptides.size(); ++i) {
      for (int charge : {2, 3}) {
        entry e;
        e.peptide_index = i;
        e.charge = charge;
        e.decoy = decoy;
        e.theoretical = ms::theoretical_spectrum(peptides[i], charge);
        e.precursor_mz = e.theoretical.precursor_mz;
        entries_.push_back(std::move(e));
      }
    }
  };
  add_entries(targets_, false);
  add_entries(decoys_, true);
  std::sort(entries_.begin(), entries_.end(),
            [](const entry& a, const entry& b) { return a.precursor_mz < b.precursor_mz; });
}

std::optional<psm> library_search::search_one(const ms::spectrum& query,
                                              std::uint32_t index) const {
  if (query.empty() || query.precursor_mz <= 0.0) return std::nullopt;

  // Candidates: entries within the precursor window (binary search bounds).
  const double lo = query.precursor_mz - config_.precursor_tolerance_da;
  const double hi = query.precursor_mz + config_.precursor_tolerance_da;
  auto first = std::lower_bound(entries_.begin(), entries_.end(), lo,
                                [](const entry& e, double v) { return e.precursor_mz < v; });
  auto last = std::upper_bound(entries_.begin(), entries_.end(), hi,
                               [](double v, const entry& e) { return v < e.precursor_mz; });

  psm best;
  best.spectrum_index = index;
  best.score = config_.min_score;
  bool found = false;
  for (auto it = first; it != last; ++it) {
    // Charge must agree when the query declares one.
    if (query.precursor_charge > 0 && it->charge != query.precursor_charge) continue;
    const double score = ms::binned_cosine(query, it->theoretical, config_.fragment_bin_width);
    if (score > best.score) {
      best.score = score;
      best.library_index = it->peptide_index;
      best.decoy = it->decoy;
      best.charge = it->charge;
      found = true;
    }
  }
  if (!found) return std::nullopt;
  return best;
}

std::vector<psm> library_search::search_batch(const std::vector<ms::spectrum>& queries) const {
  std::vector<psm> all;
  all.reserve(queries.size());
  for (std::uint32_t i = 0; i < queries.size(); ++i) {
    if (auto match = search_one(queries[i], i)) all.push_back(*match);
  }
  std::sort(all.begin(), all.end(),
            [](const psm& a, const psm& b) { return a.score > b.score; });

  // Target–decoy FDR: walk from the best score down; keep the largest
  // prefix where decoys / targets <= fdr.
  std::size_t targets_seen = 0;
  std::size_t decoys_seen = 0;
  std::size_t cutoff = 0;
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (all[i].decoy) {
      ++decoys_seen;
    } else {
      ++targets_seen;
    }
    const double fdr_here =
        targets_seen == 0 ? 1.0
                          : static_cast<double>(decoys_seen) / static_cast<double>(targets_seen);
    if (fdr_here <= config_.fdr) cutoff = i + 1;
  }

  std::vector<psm> accepted;
  accepted.reserve(cutoff);
  for (std::size_t i = 0; i < cutoff; ++i) {
    if (!all[i].decoy) accepted.push_back(all[i]);
  }
  return accepted;
}

std::set<std::string> library_search::unique_peptides(const std::vector<psm>& accepted,
                                                      const library_search& engine,
                                                      int charge) {
  std::set<std::string> result;
  for (const auto& match : accepted) {
    if (match.charge != charge) continue;
    result.insert(engine.targets()[match.library_index].sequence());
  }
  return result;
}

venn3 venn_overlap(const std::set<std::string>& a, const std::set<std::string>& b,
                   const std::set<std::string>& c) {
  venn3 v;
  auto classify = [&](const std::string& item) {
    const bool in_a = a.count(item) > 0;
    const bool in_b = b.count(item) > 0;
    const bool in_c = c.count(item) > 0;
    if (in_a && in_b && in_c) ++v.abc;
    else if (in_a && in_b) ++v.ab;
    else if (in_a && in_c) ++v.ac;
    else if (in_b && in_c) ++v.bc;
    else if (in_a) ++v.only_a;
    else if (in_b) ++v.only_b;
    else if (in_c) ++v.only_c;
  };
  std::set<std::string> all;
  all.insert(a.begin(), a.end());
  all.insert(b.begin(), b.end());
  all.insert(c.begin(), c.end());
  for (const auto& item : all) classify(item);
  return v;
}

}  // namespace spechd::metrics
