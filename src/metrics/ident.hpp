// Simulated peptide identification (database search) and Venn overlap.
//
// The paper's Fig. 11 compares the unique peptides identified after
// searching each tool's consensus spectra with MSGF+. We substitute a
// spectral-library search: theoretical b/y spectra of the generating
// peptide library (targets) plus shuffled-sequence decoys, candidate
// filtering by precursor m/z, binned-cosine scoring, and target-decoy FDR
// control. This preserves the analysis's error modes (near-isobaric
// confusions, low-quality consensus spectra failing to identify) without
// the full search engine.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ms/peptide.hpp"
#include "ms/spectrum.hpp"

namespace spechd::metrics {

struct search_config {
  double precursor_tolerance_da = 1.5;  ///< candidate window
  double fragment_bin_width = 0.05;     ///< cosine binning
  double min_score = 0.2;               ///< floor below which nothing matches
  double fdr = 0.01;                    ///< target-decoy threshold
  std::uint64_t decoy_seed = 99;        ///< decoy shuffling seed
};

/// One peptide-spectrum match.
struct psm {
  std::uint32_t spectrum_index = 0;
  std::uint32_t library_index = 0;  ///< into targets() or decoys()
  double score = 0.0;
  bool decoy = false;
  int charge = 0;
};

/// Target–decoy spectral library search engine.
class library_search {
public:
  /// Builds theoretical spectra for charges {2, 3} of every target peptide
  /// and an equal number of shuffled decoys.
  library_search(std::vector<ms::peptide> targets, const search_config& config);

  const std::vector<ms::peptide>& targets() const noexcept { return targets_; }
  const std::vector<ms::peptide>& decoys() const noexcept { return decoys_; }

  /// Best match for one spectrum (target or decoy), or nullopt if nothing
  /// scores above config.min_score.
  std::optional<psm> search_one(const ms::spectrum& query, std::uint32_t index) const;

  /// Searches a batch and applies FDR filtering; returns accepted
  /// target PSMs sorted by descending score.
  std::vector<psm> search_batch(const std::vector<ms::spectrum>& queries) const;

  /// Unique peptide sequences among accepted PSMs whose spectrum charge is
  /// `charge` (Fig. 11 groups by precursor charge 2+/3+).
  static std::set<std::string> unique_peptides(const std::vector<psm>& accepted,
                                               const library_search& engine,
                                               int charge);

private:
  struct entry {
    double precursor_mz;
    std::uint32_t peptide_index;
    int charge;
    bool decoy;
    ms::spectrum theoretical;
  };

  search_config config_;
  std::vector<ms::peptide> targets_;
  std::vector<ms::peptide> decoys_;
  std::vector<entry> entries_;  ///< sorted by precursor_mz
};

/// Three-set Venn region sizes (Fig. 11 rendering data).
struct venn3 {
  std::size_t only_a = 0, only_b = 0, only_c = 0;
  std::size_t ab = 0, ac = 0, bc = 0;
  std::size_t abc = 0;

  std::size_t total_a() const noexcept { return only_a + ab + ac + abc; }
  std::size_t total_b() const noexcept { return only_b + ab + bc + abc; }
  std::size_t total_c() const noexcept { return only_c + ac + bc + abc; }
};

venn3 venn_overlap(const std::set<std::string>& a, const std::set<std::string>& b,
                   const std::set<std::string>& c);

}  // namespace spechd::metrics
