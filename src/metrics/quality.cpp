#include "metrics/quality.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "util/error.hpp"

namespace spechd::metrics {

namespace {

double entropy(const std::vector<std::size_t>& counts, std::size_t total) {
  if (total == 0) return 0.0;
  double h = 0.0;
  for (const auto c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(total);
    h -= p * std::log(p);
  }
  return h;
}

}  // namespace

quality_report evaluate_clustering(const std::vector<std::int32_t>& truth,
                                   const cluster::flat_clustering& predicted) {
  SPECHD_EXPECTS(truth.size() == predicted.labels.size());
  quality_report report;
  const std::size_t n = truth.size();
  if (n == 0) return report;

  const auto sizes = cluster::cluster_sizes(predicted);

  // --- clustered spectra ratio --------------------------------------------
  std::size_t clustered = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto c = predicted.labels[i];
    if (c >= 0 && sizes[static_cast<std::size_t>(c)] >= 2) ++clustered;
  }
  report.clustered_spectra = clustered;
  report.clustered_ratio = static_cast<double>(clustered) / static_cast<double>(n);
  report.cluster_count = static_cast<std::size_t>(
      std::count_if(sizes.begin(), sizes.end(), [](std::size_t s) { return s >= 2; }));

  // --- contingency over identified spectra only ---------------------------
  // cluster -> (peptide label -> count); identified members per cluster.
  std::unordered_map<std::int32_t, std::unordered_map<std::int32_t, std::size_t>> table;
  std::unordered_map<std::int32_t, std::size_t> class_counts;
  std::size_t identified_total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (truth[i] < 0) continue;
    const auto c = predicted.labels[i];
    if (c < 0) continue;
    ++table[c][truth[i]];
    ++class_counts[truth[i]];
    ++identified_total;
  }

  // --- incorrect clustering ratio -----------------------------------------
  // Over identified spectra in non-singleton clusters: members not matching
  // their cluster's majority peptide are incorrectly clustered.
  std::size_t clustered_identified = 0;
  std::size_t incorrect = 0;
  std::size_t majority_sum = 0;
  for (const auto& [c, labels] : table) {
    if (sizes[static_cast<std::size_t>(c)] < 2) continue;
    std::size_t members = 0;
    std::size_t majority = 0;
    for (const auto& [label, count] : labels) {
      members += count;
      majority = std::max(majority, count);
    }
    clustered_identified += members;
    majority_sum += majority;
    incorrect += members - majority;
  }
  report.incorrect_ratio =
      clustered_identified == 0
          ? 0.0
          : static_cast<double>(incorrect) / static_cast<double>(clustered_identified);
  report.purity = clustered_identified == 0
                      ? 1.0
                      : static_cast<double>(majority_sum) /
                            static_cast<double>(clustered_identified);

  // --- completeness / homogeneity / V-measure -----------------------------
  // Computed over all identified spectra (any cluster size), the standard
  // definition. H(K) with K = classes, H(C) with C = clusters.
  std::vector<std::size_t> class_sizes;
  class_sizes.reserve(class_counts.size());
  for (const auto& [label, count] : class_counts) class_sizes.push_back(count);
  std::vector<std::size_t> cluster_sizes_identified;
  cluster_sizes_identified.reserve(table.size());
  for (const auto& [c, labels] : table) {
    std::size_t members = 0;
    for (const auto& [label, count] : labels) members += count;
    cluster_sizes_identified.push_back(members);
  }

  const double h_k = entropy(class_sizes, identified_total);
  const double h_c = entropy(cluster_sizes_identified, identified_total);

  // H(K|C) = sum_c (n_c/N) * H(classes within c)
  double h_k_given_c = 0.0;
  double h_c_given_k = 0.0;
  {
    for (const auto& [c, labels] : table) {
      std::size_t members = 0;
      for (const auto& [label, count] : labels) members += count;
      for (const auto& [label, count] : labels) {
        const double p_joint =
            static_cast<double>(count) / static_cast<double>(identified_total);
        h_k_given_c -= p_joint * std::log(static_cast<double>(count) /
                                          static_cast<double>(members));
      }
    }
    // H(C|K): invert the table.
    std::unordered_map<std::int32_t, std::unordered_map<std::int32_t, std::size_t>> by_class;
    for (const auto& [c, labels] : table) {
      for (const auto& [label, count] : labels) by_class[label][c] = count;
    }
    for (const auto& [label, clusters] : by_class) {
      const auto class_total = class_counts[label];
      for (const auto& [c, count] : clusters) {
        const double p_joint =
            static_cast<double>(count) / static_cast<double>(identified_total);
        h_c_given_k -= p_joint * std::log(static_cast<double>(count) /
                                          static_cast<double>(class_total));
      }
    }
  }

  // Rosenberg & Hirschberg: homogeneity penalises clusters that mix classes
  // (H(class | cluster)); completeness penalises classes split over several
  // clusters (H(cluster | class)).
  report.homogeneity = h_k == 0.0 ? 1.0 : 1.0 - h_k_given_c / h_k;
  report.completeness = h_c == 0.0 ? 1.0 : 1.0 - h_c_given_k / h_c;
  const double hc_sum = report.completeness + report.homogeneity;
  report.v_measure =
      hc_sum == 0.0 ? 0.0 : 2.0 * report.completeness * report.homogeneity / hc_sum;

  // --- pairwise precision / recall ----------------------------------------
  // Over identified spectra: a "true link" joins same-peptide spectra.
  std::uint64_t tp = 0;
  std::uint64_t pred_pairs = 0;
  std::uint64_t true_pairs = 0;
  for (const auto& [c, labels] : table) {
    std::size_t members = 0;
    for (const auto& [label, count] : labels) {
      members += count;
      tp += static_cast<std::uint64_t>(count) * (count - 1) / 2;
    }
    pred_pairs += static_cast<std::uint64_t>(members) * (members - 1) / 2;
  }
  for (const auto& [label, count] : class_counts) {
    true_pairs += static_cast<std::uint64_t>(count) * (count - 1) / 2;
  }
  report.pairwise_precision =
      pred_pairs == 0 ? 1.0 : static_cast<double>(tp) / static_cast<double>(pred_pairs);
  report.pairwise_recall =
      true_pairs == 0 ? 1.0 : static_cast<double>(tp) / static_cast<double>(true_pairs);

  return report;
}

}  // namespace spechd::metrics
