#include "metrics/agreement.hpp"

#include <cmath>
#include <map>
#include <unordered_map>

#include "util/error.hpp"

namespace spechd::metrics {

namespace {

struct contingency {
  // (class, cluster) -> count over identified & clustered items.
  std::map<std::pair<std::int32_t, std::int32_t>, std::uint64_t> cells;
  std::unordered_map<std::int32_t, std::uint64_t> class_totals;
  std::unordered_map<std::int32_t, std::uint64_t> cluster_totals;
  std::uint64_t n = 0;
};

contingency build(const std::vector<std::int32_t>& truth,
                  const cluster::flat_clustering& predicted) {
  SPECHD_EXPECTS(truth.size() == predicted.labels.size());
  contingency t;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] < 0 || predicted.labels[i] < 0) continue;
    ++t.cells[{truth[i], predicted.labels[i]}];
    ++t.class_totals[truth[i]];
    ++t.cluster_totals[predicted.labels[i]];
    ++t.n;
  }
  return t;
}

double choose2(std::uint64_t x) {
  return static_cast<double>(x) * (static_cast<double>(x) - 1.0) / 2.0;
}

}  // namespace

double adjusted_rand_index(const std::vector<std::int32_t>& truth,
                           const cluster::flat_clustering& predicted) {
  const auto t = build(truth, predicted);
  if (t.n < 2) return 1.0;

  double sum_cells = 0.0;
  for (const auto& [key, count] : t.cells) sum_cells += choose2(count);
  double sum_classes = 0.0;
  for (const auto& [label, count] : t.class_totals) sum_classes += choose2(count);
  double sum_clusters = 0.0;
  for (const auto& [label, count] : t.cluster_totals) sum_clusters += choose2(count);

  const double total_pairs = choose2(t.n);
  const double expected = sum_classes * sum_clusters / total_pairs;
  const double maximum = 0.5 * (sum_classes + sum_clusters);
  if (maximum == expected) return 1.0;  // degenerate: single class & cluster
  return (sum_cells - expected) / (maximum - expected);
}

double normalized_mutual_information(const std::vector<std::int32_t>& truth,
                                     const cluster::flat_clustering& predicted) {
  const auto t = build(truth, predicted);
  if (t.n == 0) return 1.0;
  const double n = static_cast<double>(t.n);

  double h_class = 0.0;
  for (const auto& [label, count] : t.class_totals) {
    const double p = static_cast<double>(count) / n;
    h_class -= p * std::log(p);
  }
  double h_cluster = 0.0;
  for (const auto& [label, count] : t.cluster_totals) {
    const double p = static_cast<double>(count) / n;
    h_cluster -= p * std::log(p);
  }

  double mi = 0.0;
  for (const auto& [key, count] : t.cells) {
    const double p_joint = static_cast<double>(count) / n;
    const double p_class = static_cast<double>(t.class_totals.at(key.first)) / n;
    const double p_cluster = static_cast<double>(t.cluster_totals.at(key.second)) / n;
    mi += p_joint * std::log(p_joint / (p_class * p_cluster));
  }

  const double denom = 0.5 * (h_class + h_cluster);
  if (denom == 0.0) return 1.0;  // both partitions trivial
  return std::max(0.0, std::min(1.0, mi / denom));
}

}  // namespace spechd::metrics
