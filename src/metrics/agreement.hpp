// Clustering agreement indices: adjusted Rand index and normalised mutual
// information.
//
// Complement the paper's headline metrics for the ablation studies: ARI is
// chance-corrected (robust when cluster counts differ wildly between
// configurations), NMI summarises the full contingency table. Both treat
// negative labels (unidentified / noise) as "excluded", consistent with
// evaluate_clustering.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/dendrogram.hpp"

namespace spechd::metrics {

/// Adjusted Rand index in [-1, 1]; 1 = identical partitions, 0 = chance.
double adjusted_rand_index(const std::vector<std::int32_t>& truth,
                           const cluster::flat_clustering& predicted);

/// Normalised mutual information in [0, 1] (arithmetic-mean normalisation,
/// sklearn's default).
double normalized_mutual_information(const std::vector<std::int32_t>& truth,
                                     const cluster::flat_clustering& predicted);

}  // namespace spechd::metrics
