// Clustering quality metrics (Sec. IV-B, IV-E).
//
// The paper reports three headline quality numbers:
//   * clustered spectra ratio — fraction of spectra placed in non-singleton
//     clusters (Fig. 10 y-axis),
//   * incorrect clustering ratio (ICR) — fraction of clustered, identified
//     spectra whose peptide differs from their cluster's majority peptide
//     (Fig. 10 x-axis; the falcon/HyperSpec definition),
//   * completeness — the entropy-based V-measure component (Fig. 6a;
//     Rosenberg & Hirschberg 2007).
// We add homogeneity, V-measure, purity and pairwise precision/recall for
// the extended analyses.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/dendrogram.hpp"

namespace spechd::metrics {

struct quality_report {
  double clustered_ratio = 0.0;    ///< spectra in clusters of size >= 2 / all
  double incorrect_ratio = 0.0;    ///< ICR over clustered identified spectra
  double completeness = 1.0;
  double homogeneity = 1.0;
  double v_measure = 1.0;
  double purity = 1.0;
  double pairwise_precision = 1.0;
  double pairwise_recall = 0.0;
  std::size_t cluster_count = 0;      ///< non-singleton clusters
  std::size_t clustered_spectra = 0;  ///< members of non-singleton clusters
};

/// Evaluates a flat clustering against ground-truth labels.
///
/// `truth[i]` is the peptide index generating spectrum i, or ms::unlabelled
/// (-1) for unidentified spectra — these count toward clustered_ratio but
/// are excluded from label-based metrics, mirroring how the paper scores
/// against MSGF+ identifications that cover only part of the data.
quality_report evaluate_clustering(const std::vector<std::int32_t>& truth,
                                   const cluster::flat_clustering& predicted);

}  // namespace spechd::metrics
