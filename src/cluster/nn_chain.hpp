// Nearest-Neighbor-Chain hierarchical agglomerative clustering (Sec. II-C,
// III-C; Murtagh & Contreras 2011).
//
// The algorithm grows a chain of successive nearest neighbours until it
// finds a Reciprocal Nearest Neighbor (RNN) pair, merges it, and continues
// from the surviving chain — avoiding the naive method's full-matrix
// minimum scan after every merge. For reducible linkages (all four we
// support) it produces the same dendrogram as exhaustive greedy HAC in
// O(n^2) time and O(n^2) space (the condensed matrix itself).
//
// Two element-type paths mirror the hardware:
//   * f32 — reference implementation,
//   * q16 — every stored distance is rounded to the Q0.16 grid after each
//     Lance–Williams update, exactly as the FPGA kernel writes back to its
//     16-bit BRAM matrix.
#pragma once

#include <cstdint>

#include "cluster/dendrogram.hpp"
#include "cluster/linkage.hpp"
#include "hdc/distance.hpp"

namespace spechd::cluster {

/// Operation counters used by the Fig. 2 comparison bench and the FPGA
/// cycle model.
struct hac_stats {
  std::uint64_t comparisons = 0;       ///< candidate distance comparisons
  std::uint64_t distance_updates = 0;  ///< Lance–Williams applications
  std::uint64_t chain_pushes = 0;      ///< NN-chain growth steps (0 for naive)
  std::uint64_t merges = 0;
};

struct hac_result {
  dendrogram tree;
  hac_stats stats;
};

/// NN-chain HAC over a float condensed matrix.
hac_result nn_chain_hac(const hdc::distance_matrix_f32& distances, linkage link);

/// NN-chain HAC over the FPGA's 16-bit fixed-point matrix; intermediate
/// Lance–Williams arithmetic runs wide (double) and results are re-quantised
/// to the Q0.16 grid on store, as the HLS kernel does.
hac_result nn_chain_hac(const hdc::distance_matrix_q16& distances, linkage link);

}  // namespace spechd::cluster
