// Nearest-Neighbor-Chain hierarchical agglomerative clustering (Sec. II-C,
// III-C; Murtagh & Contreras 2011).
//
// The algorithm grows a chain of successive nearest neighbours until it
// finds a Reciprocal Nearest Neighbor (RNN) pair, merges it, and continues
// from the surviving chain — avoiding the naive method's full-matrix
// minimum scan after every merge. For reducible linkages (all four we
// support) it produces the same dendrogram as exhaustive greedy HAC in
// O(n^2) time and O(n^2) space.
//
// The default implementation works on a flat row-major n×n double matrix:
// retired columns and the diagonal are parked at +inf, so the inner
// nearest-neighbour scan is a branch-free argmin over a contiguous row
// (hdc::kernels::nearest_active_scan) and the post-merge Lance–Williams
// rewrite is a masked row kernel (hdc::kernels::lance_williams_row_update),
// both runtime-dispatched to scalar/AVX2/AVX-512 like the XOR+popcount
// kernels. Müllner's prefer-prev tie-break and the per-store rounding
// policy are preserved bit-for-bit; nn_chain_hac_condensed keeps the
// pre-kernel condensed-matrix implementation alive as the reference the
// golden suite (tests/cluster/test_nn_chain_golden.cpp) compares against.
//
// Two element-type paths mirror the hardware:
//   * f32 — reference implementation,
//   * q16 — every stored distance is rounded to the Q0.16 grid after each
//     Lance–Williams update, exactly as the FPGA kernel writes back to its
//     16-bit BRAM matrix.
#pragma once

#include <cstdint>

#include "cluster/dendrogram.hpp"
#include "cluster/linkage.hpp"
#include "hdc/distance.hpp"

namespace spechd::cluster {

/// Operation counters used by the Fig. 2 comparison bench and the FPGA
/// cycle model.
struct hac_stats {
  std::uint64_t comparisons = 0;       ///< candidate distance comparisons
  std::uint64_t distance_updates = 0;  ///< Lance–Williams applications
  std::uint64_t chain_pushes = 0;      ///< NN-chain growth steps (0 for naive)
  std::uint64_t merges = 0;
};

struct hac_result {
  dendrogram tree;
  hac_stats stats;
};

/// NN-chain HAC over a float condensed matrix (kernel-backed flat-matrix
/// implementation).
hac_result nn_chain_hac(const hdc::distance_matrix_f32& distances, linkage link);

/// NN-chain HAC over the FPGA's 16-bit fixed-point matrix; intermediate
/// Lance–Williams arithmetic runs wide (double) and results are re-quantised
/// to the Q0.16 grid on store, as the HLS kernel does.
hac_result nn_chain_hac(const hdc::distance_matrix_q16& distances, linkage link);

/// The pre-kernel condensed-matrix NN-chain, retained verbatim (plus the
/// degenerate +inf-row fallback) as the bit-exact reference the golden
/// equivalence suite and bench_fig2 compare the flat implementation
/// against. Same dendrogram, same stats, scalar pointer-chasing inner
/// loops.
hac_result nn_chain_hac_condensed(const hdc::distance_matrix_f32& distances, linkage link);
hac_result nn_chain_hac_condensed(const hdc::distance_matrix_q16& distances, linkage link);

}  // namespace spechd::cluster
