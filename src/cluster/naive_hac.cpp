#include "cluster/naive_hac.hpp"

#include <limits>
#include <vector>

#include "util/fixed_point.hpp"

namespace spechd::cluster {

namespace {

struct store_f64 {
  static double store(double v) noexcept { return v; }
};
struct store_q16 {
  static double store(double v) noexcept { return q16::from_double(v).to_double(); }
};

constexpr std::uint32_t k_noneu() { return std::numeric_limits<std::uint32_t>::max(); }

template <typename Policy, typename Matrix>
hac_result naive_impl(const Matrix& input, linkage link) {
  const std::size_t n = input.size();
  hac_result result;
  if (n <= 1) {
    result.tree = dendrogram(n, {});
    return result;
  }

  std::vector<double> d(n * (n - 1) / 2);
  for (std::size_t i = 1; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      double v;
      if constexpr (std::is_same_v<Matrix, hdc::distance_matrix_q16>) {
        v = input.at(i, j).to_double();
      } else {
        v = static_cast<double>(input.at(i, j));
      }
      d[i * (i - 1) / 2 + j] = Policy::store(v);
    }
  }
  auto dist = [&](std::uint32_t a, std::uint32_t b) -> double& {
    return a > b ? d[static_cast<std::size_t>(a) * (a - 1) / 2 + b]
                 : d[static_cast<std::size_t>(b) * (b - 1) / 2 + a];
  };

  std::vector<bool> active(n, true);
  std::vector<std::uint32_t> size(n, 1);
  std::vector<raw_merge> raw;
  raw.reserve(n - 1);
  hac_stats& stats = result.stats;

  for (std::size_t step = 0; step + 1 < n; ++step) {
    // Full scan for the global minimum pair — the O(n^2)-per-merge cost the
    // NN-chain formulation avoids.
    double best = std::numeric_limits<double>::infinity();
    std::uint32_t bi = k_noneu(), bj = k_noneu();
    for (std::uint32_t i = 1; i < n; ++i) {
      if (!active[i]) continue;
      for (std::uint32_t j = 0; j < i; ++j) {
        if (!active[j]) continue;
        ++stats.comparisons;
        const double v = dist(i, j);
        if (v < best) {
          best = v;
          bi = i;
          bj = j;
        }
      }
    }

    raw.push_back({bi, bj, best});
    ++stats.merges;
    const std::uint32_t size_a = size[bi];
    const std::uint32_t size_b = size[bj];
    active[bi] = false;
    for (std::uint32_t k = 0; k < n; ++k) {
      if (!active[k] || k == bj) continue;
      const double d_ka = dist(k, bi);
      const double d_kb = dist(k, bj);
      dist(k, bj) =
          Policy::store(lance_williams(link, d_ka, d_kb, best, size_a, size_b, size[k]));
      ++stats.distance_updates;
    }
    size[bj] = size_a + size_b;
  }

  result.tree = build_dendrogram(n, std::move(raw));
  return result;
}

}  // namespace

hac_result naive_hac(const hdc::distance_matrix_f32& distances, linkage link) {
  return naive_impl<store_f64>(distances, link);
}

hac_result naive_hac(const hdc::distance_matrix_q16& distances, linkage link) {
  return naive_impl<store_q16>(distances, link);
}

}  // namespace spechd::cluster
