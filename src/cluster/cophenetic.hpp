// Cophenetic distances: the height at which two leaves first join in a
// dendrogram.
//
// The cophenetic correlation (Pearson correlation between original pairwise
// distances and cophenetic distances) is the standard figure of merit for
// how faithfully a hierarchical clustering preserves the input geometry —
// used here to validate the q16 fixed-point path against f32 and to compare
// linkage criteria quantitatively (extending the Fig. 6a analysis).
#pragma once

#include "cluster/dendrogram.hpp"
#include "hdc/distance.hpp"

namespace spechd::cluster {

/// Condensed matrix of cophenetic distances for every leaf pair.
/// O(n^2) time via post-order accumulation of leaf sets.
hdc::distance_matrix_f32 cophenetic_distances(const dendrogram& tree);

/// Pearson correlation between the original condensed distances and the
/// tree's cophenetic distances. Returns 1 for degenerate (constant) inputs.
double cophenetic_correlation(const hdc::distance_matrix_f32& original,
                              const dendrogram& tree);

}  // namespace spechd::cluster
