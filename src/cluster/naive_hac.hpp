// Naive greedy hierarchical agglomerative clustering (Fig. 2 baseline).
//
// The classic O(n^3) method: after every merge, rescan the whole active
// matrix for the global minimum pair. Exists to (a) validate NN-chain
// (identical dendrograms for reducible linkages on tie-free inputs) and
// (b) regenerate the paper's Fig. 2 naive-vs-NN-chain comparison.
#pragma once

#include "cluster/nn_chain.hpp"

namespace spechd::cluster {

hac_result naive_hac(const hdc::distance_matrix_f32& distances, linkage link);
hac_result naive_hac(const hdc::distance_matrix_q16& distances, linkage link);

}  // namespace spechd::cluster
