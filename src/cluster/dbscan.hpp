// DBSCAN over a precomputed distance matrix.
//
// HyperSpec's fast flavour clusters hypervectors with cuML DBSCAN; we
// implement the classic algorithm (Ester et al. 1996) on the condensed
// Hamming matrix so the HyperSpec-DBSCAN baseline (Fig. 9/10) is runnable.
#pragma once

#include "cluster/dendrogram.hpp"
#include "hdc/distance.hpp"

namespace spechd::cluster {

struct dbscan_config {
  double eps = 0.3;         ///< neighbourhood radius (normalised Hamming)
  std::size_t min_pts = 2;  ///< minimum neighbourhood size (incl. self)
};

/// Runs DBSCAN; noise points get label -1 and are *not* counted as a
/// cluster in cluster_count.
flat_clustering dbscan(const hdc::distance_matrix_f32& distances, const dbscan_config& config);

}  // namespace spechd::cluster
