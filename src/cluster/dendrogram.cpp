#include "cluster/dendrogram.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace spechd::cluster {

namespace {

/// Minimal union-find with path halving.
class union_find {
public:
  explicit union_find(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::uint32_t{0});
  }

  std::uint32_t find(std::uint32_t x) noexcept {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void unite(std::uint32_t a, std::uint32_t b) noexcept { parent_[find(a)] = find(b); }

private:
  std::vector<std::uint32_t> parent_;
};

}  // namespace

std::vector<std::size_t> cluster_sizes(const flat_clustering& c) {
  std::vector<std::size_t> sizes(c.cluster_count, 0);
  for (const auto label : c.labels) {
    if (label >= 0) ++sizes[static_cast<std::size_t>(label)];
  }
  return sizes;
}

double non_singleton_fraction(const flat_clustering& c) {
  if (c.labels.empty()) return 0.0;
  const auto sizes = cluster_sizes(c);
  std::size_t clustered = 0;
  for (const auto label : c.labels) {
    if (label >= 0 && sizes[static_cast<std::size_t>(label)] >= 2) ++clustered;
  }
  return static_cast<double>(clustered) / static_cast<double>(c.labels.size());
}

dendrogram::dendrogram(std::size_t leaves, std::vector<merge_step> merges)
    : leaves_(leaves), merges_(std::move(merges)) {
  SPECHD_EXPECTS(merges_.size() + 1 == leaves_ || (leaves_ == 0 && merges_.empty()));
}

bool dendrogram::monotone() const noexcept {
  for (std::size_t i = 1; i < merges_.size(); ++i) {
    if (merges_[i].distance < merges_[i - 1].distance) return false;
  }
  return true;
}

flat_clustering dendrogram::cut(double threshold) const {
  union_find uf(leaves_ + merges_.size());
  // Track, for each internal node id, its two children; apply merges whose
  // height is within threshold.
  for (std::size_t k = 0; k < merges_.size(); ++k) {
    const auto& m = merges_[k];
    if (m.distance > threshold) break;  // merges sorted by height
    const auto id = static_cast<std::uint32_t>(leaves_ + k);
    uf.unite(m.left, id);
    uf.unite(m.right, id);
  }

  flat_clustering out;
  out.labels.assign(leaves_, -1);
  std::vector<std::int32_t> root_label(leaves_ + merges_.size(), -1);
  std::int32_t next = 0;
  for (std::size_t i = 0; i < leaves_; ++i) {
    const auto root = uf.find(static_cast<std::uint32_t>(i));
    if (root_label[root] < 0) root_label[root] = next++;
    out.labels[i] = root_label[root];
  }
  out.cluster_count = static_cast<std::size_t>(next);
  return out;
}

flat_clustering dendrogram::cut_k(std::size_t k) const {
  SPECHD_EXPECTS(k >= 1);
  if (k >= leaves_) {
    flat_clustering all;
    all.labels.resize(leaves_);
    std::iota(all.labels.begin(), all.labels.end(), 0);
    all.cluster_count = leaves_;
    return all;
  }
  // Applying the first (leaves - k) merges leaves exactly k clusters.
  const std::size_t apply = leaves_ - k;
  union_find uf(leaves_ + merges_.size());
  for (std::size_t m = 0; m < apply; ++m) {
    const auto id = static_cast<std::uint32_t>(leaves_ + m);
    uf.unite(merges_[m].left, id);
    uf.unite(merges_[m].right, id);
  }
  flat_clustering out;
  out.labels.assign(leaves_, -1);
  std::vector<std::int32_t> root_label(leaves_ + merges_.size(), -1);
  std::int32_t next = 0;
  for (std::size_t i = 0; i < leaves_; ++i) {
    const auto root = uf.find(static_cast<std::uint32_t>(i));
    if (root_label[root] < 0) root_label[root] = next++;
    out.labels[i] = root_label[root];
  }
  out.cluster_count = static_cast<std::size_t>(next);
  return out;
}

dendrogram build_dendrogram(std::size_t leaves, std::vector<raw_merge> raw) {
  SPECHD_EXPECTS(raw.size() + 1 == leaves || (leaves == 0 && raw.empty()));
  std::stable_sort(raw.begin(), raw.end(), [](const raw_merge& x, const raw_merge& y) {
    return x.distance < y.distance;
  });

  // SciPy-style label pass: map each raw slot pair to current cluster ids.
  union_find uf(leaves);
  std::vector<std::uint32_t> root_id(leaves);
  std::iota(root_id.begin(), root_id.end(), std::uint32_t{0});
  std::vector<std::uint32_t> node_size(leaves + raw.size(), 1);

  std::vector<merge_step> merges;
  merges.reserve(raw.size());
  for (std::size_t k = 0; k < raw.size(); ++k) {
    const auto ra = uf.find(raw[k].a);
    const auto rb = uf.find(raw[k].b);
    const std::uint32_t id_a = root_id[ra];
    const std::uint32_t id_b = root_id[rb];
    const auto new_id = static_cast<std::uint32_t>(leaves + k);
    merge_step step;
    step.left = std::min(id_a, id_b);
    step.right = std::max(id_a, id_b);
    step.distance = raw[k].distance;
    step.size = node_size[id_a] + node_size[id_b];
    node_size[new_id] = step.size;
    merges.push_back(step);
    uf.unite(ra, rb);
    root_id[uf.find(ra)] = new_id;
  }
  return dendrogram(leaves, std::move(merges));
}

}  // namespace spechd::cluster
