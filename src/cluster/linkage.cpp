#include "cluster/linkage.hpp"

#include "hdc/cpu_kernels.hpp"

namespace spechd::cluster {

std::string_view linkage_name(linkage l) noexcept {
  switch (l) {
    case linkage::single: return "single";
    case linkage::complete: return "complete";
    case linkage::average: return "average";
    case linkage::ward: return "ward";
  }
  return "?";
}

hdc::kernels::lw_linkage to_lw_linkage(linkage l) noexcept {
  switch (l) {
    case linkage::single: return hdc::kernels::lw_linkage::single;
    case linkage::complete: return hdc::kernels::lw_linkage::complete;
    case linkage::average: return hdc::kernels::lw_linkage::average;
    case linkage::ward: return hdc::kernels::lw_linkage::ward;
  }
  return hdc::kernels::lw_linkage::complete;
}

double lance_williams(linkage l, double d_ka, double d_kb, double d_ab,
                      std::size_t size_a, std::size_t size_b, std::size_t size_k) noexcept {
  // The arithmetic lives in hdc::kernels so the SIMD row-update variants and
  // this scalar reference share one operation-for-operation definition.
  return hdc::kernels::lance_williams(to_lw_linkage(l), d_ka, d_kb, d_ab,
                                      static_cast<double>(size_a),
                                      static_cast<double>(size_b),
                                      static_cast<double>(size_k));
}

}  // namespace spechd::cluster
