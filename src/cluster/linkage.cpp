#include "cluster/linkage.hpp"

#include <algorithm>
#include <cmath>

namespace spechd::cluster {

std::string_view linkage_name(linkage l) noexcept {
  switch (l) {
    case linkage::single: return "single";
    case linkage::complete: return "complete";
    case linkage::average: return "average";
    case linkage::ward: return "ward";
  }
  return "?";
}

double lance_williams(linkage l, double d_ka, double d_kb, double d_ab,
                      std::size_t size_a, std::size_t size_b, std::size_t size_k) noexcept {
  switch (l) {
    case linkage::single:
      return std::min(d_ka, d_kb);
    case linkage::complete:
      return std::max(d_ka, d_kb);
    case linkage::average: {
      const double na = static_cast<double>(size_a);
      const double nb = static_cast<double>(size_b);
      return (na * d_ka + nb * d_kb) / (na + nb);
    }
    case linkage::ward: {
      const double na = static_cast<double>(size_a);
      const double nb = static_cast<double>(size_b);
      const double nk = static_cast<double>(size_k);
      const double t = na + nb + nk;
      const double v = ((na + nk) * d_ka * d_ka + (nb + nk) * d_kb * d_kb -
                        nk * d_ab * d_ab) /
                       t;
      return std::sqrt(std::max(0.0, v));
    }
  }
  return d_ka;
}

}  // namespace spechd::cluster
