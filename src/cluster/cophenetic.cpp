#include "cluster/cophenetic.hpp"

#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace spechd::cluster {

hdc::distance_matrix_f32 cophenetic_distances(const dendrogram& tree) {
  const std::size_t n = tree.leaves();
  hdc::distance_matrix_f32 result(n);
  if (n < 2) return result;

  // Leaf sets per node id (leaves 0..n-1, internals n..2n-2). Merges are
  // processed in order, so children always precede parents.
  std::vector<std::vector<std::uint32_t>> members(n + tree.merges().size());
  for (std::uint32_t i = 0; i < n; ++i) members[i] = {i};

  for (std::size_t k = 0; k < tree.merges().size(); ++k) {
    const auto& m = tree.merges()[k];
    const auto& left = members[m.left];
    const auto& right = members[m.right];
    // Every cross pair first joins at this merge's height.
    for (const auto a : left) {
      for (const auto b : right) {
        result.at(a, b) = static_cast<float>(m.distance);
      }
    }
    auto& merged = members[n + k];
    merged.reserve(left.size() + right.size());
    merged.insert(merged.end(), left.begin(), left.end());
    merged.insert(merged.end(), right.begin(), right.end());
    // Children's member lists are no longer needed; free eagerly.
    members[m.left].clear();
    members[m.left].shrink_to_fit();
    members[m.right].clear();
    members[m.right].shrink_to_fit();
  }
  return result;
}

double cophenetic_correlation(const hdc::distance_matrix_f32& original,
                              const dendrogram& tree) {
  SPECHD_EXPECTS(original.size() == tree.leaves());
  const std::size_t n = original.size();
  if (n < 2) return 1.0;

  const auto coph = cophenetic_distances(tree);
  const auto& x = original.data();
  const auto& y = coph.data();

  double mean_x = 0.0;
  double mean_y = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    mean_x += x[i];
    mean_y += y[i];
  }
  mean_x /= static_cast<double>(x.size());
  mean_y /= static_cast<double>(y.size());

  double cov = 0.0;
  double var_x = 0.0;
  double var_y = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mean_x;
    const double dy = y[i] - mean_y;
    cov += dx * dy;
    var_x += dx * dx;
    var_y += dy * dy;
  }
  if (var_x == 0.0 || var_y == 0.0) return 1.0;
  return cov / std::sqrt(var_x * var_y);
}

}  // namespace spechd::cluster
