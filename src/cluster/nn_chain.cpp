#include "cluster/nn_chain.hpp"

#include <limits>
#include <type_traits>
#include <vector>

#include "hdc/cpu_kernels.hpp"
#include "util/arena_pool.hpp"
#include "util/error.hpp"
#include "util/fixed_point.hpp"

namespace spechd::cluster {

namespace {

namespace kn = hdc::kernels;

constexpr std::uint32_t k_none = std::numeric_limits<std::uint32_t>::max();
constexpr double k_inf = std::numeric_limits<double>::infinity();

/// Storage policies: how distances are rounded when written back.
struct store_f64 {
  static constexpr kn::lw_store mode = kn::lw_store::f64;
  static double store(double v) noexcept { return v; }
};
struct store_q16 {
  static constexpr kn::lw_store mode = kn::lw_store::q16;
  static double store(double v) noexcept { return q16::from_double(v).to_double(); }
};

template <typename Matrix>
double load_entry(const Matrix& input, std::size_t i, std::size_t j) noexcept {
  if constexpr (std::is_same_v<Matrix, hdc::distance_matrix_q16>) {
    // Q0.16 grid values are fixed points of the store rounding, so no
    // explicit Policy::store pass is needed on load.
    return input.at(i, j).to_double();
  } else {
    return static_cast<double>(input.at(i, j));
  }
}

// ---------------------------------------------------------------------------
// Kernel-backed flat-matrix implementation (the default path)
// ---------------------------------------------------------------------------

// One applied merge, as recorded in the replay log: enough to reproduce the
// Lance–Williams rewrite of any row that was not refreshed eagerly.
struct merge_record {
  std::uint32_t gone = 0;
  std::uint32_t keep = 0;
  double d_ab = 0.0;
  double size_a = 0.0;  ///< |gone| at merge time
  double size_b = 0.0;  ///< |keep| at merge time
};

/// ElemT is the working matrix's element type. double always reproduces
/// the condensed reference bit-for-bit. float is used whenever every
/// reachable working value is exactly float-representable — q16-grid
/// stores (any linkage), or min/max linkages whose Lance–Williams update
/// only ever selects one of two existing values — halving the memory
/// traffic of the scan-dominated inner loop with provably identical bits.
template <typename Policy, typename ElemT, typename Matrix>
hac_result nn_chain_flat_impl(const Matrix& input, linkage link) {
  const std::size_t n = input.size();
  hac_result result;
  if (n <= 1) {
    result.tree = dendrogram(n, {});
    return result;
  }
  constexpr ElemT elem_inf = std::numeric_limits<ElemT>::infinity();

  // Flat row-major n×n working matrix in double precision (Policy rounds
  // stores). Only the survivor's row is rewritten eagerly at a merge (one
  // contiguous kernel pass); every other row repairs itself lazily by
  // replaying the merge log just before it is scanned. That replay applies
  // the exact per-entry operation sequence the eager column mirror would
  // have — same operands, same order, same store rounding, so the result
  // is bit-identical — but it turns O(n) strided column writes per merge
  // (a cache miss each) into a handful of in-cache row writes per scan.
  // The diagonal is parked at +inf so the masked argmin never picks self;
  // retired columns keep stale values and are masked by `active`.
  // The matrix lives in an arena checked out of the shared pool: per-bucket
  // HAC calls from the pipeline's worker pool reuse a handful of pooled
  // allocations instead of one thread_local arena per worker (which pinned
  // threads × largest-bucket² bytes forever); the pool's high-water
  // trimming releases a one-off giant bucket's arena on return. The arena
  // hands back uninitialised scratch — every entry is written below (pass 1
  // fills the lower triangle, pass 2 mirrors it, the diagonal is set last)
  // before anything reads it.
  arena_lease scratch = arena_pool::global().checkout(n * n * sizeof(ElemT));
  ElemT* const d = scratch.as<ElemT>(n * n);
  {
    // Pass 1: convert each condensed row into its matrix row (contiguous
    // reads and writes, auto-vectorisable).
    const auto* src = input.data().data();
    for (std::size_t i = 1; i < n; ++i) {
      ElemT* row = d + i * n;
      const auto* src_row = src + i * (i - 1) / 2;
      if constexpr (std::is_same_v<Matrix, hdc::distance_matrix_q16>) {
        // Q0.16 grid values are fixed points of the store rounding, so no
        // explicit Policy::store pass is needed on load. raw * 2^-16 in
        // float is exact (<= 16 mantissa bits times a power of two), i.e.
        // bit-identical to to_double() + narrowing, and it vectorises.
        for (std::size_t j = 0; j < i; ++j) {
          row[j] = static_cast<ElemT>(static_cast<float>(src_row[j].raw()) *
                                      (1.0F / 65536.0F));
        }
      } else {
        for (std::size_t j = 0; j < i; ++j) {
          row[j] = static_cast<ElemT>(Policy::store(static_cast<double>(src_row[j])));
        }
      }
    }
    // Pass 2: mirror into the upper triangle through a 64×64 staging tile —
    // gathers stay inside one L1-resident tile and every matrix write is a
    // contiguous row segment, where a per-entry d[j*n+i] scatter would walk
    // a full column stride (a cache miss) per write.
    constexpr std::size_t block = 64;
    ElemT tile[block * block];
    for (std::size_t i0 = 0; i0 < n; i0 += block) {
      const std::size_t i1 = std::min(n, i0 + block);
      for (std::size_t j0 = 0; j0 < i0; j0 += block) {
        for (std::size_t i = i0; i < i1; ++i) {
          const ElemT* row = d + i * n + j0;
          for (std::size_t jj = 0; jj < block; ++jj) {
            tile[jj * block + (i - i0)] = row[jj];
          }
        }
        for (std::size_t j = j0; j < j0 + block; ++j) {
          ElemT* out = d + j * n + i0;
          const ElemT* tile_row = tile + (j - j0) * block;
          for (std::size_t ii = 0; ii < i1 - i0; ++ii) out[ii] = tile_row[ii];
        }
      }
      // Diagonal block: small triangle, mirrored in place.
      for (std::size_t i = i0 + 1; i < i1; ++i) {
        const ElemT* row = d + i * n;
        for (std::size_t j = i0; j < i; ++j) d[j * n + i] = row[j];
      }
    }
    for (std::size_t i = 0; i < n; ++i) d[i * n + i] = elem_inf;
  }

  std::vector<std::uint8_t> active(n, 1);
  std::vector<std::uint32_t> size(n, 1);
  std::vector<double> sizef(n, 1.0);  // kernel-side copy (ward needs doubles)
  std::vector<merge_record> log;
  log.reserve(n - 1);
  std::vector<std::uint32_t> synced(n, 0);  ///< log prefix applied per row
  std::vector<std::uint32_t> chain;
  chain.reserve(n);
  std::vector<raw_merge> raw;
  raw.reserve(n - 1);
  hac_stats& stats = result.stats;

  const kn::lw_linkage lw_link = to_lw_linkage(link);

  // Replays the merges row r has not seen yet. A row's own size cannot have
  // changed since any unseen merge (surviving a merge refreshes the row and
  // fast-forwards `synced`), so sizef[r] is the correct size_k throughout.
  // min/max linkages skip the store rounding: their update selects one of
  // two already-stored (hence already-rounded) values, so Policy::store is
  // an identity there and only costs replay-loop time.
  const bool select_only = link == linkage::single || link == linkage::complete;
  auto repair = [&](std::uint32_t r) {
    std::uint32_t s = synced[r];
    const auto end = static_cast<std::uint32_t>(log.size());
    if (s == end) return;
    ElemT* row = d + static_cast<std::size_t>(r) * n;
    const double nk = sizef[r];
    if (select_only) {
      for (; s < end; ++s) {
        const merge_record& m = log[s];
        const ElemT a = row[m.gone];
        const ElemT b = row[m.keep];
        row[m.keep] = link == linkage::single ? (b < a ? b : a) : (a < b ? b : a);
      }
    } else {
      for (; s < end; ++s) {
        const merge_record& m = log[s];
        row[m.keep] = static_cast<ElemT>(Policy::store(kn::lance_williams(
            lw_link, static_cast<double>(row[m.gone]), static_cast<double>(row[m.keep]),
            m.d_ab, m.size_a, m.size_b, nk)));
      }
    }
    synced[r] = end;
  };

  std::uint32_t active_count = static_cast<std::uint32_t>(n);
  std::uint32_t lowest_active = 0;
  while (raw.size() < n - 1) {
    if (chain.size() < 2) {
      chain.clear();
      while (active[lowest_active] == 0) ++lowest_active;
      chain.push_back(lowest_active);
    }

    for (;;) {
      const std::uint32_t a = chain.back();
      const std::uint32_t prev = chain.size() >= 2 ? chain[chain.size() - 2] : k_none;
      repair(a);
      const ElemT* row = d + static_cast<std::size_t>(a) * n;

      // Nearest active neighbour of a: masked argmin over the row (lowest
      // index wins ties, matching the scalar strict-< scan), then prefer
      // prev on ties (Müllner's tie-break — guarantees termination).
      const kn::row_min scan = kn::nearest_active_scan(row, active.data(), n);
      std::uint32_t c = scan.index;
      double min_d = scan.value;
      if (c == a || active[c] == 0) {
        // Degenerate row (every remaining distance +inf): the argmin landed
        // on the diagonal or a retired column. Fall back to the lowest
        // active partner so the chain always advances instead of hanging.
        c = k_none;
        for (std::uint32_t x = 0; x < n; ++x) {
          if (active[x] == 0 || x == a) continue;
          c = x;
          min_d = static_cast<double>(row[x]);
          break;
        }
      }
      if (prev != k_none) {
        const auto d_prev = static_cast<double>(row[prev]);
        if (d_prev <= min_d) {
          c = prev;
          min_d = d_prev;
        }
      }
      stats.comparisons += active_count - (prev != k_none ? 2 : 1);

      if (c == prev && prev != k_none) {
        // Reciprocal nearest neighbours: merge a and prev.
        chain.pop_back();
        chain.pop_back();

        const std::uint32_t keep = prev;  // survivor slot
        const std::uint32_t gone = a;
        raw.push_back({gone, keep, min_d});
        ++stats.merges;

        // gone is current (repaired for this scan). keep may NOT be: a
        // reciprocal pair deeper up the chain can merge between keep's
        // scan and this one (merges pop only the two tail elements), so
        // keep's row can have pending log entries — this repair is
        // load-bearing, not a guard.
        repair(keep);
        log.push_back({gone, keep, min_d, sizef[gone], sizef[keep]});

        active[gone] = 0;
        --active_count;
        // Survivor's flag is cleared around the kernel call so its own
        // diagonal lane is skipped; the kernel touches active lanes only.
        active[keep] = 0;
        const kn::lw_update update{lw_link, Policy::mode, sizef[gone], sizef[keep], min_d};
        ElemT* keep_row = d + static_cast<std::size_t>(keep) * n;
        const ElemT* gone_row = d + static_cast<std::size_t>(gone) * n;
        kn::lance_williams_row_update(keep_row, gone_row, active.data(), sizef.data(), n,
                                      update);
        active[keep] = 1;
        synced[keep] = static_cast<std::uint32_t>(log.size());
        stats.distance_updates += active_count - 1;

        size[keep] += size[gone];
        sizef[keep] = static_cast<double>(size[keep]);
        break;
      }
      chain.push_back(c);
      ++stats.chain_pushes;
    }
  }

  result.tree = build_dendrogram(n, std::move(raw));
  return result;
}

// ---------------------------------------------------------------------------
// Pre-kernel condensed-matrix implementation (golden reference)
// ---------------------------------------------------------------------------

template <typename Policy, typename Matrix>
hac_result nn_chain_condensed_impl(const Matrix& input, linkage link) {
  const std::size_t n = input.size();
  hac_result result;
  if (n <= 1) {
    result.tree = dendrogram(n, {});
    return result;
  }

  // Working condensed matrix in double precision (Policy rounds stores).
  std::vector<double> d(n * (n - 1) / 2);
  for (std::size_t i = 1; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      d[i * (i - 1) / 2 + j] = Policy::store(load_entry(input, i, j));
    }
  }
  auto dist = [&](std::uint32_t a, std::uint32_t b) -> double& {
    return a > b ? d[static_cast<std::size_t>(a) * (a - 1) / 2 + b]
                 : d[static_cast<std::size_t>(b) * (b - 1) / 2 + a];
  };

  std::vector<bool> active(n, true);
  std::vector<std::uint32_t> size(n, 1);
  std::vector<std::uint32_t> chain;
  chain.reserve(n);
  std::vector<raw_merge> raw;
  raw.reserve(n - 1);
  hac_stats& stats = result.stats;

  std::uint32_t lowest_active = 0;
  while (raw.size() < n - 1) {
    if (chain.size() < 2) {
      chain.clear();
      while (!active[lowest_active]) ++lowest_active;
      chain.push_back(lowest_active);
    }

    for (;;) {
      const std::uint32_t a = chain.back();
      const std::uint32_t prev = chain.size() >= 2 ? chain[chain.size() - 2] : k_none;

      // Nearest active neighbour of a, preferring prev on ties (Müllner's
      // tie-break — guarantees termination).
      std::uint32_t c = prev;
      double min_d = prev != k_none ? dist(a, prev) : k_inf;
      for (std::uint32_t x = 0; x < n; ++x) {
        if (!active[x] || x == a || x == prev) continue;
        ++stats.comparisons;
        const double dx = dist(a, x);
        if (dx < min_d) {
          min_d = dx;
          c = x;
        }
      }
      if (c == k_none) {
        // Chain of length one whose distances are all +inf: the strict-<
        // scan found no candidate. Take the lowest active partner so the
        // loop cannot push an out-of-range index (degenerate-input fix,
        // mirrored in the flat implementation).
        for (std::uint32_t x = 0; x < n; ++x) {
          if (!active[x] || x == a) continue;
          c = x;
          min_d = dist(a, x);
          break;
        }
      }

      if (c == prev && prev != k_none) {
        // Reciprocal nearest neighbours: merge a and prev.
        chain.pop_back();
        chain.pop_back();

        const std::uint32_t keep = prev;  // survivor slot
        const std::uint32_t gone = a;
        raw.push_back({gone, keep, min_d});
        ++stats.merges;

        const std::uint32_t size_a = size[gone];
        const std::uint32_t size_b = size[keep];
        active[gone] = false;
        for (std::uint32_t k = 0; k < n; ++k) {
          if (!active[k] || k == keep) continue;
          const double d_ka = dist(k, gone);
          const double d_kb = dist(k, keep);
          dist(k, keep) = Policy::store(
              lance_williams(link, d_ka, d_kb, min_d, size_a, size_b, size[k]));
          ++stats.distance_updates;
        }
        size[keep] = size_a + size_b;
        break;
      }
      chain.push_back(c);
      ++stats.chain_pushes;
    }
  }

  result.tree = build_dendrogram(n, std::move(raw));
  return result;
}

}  // namespace

hac_result nn_chain_hac(const hdc::distance_matrix_f32& distances, linkage link) {
  // min/max linkages only ever select existing (float-exact) values, so the
  // working matrix can be float; average/ward create genuine doubles and
  // must run wide to stay bit-identical to the condensed reference.
  if (link == linkage::single || link == linkage::complete) {
    return nn_chain_flat_impl<store_f64, float>(distances, link);
  }
  return nn_chain_flat_impl<store_f64, double>(distances, link);
}

hac_result nn_chain_hac(const hdc::distance_matrix_q16& distances, linkage link) {
  // Every stored value lands on the Q0.16 grid, which float holds exactly.
  return nn_chain_flat_impl<store_q16, float>(distances, link);
}

hac_result nn_chain_hac_condensed(const hdc::distance_matrix_f32& distances, linkage link) {
  return nn_chain_condensed_impl<store_f64>(distances, link);
}

hac_result nn_chain_hac_condensed(const hdc::distance_matrix_q16& distances, linkage link) {
  return nn_chain_condensed_impl<store_q16>(distances, link);
}

}  // namespace spechd::cluster
