#include "cluster/nn_chain.hpp"

#include <limits>
#include <vector>

#include "util/error.hpp"
#include "util/fixed_point.hpp"

namespace spechd::cluster {

namespace {

constexpr std::uint32_t k_none = std::numeric_limits<std::uint32_t>::max();

/// Storage policies: how distances are rounded when written back.
struct store_f64 {
  static double store(double v) noexcept { return v; }
};
struct store_q16 {
  static double store(double v) noexcept { return q16::from_double(v).to_double(); }
};

template <typename Policy, typename Matrix>
hac_result nn_chain_impl(const Matrix& input, linkage link) {
  const std::size_t n = input.size();
  hac_result result;
  if (n <= 1) {
    result.tree = dendrogram(n, {});
    return result;
  }

  // Working condensed matrix in double precision (Policy rounds stores).
  std::vector<double> d(n * (n - 1) / 2);
  for (std::size_t i = 1; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      double v;
      if constexpr (std::is_same_v<Matrix, hdc::distance_matrix_q16>) {
        v = input.at(i, j).to_double();
      } else {
        v = static_cast<double>(input.at(i, j));
      }
      d[i * (i - 1) / 2 + j] = Policy::store(v);
    }
  }
  auto dist = [&](std::uint32_t a, std::uint32_t b) -> double& {
    return a > b ? d[static_cast<std::size_t>(a) * (a - 1) / 2 + b]
                 : d[static_cast<std::size_t>(b) * (b - 1) / 2 + a];
  };

  std::vector<bool> active(n, true);
  std::vector<std::uint32_t> size(n, 1);
  std::vector<std::uint32_t> chain;
  chain.reserve(n);
  std::vector<raw_merge> raw;
  raw.reserve(n - 1);
  hac_stats& stats = result.stats;

  std::uint32_t lowest_active = 0;
  while (raw.size() < n - 1) {
    if (chain.size() < 2) {
      chain.clear();
      while (!active[lowest_active]) ++lowest_active;
      chain.push_back(lowest_active);
    }

    for (;;) {
      const std::uint32_t a = chain.back();
      const std::uint32_t prev = chain.size() >= 2 ? chain[chain.size() - 2] : k_none;

      // Nearest active neighbour of a, preferring prev on ties (Müllner's
      // tie-break — guarantees termination).
      std::uint32_t c = prev;
      double min_d = prev != k_none ? dist(a, prev) : std::numeric_limits<double>::infinity();
      for (std::uint32_t x = 0; x < n; ++x) {
        if (!active[x] || x == a || x == prev) continue;
        ++stats.comparisons;
        const double dx = dist(a, x);
        if (dx < min_d) {
          min_d = dx;
          c = x;
        }
      }

      if (c == prev && prev != k_none) {
        // Reciprocal nearest neighbours: merge a and prev.
        chain.pop_back();
        chain.pop_back();

        const std::uint32_t keep = prev;  // survivor slot
        const std::uint32_t gone = a;
        raw.push_back({gone, keep, min_d});
        ++stats.merges;

        const std::uint32_t size_a = size[gone];
        const std::uint32_t size_b = size[keep];
        active[gone] = false;
        for (std::uint32_t k = 0; k < n; ++k) {
          if (!active[k] || k == keep) continue;
          const double d_ka = dist(k, gone);
          const double d_kb = dist(k, keep);
          dist(k, keep) = Policy::store(
              lance_williams(link, d_ka, d_kb, min_d, size_a, size_b, size[k]));
          ++stats.distance_updates;
        }
        size[keep] = size_a + size_b;
        break;
      }
      chain.push_back(c);
      ++stats.chain_pushes;
    }
  }

  result.tree = build_dendrogram(n, std::move(raw));
  return result;
}

}  // namespace

hac_result nn_chain_hac(const hdc::distance_matrix_f32& distances, linkage link) {
  return nn_chain_impl<store_f64>(distances, link);
}

hac_result nn_chain_hac(const hdc::distance_matrix_q16& distances, linkage link) {
  return nn_chain_impl<store_q16>(distances, link);
}

}  // namespace spechd::cluster
