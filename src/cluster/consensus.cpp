#include "cluster/consensus.hpp"

#include <algorithm>
#include <limits>
#include <map>

#include "util/error.hpp"

namespace spechd::cluster {

std::vector<std::uint32_t> medoids(const flat_clustering& clustering,
                                   const hdc::distance_matrix_f32& original) {
  SPECHD_EXPECTS(clustering.labels.size() == original.size());
  // Group member indices by cluster label.
  std::vector<std::vector<std::uint32_t>> members(clustering.cluster_count);
  for (std::uint32_t i = 0; i < clustering.labels.size(); ++i) {
    const auto label = clustering.labels[i];
    if (label >= 0) members[static_cast<std::size_t>(label)].push_back(i);
  }

  std::vector<std::uint32_t> result(clustering.cluster_count, 0);
  for (std::size_t c = 0; c < members.size(); ++c) {
    const auto& m = members[c];
    if (m.empty()) continue;
    if (m.size() == 1) {
      result[c] = m[0];
      continue;
    }
    double best = std::numeric_limits<double>::infinity();
    std::uint32_t best_idx = m[0];
    for (const auto i : m) {
      double sum = 0.0;
      for (const auto j : m) {
        if (i != j) sum += original.at(i, j);
      }
      const double avg = sum / static_cast<double>(m.size() - 1);
      if (avg < best) {
        best = avg;
        best_idx = i;
      }
    }
    result[c] = best_idx;
  }
  return result;
}

ms::spectrum merge_consensus(const std::vector<const ms::spectrum*>& members,
                             const ms::spectrum& medoid, double bin_width) {
  SPECHD_EXPECTS(!members.empty());
  SPECHD_EXPECTS(bin_width > 0.0);

  ms::spectrum out;
  out.title = medoid.title + ";consensus_of=" + std::to_string(members.size());
  out.scan = medoid.scan;
  out.precursor_mz = medoid.precursor_mz;
  out.precursor_charge = medoid.precursor_charge;
  out.retention_time = medoid.retention_time;
  out.label = medoid.label;

  struct bin_acc {
    double intensity_sum = 0.0;
    double weighted_mz = 0.0;
  };
  std::map<std::int64_t, bin_acc> bins;
  for (const auto* s : members) {
    for (const auto& p : s->peaks) {
      auto& acc = bins[static_cast<std::int64_t>(p.mz / bin_width)];
      acc.intensity_sum += p.intensity;
      acc.weighted_mz += p.mz * p.intensity;
    }
  }
  out.peaks.reserve(bins.size());
  const auto n = static_cast<double>(members.size());
  for (const auto& [bin, acc] : bins) {
    if (acc.intensity_sum <= 0.0) continue;
    out.peaks.push_back({acc.weighted_mz / acc.intensity_sum,
                         static_cast<float>(acc.intensity_sum / n)});
  }
  ms::sort_peaks(out);
  return out;
}

std::vector<ms::spectrum> consensus_spectra(const flat_clustering& clustering,
                                            const hdc::distance_matrix_f32& original,
                                            const std::vector<ms::spectrum>& spectra,
                                            double bin_width) {
  SPECHD_EXPECTS(clustering.labels.size() == spectra.size());
  const auto reps = medoids(clustering, original);

  std::vector<std::vector<const ms::spectrum*>> members(clustering.cluster_count);
  for (std::size_t i = 0; i < spectra.size(); ++i) {
    const auto label = clustering.labels[i];
    if (label >= 0) members[static_cast<std::size_t>(label)].push_back(&spectra[i]);
  }

  std::vector<ms::spectrum> result;
  result.reserve(clustering.cluster_count);
  for (std::size_t c = 0; c < clustering.cluster_count; ++c) {
    if (members[c].empty()) continue;
    if (members[c].size() == 1) {
      result.push_back(*members[c][0]);
    } else {
      result.push_back(merge_consensus(members[c], spectra[reps[c]], bin_width));
    }
  }
  return result;
}

}  // namespace spechd::cluster
