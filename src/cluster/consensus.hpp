// Consensus / representative selection (Sec. III-C closing step):
//
// "the algorithm calculates a consensus cluster by evaluating the lowest
//  average minimum distance to all other spectra within that cluster,
//  based on the original distance matrix" — i.e. the medoid.
//
// We also provide a peak-merging consensus spectrum builder (bin fragment
// m/z across members, average intensities) used when exporting cluster
// representatives for the simulated database search (Fig. 11).
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/dendrogram.hpp"
#include "hdc/distance.hpp"
#include "ms/spectrum.hpp"

namespace spechd::cluster {

/// Medoid member index (into the item list) for each cluster, using the
/// original (pre-merge) distance matrix. Clusters are indexed by label.
std::vector<std::uint32_t> medoids(const flat_clustering& clustering,
                                   const hdc::distance_matrix_f32& original);

/// Builds a merged consensus spectrum from cluster members: fragment m/z
/// binned at `bin_width`, per-bin intensity averaged over members, bin
/// centre reported as m/z. Precursor fields are medoid's.
ms::spectrum merge_consensus(const std::vector<const ms::spectrum*>& members,
                             const ms::spectrum& medoid, double bin_width = 0.05);

/// Convenience: a full consensus set — one representative spectrum per
/// cluster (medoid metadata, merged peaks); singletons pass through.
std::vector<ms::spectrum> consensus_spectra(const flat_clustering& clustering,
                                            const hdc::distance_matrix_f32& original,
                                            const std::vector<ms::spectrum>& spectra,
                                            double bin_width = 0.05);

}  // namespace spechd::cluster
