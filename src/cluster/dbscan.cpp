#include "cluster/dbscan.hpp"

#include <queue>
#include <vector>

namespace spechd::cluster {

flat_clustering dbscan(const hdc::distance_matrix_f32& distances,
                       const dbscan_config& config) {
  const std::size_t n = distances.size();
  flat_clustering out;
  out.labels.assign(n, -1);
  if (n == 0) return out;

  auto neighbours = [&](std::size_t p) {
    std::vector<std::uint32_t> result;
    for (std::size_t q = 0; q < n; ++q) {
      if (q == p) continue;
      if (distances.at(p, q) <= config.eps) {
        result.push_back(static_cast<std::uint32_t>(q));
      }
    }
    return result;
  };

  std::vector<bool> visited(n, false);
  std::int32_t next_cluster = 0;

  for (std::size_t p = 0; p < n; ++p) {
    if (visited[p]) continue;
    visited[p] = true;
    auto seeds = neighbours(p);
    if (seeds.size() + 1 < config.min_pts) continue;  // not a core point

    const std::int32_t cluster = next_cluster++;
    out.labels[p] = cluster;

    std::queue<std::uint32_t> frontier;
    for (auto s : seeds) frontier.push(s);
    while (!frontier.empty()) {
      const std::uint32_t q = frontier.front();
      frontier.pop();
      if (out.labels[q] < 0) out.labels[q] = cluster;  // claim border/noise
      if (visited[q]) continue;
      visited[q] = true;
      auto q_neighbours = neighbours(q);
      if (q_neighbours.size() + 1 >= config.min_pts) {
        for (auto s : q_neighbours) {
          if (!visited[s] || out.labels[s] < 0) frontier.push(s);
        }
      }
    }
  }
  out.cluster_count = static_cast<std::size_t>(next_cluster);
  return out;
}

}  // namespace spechd::cluster
