// Linkage criteria and Lance–Williams distance updates.
//
// Sec. III-C: "Our architecture is flexible and supports various linkage
// criteria, including Ward, single linkage, and complete linkage. In our
// specific implementation, we have found that complete linkage provides
// the most reliable results."
//
// All four supported criteria are *reducible* (Murtagh & Contreras 2011),
// which is precisely the property that makes NN-chain produce the same
// dendrogram as exhaustive greedy HAC.
#pragma once

#include <cstddef>
#include <string_view>

#include "hdc/cpu_kernels.hpp"

namespace spechd::cluster {

enum class linkage {
  single,
  complete,
  average,
  ward,
};

std::string_view linkage_name(linkage l) noexcept;

/// Lance–Williams update: distance from cluster k to the merge of a and b,
/// given the previous distances d_ka, d_kb, d_ab and the cluster sizes.
/// Delegates to hdc::kernels::lance_williams — the single arithmetic
/// definition shared with the SIMD row-update kernels.
double lance_williams(linkage l, double d_ka, double d_kb, double d_ab,
                      std::size_t size_a, std::size_t size_b, std::size_t size_k) noexcept;

/// Maps a cluster linkage onto the kernel layer's enum (they mirror each
/// other; hdc cannot depend on cluster/, so the kernels carry their own).
hdc::kernels::lw_linkage to_lw_linkage(linkage l) noexcept;

}  // namespace spechd::cluster
