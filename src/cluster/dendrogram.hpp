// Dendrogram: the merge tree produced by hierarchical clustering, plus the
// threshold cut that turns it into a flat clustering.
#pragma once

#include <cstdint>
#include <vector>

namespace spechd::cluster {

/// One agglomeration step. Cluster ids: 0..n-1 are leaves; the merge at
/// position k creates id n + k.
struct merge_step {
  std::uint32_t left = 0;
  std::uint32_t right = 0;
  double distance = 0.0;
  std::uint32_t size = 0;  ///< members in the merged cluster
};

/// A flat clustering: labels[i] in [0, cluster_count).
struct flat_clustering {
  std::vector<std::int32_t> labels;
  std::size_t cluster_count = 0;

  std::size_t size() const noexcept { return labels.size(); }
};

/// Number of members per cluster.
std::vector<std::size_t> cluster_sizes(const flat_clustering& c);

/// Fraction of items living in clusters of size >= 2 (the paper's
/// "clustered spectra ratio" numerator, computed per flat clustering).
double non_singleton_fraction(const flat_clustering& c);

class dendrogram {
public:
  dendrogram() = default;

  /// `merges` must be sorted ascending by distance and reference ids as
  /// described on merge_step (the standard SciPy-style Z matrix).
  dendrogram(std::size_t leaves, std::vector<merge_step> merges);

  std::size_t leaves() const noexcept { return leaves_; }
  const std::vector<merge_step>& merges() const noexcept { return merges_; }

  /// Flat clustering containing every merge with distance <= threshold.
  flat_clustering cut(double threshold) const;

  /// Flat clustering with exactly k clusters (k in [1, leaves]).
  flat_clustering cut_k(std::size_t k) const;

  /// True if merge distances are non-decreasing (no inversions) — holds for
  /// all reducible linkages; validated in tests.
  bool monotone() const noexcept;

private:
  std::size_t leaves_ = 0;
  std::vector<merge_step> merges_;
};

/// Builds a dendrogram from raw (slot_a, slot_b, distance) merge records
/// produced by NN-chain (which discovers merges out of height order for
/// some input orders): sorts by distance, then relabels with a union-find,
/// exactly like fastcluster/SciPy's `label` step.
struct raw_merge {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  double distance = 0.0;
};
dendrogram build_dendrogram(std::size_t leaves, std::vector<raw_merge> raw);

}  // namespace spechd::cluster
