#include "baselines/vectorize.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace spechd::baselines {

namespace {

/// Deterministic per-(bin, dimension) pseudo-random sign/weight derived by
/// hashing — avoids materialising a (bins x dim) projection matrix.
inline std::uint64_t mix(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

inline double unit_gaussian_from_hash(std::uint64_t h) noexcept {
  // Two 32-bit halves -> Box-Muller. Adequate quality for projections.
  const double u1 = (static_cast<double>(h >> 32) + 0.5) / 4294967296.0;
  const double u2 = (static_cast<double>(h & 0xFFFFFFFFULL) + 0.5) / 4294967296.0;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

}  // namespace

sparse_vector vectorize(const ms::spectrum& s, const vectorize_config& config) {
  SPECHD_EXPECTS(config.bin_width > 0.0 && config.mz_max > config.mz_min);
  sparse_vector v;
  v.entries.reserve(s.peaks.size());
  const auto max_bin = static_cast<std::uint32_t>(
      (config.mz_max - config.mz_min) / config.bin_width);
  for (const auto& p : s.peaks) {
    if (p.mz < config.mz_min || p.mz > config.mz_max || p.intensity <= 0.0F) continue;
    auto bin = static_cast<std::uint32_t>((p.mz - config.mz_min) / config.bin_width);
    bin = std::min(bin, max_bin);
    const float w = config.sqrt_intensity ? std::sqrt(p.intensity) : p.intensity;
    if (!v.entries.empty() && v.entries.back().first == bin) {
      v.entries.back().second += w;
    } else {
      v.entries.emplace_back(bin, w);
    }
  }
  double norm_sq = 0.0;
  for (const auto& [bin, w] : v.entries) norm_sq += static_cast<double>(w) * w;
  if (norm_sq > 0.0) {
    const auto inv = static_cast<float>(1.0 / std::sqrt(norm_sq));
    for (auto& [bin, w] : v.entries) w *= inv;
  }
  return v;
}

double cosine(const sparse_vector& a, const sparse_vector& b) noexcept {
  double dot = 0.0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.entries.size() && j < b.entries.size()) {
    const auto ba = a.entries[i].first;
    const auto bb = b.entries[j].first;
    if (ba == bb) {
      dot += static_cast<double>(a.entries[i].second) * b.entries[j].second;
      ++i;
      ++j;
    } else if (ba < bb) {
      ++i;
    } else {
      ++j;
    }
  }
  return dot;
}

std::uint64_t lsh_signature(const sparse_vector& v, std::size_t bits, std::uint32_t table_id,
                            std::uint64_t seed, std::uint32_t total_bins) {
  SPECHD_EXPECTS(bits <= 64);
  (void)total_bins;
  std::uint64_t signature = 0;
  for (std::size_t b = 0; b < bits; ++b) {
    double dot = 0.0;
    for (const auto& [bin, w] : v.entries) {
      const std::uint64_t h =
          mix(seed ^ (static_cast<std::uint64_t>(table_id) << 48) ^
              (static_cast<std::uint64_t>(b) << 32) ^ bin);
      dot += static_cast<double>(w) * unit_gaussian_from_hash(h);
    }
    if (dot >= 0.0) signature |= 1ULL << b;
  }
  return signature;
}

std::vector<float> dense_embedding(const sparse_vector& v, std::size_t dim,
                                   std::uint64_t seed, std::uint32_t total_bins) {
  (void)total_bins;
  std::vector<float> out(dim, 0.0F);
  for (std::size_t d = 0; d < dim; ++d) {
    double acc = 0.0;
    for (const auto& [bin, w] : v.entries) {
      const std::uint64_t h = mix(seed ^ (static_cast<std::uint64_t>(d) << 32) ^ bin);
      acc += static_cast<double>(w) * unit_gaussian_from_hash(h);
    }
    out[d] = static_cast<float>(acc);
  }
  double norm_sq = 0.0;
  for (const auto x : out) norm_sq += static_cast<double>(x) * x;
  if (norm_sq > 0.0) {
    const auto inv = static_cast<float>(1.0 / std::sqrt(norm_sq));
    for (auto& x : out) x *= inv;
  }
  return out;
}

double euclidean(const std::vector<float>& a, const std::vector<float>& b) noexcept {
  double sum = 0.0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

}  // namespace spechd::baselines
