// Runnable baseline clustering tools (Fig. 10's nine-tool comparison).
//
// Each tool follows the algorithmic skeleton of its namesake and exposes a
// single `aggressiveness` knob in [0, 1] (0 = conservative) that the
// quality-sweep harness tunes to trace the clustered-ratio-vs-ICR curve,
// exactly how the paper "fine-tuned each to operate within an incorrect
// clustering ratio ranging from 0% to 7%".
//
// All tools bucket by precursor mass (Eq. 1-style) first — every real MS
// clustering tool restricts comparisons to a precursor tolerance.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "cluster/dendrogram.hpp"
#include "ms/spectrum.hpp"

namespace spechd::baselines {

/// Interface implemented by every baseline.
class clustering_tool {
public:
  virtual ~clustering_tool() = default;

  virtual std::string_view name() const noexcept = 0;

  /// Clusters `spectra` (already loaded; the tool does its own
  /// preprocessing). Returns one label per input spectrum.
  virtual cluster::flat_clustering run(const std::vector<ms::spectrum>& spectra,
                                       double aggressiveness) const = 0;
};

/// HyperSpec analogue: same HDC encoding as SpecHD, generic full-matrix HAC
/// (fastcluster-style) on Hamming distances. `hac = false` selects the
/// DBSCAN flavour (cuML analogue).
std::unique_ptr<clustering_tool> make_hyperspec(bool hac);

/// falcon analogue: sparse vectors + random-hyperplane LSH candidate
/// generation + single-link merging of pairs above a cosine threshold.
std::unique_ptr<clustering_tool> make_falcon();

/// msCRUSH analogue: iterative LSH bucketing with in-bucket greedy
/// consensus merging.
std::unique_ptr<clustering_tool> make_mscrush();

/// GLEAMS analogue: dense 32-d embedding + complete-linkage HAC in
/// Euclidean space.
std::unique_ptr<clustering_tool> make_gleams();

/// MaRaCluster analogue: rarity-weighted fragment-match distance + HAC.
std::unique_ptr<clustering_tool> make_maracluster();

/// MSCluster analogue: multi-round greedy cascade clustering with a
/// descending similarity schedule.
std::unique_ptr<clustering_tool> make_mscluster();

/// spectra-cluster analogue: the same cascade family but with more rounds,
/// a stricter starting threshold and a probabilistic-scoring flavour
/// (rarity-weighted cosine), mirroring the PRIDE tool's conservative
/// defaults.
std::unique_ptr<clustering_tool> make_spectra_cluster();

/// All baselines in Fig. 10 order (without SpecHD itself): HyperSpec-HAC,
/// HyperSpec-DBSCAN, falcon, msCRUSH, GLEAMS, MaRaCluster, MSCluster,
/// spectra-cluster.
std::vector<std::unique_ptr<clustering_tool>> make_all_baselines();

}  // namespace spechd::baselines
