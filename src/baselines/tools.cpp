#include "baselines/tools.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <unordered_map>

#include "baselines/vectorize.hpp"
#include "cluster/dbscan.hpp"
#include "cluster/nn_chain.hpp"
#include "hdc/distance.hpp"
#include "hdc/encoder.hpp"
#include "ms/spectrum.hpp"
#include "preprocess/pipeline.hpp"

namespace spechd::baselines {

namespace {

/// Precursor-mass bucketing shared by every baseline (1 Da neutral-mass
/// windows, the common default precursor tolerance regime).
std::vector<std::vector<std::uint32_t>> precursor_buckets(
    const std::vector<ms::spectrum>& spectra) {
  std::map<std::int64_t, std::vector<std::uint32_t>> by_key;
  for (std::uint32_t i = 0; i < spectra.size(); ++i) {
    const int charge = spectra[i].precursor_charge > 0 ? spectra[i].precursor_charge : 2;
    const double mass = (spectra[i].precursor_mz - ms::hydrogen_mass) * charge;
    by_key[static_cast<std::int64_t>(std::floor(mass))].push_back(i);
  }
  std::vector<std::vector<std::uint32_t>> buckets;
  buckets.reserve(by_key.size());
  for (auto& [key, members] : by_key) buckets.push_back(std::move(members));
  return buckets;
}

/// Merges per-bucket labels into a global flat clustering.
class label_builder {
public:
  explicit label_builder(std::size_t n) {
    out_.labels.assign(n, -1);
  }

  /// `local` carries one label (or -1 for noise) per member of `members`.
  void add_bucket(const std::vector<std::uint32_t>& members,
                  const std::vector<std::int32_t>& local, std::size_t local_clusters) {
    for (std::size_t i = 0; i < members.size(); ++i) {
      out_.labels[members[i]] =
          local[i] < 0 ? next_noise_label() : static_cast<std::int32_t>(offset_ + local[i]);
    }
    offset_ += local_clusters;
  }

  cluster::flat_clustering finish() {
    out_.cluster_count = offset_;
    // Noise points were assigned fresh singleton labels beyond offset_; fold
    // them into the count so labels stay dense.
    if (!noise_labels_.empty()) {
      std::unordered_map<std::int32_t, std::int32_t> remap;
      for (auto& l : out_.labels) {
        if (l >= static_cast<std::int32_t>(offset_) || l < 0) {
          if (l < 0) continue;
        }
      }
      // Renumber noise labels (stored as negative placeholders) to dense ids.
      for (auto& l : out_.labels) {
        if (l <= -2) {
          auto [it, inserted] = remap.try_emplace(l, static_cast<std::int32_t>(out_.cluster_count));
          if (inserted) ++out_.cluster_count;
          l = it->second;
        }
      }
    }
    return std::move(out_);
  }

private:
  std::int32_t next_noise_label() {
    // Temporarily store noise as unique negative ids <= -2; finish() maps
    // them to dense singleton labels.
    const auto label = static_cast<std::int32_t>(-2 - static_cast<std::int32_t>(noise_labels_.size()));
    noise_labels_.push_back(label);
    return label;
  }

  cluster::flat_clustering out_;
  std::size_t offset_ = 0;
  std::vector<std::int32_t> noise_labels_;
};

/// Shared preprocessing for vector-space tools.
std::vector<sparse_vector> vectorize_all(const std::vector<ms::spectrum>& spectra) {
  vectorize_config config;
  std::vector<sparse_vector> out;
  out.reserve(spectra.size());
  for (const auto& s : spectra) out.push_back(vectorize(s, config));
  return out;
}

/// Union-find for pair-merge tools.
class pair_merger {
public:
  explicit pair_merger(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::uint32_t{0});
  }
  std::uint32_t find(std::uint32_t x) noexcept {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::uint32_t a, std::uint32_t b) noexcept { parent_[find(a)] = find(b); }

  std::pair<std::vector<std::int32_t>, std::size_t> labels() {
    std::vector<std::int32_t> out(parent_.size(), -1);
    std::unordered_map<std::uint32_t, std::int32_t> remap;
    std::int32_t next = 0;
    for (std::uint32_t i = 0; i < parent_.size(); ++i) {
      const auto root = find(i);
      auto [it, inserted] = remap.try_emplace(root, next);
      if (inserted) ++next;
      out[i] = it->second;
    }
    return {std::move(out), static_cast<std::size_t>(next)};
  }

private:
  std::vector<std::uint32_t> parent_;
};

// ---------------------------------------------------------------------------
// HyperSpec analogue
// ---------------------------------------------------------------------------

class hyperspec_tool final : public clustering_tool {
public:
  explicit hyperspec_tool(bool hac) : hac_(hac) {}

  std::string_view name() const noexcept override {
    return hac_ ? "HyperSpec-HAC" : "HyperSpec-DBSCAN";
  }

  cluster::flat_clustering run(const std::vector<ms::spectrum>& spectra,
                               double aggressiveness) const override {
    preprocess::preprocess_config pp;
    auto batch = preprocess::run_preprocessing(spectra, pp);

    // Rebuild an index: quantised spectra reference original positions.
    hdc::encoder_config enc_cfg;
    hdc::id_level_encoder encoder(enc_cfg, pp.quantize.mz_bins, pp.quantize.intensity_levels);

    label_builder builder(spectra.size());
    // Normalised Hamming cut: replicate HVs sit around 0.35-0.45, unrelated
    // pairs near 0.5, so the useful knob range is high and narrow.
    const double threshold = 0.25 + 0.30 * aggressiveness;

    for (const auto& bucket : batch.buckets) {
      std::vector<preprocess::quantized_spectrum> members;
      members.reserve(bucket.size());
      for (const auto idx : bucket.members) members.push_back(batch.spectra[idx]);
      std::vector<std::uint32_t> original;
      original.reserve(members.size());
      for (const auto& m : members) original.push_back(m.source_index);

      const auto hvs = encoder.encode_batch(members);
      const auto matrix = hdc::pairwise_hamming_f32(hvs);

      std::vector<std::int32_t> local;
      std::size_t local_clusters = 0;
      if (hac_) {
        const auto result = cluster::nn_chain_hac(matrix, cluster::linkage::complete);
        auto flat = result.tree.cut(threshold);
        local = std::move(flat.labels);
        local_clusters = flat.cluster_count;
      } else {
        cluster::dbscan_config db;
        db.eps = threshold;
        db.min_pts = 2;
        auto flat = cluster::dbscan(matrix, db);
        local = std::move(flat.labels);
        local_clusters = flat.cluster_count;
      }
      builder.add_bucket(original, local, local_clusters);
    }
    return builder.finish();
  }

private:
  bool hac_;
};

// ---------------------------------------------------------------------------
// falcon analogue
// ---------------------------------------------------------------------------

class falcon_tool final : public clustering_tool {
public:
  std::string_view name() const noexcept override { return "falcon"; }

  cluster::flat_clustering run(const std::vector<ms::spectrum>& spectra,
                               double aggressiveness) const override {
    const auto vectors = vectorize_all(spectra);
    const auto buckets = precursor_buckets(spectra);
    const double min_cosine = 0.85 - 0.45 * aggressiveness;

    label_builder builder(spectra.size());
    for (const auto& members : buckets) {
      pair_merger merger(members.size());
      // LSH candidate generation: 8 tables x 8-bit signatures (recall-oriented,
      // as falcon probes many hash tables).
      for (std::uint32_t table = 0; table < 8; ++table) {
        std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> by_sig;
        for (std::uint32_t i = 0; i < members.size(); ++i) {
          const auto sig = lsh_signature(vectors[members[i]], 8, table, 0xFA1C0, 0);
          by_sig[sig].push_back(i);
        }
        for (const auto& [sig, group] : by_sig) {
          for (std::size_t a = 0; a < group.size(); ++a) {
            for (std::size_t b = a + 1; b < group.size(); ++b) {
              if (merger.find(group[a]) == merger.find(group[b])) continue;
              const double c =
                  cosine(vectors[members[group[a]]], vectors[members[group[b]]]);
              if (c >= min_cosine) merger.unite(group[a], group[b]);
            }
          }
        }
      }
      auto [local, count] = merger.labels();
      builder.add_bucket(members, local, count);
    }
    return builder.finish();
  }
};

// ---------------------------------------------------------------------------
// msCRUSH analogue
// ---------------------------------------------------------------------------

class mscrush_tool final : public clustering_tool {
public:
  std::string_view name() const noexcept override { return "msCRUSH"; }

  cluster::flat_clustering run(const std::vector<ms::spectrum>& spectra,
                               double aggressiveness) const override {
    const auto vectors = vectorize_all(spectra);
    const auto buckets = precursor_buckets(spectra);
    const double final_threshold = 0.82 - 0.42 * aggressiveness;
    constexpr int k_iterations = 8;

    label_builder builder(spectra.size());
    for (const auto& members : buckets) {
      pair_merger merger(members.size());
      for (int iter = 0; iter < k_iterations; ++iter) {
        // Threshold anneals from strict to final across iterations.
        const double t = final_threshold +
                         (0.97 - final_threshold) *
                             (1.0 - static_cast<double>(iter) / (k_iterations - 1));
        std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> by_sig;
        for (std::uint32_t i = 0; i < members.size(); ++i) {
          const auto sig = lsh_signature(vectors[members[i]], 8,
                                         static_cast<std::uint32_t>(iter), 0xC4054, 0);
          by_sig[sig].push_back(i);
        }
        for (const auto& [sig, group] : by_sig) {
          // Greedy: compare each member to the group's first representative.
          for (std::size_t b = 1; b < group.size(); ++b) {
            if (merger.find(group[0]) == merger.find(group[b])) continue;
            const double c = cosine(vectors[members[group[0]]], vectors[members[group[b]]]);
            if (c >= t) merger.unite(group[0], group[b]);
          }
        }
      }
      auto [local, count] = merger.labels();
      builder.add_bucket(members, local, count);
    }
    return builder.finish();
  }
};

// ---------------------------------------------------------------------------
// GLEAMS analogue
// ---------------------------------------------------------------------------

class gleams_tool final : public clustering_tool {
public:
  std::string_view name() const noexcept override { return "GLEAMS"; }

  cluster::flat_clustering run(const std::vector<ms::spectrum>& spectra,
                               double aggressiveness) const override {
    const auto vectors = vectorize_all(spectra);
    const auto buckets = precursor_buckets(spectra);
    const double threshold = 0.10 + 1.00 * aggressiveness;  // euclidean in 32-d

    label_builder builder(spectra.size());
    for (const auto& members : buckets) {
      std::vector<std::vector<float>> embedded;
      embedded.reserve(members.size());
      for (const auto idx : members) {
        embedded.push_back(dense_embedding(vectors[idx], 32, 0x61EA45, 0));
      }
      hdc::distance_matrix_f32 matrix(members.size());
      for (std::size_t i = 1; i < members.size(); ++i) {
        for (std::size_t j = 0; j < i; ++j) {
          matrix.at(i, j) = static_cast<float>(euclidean(embedded[i], embedded[j]));
        }
      }
      const auto result = cluster::nn_chain_hac(matrix, cluster::linkage::complete);
      auto flat = result.tree.cut(threshold);
      builder.add_bucket(members, flat.labels, flat.cluster_count);
    }
    return builder.finish();
  }
};

// ---------------------------------------------------------------------------
// MaRaCluster analogue
// ---------------------------------------------------------------------------

class maracluster_tool final : public clustering_tool {
public:
  std::string_view name() const noexcept override { return "MaRaCluster"; }

  cluster::flat_clustering run(const std::vector<ms::spectrum>& spectra,
                               double aggressiveness) const override {
    const auto vectors = vectorize_all(spectra);

    // Fragment rarity: document frequency of each bin across the dataset.
    std::unordered_map<std::uint32_t, std::uint32_t> df;
    for (const auto& v : vectors) {
      for (const auto& [bin, w] : v.entries) ++df[bin];
    }
    const double n_docs = static_cast<double>(std::max<std::size_t>(1, vectors.size()));
    auto idf = [&](std::uint32_t bin) {
      return std::log(n_docs / static_cast<double>(df[bin]));
    };

    const auto buckets = precursor_buckets(spectra);
    // Rarity-score threshold; higher aggressiveness accepts weaker evidence.
    const double threshold = 0.75 - 0.55 * aggressiveness;

    label_builder builder(spectra.size());
    for (const auto& members : buckets) {
      hdc::distance_matrix_f32 matrix(members.size());
      for (std::size_t i = 1; i < members.size(); ++i) {
        for (std::size_t j = 0; j < i; ++j) {
          matrix.at(i, j) = static_cast<float>(
              1.0 - rarity_similarity(vectors[members[i]], vectors[members[j]], idf));
        }
      }
      const auto result = cluster::nn_chain_hac(matrix, cluster::linkage::complete);
      auto flat = result.tree.cut(threshold);
      builder.add_bucket(members, flat.labels, flat.cluster_count);
    }
    return builder.finish();
  }

private:
  template <typename IdfFn>
  static double rarity_similarity(const sparse_vector& a, const sparse_vector& b,
                                  IdfFn&& idf) {
    // Rarity-weighted cosine: shared rare fragments count for more (the
    // "fragment rarity metric" idea of MaRaCluster).
    double dot = 0.0;
    double norm_a = 0.0;
    double norm_b = 0.0;
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < a.entries.size() || j < b.entries.size()) {
      if (j >= b.entries.size() ||
          (i < a.entries.size() && a.entries[i].first < b.entries[j].first)) {
        const double w = a.entries[i].second * idf(a.entries[i].first);
        norm_a += w * w;
        ++i;
      } else if (i >= a.entries.size() || b.entries[j].first < a.entries[i].first) {
        const double w = b.entries[j].second * idf(b.entries[j].first);
        norm_b += w * w;
        ++j;
      } else {
        const double weight = idf(a.entries[i].first);
        const double wa = a.entries[i].second * weight;
        const double wb = b.entries[j].second * weight;
        dot += wa * wb;
        norm_a += wa * wa;
        norm_b += wb * wb;
        ++i;
        ++j;
      }
    }
    if (norm_a <= 0.0 || norm_b <= 0.0) return 0.0;
    return dot / std::sqrt(norm_a * norm_b);
  }
};

// ---------------------------------------------------------------------------
// MSCluster / spectra-cluster analogue
// ---------------------------------------------------------------------------

class mscluster_tool final : public clustering_tool {
public:
  /// `conservative` selects the spectra-cluster flavour: more cascade
  /// rounds, stricter start, lower aggressiveness gain.
  explicit mscluster_tool(bool conservative) : conservative_(conservative) {}

  std::string_view name() const noexcept override {
    return conservative_ ? "spectra-cluster" : "MSCluster";
  }

  cluster::flat_clustering run(const std::vector<ms::spectrum>& spectra,
                               double aggressiveness) const override {
    const auto vectors = vectorize_all(spectra);
    const auto buckets = precursor_buckets(spectra);
    const double final_threshold = conservative_ ? 0.85 - 0.35 * aggressiveness
                                                 : 0.80 - 0.40 * aggressiveness;
    const int k_rounds = conservative_ ? 5 : 3;

    label_builder builder(spectra.size());
    for (const auto& members : buckets) {
      // Round 0: greedy assignment at the strictest threshold — each
      // spectrum joins the most similar existing centroid or founds a new
      // cluster. Later rounds relax the threshold and merge whole clusters
      // by centroid similarity (the MSCluster cascade).
      std::vector<std::int32_t> local(members.size(), -1);
      std::vector<sparse_vector> centroids;
      std::vector<std::uint32_t> centroid_sizes;

      const double t0 = conservative_ ? 0.97 : 0.95;
      for (std::uint32_t i = 0; i < members.size(); ++i) {
        double best = t0;
        std::int32_t best_cluster = -1;
        for (std::size_t c = 0; c < centroids.size(); ++c) {
          const double sim = cosine(vectors[members[i]], centroids[c]);
          if (sim >= best) {
            best = sim;
            best_cluster = static_cast<std::int32_t>(c);
          }
        }
        if (best_cluster >= 0) {
          local[i] = best_cluster;
          auto& size = centroid_sizes[static_cast<std::size_t>(best_cluster)];
          merge_into(centroids[static_cast<std::size_t>(best_cluster)], size,
                     vectors[members[i]]);
          ++size;
        } else {
          local[i] = static_cast<std::int32_t>(centroids.size());
          centroids.push_back(vectors[members[i]]);
          centroid_sizes.push_back(1);
        }
      }

      // Rounds 1..k: merge clusters whose centroids exceed the (annealing)
      // threshold; redirect[] maps dead clusters to their survivors.
      std::vector<std::int32_t> redirect(centroids.size());
      for (std::size_t c = 0; c < redirect.size(); ++c) {
        redirect[c] = static_cast<std::int32_t>(c);
      }
      for (int round = 1; round < k_rounds; ++round) {
        const double t = final_threshold +
                         (t0 - final_threshold) *
                             (1.0 - static_cast<double>(round) / (k_rounds - 1));
        for (std::size_t a = 0; a < centroids.size(); ++a) {
          if (redirect[a] != static_cast<std::int32_t>(a)) continue;  // dead
          for (std::size_t b = a + 1; b < centroids.size(); ++b) {
            if (redirect[b] != static_cast<std::int32_t>(b)) continue;
            if (cosine(centroids[a], centroids[b]) >= t) {
              // Fold b into a.
              auto& size = centroid_sizes[a];
              merge_into(centroids[a], size, centroids[b]);
              size += centroid_sizes[b];
              redirect[b] = static_cast<std::int32_t>(a);
            }
          }
        }
      }
      // Resolve redirect chains and compact labels.
      auto resolve = [&](std::int32_t c) {
        while (redirect[static_cast<std::size_t>(c)] != c) {
          c = redirect[static_cast<std::size_t>(c)];
        }
        return c;
      };
      std::unordered_map<std::int32_t, std::int32_t> compact;
      std::int32_t next = 0;
      for (auto& l : local) {
        const auto root = resolve(l);
        auto [it, inserted] = compact.try_emplace(root, next);
        if (inserted) ++next;
        l = it->second;
      }
      builder.add_bucket(members, local, static_cast<std::size_t>(next));
    }
    return builder.finish();
  }

private:
  bool conservative_;

  static void merge_into(sparse_vector& centroid, std::uint32_t current_size,
                         const sparse_vector& addition) {
    // Weighted average of unit vectors, re-normalised.
    std::vector<std::pair<std::uint32_t, float>> merged;
    merged.reserve(centroid.entries.size() + addition.entries.size());
    const float wc = static_cast<float>(current_size);
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < centroid.entries.size() || j < addition.entries.size()) {
      if (j >= addition.entries.size() ||
          (i < centroid.entries.size() &&
           centroid.entries[i].first < addition.entries[j].first)) {
        merged.emplace_back(centroid.entries[i].first, centroid.entries[i].second * wc);
        ++i;
      } else if (i >= centroid.entries.size() ||
                 addition.entries[j].first < centroid.entries[i].first) {
        merged.emplace_back(addition.entries[j].first, addition.entries[j].second);
        ++j;
      } else {
        merged.emplace_back(centroid.entries[i].first,
                            centroid.entries[i].second * wc + addition.entries[j].second);
        ++i;
        ++j;
      }
    }
    double norm_sq = 0.0;
    for (const auto& [bin, w] : merged) norm_sq += static_cast<double>(w) * w;
    if (norm_sq > 0.0) {
      const auto inv = static_cast<float>(1.0 / std::sqrt(norm_sq));
      for (auto& [bin, w] : merged) w *= inv;
    }
    centroid.entries = std::move(merged);
  }
};

}  // namespace

std::unique_ptr<clustering_tool> make_hyperspec(bool hac) {
  return std::make_unique<hyperspec_tool>(hac);
}
std::unique_ptr<clustering_tool> make_falcon() { return std::make_unique<falcon_tool>(); }
std::unique_ptr<clustering_tool> make_mscrush() { return std::make_unique<mscrush_tool>(); }
std::unique_ptr<clustering_tool> make_gleams() { return std::make_unique<gleams_tool>(); }
std::unique_ptr<clustering_tool> make_maracluster() {
  return std::make_unique<maracluster_tool>();
}
std::unique_ptr<clustering_tool> make_mscluster() {
  return std::make_unique<mscluster_tool>(false);
}

std::unique_ptr<clustering_tool> make_spectra_cluster() {
  return std::make_unique<mscluster_tool>(true);
}

std::vector<std::unique_ptr<clustering_tool>> make_all_baselines() {
  std::vector<std::unique_ptr<clustering_tool>> tools;
  tools.push_back(make_hyperspec(true));
  tools.push_back(make_hyperspec(false));
  tools.push_back(make_falcon());
  tools.push_back(make_mscrush());
  tools.push_back(make_gleams());
  tools.push_back(make_maracluster());
  tools.push_back(make_mscluster());
  tools.push_back(make_spectra_cluster());
  return tools;
}

}  // namespace spechd::baselines
