// Shared spectrum vectorisation helpers for the baseline tools.
//
// Most comparison tools (falcon, msCRUSH, GLEAMS front end) operate on a
// sparse binned fragment vector rather than hypervectors; this header
// provides that representation plus cosine similarity and seeded random
// projections (LSH hyperplanes, GLEAMS-like dense embeddings).
#pragma once

#include <cstdint>
#include <vector>

#include "ms/spectrum.hpp"
#include "util/rng.hpp"

namespace spechd::baselines {

/// Sparse binned vector: sorted (bin, weight) pairs with unit L2 norm.
struct sparse_vector {
  std::vector<std::pair<std::uint32_t, float>> entries;  ///< sorted by bin
};

struct vectorize_config {
  double mz_min = 101.0;
  double mz_max = 1905.0;
  double bin_width = 0.5;  ///< fragment bin size (falcon default ~0.05-1)
  bool sqrt_intensity = true;
};

sparse_vector vectorize(const ms::spectrum& s, const vectorize_config& config);

/// Cosine similarity of two unit sparse vectors (merge join).
double cosine(const sparse_vector& a, const sparse_vector& b) noexcept;

/// Signed random-hyperplane LSH signature of `bits` bits.
std::uint64_t lsh_signature(const sparse_vector& v, std::size_t bits, std::uint32_t table_id,
                            std::uint64_t seed, std::uint32_t total_bins);

/// Dense seeded Gaussian random projection to `dim` floats, unit-normalised
/// (the GLEAMS-like embedding substitute).
std::vector<float> dense_embedding(const sparse_vector& v, std::size_t dim,
                                   std::uint64_t seed, std::uint32_t total_bins);

/// Euclidean distance between dense embeddings.
double euclidean(const std::vector<float>& a, const std::vector<float>& b) noexcept;

}  // namespace spechd::baselines
