#include "obs/flight.hpp"

#include <fcntl.h>
#include <signal.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace spechd::obs {

namespace {

std::uint64_t steady_now_ns() noexcept {
  // clock_gettime is async-signal-safe (vDSO on Linux) — both the record
  // path and the crash writer rely on that.
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

std::uint64_t wall_now_ns() noexcept {
  timespec ts{};
  clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

std::uint32_t cached_tid() noexcept {
  thread_local const std::uint32_t tid = static_cast<std::uint32_t>(::gettid());
  return tid;
}

}  // namespace

const char* event_kind_name(event_kind kind) noexcept {
  switch (kind) {
    case event_kind::none: return "none";
    case event_kind::ingest_batch: return "ingest_batch";
    case event_kind::view_publish: return "view_publish";
    case event_kind::journal_append: return "journal_append";
    case event_kind::journal_fsync: return "journal_fsync";
    case event_kind::health_transition: return "health_transition";
    case event_kind::shed_decision: return "shed_decision";
    case event_kind::maintenance_action: return "maintenance_action";
    case event_kind::heal_action: return "heal_action";
    case event_kind::conn_open: return "conn_open";
    case event_kind::conn_close: return "conn_close";
    case event_kind::conn_reap: return "conn_reap";
    case event_kind::watchdog_stall: return "watchdog_stall";
    case event_kind::watchdog_recover: return "watchdog_recover";
    case event_kind::crash: return "crash";
    case event_kind::recovery_progress: return "recovery_progress";
  }
  return "unknown";
}

// --- recorder ----------------------------------------------------------------

flight_recorder& flight_recorder::instance() noexcept {
  // Leaked on purpose (see header).
  static flight_recorder* self = new flight_recorder();
  return *self;
}

flight_recorder::flight_recorder() {
  wall_offset_ns_ = wall_now_ns() - steady_now_ns();
}

void flight_recorder::record(event_kind kind, std::uint64_t arg0,
                             std::uint64_t arg1,
                             std::uint64_t request_id) noexcept {
  if (!armed()) return;
  // Round-robin thread→shard assignment, same scheme as histogram shards:
  // truly per-thread up to k_shards concurrent recorders, striped beyond.
  static std::atomic<std::size_t> next_slot{0};
  thread_local const std::size_t slot =
      next_slot.fetch_add(1, std::memory_order_relaxed) % k_shards;
  auto& sh = shards_[slot];
  const std::uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::uint64_t idx = sh.next.fetch_add(1, std::memory_order_relaxed);
  flight_event& e = sh.ring[idx % k_shard_events];
  const std::uint64_t steady = steady_now_ns();
  e.seq = seq;
  e.steady_ns = steady;
  e.wall_ns = steady + wall_offset_ns_;
  e.request_id = request_id;
  e.arg0 = arg0;
  e.arg1 = arg1;
  e.thread_id = cached_tid();
  e.kind = static_cast<std::uint8_t>(kind);
}

std::vector<flight_event> flight_recorder::snapshot() const {
  std::vector<flight_event> out;
  out.reserve(k_capacity);
  for (const auto& sh : shards_) {
    const std::uint64_t written =
        std::min<std::uint64_t>(sh.next.load(std::memory_order_relaxed),
                                k_shard_events);
    for (std::uint64_t i = 0; i < written; ++i) {
      const flight_event e = sh.ring[i];  // racy POD copy; validated below
      if (e.seq == 0 || e.kind == 0 || e.kind > k_event_kind_max) continue;
      out.push_back(e);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const flight_event& a, const flight_event& b) { return a.seq < b.seq; });
  return out;
}

void flight_recorder::reset() noexcept {
  for (auto& sh : shards_) {
    sh.next.store(0, std::memory_order_relaxed);
    for (auto& e : sh.ring) e = flight_event{};
  }
  seq_.store(0, std::memory_order_relaxed);
}

// --- per-shard status table --------------------------------------------------

namespace {
shard_status g_shard_status[k_max_status_shards];
std::atomic<std::size_t> g_shard_status_count{0};
}  // namespace

void set_status_shard_count(std::size_t count) noexcept {
  count = std::min(count, k_max_status_shards);
  for (std::size_t i = 0; i < count; ++i) {
    auto& s = g_shard_status[i];
    s.health.store(0, std::memory_order_relaxed);
    s.generation.store(0, std::memory_order_relaxed);
    s.journal_bytes.store(0, std::memory_order_relaxed);
    s.journal_records.store(0, std::memory_order_relaxed);
    s.queue_depth.store(0, std::memory_order_relaxed);
  }
  g_shard_status_count.store(count, std::memory_order_relaxed);
}

std::size_t status_shard_count() noexcept {
  return g_shard_status_count.load(std::memory_order_relaxed);
}

shard_status& status_shard(std::size_t index) noexcept {
  return g_shard_status[std::min(index, k_max_status_shards - 1)];
}

// --- crash writer ------------------------------------------------------------

namespace {

constexpr char k_crash_magic[4] = {'S', 'P', 'H', 'C'};
constexpr std::uint32_t k_crash_version = 1;
constexpr std::size_t k_max_crash_metrics = 256;
constexpr std::size_t k_crash_name_cap = 128;

// Everything the fatal path reads, prepared in normal context.
registry::crash_ref g_crash_refs[k_max_crash_metrics];
std::atomic<std::size_t> g_crash_ref_count{0};
std::atomic<int> g_crash_fd{-1};
std::atomic<int> g_crash_in_progress{0};
std::atomic<bool> g_handlers_installed{false};
std::terminate_handler g_prev_terminate = nullptr;

// Static serialisation buffer: bounded above by ring capacity × 53 B per
// event (~217 KiB) + metrics (≤256 × ≤138 B) + shard table + header.
// One fixed BSS block, no allocation on the fatal path.
constexpr std::size_t k_crash_buf_cap = 384 * 1024;
char g_crash_buf[k_crash_buf_cap];
std::atomic_flag g_crash_buf_lock = ATOMIC_FLAG_INIT;

struct crash_cursor {
  char* p = g_crash_buf;

  std::size_t size() const noexcept {
    return static_cast<std::size_t>(p - g_crash_buf);
  }
  bool fits(std::size_t n) const noexcept { return size() + n <= k_crash_buf_cap; }

  template <typename T>
  void put(T v) noexcept {
    std::memcpy(p, &v, sizeof(T));
    p += sizeof(T);
  }
  void put_bytes(const void* data, std::size_t n) noexcept {
    std::memcpy(p, data, n);
    p += n;
  }
};

void put_event(crash_cursor& out, const flight_event& e) noexcept {
  out.put<std::uint64_t>(e.seq);
  out.put<std::uint64_t>(e.steady_ns);
  out.put<std::uint64_t>(e.wall_ns);
  out.put<std::uint64_t>(e.request_id);
  out.put<std::uint64_t>(e.arg0);
  out.put<std::uint64_t>(e.arg1);
  out.put<std::uint32_t>(e.thread_id);
  out.put<std::uint8_t>(e.kind);
}
constexpr std::size_t k_event_wire_bytes = 6 * 8 + 4 + 1;

// async-signal-safe strlen with a cap (names are NUL-terminated immortal
// strings, but a torn ref table entry must not run away).
std::size_t bounded_len(const char* s) noexcept {
  std::size_t n = 0;
  while (n < k_crash_name_cap && s[n] != '\0') ++n;
  return n;
}

/// Serialises the dump into g_crash_buf. Signal-safe: relaxed atomic
/// loads, POD copies, memcpy — nothing else. Returns the byte count.
std::size_t build_crash_dump(int signo) noexcept {
  crash_cursor out;
  out.put_bytes(k_crash_magic, 4);
  out.put<std::uint32_t>(k_crash_version);
  out.put<std::int32_t>(signo);
  out.put<std::uint32_t>(static_cast<std::uint32_t>(::getpid()));
  out.put<std::uint64_t>(wall_now_ns());
  out.put<std::uint64_t>(steady_now_ns());

  // Metrics: three sections (counters, gauges, histograms), each
  // u32 count then (u16 name_len, name, values...). Counts are computed
  // by kind from the harvested ref table.
  const std::size_t refs = g_crash_ref_count.load(std::memory_order_acquire);
  std::uint32_t n_counters = 0;
  std::uint32_t n_gauges = 0;
  std::uint32_t n_hists = 0;
  for (std::size_t i = 0; i < refs; ++i) {
    if (g_crash_refs[i].counter != nullptr) ++n_counters;
    if (g_crash_refs[i].gauge != nullptr) ++n_gauges;
    if (g_crash_refs[i].histogram != nullptr) ++n_hists;
  }
  auto put_name = [&out](const char* name) noexcept {
    const std::size_t len = bounded_len(name);
    out.put<std::uint16_t>(static_cast<std::uint16_t>(len));
    out.put_bytes(name, len);
  };
  out.put<std::uint32_t>(n_counters);
  for (std::size_t i = 0; i < refs; ++i) {
    if (g_crash_refs[i].counter == nullptr) continue;
    put_name(g_crash_refs[i].name);
    out.put<std::uint64_t>(g_crash_refs[i].counter->value());
  }
  out.put<std::uint32_t>(n_gauges);
  for (std::size_t i = 0; i < refs; ++i) {
    if (g_crash_refs[i].gauge == nullptr) continue;
    put_name(g_crash_refs[i].name);
    out.put<std::int64_t>(g_crash_refs[i].gauge->value());
  }
  out.put<std::uint32_t>(n_hists);
  for (std::size_t i = 0; i < refs; ++i) {
    if (g_crash_refs[i].histogram == nullptr) continue;
    put_name(g_crash_refs[i].name);
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    g_crash_refs[i].histogram->totals(count, sum);
    out.put<std::uint64_t>(count);
    out.put<std::uint64_t>(sum);
  }

  // Per-shard status table.
  const std::size_t shard_count = status_shard_count();
  out.put<std::uint32_t>(static_cast<std::uint32_t>(shard_count));
  for (std::size_t i = 0; i < shard_count; ++i) {
    const auto& s = g_shard_status[i];
    out.put<std::uint32_t>(s.health.load(std::memory_order_relaxed));
    out.put<std::uint64_t>(s.generation.load(std::memory_order_relaxed));
    out.put<std::uint64_t>(s.journal_bytes.load(std::memory_order_relaxed));
    out.put<std::uint64_t>(s.journal_records.load(std::memory_order_relaxed));
    out.put<std::uint64_t>(s.queue_depth.load(std::memory_order_relaxed));
  }

  // Flight events: ring order (the parser sorts by seq); torn/empty slots
  // skipped, exactly like snapshot().
  const auto& rec = flight_recorder::instance();
  char* const count_pos = out.p;  // backpatched once the real count is known
  out.put<std::uint32_t>(0);
  std::uint32_t n_events = 0;
  const auto* shards = rec.shards();
  for (std::size_t s = 0; s < flight_recorder::k_shards; ++s) {
    const std::uint64_t written = std::min<std::uint64_t>(
        shards[s].next.load(std::memory_order_relaxed),
        flight_recorder::k_shard_events);
    for (std::uint64_t i = 0; i < written; ++i) {
      const flight_event e = shards[s].ring[i];
      if (e.seq == 0 || e.kind == 0 || e.kind > k_event_kind_max) continue;
      if (!out.fits(k_event_wire_bytes)) break;
      put_event(out, e);
      ++n_events;
    }
  }
  std::memcpy(count_pos, &n_events, sizeof(n_events));
  return out.size();
}

void write_dump_to_fd(int fd, int signo) noexcept {
  const std::size_t bytes = build_crash_dump(signo);
  std::size_t off = 0;
  while (off < bytes) {
    const ssize_t n = ::write(fd, g_crash_buf + off, bytes - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // nothing left to do on a dying write path
    }
    off += static_cast<std::size_t>(n);
  }
  ::fsync(fd);
}

extern "C" void crash_signal_handler(int sig) {
  // Second fatal entry (handler itself crashed, or terminate already
  // dumped): fall straight through to the default disposition.
  if (g_crash_in_progress.exchange(1, std::memory_order_acq_rel) == 0) {
    record_event(event_kind::crash, static_cast<std::uint64_t>(sig));
    const int fd = g_crash_fd.load(std::memory_order_acquire);
    if (fd >= 0) write_dump_to_fd(fd, sig);
  }
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

[[noreturn]] void crash_terminate_handler() {
  if (g_crash_in_progress.exchange(1, std::memory_order_acq_rel) == 0) {
    record_event(event_kind::crash, 0);
    const int fd = g_crash_fd.load(std::memory_order_acquire);
    if (fd >= 0) write_dump_to_fd(fd, 0);
  }
  // abort() raises SIGABRT; the in-progress flag makes our SIGABRT
  // handler skip the (already written) dump and take the default exit.
  std::abort();
}

}  // namespace

void refresh_crash_metrics() noexcept {
  const std::size_t n =
      registry::instance().export_crash_refs(g_crash_refs, k_max_crash_metrics);
  g_crash_ref_count.store(n, std::memory_order_release);
}

bool install_crash_handler(const std::string& path) {
  const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  const int old = g_crash_fd.exchange(fd, std::memory_order_acq_rel);
  if (old >= 0) ::close(old);
  refresh_crash_metrics();
  g_crash_in_progress.store(0, std::memory_order_release);

  if (!g_handlers_installed.exchange(true, std::memory_order_acq_rel)) {
    struct sigaction sa{};
    sa.sa_handler = crash_signal_handler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    ::sigaction(SIGSEGV, &sa, nullptr);
    ::sigaction(SIGBUS, &sa, nullptr);
    ::sigaction(SIGABRT, &sa, nullptr);
    g_prev_terminate = std::set_terminate(crash_terminate_handler);
  }
  return true;
}

bool write_crash_dump_now(const std::string& path) {
  const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  refresh_crash_metrics();
  while (g_crash_buf_lock.test_and_set(std::memory_order_acquire)) {}
  write_dump_to_fd(fd, 0);
  g_crash_buf_lock.clear(std::memory_order_release);
  return ::close(fd) == 0;
}

// --- parser ------------------------------------------------------------------

namespace {

struct parse_cursor {
  const char* data;
  std::size_t size;
  std::size_t pos = 0;

  template <typename T>
  bool read(T& v) noexcept {
    if (size - pos < sizeof(T)) return false;
    std::memcpy(&v, data + pos, sizeof(T));
    pos += sizeof(T);
    return true;
  }
  bool read_name(std::string& out) {
    std::uint16_t len = 0;
    if (!read(len)) return false;
    if (size - pos < len) return false;
    out.assign(data + pos, len);
    pos += len;
    return true;
  }
};

}  // namespace

bool parse_crash_dump(const std::string& bytes, crash_dump& out) {
  parse_cursor in{bytes.data(), bytes.size()};
  char magic[4];
  if (in.size - in.pos < 4) return false;
  std::memcpy(magic, in.data, 4);
  in.pos = 4;
  if (std::memcmp(magic, k_crash_magic, 4) != 0) return false;
  if (!in.read(out.version) || out.version != k_crash_version) return false;
  if (!in.read(out.signo) || !in.read(out.pid)) return false;
  if (!in.read(out.wall_ns) || !in.read(out.steady_ns)) return false;

  std::uint32_t n = 0;
  if (!in.read(n)) return false;
  if (n > (in.size - in.pos) / (2 + 8)) return false;  // hostile count guard
  out.counters.resize(n);
  for (auto& c : out.counters) {
    if (!in.read_name(c.name) || !in.read(c.value)) return false;
  }
  if (!in.read(n)) return false;
  if (n > (in.size - in.pos) / (2 + 8)) return false;
  out.gauges.resize(n);
  for (auto& g : out.gauges) {
    if (!in.read_name(g.name) || !in.read(g.value)) return false;
  }
  if (!in.read(n)) return false;
  if (n > (in.size - in.pos) / (2 + 16)) return false;
  out.histograms.resize(n);
  for (auto& h : out.histograms) {
    if (!in.read_name(h.name) || !in.read(h.count) || !in.read(h.sum)) return false;
  }
  if (!in.read(n)) return false;
  if (n > (in.size - in.pos) / (4 + 4 * 8)) return false;
  out.shards.resize(n);
  for (auto& s : out.shards) {
    if (!in.read(s.health) || !in.read(s.generation) || !in.read(s.journal_bytes) ||
        !in.read(s.journal_records) || !in.read(s.queue_depth)) {
      return false;
    }
  }
  if (!in.read(n)) return false;
  if (n > (in.size - in.pos) / k_event_wire_bytes) return false;
  out.events.resize(n);
  for (auto& e : out.events) {
    if (!in.read(e.seq) || !in.read(e.steady_ns) || !in.read(e.wall_ns) ||
        !in.read(e.request_id) || !in.read(e.arg0) || !in.read(e.arg1) ||
        !in.read(e.thread_id) || !in.read(e.kind)) {
      return false;
    }
    if (e.kind == 0 || e.kind > k_event_kind_max) return false;
  }
  if (in.pos != in.size) return false;
  std::sort(out.events.begin(), out.events.end(),
            [](const flight_event& a, const flight_event& b) { return a.seq < b.seq; });
  return true;
}

bool read_crash_dump_file(const std::string& path, crash_dump& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw spechd::io_error("cannot open crash dump: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) throw spechd::io_error("cannot read crash dump: " + path);
  return parse_crash_dump(buffer.str(), out);
}

}  // namespace spechd::obs
