#include "obs/trace.hpp"

namespace spechd::obs {

namespace {

thread_local request_trace* t_active_trace = nullptr;

}  // namespace

const char* stage_name(stage s) noexcept {
  switch (s) {
    case stage::net_parse: return "net_parse";
    case stage::admission: return "admission";
    case stage::enqueue: return "enqueue";
    case stage::queue_wait: return "queue_wait";
    case stage::journal_append: return "journal_append";
    case stage::journal_fsync: return "journal_fsync";
    case stage::shard_apply: return "shard_apply";
    case stage::view_publish: return "view_publish";
    case stage::route: return "route";
    case stage::bucket_probe: return "bucket_probe";
    case stage::select: return "select";
    case stage::k_select: return "k_select";
    case stage::merge: return "merge";
  }
  return "?";
}

request_trace* active_trace() noexcept { return t_active_trace; }

trace_scope::trace_scope(request_trace& trace) noexcept
    : previous_(t_active_trace) {
  t_active_trace = &trace;
}

trace_scope::~trace_scope() { t_active_trace = previous_; }

slow_ring& slow_ring::instance() {
  static slow_ring* self = new slow_ring();
  return *self;
}

void slow_ring::offer(const char* kind, std::uint64_t total_ns,
                      const request_trace& trace) {
  const auto seq = seq_.fetch_add(1, std::memory_order_relaxed);
  const auto sample_every = sample_every_.load(std::memory_order_relaxed);
  const bool sampled = sample_every != 0 && seq % sample_every == 0;
  if (!sampled && total_ns < threshold_ns_.load(std::memory_order_relaxed)) return;

  slow_request entry;
  entry.kind = kind;
  entry.seq = seq;
  entry.total_ns = total_ns;
  entry.stages.assign(trace.begin(), trace.end());

  std::lock_guard lock(mutex_);
  if (ring_.size() < k_capacity) {
    ring_.push_back(std::move(entry));
    return;
  }
  ring_[next_] = std::move(entry);
  next_ = (next_ + 1) % k_capacity;
}

std::vector<slow_request> slow_ring::dump() const {
  std::lock_guard lock(mutex_);
  std::vector<slow_request> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

void slow_ring::clear() {
  std::lock_guard lock(mutex_);
  ring_.clear();
  next_ = 0;
  seq_.store(0, std::memory_order_relaxed);
}

}  // namespace spechd::obs
