// Request-stage tracing: RAII spans that time one pipeline stage into a
// registry histogram, an ambient per-request trace that collects the
// stage breakdown, and a fixed-size slow-request ring the breakdowns of
// outlier requests land in.
//
// Stage map (every instrumented span in the serving pipeline):
//
//   ingest:  net_parse → admission → enqueue ─(writer thread)→ queue_wait
//            → journal_append [→ journal_fsync] → shard_apply → view_publish
//   query:   route → bucket_probe → select
//   search:  route → bucket_probe → k_select → merge
//   journal: journal_append → journal_fsync (group commit)
//
// Threading model: a trace_scope on the request thread (the network event
// loop) makes a request_trace ambient via a thread-local; every trace_span
// that finishes on that thread appends its (stage, ns) to it. Stages that
// run on shard writer threads (queue_wait, journal_*, shard_apply,
// view_publish) record into their histograms only — the request thread has
// already moved on, which is exactly the asynchrony the queue_wait
// histogram exists to expose.
//
// Disarming (obs::set_armed(false)) turns every span into a no-op — no
// clock reads — leaving only plain counters live; the bench's
// `observability` section measures the armed-vs-disarmed throughput delta
// (bar: armed ≥ 0.97× disarmed).
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace spechd::obs {

enum class stage : std::uint8_t {
  net_parse = 0,
  admission,
  enqueue,
  queue_wait,
  journal_append,
  journal_fsync,
  shard_apply,
  view_publish,
  route,
  bucket_probe,
  select,
  k_select,
  merge,
};

/// Highest valid stage value (wire parsers validate against this).
inline constexpr std::uint8_t k_stage_max = static_cast<std::uint8_t>(stage::merge);

const char* stage_name(stage s) noexcept;

struct stage_sample {
  stage st{};
  std::uint64_t ns = 0;
  friend bool operator==(const stage_sample&, const stage_sample&) = default;
};

/// Per-request stage collection (stack-allocated by the request thread;
/// fixed capacity, extra stages are dropped counted).
class request_trace {
public:
  static constexpr std::size_t k_capacity = 12;

  void add(stage st, std::uint64_t ns) noexcept {
    if (size_ < k_capacity) {
      stages_[size_++] = {st, ns};
    } else {
      ++dropped_;
    }
  }

  const stage_sample* begin() const noexcept { return stages_; }
  const stage_sample* end() const noexcept { return stages_ + size_; }
  std::size_t size() const noexcept { return size_; }
  std::size_t dropped() const noexcept { return dropped_; }

private:
  stage_sample stages_[k_capacity]{};
  std::size_t size_ = 0;
  std::size_t dropped_ = 0;
};

/// The calling thread's ambient trace (nullptr outside a trace_scope).
request_trace* active_trace() noexcept;

/// Makes `trace` ambient for the calling thread; restores the previous
/// ambient trace (nesting-safe) on destruction.
class trace_scope {
public:
  explicit trace_scope(request_trace& trace) noexcept;
  ~trace_scope();
  trace_scope(const trace_scope&) = delete;
  trace_scope& operator=(const trace_scope&) = delete;

private:
  request_trace* previous_;
};

/// Times one stage into `hist` (and the ambient trace, when one is
/// active). Armed cost: two steady_clock reads + one histogram record;
/// disarmed cost: one relaxed load.
class trace_span {
public:
  trace_span(histogram& hist, stage st) noexcept
      : hist_(armed() ? &hist : nullptr), stage_(st) {
    if (hist_) start_ = std::chrono::steady_clock::now();
  }

  ~trace_span() { finish(); }

  trace_span(const trace_span&) = delete;
  trace_span& operator=(const trace_span&) = delete;

  /// Records now (idempotent); returns the elapsed ns (0 when disarmed).
  std::uint64_t finish() noexcept {
    if (!hist_) return 0;
    const auto ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
    hist_->record(ns);
    if (auto* trace = active_trace()) trace->add(stage_, ns);
    hist_ = nullptr;
    return ns;
  }

private:
  histogram* hist_;
  stage stage_;
  std::chrono::steady_clock::time_point start_{};
};

// --- slow-request ring -------------------------------------------------------

/// One captured outlier: the request kind ("ingest"/"query"/...), its
/// end-to-end time, and the stage breakdown the request thread observed.
struct slow_request {
  std::string kind;
  std::uint64_t seq = 0;  ///< monotone request sequence number
  std::uint64_t total_ns = 0;
  std::vector<stage_sample> stages;
  friend bool operator==(const slow_request&, const slow_request&) = default;
};

/// Fixed-size ring of slow_request entries. A request is captured when its
/// total time crosses `threshold_ns`, or unconditionally every
/// `sample_every`-th offer (0 = threshold only) — the sampling knob keeps
/// a trickle of healthy-request breakdowns next to the outliers. offer()'s
/// fast path (below threshold, not sampled) is one relaxed fetch_add and
/// two relaxed loads; capture takes a mutex (outliers are rare by
/// definition).
class slow_ring {
public:
  static slow_ring& instance();

  static constexpr std::size_t k_capacity = 128;

  void configure(std::uint64_t threshold_ns, std::uint64_t sample_every) noexcept {
    threshold_ns_.store(threshold_ns, std::memory_order_relaxed);
    sample_every_.store(sample_every, std::memory_order_relaxed);
  }
  std::uint64_t threshold_ns() const noexcept {
    return threshold_ns_.load(std::memory_order_relaxed);
  }

  void offer(const char* kind, std::uint64_t total_ns, const request_trace& trace);

  /// Captured entries, oldest first; newest k_capacity survive.
  std::vector<slow_request> dump() const;

  void clear();

private:
  slow_ring() = default;

  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::uint64_t> threshold_ns_{10'000'000};  ///< 10 ms default
  std::atomic<std::uint64_t> sample_every_{0};
  mutable std::mutex mutex_;
  std::vector<slow_request> ring_;  ///< ring_[next_] is the oldest once full
  std::size_t next_ = 0;
};

}  // namespace spechd::obs
