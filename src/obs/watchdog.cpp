#include "obs/watchdog.hpp"

#include <time.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace spechd::obs {

namespace {

std::uint64_t steady_now_ns() noexcept {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

}  // namespace

void watchdog::handle::pulse() noexcept {
  if (slot_ == nullptr) return;
  static_cast<watchdog::slot*>(slot_)->last_beat_ns.store(
      steady_now_ns(), std::memory_order_relaxed);
}

void watchdog::handle::retire() noexcept {
  if (slot_ == nullptr) return;
  auto* s = static_cast<watchdog::slot*>(slot_);
  s->stalled.store(0, std::memory_order_relaxed);
  s->state.store(0, std::memory_order_release);
  slot_ = nullptr;
}

watchdog& watchdog::instance() noexcept {
  // Leaked on purpose: handles held by static-lifetime components must
  // outlive every destructor.
  static watchdog* self = new watchdog();
  return *self;
}

watchdog::handle watchdog::register_component(std::string_view name) noexcept {
  for (auto& s : slots_) {
    std::uint8_t expected = 0;
    if (!s.state.compare_exchange_strong(expected, 2, std::memory_order_acq_rel)) {
      continue;  // slot taken (state 1) or mid-registration (state 2)
    }
    const std::size_t n = std::min(name.size(), k_name_cap);
    std::memcpy(s.name, name.data(), n);
    s.name[n] = '\0';
    s.stalled.store(0, std::memory_order_relaxed);
    s.stall_start_ns.store(0, std::memory_order_relaxed);
    s.last_beat_ns.store(steady_now_ns(), std::memory_order_relaxed);
    s.state.store(1, std::memory_order_release);  // visible to the sweeper
    return handle(&s);
  }
  log_warn() << "watchdog: component table full, '" << name
                   << "' will not be monitored";
  return handle();
}

void watchdog::start(const config& cfg) {
  stop();
  {
    std::lock_guard lock(mutex_);
    config_ = cfg;
    if (config_.poll.count() == 0) {
      config_.poll = std::clamp(config_.deadline / 4,
                                std::chrono::milliseconds(10),
                                std::chrono::milliseconds(250));
    }
    stop_requested_ = false;
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { loop(); });
}

void watchdog::stop() {
  {
    std::lock_guard lock(mutex_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
}

std::size_t watchdog::check_now() {
  static auto& stalled_gauge =
      registry::instance().gauge("spechd_watchdog_stalled_components");
  static auto& stalls_total =
      registry::instance().counter("spechd_watchdog_stalls_total");

  const std::uint64_t now = steady_now_ns();
  const std::uint64_t deadline_ns =
      static_cast<std::uint64_t>(config_.deadline.count()) * 1'000'000ULL;
  const std::uint64_t kill_ns =
      static_cast<std::uint64_t>(config_.kill_after.count()) * 1'000'000ULL;
  std::size_t stalled_now = 0;
  for (std::size_t i = 0; i < k_max_components; ++i) {
    auto& s = slots_[i];
    if (s.state.load(std::memory_order_acquire) != 1) continue;
    const std::uint64_t last = s.last_beat_ns.load(std::memory_order_relaxed);
    const std::uint64_t silent = now > last ? now - last : 0;
    const bool was_stalled = s.stalled.load(std::memory_order_relaxed) != 0;
    if (silent > deadline_ns) {
      ++stalled_now;
      if (!was_stalled) {
        s.stalled.store(1, std::memory_order_relaxed);
        s.stall_start_ns.store(now, std::memory_order_relaxed);
        stalls_total.add(1);
        record_event(event_kind::watchdog_stall, i, silent / 1'000'000ULL);
        log_warn() << "watchdog: component '" << s.name << "' stalled ("
                         << silent / 1'000'000ULL << " ms silent, deadline "
                         << config_.deadline.count() << " ms)";
      } else if (kill_ns != 0) {
        const std::uint64_t since_stall =
            now - s.stall_start_ns.load(std::memory_order_relaxed);
        if (since_stall > kill_ns) {
          log_error() << "watchdog: component '" << s.name
                            << "' stalled past kill-after grace ("
                            << since_stall / 1'000'000ULL
                            << " ms), aborting for supervised restart";
          // Routes through the crash handler when installed: the .sphcrash
          // dump records the stall events that led here.
          std::abort();
        }
      }
    } else if (was_stalled) {
      s.stalled.store(0, std::memory_order_relaxed);
      record_event(event_kind::watchdog_recover, i, silent / 1'000'000ULL);
      log_info() << "watchdog: component '" << s.name << "' recovered";
    }
  }
  stalled_.store(stalled_now, std::memory_order_relaxed);
  stalled_gauge.set(static_cast<std::int64_t>(stalled_now));
  return stalled_now;
}

void watchdog::loop() {
  std::unique_lock lock(mutex_);
  while (!stop_requested_) {
    cv_.wait_for(lock, config_.poll, [this] { return stop_requested_; });
    if (stop_requested_) break;
    lock.unlock();
    check_now();
    // Keep crash-dump metric coverage current (instruments registered
    // after install_crash_handler would otherwise be missing).
    refresh_crash_metrics();
    lock.lock();
  }
}

std::vector<watchdog::component_view> watchdog::components() const {
  const std::uint64_t now = steady_now_ns();
  std::vector<component_view> out;
  for (const auto& s : slots_) {
    if (s.state.load(std::memory_order_acquire) != 1) continue;
    component_view v;
    v.name = s.name;
    v.stalled = s.stalled.load(std::memory_order_relaxed) != 0;
    const std::uint64_t last = s.last_beat_ns.load(std::memory_order_relaxed);
    v.silent_ms = now > last ? (now - last) / 1'000'000ULL : 0;
    out.push_back(std::move(v));
  }
  return out;
}

}  // namespace spechd::obs
