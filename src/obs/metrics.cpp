#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace spechd::obs {

namespace {

std::atomic<bool> g_armed{true};

bool valid_metric_name(std::string_view name) noexcept {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
  };
  if (!head(name[0])) return false;
  for (const char c : name.substr(1)) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

}  // namespace

void set_armed(bool armed) noexcept {
  g_armed.store(armed, std::memory_order_relaxed);
}

bool armed() noexcept { return g_armed.load(std::memory_order_relaxed); }

// --- histogram ---------------------------------------------------------------

std::size_t histogram::shard_slot() noexcept {
  // Round-robin thread→slot assignment: truly per-thread up to k_shards
  // concurrent recorders, striped (still lock-free, occasionally sharing a
  // cache line) beyond.
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % k_shards;
  return slot;
}

void histogram::merge(std::vector<std::uint64_t>& counts, std::uint64_t& total,
                      std::uint64_t& sum) const noexcept {
  counts.assign(k_hist_buckets, 0);
  total = 0;
  sum = 0;
  for (const auto& s : shards_) {
    for (std::size_t b = 0; b < k_hist_buckets; ++b) {
      const auto c = s.counts[b].load(std::memory_order_relaxed);
      counts[b] += c;
      total += c;
    }
    sum += s.sum.load(std::memory_order_relaxed);
  }
}

void histogram::totals(std::uint64_t& count, std::uint64_t& sum) const noexcept {
  count = 0;
  sum = 0;
  for (const auto& s : shards_) {
    for (const auto& c : s.counts) count += c.load(std::memory_order_relaxed);
    sum += s.sum.load(std::memory_order_relaxed);
  }
}

void histogram::reset() noexcept {
  for (auto& s : shards_) {
    for (auto& c : s.counts) c.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
  }
}

// --- snapshot ----------------------------------------------------------------

double histogram_sample::percentile(double p) const noexcept {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  // Nearest-rank over the merged bucket counts: the same definition
  // util::percentile_sorted uses, so the equivalence tests compare
  // like with like.
  const auto rank = static_cast<std::uint64_t>(
      std::max<double>(1.0, std::ceil(p * static_cast<double>(count))));
  std::uint64_t seen = 0;
  for (const auto& b : buckets) {
    seen += b.count;
    if (seen >= rank) {
      return (static_cast<double>(b.lo) + static_cast<double>(b.hi)) / 2.0;
    }
  }
  const auto& last = buckets.back();
  return (static_cast<double>(last.lo) + static_cast<double>(last.hi)) / 2.0;
}

const counter_sample* metrics_snapshot::find_counter(
    std::string_view name) const noexcept {
  for (const auto& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const histogram_sample* metrics_snapshot::find_histogram(
    std::string_view name) const noexcept {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::string render_prom(const metrics_snapshot& snapshot) {
  std::string out;
  char buf[64];
  auto put_u64 = [&](std::uint64_t v) {
    std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
    out += buf;
  };
  for (const auto& c : snapshot.counters) {
    out += "# TYPE " + c.name + " counter\n";
    out += c.name + " ";
    put_u64(c.value);
    out += "\n";
  }
  for (const auto& g : snapshot.gauges) {
    out += "# TYPE " + g.name + " gauge\n";
    out += g.name + " ";
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(g.value));
    out += buf;
    out += "\n";
  }
  for (const auto& h : snapshot.histograms) {
    out += "# TYPE " + h.name + " histogram\n";
    std::uint64_t cumulative = 0;
    for (const auto& b : h.buckets) {
      cumulative += b.count;
      out += h.name + "_bucket{le=\"";
      put_u64(b.hi);
      out += "\"} ";
      put_u64(cumulative);
      out += "\n";
    }
    out += h.name + "_bucket{le=\"+Inf\"} ";
    put_u64(h.count);
    out += "\n";
    out += h.name + "_sum ";
    put_u64(h.sum);
    out += "\n";
    out += h.name + "_count ";
    put_u64(h.count);
    out += "\n";
  }
  return out;
}

// --- registry ----------------------------------------------------------------

registry& registry::instance() {
  // Leaked on purpose: instrumentation sites in static destructors must
  // still find a live registry.
  static registry* self = new registry();
  return *self;
}

counter& registry::counter(std::string_view name) {
  SPECHD_EXPECTS(valid_metric_name(name));
  std::lock_guard lock(mutex_);
  for (auto* c : counters_) {
    if (c->name == name) return c->instrument;
  }
  auto* entry = new named<class counter>{std::string(name), {}, {}};
  counters_.push_back(entry);
  return entry->instrument;
}

gauge& registry::gauge(std::string_view name) {
  SPECHD_EXPECTS(valid_metric_name(name));
  std::lock_guard lock(mutex_);
  for (auto* g : gauges_) {
    if (g->name == name) return g->instrument;
  }
  auto* entry = new named<class gauge>{std::string(name), {}, {}};
  gauges_.push_back(entry);
  return entry->instrument;
}

histogram& registry::histogram(std::string_view name, std::string_view unit) {
  SPECHD_EXPECTS(valid_metric_name(name));
  std::lock_guard lock(mutex_);
  for (auto* h : histograms_) {
    if (h->name == name) return h->instrument;
  }
  auto* entry = new named<class histogram>{std::string(name), std::string(unit), {}};
  histograms_.push_back(entry);
  return entry->instrument;
}

metrics_snapshot registry::snapshot() const {
  std::lock_guard lock(mutex_);
  metrics_snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto* c : counters_) {
    snap.counters.push_back({c->name, c->instrument.value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto* g : gauges_) {
    snap.gauges.push_back({g->name, g->instrument.value()});
  }
  snap.histograms.reserve(histograms_.size());
  std::vector<std::uint64_t> counts;
  for (const auto* h : histograms_) {
    histogram_sample sample;
    sample.name = h->name;
    sample.unit = h->unit;
    h->instrument.merge(counts, sample.count, sample.sum);
    for (std::size_t b = 0; b < counts.size(); ++b) {
      if (counts[b] == 0) continue;
      sample.buckets.push_back({hist_bucket_lo(b), hist_bucket_hi(b), counts[b]});
    }
    snap.histograms.push_back(std::move(sample));
  }
  return snap;
}

std::size_t registry::export_crash_refs(crash_ref* out, std::size_t capacity) const {
  std::lock_guard lock(mutex_);
  std::size_t n = 0;
  for (const auto* c : counters_) {
    if (n == capacity) return n;
    out[n++] = {c->name.c_str(), &c->instrument, nullptr, nullptr};
  }
  for (const auto* g : gauges_) {
    if (n == capacity) return n;
    out[n++] = {g->name.c_str(), nullptr, &g->instrument, nullptr};
  }
  for (const auto* h : histograms_) {
    if (n == capacity) return n;
    out[n++] = {h->name.c_str(), nullptr, nullptr, &h->instrument};
  }
  return n;
}

void registry::reset_all() {
  std::lock_guard lock(mutex_);
  for (auto* c : counters_) c->instrument.reset();
  for (auto* g : gauges_) g->instrument.reset();
  for (auto* h : histograms_) h->instrument.reset();
}

}  // namespace spechd::obs
