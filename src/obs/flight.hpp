// Flight recorder + crash-dump diagnostics for the serving tier.
//
// Metrics (obs/metrics.hpp) answer "how much, how fast"; the flight
// recorder answers "what happened, in what order, right before things
// went wrong". Every layer of the serving path emits small structured
// events — ingest batches, view publishes, journal appends/fsyncs,
// health transitions, shed decisions, maintenance/heal actions,
// connection open/close/reap, watchdog verdicts — into a process-wide,
// fixed-size, lock-free ring:
//
//   hot paths ──record_event (1 clock read + relaxed stores)──▶
//     per-thread ring shards (k_shards × k_shard_events PODs, wraparound)
//       ├── snapshot()        live:  get_debug_dump wire frame,
//       │                            `client --debug-dump`
//       └── crash writer      fatal: `.sphcrash` file via write(2) only,
//                                    `spechd doctor` offline
//
// Design constraints, in order:
//   * Record cost: disarmed is one relaxed load (the same obs::armed()
//     gate trace spans use); armed is one CLOCK_MONOTONIC read plus a
//     handful of relaxed stores into the calling thread's shard — no
//     locks, no allocation, bench-priced in `bench_serve` observability.
//   * Crash-path safety: everything the fatal handler touches is
//     async-signal-safe — the rings are plain PODs, per-shard status is
//     relaxed atomics, metric references are harvested into a fixed
//     table *before* the crash (instruments are immortal), the output fd
//     is pre-opened at install time, and the dump is serialised into a
//     static buffer and flushed with write(2). No malloc, no locks, no
//     stdio on the fatal path.
//   * Honest best-effort reads: the rings are written without
//     synchronisation, so a snapshot racing a writer may observe a torn
//     slot. Readers drop events whose kind is out of range or whose seq
//     is zero; everything they keep is internally consistent.
//
// Wall timestamps are derived as steady_ns + (wall − steady at recorder
// init), so each event carries both clock domains for the price of one
// clock read.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace spechd::obs {

// --- events ------------------------------------------------------------------

/// What happened. Values are wire/dump format — append only, never renumber.
enum class event_kind : std::uint8_t {
  none = 0,
  ingest_batch = 1,       ///< arg0 = records applied, arg1 = shard
  view_publish = 2,       ///< arg0 = view epoch, arg1 = shard
  journal_append = 3,     ///< arg0 = journal records, arg1 = journal bytes
  journal_fsync = 4,      ///< arg0 = records synced, arg1 = generation
  health_transition = 5,  ///< arg0 = new health, arg1 = shard
  shed_decision = 6,      ///< arg0 = queue depth at shed, request id set
  maintenance_action = 7, ///< arg0 = reclusters run, arg1 = deferred flag
  heal_action = 8,        ///< arg0 = shards healed, arg1 = attempt
  conn_open = 9,          ///< arg0 = fd, arg1 = open connections
  conn_close = 10,        ///< arg0 = fd, arg1 = open connections
  conn_reap = 11,         ///< arg0 = fd, arg1 = idle ms
  watchdog_stall = 12,    ///< arg0 = component slot, arg1 = silent ms
  watchdog_recover = 13,  ///< arg0 = component slot, arg1 = silent ms
  crash = 14,             ///< arg0 = signal number (0: std::terminate)
  recovery_progress = 15, ///< arg0 = records replayed, arg1 = generation
};

inline constexpr std::uint8_t k_event_kind_max = 15;

const char* event_kind_name(event_kind kind) noexcept;

/// One recorded event. Fixed-size POD: the crash writer copies these out
/// of the rings byte-for-byte from a signal handler.
struct flight_event {
  std::uint64_t seq = 0;        ///< process-wide order (1-based; 0 = empty slot)
  std::uint64_t steady_ns = 0;  ///< CLOCK_MONOTONIC at record time
  std::uint64_t wall_ns = 0;    ///< CLOCK_REALTIME (derived, see header comment)
  std::uint64_t request_id = 0; ///< wire request id when in a request context
  std::uint64_t arg0 = 0;       ///< kind-specific (see event_kind)
  std::uint64_t arg1 = 0;       ///< kind-specific
  std::uint32_t thread_id = 0;  ///< OS thread id (gettid) of the recorder
  std::uint8_t kind = 0;        ///< event_kind
  std::uint8_t pad_[3] = {};

  friend bool operator==(const flight_event&, const flight_event&) = default;
};
static_assert(sizeof(flight_event) == 56, "dump format depends on layout");

// --- recorder ----------------------------------------------------------------

/// Process-wide ring of recent events. Leaked singleton (instrumentation
/// sites in static destructors must still find it alive).
class flight_recorder {
public:
  /// Ring geometry: threads are spread round-robin over k_shards slots
  /// (like histogram shards); each shard keeps the last k_shard_events
  /// events it saw. Total footprint ≈ 16 × 256 × 56 B = 224 KiB, fixed.
  static constexpr std::size_t k_shards = 16;
  static constexpr std::size_t k_shard_events = 256;
  static constexpr std::size_t k_capacity = k_shards * k_shard_events;

  static flight_recorder& instance() noexcept;

  /// Records one event. Disarmed (obs::set_armed(false)): one relaxed
  /// load. Armed: one clock read + relaxed stores, no locks/allocation.
  void record(event_kind kind, std::uint64_t arg0 = 0, std::uint64_t arg1 = 0,
              std::uint64_t request_id = 0) noexcept;

  /// Events ever recorded (monotonic; the rings keep only the newest).
  std::uint64_t total_recorded() const noexcept {
    return seq_.load(std::memory_order_relaxed);
  }

  /// Copies the surviving events out of the rings, seq-ascending. Torn or
  /// empty slots are dropped (see header comment). Allocates — live/debug
  /// surface only, never called from the crash path.
  std::vector<flight_event> snapshot() const;

  /// Drops every recorded event and resets the seq counter (test isolation).
  void reset() noexcept;

  struct shard {
    std::atomic<std::uint64_t> next{0};  ///< slots ever written in this shard
    flight_event ring[k_shard_events];
  };

  /// Raw shard access for the crash writer (signal context): plain reads
  /// of POD slots, same torn-slot caveat as snapshot().
  const shard* shards() const noexcept { return shards_; }

private:
  flight_recorder();

  std::atomic<std::uint64_t> seq_{0};
  std::uint64_t wall_offset_ns_ = 0;  ///< wall − steady at construction
  shard shards_[k_shards];
};

/// Convenience wrapper every instrumentation site uses:
///   obs::record_event(obs::event_kind::view_publish, epoch, shard_id);
inline void record_event(event_kind kind, std::uint64_t arg0 = 0,
                         std::uint64_t arg1 = 0,
                         std::uint64_t request_id = 0) noexcept {
  flight_recorder::instance().record(kind, arg0, arg1, request_id);
}

// --- per-shard status table --------------------------------------------------

/// Last-known health/journal position per serving shard, mirrored into
/// plain atomics by the serve layer so the crash writer (and the
/// get_debug_dump frame) can read them without touching shard objects.
inline constexpr std::size_t k_max_status_shards = 64;

struct shard_status {
  std::atomic<std::uint32_t> health{0};           ///< serve::shard_health
  std::atomic<std::uint64_t> generation{0};
  std::atomic<std::uint64_t> journal_bytes{0};
  std::atomic<std::uint64_t> journal_records{0};
  std::atomic<std::uint64_t> queue_depth{0};
};

/// Declares how many shard slots are live (clamped to k_max_status_shards;
/// the service calls this at construction). Zeroes the slots.
void set_status_shard_count(std::size_t count) noexcept;
std::size_t status_shard_count() noexcept;
/// Slot for shard `index` (index is clamped into range; updates are
/// relaxed stores by shard writers, reads from anywhere incl. signals).
shard_status& status_shard(std::size_t index) noexcept;

// --- crash dumps -------------------------------------------------------------

/// Parsed `.sphcrash` contents (also produced for live snapshots written
/// by write_crash_dump_now — same format, signo 0).
struct crash_counter_sample {
  std::string name;
  std::uint64_t value = 0;
  friend bool operator==(const crash_counter_sample&, const crash_counter_sample&) = default;
};
struct crash_gauge_sample {
  std::string name;
  std::int64_t value = 0;
  friend bool operator==(const crash_gauge_sample&, const crash_gauge_sample&) = default;
};
struct crash_histogram_sample {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  friend bool operator==(const crash_histogram_sample&, const crash_histogram_sample&) = default;
};
struct crash_shard_sample {
  std::uint32_t health = 0;
  std::uint64_t generation = 0;
  std::uint64_t journal_bytes = 0;
  std::uint64_t journal_records = 0;
  std::uint64_t queue_depth = 0;
  friend bool operator==(const crash_shard_sample&, const crash_shard_sample&) = default;
};

struct crash_dump {
  std::uint32_t version = 0;
  std::int32_t signo = 0;      ///< fatal signal; 0 = terminate/on-demand
  std::uint32_t pid = 0;
  std::uint64_t wall_ns = 0;   ///< when the dump was written
  std::uint64_t steady_ns = 0;
  std::vector<crash_counter_sample> counters;
  std::vector<crash_gauge_sample> gauges;
  std::vector<crash_histogram_sample> histograms;
  std::vector<crash_shard_sample> shards;      ///< shard index order
  std::vector<flight_event> events;            ///< seq-ascending tail
};

/// Installs SIGSEGV/SIGBUS/SIGABRT handlers plus a std::terminate handler
/// that write a crash dump, then re-raise the default disposition (so the
/// exit status still reports the signal). Pre-opens `path` (O_TRUNC) and
/// harvests the metric references immediately — the fatal path itself
/// uses only write(2) + fsync on the held fd. Re-installable (tests):
/// a later call replaces the path. Returns false when the file cannot be
/// opened (handler is then not installed).
bool install_crash_handler(const std::string& path);

/// Re-harvests metric references into the crash table (picks up
/// instruments registered after install; the watchdog calls this each
/// poll). Cheap; takes the registry mutex. Safe no-op before install.
void refresh_crash_metrics() noexcept;

/// Writes a dump of the current state to `path` on demand (normal
/// context; opens/closes the file itself). Same format as the fatal
/// path, signo 0. Returns false on I/O failure.
bool write_crash_dump_now(const std::string& path);

/// Parses dump bytes. Returns false (out untouched beyond partial fill)
/// on bad magic/version or a malformed section.
bool parse_crash_dump(const std::string& bytes, crash_dump& out);

/// Reads and parses a dump file. Throws util::io_error when the file
/// cannot be read; returns false on parse failure.
bool read_crash_dump_file(const std::string& path, crash_dump& out);

}  // namespace spechd::obs
