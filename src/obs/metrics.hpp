// Process-wide lock-free metrics: counters, gauges, and log-bucketed
// latency/size histograms, registered by name and scraped as one snapshot.
//
// The registry is the observability substrate every serving-tier layer
// records into and every export surface (get_metrics wire frame,
// `spechd client --metrics`, `serve --metrics-log`) reads from:
//
//   hot paths ──add/record (relaxed atomics)──▶ registry ──snapshot()──▶
//     metrics_snapshot ──render_prom / wire encode / util::table──▶ user
//
// Design constraints, in order:
//   * Hot-path cost: a counter add is ONE relaxed atomic add; a histogram
//     record is a handful of ALU ops (bit scan) plus two relaxed adds into
//     a per-thread shard. No locks, no allocation, no seq-cst anywhere on
//     the record path.
//   * Timing instrumentation (clock reads) can be disarmed process-wide
//     (`set_armed(false)`): spans then skip the clock entirely, leaving
//     only the counters — this is what the bench's `observability` section
//     measures the overhead of.
//   * Snapshots never block writers: they sum the per-thread shards with
//     relaxed loads; a snapshot racing a record may miss that one sample
//     (it lands in the next snapshot), but totals are never corrupted and
//     every sample is eventually counted exactly once.
//
// Histogram bucketing is HDR-style: values are log2-bucketed with
// 2^k_sub_bits linear sub-buckets per power of two, so the relative error
// of any reported quantile is bounded by 2^-k_sub_bits (6.25%) and the
// whole range [0, 2^47) fits in 720 buckets (~6 KB per thread shard).
// Registration happens at static-init sites:
//
//   static auto& h = obs::registry::instance().histogram("spechd_x_ns", "ns");
//   h.record(elapsed_ns);
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace spechd::obs {

// --- arming ------------------------------------------------------------------

/// Process-wide switch for *timing* instrumentation (trace spans). Counters
/// and explicit record() calls are unaffected — they are the always-on
/// one-relaxed-add tier. Defaults to armed.
void set_armed(bool armed) noexcept;
bool armed() noexcept;

// --- histogram bucketing (exposed for tests and renderers) -------------------

/// Linear sub-buckets per power of two: 16 ⇒ max relative bucket width
/// (and therefore quantile error) of 1/16.
inline constexpr unsigned k_hist_sub_bits = 4;
inline constexpr std::uint64_t k_hist_sub_count = 1ULL << k_hist_sub_bits;
/// Highest power of two tracked exactly; larger values clamp into the last
/// bucket. 2^47 ns ≈ 39 hours, 2^47 bytes = 128 TiB — beyond either is
/// "off the chart" for this service.
inline constexpr unsigned k_hist_max_msb = 47;
inline constexpr std::size_t k_hist_buckets =
    (k_hist_max_msb - k_hist_sub_bits + 1) * k_hist_sub_count + k_hist_sub_count;

/// Bucket index of `v` (clamped to the last bucket for huge values).
constexpr std::size_t hist_bucket_index(std::uint64_t v) noexcept {
  if (v < k_hist_sub_count) return static_cast<std::size_t>(v);
  unsigned msb = 63U - static_cast<unsigned>(std::countl_zero(v));
  if (msb > k_hist_max_msb) {
    msb = k_hist_max_msb;
    v = (1ULL << (k_hist_max_msb + 1)) - 1;  // clamp into the top bucket
  }
  const unsigned shift = msb - k_hist_sub_bits;
  const auto sub = static_cast<std::size_t>((v >> shift) & (k_hist_sub_count - 1));
  return (static_cast<std::size_t>(msb - k_hist_sub_bits) + 1) * k_hist_sub_count + sub;
}

/// Inclusive lower bound of bucket `index` (inverse of hist_bucket_index).
constexpr std::uint64_t hist_bucket_lo(std::size_t index) noexcept {
  if (index < k_hist_sub_count) return index;
  const std::size_t major = index / k_hist_sub_count - 1 + k_hist_sub_bits;
  const std::uint64_t sub = index % k_hist_sub_count;
  return (1ULL << major) + (sub << (major - k_hist_sub_bits));
}

/// Inclusive upper bound of bucket `index`.
constexpr std::uint64_t hist_bucket_hi(std::size_t index) noexcept {
  if (index + 1 >= k_hist_buckets) return UINT64_MAX;
  return hist_bucket_lo(index + 1) - 1;
}

// --- instruments -------------------------------------------------------------

/// Monotonic counter. Overflow wraps modulo 2^64 (callers diffing
/// snapshots get the right delta through a wrap); reset() re-zeroes — both
/// pinned by tests/obs.
class counter {
public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time signed value (queue depths, open connections).
class gauge {
public:
  void set(std::int64_t v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

private:
  std::atomic<std::int64_t> value_{0};
};

/// Log-bucketed histogram with per-thread shards. record() touches only
/// the calling thread's shard (threads are spread round-robin over
/// k_shards slots), so concurrent recorders never contend; snapshots merge
/// the shards losslessly.
class histogram {
public:
  static constexpr std::size_t k_shards = 8;

  void record(std::uint64_t v) noexcept {
    auto& s = shards_[shard_slot()];
    s.counts[hist_bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
  }

  /// Merged bucket counts (size k_hist_buckets) — relaxed-sum of shards.
  void merge(std::vector<std::uint64_t>& counts, std::uint64_t& total,
             std::uint64_t& sum) const noexcept;

  /// Allocation-free count/sum totals (relaxed loads only) — safe to call
  /// from a signal handler; the crash writer uses this instead of merge().
  void totals(std::uint64_t& count, std::uint64_t& sum) const noexcept;

  void reset() noexcept;

private:
  static std::size_t shard_slot() noexcept;

  struct alignas(64) shard {
    std::array<std::atomic<std::uint64_t>, k_hist_buckets> counts{};
    std::atomic<std::uint64_t> sum{0};
  };
  std::array<shard, k_shards> shards_{};
};

// --- snapshot ----------------------------------------------------------------

struct counter_sample {
  std::string name;
  std::uint64_t value = 0;
  friend bool operator==(const counter_sample&, const counter_sample&) = default;
};

struct gauge_sample {
  std::string name;
  std::int64_t value = 0;
  friend bool operator==(const gauge_sample&, const gauge_sample&) = default;
};

/// One non-empty histogram bucket: inclusive [lo, hi] value range.
struct hist_bucket_sample {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  std::uint64_t count = 0;
  friend bool operator==(const hist_bucket_sample&, const hist_bucket_sample&) = default;
};

struct histogram_sample {
  std::string name;
  std::string unit;  ///< "ns", "bytes", ... (display hint only)
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::vector<hist_bucket_sample> buckets;  ///< non-empty buckets, ascending lo

  /// Nearest-rank quantile estimate: the midpoint of the bucket holding
  /// the rank-p sample. The exact sample provably lies inside that
  /// bucket, so the estimate is within one bucket width (≤ 6.25%
  /// relative) of the true quantile — pinned by tests/obs.
  double percentile(double p) const noexcept;

  friend bool operator==(const histogram_sample&, const histogram_sample&) = default;
};

struct metrics_snapshot {
  std::vector<counter_sample> counters;    ///< registration order
  std::vector<gauge_sample> gauges;
  std::vector<histogram_sample> histograms;

  /// nullptr when absent (empty snapshots stay cheap to pass around).
  const counter_sample* find_counter(std::string_view name) const noexcept;
  const histogram_sample* find_histogram(std::string_view name) const noexcept;

  friend bool operator==(const metrics_snapshot&, const metrics_snapshot&) = default;
};

/// Prometheus text exposition (text/plain version 0.0.4): one `# TYPE`
/// comment per series, counters as `name value`, histograms as cumulative
/// `name_bucket{le="..."}` series plus `_sum`/`_count`. Names must already
/// match [a-zA-Z_:][a-zA-Z0-9_:]* (the registry enforces this at
/// registration).
std::string render_prom(const metrics_snapshot& snapshot);

// --- registry ----------------------------------------------------------------

/// Name-keyed instrument registry. Registration (first call per name)
/// takes a mutex; subsequent lookups through the same static reference are
/// free, which is why every instrumentation site caches the reference:
///
///   static auto& c = obs::registry::instance().counter("spechd_x_total");
///
/// Instruments are never deallocated (deque storage, stable addresses) —
/// a metric outlives every object that records into it.
class registry {
public:
  static registry& instance();

  class counter& counter(std::string_view name);
  class gauge& gauge(std::string_view name);
  class histogram& histogram(std::string_view name, std::string_view unit = "ns");

  /// Merged view of every registered instrument, registration order.
  metrics_snapshot snapshot() const;

  /// Zeroes every instrument (tests and bench isolation; the instruments
  /// themselves stay registered).
  void reset_all();

  /// One immortal instrument reference for the crash writer: exactly one
  /// of the instrument pointers is set. Names and instruments are never
  /// deallocated, so a ref harvested once stays valid forever and its
  /// value()/totals() reads are async-signal-safe (relaxed atomic loads).
  struct crash_ref {
    const char* name = nullptr;
    const class counter* counter = nullptr;
    const class gauge* gauge = nullptr;
    const class histogram* histogram = nullptr;
  };

  /// Copies up to `capacity` refs (registration order: counters, gauges,
  /// histograms) into `out` and returns how many were written. Takes the
  /// registry mutex — call from normal context (install time / watchdog
  /// refresh), never from the signal handler itself.
  std::size_t export_crash_refs(crash_ref* out, std::size_t capacity) const;

private:
  registry() = default;

  template <typename T>
  struct named {
    std::string name;
    std::string unit;
    T instrument;
  };

  mutable std::mutex mutex_;
  std::vector<named<class counter>*> counters_;      // registration order
  std::vector<named<class gauge>*> gauges_;
  std::vector<named<class histogram>*> histograms_;
  // Deques would also work; pointer-vectors + new keep iteration simple
  // while guaranteeing stable addresses. Instruments are intentionally
  // immortal (see class comment).
};

}  // namespace spechd::obs
