// Liveness watchdog for the serving tier.
//
// Every long-lived loop in the process — each shard's writer thread, the
// epoll loop, the maintenance scheduler — registers a named component and
// pulses its heartbeat once per iteration (one clock read + one relaxed
// store). A single watchdog thread polls the slots and flags any
// component silent past a configurable deadline:
//
//   component.pulse() ──relaxed store──▶ slot.last_beat_ns
//                                           │ watchdog thread, every poll
//                                           ▼
//     silent > deadline:  flight event (watchdog_stall) + WARNING log +
//                         `spechd_watchdog_stalled_components` gauge
//     pulses again:       flight event (watchdog_recover), gauge drops
//     silent > deadline + kill_after (when set): FATAL log + std::abort(),
//                         which routes through the crash handler — a
//                         supervised deployment gets a `.sphcrash` dump
//                         and a restart instead of a silent wedge.
//
// The slot table is fixed-size and lock-free (components register/retire
// with CAS on a state byte), so registration works from any thread and
// the watchdog never blocks a serving path. The watchdog also refreshes
// the crash writer's metric table each poll, keeping `.sphcrash` metric
// coverage current for instruments registered after install.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace spechd::obs {

class watchdog {
public:
  static constexpr std::size_t k_max_components = 96;
  static constexpr std::size_t k_name_cap = 47;  ///< longer names truncate

  struct config {
    /// Silence past this flags the component as stalled.
    std::chrono::milliseconds deadline{5000};
    /// Once stalled longer than this, abort the process (0 = never kill).
    /// Meant for supervised deployments where a restart beats a wedge.
    std::chrono::milliseconds kill_after{0};
    /// Poll cadence; 0 = deadline/4 clamped to [10ms, 250ms].
    std::chrono::milliseconds poll{0};
  };

  /// Heartbeat handle held by a registered component. Copyable POD-ish
  /// wrapper around the slot pointer; an empty handle ignores pulses.
  class handle {
  public:
    handle() = default;
    /// One CLOCK_MONOTONIC read + one relaxed store.
    void pulse() noexcept;
    /// Component is exiting cleanly: frees the slot (no stall flagged for
    /// a retired component). Idempotent.
    void retire() noexcept;
    bool valid() const noexcept { return slot_ != nullptr; }

  private:
    friend class watchdog;
    explicit handle(void* slot) noexcept : slot_(slot) {}
    void* slot_ = nullptr;
  };

  /// Leaked process-wide singleton: components register regardless of
  /// whether the watchdog thread is running (pulses are just cheap
  /// stores until start() arms the checks).
  static watchdog& instance() noexcept;

  /// Claims a slot (returns an empty handle when the table is full —
  /// pulses then no-op, which fails safe: no false stall reports).
  handle register_component(std::string_view name) noexcept;

  /// Starts the poll thread (idempotent: restarting with a new config
  /// stops the old thread first).
  void start(const config& cfg);
  void stop();
  bool running() const noexcept { return running_.load(std::memory_order_acquire); }

  std::size_t stalled_components() const noexcept {
    return stalled_.load(std::memory_order_relaxed);
  }

  /// Debug/wire view of the live slots.
  struct component_view {
    std::string name;
    bool stalled = false;
    std::uint64_t silent_ms = 0;  ///< since last pulse
  };
  std::vector<component_view> components() const;

  /// Test hook: run one deadline sweep now (also what the poll thread
  /// does each tick). Returns how many components are currently stalled.
  std::size_t check_now();

private:
  watchdog() = default;

  struct slot {
    std::atomic<std::uint8_t> state{0};  ///< 0 free, 1 live
    std::atomic<std::uint8_t> stalled{0};
    std::atomic<std::uint64_t> last_beat_ns{0};
    std::atomic<std::uint64_t> stall_start_ns{0};
    char name[k_name_cap + 1] = {};
  };

  void loop();

  slot slots_[k_max_components];
  std::atomic<std::size_t> stalled_{0};
  std::atomic<bool> running_{false};
  config config_{};
  std::mutex mutex_;  ///< guards start/stop + cv
  std::condition_variable cv_;
  bool stop_requested_ = false;
  std::thread thread_;
};

}  // namespace spechd::obs
