#include "ms/mgf.hpp"

#include <cctype>
#include <charconv>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace spechd::ms {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

bool parse_double(std::string_view s, double& out) {
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

/// CHARGE values look like "2+", "3+", "2", or "2+ and 3+" (we take the
/// first). Returns 0 when unparsable.
int parse_charge(std::string_view v) {
  v = trim(v);
  int sign = 1;
  std::size_t end = 0;
  while (end < v.size() && std::isdigit(static_cast<unsigned char>(v[end]))) ++end;
  if (end == 0) return 0;
  int value = 0;
  for (std::size_t i = 0; i < end; ++i) value = value * 10 + (v[i] - '0');
  if (end < v.size() && v[end] == '-') sign = -1;
  return sign * value;
}

}  // namespace

std::vector<spectrum> read_mgf(std::istream& in, const std::string& source_name) {
  std::vector<spectrum> result;
  std::string line;
  std::size_t line_no = 0;
  bool in_ions = false;
  spectrum current;

  while (std::getline(in, line)) {
    ++line_no;
    std::string_view v = trim(line);
    if (v.empty() || v.front() == '#' || v.front() == ';') continue;

    if (v == "BEGIN IONS") {
      if (in_ions) throw parse_error(source_name, line_no, "nested BEGIN IONS");
      in_ions = true;
      current = spectrum{};
      continue;
    }
    if (v == "END IONS") {
      if (!in_ions) throw parse_error(source_name, line_no, "END IONS without BEGIN IONS");
      in_ions = false;
      sort_peaks(current);
      result.push_back(std::move(current));
      continue;
    }
    if (!in_ions) continue;  // header junk between records is tolerated

    if (const auto eq = v.find('='); eq != std::string_view::npos &&
                                     !std::isdigit(static_cast<unsigned char>(v.front()))) {
      const std::string_view key = v.substr(0, eq);
      const std::string_view value = trim(v.substr(eq + 1));
      if (key == "TITLE") {
        current.title = std::string(value);
      } else if (key == "PEPMASS") {
        // PEPMASS may carry "mz [intensity]"; only the first token matters.
        const auto space = value.find_first_of(" \t");
        const std::string_view mz_str =
            space == std::string_view::npos ? value : value.substr(0, space);
        if (!parse_double(mz_str, current.precursor_mz)) {
          throw parse_error(source_name, line_no, "bad PEPMASS value");
        }
      } else if (key == "CHARGE") {
        current.precursor_charge = parse_charge(value);
      } else if (key == "RTINSECONDS") {
        double rt = 0.0;
        if (parse_double(value, rt)) current.retention_time = rt;
      } else if (key == "SCANS") {
        double scans = 0.0;
        if (parse_double(value, scans) && scans >= 0) {
          current.scan = static_cast<std::uint32_t>(scans);
        }
      }
      // Unknown keys are skipped (MGF allows tool-specific headers).
      continue;
    }

    // Peak line: "mz intensity [charge]".
    std::istringstream ps{std::string(v)};
    double mz = 0.0;
    double intensity = 0.0;
    if (!(ps >> mz >> intensity)) {
      throw parse_error(source_name, line_no, "bad peak line: " + std::string(v));
    }
    current.peaks.push_back({mz, static_cast<float>(intensity)});
  }
  if (in_ions) {
    throw parse_error(source_name, line_no, "unterminated BEGIN IONS record");
  }
  return result;
}

std::vector<spectrum> read_mgf_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw io_error("cannot open MGF file: " + path);
  return read_mgf(in, path);
}

void write_mgf(std::ostream& out, const std::vector<spectrum>& spectra) {
  out << std::setprecision(10);
  for (const auto& s : spectra) {
    out << "BEGIN IONS\n";
    if (!s.title.empty()) out << "TITLE=" << s.title << '\n';
    out << "PEPMASS=" << s.precursor_mz << '\n';
    if (s.precursor_charge > 0) out << "CHARGE=" << s.precursor_charge << "+\n";
    if (s.retention_time > 0.0) out << "RTINSECONDS=" << s.retention_time << '\n';
    if (s.scan != 0) out << "SCANS=" << s.scan << '\n';
    for (const auto& p : s.peaks) {
      out << p.mz << ' ' << p.intensity << '\n';
    }
    out << "END IONS\n";
  }
}

void write_mgf_file(const std::string& path, const std::vector<spectrum>& spectra) {
  std::ofstream out(path);
  if (!out) throw io_error("cannot create MGF file: " + path);
  write_mgf(out, spectra);
  if (!out) throw io_error("write failure on MGF file: " + path);
}

}  // namespace spechd::ms
