#include "ms/mzxml.hpp"

#include <bit>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "ms/base64.hpp"
#include "ms/xml_scan.hpp"
#include "util/error.hpp"

namespace spechd::ms {

namespace {

/// Parses an ISO-8601 duration of the restricted "PT<seconds>S" form mzXML
/// uses for retentionTime. Returns seconds, 0 on mismatch.
double parse_retention_time(const std::string& v) {
  if (v.size() < 4 || v.compare(0, 2, "PT") != 0 || v.back() != 'S') return 0.0;
  try {
    return std::stod(v.substr(2, v.size() - 3));
  } catch (...) {
    return 0.0;
  }
}

std::uint64_t byteswap64(std::uint64_t v) {
  return ((v & 0x00000000000000FFULL) << 56) | ((v & 0x000000000000FF00ULL) << 40) |
         ((v & 0x0000000000FF0000ULL) << 24) | ((v & 0x00000000FF000000ULL) << 8) |
         ((v & 0x000000FF00000000ULL) >> 8) | ((v & 0x0000FF0000000000ULL) >> 24) |
         ((v & 0x00FF000000000000ULL) >> 40) | ((v & 0xFF00000000000000ULL) >> 56);
}

std::uint32_t byteswap32(std::uint32_t v) {
  return ((v & 0x000000FFU) << 24) | ((v & 0x0000FF00U) << 8) |
         ((v & 0x00FF0000U) >> 8) | ((v & 0xFF000000U) >> 24);
}

/// Decodes network-order interleaved (m/z, intensity) pairs.
std::vector<peak> decode_peaks(const std::vector<std::uint8_t>& bytes, bool is_64bit,
                               const std::string& source) {
  std::vector<peak> peaks;
  if (is_64bit) {
    if (bytes.size() % 16 != 0) {
      throw parse_error(source, 0, "mzXML 64-bit peak block not a multiple of 16 bytes");
    }
    peaks.reserve(bytes.size() / 16);
    for (std::size_t i = 0; i < bytes.size(); i += 16) {
      std::uint64_t raw_mz = 0;
      std::uint64_t raw_int = 0;
      std::memcpy(&raw_mz, bytes.data() + i, 8);
      std::memcpy(&raw_int, bytes.data() + i + 8, 8);
      if constexpr (std::endian::native == std::endian::little) {
        raw_mz = byteswap64(raw_mz);
        raw_int = byteswap64(raw_int);
      }
      peaks.push_back({std::bit_cast<double>(raw_mz),
                       static_cast<float>(std::bit_cast<double>(raw_int))});
    }
  } else {
    if (bytes.size() % 8 != 0) {
      throw parse_error(source, 0, "mzXML 32-bit peak block not a multiple of 8 bytes");
    }
    peaks.reserve(bytes.size() / 8);
    for (std::size_t i = 0; i < bytes.size(); i += 8) {
      std::uint32_t raw_mz = 0;
      std::uint32_t raw_int = 0;
      std::memcpy(&raw_mz, bytes.data() + i, 4);
      std::memcpy(&raw_int, bytes.data() + i + 4, 4);
      if constexpr (std::endian::native == std::endian::little) {
        raw_mz = byteswap32(raw_mz);
        raw_int = byteswap32(raw_int);
      }
      peaks.push_back({static_cast<double>(std::bit_cast<float>(raw_mz)),
                       std::bit_cast<float>(raw_int)});
    }
  }
  return peaks;
}

}  // namespace

std::vector<spectrum> read_mzxml(std::istream& in, const std::string& source_name) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  xml_scanner scanner(buffer.str(), source_name);

  std::vector<spectrum> result;
  spectrum current;
  int ms_level = 0;
  bool in_scan = false;
  bool in_precursor = false;
  bool in_peaks = false;
  bool peaks_64bit = false;
  bool peaks_compressed = false;
  std::string payload;

  for (;;) {
    xml_event ev = scanner.next();
    if (ev.type == xml_event::kind::eof) break;
    switch (ev.type) {
      case xml_event::kind::start:
      case xml_event::kind::empty: {
        if (ev.name == "scan") {
          // mzXML nests scans; we flush the previous one on open as the
          // subset we read is flat MS2 lists.
          current = spectrum{};
          ms_level = static_cast<int>(xml_attr_double(ev, "msLevel", 2));
          current.scan = static_cast<std::uint32_t>(xml_attr_double(ev, "num", 0));
          current.title = "scan=" + std::to_string(current.scan);
          current.retention_time =
              parse_retention_time(xml_attr(ev, "retentionTime"));
          in_scan = ev.type == xml_event::kind::start;
        } else if (ev.name == "precursorMz" && in_scan) {
          current.precursor_charge =
              static_cast<int>(xml_attr_double(ev, "precursorCharge", 0));
          in_precursor = ev.type == xml_event::kind::start;
          payload.clear();
        } else if (ev.name == "peaks" && in_scan) {
          peaks_64bit = xml_attr_double(ev, "precision", 32) == 64;
          peaks_compressed = xml_attr(ev, "compressionType", "none") != "none";
          const auto content = xml_attr(ev, "contentType", "m/z-int");
          if (content != "m/z-int" && content != "pairOrder") {
            throw parse_error(source_name, 0,
                              "unsupported mzXML peaks contentType: " + content);
          }
          in_peaks = ev.type == xml_event::kind::start;
          payload.clear();
        }
        break;
      }
      case xml_event::kind::text: {
        if (in_precursor || in_peaks) payload += ev.text;
        break;
      }
      case xml_event::kind::end: {
        if (ev.name == "precursorMz") {
          try {
            current.precursor_mz = std::stod(payload);
          } catch (...) {
            throw parse_error(source_name, 0, "bad precursorMz value: " + payload);
          }
          in_precursor = false;
        } else if (ev.name == "peaks") {
          if (peaks_compressed) {
            throw parse_error(source_name, 0,
                              "compressed mzXML peak blocks are not supported");
          }
          current.peaks = decode_peaks(base64_decode(payload), peaks_64bit, source_name);
          in_peaks = false;
        } else if (ev.name == "scan") {
          if (in_scan && ms_level == 2) {
            sort_peaks(current);
            result.push_back(std::move(current));
            current = spectrum{};
          }
          in_scan = false;
        }
        break;
      }
      case xml_event::kind::eof:
        break;
    }
  }
  return result;
}

std::vector<spectrum> read_mzxml_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw io_error("cannot open mzXML file: " + path);
  return read_mzxml(in, path);
}

void write_mzxml(std::ostream& out, const std::vector<spectrum>& spectra) {
  out << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
      << "<mzXML xmlns=\"http://sashimi.sourceforge.net/schema_revision/mzXML_3.2\">\n"
      << " <msRun scanCount=\"" << spectra.size() << "\">\n";
  for (const auto& s : spectra) {
    std::vector<std::uint8_t> bytes(s.peaks.size() * 16);
    for (std::size_t i = 0; i < s.peaks.size(); ++i) {
      auto raw_mz = std::bit_cast<std::uint64_t>(s.peaks[i].mz);
      auto raw_int = std::bit_cast<std::uint64_t>(static_cast<double>(s.peaks[i].intensity));
      if constexpr (std::endian::native == std::endian::little) {
        raw_mz = byteswap64(raw_mz);
        raw_int = byteswap64(raw_int);
      }
      std::memcpy(bytes.data() + i * 16, &raw_mz, 8);
      std::memcpy(bytes.data() + i * 16 + 8, &raw_int, 8);
    }
    out << "  <scan num=\"" << s.scan << "\" msLevel=\"2\" peaksCount=\""
        << s.peaks.size() << "\"";
    if (s.retention_time > 0.0) {
      out << " retentionTime=\"PT" << std::setprecision(10) << s.retention_time << "S\"";
    }
    out << ">\n";
    out << "   <precursorMz precursorCharge=\"" << s.precursor_charge << "\">"
        << std::setprecision(12) << s.precursor_mz << "</precursorMz>\n";
    out << "   <peaks precision=\"64\" byteOrder=\"network\" contentType=\"m/z-int\">"
        << base64_encode(bytes) << "</peaks>\n";
    out << "  </scan>\n";
  }
  out << " </msRun>\n</mzXML>\n";
}

void write_mzxml_file(const std::string& path, const std::vector<spectrum>& spectra) {
  std::ofstream out(path);
  if (!out) throw io_error("cannot create mzXML file: " + path);
  write_mzxml(out, spectra);
  if (!out) throw io_error("write failure on mzXML file: " + path);
}

}  // namespace spechd::ms
