// Minimal mzXML reader/writer.
//
// mzXML (the ISB precursor of mzML, still produced by legacy converters) is
// the fourth format named in Sec. II-A. Supported subset:
//   * <scan num=... msLevel=... peaksCount=... retentionTime="PT...S">
//   * <precursorMz precursorCharge=...>value</precursorMz>
//   * <peaks precision="32|64" byteOrder="network"
//            contentType="m/z-int">base64</peaks>  (interleaved pairs,
//     big-endian per the spec; "pairOrder" accepted as a contentType alias)
// zlib-compressed peaks are rejected with parse_error.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "ms/spectrum.hpp"

namespace spechd::ms {

/// Reads all MS2-level scans from an mzXML stream.
std::vector<spectrum> read_mzxml(std::istream& in,
                                 const std::string& source_name = "<mzxml>");
std::vector<spectrum> read_mzxml_file(const std::string& path);

/// Writes spectra as minimal mzXML (64-bit network-order m/z-int peaks).
void write_mzxml(std::ostream& out, const std::vector<spectrum>& spectra);
void write_mzxml_file(const std::string& path, const std::vector<spectrum>& spectra);

}  // namespace spechd::ms
