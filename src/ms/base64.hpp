// Base64 codec for mzML binary data arrays.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace spechd::ms {

/// Standard (RFC 4648) base64 with '=' padding.
std::string base64_encode(std::span<const std::uint8_t> data);

/// Decodes base64; throws spechd::parse_error on invalid characters or bad
/// padding. Whitespace inside the payload is tolerated (mzML pretty-prints).
std::vector<std::uint8_t> base64_decode(std::string_view text);

}  // namespace spechd::ms
