#include "ms/base64.hpp"

#include <array>
#include <cctype>

#include "util/error.hpp"

namespace spechd::ms {

namespace {

constexpr std::string_view k_alphabet =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

constexpr std::array<std::int8_t, 256> make_reverse_table() {
  std::array<std::int8_t, 256> t{};
  for (auto& v : t) v = -1;
  for (std::size_t i = 0; i < k_alphabet.size(); ++i) {
    t[static_cast<unsigned char>(k_alphabet[i])] = static_cast<std::int8_t>(i);
  }
  return t;
}

constexpr auto k_reverse = make_reverse_table();

}  // namespace

std::string base64_encode(std::span<const std::uint8_t> data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  std::size_t i = 0;
  for (; i + 3 <= data.size(); i += 3) {
    const std::uint32_t v = (std::uint32_t{data[i]} << 16) |
                            (std::uint32_t{data[i + 1]} << 8) | data[i + 2];
    out += k_alphabet[(v >> 18) & 0x3F];
    out += k_alphabet[(v >> 12) & 0x3F];
    out += k_alphabet[(v >> 6) & 0x3F];
    out += k_alphabet[v & 0x3F];
  }
  const std::size_t rem = data.size() - i;
  if (rem == 1) {
    const std::uint32_t v = std::uint32_t{data[i]} << 16;
    out += k_alphabet[(v >> 18) & 0x3F];
    out += k_alphabet[(v >> 12) & 0x3F];
    out += "==";
  } else if (rem == 2) {
    const std::uint32_t v = (std::uint32_t{data[i]} << 16) | (std::uint32_t{data[i + 1]} << 8);
    out += k_alphabet[(v >> 18) & 0x3F];
    out += k_alphabet[(v >> 12) & 0x3F];
    out += k_alphabet[(v >> 6) & 0x3F];
    out += '=';
  }
  return out;
}

std::vector<std::uint8_t> base64_decode(std::string_view text) {
  std::vector<std::uint8_t> out;
  out.reserve(text.size() / 4 * 3);
  std::uint32_t buffer = 0;
  int bits = 0;
  std::size_t padding = 0;
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    if (c == '=') {
      ++padding;
      continue;
    }
    if (padding > 0) {
      throw parse_error("<base64>", 0, "data after padding");
    }
    const std::int8_t v = k_reverse[static_cast<unsigned char>(c)];
    if (v < 0) {
      throw parse_error("<base64>", 0, std::string("invalid base64 character '") + c + "'");
    }
    buffer = (buffer << 6) | static_cast<std::uint32_t>(v);
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<std::uint8_t>((buffer >> bits) & 0xFF));
    }
  }
  if (padding > 2) throw parse_error("<base64>", 0, "too much padding");
  return out;
}

}  // namespace spechd::ms
