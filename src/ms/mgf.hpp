// Mascot Generic Format (MGF) reader/writer.
//
// MGF is the simplest of the formats named in Sec. II-A (mzML, mzXML, MGF,
// MS2): text records delimited by BEGIN IONS / END IONS with KEY=VALUE
// headers (TITLE, PEPMASS, CHARGE, RTINSECONDS, SCANS) followed by
// whitespace-separated "mz intensity" peak lines.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "ms/spectrum.hpp"

namespace spechd::ms {

/// Parses every spectrum in an MGF stream. Throws spechd::parse_error on
/// malformed records; `source_name` labels errors.
std::vector<spectrum> read_mgf(std::istream& in, const std::string& source_name = "<mgf>");

/// Parses an MGF file from disk. Throws spechd::io_error if unreadable.
std::vector<spectrum> read_mgf_file(const std::string& path);

/// Writes spectra as MGF. Peak intensities are emitted with enough
/// precision to round-trip through read_mgf.
void write_mgf(std::ostream& out, const std::vector<spectrum>& spectra);

void write_mgf_file(const std::string& path, const std::vector<spectrum>& spectra);

}  // namespace spechd::ms
