// Peptide chemistry: residue masses, tryptic digestion, b/y fragment ions.
//
// The synthetic dataset generator and the simulated database search both
// need theoretical MS/MS spectra. We implement the standard monoisotopic
// residue masses, trypsin digestion rules (cleave after K/R except before
// P), and singly-charged b/y fragment series — the same ion series MSGF+
// scores for HCD/CID spectra.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ms/spectrum.hpp"

namespace spechd::ms {

/// Monoisotopic residue mass for amino acid `aa` (one-letter code).
/// Throws spechd::logic_error for non-residue characters.
double residue_mass(char aa);

/// True for the 20 canonical one-letter amino acid codes.
bool is_residue(char aa) noexcept;

/// The 20 canonical residues in alphabetical order ("ACDEFGHIKLMNPQRSTVWY").
std::string_view canonical_residues() noexcept;

/// A peptide sequence with convenience mass calculators.
class peptide {
public:
  peptide() = default;

  /// Validates that every character is a canonical residue.
  explicit peptide(std::string sequence);

  const std::string& sequence() const noexcept { return sequence_; }
  std::size_t length() const noexcept { return sequence_.size(); }
  bool empty() const noexcept { return sequence_.empty(); }

  /// Monoisotopic neutral mass (residues + water).
  double neutral_mass() const;

  /// m/z of the [M + zH]^z+ precursor ion.
  double precursor_mz(int charge) const;

  friend bool operator==(const peptide&, const peptide&) = default;

private:
  std::string sequence_;
};

/// Theoretical fragment ion.
struct fragment_ion {
  enum class series : std::uint8_t { b, y };
  series kind = series::b;
  int index = 0;    ///< 1-based position within the series
  double mz = 0.0;  ///< singly protonated fragment m/z
};

/// Singly-charged b- and y-ion series for `p` (the dominant HCD fragments).
/// Returned sorted by ascending m/z.
std::vector<fragment_ion> b_y_ions(const peptide& p);

/// Renders a theoretical spectrum for (peptide, charge): b/y ions with a
/// simple intensity model (y ions stronger than b, mid-sequence fragments
/// stronger than termini). Deterministic.
spectrum theoretical_spectrum(const peptide& p, int charge);

/// Trypsin digestion: cleaves C-terminal to K/R except when followed by P.
/// Emits peptides with up to `missed_cleavages` internal missed cleavage
/// sites whose length falls in [min_length, max_length].
std::vector<peptide> tryptic_digest(std::string_view protein,
                                    int missed_cleavages = 0,
                                    std::size_t min_length = 6,
                                    std::size_t max_length = 40);

}  // namespace spechd::ms
