#include "ms/peptide.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace spechd::ms {

namespace {

// Monoisotopic residue masses (Da), standard values (Unimod / ProteoWizard).
constexpr double k_invalid = -1.0;

constexpr std::array<double, 26> make_residue_table() {
  std::array<double, 26> t{};
  for (auto& v : t) v = k_invalid;
  t['A' - 'A'] = 71.03711381;
  t['C' - 'A'] = 103.00918496;  // unmodified cysteine
  t['D' - 'A'] = 115.02694302;
  t['E' - 'A'] = 129.04259309;
  t['F' - 'A'] = 147.06841391;
  t['G' - 'A'] = 57.02146374;
  t['H' - 'A'] = 137.05891186;
  t['I' - 'A'] = 113.08406398;
  t['K' - 'A'] = 128.09496302;
  t['L' - 'A'] = 113.08406398;
  t['M' - 'A'] = 131.04048509;
  t['N' - 'A'] = 114.04292744;
  t['P' - 'A'] = 97.05276385;
  t['Q' - 'A'] = 128.05857751;
  t['R' - 'A'] = 156.10111102;
  t['S' - 'A'] = 87.03202841;
  t['T' - 'A'] = 101.04767847;
  t['V' - 'A'] = 99.06841391;
  t['W' - 'A'] = 186.07931295;
  t['Y' - 'A'] = 163.06332853;
  return t;
}

constexpr auto k_residue_masses = make_residue_table();

}  // namespace

bool is_residue(char aa) noexcept {
  return aa >= 'A' && aa <= 'Z' && k_residue_masses[aa - 'A'] != k_invalid;
}

double residue_mass(char aa) {
  if (!is_residue(aa)) {
    throw logic_error(std::string("not an amino acid residue: '") + aa + "'");
  }
  return k_residue_masses[aa - 'A'];
}

std::string_view canonical_residues() noexcept { return "ACDEFGHIKLMNPQRSTVWY"; }

peptide::peptide(std::string sequence) : sequence_(std::move(sequence)) {
  for (char c : sequence_) {
    if (!is_residue(c)) {
      throw logic_error(std::string("invalid residue '") + c + "' in peptide " + sequence_);
    }
  }
}

double peptide::neutral_mass() const {
  double m = water_mass;
  for (char c : sequence_) m += k_residue_masses[c - 'A'];
  return m;
}

double peptide::precursor_mz(int charge) const {
  SPECHD_EXPECTS(charge >= 1);
  return (neutral_mass() + charge * proton_mass) / charge;
}

std::vector<fragment_ion> b_y_ions(const peptide& p) {
  const std::string& seq = p.sequence();
  std::vector<fragment_ion> ions;
  if (seq.size() < 2) return ions;
  ions.reserve(2 * (seq.size() - 1));

  // Prefix sums of residue masses.
  double prefix = 0.0;
  const double total = p.neutral_mass() - water_mass;  // sum of residues
  for (std::size_t i = 0; i + 1 < seq.size(); ++i) {
    prefix += k_residue_masses[seq[i] - 'A'];
    const int idx = static_cast<int>(i) + 1;
    // b_i = prefix + proton; y_i = suffix + water + proton.
    ions.push_back({fragment_ion::series::b, idx, prefix + proton_mass});
    const double suffix = total - prefix;
    ions.push_back({fragment_ion::series::y, static_cast<int>(seq.size()) - idx,
                    suffix + water_mass + proton_mass});
  }
  std::sort(ions.begin(), ions.end(),
            [](const fragment_ion& a, const fragment_ion& b) { return a.mz < b.mz; });
  return ions;
}

spectrum theoretical_spectrum(const peptide& p, int charge) {
  SPECHD_EXPECTS(charge >= 1);
  spectrum s;
  s.title = p.sequence();
  s.precursor_charge = charge;
  s.precursor_mz = p.precursor_mz(charge);

  const auto ions = b_y_ions(p);
  const double n = static_cast<double>(p.length());
  s.peaks.reserve(ions.size());
  for (const auto& ion : ions) {
    // Simple deterministic intensity model: y ions ~2x b ions, and a
    // triangular profile peaking mid-sequence (mirrors observed HCD trends).
    const double frac = static_cast<double>(ion.index) / n;
    const double positional = 1.0 - std::abs(frac - 0.5);
    const double series_weight = ion.kind == fragment_ion::series::y ? 2.0 : 1.0;
    s.peaks.push_back({ion.mz, static_cast<float>(100.0 * series_weight * positional)});
  }
  sort_peaks(s);
  return s;
}

std::vector<peptide> tryptic_digest(std::string_view protein, int missed_cleavages,
                                    std::size_t min_length, std::size_t max_length) {
  SPECHD_EXPECTS(missed_cleavages >= 0);
  // Find cleavage boundaries: after K/R not followed by P.
  std::vector<std::size_t> starts{0};
  for (std::size_t i = 0; i + 1 < protein.size(); ++i) {
    const char c = protein[i];
    if ((c == 'K' || c == 'R') && protein[i + 1] != 'P') {
      starts.push_back(i + 1);
    }
  }
  starts.push_back(protein.size());

  std::vector<peptide> result;
  const std::size_t segments = starts.size() - 1;
  for (std::size_t seg = 0; seg < segments; ++seg) {
    for (int mc = 0; mc <= missed_cleavages; ++mc) {
      const std::size_t last = seg + static_cast<std::size_t>(mc);
      if (last >= segments) break;
      const std::size_t begin = starts[seg];
      const std::size_t end = starts[last + 1];
      const std::size_t len = end - begin;
      if (len < min_length || len > max_length) continue;
      std::string_view seq = protein.substr(begin, len);
      // Skip peptides containing non-residue characters (e.g. X in FASTA).
      if (std::all_of(seq.begin(), seq.end(), [](char c) { return is_residue(c); })) {
        result.emplace_back(std::string(seq));
      }
    }
  }
  return result;
}

}  // namespace spechd::ms
