// Flat binary serialization of ms::spectrum — the one wire layout shared
// by the journal (.sphjrnl ingest-batch records) and the network
// protocol's ingest/query messages, so a batch that went over the wire is
// byte-identical to the same batch journaled locally.
//
// Layout per spectrum (little-endian, see util/endian.hpp):
//
//   u32 title_len, title bytes
//   i32 scan, f64 precursor_mz, i32 precursor_charge, f64 retention_time,
//   i32 label, u64 peak_count, then per peak: f64 mz, f32 intensity
//
// Writers compute the exact size first (`spectrum_wire_bytes`) and write
// through a raw-pointer cursor into a pre-sized buffer — this runs on the
// ingest hot path (one journal record per applied batch), where even
// string::append bookkeeping per field is measurable. Readers are
// bounds-checked against the buffer and *report* failure instead of
// throwing: a short read is a torn journal tail or a malformed frame, and
// both callers classify it themselves.
#pragma once

#include <cstddef>
#include <cstring>

#include "ms/spectrum.hpp"

namespace spechd::ms {

/// Bounds-checked read cursor over a byte buffer. Running off the end is
/// reported, not thrown (torn journal tails are expected; malformed
/// network frames get a typed error response).
struct byte_cursor {
  const char* data;
  std::size_t size;
  std::size_t pos = 0;

  template <typename T>
  bool read(T& v) {
    if (size - pos < sizeof(T)) return false;
    std::memcpy(&v, data + pos, sizeof(T));
    pos += sizeof(T);
    return true;
  }

  bool read_bytes(void* out, std::size_t n) {
    if (size - pos < n) return false;
    std::memcpy(out, data + pos, n);
    pos += n;
    return true;
  }
};

/// Raw-pointer write cursor into an exactly-pre-sized buffer; the caller
/// sizes the buffer with the `*_wire_bytes` functions first.
struct wire_cursor {
  char* p;

  template <typename T>
  void put(const T& v) {
    std::memcpy(p, &v, sizeof(T));
    p += sizeof(T);
  }

  void put_bytes(const void* data, std::size_t n) {
    std::memcpy(p, data, n);
    p += n;
  }
};

/// Exact serialized size of one spectrum.
std::size_t spectrum_wire_bytes(const spectrum& s);

/// Writes `s` at the cursor (which must have `spectrum_wire_bytes(s)`
/// remaining).
void write_spectrum(wire_cursor& out, const spectrum& s);

/// Reads one spectrum; false when the buffer ends mid-spectrum or a
/// length field is inconsistent with the remaining bytes (corrupt/torn —
/// never allocates based on an unvalidated length).
bool read_spectrum(byte_cursor& in, spectrum& s);

}  // namespace spechd::ms
