// Descriptors for the paper's evaluation datasets (Table I).
//
// The raw PRIDE archives are terabyte-scale and not available offline, so
// runtime/energy models consume these published descriptors (spectrum
// counts, on-disk size) while quality experiments use the synthetic
// generator. Each descriptor also carries the paper's reported
// preprocessing time/energy so benches can print paper-vs-model columns.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace spechd::ms {

/// One evaluation dataset from Table I of the paper.
struct dataset_descriptor {
  std::string_view sample_type;   ///< biological sample
  std::string_view pride_id;      ///< PRIDE accession
  std::uint64_t spectra;          ///< number of MS/MS spectra
  double size_gb;                 ///< raw file size in GB
  double paper_pp_time_s;         ///< Table I "PP Time(s)"
  double paper_pp_energy_j;       ///< Table I "Energy(J)"
  double avg_peaks_per_spectrum;  ///< estimated from size/spectra ratio
};

/// The five Table I datasets, in paper order.
constexpr std::array<dataset_descriptor, 5> paper_datasets() {
  // avg peaks estimated as: raw bytes per spectrum / 12 bytes per peak,
  // clamped to typical HCD peak counts (profile data inflates file size,
  // hence the cap at 3000).
  return {{
      {"Kidney cell", "PXD001468", 1'100'000, 5.6, 1.79, 17.38, 424},
      {"Kidney cell", "PXD001197", 1'100'000, 25.0, 8.22, 77.27, 1894},
      {"HeLa proteins", "PXD003258", 4'100'000, 54.0, 18.44, 166.53, 1097},
      {"HEK293 cell", "PXD001511", 4'200'000, 87.0, 28.53, 268.22, 1726},
      {"Human proteome", "PXD000561", 21'100'000, 131.0, 43.38, 382.62, 517},
  }};
}

/// Paper-reported end-to-end runtime anchors for Fig. 7 / Fig. 8 (seconds).
/// HyperSpec-HAC standalone clustering on PXD000561 took 1000 s vs SpecHD's
/// 80 s (Sec. IV-C); end-to-end speedups span 6x (HyperSpec) to 54x (GLEAMS).
struct speedup_anchor {
  std::string_view tool;
  double end_to_end_speedup_min;  ///< over SpecHD = 1 (paper range, small datasets)
  double end_to_end_speedup_max;  ///< paper range, large datasets
};

constexpr std::array<speedup_anchor, 4> paper_speedup_anchors() {
  return {{
      {"HyperSpec-HAC", 6.0, 6.0},
      {"GLEAMS", 31.0, 54.0},
      {"msCRUSH", 10.0, 25.0},
      {"Falcon", 15.0, 40.0},
  }};
}

}  // namespace spechd::ms
