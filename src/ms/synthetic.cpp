#include "ms/synthetic.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace spechd::ms {

namespace {

// Residue frequencies approximating the human proteome (UniProt statistics),
// scaled to integer weights for cheap sampling. Order matches
// canonical_residues() = "ACDEFGHIKLMNPQRSTVWY".
constexpr std::array<int, 20> k_residue_weights = {
    70, 23, 47, 71, 36, 66, 26, 43, 57, 100, 21, 36, 63, 48, 56, 83, 53, 60, 12, 27};

char sample_residue(xoshiro256ss& rng, bool terminal) {
  if (terminal) {
    // Tryptic peptides end in K or R (~55% K in practice).
    return rng.bernoulli(0.55) ? 'K' : 'R';
  }
  int total = 0;
  for (int w : k_residue_weights) total += w;
  auto pick = static_cast<int>(rng.bounded(static_cast<std::uint64_t>(total)));
  const auto residues = canonical_residues();
  for (std::size_t i = 0; i < residues.size(); ++i) {
    pick -= k_residue_weights[i];
    if (pick < 0) {
      char c = residues[i];
      // Avoid internal K/R (they would have been cleaved) and P after
      // nothing — keep it simple: internal K/R are re-drawn as L/S.
      if (c == 'K') return 'L';
      if (c == 'R') return 'S';
      return c;
    }
  }
  return 'L';
}

std::size_t sample_poisson(xoshiro256ss& rng, double mean) {
  if (mean <= 0.0) return 0;
  // Knuth's method; fine for the small means used here.
  const double limit = std::exp(-mean);
  std::size_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= rng.uniform();
  } while (p > limit);
  return k - 1;
}

}  // namespace

std::vector<peptide> random_peptide_library(const synthetic_config& config) {
  SPECHD_EXPECTS(config.min_peptide_length >= 2);
  SPECHD_EXPECTS(config.max_peptide_length >= config.min_peptide_length);
  xoshiro256ss rng(config.seed ^ 0xA5A5A5A5DEADBEEFULL);

  std::vector<peptide> library;
  library.reserve(config.peptide_count);
  while (library.size() < config.peptide_count) {
    const std::size_t len =
        config.min_peptide_length +
        rng.bounded(config.max_peptide_length - config.min_peptide_length + 1);
    std::string seq;
    seq.reserve(len);
    for (std::size_t i = 0; i + 1 < len; ++i) seq += sample_residue(rng, false);
    seq += sample_residue(rng, true);
    peptide p(seq);
    // Keep precursors inside the acquisition window for charge 2 and the
    // neutral mass inside the optional packing window.
    const double mz2 = p.precursor_mz(2);
    if (mz2 < config.mz_min || mz2 > config.mz_max) continue;
    if (config.peptide_mass_min > 0.0 && p.neutral_mass() < config.peptide_mass_min) {
      continue;
    }
    if (config.peptide_mass_max > 0.0 && p.neutral_mass() > config.peptide_mass_max) {
      continue;
    }
    library.push_back(std::move(p));
  }
  return library;
}

spectrum noisy_replicate(const peptide& p, int charge, const synthetic_config& config,
                         std::uint64_t replicate_seed) {
  xoshiro256ss rng(replicate_seed);
  spectrum base = theoretical_spectrum(p, charge);

  spectrum out;
  out.precursor_charge = charge;
  out.precursor_mz =
      base.precursor_mz *
      (1.0 + rng.normal(0.0, config.precursor_mz_sigma_ppm * 1e-6));
  out.retention_time = rng.uniform(0.0, 7200.0);

  out.peaks.reserve(base.peaks.size());
  float max_intensity = 0.0F;
  for (const auto& pk : base.peaks) {
    if (rng.bernoulli(config.peak_dropout)) continue;
    const double mz =
        pk.mz * (1.0 + rng.normal(0.0, config.fragment_mz_sigma_ppm * 1e-6));
    if (mz < config.mz_min || mz > config.mz_max) continue;
    const double scale = std::exp(rng.normal(0.0, config.intensity_sigma));
    const auto intensity = static_cast<float>(pk.intensity * scale);
    max_intensity = std::max(max_intensity, intensity);
    out.peaks.push_back({mz, intensity});
  }

  // Additive chemical noise: uniform m/z, low intensity.
  const std::size_t noise_count = sample_poisson(rng, config.noise_peaks_per_spectrum);
  const float noise_cap = std::max(
      1.0F, static_cast<float>(max_intensity * config.noise_intensity_fraction));
  for (std::size_t i = 0; i < noise_count; ++i) {
    out.peaks.push_back(
        {rng.uniform(config.mz_min, config.mz_max),
         static_cast<float>(rng.uniform(0.5, 1.0) * noise_cap)});
  }
  sort_peaks(out);
  return out;
}

labelled_dataset generate_dataset(const synthetic_config& config) {
  labelled_dataset ds;
  ds.library = random_peptide_library(config);
  xoshiro256ss rng(config.seed);

  std::uint32_t scan = 0;
  for (std::size_t label = 0; label < ds.library.size(); ++label) {
    const peptide& p = ds.library[label];
    const std::size_t replicates =
        1 + sample_poisson(rng, std::max(0.0, config.spectra_per_peptide_mean - 1.0));
    // One charge state per peptide class dominates in practice; draw once
    // and let a small fraction of replicates flip (charge mis-assignment).
    const int main_charge = rng.bernoulli(config.charge2_fraction) ? 2 : 3;
    for (std::size_t r = 0; r < replicates; ++r) {
      int charge = main_charge;
      if (rng.bernoulli(0.02)) charge = main_charge == 2 ? 3 : 2;
      const std::uint64_t rep_seed = (config.seed * 0x9E3779B97F4A7C15ULL) ^
                                     (static_cast<std::uint64_t>(label) << 20) ^ r;
      spectrum s = noisy_replicate(p, charge, config, rep_seed);
      s.label = static_cast<std::int32_t>(label);
      s.scan = ++scan;
      s.title = "synthetic:" + p.sequence() + "/" + std::to_string(charge) +
                ":rep" + std::to_string(r);
      ds.spectra.push_back(std::move(s));
    }
  }

  // Unlabelled pure-noise spectra (decoy "junk scans").
  const auto junk_count = static_cast<std::size_t>(
      config.unlabelled_fraction * static_cast<double>(ds.spectra.size()));
  for (std::size_t i = 0; i < junk_count; ++i) {
    spectrum s;
    s.precursor_charge = rng.bernoulli(config.charge2_fraction) ? 2 : 3;
    s.precursor_mz = rng.uniform(config.mz_min, config.mz_max);
    const std::size_t peaks = 20 + sample_poisson(rng, 40.0);
    for (std::size_t k = 0; k < peaks; ++k) {
      s.peaks.push_back({rng.uniform(config.mz_min, config.mz_max),
                         static_cast<float>(rng.uniform(1.0, 100.0))});
    }
    sort_peaks(s);
    s.label = unlabelled;
    s.scan = ++scan;
    s.title = "synthetic:noise:" + std::to_string(i);
    ds.spectra.push_back(std::move(s));
  }

  // Shuffle so labels are not contiguous (clustering must not rely on order).
  for (std::size_t i = ds.spectra.size(); i > 1; --i) {
    const std::size_t j = rng.bounded(i);
    std::swap(ds.spectra[i - 1], ds.spectra[j]);
  }
  return ds;
}

}  // namespace spechd::ms
