#include "ms/fasta.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <ostream>
#include <set>
#include <sstream>

#include "util/error.hpp"

namespace spechd::ms {

std::vector<fasta_entry> read_fasta(std::istream& in, const std::string& source_name) {
  std::vector<fasta_entry> entries;
  std::string line;
  std::size_t line_no = 0;
  fasta_entry current;
  bool active = false;

  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '>') {
      if (active) entries.push_back(std::move(current));
      current = fasta_entry{};
      current.header = line.substr(1);
      active = true;
      continue;
    }
    if (line[0] == ';') continue;  // legacy comment lines
    if (!active) {
      throw parse_error(source_name, line_no, "sequence data before first '>' header");
    }
    for (const char c : line) {
      if (std::isspace(static_cast<unsigned char>(c)) || c == '*') continue;
      current.sequence += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
  }
  if (active) entries.push_back(std::move(current));
  return entries;
}

std::vector<fasta_entry> read_fasta_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw io_error("cannot open FASTA file: " + path);
  return read_fasta(in, path);
}

void write_fasta(std::ostream& out, const std::vector<fasta_entry>& entries,
                 std::size_t line_width) {
  SPECHD_EXPECTS(line_width > 0);
  for (const auto& e : entries) {
    out << '>' << e.header << '\n';
    for (std::size_t pos = 0; pos < e.sequence.size(); pos += line_width) {
      out << e.sequence.substr(pos, line_width) << '\n';
    }
  }
}

void write_fasta_file(const std::string& path, const std::vector<fasta_entry>& entries) {
  std::ofstream out(path);
  if (!out) throw io_error("cannot create FASTA file: " + path);
  write_fasta(out, entries);
  if (!out) throw io_error("write failure on FASTA file: " + path);
}

std::vector<peptide> library_from_fasta(const std::vector<fasta_entry>& entries,
                                        int missed_cleavages, std::size_t min_length,
                                        std::size_t max_length) {
  std::set<std::string> unique;
  for (const auto& e : entries) {
    for (auto& p : tryptic_digest(e.sequence, missed_cleavages, min_length, max_length)) {
      unique.insert(p.sequence());
    }
  }
  std::vector<peptide> library;
  library.reserve(unique.size());
  for (const auto& seq : unique) library.emplace_back(seq);
  return library;
}

}  // namespace spechd::ms
