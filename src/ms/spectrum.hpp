// Core MS/MS spectrum data model.
//
// A spectrum is the digital product of one MS2 scan: a precursor
// (mass-to-charge ratio + charge state) and a peak list of fragment
// (m/z, intensity) pairs. This mirrors the content of MGF/MS2/mzML records
// (Sec. II-A of the paper) and is the input to the preprocessing module.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace spechd::ms {

/// Mass of a proton in Da; the paper's Eq. (1) uses 1.00794 (the standard
/// atomic weight of hydrogen) as "the mass of the charge", so we keep both.
inline constexpr double proton_mass = 1.007276466812;
inline constexpr double hydrogen_mass = 1.00794;  // value used in Eq. (1)
inline constexpr double water_mass = 18.0105646863;

/// One fragment peak.
struct peak {
  double mz = 0.0;
  float intensity = 0.0F;

  friend constexpr bool operator==(const peak&, const peak&) = default;
};

/// Ground-truth label value for "unknown" (real data / noise spectra).
inline constexpr std::int32_t unlabelled = -1;

/// A single MS/MS spectrum.
///
/// Invariant maintained by the library: peaks sorted by ascending m/z
/// (enforce with sort_peaks; parsers call it on ingest).
struct spectrum {
  std::string title;             ///< native id / MGF TITLE
  std::uint32_t scan = 0;        ///< scan number where known
  double precursor_mz = 0.0;     ///< precursor m/z in Th
  int precursor_charge = 0;      ///< charge state (0 = unknown)
  double retention_time = 0.0;   ///< seconds; 0 when absent
  std::vector<peak> peaks;       ///< fragment peaks, ascending m/z
  std::int32_t label = unlabelled;  ///< ground-truth peptide index (synthetic)

  std::size_t size() const noexcept { return peaks.size(); }
  bool empty() const noexcept { return peaks.empty(); }

  /// Neutral (uncharged) precursor mass in Da; 0 if charge unknown.
  double precursor_neutral_mass() const noexcept {
    if (precursor_charge <= 0) return 0.0;
    return (precursor_mz - proton_mass) * precursor_charge;
  }
};

/// Highest-intensity peak value; 0 for an empty spectrum.
float base_peak_intensity(const spectrum& s) noexcept;

/// Total ion current (sum of intensities).
double total_ion_current(const spectrum& s) noexcept;

/// Sorts peaks ascending by m/z (stable on intensity for equal m/z).
void sort_peaks(spectrum& s);

/// True if peaks are sorted ascending by m/z.
bool peaks_sorted(const spectrum& s) noexcept;

/// Approximate in-memory footprint in bytes of the raw peak list
/// (used by the compression-factor analysis, Fig. 6b: each peak is an
/// (m/z, intensity) pair as stored in the profile formats).
std::size_t raw_peak_bytes(const spectrum& s) noexcept;

/// Cosine similarity between two spectra after binning fragment m/z into
/// `bin_width`-sized bins (the classic spectral dot product used by the
/// simulated database search and several baseline tools). Returns [0, 1].
double binned_cosine(const spectrum& a, const spectrum& b, double bin_width);

}  // namespace spechd::ms
