#include "ms/mzml.hpp"

#include <algorithm>
#include <bit>
#include <charconv>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <map>
#include <ostream>
#include <sstream>

#include "ms/base64.hpp"
#include "ms/xml_scan.hpp"
#include "util/error.hpp"

namespace spechd::ms {

namespace {

// Binary data array decoding state.
struct binary_array {
  enum class role { unknown, mz, intensity };
  role kind = role::unknown;
  bool is_64bit = true;
  bool compressed = false;
  std::vector<double> values;
};

std::vector<double> decode_floats(const std::vector<std::uint8_t>& bytes, bool is_64bit,
                                  const std::string& source) {
  std::vector<double> out;
  if (is_64bit) {
    if (bytes.size() % sizeof(double) != 0) {
      throw parse_error(source, 0, "binary array size not a multiple of 8");
    }
    out.resize(bytes.size() / sizeof(double));
    std::memcpy(out.data(), bytes.data(), bytes.size());
  } else {
    if (bytes.size() % sizeof(float) != 0) {
      throw parse_error(source, 0, "binary array size not a multiple of 4");
    }
    out.reserve(bytes.size() / sizeof(float));
    for (std::size_t i = 0; i < bytes.size(); i += sizeof(float)) {
      float f = 0.0F;
      std::memcpy(&f, bytes.data() + i, sizeof(float));
      out.push_back(f);
    }
  }
  return out;
}

}  // namespace

std::vector<spectrum> read_mzml(std::istream& in, const std::string& source_name) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  xml_scanner scanner(buffer.str(), source_name);

  std::vector<spectrum> result;
  spectrum current;
  int ms_level = 2;
  bool in_spectrum = false;
  binary_array array;
  bool in_binary_array = false;
  std::string binary_payload;
  bool in_binary_element = false;
  std::vector<double> mz_values;
  std::vector<double> intensity_values;

  auto finish_spectrum = [&] {
    if (ms_level != 2) return;
    const std::size_t n = std::min(mz_values.size(), intensity_values.size());
    current.peaks.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      current.peaks.push_back({mz_values[i], static_cast<float>(intensity_values[i])});
    }
    sort_peaks(current);
    result.push_back(std::move(current));
  };

  for (;;) {
    xml_event ev = scanner.next();
    if (ev.type == xml_event::kind::eof) break;

    switch (ev.type) {
      case xml_event::kind::start:
      case xml_event::kind::empty: {
        if (ev.name == "spectrum") {
          current = spectrum{};
          ms_level = 2;
          mz_values.clear();
          intensity_values.clear();
          in_spectrum = true;
          if (auto it = ev.attributes.find("id"); it != ev.attributes.end()) {
            current.title = it->second;
            // Conventional id form: "... scan=N".
            if (const auto p = it->second.rfind("scan="); p != std::string::npos) {
              current.scan = static_cast<std::uint32_t>(
                  std::strtoul(it->second.c_str() + p + 5, nullptr, 10));
            }
          }
          if (ev.type == xml_event::kind::empty) in_spectrum = false;
        } else if (ev.name == "binaryDataArray" && in_spectrum) {
          array = binary_array{};
          binary_payload.clear();
          in_binary_array = true;
        } else if (ev.name == "binary" && in_binary_array) {
          in_binary_element = ev.type == xml_event::kind::start;
        } else if (ev.name == "cvParam" && in_spectrum) {
          const auto acc = ev.attributes.find("accession");
          if (acc == ev.attributes.end()) break;
          const std::string& a = acc->second;
          if (a == "MS:1000511") {  // ms level
            ms_level = static_cast<int>(xml_attr_double(ev, "value", 2));
          } else if (a == "MS:1000744") {  // selected ion m/z
            current.precursor_mz = xml_attr_double(ev, "value", 0.0);
          } else if (a == "MS:1000041") {  // charge state
            current.precursor_charge = static_cast<int>(xml_attr_double(ev, "value", 0));
          } else if (a == "MS:1000016") {  // scan start time
            double rt = xml_attr_double(ev, "value", 0.0);
            const auto unit = ev.attributes.find("unitName");
            if (unit != ev.attributes.end() && unit->second == "minute") rt *= 60.0;
            current.retention_time = rt;
          } else if (in_binary_array) {
            if (a == "MS:1000514") array.kind = binary_array::role::mz;
            else if (a == "MS:1000515") array.kind = binary_array::role::intensity;
            else if (a == "MS:1000523") array.is_64bit = true;
            else if (a == "MS:1000521") array.is_64bit = false;
            else if (a == "MS:1000574") array.compressed = true;  // zlib
            else if (a == "MS:1000576") array.compressed = false;
          }
        }
        break;
      }
      case xml_event::kind::end: {
        if (ev.name == "spectrum" && in_spectrum) {
          finish_spectrum();
          in_spectrum = false;
        } else if (ev.name == "binary") {
          in_binary_element = false;
        } else if (ev.name == "binaryDataArray" && in_binary_array) {
          in_binary_array = false;
          if (array.compressed) {
            throw parse_error(source_name, 0,
                              "zlib-compressed binary arrays are not supported");
          }
          if (array.kind != binary_array::role::unknown && !binary_payload.empty()) {
            const auto bytes = base64_decode(binary_payload);
            auto values = decode_floats(bytes, array.is_64bit, source_name);
            if (array.kind == binary_array::role::mz) {
              mz_values = std::move(values);
            } else {
              intensity_values = std::move(values);
            }
          }
        }
        break;
      }
      case xml_event::kind::text: {
        if (in_binary_element) binary_payload += ev.text;
        break;
      }
      case xml_event::kind::eof:
        break;
    }
  }
  return result;
}

std::vector<spectrum> read_mzml_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw io_error("cannot open mzML file: " + path);
  return read_mzml(in, path);
}

void write_mzml(std::ostream& out, const std::vector<spectrum>& spectra) {
  out << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
      << "<mzML xmlns=\"http://psi.hupo.org/ms/mzml\" version=\"1.1.0\">\n"
      << "  <run id=\"spechd\">\n"
      << "    <spectrumList count=\"" << spectra.size() << "\">\n";

  for (std::size_t idx = 0; idx < spectra.size(); ++idx) {
    const spectrum& s = spectra[idx];

    std::vector<std::uint8_t> mz_bytes(s.peaks.size() * sizeof(double));
    std::vector<std::uint8_t> int_bytes(s.peaks.size() * sizeof(float));
    for (std::size_t i = 0; i < s.peaks.size(); ++i) {
      std::memcpy(mz_bytes.data() + i * sizeof(double), &s.peaks[i].mz, sizeof(double));
      std::memcpy(int_bytes.data() + i * sizeof(float), &s.peaks[i].intensity,
                  sizeof(float));
    }

    std::string id = s.title.empty()
                         ? "scan=" + std::to_string(s.scan != 0 ? s.scan : idx + 1)
                         : s.title;
    out << "      <spectrum index=\"" << idx << "\" id=\"" << id
        << "\" defaultArrayLength=\"" << s.peaks.size() << "\">\n"
        << "        <cvParam accession=\"MS:1000511\" name=\"ms level\" value=\"2\"/>\n";
    if (s.retention_time > 0.0) {
      out << "        <cvParam accession=\"MS:1000016\" name=\"scan start time\" value=\""
          << std::setprecision(10) << s.retention_time
          << "\" unitName=\"second\"/>\n";
    }
    out << "        <precursorList count=\"1\"><precursor><selectedIonList count=\"1\">"
        << "<selectedIon>\n"
        << "          <cvParam accession=\"MS:1000744\" name=\"selected ion m/z\" value=\""
        << std::setprecision(12) << s.precursor_mz << "\"/>\n";
    if (s.precursor_charge > 0) {
      out << "          <cvParam accession=\"MS:1000041\" name=\"charge state\" value=\""
          << s.precursor_charge << "\"/>\n";
    }
    out << "        </selectedIon></selectedIonList></precursor></precursorList>\n"
        << "        <binaryDataArrayList count=\"2\">\n"
        << "          <binaryDataArray>\n"
        << "            <cvParam accession=\"MS:1000523\" name=\"64-bit float\"/>\n"
        << "            <cvParam accession=\"MS:1000576\" name=\"no compression\"/>\n"
        << "            <cvParam accession=\"MS:1000514\" name=\"m/z array\"/>\n"
        << "            <binary>" << base64_encode(mz_bytes) << "</binary>\n"
        << "          </binaryDataArray>\n"
        << "          <binaryDataArray>\n"
        << "            <cvParam accession=\"MS:1000521\" name=\"32-bit float\"/>\n"
        << "            <cvParam accession=\"MS:1000576\" name=\"no compression\"/>\n"
        << "            <cvParam accession=\"MS:1000515\" name=\"intensity array\"/>\n"
        << "            <binary>" << base64_encode(int_bytes) << "</binary>\n"
        << "          </binaryDataArray>\n"
        << "        </binaryDataArrayList>\n"
        << "      </spectrum>\n";
  }
  out << "    </spectrumList>\n  </run>\n</mzML>\n";
}

void write_mzml_file(const std::string& path, const std::vector<spectrum>& spectra) {
  std::ofstream out(path);
  if (!out) throw io_error("cannot create mzML file: " + path);
  write_mzml(out, spectra);
  if (!out) throw io_error("write failure on mzML file: " + path);
}

}  // namespace spechd::ms
