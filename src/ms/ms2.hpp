// MS2 format reader/writer.
//
// MS2 (McDonald et al. 2004) is the line-oriented format produced by RAWXtract:
//   H  <header records>
//   S  <scan-first> <scan-last> <precursor m/z>
//   I  <key> <value>            (per-scan info, e.g. RTime)
//   Z  <charge> <neutral M+H mass>
//   <mz> <intensity> peak lines
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "ms/spectrum.hpp"

namespace spechd::ms {

std::vector<spectrum> read_ms2(std::istream& in, const std::string& source_name = "<ms2>");
std::vector<spectrum> read_ms2_file(const std::string& path);

void write_ms2(std::ostream& out, const std::vector<spectrum>& spectra);
void write_ms2_file(const std::string& path, const std::vector<spectrum>& spectra);

}  // namespace spechd::ms
