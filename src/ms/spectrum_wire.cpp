#include "ms/spectrum_wire.hpp"

#include <cstdint>

namespace spechd::ms {

std::size_t spectrum_wire_bytes(const spectrum& s) {
  return sizeof(std::uint32_t) + s.title.size() + sizeof(std::uint32_t) +
         2 * sizeof(double) + 2 * sizeof(std::int32_t) + sizeof(std::uint64_t) +
         s.peaks.size() * (sizeof(double) + sizeof(float));
}

void write_spectrum(wire_cursor& out, const spectrum& s) {
  out.put(static_cast<std::uint32_t>(s.title.size()));
  out.put_bytes(s.title.data(), s.title.size());
  out.put(s.scan);
  out.put(s.precursor_mz);
  out.put(static_cast<std::int32_t>(s.precursor_charge));
  out.put(s.retention_time);
  out.put(s.label);
  out.put(static_cast<std::uint64_t>(s.peaks.size()));
  for (const auto& p : s.peaks) {
    out.put(p.mz);
    out.put(p.intensity);
  }
}

bool read_spectrum(byte_cursor& in, spectrum& s) {
  std::uint32_t title_len = 0;
  if (!in.read(title_len)) return false;
  // Bound-check *before* resizing: a crafted/corrupt length must not
  // drive a multi-GiB allocation (bad_alloc would escape the torn-tail /
  // malformed-frame handling entirely).
  if (title_len > in.size - in.pos) return false;
  s.title.resize(title_len);
  if (!in.read_bytes(s.title.data(), title_len)) return false;
  std::int32_t charge = 0;
  std::uint64_t peak_count = 0;
  if (!in.read(s.scan) || !in.read(s.precursor_mz) || !in.read(charge) ||
      !in.read(s.retention_time) || !in.read(s.label) || !in.read(peak_count)) {
    return false;
  }
  s.precursor_charge = charge;
  if (peak_count > (in.size - in.pos) / (sizeof(double) + sizeof(float))) return false;
  s.peaks.resize(peak_count);
  for (auto& p : s.peaks) {
    if (!in.read(p.mz) || !in.read(p.intensity)) return false;
  }
  return true;
}

}  // namespace spechd::ms
