// Synthetic proteomics dataset generator with ground-truth labels.
//
// The paper evaluates on PRIDE repository datasets (Table I) whose raw files
// are 5.6–131 GB and unavailable offline. For clustering-quality experiments
// we need ground truth anyway (the paper derives it from an MSGF+ reanalysis);
// a synthetic generator gives us exact labels: each spectrum is a noisy
// replicate of a known peptide's theoretical spectrum. The noise model
// follows the standard corruption sources in MS/MS acquisition:
//   * fragment m/z jitter (instrument mass error, ppm-scale),
//   * multiplicative intensity noise,
//   * peak dropout (fragmentation inefficiency),
//   * additive chemical-noise peaks,
//   * precursor m/z jitter and occasional charge mis-assignment.
#pragma once

#include <cstdint>
#include <vector>

#include "ms/peptide.hpp"
#include "ms/spectrum.hpp"

namespace spechd::ms {

/// Parameters of the synthetic generator. Defaults produce "typical HCD"
/// difficulty: clusterable but not trivial.
struct synthetic_config {
  std::size_t peptide_count = 200;          ///< distinct ground-truth classes
  double spectra_per_peptide_mean = 10.0;   ///< replicate count ~ 1 + Poisson(mean-1)
  std::size_t min_peptide_length = 7;
  std::size_t max_peptide_length = 25;
  double charge2_fraction = 0.7;            ///< P(charge 2+); remainder 3+
  double fragment_mz_sigma_ppm = 10.0;      ///< m/z jitter, ppm of fragment m/z
  double precursor_mz_sigma_ppm = 5.0;      ///< precursor jitter
  double intensity_sigma = 0.25;            ///< lognormal-ish multiplicative noise
  double peak_dropout = 0.15;               ///< P(drop a theoretical fragment)
  double noise_peaks_per_spectrum = 15.0;   ///< mean count of chemical-noise peaks
  double noise_intensity_fraction = 0.15;   ///< noise peak intensity cap vs base peak
  double unlabelled_fraction = 0.0;         ///< extra pure-noise spectra (label = -1)
  double mz_min = 200.0;                    ///< acquisition window
  double mz_max = 2000.0;
  /// Neutral-mass window for generated peptides. Narrowing it packs many
  /// peptides into the same precursor buckets (near-isobaric confusable
  /// classes) — the regime where clustering quality metrics differentiate
  /// tools. 0 = derive from the acquisition window (wide).
  double peptide_mass_min = 0.0;
  double peptide_mass_max = 0.0;
  std::uint64_t seed = 42;
};

/// A generated dataset: spectra plus the peptide library indexed by label.
struct labelled_dataset {
  std::vector<spectrum> spectra;
  std::vector<peptide> library;  ///< library[label] generated spectrum `label`

  std::size_t size() const noexcept { return spectra.size(); }
};

/// Draws `config.peptide_count` random tryptic-like peptides (ending in K/R)
/// with realistic residue frequencies.
std::vector<peptide> random_peptide_library(const synthetic_config& config);

/// Generates the full labelled dataset. Deterministic in config.seed.
labelled_dataset generate_dataset(const synthetic_config& config);

/// Generates one noisy replicate of `p` at `charge` (exposed for tests).
spectrum noisy_replicate(const peptide& p, int charge, const synthetic_config& config,
                         std::uint64_t replicate_seed);

}  // namespace spechd::ms
