// Minimal forward-only XML scanner shared by the mzML and mzXML readers.
//
// Produces start/end/empty-element events with attributes plus captured
// text. Handles declarations, comments and quoted attributes; namespaces
// and entities beyond the basics are out of scope (the MS formats we parse
// do not rely on them).
#pragma once

#include <map>
#include <string>

namespace spechd::ms {

struct xml_event {
  enum class kind { start, end, empty, text, eof };
  kind type = kind::eof;
  std::string name;                               ///< element name
  std::map<std::string, std::string> attributes;  ///< start/empty only
  std::string text;                               ///< text only
};

class xml_scanner {
public:
  xml_scanner(std::string content, std::string source);

  /// Next event; kind::eof at end of input. Throws spechd::parse_error on
  /// malformed markup.
  xml_event next();

private:
  [[noreturn]] void fail(const std::string& what) const;
  std::size_t line_at(std::size_t pos) const;
  std::size_t skip_until(std::string_view end_marker, std::size_t offset);
  xml_event parse_start_tag();

  std::string content_;
  std::string source_;
  std::size_t pos_ = 0;
};

/// Attribute lookup helpers.
double xml_attr_double(const xml_event& ev, const std::string& key, double fallback);
std::string xml_attr(const xml_event& ev, const std::string& key,
                     const std::string& fallback = {});

}  // namespace spechd::ms
