#include "ms/ms2.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace spechd::ms {

namespace {

void flush_record(std::vector<spectrum>& out, spectrum& current, bool& active) {
  if (active) {
    sort_peaks(current);
    out.push_back(std::move(current));
    current = spectrum{};
    active = false;
  }
}

}  // namespace

std::vector<spectrum> read_ms2(std::istream& in, const std::string& source_name) {
  std::vector<spectrum> result;
  std::string line;
  std::size_t line_no = 0;
  spectrum current;
  bool active = false;

  while (std::getline(in, line)) {
    ++line_no;
    // CRLF input: getline leaves the '\r', so a blank line arrives as "\r"
    // and every tag line carries a trailing '\r'. Strip it up front rather
    // than letting the dispatch below misread '\r' as a peak line.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::istringstream ls(line);
    switch (line[0]) {
      case 'H':
        continue;  // file-level header
      case 'S': {
        flush_record(result, current, active);
        char tag = 0;
        std::uint32_t first = 0;
        std::uint32_t last = 0;
        double mz = 0.0;
        if (!(ls >> tag >> first >> last >> mz)) {
          throw parse_error(source_name, line_no, "bad S line");
        }
        active = true;
        current.scan = first;
        current.precursor_mz = mz;
        current.title = "scan=" + std::to_string(first);
        break;
      }
      case 'I': {
        if (!active) throw parse_error(source_name, line_no, "I line before S line");
        char tag = 0;
        std::string key;
        double value = 0.0;
        if (ls >> tag >> key >> value && key == "RTime") {
          current.retention_time = value * 60.0;  // RTime is minutes
        }
        break;
      }
      case 'Z': {
        if (!active) throw parse_error(source_name, line_no, "Z line before S line");
        char tag = 0;
        int charge = 0;
        double mh = 0.0;
        if (!(ls >> tag >> charge >> mh)) {
          throw parse_error(source_name, line_no, "bad Z line");
        }
        current.precursor_charge = charge;
        break;
      }
      default: {
        if (!active) throw parse_error(source_name, line_no, "peak line before S line");
        double mz = 0.0;
        double intensity = 0.0;
        if (!(ls >> mz >> intensity)) {
          throw parse_error(source_name, line_no, "bad peak line: " + line);
        }
        current.peaks.push_back({mz, static_cast<float>(intensity)});
        break;
      }
    }
  }
  flush_record(result, current, active);
  return result;
}

std::vector<spectrum> read_ms2_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw io_error("cannot open MS2 file: " + path);
  return read_ms2(in, path);
}

void write_ms2(std::ostream& out, const std::vector<spectrum>& spectra) {
  out << std::setprecision(10);
  out << "H\tCreationDate\t-\nH\tExtractor\tspechd\n";
  for (const auto& s : spectra) {
    out << "S\t" << s.scan << '\t' << s.scan << '\t' << s.precursor_mz << '\n';
    if (s.retention_time > 0.0) {
      out << "I\tRTime\t" << (s.retention_time / 60.0) << '\n';
    }
    if (s.precursor_charge > 0) {
      const double mh =
          (s.precursor_mz - proton_mass) * s.precursor_charge + proton_mass;
      out << "Z\t" << s.precursor_charge << '\t' << mh << '\n';
    }
    for (const auto& p : s.peaks) out << p.mz << ' ' << p.intensity << '\n';
  }
}

void write_ms2_file(const std::string& path, const std::vector<spectrum>& spectra) {
  std::ofstream out(path);
  if (!out) throw io_error("cannot create MS2 file: " + path);
  write_ms2(out, spectra);
  if (!out) throw io_error("write failure on MS2 file: " + path);
}

}  // namespace spechd::ms
