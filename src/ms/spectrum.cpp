#include "ms/spectrum.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace spechd::ms {

float base_peak_intensity(const spectrum& s) noexcept {
  float best = 0.0F;
  for (const auto& p : s.peaks) best = std::max(best, p.intensity);
  return best;
}

double total_ion_current(const spectrum& s) noexcept {
  double sum = 0.0;
  for (const auto& p : s.peaks) sum += p.intensity;
  return sum;
}

void sort_peaks(spectrum& s) {
  std::stable_sort(s.peaks.begin(), s.peaks.end(),
                   [](const peak& a, const peak& b) { return a.mz < b.mz; });
}

bool peaks_sorted(const spectrum& s) noexcept {
  return std::is_sorted(s.peaks.begin(), s.peaks.end(),
                        [](const peak& a, const peak& b) { return a.mz < b.mz; });
}

std::size_t raw_peak_bytes(const spectrum& s) noexcept {
  // Profile formats store one float64 m/z + float32 intensity per peak.
  return s.peaks.size() * (sizeof(double) + sizeof(float));
}

double binned_cosine(const spectrum& a, const spectrum& b, double bin_width) {
  if (a.empty() || b.empty() || bin_width <= 0.0) return 0.0;

  std::unordered_map<std::int64_t, double> bins_a;
  bins_a.reserve(a.size());
  double norm_a = 0.0;
  for (const auto& p : a.peaks) {
    const auto bin = static_cast<std::int64_t>(p.mz / bin_width);
    bins_a[bin] += p.intensity;
  }
  for (const auto& [bin, v] : bins_a) norm_a += v * v;

  double dot = 0.0;
  std::unordered_map<std::int64_t, double> bins_b;
  bins_b.reserve(b.size());
  for (const auto& p : b.peaks) {
    const auto bin = static_cast<std::int64_t>(p.mz / bin_width);
    bins_b[bin] += p.intensity;
  }
  double norm_b = 0.0;
  for (const auto& [bin, v] : bins_b) {
    norm_b += v * v;
    if (auto it = bins_a.find(bin); it != bins_a.end()) dot += v * it->second;
  }
  if (norm_a == 0.0 || norm_b == 0.0) return 0.0;
  return dot / (std::sqrt(norm_a) * std::sqrt(norm_b));
}

}  // namespace spechd::ms
