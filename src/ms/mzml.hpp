// Minimal mzML (PSI-MS) reader/writer.
//
// mzML is the XML-based open standard named in Sec. II-A. We support the
// subset needed for MS/MS clustering workflows:
//   * MS2 spectra with selected-ion m/z, charge state and scan start time,
//   * uncompressed 32-/64-bit float binary data arrays (base64),
//   * spectrum id / index attributes.
// Compression (zlib) and chromatograms are out of scope; the reader raises
// parse_error when it encounters a compressed array rather than silently
// mis-decoding it.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "ms/spectrum.hpp"

namespace spechd::ms {

/// Reads all MS2-level spectra (msLevel == 2, or spectra without an msLevel
/// annotation) from an mzML stream.
std::vector<spectrum> read_mzml(std::istream& in, const std::string& source_name = "<mzml>");
std::vector<spectrum> read_mzml_file(const std::string& path);

/// Writes spectra as a minimal, schema-shaped mzML document with
/// uncompressed 64-bit m/z and 32-bit intensity arrays.
void write_mzml(std::ostream& out, const std::vector<spectrum>& spectra);
void write_mzml_file(const std::string& path, const std::vector<spectrum>& spectra);

}  // namespace spechd::ms
