#include "ms/xml_scan.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>

#include "util/error.hpp"

namespace spechd::ms {

namespace {

std::string trim(std::string s) {
  const auto begin = s.find_first_not_of(" \t\r\n");
  const auto end = s.find_last_not_of(" \t\r\n");
  if (begin == std::string::npos) return {};
  return s.substr(begin, end - begin + 1);
}

}  // namespace

xml_scanner::xml_scanner(std::string content, std::string source)
    : content_(std::move(content)), source_(std::move(source)) {}

void xml_scanner::fail(const std::string& what) const {
  throw parse_error(source_, line_at(pos_), what);
}

std::size_t xml_scanner::line_at(std::size_t pos) const {
  return 1 + static_cast<std::size_t>(
                 std::count(content_.begin(),
                            content_.begin() + static_cast<std::ptrdiff_t>(
                                                   std::min(pos, content_.size())),
                            '\n'));
}

std::size_t xml_scanner::skip_until(std::string_view end_marker, std::size_t offset) {
  const std::size_t found = content_.find(end_marker, pos_ + offset);
  if (found == std::string::npos) fail("unterminated markup");
  return found + end_marker.size();
}

xml_event xml_scanner::next() {
  for (;;) {
    if (pos_ >= content_.size()) return {};
    if (content_[pos_] != '<') {
      const std::size_t start = pos_;
      pos_ = content_.find('<', pos_);
      if (pos_ == std::string::npos) pos_ = content_.size();
      std::string text = content_.substr(start, pos_ - start);
      if (text.find_first_not_of(" \t\r\n") == std::string::npos) continue;
      xml_event ev;
      ev.type = xml_event::kind::text;
      ev.text = std::move(text);
      return ev;
    }
    if (content_.compare(pos_, 2, "<?") == 0) {
      pos_ = skip_until("?>", 2);
      continue;
    }
    if (content_.compare(pos_, 4, "<!--") == 0) {
      pos_ = skip_until("-->", 4);
      continue;
    }
    if (content_.compare(pos_, 2, "</") == 0) {
      const std::size_t close = content_.find('>', pos_);
      if (close == std::string::npos) fail("unterminated end tag");
      xml_event ev;
      ev.type = xml_event::kind::end;
      ev.name = trim(content_.substr(pos_ + 2, close - pos_ - 2));
      pos_ = close + 1;
      return ev;
    }
    return parse_start_tag();
  }
}

xml_event xml_scanner::parse_start_tag() {
  const std::size_t close = content_.find('>', pos_);
  if (close == std::string::npos) fail("unterminated start tag");
  std::string body = content_.substr(pos_ + 1, close - pos_ - 1);
  pos_ = close + 1;

  xml_event ev;
  ev.type = xml_event::kind::start;
  if (!body.empty() && body.back() == '/') {
    ev.type = xml_event::kind::empty;
    body.pop_back();
  }

  std::size_t i = 0;
  while (i < body.size() && !std::isspace(static_cast<unsigned char>(body[i]))) ++i;
  ev.name = body.substr(0, i);

  while (i < body.size()) {
    while (i < body.size() && std::isspace(static_cast<unsigned char>(body[i]))) ++i;
    if (i >= body.size()) break;
    const std::size_t eq = body.find('=', i);
    if (eq == std::string::npos) break;
    std::string key = trim(body.substr(i, eq - i));
    std::size_t q1 = body.find_first_of("\"'", eq);
    if (q1 == std::string::npos) fail("attribute value not quoted");
    const char quote = body[q1];
    const std::size_t q2 = body.find(quote, q1 + 1);
    if (q2 == std::string::npos) fail("unterminated attribute value");
    ev.attributes[std::move(key)] = body.substr(q1 + 1, q2 - q1 - 1);
    i = q2 + 1;
  }
  return ev;
}

double xml_attr_double(const xml_event& ev, const std::string& key, double fallback) {
  const auto it = ev.attributes.find(key);
  if (it == ev.attributes.end()) return fallback;
  double v = fallback;
  auto [ptr, ec] =
      std::from_chars(it->second.data(), it->second.data() + it->second.size(), v);
  (void)ptr;
  return ec == std::errc{} ? v : fallback;
}

std::string xml_attr(const xml_event& ev, const std::string& key,
                     const std::string& fallback) {
  const auto it = ev.attributes.find(key);
  return it == ev.attributes.end() ? fallback : it->second;
}

}  // namespace spechd::ms
