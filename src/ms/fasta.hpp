// FASTA protein database reader + digestion into a peptide library.
//
// Connects the identification path to real protein databases: the paper's
// Venn analysis searches consensus spectra against a human-proteome
// database; with a FASTA file this library builds the same target list via
// tryptic digestion (and the synthetic generator can replicate spectra
// from it instead of random peptides).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "ms/peptide.hpp"

namespace spechd::ms {

/// One FASTA record.
struct fasta_entry {
  std::string header;    ///< text after '>', without the marker
  std::string sequence;  ///< residue letters, whitespace stripped
};

/// Reads all records; tolerates wrapped sequence lines, Windows line
/// endings, '*' stop codons (stripped) and blank lines. Throws parse_error
/// if sequence data precedes the first header.
std::vector<fasta_entry> read_fasta(std::istream& in,
                                    const std::string& source_name = "<fasta>");
std::vector<fasta_entry> read_fasta_file(const std::string& path);

void write_fasta(std::ostream& out, const std::vector<fasta_entry>& entries,
                 std::size_t line_width = 60);
void write_fasta_file(const std::string& path, const std::vector<fasta_entry>& entries);

/// Digests every protein and returns the deduplicated peptide library
/// (sorted by sequence for determinism).
std::vector<peptide> library_from_fasta(const std::vector<fasta_entry>& entries,
                                        int missed_cleavages = 0,
                                        std::size_t min_length = 6,
                                        std::size_t max_length = 40);

}  // namespace spechd::ms
