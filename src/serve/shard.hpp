// One shard of the clustering service: a single-writer ingest engine over
// an incremental_clusterer, with RCU-published immutable query views.
//
// Concurrency model (the whole point of this layer):
//
//   producers ──push──▶ bounded mpsc_queue (backpressure)
//                            │ one writer thread pops in order
//                            ▼
//                  incremental_clusterer (single owner)
//                            │ after each batch: rebuild views of the
//                            │ buckets the batch touched (copy-on-write)
//                            ▼
//                  rcu_ptr<shard_view> ◀──load── query threads (lock-free
//                                                 reads, never block ingest)
//
// The writer thread is the *only* code that touches the clusterer, so the
// clusterer's single-owner contract holds by construction and per-shard
// ingestion order is exactly enqueue order — which is what makes the
// sharded service bit-identical to a sequential clusterer per bucket.
// Queries run against whatever view epoch is published; a view is a frozen
// copy (packed member hypervectors + labels per bucket), so a query sees a
// consistent prefix of the ingest stream, never a torn state.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/incremental.hpp"
#include "serve/journal.hpp"
#include "util/mpsc_queue.hpp"
#include "util/rcu_ptr.hpp"

namespace spechd::serve {

/// Frozen query view of one bucket: members' hypervectors packed into one
/// contiguous blob (hamming_tile_packed's operand layout) + cluster labels.
struct bucket_view {
  std::size_t hv_words = 0;
  std::size_t member_count = 0;
  std::vector<std::uint64_t> packed;  ///< member_count * hv_words, arrival order
  std::vector<std::int32_t> labels;   ///< local cluster label per member
  std::int32_t cluster_count = 0;
  /// bundle_representative mode only: the majority-bundled representative
  /// of each local cluster, label-indexed, packed like `packed`
  /// (cluster_count * hv_words). Empty in complete_linkage mode.
  std::vector<std::uint64_t> rep_packed;
};

/// Frozen view of one shard. Buckets are shared_ptr so an epoch swap only
/// copies the map and the *changed* buckets (copy-on-write).
struct shard_view {
  std::map<std::int64_t, std::shared_ptr<const bucket_view>> buckets;
  std::size_t record_count = 0;
  std::size_t cluster_count = 0;
  /// Buckets awaiting a recluster (ingestion marked them dirty); the
  /// maintenance scheduler polls this to find shards worth reclustering.
  std::size_t dirty_buckets = 0;
  std::uint64_t epoch = 0;  ///< strictly increasing per publish
};

/// Result of one query against a published view.
struct query_result {
  bool encodable = false;   ///< false: preprocessing dropped the spectrum
  bool matched = false;     ///< a cluster passed the complete-linkage cut
  std::int64_t bucket_key = 0;
  std::size_t shard = 0;
  std::int32_t local_label = -1;  ///< matched cluster (bucket-local id)
  double distance = 1.0;          ///< complete-linkage distance to the match
  double nearest_member = 1.0;    ///< min member distance in the bucket
  std::size_t cluster_size = 0;   ///< members of the matched cluster
  std::uint64_t view_epoch = 0;   ///< epoch the query executed against
};

/// Failure posture of a shard. Transitions are one-way escalations during
/// normal operation (healthy -> degraded -> failed); only a completed
/// journal compaction heals degraded back to healthy (the fresh
/// generation captures the applied state, so journal == applied again).
///
///  - healthy:  full service.
///  - degraded: read-only. A batch was dropped (journal append or apply
///    failed, and the write-ahead record was rolled back cleanly), so the
///    shard stopped accepting ingest rather than silently diverging from
///    its producers; queries and drains still work, and the journal still
///    matches the applied state exactly.
///  - failed:   a rollback itself failed, so the on-disk journal may hold
///    records this shard never applied (or a cross-shard commit landed
///    but the local apply failed). Ingest is rejected, queries still
///    serve the last published view; recovery after restart replays the
///    journal, which may resurrect batches the live run dropped —
///    in-doubt, surfaced, never silent.
enum class shard_health : std::uint8_t { healthy = 0, degraded = 1, failed = 2 };

const char* shard_health_name(shard_health health) noexcept;

/// Rendezvous for one cross-shard atomic ingest: every participant's
/// writer thread appends its data record (phase 1), the coordinator
/// appends the commit record once all landed (phase 2), then everyone
/// applies or rolls back together (phase 3). Created per transaction by
/// clustering_service::ingest.
struct txn_barrier {
  explicit txn_barrier(std::size_t n) : participants(n) {}
  std::mutex mutex;
  std::condition_variable cv;
  /// Jobs that will arrive; the service shrinks this (and sets `aborted`)
  /// when a shard rejects its enqueue, so nobody waits on a job that was
  /// never queued.
  std::size_t participants;
  std::size_t journaled = 0;  ///< phase-1 arrivals
  bool commit_done = false;   ///< phase 2 finished (committed or aborted)
  bool aborted = false;       ///< any append failed: roll back everywhere
};

/// Monotonic counters (safe to read from any thread at any time).
struct shard_stats {
  std::size_t ingested = 0;       ///< records accepted (post-preprocessing)
  std::size_t dropped = 0;        ///< spectra rejected by preprocessing
  std::size_t batches = 0;        ///< ingest jobs applied
  std::size_t queue_depth = 0;    ///< jobs currently waiting
  std::size_t record_count = 0;   ///< records in the published view
  std::size_t cluster_count = 0;  ///< clusters in the published view
  std::size_t dirty_buckets = 0;  ///< dirty buckets in the published view
  std::uint64_t view_epoch = 0;
  std::uint64_t journal_bytes = 0;    ///< current journal file size (0: unjournaled)
  std::uint64_t journal_records = 0;  ///< records in the current journal file
  shard_health health = shard_health::healthy;
  std::string last_error;  ///< why the shard left healthy (empty when healthy)
};

class shard {
public:
  /// Starts the writer thread. `config.threads` sizes the clusterer's
  /// internal pool (the service passes 1: parallelism comes from shards).
  /// `publish_every` coalesces view republishing: views are rebuilt after
  /// every `publish_every`-th applied batch *and* whenever the ingest
  /// queue runs empty, so an idle or drained shard always publishes its
  /// latest state while a backlogged shard skips per-tiny-batch rebuilds.
  shard(std::size_t id, const core::spechd_config& config, core::assign_mode mode,
        std::size_t queue_capacity, std::size_t publish_every = 1);

  /// Closes the queue, drains remaining jobs, joins the writer.
  ~shard();

  shard(const shard&) = delete;
  shard& operator=(const shard&) = delete;

  std::size_t id() const noexcept { return id_; }

  /// Enqueues a batch for the writer; blocks while the queue is full
  /// (backpressure). Returns false — dropping nothing, applying nothing —
  /// once shutdown began or the shard left healthy (degraded/failed
  /// shards are read-only; see health()). A producer blocked in the full-
  /// queue wait is woken and receives false when the shard stops
  /// mid-ingest. The service surfaces a false return as an error rather
  /// than dropping the batch silently.
  bool enqueue(std::vector<ms::spectrum> batch);

  /// Enqueues one slice of a cross-shard atomic batch. The job runs the
  /// barrier protocol with the other participants' writer threads: append
  /// data record, rendezvous, coordinator appends the commit record, then
  /// all apply — or all roll back. Returns false (nothing enqueued) when
  /// the shard is not healthy or is shut down; the *service* then shrinks
  /// `barrier->participants` and aborts the transaction.
  bool enqueue_txn(std::vector<ms::spectrum> batch, std::uint64_t txn_id,
                   std::shared_ptr<txn_barrier> barrier, bool coordinator);

  shard_health health() const noexcept {
    return health_.load(std::memory_order_relaxed);
  }

  /// Ingest jobs currently queued (one queue-size read; the network
  /// tier's admission control polls this on every ingest request).
  std::size_t queue_depth() const { return queue_.size(); }

  /// Why the shard left healthy (empty string while healthy).
  std::string health_message() const;

  /// degraded -> healthy, once the caller (journal compaction) has made
  /// the applied state durable in a fresh generation. Returns false when
  /// the shard was not degraded — `failed` is sticky until restart, since
  /// the journal may describe state the live shard does not hold.
  bool heal_degraded();

  /// Waits until every previously enqueued job has been applied and its
  /// view published (coalesced republishes are flushed, so after drain()
  /// the view reflects every applied batch) and the journal — when one is
  /// attached — is fsynced past every applied record; then rethrows the
  /// first ingest error if any occurred.
  void drain();

  /// Runs `fn` on the writer thread after all earlier jobs (so it sees a
  /// quiescent clusterer at a well-defined point in the stream). Blocks
  /// until done; rethrows fn's exception. Snapshot export/import and
  /// maintenance reclustering use this instead of external locking.
  /// `republish` (default) rebuilds *all* bucket views afterwards — pass
  /// false only when fn is read-only; coalesced ingest republishes are
  /// still flushed then, so the view is current either way.
  void run_exclusive(const std::function<void(core::incremental_clusterer&)>& fn,
                     bool republish = true);

  /// Hands this shard its write-ahead journal. Must be called before any
  /// batch is enqueued (the service attaches journals during
  /// construction/recovery); the pointer is then stable for the shard's
  /// lifetime — the queue's mutex publishes it to the writer thread.
  /// Every subsequently applied batch is journaled *before* it is applied
  /// (a batch whose journal append fails is dropped and the error
  /// rethrown by the next drain()), and drain() additionally fsyncs the
  /// journal, making it a durability barrier.
  void attach_journal(std::unique_ptr<journal_writer> journal);

  bool journaled() const noexcept { return journal_ != nullptr; }
  std::uint64_t journal_bytes() const noexcept {
    return journal_ ? journal_->bytes() : 0;
  }
  std::uint64_t journal_records() const noexcept {
    return journal_ ? journal_->records() : 0;
  }
  std::uint64_t journal_generation() const noexcept {
    return journal_ ? journal_->generation() : 0;
  }

  /// Maintenance recluster: runs rebuild_dirty_buckets on the writer
  /// thread (journaled as a recluster record first, so recovery replays
  /// it at the same stream position) and republishes all views. With
  /// `only_if_idle` the job is skipped — returning false — unless the
  /// ingest queue is empty and the published view shows dirty buckets
  /// (the scheduler's cheap poll); without it the job is enqueued
  /// unconditionally (deterministic trigger for tests/CLI). Either way
  /// the job itself re-checks dirtiness on the writer thread and becomes
  /// a no-op (no journal record) when nothing is dirty by then.
  bool maintain(bool only_if_idle);

  /// Compaction step: on the writer thread, exports the clusterer state
  /// and atomically rotates the journal to `head`/`header` — so the new
  /// journal file holds exactly the records applied after the returned
  /// state. Precondition: a journal is attached.
  core::clusterer_state export_and_rotate_journal(const journal_head& head,
                                                  const journal_file_header& header);

  /// Current published view (never null; empty before first ingest).
  std::shared_ptr<const shard_view> view() const { return view_.load(); }

  /// Query against the published view using *the same criterion ingest
  /// assignment uses* — so "query then ingest" agrees with the assignment
  /// the spectrum would get. In complete_linkage mode: the cluster whose
  /// worst member distance to `hv` is smallest, matched if it passes
  /// `threshold`. In bundle_representative mode: the cluster whose
  /// majority-bundled representative is nearest. Safe from any thread.
  query_result query(const hdc::hypervector& hv, std::int64_t bucket_key,
                     double threshold) const;

  shard_stats stats() const;

private:
  void writer_loop();
  void apply_batch(std::vector<ms::spectrum> batch);
  void apply_txn_batch(std::vector<ms::spectrum> batch, std::uint64_t txn_id,
                       const std::shared_ptr<txn_barrier>& barrier, bool coordinator);
  /// Records the first error for drain() to rethrow (writer thread side).
  void record_error(std::exception_ptr error);
  /// Escalates health (never downgrades) and remembers why.
  void set_health(shard_health health, const std::string& why);
  /// Runs `fn` on the writer thread after all earlier jobs; blocks until
  /// done and rethrows fn's exception (the plumbing under run_exclusive,
  /// attach/rotate, and drain).
  void run_on_writer(std::function<void()> fn);
  /// Rebuilds and publishes views; `all` forces every bucket (labels may
  /// have changed), otherwise only buckets whose shape grew are rebuilt.
  void publish(bool all);
  /// Publishes now if republishing was coalesced (writer thread only).
  void flush_publish();
  /// Mirrors health/journal position/queue depth into the crash-dump
  /// status table (obs::status_shard) — relaxed stores only.
  void update_status() const;

  std::size_t id_;
  core::assign_mode mode_;
  std::size_t publish_every_;
  core::incremental_clusterer clusterer_;  ///< writer-thread-owned
  std::unique_ptr<journal_writer> journal_;  ///< writer-thread-owned after attach
  mpsc_queue<std::function<void()>> queue_;
  rcu_ptr<shard_view> view_;
  std::size_t pending_publishes_ = 0;  ///< batches since last publish (writer-thread-only)
  /// (member count, cluster count) per bucket at the last publish; lets
  /// ingest-only publishes skip untouched buckets. Writer-thread-only.
  std::map<std::int64_t, std::pair<std::size_t, std::int32_t>> published_shape_;
  std::uint64_t epoch_ = 0;  ///< writer-thread-only

  std::atomic<std::size_t> ingested_{0};
  std::atomic<std::size_t> dropped_{0};
  std::atomic<std::size_t> batches_{0};
  std::atomic<shard_health> health_{shard_health::healthy};

  mutable std::mutex error_mutex_;
  std::exception_ptr first_error_;
  std::string health_error_;  ///< guarded by error_mutex_

  std::thread writer_;  ///< last member: starts after everything above
};

}  // namespace spechd::serve
