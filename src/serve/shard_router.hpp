// Precursor-mass shard routing for the clustering service.
//
// SpecHD's bucketed design (Eq. 1: spectra only ever compare within one
// precursor-m/z bucket) makes the clustering state embarrassingly
// partitionable: a shard owns a disjoint set of buckets and never needs to
// see another shard's spectra. The router maps a spectrum to its bucket key
// (the exact same Eq. 1 computation the clusterer uses internally) and then
// hashes the key onto one of N shards, so:
//
//   * all spectra of one bucket always land on the same shard — the
//     invariant that makes the sharded service's clusters exactly equal to
//     a single clusterer's (tests/serve/test_service.cpp pins this), and
//   * adjacent buckets scatter across shards (splitmix64 finaliser), so a
//     narrow precursor-mass range doesn't hot-spot one shard.
#pragma once

#include <cstddef>
#include <cstdint>

#include "ms/spectrum.hpp"
#include "preprocess/bucket.hpp"

namespace spechd::serve {

class shard_router {
public:
  /// Routes onto `shard_count` shards using `bucketing` for Eq. 1 keys.
  shard_router(preprocess::bucket_config bucketing, std::size_t shard_count);

  std::size_t shard_count() const noexcept { return shard_count_; }
  const preprocess::bucket_config& bucketing() const noexcept { return bucketing_; }

  /// Eq. 1 bucket key for a precursor — identical to what the clusterer
  /// computes after preprocessing (which never mutates the precursor).
  std::int64_t bucket_key(double precursor_mz, int precursor_charge) const noexcept;
  std::int64_t bucket_key(const ms::spectrum& s) const noexcept {
    return bucket_key(s.precursor_mz, s.precursor_charge);
  }

  /// The shard owning bucket `key`. Deterministic across runs/processes
  /// (no seeding), so snapshots can be re-partitioned on restore.
  std::size_t shard_of_key(std::int64_t key) const noexcept;
  std::size_t shard_of(const ms::spectrum& s) const noexcept {
    return shard_of_key(bucket_key(s));
  }

private:
  preprocess::bucket_config bucketing_;
  std::size_t shard_count_;
};

}  // namespace spechd::serve
