#include "serve/snapshot.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstring>
#include <fstream>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "util/crc32.hpp"
#include "util/endian.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/io.hpp"

namespace spechd::serve {

namespace {

constexpr char k_magic[4] = {'S', 'P', 'S', 'N'};
constexpr std::uint32_t k_version = 1;
/// Sanity bound on payload_bytes so a corrupted length field cannot drive
/// a multi-terabyte allocation before the CRC check would catch it.
constexpr std::uint64_t k_max_payload = 1ULL << 40;

template <typename T>
void put(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T get(std::istream& in, const std::string& source) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in) throw parse_error(source, 0, "truncated snapshot");
  return v;
}

}  // namespace

void write_snapshot_identity(std::ostream& out, const snapshot_identity& id) {
  put(out, id.dim);
  put(out, id.encoder_seed);
  put(out, id.distance_threshold);
  put(out, id.bucket_resolution);
  put(out, id.fallback_charge);
  put(out, id.assign_mode);
  put(out, id.shard_count);
  put(out, id.config_digest);
}

snapshot_identity read_snapshot_identity(std::istream& in, const std::string& source) {
  snapshot_identity id;
  id.dim = get<std::uint32_t>(in, source);
  id.encoder_seed = get<std::uint64_t>(in, source);
  id.distance_threshold = get<double>(in, source);
  id.bucket_resolution = get<double>(in, source);
  id.fallback_charge = get<std::int32_t>(in, source);
  id.assign_mode = get<std::uint32_t>(in, source);
  id.shard_count = get<std::uint32_t>(in, source);
  id.config_digest = get<std::uint32_t>(in, source);
  return id;
}

namespace {

void write_shard_state(std::ostream& out, const core::clusterer_state& state) {
  state.store.save(out);
  put(out, static_cast<std::uint64_t>(state.buckets.size()));
  for (const auto& bucket : state.buckets) {
    put(out, bucket.key);
    put(out, static_cast<std::uint64_t>(bucket.members.size()));
    out.write(reinterpret_cast<const char*>(bucket.members.data()),
              static_cast<std::streamsize>(bucket.members.size() * sizeof(std::uint32_t)));
    out.write(reinterpret_cast<const char*>(bucket.local_labels.data()),
              static_cast<std::streamsize>(bucket.local_labels.size() *
                                           sizeof(std::int32_t)));
    put(out, bucket.next_local);
    put(out, static_cast<std::uint8_t>(bucket.dirty ? 1 : 0));
  }
}

core::clusterer_state read_shard_state(std::istream& in, const std::string& source) {
  core::clusterer_state state;
  state.store = hdc::hv_store::load(in, source);
  const auto bucket_count = get<std::uint64_t>(in, source);
  state.buckets.reserve(bucket_count);
  for (std::uint64_t b = 0; b < bucket_count; ++b) {
    core::bucket_snapshot bucket;
    bucket.key = get<std::int64_t>(in, source);
    const auto n = get<std::uint64_t>(in, source);
    if (n > state.store.size()) {
      throw parse_error(source, 0, "snapshot bucket larger than its store");
    }
    bucket.members.resize(n);
    in.read(reinterpret_cast<char*>(bucket.members.data()),
            static_cast<std::streamsize>(n * sizeof(std::uint32_t)));
    bucket.local_labels.resize(n);
    in.read(reinterpret_cast<char*>(bucket.local_labels.data()),
            static_cast<std::streamsize>(n * sizeof(std::int32_t)));
    if (!in) throw parse_error(source, 0, "truncated snapshot bucket table");
    bucket.next_local = get<std::int32_t>(in, source);
    bucket.dirty = get<std::uint8_t>(in, source) != 0;
    state.buckets.push_back(std::move(bucket));
  }
  return state;
}

/// Reads the framed + CRC-verified .sphsnap payload; the caller parses it.
std::string read_verified_payload(std::istream& in, const std::string& source) {
  return read_framed_payload(in, k_magic, k_version, "a .sphsnap snapshot", source);
}

}  // namespace

void write_framed_payload(std::ostream& out, const char magic[4], std::uint32_t version,
                          const std::string& payload) {
  out.write(magic, 4);
  put(out, version);
  put(out, static_cast<std::uint64_t>(payload.size()));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  put(out, crc32(payload.data(), payload.size()));
  if (!out) throw io_error("snapshot write failure");
}

std::string read_framed_payload(std::istream& in, const char magic[4],
                                std::uint32_t version, const std::string& format_name,
                                const std::string& source) {
  char file_magic[4] = {};
  in.read(file_magic, 4);
  if (!in || std::memcmp(file_magic, magic, 4) != 0) {
    throw parse_error(source, 0, "not " + format_name + " (bad magic)");
  }
  const auto file_version = get<std::uint32_t>(in, source);
  if (file_version != version) {
    // A byte-reversed version is a snapshot copied from a big-endian host:
    // diagnose that directly rather than as a bogus huge version number.
    if (file_version == util::byteswap32(version)) {
      throw parse_error(source, 0,
                        "snapshot was written by a big-endian host; spechd on-disk "
                        "formats are little-endian and cannot be read here");
    }
    throw parse_error(source, 0,
                      "unsupported snapshot version " + std::to_string(file_version));
  }
  const auto payload_bytes = get<std::uint64_t>(in, source);
  if (payload_bytes > k_max_payload) {
    throw parse_error(source, 0, "implausible snapshot payload size");
  }
  std::string payload(payload_bytes, '\0');
  in.read(payload.data(), static_cast<std::streamsize>(payload_bytes));
  if (!in) throw parse_error(source, 0, "truncated snapshot payload");
  const auto stored_crc = get<std::uint32_t>(in, source);
  const auto actual_crc = crc32(payload.data(), payload.size());
  if (stored_crc != actual_crc) {
    throw parse_error(source, 0, "snapshot CRC mismatch (corrupted file)");
  }
  // One frame per file: bytes after the CRC mean the file was corrupted or
  // concatenated — refuse rather than silently ignore them.
  if (in.peek() != std::char_traits<char>::eof()) {
    throw parse_error(source, 0, "trailing bytes after the snapshot frame");
  }
  return payload;
}

std::uint32_t pipeline_digest(const core::spechd_config& config) {
  // Serialise every encode/assign-relevant knob into one buffer and CRC
  // it. Append-only: new knobs go at the end so an old digest can never
  // accidentally equal a new one for differing configs.
  std::ostringstream blob(std::ios::binary);
  const auto& pp = config.preprocess;
  put(blob, pp.filter.precursor_tolerance_da);
  put(blob, pp.filter.min_intensity_fraction);
  put(blob, pp.filter.mz_min);
  put(blob, pp.filter.mz_max);
  put(blob, static_cast<std::uint64_t>(pp.filter.min_peaks));
  put(blob, static_cast<std::uint64_t>(pp.top_k));
  put(blob, static_cast<std::uint32_t>(pp.peak_selector));
  put(blob, pp.window.window_da);
  put(blob, static_cast<std::uint64_t>(pp.window.peaks_per_window));
  put(blob, static_cast<std::uint32_t>(pp.normalize.scaling));
  put(blob, static_cast<std::uint8_t>(pp.normalize.unit_norm ? 1 : 0));
  put(blob, pp.quantize.mz_min);
  put(blob, pp.quantize.mz_max);
  put(blob, pp.quantize.mz_bins);
  put(blob, static_cast<std::uint32_t>(pp.quantize.intensity_levels));
  put(blob, static_cast<std::uint32_t>(config.link));
  put(blob, static_cast<std::uint8_t>(config.use_fixed_point ? 1 : 0));
  const std::string bytes = blob.str();
  return crc32(bytes.data(), bytes.size());
}

void write_snapshot(std::ostream& out, const snapshot_identity& identity,
                    const std::vector<core::clusterer_state>& shards) {
  SPECHD_EXPECTS(identity.shard_count == shards.size());
  std::ostringstream payload_stream(std::ios::binary);
  write_snapshot_identity(payload_stream, identity);
  for (const auto& state : shards) write_shard_state(payload_stream, state);
  write_framed_payload(out, k_magic, k_version, payload_stream.str());
}

void write_snapshot_file(const std::string& path, const snapshot_identity& identity,
                         const std::vector<core::clusterer_state>& shards) {
  // Serialise fully in memory, then push through the checked-I/O layer so
  // ENOSPC/EIO surface as typed io_failure (with failpoint coverage for
  // the compaction tmp+rename+fsync sequence) instead of a silently-bad
  // ofstream.
  static util::failpoint fp_open("snapshot.open");
  static util::failpoint fp_write("snapshot.write");
  std::ostringstream out(std::ios::binary);
  write_snapshot(out, identity, shards);
  const std::string bytes = out.str();
  const int fd = util::open_fd(path, O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644,
                               fp_open);
  try {
    util::write_all(fd, bytes.data(), bytes.size(), path, fp_write);
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
}

snapshot_data read_snapshot(std::istream& in, const std::string& source_name) {
  const std::string payload = read_verified_payload(in, source_name);
  std::istringstream body(payload, std::ios::binary);
  snapshot_data data;
  data.identity = read_snapshot_identity(body, source_name);
  data.shards.reserve(data.identity.shard_count);
  for (std::uint32_t s = 0; s < data.identity.shard_count; ++s) {
    data.shards.push_back(read_shard_state(body, source_name));
  }
  // The CRC already vouched for integrity; trailing garbage would mean the
  // writer and reader disagree about the format — refuse it.
  if (body.peek() != std::char_traits<char>::eof()) {
    throw parse_error(source_name, 0, "snapshot payload has trailing bytes");
  }
  return data;
}

snapshot_data read_snapshot_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw io_error("cannot open snapshot file: " + path);
  return read_snapshot(in, path);
}

snapshot_identity read_snapshot_identity_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw io_error("cannot open snapshot file: " + path);
  const std::string payload = read_verified_payload(in, path);
  std::istringstream body(payload, std::ios::binary);
  return read_snapshot_identity(body, path);
}

std::string canonical_state(const std::vector<core::clusterer_state>& shards,
                            bool include_scan) {
  // key -> (owning shard, serialised canonical bucket bytes).
  std::map<std::int64_t, std::string> buckets;
  std::uint64_t total_records = 0;
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const auto& state = shards[s];
    total_records += state.store.size();
    for (const auto& bucket : state.buckets) {
      std::ostringstream blob(std::ios::binary);
      put(blob, bucket.key);
      put(blob, static_cast<std::uint64_t>(bucket.members.size()));
      for (std::size_t i = 0; i < bucket.members.size(); ++i) {
        const auto& r = state.store.at(bucket.members[i]);
        const auto words = r.hv.words();
        blob.write(reinterpret_cast<const char*>(words.data()),
                   static_cast<std::streamsize>(words.size() * sizeof(std::uint64_t)));
        put(blob, r.precursor_mz);
        put(blob, r.precursor_charge);
        put(blob, r.label);
        if (include_scan) put(blob, r.scan);
        put(blob, bucket.local_labels[i]);
      }
      put(blob, bucket.next_local);
      auto [it, inserted] = buckets.try_emplace(bucket.key, blob.str());
      if (!inserted) {
        throw spechd::error("bucket " + std::to_string(bucket.key) +
                            " appears in more than one shard");
      }
    }
  }
  std::ostringstream out(std::ios::binary);
  put(out, total_records);
  put(out, static_cast<std::uint64_t>(buckets.size()));
  for (const auto& [key, blob] : buckets) out << blob;
  return out.str();
}

}  // namespace spechd::serve
