#include "serve/shard.hpp"

#include <algorithm>
#include <future>
#include <utility>

#include "hdc/bundle.hpp"
#include "hdc/cpu_kernels.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"

namespace spechd::serve {

namespace {

/// Time-stamps an enqueue when timing is armed (epoch = disarmed marker);
/// the paired record on the writer thread charges the gap to the
/// queue-wait histogram — the cross-thread stage a request-thread span
/// cannot cover.
std::chrono::steady_clock::time_point queue_wait_start() noexcept {
  return obs::armed() ? std::chrono::steady_clock::now()
                      : std::chrono::steady_clock::time_point{};
}

void record_queue_wait(std::chrono::steady_clock::time_point enqueued_at) noexcept {
  if (enqueued_at == std::chrono::steady_clock::time_point{}) return;
  static auto& wait_ns =
      obs::registry::instance().histogram("spechd_ingest_queue_wait_ns");
  wait_ns.record(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - enqueued_at)
          .count()));
}

obs::histogram& shard_apply_ns() {
  static auto& h = obs::registry::instance().histogram("spechd_ingest_apply_ns");
  return h;
}

}  // namespace

const char* shard_health_name(shard_health health) noexcept {
  switch (health) {
    case shard_health::healthy: return "healthy";
    case shard_health::degraded: return "degraded";
    case shard_health::failed: return "failed";
  }
  return "?";
}

shard::shard(std::size_t id, const core::spechd_config& config, core::assign_mode mode,
             std::size_t queue_capacity, std::size_t publish_every)
    : id_(id),
      mode_(mode),
      publish_every_(publish_every == 0 ? 1 : publish_every),
      clusterer_(config, mode),
      queue_(queue_capacity) {
  view_.store(std::make_shared<shard_view>());  // empty view: queries never see null
  writer_ = std::thread([this] { writer_loop(); });
}

void shard::attach_journal(std::unique_ptr<journal_writer> journal) {
  // Pre-ingest only (see header): the writer thread is parked in
  // queue_.pop(), and the queue mutex orders this store before any job
  // that could read journal_.
  journal_ = std::move(journal);
}

shard::~shard() {
  queue_.close();
  if (writer_.joinable()) writer_.join();
}

void shard::writer_loop() {
  // Heartbeat once per job: the watchdog flags this writer if it wedges
  // inside a job (or the queue machinery) past the configured deadline.
  auto beat =
      obs::watchdog::instance().register_component("shard-" + std::to_string(id_) +
                                                   "/writer");
  // Jobs are plain closures; apply_batch wraps its own errors, and
  // run_exclusive routes errors through its promise, so nothing here
  // should throw — but a writer that dies would deadlock drain(), so
  // catch anything that slips through and record it.
  while (auto job = queue_.pop()) {
    beat.pulse();
    try {
      (*job)();
    } catch (...) {
      std::lock_guard lock(error_mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
  }
  beat.retire();
}

void shard::update_status() const {
  // Mirror into the crash-dump status table (plain relaxed atomics the
  // fatal handler and the get_debug_dump frame read without touching this
  // object). Shards past k_max_status_shards share the last slot.
  auto& st = obs::status_shard(id_);
  st.health.store(static_cast<std::uint32_t>(health()), std::memory_order_relaxed);
  st.generation.store(journal_generation(), std::memory_order_relaxed);
  st.journal_bytes.store(journal_bytes(), std::memory_order_relaxed);
  st.journal_records.store(journal_records(), std::memory_order_relaxed);
  st.queue_depth.store(queue_.size(), std::memory_order_relaxed);
}

bool shard::enqueue(std::vector<ms::spectrum> batch) {
  if (batch.empty()) return true;
  // Degraded/failed shards are read-only: reject up front instead of
  // queueing a batch the writer would have to drop.
  if (health() != shard_health::healthy) return false;
  const auto enqueued_at = queue_wait_start();
  return queue_.push([this, batch = std::move(batch), enqueued_at]() mutable {
    record_queue_wait(enqueued_at);
    apply_batch(std::move(batch));
  });
}

bool shard::enqueue_txn(std::vector<ms::spectrum> batch, std::uint64_t txn_id,
                        std::shared_ptr<txn_barrier> barrier, bool coordinator) {
  SPECHD_EXPECTS(journal_ != nullptr);
  SPECHD_EXPECTS(!batch.empty());
  if (health() != shard_health::healthy) return false;
  const auto enqueued_at = queue_wait_start();
  return queue_.push([this, batch = std::move(batch), txn_id,
                      barrier = std::move(barrier), coordinator,
                      enqueued_at]() mutable {
    record_queue_wait(enqueued_at);
    apply_txn_batch(std::move(batch), txn_id, barrier, coordinator);
  });
}

void shard::record_error(std::exception_ptr error) {
  std::lock_guard lock(error_mutex_);
  if (!first_error_) first_error_ = std::move(error);
}

void shard::set_health(shard_health health, const std::string& why) {
  {
    std::lock_guard lock(error_mutex_);
    const auto current = health_.load(std::memory_order_relaxed);
    if (static_cast<int>(health) <= static_cast<int>(current)) return;
    health_.store(health, std::memory_order_relaxed);
    health_error_ = why;
  }
  obs::record_event(obs::event_kind::health_transition,
                    static_cast<std::uint64_t>(health), id_);
  update_status();
}

std::string shard::health_message() const {
  std::lock_guard lock(error_mutex_);
  return health_error_;
}

bool shard::heal_degraded() {
  std::lock_guard lock(error_mutex_);
  if (health_.load(std::memory_order_relaxed) != shard_health::degraded) return false;
  health_.store(shard_health::healthy, std::memory_order_relaxed);
  health_error_.clear();
  return true;
}

void shard::apply_batch(std::vector<ms::spectrum> batch) {
  const std::size_t submitted = batch.size();
  bool journaled_ok = true;
  const std::uint64_t journal_mark = journal_ ? journal_->bytes() : 0;
  if (journal_) {
    // Write-ahead: the journal record lands (fsynced per the group-commit
    // policy) before the batch mutates any state, so recovery can never
    // be missing an applied batch.
    try {
      journal_->append_batch(batch);
      obs::record_event(obs::event_kind::journal_append, journal_->records(),
                        journal_->bytes());
    } catch (...) {
      journaled_ok = false;
      record_error(std::current_exception());
      // The append may have failed *after* the frame landed (group-commit
      // fsync error): since the batch will be dropped, the record must go
      // too, or recovery would replay a batch this run never applied.
      try {
        journal_->rollback_to(journal_mark);
        set_health(shard_health::degraded, "journal append failed; batch dropped");
      } catch (...) {
        record_error(std::current_exception());
        set_health(shard_health::failed,
                   "journal rollback failed after a failed append; the journal may "
                   "hold records this shard never applied");
      }
    }
  }
  if (journaled_ok) {
    try {
      obs::trace_span apply_span(shard_apply_ns(), obs::stage::shard_apply);
      const auto report = clusterer_.push_batch(batch);
      apply_span.finish();
      ingested_.fetch_add(report.added, std::memory_order_relaxed);
      dropped_.fetch_add(submitted - report.added, std::memory_order_relaxed);
      obs::record_event(obs::event_kind::ingest_batch, report.added, id_);
    } catch (...) {
      record_error(std::current_exception());
      // The record was journaled but the batch was never applied: remove
      // it again, or replay would resurrect a batch this service dropped
      // (and a deterministic apply failure would brick every recovery).
      if (journal_) {
        try {
          journal_->rollback_to(journal_mark);
          set_health(shard_health::degraded, "batch apply failed; batch dropped");
        } catch (...) {
          record_error(std::current_exception());
          set_health(shard_health::failed,
                     "journal rollback failed after a failed apply; the journal may "
                     "hold records this shard never applied");
        }
      } else {
        set_health(shard_health::degraded, "batch apply failed; batch dropped");
      }
    }
  } else {
    // An unjournaled batch must not be applied (recovery would silently
    // miss it); it is dropped and the journal error surfaces on drain().
    dropped_.fetch_add(submitted, std::memory_order_relaxed);
  }
  batches_.fetch_add(1, std::memory_order_relaxed);
  update_status();
  // Coalesced republish: rebuild views every publish_every-th batch, and
  // always when the queue just ran dry (an idle shard's view is current).
  ++pending_publishes_;
  if (pending_publishes_ >= publish_every_ || queue_.size() == 0) {
    publish(/*all=*/false);
  }
}

void shard::apply_txn_batch(std::vector<ms::spectrum> batch, std::uint64_t txn_id,
                            const std::shared_ptr<txn_barrier>& barrier,
                            bool coordinator) {
  const std::size_t submitted = batch.size();
  const std::uint64_t journal_mark = journal_->bytes();
  // The service may shrink `participants` concurrently when a peer's
  // enqueue is rejected (the transaction then aborts and every data
  // record is rolled back, so the count written here never reaches
  // recovery) — read it under the barrier mutex all the same.
  std::uint32_t declared_participants;
  {
    std::lock_guard lock(barrier->mutex);
    declared_participants = static_cast<std::uint32_t>(barrier->participants);
  }
  // Phase 1: write-ahead data record, tagged with the transaction.
  bool my_append_ok = true;
  try {
    journal_->append_batch(batch, txn_id, declared_participants);
  } catch (...) {
    my_append_ok = false;
    record_error(std::current_exception());
  }
  // Rendezvous: every participant's record is on disk (or has failed)
  // before the commit record may seal the transaction. Deadlock-freedom:
  // the service enqueues all of a transaction's jobs atomically (under
  // its txn mutex) before any job of a later transaction, and queues are
  // FIFO — so the peers this wait depends on are already queued and none
  // of the jobs ahead of them waits on this shard.
  {
    std::unique_lock lock(barrier->mutex);
    if (!my_append_ok) barrier->aborted = true;
    ++barrier->journaled;
    if (barrier->journaled >= barrier->participants) {
      barrier->cv.notify_all();
    } else {
      barrier->cv.wait(lock,
                       [&] { return barrier->journaled >= barrier->participants; });
    }
  }
  // Phase 2: the coordinator (lowest participating shard) seals the
  // transaction with a commit record — or aborts it.
  bool my_fault = !my_append_ok;
  if (coordinator) {
    bool do_commit;
    {
      std::lock_guard lock(barrier->mutex);
      do_commit = !barrier->aborted;
    }
    if (do_commit) {
      try {
        journal_->append_commit(txn_id);
      } catch (...) {
        my_fault = true;
        record_error(std::current_exception());
        std::lock_guard lock(barrier->mutex);
        barrier->aborted = true;
      }
    }
    {
      std::lock_guard lock(barrier->mutex);
      barrier->commit_done = true;
    }
    barrier->cv.notify_all();
  } else {
    std::unique_lock lock(barrier->mutex);
    barrier->cv.wait(lock, [&] { return barrier->commit_done; });
  }
  bool aborted;
  {
    std::lock_guard lock(barrier->mutex);
    aborted = barrier->aborted;
  }
  // Phase 3: one outcome everywhere.
  if (aborted) {
    // All participants roll their data record back (the coordinator's
    // rollback also removes a partially-appended commit record — its
    // append already truncated itself, so the mark covers everything).
    dropped_.fetch_add(submitted, std::memory_order_relaxed);
    try {
      journal_->rollback_to(journal_mark);
      if (my_fault) {
        set_health(shard_health::degraded,
                   "cross-shard transaction aborted by this shard; batch dropped");
      }
      // An innocent participant stays healthy: its journal matches its
      // applied state, and the abort is the *transaction's* clean
      // all-or-nothing rejection, accounted in dropped counters and the
      // faulty shard's health.
    } catch (...) {
      record_error(std::current_exception());
      set_health(shard_health::failed,
                 "cross-shard transaction rollback failed; the journal may hold "
                 "records this shard never applied");
    }
    batches_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Committed: apply. A post-commit apply failure cannot be rolled back —
  // the commit record already promises the batch everywhere and peers are
  // applying it — so the shard goes failed (journal ⊃ applied; recovery
  // will apply the batch from the journal).
  try {
    obs::trace_span apply_span(shard_apply_ns(), obs::stage::shard_apply);
    const auto report = clusterer_.push_batch(batch);
    apply_span.finish();
    ingested_.fetch_add(report.added, std::memory_order_relaxed);
    dropped_.fetch_add(submitted - report.added, std::memory_order_relaxed);
    obs::record_event(obs::event_kind::ingest_batch, report.added, id_);
  } catch (...) {
    record_error(std::current_exception());
    set_health(shard_health::failed,
               "batch apply failed after its cross-shard commit; restart to recover "
               "the committed state from the journal");
  }
  batches_.fetch_add(1, std::memory_order_relaxed);
  update_status();
  ++pending_publishes_;
  if (pending_publishes_ >= publish_every_ || queue_.size() == 0) {
    publish(/*all=*/false);
  }
}

void shard::run_on_writer(std::function<void()> fn) {
  auto done = std::make_shared<std::promise<void>>();
  auto future = done->get_future();
  const bool accepted = queue_.push([fn = std::move(fn), done] {
    try {
      fn();
      done->set_value();
    } catch (...) {
      done->set_exception(std::current_exception());
    }
  });
  if (!accepted) throw spechd::error("shard " + std::to_string(id_) + " is shut down");
  future.get();
}

void shard::run_exclusive(const std::function<void(core::incremental_clusterer&)>& fn,
                          bool republish) {
  run_on_writer([this, &fn, republish] {
    std::exception_ptr error;
    try {
      fn(clusterer_);
    } catch (...) {
      // Publish anyway: fn may have partially mutated nothing (import
      // validates first), but republishing a consistent state is cheap
      // and keeps views honest if it did.
      error = std::current_exception();
    }
    if (republish) {
      publish(/*all=*/true);
    } else {
      flush_publish();
    }
    if (journal_) {
      // Exclusive sections double as durability barriers (drain, export).
      try {
        journal_->sync();
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    if (error) std::rethrow_exception(error);
  });
}

void shard::drain() {
  run_exclusive([](core::incremental_clusterer&) {}, /*republish=*/false);
  std::lock_guard lock(error_mutex_);
  if (first_error_) {
    auto error = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(error);
  }
}

bool shard::maintain(bool only_if_idle) {
  if (only_if_idle) {
    if (queue_.size() != 0) return false;
    if (view_.load()->dirty_buckets == 0) return false;
  }
  auto job = [this] {
    // Re-check on the writer thread: a drain/recluster may have raced the
    // poll. Skipping writes no journal record, so replay stays exact.
    if (clusterer_.dirty_bucket_count() == 0) return;
    if (journal_) journal_->append_recluster();
    clusterer_.rebuild_dirty_buckets();
    obs::record_event(obs::event_kind::maintenance_action, /*reclusters=*/1,
                      /*deferred=*/0);
    publish(/*all=*/true);
  };
  return only_if_idle ? queue_.try_push(std::move(job)) : queue_.push(std::move(job));
}

core::clusterer_state shard::export_and_rotate_journal(const journal_head& head,
                                                       const journal_file_header& header) {
  SPECHD_EXPECTS(journal_ != nullptr);
  core::clusterer_state state;
  run_on_writer([this, &state, &head, &header] {
    state = clusterer_.export_state();
    journal_->rotate(head, header);
  });
  return state;
}

void shard::publish(bool all) {
  static auto& publish_ns =
      obs::registry::instance().histogram("spechd_view_publish_ns");
  static auto& publishes =
      obs::registry::instance().counter("spechd_view_publishes_total");
  publishes.add(1);
  obs::trace_span span(publish_ns, obs::stage::view_publish);
  const auto previous = view_.load();
  auto next = std::make_shared<shard_view>();
  if (all) {
    // Full republish (run_exclusive: import/recluster may have relabelled
    // or *removed* buckets): rebuild the map from the clusterer alone so
    // stale buckets cannot survive in query views.
    published_shape_.clear();
  } else {
    next->buckets = previous->buckets;  // shared_ptr copies: O(buckets)
  }

  std::size_t dirty = 0;
  clusterer_.for_each_bucket([&](const core::incremental_clusterer::bucket_ref& bucket) {
    dirty += bucket.dirty ? 1 : 0;
    const auto shape = std::make_pair(bucket.members.size(), bucket.cluster_count);
    auto [it, inserted] = published_shape_.try_emplace(bucket.key, shape);
    if (!all && !inserted && it->second == shape) return;  // untouched since last publish
    it->second = shape;

    auto fresh = std::make_shared<bucket_view>();
    const std::size_t n = bucket.members.size();
    fresh->member_count = n;
    fresh->labels = bucket.local_labels;
    fresh->cluster_count = bucket.cluster_count;
    if (n > 0) {
      const auto& first_hv = clusterer_.record(bucket.members[0]).hv;
      fresh->hv_words = first_hv.word_count();
      fresh->packed.resize(n * fresh->hv_words);
      std::vector<const std::uint64_t*> srcs(n);
      for (std::size_t i = 0; i < n; ++i) {
        srcs[i] = clusterer_.record(bucket.members[i]).hv.words().data();
      }
      hdc::kernels::pack_operands(srcs.data(), n, fresh->hv_words, fresh->packed.data());

      if (mode_ == core::assign_mode::bundle_representative && fresh->cluster_count > 0) {
        // Queries in bundle mode compare against the per-cluster majority
        // representatives, exactly like assignment. Rebuilding the bundles
        // from the members reproduces the clusterer's (per-bit counters
        // are order-free), so the view cannot drift from ingest state.
        const auto clusters = static_cast<std::size_t>(fresh->cluster_count);
        std::vector<hdc::incremental_bundle> bundles(
            clusters, hdc::incremental_bundle(first_hv.dim()));
        for (std::size_t i = 0; i < n; ++i) {
          bundles[static_cast<std::size_t>(bucket.local_labels[i])].add(
              clusterer_.record(bucket.members[i]).hv);
        }
        fresh->rep_packed.resize(clusters * fresh->hv_words);
        for (std::size_t c = 0; c < clusters; ++c) {
          const auto rep = bundles[c].majority();
          const auto words = rep.words();
          std::copy(words.begin(), words.end(),
                    fresh->rep_packed.begin() +
                        static_cast<std::ptrdiff_t>(c * fresh->hv_words));
        }
      }
    }
    next->buckets[bucket.key] = std::move(fresh);
  });

  next->record_count = clusterer_.size();
  next->cluster_count = clusterer_.cluster_count();
  next->dirty_buckets = dirty;
  next->epoch = ++epoch_;
  view_.store(std::move(next));
  pending_publishes_ = 0;
  obs::record_event(obs::event_kind::view_publish, epoch_, id_);
}

void shard::flush_publish() {
  if (pending_publishes_ > 0) publish(/*all=*/false);
}

query_result shard::query(const hdc::hypervector& hv, std::int64_t bucket_key,
                          double threshold) const {
  query_result result;
  result.encodable = true;
  result.bucket_key = bucket_key;
  result.shard = id_;

  const auto view = view_.load();
  result.view_epoch = view->epoch;
  const auto it = view->buckets.find(bucket_key);
  if (it == view->buckets.end() || it->second->member_count == 0) return result;
  const bucket_view& bucket = *it->second;
  SPECHD_EXPECTS(bucket.hv_words == hv.word_count());

  static auto& probe_ns =
      obs::registry::instance().histogram("spechd_query_bucket_probe_ns");
  static auto& select_ns =
      obs::registry::instance().histogram("spechd_query_select_ns");

  // One packed Hamming-tile row against every member — the same kernels
  // (and the same normalisation) the ingest assignment path uses.
  obs::trace_span probe_span(probe_ns, obs::stage::bucket_probe);
  const std::size_t n = bucket.member_count;
  std::vector<std::uint32_t> counts(n);
  hdc::kernels::hamming_tile_packed(hv.words().data(), 1, bucket.packed.data(), n,
                                    bucket.hv_words, counts.data());

  const double dim = static_cast<double>(hv.dim());
  for (std::size_t i = 0; i < n; ++i) {
    result.nearest_member =
        std::min(result.nearest_member, static_cast<double>(counts[i]) / dim);
  }
  probe_span.finish();

  obs::trace_span select_span(select_ns, obs::stage::select);
  double best = threshold;
  std::int32_t best_label = -1;
  if (mode_ == core::assign_mode::bundle_representative) {
    // Bundle mode assigns against per-cluster majority representatives;
    // query the same way (one tiny tile over the reps). Tie semantics
    // match assign(): ascending label order, `<=` keeps the later label.
    const auto clusters = static_cast<std::size_t>(bucket.cluster_count);
    std::vector<std::uint32_t> rep_counts(clusters);
    hdc::kernels::hamming_tile_packed(hv.words().data(), 1, bucket.rep_packed.data(),
                                      clusters, bucket.hv_words, rep_counts.data());
    for (std::size_t c = 0; c < clusters; ++c) {
      const double d = static_cast<double>(rep_counts[c]) / dim;
      if (d <= best) {
        best = d;
        best_label = static_cast<std::int32_t>(c);
      }
    }
  } else {
    // Complete linkage: per cluster, the *worst* member distance must
    // pass the cut; best worst wins. Same criterion as assign().
    std::map<std::int32_t, double> worst;
    for (std::size_t i = 0; i < n; ++i) {
      const double d = static_cast<double>(counts[i]) / dim;
      auto [w, inserted] = worst.try_emplace(bucket.labels[i], d);
      if (!inserted) w->second = std::max(w->second, d);
    }
    for (const auto& [label, w] : worst) {
      if (w <= best) {
        best = w;
        best_label = label;
      }
    }
  }
  if (best_label >= 0) {
    result.matched = true;
    result.local_label = best_label;
    result.distance = best;
    result.cluster_size = static_cast<std::size_t>(
        std::count(bucket.labels.begin(), bucket.labels.end(), best_label));
  }
  return result;
}

shard_stats shard::stats() const {
  shard_stats s;
  s.ingested = ingested_.load(std::memory_order_relaxed);
  s.dropped = dropped_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.queue_depth = queue_.size();
  const auto view = view_.load();
  s.record_count = view->record_count;
  s.cluster_count = view->cluster_count;
  s.dirty_buckets = view->dirty_buckets;
  s.view_epoch = view->epoch;
  s.journal_bytes = journal_bytes();
  s.journal_records = journal_records();
  s.health = health();
  s.last_error = health_message();
  return s;
}

}  // namespace spechd::serve
