// Crash recovery for a journaled clustering service.
//
// A journal directory holds at most a few *generations* of durable state
// (see serve/journal.hpp): `base-<g>.sphsnap` snapshots plus per-shard
// `shard-<s>-<g>.sphjrnl` journals, where the journal at generation g
// always contains exactly the records applied after the state in
// snapshot g. Recovery therefore:
//
//   1. restores the highest-generation snapshot present (or starts from
//      the empty state when none is);
//   2. replays, per shard, every journal at generations >= that base, in
//      generation order — ingest-batch records re-run the deterministic
//      push_batch pipeline, recluster records re-run
//      rebuild_dirty_buckets at the same stream position;
//   3. tolerates a torn tail on a shard's *newest* journal by stopping at
//      the last complete record (the writer truncates there when it
//      reopens the file). A torn record in a non-newest journal means the
//      directory's history has a hole and is refused;
//   4. applies cross-shard transactions all-or-nothing: replay happens in
//      two passes — the first collects, across every shard's surviving
//      generations, which transaction ids have a commit record and which
//      shards' data records are present; the second replays, skipping any
//      txn-tagged batch whose commit record or peer data records did not
//      survive (a torn multi-shard batch thus vanishes everywhere instead
//      of applying on some shards only). Plain records (txn_id 0) replay
//      unconditionally, as before.
//
// The result is bit-identical to the state the service held when the
// durable prefix was written — pinned by tests/serve/test_journal.cpp at
// shard/thread counts {1, 4}, including a journaled maintenance
// recluster and a torn final record.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/incremental.hpp"
#include "serve/journal.hpp"
#include "serve/snapshot.hpp"

namespace spechd::serve {

/// What a recovery pass did — kept by the service (and printed by
/// `spechd recover`) so operators can see how much journal was replayed
/// and whether a torn tail was dropped.
struct recovery_report {
  bool recovered = false;  ///< false: the directory held no prior state
  /// Generation of the snapshot the replay started from (nullopt: replay
  /// started from the empty state).
  std::optional<std::uint64_t> base_snapshot_generation;
  std::uint64_t journal_files = 0;
  std::uint64_t batches_replayed = 0;
  std::uint64_t spectra_replayed = 0;
  std::uint64_t reclusters_replayed = 0;
  /// Bytes past the last complete record of torn journals (dropped).
  std::uint64_t torn_bytes = 0;
  /// Cross-shard transaction data records skipped because the commit
  /// record or a peer shard's data record did not survive (the
  /// all-or-nothing guarantee: the whole batch vanished, nowhere applied).
  std::uint64_t txn_batches_dropped = 0;
  /// Highest transaction id seen anywhere in the replayed journals; the
  /// service continues numbering past it.
  std::uint64_t max_txn_id = 0;
  double seconds = 0.0;
};

/// Everything the service needs to resume after recovery: per-shard
/// states to import plus where each shard's writer should continue its
/// journal.
struct recovered_state {
  recovery_report report;
  std::vector<core::clusterer_state> shards;   ///< shard index order
  std::vector<journal_head> journal_heads;     ///< shard index order
};

/// Reads the identity block of the newest durable state in `dir`
/// (snapshot first, else any journal header); nullopt for a fresh/missing
/// directory. Lets `spechd recover` configure a service from the
/// directory alone, mirroring `serve --restore`.
std::optional<snapshot_identity> probe_journal_dir(const std::string& dir);

/// Replay progress, reported once per journal generation replayed (pass
/// 2) so large-journal recoveries are observable instead of silent —
/// `spechd recover` prints one line per callback.
struct recovery_progress {
  std::size_t shard = 0;
  std::uint64_t generation = 0;
  /// Records in this generation's journal (batches + reclusters + commits).
  std::uint64_t records_replayed = 0;
  /// Cumulative records across the whole recovery so far.
  std::uint64_t total_records_replayed = 0;
  /// Cumulative replay rate (records/sec since recovery started).
  double records_per_sec = 0.0;
  /// This generation ended in a torn tail; `torn_bytes` were dropped.
  bool torn_tail = false;
  std::uint64_t torn_bytes = 0;
};
using recovery_progress_fn = std::function<void(const recovery_progress&)>;

/// Rebuilds the per-shard clusterer states from `dir` and computes where
/// each shard's journal continues. `pipeline`/`mode`/`shards` must match
/// the directory's identity block (dim, seed, threshold, bucketing, mode,
/// digest, *and* shard count — per-shard journals do not re-route);
/// mismatch throws parse_error. Corrupt snapshots/headers and non-tail
/// torn records throw parse_error; an unreadable directory throws
/// io_error. A fresh directory yields empty states and fresh
/// generation-0 heads (report.recovered = false).
recovered_state recover_journal_dir(const std::string& dir,
                                    const core::spechd_config& pipeline,
                                    core::assign_mode mode, std::size_t shards,
                                    const snapshot_identity& expected_identity,
                                    const recovery_progress_fn& progress = {});

}  // namespace spechd::serve
