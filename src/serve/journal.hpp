// Per-shard append-only write-ahead journal (.sphjrnl) for the serving
// layer.
//
// A `.sphsnap` snapshot is O(total state) per checkpoint; the journal
// bounds that cost for long-lived services by making durability
// incremental: each shard's single writer thread appends one framed
// record per ingest batch *before* applying it, so the on-disk journal is
// always a superset of the applied stream and recovery can rebuild the
// exact live state by replaying records on top of the newest snapshot
// (see serve/recovery.hpp). Maintenance reclusters are journaled too, at
// the exact stream position they ran, so replay reproduces them.
//
// File format (`shard-<s>-<gen>.sphjrnl`):
//
//   magic "SPJL", version u32
//   u32 header_bytes, header payload, u32 CRC-32(header payload)
//     header: shard_index u32, shard_count u32, generation u64,
//             snapshot identity block (same fields as .sphsnap — a journal
//             is rejected unless the replaying service matches exactly)
//   records, each:
//     u32 payload_bytes, u32 CRC-32(payload)
//     payload: type u8 (1 = ingest batch, 2 = maintenance recluster,
//              3 = cross-shard commit),
//              seq u64 (per shard, strictly increasing across generations),
//              body (batch: txn_id u64 + participants u32, then the raw
//              spectra as submitted — replay re-runs the same deterministic
//              preprocess/encode/assign pipeline; commit: txn_id u64;
//              recluster: empty)
//
// Cross-shard atomicity: a multi-shard ingest batch (serve_config
// ::atomic_ingest) journals each shard's slice as an ingest-batch record
// tagged with a service-wide txn_id and the participant count, then the
// coordinating shard appends one commit record. Recovery applies the
// transaction's records only when the commit record *and* every
// participant's data record survived — so a torn multi-shard batch
// recovers all-or-nothing (see serve/recovery.hpp). txn_id 0 marks plain
// single-shard records, which commit individually as before.
//
// Torn tails are expected (power loss mid-append): scanning stops at the
// first record whose frame is truncated or whose CRC fails, reports the
// byte offset of the last complete record, and the writer truncates there
// before resuming appends. Durability is group-committed: records are
// written immediately (one write() each) but fsynced only every
// `group_commit_records` or `group_commit_interval`, whichever trips
// first, so a power cut can cost at most the un-synced tail — never a
// torn state — and a hot writer never pays one fsync per batch.
//
// Generations tie journals to snapshots: the journal at generation g
// contains exactly the records applied *after* the state stored in
// `base-<g>.sphsnap` (or after the empty state when g has no snapshot).
// Compaction (clustering_service::compact_journal) rotates every shard to
// generation g+1 first — capturing each shard's state at its rotation
// point — then writes `base-<g+1>.sphsnap` and deletes older generations;
// a crash anywhere in that sequence leaves a directory the recovery scan
// (scan_journal_dir) still reads back exactly.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ms/spectrum.hpp"
#include "serve/snapshot.hpp"

namespace spechd::serve {

/// Journal knobs carried in serve_config. An empty `dir` disables
/// journaling entirely (the PR-4 behaviour: snapshots only, on demand).
struct journal_config {
  /// Directory holding `base-<gen>.sphsnap` + `shard-<s>-<gen>.sphjrnl`;
  /// created if missing. Empty = journaling disabled.
  std::string dir;
  /// Group commit: fsync once at least N records accumulated unsynced,
  /// or once the last sync is older than `group_commit_interval` (checked
  /// at every append) — so a hot writer amortises fsyncs across many
  /// records while the power-cut loss window stays bounded by the
  /// interval plus any final burst tail. drain() always syncs (the
  /// explicit durability barrier).
  std::size_t group_commit_records = 128;
  /// Default in the usual database group-commit range: a power cut costs
  /// at most this much of the hottest stream (process crashes cost
  /// nothing — the page cache survives those).
  std::chrono::milliseconds group_commit_interval{200};
  /// `false` skips fsync entirely (page-cache durability only — survives
  /// process crashes, not power loss; useful for tests and benches).
  bool fsync = true;
  /// Compaction thresholds (checked by the maintenance scheduler and
  /// maybe_compact_journal): rotate once any shard's journal exceeds
  /// either bound. 0 disables that bound.
  std::uint64_t compact_max_bytes = 64ULL << 20;
  std::uint64_t compact_max_records = 0;
};

/// Fixed per-file header: which shard/generation this journal belongs to
/// and the identity of the service that wrote it.
struct journal_file_header {
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 0;
  std::uint64_t generation = 0;
  snapshot_identity identity;

  friend bool operator==(const journal_file_header&, const journal_file_header&) = default;
};

/// One parsed journal record.
struct journal_record {
  enum class kind : std::uint8_t { ingest_batch = 1, recluster = 2, commit = 3 };
  kind type = kind::ingest_batch;
  std::uint64_t seq = 0;
  /// Cross-shard transaction id (ingest_batch and commit records); 0 on a
  /// plain single-shard batch.
  std::uint64_t txn_id = 0;
  /// How many shards hold a data record for this transaction
  /// (ingest_batch records with txn_id != 0 only).
  std::uint32_t participants = 0;
  std::vector<ms::spectrum> batch;  ///< ingest_batch only
};

/// Result of scanning one journal file.
struct journal_scan {
  journal_file_header header;
  std::vector<journal_record> records;
  /// Offset one past the last complete record — the truncation point when
  /// the tail is torn, the file size otherwise.
  std::uint64_t valid_bytes = 0;
  /// True when trailing bytes past `valid_bytes` were dropped (truncated
  /// frame or CRC mismatch on the final record).
  bool torn = false;
};

/// Parses and CRC-verifies a journal file, stopping at (and reporting) a
/// torn tail. Throws parse_error on a bad/corrupt *header*, io_error when
/// the file cannot be read.
journal_scan read_journal_file(const std::string& path);

/// Reads just the verified header (cheap — no record scan).
journal_file_header read_journal_header_file(const std::string& path);

/// Classifies a journal file's header without throwing: `ok` (records may
/// follow), `truncated` (the file ends before the header frame completes
/// — a crash between file creation and the header fsync; provably
/// record-free, safe to recreate), or `corrupt` (bytes present but wrong:
/// bad magic/version/CRC — never silently discarded).
enum class journal_header_status { ok, truncated, corrupt };
journal_header_status probe_journal_header(const std::string& path);

// --- directory layout --------------------------------------------------------

/// `<dir>/base-<gen>.sphsnap` — the compaction snapshot of generation gen.
std::string journal_snapshot_path(const std::string& dir, std::uint64_t generation);

/// `<dir>/shard-<s>-<gen>.sphjrnl`.
std::string journal_shard_path(const std::string& dir, std::size_t shard,
                               std::uint64_t generation);

/// What a journal directory currently holds (parsed from file names only —
/// contents are validated later, during recovery).
struct journal_dir_state {
  /// Highest generation seen across snapshots and journals; 0 for a fresh
  /// (or missing) directory.
  std::uint64_t max_generation = 0;
  /// Highest generation with a `base-<gen>.sphsnap` present.
  std::optional<std::uint64_t> snapshot_generation;
  /// Every `base-<gen>.sphsnap` present (leftovers included).
  std::vector<std::uint64_t> snapshots;
  /// (shard, generation) of every journal file present.
  struct journal_entry {
    std::size_t shard = 0;
    std::uint64_t generation = 0;
  };
  std::vector<journal_entry> journals;

  bool empty() const noexcept { return !snapshot_generation && journals.empty(); }
};

/// Lists the recognised snapshot/journal files in `dir` (missing dir =
/// empty state). Ignores foreign files and `.tmp` leftovers.
journal_dir_state scan_journal_dir(const std::string& dir);

/// fsyncs a directory so a rename/create inside it is durable.
void fsync_dir(const std::string& dir);

/// fsyncs a regular file (used on the compaction snapshot before it is
/// renamed into place).
void fsync_file(const std::string& path);

/// Deletes recognised snapshot/journal files whose generation is below
/// `keep_from` — redundant once `base-<keep_from>.sphsnap` is durable.
void remove_stale_generations(const std::string& dir, std::uint64_t keep_from);

// --- writer ------------------------------------------------------------------

/// Where a shard's writer should (re)open its journal: either continue an
/// existing file — truncated to `valid_bytes` first if the tail was torn —
/// or create a fresh one.
struct journal_head {
  std::string path;
  std::uint64_t generation = 0;
  bool exists = false;            ///< continue vs create
  std::uint64_t valid_bytes = 0;  ///< truncate-to offset when continuing
  std::uint64_t next_seq = 0;     ///< first seq to write
  std::uint64_t records = 0;      ///< records already in the file
};

/// Single-owner append handle for one shard's journal. All appends happen
/// on the shard's writer thread; `bytes()`/`records()` are atomic so the
/// maintenance thread can watch compaction thresholds concurrently.
class journal_writer {
public:
  /// Opens (or creates) the file per `head`, writing/validating the
  /// header. Throws io_error on filesystem failure.
  journal_writer(const journal_head& head, const journal_file_header& header,
                 const journal_config& config);
  ~journal_writer();

  journal_writer(const journal_writer&) = delete;
  journal_writer& operator=(const journal_writer&) = delete;

  /// Appends one framed record, group-committing fsyncs per the config
  /// (record-count threshold or interval since the last sync, whichever
  /// trips first). Throws io_error on write failure — the shard must
  /// then *not* apply the batch (write-ahead contract). A non-zero
  /// `txn_id` tags the record as one slice of a cross-shard transaction
  /// with `participants` data records; recovery applies it all-or-nothing
  /// with its commit record.
  void append_batch(const std::vector<ms::spectrum>& batch, std::uint64_t txn_id = 0,
                    std::uint32_t participants = 0);
  void append_recluster();

  /// Appends the commit record sealing cross-shard transaction `txn_id`
  /// (coordinator shard only, after every participant's data record is
  /// appended).
  void append_commit(std::uint64_t txn_id);

  /// fsyncs now (no-op when config.fsync is false or nothing is pending).
  void sync();

  /// Write-ahead compensation: restores the file to `bytes_before` (the
  /// bytes() value read just before an append) so a batch that was
  /// journaled but never applied — apply threw, or the append's own
  /// group-commit fsync failed after the frame landed — leaves no
  /// journal trace and recovery stays bit-identical to the live run.
  /// Idempotent: a no-op when nothing past the mark was written; also
  /// heals a poisoned writer when the truncate now succeeds. The
  /// truncation itself is fsynced (an un-synced rollback of an already-
  /// synced record would resurrect it on power loss). Poisons the writer
  /// (and throws io_error) on filesystem failure.
  void rollback_to(std::uint64_t bytes_before);

  /// Closes the current file and starts a fresh one at `head.path` for
  /// `header.generation`. Used by compaction, on the writer thread, right
  /// after the shard's state is exported — so the new file holds exactly
  /// the records that post-date the exported state.
  void rotate(const journal_head& head, const journal_file_header& header);

  std::uint64_t bytes() const noexcept { return bytes_.load(std::memory_order_relaxed); }
  std::uint64_t records() const noexcept {
    return records_.load(std::memory_order_relaxed);
  }
  std::uint64_t generation() const noexcept {
    return generation_.load(std::memory_order_relaxed);
  }
  const std::string& path() const noexcept { return path_; }

private:
  void open(const journal_head& head, const journal_file_header& header);
  void append_frame(const std::string& frame);
  void close();

  int fd_ = -1;
  std::string path_;
  journal_config config_;
  /// Set when a partial frame could not be rolled back: the file ends in
  /// garbage, so further appends would be unreachable at recovery. Every
  /// later append throws (and the shard drops the batch).
  bool failed_ = false;
  std::uint64_t next_seq_ = 0;
  std::size_t unsynced_records_ = 0;
  std::chrono::steady_clock::time_point last_sync_{};
  std::string scratch_;  ///< reused record-framing buffer (grow-only)
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> records_{0};
  std::atomic<std::uint64_t> generation_{0};
};

}  // namespace spechd::serve
