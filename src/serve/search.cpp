#include "serve/search.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <numeric>
#include <sstream>

#include "hdc/cpu_kernels.hpp"
#include "hdc/encoder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "preprocess/bucket.hpp"
#include "preprocess/pipeline.hpp"
#include "util/error.hpp"

namespace spechd::serve {

namespace {

constexpr char k_magic[4] = {'S', 'P', 'L', 'B'};
constexpr std::uint32_t k_version = 1;
/// Entry names come from spectrum titles / peptide sequences; anything past
/// this is a corrupted length field, not a name.
constexpr std::uint32_t k_max_name_bytes = 1u << 20;

template <typename T>
void put(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T get(std::istream& in, const std::string& source) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in) throw parse_error(source, 0, "truncated spectral library");
  return v;
}

}  // namespace

key_window shifted_key_window(double precursor_mz, int charge, double tolerance_da,
                              const preprocess::bucket_config& config) noexcept {
  const std::int64_t exact = preprocess::bucket_index(precursor_mz, charge, config);
  if (tolerance_da <= 0.0) return {exact, exact};
  // Eq. 1 buckets the (neutral-ish) mass (mz − H) × charge; an open
  // modification shifts that mass, not the m/z, so the window is ±tolerance
  // on the same scale the keys live on.
  const int c = charge > 0 ? charge : config.fallback_charge;
  const double mass = (precursor_mz - ms::hydrogen_mass) * c;
  key_window w;
  w.lo = static_cast<std::int64_t>(std::floor((mass - tolerance_da) / config.resolution));
  w.hi = static_cast<std::int64_t>(std::floor((mass + tolerance_da) / config.resolution));
  // Guard floating-point edge cases: the exact-match bucket is always in.
  w.lo = std::min(w.lo, exact);
  w.hi = std::max(w.hi, exact);
  return w;
}

snapshot_identity library_identity(const core::spechd_config& config) {
  snapshot_identity id;
  id.dim = static_cast<std::uint32_t>(config.encoder.dim);
  id.encoder_seed = config.encoder.seed;
  // Clustering-only knobs stay zero: a library is valid for any service
  // that *encodes and buckets* the same way, whatever its threshold,
  // assignment mode, or shard count.
  id.distance_threshold = 0.0;
  id.bucket_resolution = config.preprocess.bucketing.resolution;
  id.fallback_charge = config.preprocess.bucketing.fallback_charge;
  id.assign_mode = 0;
  id.shard_count = 0;
  id.config_digest = pipeline_digest(config);
  return id;
}

spectral_library spectral_library::from_spectra(const std::vector<ms::spectrum>& spectra,
                                                const core::spechd_config& config) {
  auto batch = preprocess::run_preprocessing(spectra, config.preprocess);
  const hdc::id_level_encoder encoder(config.encoder,
                                      config.preprocess.quantize.mz_bins,
                                      config.preprocess.quantize.intensity_levels);
  std::vector<library_entry> entries;
  std::vector<hdc::hypervector> hvs;
  entries.reserve(batch.spectra.size());
  hvs.reserve(batch.spectra.size());
  for (const auto& q : batch.spectra) {
    library_entry e;
    e.name = spectra[q.source_index].title;
    e.precursor_mz = q.precursor_mz;
    e.precursor_charge = q.precursor_charge;
    e.bucket_key =
        preprocess::bucket_index(q.precursor_mz, q.precursor_charge,
                                 config.preprocess.bucketing);
    entries.push_back(std::move(e));
    hvs.push_back(encoder.encode(q));
  }
  return assemble(std::move(entries), std::move(hvs), library_identity(config),
                  batch.dropped);
}

spectral_library spectral_library::from_peptides(const std::vector<ms::peptide>& peptides,
                                                 const std::vector<int>& charges,
                                                 const core::spechd_config& config) {
  std::vector<ms::spectrum> spectra;
  spectra.reserve(peptides.size() * charges.size());
  for (const auto& p : peptides) {
    for (const int z : charges) {
      auto s = ms::theoretical_spectrum(p, z);
      s.title = p.sequence() + "/" + std::to_string(z);
      spectra.push_back(std::move(s));
    }
  }
  return from_spectra(spectra, config);
}

spectral_library spectral_library::assemble(std::vector<library_entry> entries,
                                            std::vector<hdc::hypervector> hvs,
                                            const snapshot_identity& identity,
                                            std::size_t dropped) {
  spectral_library lib;
  lib.identity_ = identity;
  lib.words_ = (identity.dim + 63) / 64;
  lib.dropped_ = dropped;
  // Canonical gid order: (bucket key ascending, build arrival order). The
  // stable sort over an arrival-indexed permutation makes gids — and
  // therefore every tie-break downstream — a pure function of the input,
  // independent of how the caller shards or threads anything.
  std::vector<std::uint32_t> order(entries.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&entries](std::uint32_t a, std::uint32_t b) {
                     return entries[a].bucket_key < entries[b].bucket_key;
                   });
  lib.entries_.reserve(entries.size());
  for (const auto src : order) {
    const auto& e = entries[src];
    if (lib.buckets_.empty() || lib.buckets_.back().key != e.bucket_key) {
      bucket_block block;
      block.key = e.bucket_key;
      block.base = static_cast<std::uint32_t>(lib.entries_.size());
      lib.buckets_.push_back(std::move(block));
    }
    auto& block = lib.buckets_.back();
    const auto words = hvs[src].words();
    block.packed.insert(block.packed.end(), words.begin(), words.end());
    block.count += 1;
    lib.entries_.push_back(entries[src]);
  }
  return lib;
}

search_result spectral_library::search(const hdc::hypervector& query, double precursor_mz,
                                       int charge, std::size_t top_k,
                                       double tolerance_da) const {
  if (query.dim() != identity_.dim) {
    throw spechd::error("query hypervector dimension " + std::to_string(query.dim()) +
                        " does not match library dimension " +
                        std::to_string(identity_.dim));
  }
  search_result result;
  if (top_k == 0 || buckets_.empty()) return result;
  preprocess::bucket_config bucketing;
  bucketing.resolution = identity_.bucket_resolution;
  bucketing.fallback_charge = identity_.fallback_charge;
  const auto window = shifted_key_window(precursor_mz, charge, tolerance_da, bucketing);

  // Walk the (ascending-key) blocks inside the window: one packed Hamming
  // row + k-select per bucket, then merge the per-bucket winners by the
  // global (count, gid) key. Each block keeps at most top_k survivors, so
  // the merge set is tiny regardless of bucket sizes.
  static auto& probe_ns =
      obs::registry::instance().histogram("spechd_search_bucket_probe_ns");
  static auto& kselect_ns =
      obs::registry::instance().histogram("spechd_search_k_select_ns");
  static auto& merge_ns =
      obs::registry::instance().histogram("spechd_search_merge_ns");

  std::vector<std::uint64_t> merged;  // (count << 32) | gid — total order
  std::vector<std::uint32_t> counts;
  std::vector<hdc::kernels::select_entry> selected;
  auto it = std::lower_bound(buckets_.begin(), buckets_.end(), window.lo,
                             [](const bucket_block& b, std::int64_t key) {
                               return b.key < key;
                             });
  for (; it != buckets_.end() && it->key <= window.hi; ++it) {
    const auto& block = *it;
    result.buckets_probed += 1;
    result.candidates += block.count;
    obs::trace_span probe_span(probe_ns, obs::stage::bucket_probe);
    counts.resize(block.count);
    hdc::kernels::hamming_tile_packed(query.words().data(), 1, block.packed.data(),
                                      block.count, words_, counts.data());
    probe_span.finish();
    obs::trace_span kselect_span(kselect_ns, obs::stage::k_select);
    selected.resize(std::min<std::size_t>(top_k, block.count));
    const auto written = hdc::kernels::k_select(counts.data(), block.count, top_k,
                                                selected.data());
    for (std::size_t i = 0; i < written; ++i) {
      const std::uint32_t gid = block.base + selected[i].index;
      merged.push_back((static_cast<std::uint64_t>(selected[i].count) << 32) | gid);
    }
  }
  obs::trace_span merge_span(merge_ns, obs::stage::merge);
  const std::size_t keep = std::min(top_k, merged.size());
  std::partial_sort(merged.begin(), merged.begin() + static_cast<std::ptrdiff_t>(keep),
                    merged.end());
  merged.resize(keep);
  result.hits.reserve(keep);
  for (const auto key : merged) {
    const auto gid = static_cast<std::uint32_t>(key & 0xFFFFFFFFu);
    const auto hamming = static_cast<std::uint32_t>(key >> 32);
    const auto& e = entries_[gid];
    search_hit hit;
    hit.id = gid;
    hit.hamming = hamming;
    hit.distance = static_cast<double>(hamming) / static_cast<double>(identity_.dim);
    hit.bucket_key = e.bucket_key;
    hit.precursor_mz = e.precursor_mz;
    hit.precursor_charge = e.precursor_charge;
    hit.name = e.name;
    result.hits.push_back(std::move(hit));
  }
  return result;
}

void spectral_library::save(const std::string& path) const {
  std::ostringstream payload(std::ios::binary);
  write_snapshot_identity(payload, identity_);
  put(payload, static_cast<std::uint64_t>(entries_.size()));
  put(payload, static_cast<std::uint64_t>(buckets_.size()));
  for (const auto& block : buckets_) {
    put(payload, block.key);
    put(payload, block.count);
    for (std::uint32_t i = 0; i < block.count; ++i) {
      const auto& e = entries_[block.base + i];
      put(payload, static_cast<std::uint32_t>(e.name.size()));
      payload.write(e.name.data(), static_cast<std::streamsize>(e.name.size()));
      put(payload, e.precursor_mz);
      put(payload, e.precursor_charge);
    }
    payload.write(reinterpret_cast<const char*>(block.packed.data()),
                  static_cast<std::streamsize>(block.packed.size() *
                                               sizeof(std::uint64_t)));
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) throw io_error("cannot open library file for writing: " + path);
  write_framed_payload(out, k_magic, k_version, payload.str());
}

spectral_library spectral_library::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw io_error("cannot open library file: " + path);
  const std::string payload =
      read_framed_payload(in, k_magic, k_version, "a .sphlib spectral library", path);
  std::istringstream body(payload, std::ios::binary);

  spectral_library lib;
  lib.identity_ = read_snapshot_identity(body, path);
  if (lib.identity_.dim == 0 || lib.identity_.dim % 64 != 0) {
    throw parse_error(path, 0, "library dimension is not a positive multiple of 64");
  }
  lib.words_ = (lib.identity_.dim + 63) / 64;
  const auto entry_count = get<std::uint64_t>(body, path);
  const auto bucket_count = get<std::uint64_t>(body, path);
  if (bucket_count > entry_count) {
    throw parse_error(path, 0, "library has more buckets than entries");
  }
  lib.entries_.reserve(entry_count);
  lib.buckets_.reserve(bucket_count);
  for (std::uint64_t b = 0; b < bucket_count; ++b) {
    bucket_block block;
    block.key = get<std::int64_t>(body, path);
    if (!lib.buckets_.empty() && block.key <= lib.buckets_.back().key) {
      throw parse_error(path, 0, "library bucket keys are not strictly ascending");
    }
    block.base = static_cast<std::uint32_t>(lib.entries_.size());
    block.count = get<std::uint32_t>(body, path);
    if (block.count == 0) {
      throw parse_error(path, 0, "library holds an empty bucket");
    }
    if (lib.entries_.size() + block.count > entry_count) {
      throw parse_error(path, 0, "library bucket sizes exceed the stored entry count");
    }
    for (std::uint32_t i = 0; i < block.count; ++i) {
      library_entry e;
      const auto name_bytes = get<std::uint32_t>(body, path);
      if (name_bytes > k_max_name_bytes) {
        throw parse_error(path, 0, "implausible library entry name length");
      }
      e.name.resize(name_bytes);
      body.read(e.name.data(), static_cast<std::streamsize>(name_bytes));
      if (!body) throw parse_error(path, 0, "truncated spectral library");
      e.precursor_mz = get<double>(body, path);
      e.precursor_charge = get<std::int32_t>(body, path);
      e.bucket_key = block.key;
      lib.entries_.push_back(std::move(e));
    }
    block.packed.resize(static_cast<std::size_t>(block.count) * lib.words_);
    body.read(reinterpret_cast<char*>(block.packed.data()),
              static_cast<std::streamsize>(block.packed.size() * sizeof(std::uint64_t)));
    if (!body) throw parse_error(path, 0, "truncated spectral library");
    lib.buckets_.push_back(std::move(block));
  }
  if (lib.entries_.size() != entry_count) {
    throw parse_error(path, 0, "library entry count does not match its bucket contents");
  }
  // The CRC already vouched for integrity; trailing bytes mean writer and
  // reader disagree about the format — refuse, as the state snapshot does.
  if (body.peek() != std::char_traits<char>::eof()) {
    throw parse_error(path, 0, "library payload has trailing bytes");
  }
  return lib;
}

}  // namespace spechd::serve
