// Versioned binary snapshot of a sharded clustering service (.sphsnap).
//
// A service restart must resume into *exactly* the state it left — same
// records, same per-bucket assignments — so resumed ingestion is
// bit-identical to a run that never stopped (tests/serve/test_snapshot.cpp
// pins this). The file is:
//
//   magic   "SPSN"                      4 B
//   version u32                        (currently 1)
//   payload_bytes u64
//   payload:
//     identity block — the knobs that must match for resume to be exact:
//       dim u32, encoder seed u64, distance threshold f64,
//       bucket resolution f64, fallback charge i32, assign mode u32,
//       shard count u32, pipeline digest u32 (CRC-32 over *every*
//       remaining encode/assign-relevant pipeline knob — filter, top-k
//       selector, normalisation, quantisation, linkage, fixed-point —
//       so a restore into a differently-preprocessing service is
//       rejected even though those knobs aren't stored field by field)
//     per shard: hv_store (its own framed format, via hv_store::save)
//                + bucket table { key i64, n u64, members u32[n],
//                  labels i32[n], next_local i32, dirty u8 }
//   crc u32    CRC-32 of the payload — verified before *any* payload
//              field is trusted, so torn writes and bit rot surface as
//              parse_error, never as silently-wrong cluster state.
//
// The shard count is stored for information, not as a constraint: buckets
// are self-contained, so a snapshot taken with N shards restores onto M
// shards by re-routing whole buckets (clustering_service::restore_file).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/incremental.hpp"

namespace spechd::serve {

/// The identity block: everything that must agree between the snapshotting
/// and the restoring service for resumed ingestion to be exact.
struct snapshot_identity {
  std::uint32_t dim = 0;
  std::uint64_t encoder_seed = 0;
  double distance_threshold = 0.0;
  double bucket_resolution = 0.0;
  std::int32_t fallback_charge = 0;
  std::uint32_t assign_mode = 0;   ///< core::assign_mode as integer
  std::uint32_t shard_count = 0;   ///< shards at snapshot time (informational)
  /// pipeline_digest() of the writing service — covers the pipeline knobs
  /// not stored above (preprocessing, linkage, fixed point), all of which
  /// change what future ingests encode/assign.
  std::uint32_t config_digest = 0;

  friend bool operator==(const snapshot_identity&, const snapshot_identity&) = default;
};

/// Serialises / parses the identity block alone (the journal's file header
/// embeds the same block so a `.sphjrnl` can be validated against the
/// service that would replay it).
void write_snapshot_identity(std::ostream& out, const snapshot_identity& identity);
snapshot_identity read_snapshot_identity(std::istream& in, const std::string& source);

/// Shared .sphsnap-family framing: magic(4) + version u32 + payload_bytes
/// u64 + payload + CRC-32(payload) u32. Every on-disk artifact of the
/// serving tier (state snapshots, spectral-library snapshots) uses this one
/// reader, so they all validate identically: bad magic, big-endian or
/// unsupported versions, implausible lengths, truncation, and CRC
/// mismatches each throw a typed parse_error *before* any payload field is
/// trusted. `format_name` names the format in diagnostics ("a .sphsnap
/// snapshot", "a .sphlib spectral library").
void write_framed_payload(std::ostream& out, const char magic[4], std::uint32_t version,
                          const std::string& payload);
std::string read_framed_payload(std::istream& in, const char magic[4],
                                std::uint32_t version, const std::string& format_name,
                                const std::string& source);

/// CRC-32 over every pipeline knob that affects encoding or assignment
/// beyond the fields snapshot_identity stores explicitly: filter, peak
/// selector (top-k/window), normalisation, quantisation window/bins,
/// linkage, and the fixed-point switch. Two configs with equal digests
/// (and equal explicit identity fields) resume each other's snapshots
/// exactly.
std::uint32_t pipeline_digest(const core::spechd_config& config);

/// A parsed snapshot: identity + one clusterer state per stored shard.
struct snapshot_data {
  snapshot_identity identity;
  std::vector<core::clusterer_state> shards;
};

/// Serialises `shards` (one state per shard, index order) with `identity`.
/// Throws spechd::io_error on write failure.
void write_snapshot(std::ostream& out, const snapshot_identity& identity,
                    const std::vector<core::clusterer_state>& shards);
void write_snapshot_file(const std::string& path, const snapshot_identity& identity,
                         const std::vector<core::clusterer_state>& shards);

/// Parses and CRC-verifies a snapshot. Throws spechd::parse_error on bad
/// magic/version/CRC/truncation, spechd::io_error on unreadable files.
snapshot_data read_snapshot(std::istream& in, const std::string& source_name = "<snapshot>");
snapshot_data read_snapshot_file(const std::string& path);

/// Reads just the identity block (still CRC-verified) — lets a caller
/// (e.g. `spechd serve --restore`) configure itself from a snapshot
/// before constructing the service.
snapshot_identity read_snapshot_identity_file(const std::string& path);

/// Canonical byte serialisation of cluster state, merged across shards and
/// keyed by bucket: per bucket (ascending key) the member records in
/// arrival order (hypervector words + precursor + charge + label, plus the
/// scan counter when `include_scan`) and their cluster labels. Two
/// services hold identical cluster state iff their canonical bytes are
/// equal — regardless of how buckets are spread over shards. Set
/// `include_scan` false when comparing across *different* shard counts
/// (scan counters are shard-local arrival indices). Throws spechd::error
/// if one bucket key appears in two shards (a routing violation).
std::string canonical_state(const std::vector<core::clusterer_state>& shards,
                            bool include_scan = true);

}  // namespace spechd::serve
