#include "serve/maintenance.hpp"

#include <algorithm>
#include <utility>

namespace spechd::serve {

maintenance_scheduler::maintenance_scheduler(maintenance_config config, hooks hooks)
    : config_(config), hooks_(std::move(hooks)),
      heal_backoff_(config.heal_backoff_initial) {
  thread_ = std::thread([this] { loop(); });
}

maintenance_scheduler::~maintenance_scheduler() { stop(); }

void maintenance_scheduler::stop() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void maintenance_scheduler::loop() {
  std::unique_lock lock(mutex_);
  while (!stopping_) {
    wake_.wait_for(lock, config_.interval, [this] { return stopping_; });
    if (stopping_) break;
    lock.unlock();
    // The hooks run unlocked: a compaction drains shards and can take a
    // while, and stop() must stay responsive. An exception from a hook
    // (e.g. disk briefly full during compaction) is *transient* from the
    // scheduler's perspective: count it and keep ticking — the retry is
    // interval-paced, and silently dying here would let the journal grow
    // unbounded with nothing observable recording why.
    try {
      ticks_.fetch_add(1, std::memory_order_relaxed);
      reclusters_.fetch_add(hooks_.run_maintenance(), std::memory_order_relaxed);
      if (hooks_.maybe_compact()) {
        compactions_.fetch_add(1, std::memory_order_relaxed);
      }
    } catch (...) {
      failures_.fetch_add(1, std::memory_order_relaxed);
    }
    maybe_heal();
    lock.lock();
  }
}

void maintenance_scheduler::maybe_heal() {
  // Auto-heal: a degraded shard stays read-only until a journal
  // compaction reconciles it, but nothing used to *schedule* that
  // compaction — producers kept getting rejections until an operator
  // intervened. The scheduler now triggers the heal itself once the
  // backoff window elapses: success resets the backoff (the I/O condition
  // cleared), a throw doubles it (the condition persists — EIO, full
  // disk, a sticky failed shard blocking compaction), capped so a long
  // outage is still probed regularly.
  if (!hooks_.degraded_shards || !hooks_.heal) return;
  const auto now = std::chrono::steady_clock::now();
  if (now < next_heal_) return;
  std::size_t degraded = 0;
  try {
    degraded = hooks_.degraded_shards();
  } catch (...) {
    failures_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (degraded == 0) return;
  heal_attempts_.fetch_add(1, std::memory_order_relaxed);
  try {
    heals_.fetch_add(hooks_.heal(), std::memory_order_relaxed);
    heal_backoff_ = config_.heal_backoff_initial;
    next_heal_ = now;  // a fresh degradation may heal immediately
  } catch (...) {
    failures_.fetch_add(1, std::memory_order_relaxed);
    next_heal_ = now + heal_backoff_;
    heal_backoff_ = std::min(heal_backoff_ * 2, config_.heal_backoff_max);
  }
}

maintenance_scheduler::counters maintenance_scheduler::stats() const {
  counters c;
  c.ticks = ticks_.load(std::memory_order_relaxed);
  c.reclusters = reclusters_.load(std::memory_order_relaxed);
  c.compactions = compactions_.load(std::memory_order_relaxed);
  c.failures = failures_.load(std::memory_order_relaxed);
  c.heal_attempts = heal_attempts_.load(std::memory_order_relaxed);
  c.heals = heals_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace spechd::serve
