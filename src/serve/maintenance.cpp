#include "serve/maintenance.hpp"

#include <algorithm>
#include <utility>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/watchdog.hpp"

namespace spechd::serve {

maintenance_scheduler::maintenance_scheduler(maintenance_config config, hooks hooks)
    : config_(config), hooks_(std::move(hooks)),
      heal_backoff_(config.heal_backoff_initial) {
  thread_ = std::thread([this] { loop(); });
}

maintenance_scheduler::~maintenance_scheduler() { stop(); }

void maintenance_scheduler::stop() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void maintenance_scheduler::loop() {
  auto beat = obs::watchdog::instance().register_component("maintenance/scheduler");
  std::unique_lock lock(mutex_);
  while (!stopping_) {
    wake_.wait_for(lock, config_.interval, [this] { return stopping_; });
    if (stopping_) break;
    lock.unlock();
    beat.pulse();
    // The hooks run unlocked: a compaction drains shards and can take a
    // while, and stop() must stay responsive. An exception from a hook
    // (e.g. disk briefly full during compaction) is *transient* from the
    // scheduler's perspective: count it and keep ticking — the retry is
    // interval-paced, and silently dying here would let the journal grow
    // unbounded with nothing observable recording why.
    try {
      ticks_.fetch_add(1, std::memory_order_relaxed);
      // Load-aware deferral: under sustained ingest (EWMA at or above the
      // busy threshold) skip reclusters/compactions this tick — bounded
      // by max_deferred_ticks so dirty buckets and journal growth still
      // get serviced under a never-ending stream.
      const bool busy = update_ingest_ewma();
      const bool defer_cap_hit = config_.max_deferred_ticks != 0 &&
                                 deferred_streak_ >= config_.max_deferred_ticks;
      if (busy && !defer_cap_hit) {
        ++deferred_streak_;
        deferrals_.fetch_add(1, std::memory_order_relaxed);
        static auto& deferrals_total = obs::registry::instance().counter(
            "spechd_maintenance_deferrals_total");
        deferrals_total.add(1);
        obs::record_event(obs::event_kind::maintenance_action, /*reclusters=*/0,
                          /*deferred=*/1);
      } else {
        deferred_streak_ = 0;
        reclusters_.fetch_add(hooks_.run_maintenance(), std::memory_order_relaxed);
        if (hooks_.maybe_compact()) {
          compactions_.fetch_add(1, std::memory_order_relaxed);
        }
      }
    } catch (...) {
      failures_.fetch_add(1, std::memory_order_relaxed);
    }
    maybe_heal();
    lock.lock();
  }
  beat.retire();
}

bool maintenance_scheduler::update_ingest_ewma() {
  if (!hooks_.ingest_records || config_.busy_ingest_rate <= 0.0) return false;
  const auto now = std::chrono::steady_clock::now();
  const std::uint64_t total = hooks_.ingest_records();
  if (last_sample_ == std::chrono::steady_clock::time_point{}) {
    // First sample establishes the baseline; no rate yet.
    last_sample_ = now;
    last_ingest_records_ = total;
    return false;
  }
  const double dt = std::chrono::duration<double>(now - last_sample_).count();
  if (dt <= 0.0) {
    return ewma_rate_.load(std::memory_order_relaxed) >= config_.busy_ingest_rate;
  }
  const double rate = static_cast<double>(total - last_ingest_records_) / dt;
  last_sample_ = now;
  last_ingest_records_ = total;
  const double alpha = std::clamp(config_.ingest_ewma_alpha, 0.0, 1.0);
  const double ewma =
      ewma_primed_
          ? alpha * rate + (1.0 - alpha) * ewma_rate_.load(std::memory_order_relaxed)
          : rate;
  ewma_primed_ = true;
  ewma_rate_.store(ewma, std::memory_order_relaxed);
  static auto& ewma_gauge =
      obs::registry::instance().gauge("spechd_maintenance_ingest_rate_ewma");
  ewma_gauge.set(static_cast<std::int64_t>(ewma));
  return ewma >= config_.busy_ingest_rate;
}

void maintenance_scheduler::maybe_heal() {
  // Auto-heal: a degraded shard stays read-only until a journal
  // compaction reconciles it, but nothing used to *schedule* that
  // compaction — producers kept getting rejections until an operator
  // intervened. The scheduler now triggers the heal itself once the
  // backoff window elapses: success resets the backoff (the I/O condition
  // cleared), a throw doubles it (the condition persists — EIO, full
  // disk, a sticky failed shard blocking compaction), capped so a long
  // outage is still probed regularly.
  if (!hooks_.degraded_shards || !hooks_.heal) return;
  const auto now = std::chrono::steady_clock::now();
  if (now < next_heal_) return;
  std::size_t degraded = 0;
  try {
    degraded = hooks_.degraded_shards();
  } catch (...) {
    failures_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (degraded == 0) return;
  const auto attempt = heal_attempts_.fetch_add(1, std::memory_order_relaxed) + 1;
  try {
    const std::size_t healed = hooks_.heal();
    heals_.fetch_add(healed, std::memory_order_relaxed);
    obs::record_event(obs::event_kind::heal_action, healed, attempt);
    heal_backoff_ = config_.heal_backoff_initial;
    next_heal_ = now;  // a fresh degradation may heal immediately
  } catch (...) {
    failures_.fetch_add(1, std::memory_order_relaxed);
    next_heal_ = now + heal_backoff_;
    heal_backoff_ = std::min(heal_backoff_ * 2, config_.heal_backoff_max);
  }
}

maintenance_scheduler::counters maintenance_scheduler::stats() const {
  counters c;
  c.ticks = ticks_.load(std::memory_order_relaxed);
  c.reclusters = reclusters_.load(std::memory_order_relaxed);
  c.compactions = compactions_.load(std::memory_order_relaxed);
  c.failures = failures_.load(std::memory_order_relaxed);
  c.heal_attempts = heal_attempts_.load(std::memory_order_relaxed);
  c.heals = heals_.load(std::memory_order_relaxed);
  c.deferrals = deferrals_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace spechd::serve
