#include "serve/maintenance.hpp"

#include <utility>

namespace spechd::serve {

maintenance_scheduler::maintenance_scheduler(maintenance_config config, hooks hooks)
    : config_(config), hooks_(std::move(hooks)) {
  thread_ = std::thread([this] { loop(); });
}

maintenance_scheduler::~maintenance_scheduler() { stop(); }

void maintenance_scheduler::stop() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void maintenance_scheduler::loop() {
  std::unique_lock lock(mutex_);
  while (!stopping_) {
    wake_.wait_for(lock, config_.interval, [this] { return stopping_; });
    if (stopping_) break;
    lock.unlock();
    // The hooks run unlocked: a compaction drains shards and can take a
    // while, and stop() must stay responsive. An exception from a hook
    // (e.g. disk briefly full during compaction) is *transient* from the
    // scheduler's perspective: count it and keep ticking — the retry is
    // interval-paced, and silently dying here would let the journal grow
    // unbounded with nothing observable recording why.
    try {
      ticks_.fetch_add(1, std::memory_order_relaxed);
      reclusters_.fetch_add(hooks_.run_maintenance(), std::memory_order_relaxed);
      if (hooks_.maybe_compact()) {
        compactions_.fetch_add(1, std::memory_order_relaxed);
      }
    } catch (...) {
      failures_.fetch_add(1, std::memory_order_relaxed);
    }
    lock.lock();
  }
}

maintenance_scheduler::counters maintenance_scheduler::stats() const {
  counters c;
  c.ticks = ticks_.load(std::memory_order_relaxed);
  c.reclusters = reclusters_.load(std::memory_order_relaxed);
  c.compactions = compactions_.load(std::memory_order_relaxed);
  c.failures = failures_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace spechd::serve
