#include "serve/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/crc32.hpp"
#include "util/error.hpp"

namespace spechd::serve {

namespace {

constexpr char k_magic[4] = {'S', 'P', 'J', 'L'};
constexpr std::uint32_t k_version = 1;
/// Record frames: u32 payload_bytes + u32 crc.
constexpr std::size_t k_frame_bytes = 2 * sizeof(std::uint32_t);
/// Sanity bound mirroring the snapshot reader: a corrupted length field
/// must not drive a huge allocation before the CRC would catch it. One
/// record is one ingest batch; 1 GiB is far beyond any real batch (and
/// must be below UINT32_MAX for the comparison to be able to fire).
constexpr std::uint32_t k_max_record_payload = 1U << 30;
/// The header payload is a handful of fixed-width fields; anything
/// claiming more is corrupt, and the bound keeps a bad length field from
/// allocating before validation.
constexpr std::uint32_t k_max_header_payload = 4096;

template <typename T>
void put(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

/// In-memory cursor over the journal bytes; unlike the snapshot reader,
/// running off the end mid-record is *not* an error here (torn tail), so
/// reads report success instead of throwing.
struct cursor {
  const char* data;
  std::size_t size;
  std::size_t pos = 0;

  template <typename T>
  bool read(T& v) {
    if (size - pos < sizeof(T)) return false;
    std::memcpy(&v, data + pos, sizeof(T));
    pos += sizeof(T);
    return true;
  }

  bool read_bytes(void* out, std::size_t n) {
    if (size - pos < n) return false;
    std::memcpy(out, data + pos, n);
    pos += n;
    return true;
  }
};

/// Record serialisation writes through a raw pointer into an
/// exactly-sized buffer — this runs on the ingest hot path (one record
/// per applied batch, two fields per peak), where even string::append's
/// bookkeeping per call is measurable against the
/// >= 0.8x-of-unjournaled ingest-rate bar.
struct wire_cursor {
  char* p;

  template <typename T>
  void put(const T& v) {
    std::memcpy(p, &v, sizeof(T));
    p += sizeof(T);
  }

  void put_bytes(const void* data, std::size_t n) {
    std::memcpy(p, data, n);
    p += n;
  }
};

std::size_t spectrum_wire_bytes(const ms::spectrum& s) {
  return sizeof(std::uint32_t) + s.title.size() + sizeof(std::uint32_t) +
         2 * sizeof(double) + 2 * sizeof(std::int32_t) + sizeof(std::uint64_t) +
         s.peaks.size() * (sizeof(double) + sizeof(float));
}

void write_spectrum(wire_cursor& out, const ms::spectrum& s) {
  out.put(static_cast<std::uint32_t>(s.title.size()));
  out.put_bytes(s.title.data(), s.title.size());
  out.put(s.scan);
  out.put(s.precursor_mz);
  out.put(static_cast<std::int32_t>(s.precursor_charge));
  out.put(s.retention_time);
  out.put(s.label);
  out.put(static_cast<std::uint64_t>(s.peaks.size()));
  for (const auto& p : s.peaks) {
    out.put(p.mz);
    out.put(p.intensity);
  }
}

bool read_spectrum(cursor& in, ms::spectrum& s) {
  std::uint32_t title_len = 0;
  if (!in.read(title_len)) return false;
  // Bound-check *before* resizing: a crafted/corrupt length must not
  // drive a multi-GiB allocation (bad_alloc would escape the torn-tail
  // handling entirely).
  if (title_len > in.size - in.pos) return false;
  s.title.resize(title_len);
  if (!in.read_bytes(s.title.data(), title_len)) return false;
  std::int32_t charge = 0;
  std::uint64_t peak_count = 0;
  if (!in.read(s.scan) || !in.read(s.precursor_mz) || !in.read(charge) ||
      !in.read(s.retention_time) || !in.read(s.label) || !in.read(peak_count)) {
    return false;
  }
  s.precursor_charge = charge;
  if (peak_count > (in.size - in.pos) / (sizeof(double) + sizeof(float))) return false;
  s.peaks.resize(peak_count);
  for (auto& p : s.peaks) {
    if (!in.read(p.mz) || !in.read(p.intensity)) return false;
  }
  return true;
}

void write_header(std::ostream& out, const journal_file_header& header) {
  std::ostringstream payload_stream(std::ios::binary);
  put(payload_stream, header.shard_index);
  put(payload_stream, header.shard_count);
  put(payload_stream, header.generation);
  write_snapshot_identity(payload_stream, header.identity);
  const std::string payload = payload_stream.str();

  out.write(k_magic, 4);
  put(out, k_version);
  put(out, static_cast<std::uint32_t>(payload.size()));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  put(out, crc32(payload.data(), payload.size()));
}

/// Parses the header off `in`; throws parse_error — a journal with a bad
/// header is unusable, unlike a torn record tail.
journal_file_header parse_header(cursor& in, const std::string& source) {
  char magic[4] = {};
  if (!in.read_bytes(magic, 4) || std::memcmp(magic, k_magic, 4) != 0) {
    throw parse_error(source, 0, "not a .sphjrnl journal (bad magic)");
  }
  std::uint32_t version = 0;
  if (!in.read(version)) throw parse_error(source, 0, "truncated journal header");
  if (version != k_version) {
    throw parse_error(source, 0, "unsupported journal version " + std::to_string(version));
  }
  std::uint32_t payload_bytes = 0;
  if (!in.read(payload_bytes)) throw parse_error(source, 0, "truncated journal header");
  if (payload_bytes > k_max_header_payload) {
    throw parse_error(source, 0, "implausible journal header size");
  }
  std::string payload(payload_bytes, '\0');
  std::uint32_t stored_crc = 0;
  if (!in.read_bytes(payload.data(), payload_bytes) || !in.read(stored_crc)) {
    throw parse_error(source, 0, "truncated journal header");
  }
  if (stored_crc != crc32(payload.data(), payload.size())) {
    throw parse_error(source, 0, "journal header CRC mismatch (corrupted file)");
  }
  std::istringstream body(payload, std::ios::binary);
  journal_file_header header;
  body.read(reinterpret_cast<char*>(&header.shard_index), sizeof(header.shard_index));
  body.read(reinterpret_cast<char*>(&header.shard_count), sizeof(header.shard_count));
  body.read(reinterpret_cast<char*>(&header.generation), sizeof(header.generation));
  if (!body) throw parse_error(source, 0, "truncated journal header payload");
  header.identity = read_snapshot_identity(body, source);
  return header;
}

/// Serialises one record into `frame` (a caller-owned, reused buffer —
/// resize_and_overwrite-style: grow-only capacity, no per-record
/// allocation). The wire size is exactly computable up front, so the
/// payload is written straight through a cursor after an 8-byte hole for
/// the frame header, which is patched in last.
void frame_record(journal_record::kind type, std::uint64_t seq,
                  const std::vector<ms::spectrum>* batch, std::string& frame) {
  std::size_t total = k_frame_bytes + sizeof(std::uint8_t) + sizeof(std::uint64_t);
  if (batch != nullptr) {
    total += sizeof(std::uint64_t);
    for (const auto& s : *batch) total += spectrum_wire_bytes(s);
  }
  frame.resize(total);
  wire_cursor out{frame.data() + k_frame_bytes};
  out.put(static_cast<std::uint8_t>(type));
  out.put(seq);
  if (batch != nullptr) {
    out.put(static_cast<std::uint64_t>(batch->size()));
    for (const auto& s : *batch) write_spectrum(out, s);
  }
  SPECHD_EXPECTS(out.p == frame.data() + frame.size());
  const std::uint32_t payload_bytes =
      static_cast<std::uint32_t>(frame.size() - k_frame_bytes);
  const std::uint32_t crc = crc32(frame.data() + k_frame_bytes, payload_bytes);
  std::memcpy(frame.data(), &payload_bytes, sizeof(payload_bytes));
  std::memcpy(frame.data() + sizeof(payload_bytes), &crc, sizeof(crc));
}

/// Parses the record payload at `in` (already CRC-verified); false = the
/// payload is internally inconsistent, which the scanner treats exactly
/// like a CRC failure (stop, report torn).
bool parse_record_payload(cursor in, journal_record& record) {
  std::uint8_t type = 0;
  if (!in.read(type) || !in.read(record.seq)) return false;
  if (type == static_cast<std::uint8_t>(journal_record::kind::ingest_batch)) {
    record.type = journal_record::kind::ingest_batch;
    std::uint64_t count = 0;
    if (!in.read(count)) return false;
    if (count > in.size - in.pos) return false;  // each spectrum is >= 1 byte
    record.batch.resize(count);
    for (auto& s : record.batch) {
      if (!read_spectrum(in, s)) return false;
    }
    return in.pos == in.size;
  }
  if (type == static_cast<std::uint8_t>(journal_record::kind::recluster)) {
    record.type = journal_record::kind::recluster;
    record.batch.clear();
    return in.pos == in.size;
  }
  return false;  // unknown record type
}

/// Parses `name` as `<prefix><number><suffix>`; nullopt when it doesn't
/// match exactly.
std::optional<std::uint64_t> parse_numbered(const std::string& name,
                                            const std::string& prefix,
                                            const std::string& suffix) {
  if (name.size() <= prefix.size() + suffix.size()) return std::nullopt;
  if (name.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return std::nullopt;
  }
  const char* first = name.data() + prefix.size();
  const char* last = name.data() + name.size() - suffix.size();
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return value;
}

void throw_errno(const std::string& what, const std::string& path) {
  throw io_error(what + " '" + path + "': " + std::strerror(errno));
}

}  // namespace

journal_scan read_journal_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw io_error("cannot open journal file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string bytes = buffer.str();

  cursor c{bytes.data(), bytes.size()};
  journal_scan scan;
  scan.header = parse_header(c, path);
  scan.valid_bytes = c.pos;

  while (c.pos < c.size) {
    cursor frame = c;
    std::uint32_t payload_bytes = 0;
    std::uint32_t stored_crc = 0;
    if (!frame.read(payload_bytes) || !frame.read(stored_crc) ||
        payload_bytes > k_max_record_payload ||
        frame.size - frame.pos < payload_bytes) {
      scan.torn = true;  // truncated frame: the tail past valid_bytes is dropped
      break;
    }
    const char* payload = frame.data + frame.pos;
    if (crc32(payload, payload_bytes) != stored_crc) {
      scan.torn = true;
      break;
    }
    journal_record record;
    if (!parse_record_payload(cursor{payload, payload_bytes}, record)) {
      scan.torn = true;
      break;
    }
    // The writer increments seq by exactly 1 per append, so anything but
    // contiguous numbering inside a file means lost or reordered records.
    if (!scan.records.empty() && record.seq != scan.records.back().seq + 1) {
      throw parse_error(path, 0,
                        "journal records out of sequence (seq " +
                            std::to_string(record.seq) + " after " +
                            std::to_string(scan.records.back().seq) + ")");
    }
    scan.records.push_back(std::move(record));
    c.pos = frame.pos + payload_bytes;
    scan.valid_bytes = c.pos;
  }
  return scan;
}

journal_header_status probe_journal_header(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return journal_header_status::corrupt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string bytes = buffer.str();
  cursor c{bytes.data(), bytes.size()};

  // Mirror parse_header, classifying "ran out of bytes" (a crash between
  // file creation and the header write becoming durable — the file holds
  // a prefix of the correct header and no records) separately from
  // "bytes present but wrong" (real corruption, never discarded).
  char magic[4] = {};
  if (!c.read_bytes(magic, 4)) return journal_header_status::truncated;
  if (std::memcmp(magic, k_magic, 4) != 0) return journal_header_status::corrupt;
  std::uint32_t version = 0;
  if (!c.read(version)) return journal_header_status::truncated;
  if (version != k_version) return journal_header_status::corrupt;
  std::uint32_t payload_bytes = 0;
  if (!c.read(payload_bytes)) return journal_header_status::truncated;
  if (payload_bytes > k_max_header_payload) return journal_header_status::corrupt;
  std::string payload(payload_bytes, '\0');
  std::uint32_t stored_crc = 0;
  if (!c.read_bytes(payload.data(), payload_bytes) || !c.read(stored_crc)) {
    return journal_header_status::truncated;
  }
  return stored_crc == crc32(payload.data(), payload.size())
             ? journal_header_status::ok
             : journal_header_status::corrupt;
}

journal_file_header read_journal_header_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw io_error("cannot open journal file: " + path);
  // Headers are tiny; read a bounded prefix rather than the whole file.
  std::string bytes(4096, '\0');
  in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  bytes.resize(static_cast<std::size_t>(in.gcount()));
  cursor c{bytes.data(), bytes.size()};
  return parse_header(c, path);
}

std::string journal_snapshot_path(const std::string& dir, std::uint64_t generation) {
  return (std::filesystem::path(dir) /
          ("base-" + std::to_string(generation) + ".sphsnap")).string();
}

std::string journal_shard_path(const std::string& dir, std::size_t shard,
                               std::uint64_t generation) {
  return (std::filesystem::path(dir) /
          ("shard-" + std::to_string(shard) + "-" + std::to_string(generation) +
           ".sphjrnl")).string();
}

journal_dir_state scan_journal_dir(const std::string& dir) {
  journal_dir_state state;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (const auto gen = parse_numbered(name, "base-", ".sphsnap")) {
      if (!state.snapshot_generation || *gen > *state.snapshot_generation) {
        state.snapshot_generation = *gen;
      }
      state.snapshots.push_back(*gen);
      state.max_generation = std::max(state.max_generation, *gen);
      continue;
    }
    // shard-<s>-<gen>.sphjrnl: the shard index runs to the second '-'.
    if (name.rfind("shard-", 0) == 0) {
      const auto dash = name.find('-', 6);
      if (dash == std::string::npos) continue;
      std::uint64_t shard_idx = 0;
      const char* first = name.data() + 6;
      const char* last = name.data() + dash;
      const auto [ptr, parse_ec] = std::from_chars(first, last, shard_idx);
      if (parse_ec != std::errc{} || ptr != last) continue;
      if (const auto gen = parse_numbered(name.substr(dash + 1), "", ".sphjrnl")) {
        state.journals.push_back({static_cast<std::size_t>(shard_idx), *gen});
        state.max_generation = std::max(state.max_generation, *gen);
      }
    }
  }
  return state;
}

void fsync_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw_errno("cannot open file for fsync", path);
  if (::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("cannot fsync file", path);
  }
  ::close(fd);
}

void remove_stale_generations(const std::string& dir, std::uint64_t keep_from) {
  const auto state = scan_journal_dir(dir);  // one shared filename parser
  std::error_code ec;
  for (const auto gen : state.snapshots) {
    if (gen < keep_from) std::filesystem::remove(journal_snapshot_path(dir, gen), ec);
  }
  for (const auto& entry : state.journals) {
    if (entry.generation < keep_from) {
      std::filesystem::remove(journal_shard_path(dir, entry.shard, entry.generation), ec);
    }
  }
}

void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) throw_errno("cannot open directory", dir);
  if (::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("cannot fsync directory", dir);
  }
  ::close(fd);
}

journal_writer::journal_writer(const journal_head& head,
                               const journal_file_header& header,
                               const journal_config& config)
    : config_(config) {
  open(head, header);
}

journal_writer::~journal_writer() { close(); }

void journal_writer::open(const journal_head& head, const journal_file_header& header) {
  if (fd_ >= 0) {  // e.g. a failed rotation re-opening over a half-opened file
    ::close(fd_);
    fd_ = -1;
  }
  path_ = head.path;
  next_seq_ = head.next_seq;
  unsynced_records_ = 0;
  failed_ = false;  // a fresh/rotated file starts clean
  last_sync_ = std::chrono::steady_clock::now();
  generation_.store(header.generation, std::memory_order_relaxed);
  records_.store(head.records, std::memory_order_relaxed);

  if (head.exists) {
    // Continue an existing journal: drop any torn tail first, then append.
    std::error_code ec;
    const auto current = std::filesystem::file_size(path_, ec);
    if (!ec && current > head.valid_bytes) {
      std::filesystem::resize_file(path_, head.valid_bytes, ec);
      if (ec) throw io_error("cannot truncate torn journal tail: " + path_);
    }
    fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
    if (fd_ < 0) throw_errno("cannot open journal", path_);
    bytes_.store(head.valid_bytes, std::memory_order_relaxed);
  } else {
    fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_APPEND | O_CLOEXEC, 0644);
    if (fd_ < 0) throw_errno("cannot create journal", path_);
    std::ostringstream header_stream(std::ios::binary);
    write_header(header_stream, header);
    const std::string bytes = header_stream.str();
    std::size_t written = 0;
    while (written < bytes.size()) {
      const auto n = ::write(fd_, bytes.data() + written, bytes.size() - written);
      if (n < 0) throw_errno("cannot write journal header", path_);
      written += static_cast<std::size_t>(n);
    }
    if (config_.fsync && ::fsync(fd_) != 0) throw_errno("cannot fsync journal", path_);
    bytes_.store(bytes.size(), std::memory_order_relaxed);
  }
}

void journal_writer::close() {
  if (fd_ >= 0) {
    if (config_.fsync && unsynced_records_ > 0) ::fsync(fd_);
    ::close(fd_);
    fd_ = -1;
  }
}

void journal_writer::append_frame(const std::string& frame) {
  if (failed_) {
    throw io_error("journal " + path_ +
                   " is poisoned by an earlier partial write; refusing to append");
  }
  std::size_t written = 0;
  while (written < frame.size()) {
    const auto n = ::write(fd_, frame.data() + written, frame.size() - written);
    if (n < 0) {
      // A partial frame on disk would make every *later* record
      // unreachable at recovery (the scanner stops at the first bad
      // frame). Roll the file back to the last good offset; if even that
      // fails, poison the writer so no batch is applied-but-unjournaled
      // after the garbage.
      const int saved = errno;
      if (written == 0 ||
          ::ftruncate(fd_, static_cast<off_t>(bytes_.load(std::memory_order_relaxed))) ==
              0) {
        errno = saved;
        throw_errno("cannot append to journal", path_);
      }
      failed_ = true;
      errno = saved;
      throw_errno("cannot append to journal (partial frame could not be rolled back)",
                  path_);
    }
    written += static_cast<std::size_t>(n);
  }
  bytes_.fetch_add(frame.size(), std::memory_order_relaxed);
  records_.fetch_add(1, std::memory_order_relaxed);
  ++next_seq_;
  ++unsynced_records_;
  // Group commit: a hot writer pays one fsync per `group_commit_records`
  // appends or per `group_commit_interval` of wall time, whichever comes
  // first — never one per batch.
  const bool threshold = unsynced_records_ >= config_.group_commit_records;
  const bool timed =
      std::chrono::steady_clock::now() - last_sync_ >= config_.group_commit_interval;
  if (threshold || timed) sync();
}

void journal_writer::append_batch(const std::vector<ms::spectrum>& batch) {
  frame_record(journal_record::kind::ingest_batch, next_seq_, &batch, scratch_);
  append_frame(scratch_);
}

void journal_writer::append_recluster() {
  frame_record(journal_record::kind::recluster, next_seq_, nullptr, scratch_);
  append_frame(scratch_);
}

void journal_writer::rollback_to(std::uint64_t bytes_before) {
  const auto current = bytes_.load(std::memory_order_relaxed);
  SPECHD_EXPECTS(current >= bytes_before);
  // Nothing landed past the mark and the file is clean (a failing append
  // already rolled its partial frame back): nothing to do.
  if (current == bytes_before && !failed_) return;
  if (::ftruncate(fd_, static_cast<off_t>(bytes_before)) != 0) {
    failed_ = true;  // the orphaned bytes cannot be removed: stop appending
    throw_errno("cannot roll back journal record", path_);
  }
  if (current > bytes_before) {
    // Exactly one complete record lies past the mark (counters only
    // advance once a frame is fully written, and the caller rolls back
    // immediately after its single append).
    records_.fetch_sub(1, std::memory_order_relaxed);
    --next_seq_;
    if (unsynced_records_ > 0) --unsynced_records_;
  }
  bytes_.store(bytes_before, std::memory_order_relaxed);
  failed_ = false;
  // Make the removal as durable as the record may already be: if the
  // append's group commit fsynced the frame before the failure, an
  // un-synced truncation could resurrect it after power loss.
  if (config_.fsync && ::fsync(fd_) != 0) {
    failed_ = true;
    throw_errno("cannot fsync journal rollback", path_);
  }
}

void journal_writer::sync() {
  if (unsynced_records_ == 0) return;
  if (config_.fsync && ::fsync(fd_) != 0) throw_errno("cannot fsync journal", path_);
  unsynced_records_ = 0;
  last_sync_ = std::chrono::steady_clock::now();
}

void journal_writer::rotate(const journal_head& head, const journal_file_header& header) {
  sync();
  journal_head fallback;
  fallback.path = path_;
  fallback.generation = generation_.load(std::memory_order_relaxed);
  fallback.exists = true;
  fallback.valid_bytes = bytes_.load(std::memory_order_relaxed);
  fallback.records = records_.load(std::memory_order_relaxed);
  const auto seq = next_seq_;
  close();
  try {
    open(head, header);
  } catch (...) {
    // Creating the next generation failed (ENOSPC, EEXIST from a prior
    // half-failed compaction, ...): reopen the old file and keep
    // appending to the old generation, so the shard never journals into
    // the void. The caller (compaction) sees the original error and
    // retries later with a fresh generation number.
    try {
      auto old_header = header;
      old_header.generation = fallback.generation;
      fallback.next_seq = seq;
      open(fallback, old_header);
    } catch (...) {
      failed_ = true;  // even the old file is gone: poison loudly
    }
    throw;
  }
  // Sequence numbers continue across generations: recovery relies on
  // strict monotonicity to detect holes when replaying adjacent files.
  next_seq_ = seq;
}

}  // namespace spechd::serve
