// Sharded clustering service: the concurrent ingest/query engine.
//
// The ROADMAP's serving shape on CPU: live clustering state partitioned by
// precursor-mass bucket over N shards, each shard a single-writer
// incremental clusterer behind a bounded ingest queue, with immutable
// RCU-published views answering queries concurrently with ingestion, and a
// CRC-guarded snapshot/restore format so a restart resumes bit-identically.
//
//   ingest(batch) ─▶ shard_router ─▶ per-shard mpsc queues ─▶ writer threads
//                                                               │
//   query(spectrum) ◀── published shard views (lock-free) ◀── publish
//                                                               │
//   snapshot_file() / restore_file()  ◀──────────── .sphsnap ───┘
//
// Equivalence guarantee (pinned by tests/serve/test_service.cpp and
// test_snapshot.cpp): for a single producer, every bucket's cluster state
// equals what one sequential incremental_clusterer ingesting the same
// stream would hold — sharding, queueing, and snapshot/restore cycles
// never change results.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "cluster/nn_chain.hpp"
#include "core/incremental.hpp"
#include "hdc/encoder.hpp"
#include "serve/journal.hpp"
#include "serve/maintenance.hpp"
#include "serve/recovery.hpp"
#include "serve/search.hpp"
#include "serve/shard.hpp"
#include "serve/shard_router.hpp"
#include "serve/snapshot.hpp"

namespace spechd::serve {

struct serve_config {
  /// Pipeline knobs (threshold, preprocessing, encoder, linkage).
  /// `pipeline.threads` sizes each shard's *internal* pool and defaults to
  /// 1 when 0 — service parallelism comes from shards, not nested pools.
  core::spechd_config pipeline;
  core::assign_mode mode = core::assign_mode::complete_linkage;
  std::size_t shards = 4;
  /// Ingest jobs (batches) buffered per shard before producers block.
  std::size_t queue_capacity = 16;
  /// Coalesce view republishing across N applied batches (1 = republish
  /// after every batch, the PR-4 behaviour). Views are also republished
  /// whenever a shard's queue runs empty and by drain(), so visibility
  /// after a drain is always complete; between drains a backlogged
  /// shard's view may lag up to N-1 batches.
  std::size_t publish_every = 1;
  /// Durability: set journal.dir to enable write-ahead journaling. The
  /// constructor then *recovers* whatever state the directory holds
  /// (newest snapshot + journal replay, truncating a torn tail) before
  /// accepting ingests — see recovery() for what it found.
  journal_config journal;
  /// Background maintenance (idle-shard reclusters + journal compaction).
  maintenance_config maintenance;
  /// Cross-shard atomic ingest (journaled services only): a batch whose
  /// spectra span multiple shards is journaled as one transaction — each
  /// shard's slice tagged with a txn id, sealed by a commit record on the
  /// coordinating shard — so recovery applies it all-or-nothing instead
  /// of possibly replaying only the shards whose records survived a
  /// crash. Costs one barrier rendezvous across the participating writer
  /// threads per multi-shard batch (single-shard batches are unaffected),
  /// so it is off by default.
  bool atomic_ingest = false;
  /// Invoked once per journal generation replayed during construction-time
  /// recovery (serve/recovery.hpp) — `spechd recover` prints one progress
  /// line per callback. Unset: recovery is silent.
  recovery_progress_fn recovery_progress;
};

/// Aggregate + per-shard counters.
struct service_stats {
  std::size_t ingested = 0;
  std::size_t dropped = 0;
  std::size_t batches = 0;
  std::size_t record_count = 0;
  std::size_t cluster_count = 0;
  std::size_t queue_depth = 0;
  std::size_t dirty_buckets = 0;      ///< buckets awaiting a maintenance recluster
  std::uint64_t journal_bytes = 0;    ///< summed journal sizes (0: unjournaled)
  std::uint64_t journal_records = 0;  ///< summed journal record counts
  std::size_t degraded_shards = 0;  ///< read-only shards (dropped a batch)
  std::size_t failed_shards = 0;    ///< shards whose journal may exceed applied state
  std::vector<shard_stats> shards;
};

class clustering_service {
public:
  /// Builds the router, encoder, and shards; writer threads start
  /// immediately. The config is copied.
  explicit clustering_service(serve_config config);

  /// Shuts down: closes every shard queue, drains backlog, joins writers.
  ~clustering_service() = default;

  clustering_service(const clustering_service&) = delete;
  clustering_service& operator=(const clustering_service&) = delete;

  const serve_config& config() const noexcept { return config_; }
  std::size_t shard_count() const noexcept { return shards_.size(); }

  /// Splits `spectra` by shard and enqueues one batch per shard; blocks
  /// while a target queue is full (backpressure). Safe from multiple
  /// producer threads, but per-bucket arrival order — and therefore the
  /// exact-equivalence guarantee — is only defined by a single producer
  /// (or producers feeding disjoint precursor ranges).
  ///
  /// Throws spechd::error — enqueuing nothing further, applying nothing
  /// on the rejecting shard — when a target shard rejects the batch
  /// because it is shutting down or has left healthy (degraded shards are
  /// read-only); the message names the shard and why. With
  /// `config.atomic_ingest`, a batch spanning several shards is journaled
  /// as one transaction and recovers all-or-nothing; a rejection then
  /// aborts the whole transaction (no shard applies its slice).
  void ingest(std::vector<ms::spectrum> spectra);

  /// Barrier: waits until everything enqueued before the call is applied
  /// and published, then rethrows the first ingest error if any.
  void drain();

  /// Answers "which cluster would this spectrum join / how close is it?"
  /// against the currently published views: preprocess + encode the
  /// spectrum (identically to ingest), route to its bucket's shard, and
  /// run the complete-linkage criterion over the bucket members with one
  /// packed Hamming-tile row. Lock-free with respect to ingest; safe from
  /// any number of threads.
  query_result query(const ms::spectrum& spectrum) const;

  /// Loads a spectral library snapshot (.sphlib) for search(). The file is
  /// framed/CRC-validated exactly like a state snapshot, and its identity
  /// must match this service's encoding + bucketing configuration
  /// (library_identity(config.pipeline)) — mismatch throws parse_error.
  /// Safe to call while serving; searches in flight keep the old library.
  void load_library(const std::string& path);
  bool has_library() const;

  /// Open-modification search: preprocess + encode `spectrum` exactly like
  /// query(), then shifted-bucket top-k retrieval against the loaded
  /// library (independent of this service's cluster state and shard
  /// count). Throws spechd::error when no library is loaded. Lock-free
  /// with respect to ingest; safe from any number of threads.
  search_result search(const ms::spectrum& spectrum, std::size_t top_k,
                       double tolerance_da) const;

  service_stats stats() const;

  /// Total ingest jobs queued across shards right now — the admission-
  /// control signal the network tier sheds on. Much cheaper than stats().
  std::size_t queue_depth() const;

  /// Background-scheduler counters (nullopt when maintenance is disabled).
  std::optional<maintenance_scheduler::counters> maintenance_stats() const;

  /// Drains, then writes the complete service state to `path` (.sphsnap).
  void snapshot_file(const std::string& path);

  /// Drains, then *replaces* all state with the snapshot. The snapshot's
  /// identity block must match this service's config (dim, seed,
  /// threshold, bucketing, mode) — mismatch throws parse_error. The shard
  /// count may differ: buckets are re-routed onto this service's shards.
  void restore_file(const std::string& path);

  /// This service's identity block (what snapshots of it will carry).
  snapshot_identity identity() const;

  // --- durability (journal.dir set) --------------------------------------

  bool journaled() const noexcept { return !config_.journal.dir.empty(); }

  /// What constructor-time recovery found/replayed (default-constructed
  /// when unjournaled or the directory was fresh).
  const recovery_report& recovery() const noexcept { return recovery_; }

  /// Compacts the journal: each shard's state is exported and its journal
  /// atomically rotated to the next generation (on the writer thread, so
  /// the fresh journal holds exactly the post-export records), then one
  /// `base-<gen>.sphsnap` with those states is written and older
  /// generations are deleted. Concurrent ingest/queries keep running; a
  /// crash at any point leaves a directory recovery still reads exactly.
  /// No-op when unjournaled. Serialised against itself.
  ///
  /// Failure handling: refuses (throws spechd::error) while any shard is
  /// `failed` — such a shard's journal may end in un-rollback-able bytes,
  /// and rotating it would strand that garbage in a non-final generation
  /// recovery must refuse. A completed compaction *heals* `degraded`
  /// shards back to healthy: the fresh generation captures exactly their
  /// applied state, so the dropped batch is fully reconciled.
  void compact_journal();

  /// compact_journal() iff any shard's journal exceeds the configured
  /// size/record thresholds; returns true when a compaction ran.
  bool maybe_compact_journal();

  /// Deterministic maintenance trigger (what the background scheduler
  /// does on its own when enabled): asks every shard to recluster its
  /// dirty buckets — journaled, on the writer thread — and waits for
  /// completion. Returns how many shards accepted a recluster job.
  std::size_t run_maintenance_now();

  // --- whole-state accessors (drain first; used by tests, CLI, bench) ----

  /// Per-shard states, shard index order.
  std::vector<core::clusterer_state> export_states();

  /// Merged flat clustering; labels are in shard-concatenated record order
  /// (shard 0's records, then shard 1's, ...), aligned with to_store().
  cluster::flat_clustering clustering();

  /// All records, shard-concatenated order (aligned with clustering()).
  hdc::hv_store to_store();

private:
  void attach_journal_dir();
  void compact_journal_locked();  ///< body of compact_journal; needs compact_mutex_
  std::size_t count_degraded() const;  ///< shards currently degraded
  journal_file_header shard_journal_header(std::size_t shard, std::uint64_t generation) const;

  /// Enqueues a multi-shard batch as one atomic transaction (atomic_ingest
  /// path of ingest()); `per_shard` holds the non-empty slices.
  void ingest_atomic(std::vector<std::vector<ms::spectrum>> per_shard);
  /// Throws the canonical rejection error for `shard` (names its health).
  [[noreturn]] void throw_rejected(std::size_t shard) const;

  serve_config config_;
  shard_router router_;
  hdc::id_level_encoder encoder_;
  std::vector<std::unique_ptr<shard>> shards_;
  /// Immutable once published; load_library swaps the pointer under
  /// library_mutex_, searches copy it out and run lock-free on the copy.
  std::shared_ptr<const spectral_library> library_;
  mutable std::mutex library_mutex_;
  recovery_report recovery_;
  /// Serialises cross-shard transactions: all of one transaction's jobs
  /// are enqueued before any of the next's, which (with FIFO shard
  /// queues) makes the writer-thread barrier rendezvous deadlock-free.
  std::mutex txn_mutex_;
  std::uint64_t next_txn_id_ = 0;  ///< guarded by txn_mutex_; seeded past recovery
  /// Highest journal generation in use; compaction bumps it. Guarded by
  /// compact_mutex_ (only compaction/restore mutate it after construction).
  std::uint64_t generation_ = 0;
  std::mutex compact_mutex_;
  /// Last member: the scheduler thread must stop before shards_ tears
  /// down (see ~clustering_service), and start after everything it uses.
  std::unique_ptr<maintenance_scheduler> maintenance_;
};

}  // namespace spechd::serve
