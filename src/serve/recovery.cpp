#include "serve/recovery.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <map>

#include "obs/flight.hpp"
#include "util/error.hpp"

namespace spechd::serve {

namespace {

void check_journal_header(const journal_file_header& header, const std::string& path,
                          std::size_t shard, std::uint64_t generation,
                          std::size_t shards, const snapshot_identity& expected) {
  if (header.shard_index != shard || header.generation != generation) {
    throw parse_error(path, 0,
                      "journal header names shard " + std::to_string(header.shard_index) +
                          " generation " + std::to_string(header.generation) +
                          " but the file name says shard " + std::to_string(shard) +
                          " generation " + std::to_string(generation));
  }
  if (header.shard_count != shards) {
    throw parse_error(path, 0,
                      "journal was written with " + std::to_string(header.shard_count) +
                          " shards but this service has " + std::to_string(shards) +
                          " (per-shard journals cannot be re-routed; restore from a "
                          "snapshot to change the shard count)");
  }
  if (!(header.identity == expected)) {
    throw parse_error(path, 0,
                      "journal identity does not match this service's configuration "
                      "(dim/seed/threshold/bucketing/mode)");
  }
}

}  // namespace

std::optional<snapshot_identity> probe_journal_dir(const std::string& dir) {
  const auto state = scan_journal_dir(dir);
  if (state.snapshot_generation) {
    return read_snapshot_identity_file(
        journal_snapshot_path(dir, *state.snapshot_generation));
  }
  // Tolerate exactly what recovery tolerates: skip truncated-header /
  // 0-byte files (creation-crash leftovers recovery recreates) and read
  // the identity off any intact journal. Only if *no* readable journal
  // exists and a corrupt one does, surface that corruption.
  std::string corrupt_path;
  for (const auto& entry : state.journals) {
    const auto path = journal_shard_path(dir, entry.shard, entry.generation);
    switch (probe_journal_header(path)) {
      case journal_header_status::ok:
        return read_journal_header_file(path).identity;
      case journal_header_status::truncated:
        break;
      case journal_header_status::corrupt:
        corrupt_path = path;
        break;
    }
  }
  if (!corrupt_path.empty()) read_journal_header_file(corrupt_path);  // throws
  return std::nullopt;
}

recovered_state recover_journal_dir(const std::string& dir,
                                    const core::spechd_config& pipeline,
                                    core::assign_mode mode, std::size_t shards,
                                    const snapshot_identity& expected_identity,
                                    const recovery_progress_fn& progress) {
  const auto start = std::chrono::steady_clock::now();
  recovered_state out;
  out.shards.resize(shards);
  out.journal_heads.resize(shards);

  const auto dir_state = scan_journal_dir(dir);

  std::vector<std::vector<std::uint64_t>> generations(shards);
  for (const auto& entry : dir_state.journals) {
    if (entry.shard >= shards) {
      throw parse_error(journal_shard_path(dir, entry.shard, entry.generation), 0,
                        "journal for shard " + std::to_string(entry.shard) +
                            " but this service has only " + std::to_string(shards) +
                            " shards");
    }
    generations[entry.shard].push_back(entry.generation);
  }
  for (auto& gens : generations) std::sort(gens.begin(), gens.end());

  // Base state: the newest snapshot, or empty when none was compacted yet.
  std::uint64_t base_generation = 0;
  std::vector<core::clusterer_state> base(shards);
  if (dir_state.snapshot_generation) {
    base_generation = *dir_state.snapshot_generation;
    const auto snapshot_path = journal_snapshot_path(dir, base_generation);
    auto snapshot = read_snapshot_file(snapshot_path);
    if (!(snapshot.identity == expected_identity)) {
      throw parse_error(snapshot_path, 0,
                        "compaction snapshot identity does not match this service's "
                        "configuration (dim/seed/threshold/bucketing/mode/shards)");
    }
    base = std::move(snapshot.shards);
    out.report.recovered = true;
    out.report.base_snapshot_generation = base_generation;
  }

  // Pass 1: scan and validate every surviving journal file, and collect
  // cross-shard transaction evidence — which txn ids have a commit record
  // and which shards' data records are present. A transaction replays
  // only when its commit *and* every declared participant's data record
  // survived; anything less means the crash interrupted the transaction,
  // and all-or-nothing demands it vanish everywhere.
  std::vector<std::vector<journal_scan>> shard_scans(shards);
  std::vector<std::vector<std::uint64_t>> shard_replay(shards);
  struct txn_evidence {
    std::uint32_t declared_participants = 0;
    std::uint32_t data_records = 0;  ///< distinct shards (one slice per shard)
    bool committed = false;
  };
  std::map<std::uint64_t, txn_evidence> txns;
  for (std::size_t s = 0; s < shards; ++s) {
    // Only generations >= the snapshot base carry records the snapshot
    // does not already contain; older files are redundant leftovers. A
    // 0-byte file (crash between creation and header write) is provably
    // record-free: drop it rather than refusing the directory forever.
    std::vector<std::uint64_t> replay;
    for (const auto gen : generations[s]) {
      if (gen < base_generation) continue;
      std::error_code ec;
      if (std::filesystem::file_size(journal_shard_path(dir, s, gen), ec) == 0 && !ec) {
        std::filesystem::remove(journal_shard_path(dir, s, gen), ec);
        continue;
      }
      replay.push_back(gen);
    }
    // The shard's *newest* file may also carry a partially-written header
    // (crash before the header fsync): like the torn record tail, that is
    // provably record-free — recreate it rather than refusing the
    // directory forever. Anywhere else a bad header stays a hard error.
    while (!replay.empty()) {
      const auto path = journal_shard_path(dir, s, replay.back());
      if (probe_journal_header(path) != journal_header_status::truncated) break;
      std::error_code ec;
      std::filesystem::remove(path, ec);
      replay.pop_back();
    }

    std::uint64_t last_seq = 0;
    bool any_records = false;
    for (std::size_t g = 0; g < replay.size(); ++g) {
      const auto gen = replay[g];
      const auto path = journal_shard_path(dir, s, gen);
      auto scan = read_journal_file(path);
      check_journal_header(scan.header, path, s, gen, shards, expected_identity);
      const bool newest = g + 1 == replay.size();
      if (scan.torn && !newest) {
        throw parse_error(path, 0,
                          "torn record in a non-final journal generation — later "
                          "generations exist, so the history has a hole");
      }
      // Sequence numbers are contiguous across a shard's whole history
      // (rotate() carries next_seq over), so any jump means a lost file
      // or lost records in between — a hole, not a tail, and never safe
      // to replay past.
      if (any_records && !scan.records.empty() &&
          scan.records.front().seq != last_seq + 1) {
        throw parse_error(path, 0,
                          "journal sequence hole across generations (expected seq " +
                              std::to_string(last_seq + 1) + ", found " +
                              std::to_string(scan.records.front().seq) + ")");
      }
      for (const auto& record : scan.records) {
        last_seq = record.seq;
        any_records = true;
        if (record.type == journal_record::kind::commit) {
          txns[record.txn_id].committed = true;
          out.report.max_txn_id = std::max(out.report.max_txn_id, record.txn_id);
        } else if (record.type == journal_record::kind::ingest_batch &&
                   record.txn_id != 0) {
          auto& evidence = txns[record.txn_id];
          ++evidence.data_records;  // per-shard journals: one slice per shard
          evidence.declared_participants =
              std::max(evidence.declared_participants, record.participants);
          out.report.max_txn_id = std::max(out.report.max_txn_id, record.txn_id);
        }
      }
      shard_scans[s].push_back(std::move(scan));
    }
    shard_replay[s] = std::move(replay);
  }

  // Pass 2: rebuild each shard's state from the validated scans.
  std::uint64_t total_records_replayed = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    // Replay through a standalone clusterer: exactly the code the live
    // shard writer runs, so the rebuilt state cannot diverge from what an
    // uninterrupted run would hold.
    core::incremental_clusterer clusterer(pipeline, mode);
    if (dir_state.snapshot_generation) clusterer.import_state(std::move(base[s]));

    journal_head head;
    head.path = journal_shard_path(dir, s, base_generation);
    head.generation = base_generation;
    std::uint64_t last_seq = 0;
    bool any_records = false;
    const auto& replay = shard_replay[s];
    for (std::size_t g = 0; g < replay.size(); ++g) {
      const auto gen = replay[g];
      const auto path = journal_shard_path(dir, s, gen);
      auto& scan = shard_scans[s][g];
      const bool newest = g + 1 == replay.size();
      for (auto& record : scan.records) {
        last_seq = record.seq;
        any_records = true;
        if (record.type == journal_record::kind::ingest_batch) {
          if (record.txn_id != 0) {
            const auto& evidence = txns.at(record.txn_id);
            if (!evidence.committed ||
                evidence.data_records < evidence.declared_participants) {
              // The transaction was interrupted before its commit record
              // (or a peer's data record) became durable: skip the slice
              // everywhere — all-or-nothing.
              ++out.report.txn_batches_dropped;
              continue;
            }
          }
          clusterer.push_batch(record.batch);
          ++out.report.batches_replayed;
          out.report.spectra_replayed += record.batch.size();
        } else if (record.type == journal_record::kind::recluster) {
          clusterer.rebuild_dirty_buckets();
          ++out.report.reclusters_replayed;
        }
        // commit records carry no state; pass 1 consumed them.
      }
      ++out.report.journal_files;
      out.report.recovered = true;
      std::uint64_t torn_bytes_here = 0;
      if (scan.torn) {
        std::error_code ec;
        const auto size = std::filesystem::file_size(path, ec);
        if (!ec && size > scan.valid_bytes) {
          torn_bytes_here = size - scan.valid_bytes;
          out.report.torn_bytes += torn_bytes_here;
        }
      }
      total_records_replayed += scan.records.size();
      obs::record_event(obs::event_kind::recovery_progress, scan.records.size(), gen);
      if (progress) {
        recovery_progress p;
        p.shard = s;
        p.generation = gen;
        p.records_replayed = scan.records.size();
        p.total_records_replayed = total_records_replayed;
        const double elapsed = std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() - start)
                                   .count();
        p.records_per_sec =
            elapsed > 0.0 ? static_cast<double>(total_records_replayed) / elapsed : 0.0;
        p.torn_tail = scan.torn;
        p.torn_bytes = torn_bytes_here;
        progress(p);
      }
      if (newest) {
        head.path = path;
        head.generation = gen;
        head.exists = true;
        head.valid_bytes = scan.valid_bytes;
        head.next_seq = any_records ? last_seq + 1 : 0;
        head.records = scan.records.size();
      }
    }
    out.shards[s] = clusterer.export_state();
    out.journal_heads[s] = head;
  }

  out.report.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return out;
}

}  // namespace spechd::serve
