#include "serve/shard_router.hpp"

#include "util/error.hpp"

namespace spechd::serve {

namespace {

/// splitmix64 finaliser: a full-avalanche 64-bit mix, so consecutive bucket
/// keys (adjacent precursor-mass windows) spread over all shards.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

shard_router::shard_router(preprocess::bucket_config bucketing, std::size_t shard_count)
    : bucketing_(bucketing), shard_count_(shard_count) {
  SPECHD_EXPECTS(shard_count >= 1);
}

std::int64_t shard_router::bucket_key(double precursor_mz,
                                      int precursor_charge) const noexcept {
  return preprocess::bucket_index(precursor_mz, precursor_charge, bucketing_);
}

std::size_t shard_router::shard_of_key(std::int64_t key) const noexcept {
  return static_cast<std::size_t>(mix64(static_cast<std::uint64_t>(key)) %
                                  static_cast<std::uint64_t>(shard_count_));
}

}  // namespace spechd::serve
