// Background maintenance for the clustering service.
//
// Ingestion marks buckets dirty (incremental assignment can drift from
// the batch pipeline's HAC labels until a recluster); PR 2's
// rebuild_dirty_buckets restores batch-equivalent assignments but nothing
// scheduled it. This thread closes that gap: every `interval` it asks
// each *idle* shard (empty ingest queue, dirty buckets in its published
// view) to recluster on its own writer thread — journaling the recluster
// as a record first, so crash recovery replays it at the exact stream
// position it ran — and then gives the service a chance to compact the
// journal when a shard's file has outgrown the configured thresholds.
//
// Idleness is load-aware (PR 10): besides each shard's queue-empty test,
// the scheduler keeps an EWMA of the service-wide ingest rate (sampled
// from the obs ingest counter each tick) and defers reclusters and
// compactions while the rate stays above `busy_ingest_rate` — bounded by
// `max_deferred_ticks` so maintenance cannot starve forever. Deferred
// ticks are counted and emitted as flight events.
//
// The scheduler owns no serve state: the service hands it two callbacks,
// which keeps this module free of shard/service dependencies and lets
// tests drive the same hooks deterministically
// (clustering_service::run_maintenance_now / maybe_compact_journal).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>

namespace spechd::serve {

struct maintenance_config {
  bool enabled = false;
  /// Poll period. Each tick is cheap when there is nothing to do (a stats
  /// read per shard), so sub-second intervals are fine.
  std::chrono::milliseconds interval{250};
  /// Auto-heal backoff: when a shard is degraded the scheduler attempts a
  /// heal (journal compaction) itself; each *failed* attempt doubles the
  /// wait before the next one, from `heal_backoff_initial` up to
  /// `heal_backoff_max`, and a success resets it — so a persistent I/O
  /// condition is probed gently while a transient one heals within one
  /// backoff step of clearing.
  std::chrono::milliseconds heal_backoff_initial{500};
  std::chrono::milliseconds heal_backoff_max{30000};
  /// Load-aware deferral: each tick the scheduler samples the service's
  /// cumulative ingest-record count (hooks.ingest_records) and keeps an
  /// EWMA of the ingest rate in records/sec. While the EWMA is at or
  /// above `busy_ingest_rate`, reclusters and compactions are deferred —
  /// maintenance steals writer-thread time from exactly the path that is
  /// hot, and the queue-empty test alone misses sustained many-small-batch
  /// ingest that drains the queue between polls. 0 disables deferral
  /// (every tick behaves as before).
  double busy_ingest_rate = 1000.0;
  /// EWMA smoothing factor in (0, 1]: weight of the newest rate sample.
  /// Higher reacts faster to bursts; lower rides out gaps in a sustained
  /// stream.
  double ingest_ewma_alpha = 0.3;
  /// Staleness bound: after this many consecutive deferred ticks,
  /// maintenance runs anyway (dirty buckets and journal growth must not
  /// wait forever behind a never-ending ingest stream). 0 = defer forever.
  std::uint64_t max_deferred_ticks = 40;
};

class maintenance_scheduler {
public:
  struct hooks {
    /// Recluster dirty buckets on every idle shard; returns how many
    /// shards accepted a recluster job.
    std::function<std::size_t()> run_maintenance;
    /// Compact the journal if a threshold is exceeded; returns true when
    /// a compaction ran.
    std::function<bool()> maybe_compact;
    /// Cheap poll: how many shards are currently degraded (read-only).
    /// Unset (together with `heal`) disables auto-healing — e.g. for
    /// unjournaled services, where compaction (the heal) does not exist.
    std::function<std::size_t()> degraded_shards;
    /// Attempt the heal (journal compaction reconciles and heals every
    /// degraded shard); returns how many shards it healed, throws while
    /// the underlying I/O condition persists (→ backoff doubles).
    std::function<std::size_t()> heal;
    /// Cumulative ingest-record count (monotonic; the service feeds it
    /// from the `spechd_ingest_records_total` obs counter). The scheduler
    /// differentiates successive samples into the load EWMA. Unset
    /// disables load-aware deferral.
    std::function<std::uint64_t()> ingest_records;
  };

  /// Counters for observability (read from any thread). A non-zero
  /// `failures` means hook invocations threw (e.g. compaction hit a full
  /// disk); the scheduler keeps ticking and retries on its interval.
  struct counters {
    std::uint64_t ticks = 0;
    std::uint64_t reclusters = 0;
    std::uint64_t compactions = 0;
    std::uint64_t failures = 0;
    std::uint64_t heal_attempts = 0;  ///< auto-heal tries (degraded shards seen)
    std::uint64_t heals = 0;          ///< shards healed back to healthy
    std::uint64_t deferrals = 0;      ///< ticks skipped under sustained ingest
  };

  /// Starts the background thread immediately.
  maintenance_scheduler(maintenance_config config, hooks hooks);

  /// Stops and joins.
  ~maintenance_scheduler();

  maintenance_scheduler(const maintenance_scheduler&) = delete;
  maintenance_scheduler& operator=(const maintenance_scheduler&) = delete;

  /// Signals the thread to exit and joins it. Idempotent; called by the
  /// service *before* shards shut down so no maintenance job can land in
  /// a closing queue.
  void stop();

  counters stats() const;

  /// Current ingest-rate EWMA in records/sec (0 until two samples exist).
  double ingest_rate_ewma() const noexcept {
    return ewma_rate_.load(std::memory_order_relaxed);
  }

private:
  void loop();
  /// One auto-heal consideration (loop thread): attempt a heal when a
  /// shard is degraded and the backoff window has elapsed.
  void maybe_heal();
  /// Samples hooks.ingest_records, folds the rate into the EWMA, and
  /// reports whether this tick counts as "under sustained ingest"
  /// (loop thread only).
  bool update_ingest_ewma();

  maintenance_config config_;
  hooks hooks_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
  /// Auto-heal pacing (loop-thread-only): next attempt time and the
  /// current backoff step.
  std::chrono::steady_clock::time_point next_heal_{};
  std::chrono::milliseconds heal_backoff_{0};
  /// Load-EWMA state (loop-thread-only except the published rate).
  std::chrono::steady_clock::time_point last_sample_{};
  std::uint64_t last_ingest_records_ = 0;
  bool ewma_primed_ = false;
  std::uint64_t deferred_streak_ = 0;
  std::atomic<double> ewma_rate_{0.0};
  std::atomic<std::uint64_t> deferrals_{0};
  std::atomic<std::uint64_t> ticks_{0};
  std::atomic<std::uint64_t> reclusters_{0};
  std::atomic<std::uint64_t> compactions_{0};
  std::atomic<std::uint64_t> failures_{0};
  std::atomic<std::uint64_t> heal_attempts_{0};
  std::atomic<std::uint64_t> heals_{0};
  std::thread thread_;  ///< last member: starts after everything above
};

}  // namespace spechd::serve
