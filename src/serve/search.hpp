// Open Modification Search (OMS): an immutable HV spectral library with
// shifted-bucket top-k retrieval — the serving tier's second workload.
//
// The sibling papers (RapidOMS, arxiv 2409.13361; Kang et al., arxiv
// 2211.16422) run spectral *library search* on the same binary-HV substrate
// as clustering: encode a reference library of identified spectra, then
// match queries by Hamming distance. The open-modification twist is the
// candidate walk — a modified peptide's precursor mass is shifted by the
// modification mass, so instead of requiring exact bucket equality the
// query probes every bucket whose key falls inside ± a modification-mass
// window around its own precursor mass:
//
//   query ──encode──▶ HV ──┐
//                          ▼
//   buckets[key ∈ window] ──hamming_tile_packed──▶ counts ──k_select──▶
//     per-bucket top-k ──merge by (count, gid)──▶ global top-k hits
//
// Determinism: library ids (gids) are assigned in (bucket key ascending,
// build arrival order), every per-bucket k-select breaks count ties toward
// the lowest index, and the cross-bucket merge orders by the packed
// (count, gid) key — so the result is the *globally least* k candidates
// under a total order, independent of probe order, shard count, SIMD
// variant, and in-process vs networked transport (the golden tests pin all
// of these).
//
// On disk the library is a `.sphsnap`-variant ("SPLB" magic) written and
// validated through the exact framing reader the state snapshot uses —
// magic/version/length/CRC checked before any payload field is trusted —
// plus the snapshot identity block, so a library built under a different
// encoder/bucketing config is rejected at load with a clear diagnostic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/spechd.hpp"
#include "hdc/hypervector.hpp"
#include "ms/peptide.hpp"
#include "ms/spectrum.hpp"
#include "serve/snapshot.hpp"

namespace spechd::serve {

/// One reference entry of the library, in global-id order.
struct library_entry {
  std::string name;           ///< peptide sequence or source spectrum title
  double precursor_mz = 0.0;
  std::int32_t precursor_charge = 0;
  std::int64_t bucket_key = 0;

  friend bool operator==(const library_entry&, const library_entry&) = default;
};

/// One search hit: raw Hamming count (the bit-exact quantity every golden
/// test compares), normalised distance, and the matched entry's metadata.
struct search_hit {
  std::uint32_t id = 0;       ///< global library id
  std::uint32_t hamming = 0;  ///< raw Hamming count against the query HV
  double distance = 1.0;      ///< hamming / dim
  std::int64_t bucket_key = 0;
  double precursor_mz = 0.0;
  std::int32_t precursor_charge = 0;
  std::string name;

  friend bool operator==(const search_hit&, const search_hit&) = default;
};

struct search_result {
  bool encodable = true;           ///< false: query died in preprocessing
  std::uint64_t buckets_probed = 0;  ///< non-empty buckets inside the window
  std::uint64_t candidates = 0;      ///< library entries scored
  std::vector<search_hit> hits;      ///< ascending (hamming, id); size <= k

  friend bool operator==(const search_result&, const search_result&) = default;
};

/// Inclusive bucket-key window of the shifted candidate walk.
struct key_window {
  std::int64_t lo = 0;
  std::int64_t hi = 0;
};

/// The window of bucket keys a query probes: every key reachable by
/// shifting the query's bucketing mass (precursor_mz − hydrogen) × charge
/// by at most ±tolerance_da. Guarantees: the exact-match bucket
/// bucket_index(precursor_mz, charge) is always inside the window, the
/// window is symmetric around the query mass, and tolerance_da <= 0
/// degenerates to exactly that one key (so zero-tolerance search is
/// bit-identical to an exact-bucket query — the property tests pin this).
key_window shifted_key_window(double precursor_mz, int charge, double tolerance_da,
                              const preprocess::bucket_config& config) noexcept;

/// The identity a spectral library pins: the encode/bucket-relevant subset
/// of snapshot_identity, with clustering-only knobs (distance threshold,
/// assign mode, shard count) zeroed so a library serves any service whose
/// encoding matches, regardless of its clustering setup.
snapshot_identity library_identity(const core::spechd_config& config);

/// Immutable bucket-partitioned HV reference library. Build once (from
/// identified spectra or FASTA-digested peptides), then search from any
/// number of threads concurrently — search touches no mutable state.
class spectral_library {
public:
  spectral_library() = default;

  /// Builds from identified spectra (entry names are the spectrum titles).
  /// Encoding runs the full preprocessing chain; spectra the filter drops
  /// are counted in dropped() and excluded. Deterministic in input order.
  static spectral_library from_spectra(const std::vector<ms::spectrum>& spectra,
                                       const core::spechd_config& config);

  /// Builds from peptides: one theoretical spectrum per (peptide, charge),
  /// named "SEQ/z". Deterministic.
  static spectral_library from_peptides(const std::vector<ms::peptide>& peptides,
                                        const std::vector<int>& charges,
                                        const core::spechd_config& config);

  /// Shifted-bucket top-k retrieval for an already-encoded query. The HV's
  /// dimension must match the library's. tolerance_da widens the candidate
  /// walk (0 = exact bucket only); hits come back ascending (hamming, id).
  search_result search(const hdc::hypervector& query, double precursor_mz, int charge,
                       std::size_t top_k, double tolerance_da) const;

  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }
  std::size_t bucket_count() const noexcept { return buckets_.size(); }
  std::size_t dropped() const noexcept { return dropped_; }
  const snapshot_identity& identity() const noexcept { return identity_; }
  const library_entry& entry(std::size_t gid) const { return entries_.at(gid); }

  /// Writes / reads the `.sphlib` snapshot ("SPLB" magic, version 1,
  /// CRC-framed exactly like a `.sphsnap`). load() re-derives every
  /// internal invariant (ascending keys, entry/bucket consistency) and
  /// throws parse_error on any violation — a corrupted or truncated file
  /// can never produce a silently-wrong library.
  void save(const std::string& path) const;
  static spectral_library load(const std::string& path);

private:
  /// One bucket's packed candidate block: entries [base, base + count) of
  /// the gid order, HVs packed contiguously for hamming_tile_packed.
  struct bucket_block {
    std::int64_t key = 0;
    std::uint32_t base = 0;
    std::uint32_t count = 0;
    std::vector<std::uint64_t> packed;  ///< count * words_ words
  };

  static spectral_library assemble(std::vector<library_entry> entries,
                                   std::vector<hdc::hypervector> hvs,
                                   const snapshot_identity& identity,
                                   std::size_t dropped);

  snapshot_identity identity_;
  std::size_t words_ = 0;
  std::vector<library_entry> entries_;  ///< gid order: (bucket key asc, arrival)
  std::vector<bucket_block> buckets_;   ///< ascending key
  std::size_t dropped_ = 0;
};

}  // namespace spechd::serve
