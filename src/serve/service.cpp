#include "serve/service.hpp"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "preprocess/pipeline.hpp"
#include "util/failpoint.hpp"
#include "util/io.hpp"

namespace spechd::serve {

namespace {

core::spechd_config shard_pipeline_config(const serve_config& config) {
  core::spechd_config pipeline = config.pipeline;
  // Each shard runs its clusterer on its own writer thread; a nested
  // hardware-wide pool per shard would oversubscribe N× for nothing.
  if (pipeline.threads == 0) pipeline.threads = 1;
  return pipeline;
}

}  // namespace

clustering_service::clustering_service(serve_config config)
    : config_(std::move(config)),
      router_(config_.pipeline.preprocess.bucketing, config_.shards),
      encoder_(config_.pipeline.encoder, config_.pipeline.preprocess.quantize.mz_bins,
               config_.pipeline.preprocess.quantize.intensity_levels) {
  SPECHD_EXPECTS(config_.shards >= 1);
  SPECHD_EXPECTS(config_.queue_capacity >= 1);
  // Size the crash-dump status table before any shard writes into it.
  obs::set_status_shard_count(config_.shards);
  const auto pipeline = shard_pipeline_config(config_);
  shards_.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    shards_.push_back(std::make_unique<shard>(s, pipeline, config_.mode,
                                              config_.queue_capacity,
                                              config_.publish_every));
  }
  if (journaled()) attach_journal_dir();
  if (config_.maintenance.enabled) {
    maintenance_scheduler::hooks hooks;
    hooks.run_maintenance = [this] {
      std::size_t accepted = 0;
      for (auto& s : shards_) accepted += s->maintain(/*only_if_idle=*/true) ? 1 : 0;
      return accepted;
    };
    hooks.maybe_compact = [this] { return maybe_compact_journal(); };
    // Load-aware deferral: the scheduler differentiates the service-wide
    // ingest counter into its EWMA (see maintenance.hpp).
    hooks.ingest_records = [] {
      static auto& records =
          obs::registry::instance().counter("spechd_ingest_records_total");
      return records.value();
    };
    if (journaled()) {
      // Auto-heal (journaled services only — compaction *is* the heal, so
      // an unjournaled degraded shard has no automated path back): poll
      // for degraded shards, compact when one appears, let the scheduler
      // pace retries with exponential backoff while the I/O fault lasts.
      hooks.degraded_shards = [this] { return count_degraded(); };
      hooks.heal = [this] {
        const auto before = count_degraded();
        if (before == 0) return std::size_t{0};
        compact_journal();  // throws while the condition persists
        return before - count_degraded();
      };
    }
    maintenance_ =
        std::make_unique<maintenance_scheduler>(config_.maintenance, std::move(hooks));
  }
}

std::size_t clustering_service::count_degraded() const {
  std::size_t n = 0;
  for (const auto& s : shards_) {
    n += s->health() == shard_health::degraded ? 1 : 0;
  }
  return n;
}

std::size_t clustering_service::queue_depth() const {
  std::size_t depth = 0;
  for (const auto& s : shards_) depth += s->queue_depth();
  return depth;
}

std::optional<maintenance_scheduler::counters> clustering_service::maintenance_stats()
    const {
  if (!maintenance_) return std::nullopt;
  return maintenance_->stats();
}

void clustering_service::attach_journal_dir() {
  const auto& dir = config_.journal.dir;
  std::filesystem::create_directories(dir);
  auto recovered = recover_journal_dir(dir, shard_pipeline_config(config_), config_.mode,
                                       shards_.size(), identity(),
                                       config_.recovery_progress);
  if (recovered.report.recovered) {
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      shards_[s]->run_exclusive(
          [state = std::move(recovered.shards[s])](
              core::incremental_clusterer& clusterer) mutable {
            clusterer.import_state(std::move(state));
          });
    }
  }
  bool created = false;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const auto& head = recovered.journal_heads[s];
    generation_ = std::max(generation_, head.generation);
    created |= !head.exists;
    shards_[s]->attach_journal(std::make_unique<journal_writer>(
        head, shard_journal_header(s, head.generation), config_.journal));
  }
  if (recovered.report.base_snapshot_generation) {
    generation_ = std::max(generation_, *recovered.report.base_snapshot_generation);
    // Generations below the newest snapshot are redundant; drop leftovers
    // a crash mid-compaction may have stranded.
    remove_stale_generations(dir, *recovered.report.base_snapshot_generation);
  }
  if (created && config_.journal.fsync) fsync_dir(dir);
  // Transaction ids must keep increasing across restarts: a reused id
  // could pair a new commit record with a dead transaction's surviving
  // data records.
  next_txn_id_ = recovered.report.max_txn_id;
  recovery_ = recovered.report;
}

journal_file_header clustering_service::shard_journal_header(
    std::size_t shard, std::uint64_t generation) const {
  journal_file_header header;
  header.shard_index = static_cast<std::uint32_t>(shard);
  header.shard_count = static_cast<std::uint32_t>(shards_.size());
  header.generation = generation;
  header.identity = identity();
  return header;
}

void clustering_service::compact_journal() {
  if (!journaled()) return;
  std::lock_guard lock(compact_mutex_);
  compact_journal_locked();
}

void clustering_service::compact_journal_locked() {
  // Never rotate a failed shard: its journal may end in bytes a rollback
  // could not remove, and rotation would freeze that tail into a
  // non-final generation — which recovery must refuse as a hole in
  // history, bricking the directory. (Degraded shards are fine: their
  // journal still matches their applied state exactly, and compaction is
  // precisely what reconciles — and heals — them.)
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s]->health() == shard_health::failed) {
      throw spechd::error("cannot compact journal: shard " + std::to_string(s) +
                          " is failed (" + shards_[s]->health_message() +
                          "); restart the service to recover from the journal");
    }
  }
  // Base the new generation on the highest generation any shard actually
  // sits at, not just the last *completed* compaction: a compaction that
  // failed mid-rotation leaves some shards already on generation_+1, and
  // retrying with that same number would hit their existing files
  // (O_EXCL). A fresh number lets every shard rotate cleanly, and
  // recovery replays the in-between generations in order regardless.
  std::uint64_t new_gen = generation_;
  for (const auto& s : shards_) {
    new_gen = std::max(new_gen, s->journal_generation());
  }
  new_gen += 1;
  // Rotate first, snapshot second: each shard's state is captured at its
  // rotation point (on the writer thread), so the gen-(g+1) journal holds
  // exactly the records the gen-(g+1) snapshot does not. A crash before
  // the snapshot rename leaves both generations' journals on disk, and
  // recovery replays them in order on top of the *old* snapshot — no
  // drain or ingest pause is needed for correctness.
  std::vector<core::clusterer_state> states(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    journal_head head;
    head.path = journal_shard_path(config_.journal.dir, s, new_gen);
    head.generation = new_gen;
    states[s] = shards_[s]->export_and_rotate_journal(head,
                                                      shard_journal_header(s, new_gen));
  }
  const auto final_path = journal_snapshot_path(config_.journal.dir, new_gen);
  const auto tmp_path = final_path + ".tmp";
  // tmp + fsync + rename + dir-fsync, all through the checked-I/O layer:
  // a failure at any point (ENOSPC, EIO, torn rename) leaves the previous
  // snapshot and every rotated journal generation in place, so recovery
  // still replays the directory exactly; the compaction itself reports
  // the error and can be retried with a fresh generation number.
  static util::failpoint fp_rename("snapshot.rename");
  write_snapshot_file(tmp_path, identity(), states);
  if (config_.journal.fsync) fsync_file(tmp_path);
  util::rename_file(tmp_path, final_path, fp_rename);
  if (config_.journal.fsync) fsync_dir(config_.journal.dir);
  generation_ = new_gen;
  remove_stale_generations(config_.journal.dir, new_gen);
  // The new base snapshot captures each shard's applied state, so a shard
  // that had dropped a batch (degraded, read-only) is reconciled: journal
  // and durable state agree again. Heal it.
  for (auto& s : shards_) s->heal_degraded();
}

bool clustering_service::maybe_compact_journal() {
  if (!journaled()) return false;
  const auto& journal = config_.journal;
  bool exceeded = false;
  for (const auto& s : shards_) {
    if (journal.compact_max_bytes != 0 && s->journal_bytes() > journal.compact_max_bytes) {
      exceeded = true;
    }
    if (journal.compact_max_records != 0 &&
        s->journal_records() > journal.compact_max_records) {
      exceeded = true;
    }
  }
  if (!exceeded) return false;
  compact_journal();
  return true;
}

std::size_t clustering_service::run_maintenance_now() {
  std::size_t accepted = 0;
  for (auto& s : shards_) accepted += s->maintain(/*only_if_idle=*/false) ? 1 : 0;
  drain();  // maintenance jobs run in queue order; drain waits them out
  return accepted;
}

void clustering_service::throw_rejected(std::size_t shard) const {
  const auto health = shards_[shard]->health();
  std::string why = health == shard_health::healthy
                        ? std::string("shut down")
                        : std::string(shard_health_name(health)) + ": " +
                              shards_[shard]->health_message();
  throw spechd::error("shard " + std::to_string(shard) + " rejected ingest (" + why +
                      ")");
}

void clustering_service::ingest(std::vector<ms::spectrum> spectra) {
  if (spectra.empty()) return;
  static auto& records = obs::registry::instance().counter("spechd_ingest_records_total");
  static auto& batches = obs::registry::instance().counter("spechd_ingest_batches_total");
  static auto& enqueue_ns =
      obs::registry::instance().histogram("spechd_ingest_enqueue_ns");
  records.add(spectra.size());
  batches.add(1);
  // The enqueue span covers routing + queue admission; while a target
  // queue is full it also covers the backpressure block, which is exactly
  // what makes it the ingest-side wait signal.
  obs::trace_span span(enqueue_ns, obs::stage::enqueue);
  if (shards_.size() == 1) {
    if (!shards_[0]->enqueue(std::move(spectra))) throw_rejected(0);
    return;
  }
  std::vector<std::vector<ms::spectrum>> per_shard(shards_.size());
  for (auto& s : spectra) {
    per_shard[router_.shard_of(s)].push_back(std::move(s));
  }
  if (config_.atomic_ingest && journaled()) {
    std::size_t participants = 0;
    for (const auto& slice : per_shard) participants += slice.empty() ? 0 : 1;
    if (participants > 1) {
      ingest_atomic(std::move(per_shard));
      return;
    }
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    // A false return means the shard is shutting down or read-only
    // (degraded/failed): surface it — silently dropping an accepted batch
    // would diverge the service from its producers with no signal.
    if (!per_shard[i].empty() && !shards_[i]->enqueue(std::move(per_shard[i]))) {
      throw_rejected(i);
    }
  }
}

void clustering_service::ingest_atomic(std::vector<std::vector<ms::spectrum>> per_shard) {
  std::vector<std::size_t> targets;
  for (std::size_t i = 0; i < per_shard.size(); ++i) {
    if (!per_shard[i].empty()) targets.push_back(i);
  }
  // One transaction at a time: all of this transaction's jobs enter the
  // shard queues before any later transaction's (see txn_mutex_ docs),
  // which is what makes the writer-thread rendezvous deadlock-free.
  std::lock_guard txn_lock(txn_mutex_);
  const std::uint64_t txn_id = ++next_txn_id_;
  auto barrier = std::make_shared<txn_barrier>(targets.size());
  std::size_t enqueued = 0;
  std::size_t rejected_shard = 0;
  bool rejected = false;
  for (const auto i : targets) {
    // The coordinator is the lowest participating shard; it appends the
    // commit record once every participant's data record landed.
    if (!shards_[i]->enqueue_txn(std::move(per_shard[i]), txn_id, barrier,
                                 /*coordinator=*/enqueued == 0)) {
      rejected = true;
      rejected_shard = i;
      break;
    }
    ++enqueued;
  }
  if (!rejected) return;
  // A shard refused its slice: the jobs already queued must not wait for
  // arrivals that will never come, and the transaction must abort (no
  // shard may apply). Shrink the rendezvous to the jobs actually queued
  // and mark the abort before releasing them.
  {
    std::lock_guard lock(barrier->mutex);
    barrier->aborted = true;
    barrier->participants = enqueued;
    if (enqueued == 0) barrier->commit_done = true;
  }
  barrier->cv.notify_all();
  throw_rejected(rejected_shard);
}

void clustering_service::drain() {
  for (auto& s : shards_) s->drain();
}

query_result clustering_service::query(const ms::spectrum& spectrum) const {
  static auto& queries = obs::registry::instance().counter("spechd_query_requests_total");
  static auto& route_ns = obs::registry::instance().histogram("spechd_query_route_ns");
  queries.add(1);
  // Route stage: preprocessing + encoding + bucket keying — everything up
  // to handing the query to its bucket's shard.
  obs::trace_span route_span(route_ns, obs::stage::route);
  // Same preprocessing as ingest — a spectrum the filter would drop on
  // ingest is reported unencodable rather than queried inconsistently.
  auto batch = preprocess::run_preprocessing({spectrum}, config_.pipeline.preprocess);
  if (batch.spectra.empty()) return query_result{};
  const auto& q = batch.spectra.front();
  const auto hv = encoder_.encode(q);
  const auto key = router_.bucket_key(q.precursor_mz, q.precursor_charge);
  route_span.finish();
  return shards_[router_.shard_of_key(key)]->query(hv, key,
                                                   config_.pipeline.distance_threshold);
}

void clustering_service::load_library(const std::string& path) {
  auto lib = std::make_shared<const spectral_library>(spectral_library::load(path));
  const auto expected = library_identity(config_.pipeline);
  if (!(lib->identity() == expected)) {
    throw parse_error(path, 0,
                      "spectral library identity does not match this service's "
                      "configuration (dim/seed/bucketing/preprocessing)");
  }
  std::lock_guard lock(library_mutex_);
  library_ = std::move(lib);
}

bool clustering_service::has_library() const {
  std::lock_guard lock(library_mutex_);
  return library_ != nullptr;
}

search_result clustering_service::search(const ms::spectrum& spectrum, std::size_t top_k,
                                         double tolerance_da) const {
  std::shared_ptr<const spectral_library> lib;
  {
    std::lock_guard lock(library_mutex_);
    lib = library_;
  }
  if (!lib) throw spechd::error("no spectral library loaded");
  static auto& searches =
      obs::registry::instance().counter("spechd_search_requests_total");
  static auto& route_ns = obs::registry::instance().histogram("spechd_search_route_ns");
  searches.add(1);
  obs::trace_span route_span(route_ns, obs::stage::route);
  // Same preprocessing as ingest/query — a spectrum the filter would drop
  // is reported unencodable rather than searched inconsistently.
  auto batch = preprocess::run_preprocessing({spectrum}, config_.pipeline.preprocess);
  if (batch.spectra.empty()) {
    search_result result;
    result.encodable = false;
    return result;
  }
  const auto& q = batch.spectra.front();
  const auto hv = encoder_.encode(q);
  route_span.finish();
  return lib->search(hv, q.precursor_mz, q.precursor_charge, top_k, tolerance_da);
}

service_stats clustering_service::stats() const {
  service_stats total;
  total.shards.reserve(shards_.size());
  for (const auto& s : shards_) {
    auto stats = s->stats();
    total.ingested += stats.ingested;
    total.dropped += stats.dropped;
    total.batches += stats.batches;
    total.record_count += stats.record_count;
    total.cluster_count += stats.cluster_count;
    total.queue_depth += stats.queue_depth;
    total.dirty_buckets += stats.dirty_buckets;
    total.journal_bytes += stats.journal_bytes;
    total.journal_records += stats.journal_records;
    total.degraded_shards += stats.health == shard_health::degraded ? 1 : 0;
    total.failed_shards += stats.health == shard_health::failed ? 1 : 0;
    total.shards.push_back(std::move(stats));
  }
  return total;
}

snapshot_identity clustering_service::identity() const {
  snapshot_identity id;
  id.dim = static_cast<std::uint32_t>(config_.pipeline.encoder.dim);
  id.encoder_seed = config_.pipeline.encoder.seed;
  id.distance_threshold = config_.pipeline.distance_threshold;
  id.bucket_resolution = config_.pipeline.preprocess.bucketing.resolution;
  id.fallback_charge = config_.pipeline.preprocess.bucketing.fallback_charge;
  id.assign_mode = static_cast<std::uint32_t>(config_.mode);
  id.shard_count = static_cast<std::uint32_t>(shards_.size());
  id.config_digest = pipeline_digest(config_.pipeline);
  return id;
}

std::vector<core::clusterer_state> clustering_service::export_states() {
  drain();
  std::vector<core::clusterer_state> states(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->run_exclusive([&states, s](core::incremental_clusterer& clusterer) {
      states[s] = clusterer.export_state();
    }, /*republish=*/false);
  }
  return states;
}

void clustering_service::snapshot_file(const std::string& path) {
  const auto states = export_states();  // drains
  write_snapshot_file(path, identity(), states);
}

void clustering_service::restore_file(const std::string& path) {
  auto data = read_snapshot_file(path);

  auto expected = identity();
  expected.shard_count = data.identity.shard_count;  // count may differ; rest must not
  if (!(data.identity == expected)) {
    throw parse_error(path, 0,
                      "snapshot identity does not match this service's configuration "
                      "(dim/seed/threshold/bucketing/mode)");
  }

  // When the shard count matches *and* every stored bucket already sits on
  // the shard this router would pick, states import verbatim (preserving
  // record order inside each shard). Otherwise whole buckets are re-routed.
  bool verbatim = data.shards.size() == shards_.size();
  if (verbatim) {
    for (std::size_t s = 0; verbatim && s < data.shards.size(); ++s) {
      for (const auto& bucket : data.shards[s].buckets) {
        if (router_.shard_of_key(bucket.key) != s) {
          verbatim = false;
          break;
        }
      }
    }
  }

  std::vector<core::clusterer_state> per_shard(shards_.size());
  if (verbatim) {
    per_shard = std::move(data.shards);
  } else {
    // Re-partition: buckets are self-contained, so move each whole bucket
    // (records in arrival order + labels) onto the shard this service's
    // router picks for its key. Record indices are renumbered per target
    // shard; per-bucket member order — the only order assignment depends
    // on — is unchanged.
    const auto dim = config_.pipeline.encoder.dim;
    const auto seed = config_.pipeline.encoder.seed;
    for (auto& state : per_shard) state.store = hdc::hv_store(dim, seed);
    // Buckets must land in ascending key order per target shard; stored
    // shards hold ascending keys and distinct shards hold distinct
    // buckets, so a stable merge by key over all stored shards suffices.
    struct bucket_source {
      const core::clusterer_state* state;
      const core::bucket_snapshot* bucket;
    };
    std::vector<bucket_source> sources;
    for (const auto& state : data.shards) {
      for (const auto& bucket : state.buckets) sources.push_back({&state, &bucket});
    }
    std::sort(sources.begin(), sources.end(),
              [](const bucket_source& a, const bucket_source& b) {
                return a.bucket->key < b.bucket->key;
              });
    for (const auto& src : sources) {
      auto& target = per_shard[router_.shard_of_key(src.bucket->key)];
      core::bucket_snapshot rebuilt;
      rebuilt.key = src.bucket->key;
      rebuilt.next_local = src.bucket->next_local;
      rebuilt.dirty = src.bucket->dirty;
      rebuilt.local_labels = src.bucket->local_labels;
      rebuilt.members.reserve(src.bucket->members.size());
      for (const auto idx : src.bucket->members) {
        rebuilt.members.push_back(static_cast<std::uint32_t>(target.store.size()));
        target.store.append(src.state->store.at(idx));
      }
      target.buckets.push_back(std::move(rebuilt));
    }
  }

  drain();
  // compact_mutex_ spans the imports *and* the rebase compaction: a
  // threshold compaction racing in from the maintenance thread mid-loop
  // would otherwise persist a half-restored cross-shard base snapshot.
  std::lock_guard lock(compact_mutex_);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->run_exclusive(
        [state = std::move(per_shard[s])](core::incremental_clusterer& clusterer) mutable {
          clusterer.import_state(std::move(state));
        });
  }
  // A journaled service must keep its directory consistent with the live
  // state: the pre-restore journal describes state that no longer exists,
  // so compact immediately — the restored state becomes the new base
  // snapshot and every older generation is dropped.
  if (journaled()) compact_journal_locked();
}

cluster::flat_clustering clustering_service::clustering() {
  drain();
  cluster::flat_clustering merged;
  std::size_t label_offset = 0;
  for (auto& s : shards_) {
    cluster::flat_clustering local;
    s->run_exclusive([&local](core::incremental_clusterer& clusterer) {
      local = clusterer.clustering();
    }, /*republish=*/false);
    for (const auto label : local.labels) {
      merged.labels.push_back(label < 0 ? label
                                        : static_cast<std::int32_t>(
                                              label_offset + static_cast<std::size_t>(label)));
    }
    label_offset += local.cluster_count;
  }
  merged.cluster_count = label_offset;
  return merged;
}

hdc::hv_store clustering_service::to_store() {
  drain();
  hdc::hv_store merged(config_.pipeline.encoder.dim, config_.pipeline.encoder.seed);
  for (auto& s : shards_) {
    hdc::hv_store local;
    s->run_exclusive([&local](core::incremental_clusterer& clusterer) {
      local = clusterer.to_store();
    }, /*republish=*/false);
    for (const auto& r : local.records()) merged.append(r);
  }
  return merged;
}

}  // namespace spechd::serve
