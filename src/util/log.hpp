// Lightweight leveled logging to stderr.
//
// The pipeline reports phase progress at info level; tests and benches run
// with warnings-only by default to keep output parseable.
#pragma once

#include <sstream>
#include <string>

namespace spechd {

enum class log_level { debug = 0, info = 1, warn = 2, err = 3, off = 4 };

/// Global threshold; messages below it are dropped.
void set_log_level(log_level level) noexcept;
log_level get_log_level() noexcept;

namespace detail {
void log_emit(log_level level, const std::string& message);
}

/// Streams a single log record; emitted on destruction.
class log_record {
public:
  explicit log_record(log_level level) : level_(level) {}
  ~log_record() { detail::log_emit(level_, stream_.str()); }

  log_record(const log_record&) = delete;
  log_record& operator=(const log_record&) = delete;

  template <typename T>
  log_record& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

private:
  log_level level_;
  std::ostringstream stream_;
};

inline log_record log_debug() { return log_record(log_level::debug); }
inline log_record log_info() { return log_record(log_level::info); }
inline log_record log_warn() { return log_record(log_level::warn); }
inline log_record log_error() { return log_record(log_level::err); }

}  // namespace spechd
