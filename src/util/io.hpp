// Checked POSIX I/O for the durability tier.
//
// Every syscall the journal/snapshot/recovery path makes goes through this
// layer so that (a) failures surface as one typed exception carrying the
// operation, path, and errno, (b) short writes and EINTR are handled in
// exactly one place, (c) transient errors get a bounded retry with backoff,
// and (d) each call site owns a failpoint, giving the fault-torture suite a
// complete, enumerable list of injection points.
//
// Retry policy: EINTR restarts immediately (not counted as a retry);
// EAGAIN/EWOULDBLOCK back off (1ms, doubling) for up to `io_retry_policy::
// max_retries` attempts. ENOSPC, EIO, EDQUOT and everything else are
// permanent — they propagate as io_failure on the first occurrence, because
// retrying a full or dying disk from the write path only delays the health
// transition the shard needs to make.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace spechd::util {

enum class io_op : std::uint8_t {
  open,
  write,
  fsync,
  truncate,
  rename,
  remove,
};

const char* io_op_name(io_op op) noexcept;

/// A failed I/O operation: which syscall, on which path, with which errno,
/// and how many bytes completed before the failure (writes only) so the
/// journal can roll back exactly the partial frame.
class io_failure : public spechd::io_error {
public:
  io_failure(io_op op, std::string path, int err, std::size_t bytes_completed = 0);

  io_op op() const noexcept { return op_; }
  const std::string& path() const noexcept { return path_; }
  int code() const noexcept { return errno_; }
  std::size_t bytes_completed() const noexcept { return bytes_completed_; }

private:
  io_op op_;
  std::string path_;
  int errno_;
  std::size_t bytes_completed_;
};

struct io_retry_policy {
  int max_retries = 4;  ///< transient (EAGAIN) attempts beyond the first
  std::chrono::milliseconds initial_backoff{1};  ///< doubles per retry
};

/// True for errors worth a bounded retry (EAGAIN/EWOULDBLOCK). EINTR is
/// handled by restarting immediately and never reaches this predicate.
bool io_error_is_transient(int err) noexcept;

// Each function takes the call site's failpoint so the disarmed overhead
// stays at one relaxed load; an armed `error` action is indistinguishable
// from the syscall failing with that errno, and `short` on write_all
// truncates one transfer so the short-write continuation loop runs.

/// open(2). Throws io_failure; never returns a negative fd.
int open_fd(const std::string& path, int flags, unsigned mode, failpoint& fp,
            const io_retry_policy& retry = {});

/// Writes all `size` bytes at the current offset, looping on short writes
/// and EINTR. On failure, io_failure::bytes_completed() is the number of
/// bytes durably handed to the kernel before the error.
void write_all(int fd, const void* data, std::size_t size, const std::string& path,
               failpoint& fp, const io_retry_policy& retry = {});

/// fsync(2).
void fsync_fd(int fd, const std::string& path, failpoint& fp,
              const io_retry_policy& retry = {});

/// ftruncate(2).
void truncate_fd(int fd, std::uint64_t size, const std::string& path, failpoint& fp,
                 const io_retry_policy& retry = {});

/// rename(2).
void rename_file(const std::string& from, const std::string& to, failpoint& fp,
                 const io_retry_policy& retry = {});

/// unlink(2); missing files are not an error (idempotent cleanup).
void remove_file(const std::string& path, failpoint& fp,
                 const io_retry_policy& retry = {});

}  // namespace spechd::util
