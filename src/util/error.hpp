// Error types shared across the SpecHD library.
//
// All recoverable failures are reported as exceptions derived from
// spechd::error so callers can catch the library root type; programming
// errors (precondition violations) use spechd::logic_error.
#pragma once

#include <stdexcept>
#include <string>

namespace spechd {

/// Root of the SpecHD exception hierarchy.
class error : public std::runtime_error {
public:
  explicit error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed input file / unparsable record.
class parse_error : public error {
public:
  parse_error(const std::string& file, std::size_t line, const std::string& what)
      : error(file + ":" + std::to_string(line) + ": " + what), file_(file), line_(line) {}

  const std::string& file() const noexcept { return file_; }
  std::size_t line() const noexcept { return line_; }

private:
  std::string file_;
  std::size_t line_;
};

/// I/O failure (missing file, short read, ...).
class io_error : public error {
public:
  using error::error;
};

/// Caller violated a documented precondition.
class logic_error : public std::logic_error {
public:
  explicit logic_error(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_precondition(const char* cond, const char* func) {
  throw logic_error(std::string("precondition violated in ") + func + ": " + cond);
}
}  // namespace detail

/// Precondition check that throws spechd::logic_error (always on, cheap).
#define SPECHD_EXPECTS(cond)                                              \
  do {                                                                    \
    if (!(cond)) ::spechd::detail::throw_precondition(#cond, __func__);   \
  } while (false)

}  // namespace spechd
