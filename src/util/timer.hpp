// Wall-clock timing helpers for benches and the pipeline's phase report.
#pragma once

#include <chrono>
#include <cstdint>

namespace spechd {

/// Monotonic stopwatch.
class stopwatch {
public:
  stopwatch() noexcept : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  /// Elapsed seconds since construction / last reset.
  double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double milliseconds() const noexcept { return seconds() * 1e3; }
  std::uint64_t nanoseconds() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - start_).count());
  }

private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates wall time across start/stop pairs (phase profiling).
class phase_timer {
public:
  void start() noexcept { watch_.reset(); running_ = true; }

  void stop() noexcept {
    if (running_) {
      total_ += watch_.seconds();
      running_ = false;
    }
  }

  double total_seconds() const noexcept { return total_; }

private:
  stopwatch watch_;
  double total_ = 0.0;
  bool running_ = false;
};

}  // namespace spechd
