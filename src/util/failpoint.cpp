#include "util/failpoint.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "util/error.hpp"

namespace spechd::util {

// One registered site. `armed` is the only field the disarmed fast path
// touches; everything else is guarded by the registry mutex.
struct failpoint_registry::site {
  std::atomic<bool> armed{false};
  std::string name;
  failpoint_spec spec;
  std::uint64_t hits = 0;
  std::uint64_t fires = 0;
};

struct failpoint_registry::impl {
  mutable std::mutex mutex;
  // node-stable: failpoint objects hold raw site pointers for life.
  std::map<std::string, std::unique_ptr<site>> sites;
  std::uint64_t seed = 0;
};

namespace {

// splitmix64 — deterministic per-hit decision hash.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t hash_name(const std::string& name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  for (unsigned char c : name) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

int parse_errno_token(const std::string& tok) {
  if (tok == "EIO") return EIO;
  if (tok == "ENOSPC") return ENOSPC;
  if (tok == "EINTR") return EINTR;
  if (tok == "EAGAIN") return EAGAIN;
  if (tok == "EDQUOT") return EDQUOT;
  if (tok == "EBADF") return EBADF;
  if (tok == "ENOENT") return ENOENT;
  if (tok == "EACCES") return EACCES;
  char* end = nullptr;
  long v = std::strtol(tok.c_str(), &end, 10);
  if (end == tok.c_str() || *end != '\0' || v <= 0) {
    throw error("failpoint: unknown errno token '" + tok + "'");
  }
  return static_cast<int>(v);
}

// Parses "name=action[:arg][@trigger[,trigger...]]".
std::pair<std::string, failpoint_spec> parse_entry(const std::string& entry) {
  auto eq = entry.find('=');
  if (eq == std::string::npos || eq == 0) {
    throw error("failpoint: malformed entry '" + entry + "' (want name=action)");
  }
  std::string name = entry.substr(0, eq);
  std::string rest = entry.substr(eq + 1);

  std::string action_part = rest;
  std::string trigger_part;
  if (auto at = rest.find('@'); at != std::string::npos) {
    action_part = rest.substr(0, at);
    trigger_part = rest.substr(at + 1);
  }

  failpoint_spec spec;
  std::string action_name = action_part;
  std::string action_arg;
  if (auto colon = action_part.find(':'); colon != std::string::npos) {
    action_name = action_part.substr(0, colon);
    action_arg = action_part.substr(colon + 1);
  }
  if (action_name == "error") {
    spec.action.type = failpoint_action::kind::error;
    spec.action.error_code = action_arg.empty() ? EIO : parse_errno_token(action_arg);
  } else if (action_name == "short") {
    spec.action.type = failpoint_action::kind::short_write;
  } else if (action_name == "delay") {
    spec.action.type = failpoint_action::kind::delay;
    long ms = 10;
    if (!action_arg.empty()) {
      char* end = nullptr;
      ms = std::strtol(action_arg.c_str(), &end, 10);
      if (end == action_arg.c_str() || *end != '\0' || ms < 0) {
        throw error("failpoint: bad delay '" + action_arg + "'");
      }
    }
    spec.action.delay = std::chrono::milliseconds(ms);
  } else if (action_name == "abort") {
    spec.action.type = failpoint_action::kind::abort_now;
  } else {
    throw error("failpoint: unknown action '" + action_name + "'");
  }

  while (!trigger_part.empty()) {
    std::string tok;
    if (auto comma = trigger_part.find(','); comma != std::string::npos) {
      tok = trigger_part.substr(0, comma);
      trigger_part = trigger_part.substr(comma + 1);
    } else {
      tok = trigger_part;
      trigger_part.clear();
    }
    if (tok.rfind("after", 0) == 0) {
      spec.skip = std::strtoull(tok.c_str() + 5, nullptr, 10);
    } else if (tok.rfind("times", 0) == 0) {
      spec.max_fires = std::strtoull(tok.c_str() + 5, nullptr, 10);
      if (spec.max_fires == 0) throw error("failpoint: times0 in '" + tok + "'");
    } else if (tok.size() > 1 && tok[0] == 'p') {
      char* end = nullptr;
      spec.probability = std::strtod(tok.c_str() + 1, &end);
      if (end == tok.c_str() + 1 || *end != '\0' || spec.probability < 0.0 ||
          spec.probability > 1.0) {
        throw error("failpoint: bad probability '" + tok + "'");
      }
    } else {
      throw error("failpoint: unknown trigger '" + tok + "'");
    }
  }
  return {std::move(name), spec};
}

}  // namespace

failpoint_registry::failpoint_registry() : impl_(new impl) {
  if (const char* seed_env = std::getenv("SPECHD_FAILPOINT_SEED")) {
    impl_->seed = std::strtoull(seed_env, nullptr, 10);
  }
  if (const char* spec_env = std::getenv("SPECHD_FAILPOINTS")) {
    arm_from_spec(spec_env);
  }
}

failpoint_registry& failpoint_registry::instance() {
  static failpoint_registry* r = new failpoint_registry;  // leaky on purpose
  return *r;
}

failpoint_registry& registry() { return failpoint_registry::instance(); }

failpoint_registry::site* failpoint_registry::bind(const char* name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto& slot = impl_->sites[name];
  if (!slot) {
    slot = std::make_unique<site>();
    slot->name = name;
  }
  return slot.get();
}

void failpoint_registry::arm(const std::string& name, const failpoint_spec& spec) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto& slot = impl_->sites[name];
  if (!slot) {
    slot = std::make_unique<site>();
    slot->name = name;
  }
  slot->spec = spec;
  slot->fires = 0;  // fresh fire budget; hits keep counting up
  slot->armed.store(true, std::memory_order_release);
}

void failpoint_registry::arm_from_spec(const std::string& entries) {
  std::string rest = entries;
  while (!rest.empty()) {
    std::string entry;
    if (auto semi = rest.find(';'); semi != std::string::npos) {
      entry = rest.substr(0, semi);
      rest = rest.substr(semi + 1);
    } else {
      entry = rest;
      rest.clear();
    }
    if (entry.empty()) continue;
    auto [name, spec] = parse_entry(entry);
    arm(name, spec);
  }
}

void failpoint_registry::disarm(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto it = impl_->sites.find(name);
  if (it != impl_->sites.end()) {
    it->second->armed.store(false, std::memory_order_release);
  }
}

void failpoint_registry::reset() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (auto& [name, s] : impl_->sites) {
    s->armed.store(false, std::memory_order_release);
    s->spec = failpoint_spec{};
    s->hits = 0;
    s->fires = 0;
  }
}

void failpoint_registry::seed(std::uint64_t seed) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->seed = seed;
}

std::uint64_t failpoint_registry::seed() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->seed;
}

std::vector<std::string> failpoint_registry::names() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<std::string> out;
  out.reserve(impl_->sites.size());
  for (const auto& [name, s] : impl_->sites) out.push_back(name);
  return out;  // std::map keeps them sorted
}

bool failpoint_registry::known(const std::string& name) const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->sites.count(name) != 0;
}

failpoint_stats failpoint_registry::stats(const std::string& name) const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto it = impl_->sites.find(name);
  if (it == impl_->sites.end()) return {};
  return {it->second->hits, it->second->fires};
}

bool failpoint::armed() const noexcept {
  return site_->armed.load(std::memory_order_relaxed);
}

std::optional<failpoint_action> failpoint::fire_slow() {
  auto& reg = failpoint_registry::instance();
  std::unique_lock<std::mutex> lock(reg.impl_->mutex);
  if (!site_->armed.load(std::memory_order_acquire)) return std::nullopt;
  const std::uint64_t hit = site_->hits++;
  const failpoint_spec& spec = site_->spec;
  if (hit < spec.skip) return std::nullopt;
  if (spec.max_fires != 0 && site_->fires >= spec.max_fires) return std::nullopt;
  if (spec.probability < 1.0) {
    const std::uint64_t h = mix64(reg.impl_->seed ^ hash_name(site_->name) ^ hit);
    const double u =
        static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);  // [0,1)
    if (u >= spec.probability) return std::nullopt;
  }
  ++site_->fires;
  failpoint_action action = spec.action;
  lock.unlock();
  if (action.type == failpoint_action::kind::delay && action.delay.count() > 0) {
    std::this_thread::sleep_for(action.delay);
    return std::nullopt;  // delay injects latency, then the real call runs
  }
  if (action.type == failpoint_action::kind::abort_now) {
    // Crash injection: die *at the site*, exactly like a bug would. With a
    // crash handler installed (obs/flight.hpp) this leaves a `.sphcrash`.
    std::abort();
  }
  return action;
}

}  // namespace spechd::util
