// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//
// Used by the serve layer's snapshot format to detect torn or corrupted
// .sphsnap files before any of the payload is trusted. Table-driven,
// byte-at-a-time — snapshot I/O is dominated by disk, not the checksum.
#pragma once

#include <cstddef>
#include <cstdint>

namespace spechd {

/// CRC-32 of `len` bytes at `data`. `crc` chains a running checksum across
/// multiple buffers: pass the previous return value (start with 0).
std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t crc = 0) noexcept;

}  // namespace spechd
