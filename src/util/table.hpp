// Console table / CSV emission for bench harnesses.
//
// Every bench prints the rows/series the paper reports; this helper renders
// aligned console tables and optional CSV so EXPERIMENTS.md entries can be
// regenerated mechanically.
#pragma once

#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

namespace spechd {

/// Column-aligned text table with an optional title, rendered to a stream.
class text_table {
public:
  explicit text_table(std::string title = {}) : title_(std::move(title)) {}

  /// Sets the header row. Must be called before add_row.
  void set_header(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Convenience: formats arithmetic values with fixed precision.
  static std::string num(double v, int precision = 2);
  static std::string num(std::size_t v);

  /// Renders with box-drawing-free ASCII alignment.
  void print(std::ostream& os) const;

  /// Emits RFC-4180-ish CSV (quotes fields containing separators).
  void write_csv(std::ostream& os) const;

  std::size_t rows() const noexcept { return rows_.size(); }

private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace spechd
