#include "util/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace spechd {

namespace {
std::atomic<log_level> g_level{log_level::warn};
std::mutex g_emit_mutex;

const char* level_name(log_level level) {
  switch (level) {
    case log_level::debug: return "DEBUG";
    case log_level::info: return "INFO";
    case log_level::warn: return "WARN";
    case log_level::err: return "ERROR";
    case log_level::off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(log_level level) noexcept { g_level.store(level); }
log_level get_log_level() noexcept { return g_level.load(); }

namespace detail {
void log_emit(log_level level, const std::string& message) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  std::lock_guard lock(g_emit_mutex);
  std::cerr << "[spechd:" << level_name(level) << "] " << message << '\n';
}
}  // namespace detail

}  // namespace spechd
