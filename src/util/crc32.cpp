#include "util/crc32.hpp"

#include <array>

namespace spechd {

namespace {

/// Slicing-by-8 tables: table[0] is the classic byte-at-a-time table;
/// table[k][b] is the CRC of byte b followed by k zero bytes, letting the
/// hot loop fold 8 input bytes per iteration (~6-8x the byte loop). The
/// polynomial, bit order, and results are identical to the original
/// byte-wise implementation — only throughput changes. This sits on the
/// serving layer's ingest hot path now: every journaled batch is CRC
/// framed before it is applied.
constexpr std::array<std::array<std::uint32_t, 256>, 8> make_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1U) ? 0xEDB88320U ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = tables[0][i];
    for (std::size_t k = 1; k < 8; ++k) {
      c = tables[0][c & 0xFFU] ^ (c >> 8);
      tables[k][i] = c;
    }
  }
  return tables;
}

constexpr auto k_tables = make_tables();

}  // namespace

std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t crc) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t c = crc ^ 0xFFFFFFFFU;

  // Fold 8 bytes per iteration. The explicit little-endian byte
  // composition matches the reflected polynomial's bit order on any host
  // endianness (and compiles to one 32-bit load where that is native).
  const auto load_le32 = [](const unsigned char* p) {
    return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
  };
  while (len >= 8) {
    std::uint32_t lo = load_le32(bytes) ^ c;
    const std::uint32_t hi = load_le32(bytes + 4);
    c = k_tables[7][lo & 0xFFU] ^ k_tables[6][(lo >> 8) & 0xFFU] ^
        k_tables[5][(lo >> 16) & 0xFFU] ^ k_tables[4][lo >> 24] ^
        k_tables[3][hi & 0xFFU] ^ k_tables[2][(hi >> 8) & 0xFFU] ^
        k_tables[1][(hi >> 16) & 0xFFU] ^ k_tables[0][hi >> 24];
    bytes += 8;
    len -= 8;
  }
  for (std::size_t i = 0; i < len; ++i) {
    c = k_tables[0][(c ^ bytes[i]) & 0xFFU] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFU;
}

}  // namespace spechd
