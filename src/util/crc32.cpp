#include "util/crc32.hpp"

#include <array>

namespace spechd {

namespace {

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1U) ? 0xEDB88320U ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr auto k_table = make_table();

}  // namespace

std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t crc) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t c = crc ^ 0xFFFFFFFFU;
  for (std::size_t i = 0; i < len; ++i) {
    c = k_table[(c ^ bytes[i]) & 0xFFU] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFU;
}

}  // namespace spechd
