// 16-bit fixed-point arithmetic used by the FPGA distance-matrix model.
//
// The paper stores the condensed distance matrix in 16-bit fixed point to
// halve the BRAM/HBM footprint ("the use of 16-bit fixed-point arithmetic
// results in a significant reduction in memory footprint while maintaining
// computational accuracy", Sec. III-C). Hamming distances on D_hv-bit
// hypervectors normalise naturally to [0, 1], so we use an unsigned Q0.16
// representation covering [0, 1] with step 2^-16.
#pragma once

#include <cstdint>
#include <limits>

#include "util/error.hpp"

namespace spechd {

/// Unsigned Q0.16 fixed-point value in [0, 1].
///
/// The value 1.0 is represented saturated at 0xFFFF (error 2^-16), which is
/// the usual HLS ap_ufixed<16,0> behaviour with AP_SAT.
class q16 {
public:
  constexpr q16() noexcept = default;

  /// Quantise a real in [0, 1]; values outside saturate. Saturation tests
  /// the *scaled* value: v slightly below 1.0 can still round up to 65536,
  /// which must saturate rather than overflow the uint16 conversion.
  static constexpr q16 from_double(double v) noexcept {
    if (v <= 0.0) return q16(std::uint16_t{0});
    const double scaled = v * 65536.0 + 0.5;
    if (scaled >= 65536.0) return q16(std::uint16_t{0xFFFF});
    return q16(static_cast<std::uint16_t>(scaled));
  }

  /// Exact ratio num/den with num <= den, den > 0 (the Hamming/D_hv case).
  static constexpr q16 from_ratio(std::uint64_t num, std::uint64_t den) noexcept {
    if (den == 0 || num >= den) return q16(std::uint16_t{0xFFFF});
    return q16(static_cast<std::uint16_t>((num * 65536ULL + den / 2) / den));
  }

  static constexpr q16 from_raw(std::uint16_t raw) noexcept { return q16(raw); }
  static constexpr q16 zero() noexcept { return q16(std::uint16_t{0}); }
  static constexpr q16 max() noexcept { return q16(std::uint16_t{0xFFFF}); }

  constexpr double to_double() const noexcept { return raw_ / 65536.0; }
  constexpr std::uint16_t raw() const noexcept { return raw_; }

  /// Maximum representation error of from_double over [0, 1].
  static constexpr double epsilon() noexcept { return 1.0 / 65536.0; }

  friend constexpr bool operator==(q16 a, q16 b) noexcept = default;
  friend constexpr auto operator<=>(q16 a, q16 b) noexcept = default;

  /// Saturating add (as synthesised with AP_SAT on the FPGA).
  friend constexpr q16 operator+(q16 a, q16 b) noexcept {
    const std::uint32_t s = std::uint32_t{a.raw_} + b.raw_;
    return q16(static_cast<std::uint16_t>(s > 0xFFFF ? 0xFFFF : s));
  }

  /// Saturating subtract (floors at 0).
  friend constexpr q16 operator-(q16 a, q16 b) noexcept {
    return q16(static_cast<std::uint16_t>(a.raw_ > b.raw_ ? a.raw_ - b.raw_ : 0));
  }

  /// Fixed-point multiply with rounding.
  friend constexpr q16 operator*(q16 a, q16 b) noexcept {
    const std::uint32_t p = std::uint32_t{a.raw_} * b.raw_;
    return q16(static_cast<std::uint16_t>((p + 0x8000u) >> 16));
  }

private:
  explicit constexpr q16(std::uint16_t raw) noexcept : raw_(raw) {}

  std::uint16_t raw_ = 0;
};

/// Midpoint of two q16 values (used by Lance–Williams average updates on
/// the fixed-point path); exact to the representation.
constexpr q16 midpoint(q16 a, q16 b) noexcept {
  return q16::from_raw(static_cast<std::uint16_t>(
      (std::uint32_t{a.raw()} + b.raw()) / 2));
}

}  // namespace spechd
