// RCU-style published pointer: single writer swaps in immutable snapshots,
// many readers load them without blocking the writer (or each other).
//
// The serve layer publishes per-shard cluster views this way: the shard's
// writer thread builds a fresh immutable view after applying a batch and
// store()s it; query threads load() whatever epoch is current and keep the
// shared_ptr alive for the duration of one query. Old epochs are reclaimed
// automatically when the last reader drops its reference — shared_ptr *is*
// the grace period.
//
// On libstdc++/libc++ with C++20 atomic<shared_ptr> the load is lock-free
// from the caller's perspective (the implementation may use a small
// spinlock pool internally); elsewhere we fall back to the atomic free
// functions for shared_ptr, which have the same semantics.
#pragma once

#include <memory>
#include <version>

namespace spechd {

template <typename T>
class rcu_ptr {
public:
  rcu_ptr() = default;
  explicit rcu_ptr(std::shared_ptr<const T> initial) { store(std::move(initial)); }

  rcu_ptr(const rcu_ptr&) = delete;
  rcu_ptr& operator=(const rcu_ptr&) = delete;

  /// Current snapshot (may be null before the first store). Never blocks
  /// on the writer; the returned shared_ptr keeps the epoch alive.
  std::shared_ptr<const T> load() const noexcept {
#if defined(__cpp_lib_atomic_shared_ptr)
    return slot_.load(std::memory_order_acquire);
#else
    return std::atomic_load_explicit(&slot_, std::memory_order_acquire);
#endif
  }

  /// Publishes a new snapshot; readers mid-load keep the old epoch.
  void store(std::shared_ptr<const T> next) noexcept {
#if defined(__cpp_lib_atomic_shared_ptr)
    slot_.store(std::move(next), std::memory_order_release);
#else
    std::atomic_store_explicit(&slot_, std::shared_ptr<const T>(std::move(next)),
                               std::memory_order_release);
#endif
  }

private:
#if defined(__cpp_lib_atomic_shared_ptr)
  std::atomic<std::shared_ptr<const T>> slot_;
#else
  std::shared_ptr<const T> slot_;
#endif
};

}  // namespace spechd
