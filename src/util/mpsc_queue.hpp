// Bounded blocking queue with backpressure — the serve layer's ingest
// primitive.
//
// Each serve::shard owns one queue: many producer threads (the service's
// ingest front end) push batches, a single writer thread pops and applies
// them, so ingestion order per shard is exactly enqueue order. The queue is
// deliberately a plain mutex + two condition variables rather than a
// lock-free ring: jobs are coarse (whole spectrum batches), the writer is
// the throughput bottleneck anyway, and blocking push *is the feature* —
// a full queue stalls producers instead of growing without bound.
//
// The implementation is safe for many consumers too (pop claims under the
// same lock); "MPSC" names how the serve layer uses it, not a restriction.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "util/error.hpp"

namespace spechd {

template <typename T>
class mpsc_queue {
public:
  /// A queue holding at most `capacity` items (must be >= 1).
  explicit mpsc_queue(std::size_t capacity) : capacity_(capacity) {
    SPECHD_EXPECTS(capacity >= 1);
  }

  mpsc_queue(const mpsc_queue&) = delete;
  mpsc_queue& operator=(const mpsc_queue&) = delete;

  /// Blocks while the queue is full (backpressure), then enqueues.
  /// Returns false — and drops `item` — if the queue was closed.
  bool push(T item) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; false when full or closed.
  bool try_push(T item) {
    {
      std::lock_guard lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while the queue is empty; returns nullopt once the queue is
  /// closed *and* drained, so a consumer loop `while (auto j = q.pop())`
  /// processes every item enqueued before close().
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop; nullopt when nothing is ready.
  std::optional<T> try_pop() {
    std::optional<T> item;
    {
      std::lock_guard lock(mutex_);
      if (items_.empty()) return std::nullopt;
      item = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return item;
  }

  /// Rejects future pushes and wakes all waiters; already-queued items can
  /// still be popped. Idempotent.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const noexcept { return capacity_; }

private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace spechd
