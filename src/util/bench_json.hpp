// Minimal JSON emitter for machine-readable bench output.
//
// Benches print human tables to stdout but also drop a BENCH_*.json next to
// the binary so the perf trajectory can be tracked across PRs without
// scraping text. Flat writer, no DOM: begin/end nesting with automatic
// comma handling, numeric and string fields only — exactly what the bench
// records need.
#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace spechd {

class json_writer {
public:
  json_writer() { out_.precision(12); }

  void begin_object() { open('{'); }
  void begin_object(const std::string& key) { open_keyed(key, '{'); }
  void end_object() { close('}'); }

  void begin_array(const std::string& key) { open_keyed(key, '['); }
  void end_array() { close(']'); }

  void field(const std::string& key, const std::string& value) {
    prefix(key);
    out_ << '"' << escape(value) << '"';
  }
  void field(const std::string& key, const char* value) {
    field(key, std::string(value));
  }
  void field(const std::string& key, double value) {
    prefix(key);
    out_ << value;
  }
  void field(const std::string& key, std::size_t value) {
    prefix(key);
    out_ << value;
  }
  void field(const std::string& key, bool value) {
    prefix(key);
    out_ << (value ? "true" : "false");
  }

  /// Serialised document; all nesting must be closed.
  std::string str() const {
    SPECHD_EXPECTS(stack_.empty());
    return out_.str();
  }

  /// Writes the document to `path` (throws io_error on failure).
  void write_file(const std::string& path) const {
    std::ofstream file(path);
    if (!file) throw io_error("cannot open " + path + " for writing");
    file << str() << '\n';
  }

private:
  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  void comma() {
    if (!stack_.empty()) {
      if (!stack_.back()) out_ << ", ";
      stack_.back() = false;
    }
  }

  void prefix(const std::string& key) {
    comma();
    out_ << '"' << escape(key) << "\": ";
  }

  void open(char bracket) {
    comma();
    out_ << bracket;
    stack_.push_back(true);
  }

  void open_keyed(const std::string& key, char bracket) {
    prefix(key);
    out_ << bracket;
    stack_.push_back(true);
  }

  void close(char bracket) {
    SPECHD_EXPECTS(!stack_.empty());
    stack_.pop_back();
    out_ << bracket;
  }

  std::ostringstream out_;
  std::vector<bool> stack_;  ///< per level: "next entry is the first"
};

}  // namespace spechd
