#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace spechd {

void text_table::set_header(std::vector<std::string> header) {
  SPECHD_EXPECTS(rows_.empty());
  header_ = std::move(header);
}

void text_table::add_row(std::vector<std::string> row) {
  SPECHD_EXPECTS(header_.empty() || row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string text_table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string text_table::num(std::size_t v) { return std::to_string(v); }

void text_table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(widths[i]) + 2) << row[i];
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (auto w : widths) total += w + 2;
    os << std::string(total, '-') << '\n';
  }
  for (const auto& row : rows_) emit(row);
}

void text_table::write_csv(std::ostream& os) const {
  auto quote = [](const std::string& field) {
    if (field.find_first_of(",\"\n") == std::string::npos) return field;
    std::string out = "\"";
    for (char c : field) {
      if (c == '"') out += '"';
      out += c;
    }
    out += '"';
    return out;
  };
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << quote(row[i]);
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace spechd
