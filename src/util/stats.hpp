// Small order-statistics helpers shared by the CLI and the benches.
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

namespace spechd {

/// Nearest-rank percentile of an ascending-sorted sample: the smallest
/// value with at least ceil(p * n) observations at or below it (so p=0.50
/// over 100 samples is the 50th value, p=0.99 the 99th — not the max).
/// `p` in [0, 1]; returns 0 for an empty sample.
inline double percentile_sorted(const std::vector<double>& sorted_values, double p) {
  if (sorted_values.empty()) return 0.0;
  const double n = static_cast<double>(sorted_values.size());
  const auto rank = static_cast<std::size_t>(std::ceil(p * n));
  const std::size_t index = rank > 0 ? rank - 1 : 0;
  return sorted_values[index < sorted_values.size() ? index : sorted_values.size() - 1];
}

}  // namespace spechd
