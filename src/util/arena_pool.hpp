// Shared scratch-arena pool (checkout/return) for the hot-path kernels.
//
// The NN-chain working matrix, the packed Hamming-tile operand blobs, and
// the incremental assigner's column scratch all need large, short-lived,
// *uninitialised* buffers. Before this pool each call site kept a
// `thread_local` vector sized by the largest request ever seen on that
// thread — so a deployment that clusters one huge bucket on many threads
// retains threads × max_bucket² bytes forever (the ROADMAP's memory-bloat
// follow-up). The pool replaces that with process-shared reuse:
//
//   * checkout(bytes) hands out a 64-byte-aligned arena (best-fit from the
//     free list, else the largest free arena regrown, else a fresh
//     allocation) wrapped in an RAII lease that returns it on destruction.
//   * high-water trimming: returned arenas are retained for reuse only up
//     to a byte budget (`retain_limit`); beyond it the largest free arenas
//     are released immediately, so a one-off giant bucket cannot pin its
//     footprint. trim() releases retained arenas down to a floor on demand.
//   * stats hooks: checkouts / reuse hits / fresh allocations / trims and
//     the pool's high-water bytes, snapshot under the same lock that
//     guards the free list — bench_kernels reports them into
//     BENCH_kernels.json so memory behaviour is tracked across PRs.
//
// Arenas hand back raw uninitialised storage: callers must write before
// they read (every current call site fully overwrites its scratch).
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <new>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace spechd {

class arena_pool;

/// One reusable 64-byte-aligned allocation. Movable, not copyable; contents
/// are scratch (never preserved across grow()).
class arena {
public:
  arena() = default;
  explicit arena(std::size_t bytes) { grow(bytes); }
  ~arena() { release(); }

  arena(arena&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        capacity_(std::exchange(other.capacity_, 0)) {}
  arena& operator=(arena&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      capacity_ = std::exchange(other.capacity_, 0);
    }
    return *this;
  }

  std::byte* data() noexcept { return data_; }
  const std::byte* data() const noexcept { return data_; }
  std::size_t capacity() const noexcept { return capacity_; }

  /// Ensures at least `bytes` of capacity. Discards previous contents
  /// (scratch semantics) — no copy, just a fresh aligned allocation.
  void grow(std::size_t bytes) {
    if (bytes <= capacity_) return;
    release();
    data_ = static_cast<std::byte*>(::operator new(bytes, std::align_val_t{alignment}));
    capacity_ = bytes;
  }

  /// Typed view of the arena's start; `count` elements must fit.
  template <typename T>
  T* as(std::size_t count) noexcept {
    SPECHD_EXPECTS(count * sizeof(T) <= capacity_);
    return reinterpret_cast<T*>(data_);
  }

  static constexpr std::size_t alignment = 64;  ///< cache line / ZMM register

private:
  void release() noexcept {
    if (data_ != nullptr) {
      ::operator delete(data_, std::align_val_t{alignment});
      data_ = nullptr;
      capacity_ = 0;
    }
  }

  std::byte* data_ = nullptr;
  std::size_t capacity_ = 0;
};

/// RAII checkout: returns the arena to its pool on destruction. Move-only.
class arena_lease {
public:
  arena_lease() = default;
  ~arena_lease();

  arena_lease(arena_lease&& other) noexcept
      : pool_(std::exchange(other.pool_, nullptr)), arena_(std::move(other.arena_)) {}
  arena_lease& operator=(arena_lease&& other) noexcept;

  std::byte* data() noexcept { return arena_.data(); }
  std::size_t capacity() const noexcept { return arena_.capacity(); }

  template <typename T>
  T* as(std::size_t count) noexcept {
    return arena_.as<T>(count);
  }

  explicit operator bool() const noexcept { return pool_ != nullptr; }

private:
  friend class arena_pool;
  arena_lease(arena_pool* pool, arena a) : pool_(pool), arena_(std::move(a)) {}

  arena_pool* pool_ = nullptr;
  arena arena_;
};

/// Counters a stats() snapshot reports (all monotonically increasing except
/// the *_bytes gauges).
struct arena_pool_stats {
  std::uint64_t checkouts = 0;      ///< total checkout() calls
  std::uint64_t reuses = 0;         ///< served from the free list, no allocation
  std::uint64_t allocations = 0;    ///< fresh allocations or regrows
  std::uint64_t trims = 0;          ///< arenas released by the retain policy / trim()
  std::size_t trimmed_bytes = 0;    ///< cumulative bytes released by trims
  std::size_t in_use_bytes = 0;     ///< bytes currently checked out
  std::size_t retained_bytes = 0;   ///< bytes currently parked in the free list
  std::size_t high_water_bytes = 0; ///< peak of in_use + retained over the pool's life
};

/// Thread-safe pool of reusable arenas. See the file comment for policy.
class arena_pool {
public:
  /// Default retain budget: generous enough that steady-state per-bucket
  /// HAC scratch (tens of MiB at n≈2048 doubles) is always reused, small
  /// enough that a one-off giant bucket's arena is dropped on return.
  static constexpr std::size_t default_retain_limit = std::size_t{256} << 20;

  explicit arena_pool(std::size_t retain_limit = default_retain_limit)
      : retain_limit_(retain_limit) {}

  /// Hands out an arena with capacity >= bytes. Best-fit from the free
  /// list; if nothing fits, the largest free arena is regrown (so stale
  /// small arenas don't accumulate); else a fresh arena is allocated.
  arena_lease checkout(std::size_t bytes);

  /// Releases free-list arenas (largest first) until retained bytes are
  /// <= keep_bytes. Returns the number of bytes released. Checked-out
  /// arenas are unaffected.
  std::size_t trim(std::size_t keep_bytes = 0);

  /// Retained-bytes budget applied on every return (see trim()); the
  /// excess is released immediately, largest arena first.
  void set_retain_limit(std::size_t bytes);
  std::size_t retain_limit() const;

  arena_pool_stats stats() const;

  /// The process-wide pool used by the kernel call sites (NN-chain scratch,
  /// packed-tile blobs, incremental assignment rows).
  static arena_pool& global();

private:
  friend class arena_lease;
  void give_back(arena a);
  std::size_t trim_locked(std::size_t keep_bytes);

  mutable std::mutex mutex_;
  std::vector<arena> free_;  ///< kept sorted by capacity, ascending
  std::size_t retain_limit_;
  arena_pool_stats stats_;
};

}  // namespace spechd
