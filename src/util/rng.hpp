// Deterministic, fast pseudo-random number generation.
//
// SpecHD requires reproducible item memories and synthetic datasets, so all
// randomness flows through explicitly seeded generators. xoshiro256** is
// used as the workhorse (fast, high quality, trivially seedable via
// splitmix64), matching common practice in HDC implementations where item
// memories are regenerated from a seed instead of stored.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace spechd {

/// splitmix64: used to expand a single 64-bit seed into generator state.
class splitmix64 {
public:
  using result_type = std::uint64_t;

  explicit constexpr splitmix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

private:
  std::uint64_t state_;
};

/// xoshiro256**: the library-wide PRNG. Satisfies UniformRandomBitGenerator
/// so it can drive <random> distributions.
class xoshiro256ss {
public:
  using result_type = std::uint64_t;

  explicit constexpr xoshiro256ss(std::uint64_t seed = 0x5ECD5ECD5ECD5ECDULL) noexcept {
    splitmix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). n must be > 0.
  constexpr std::uint64_t bounded(std::uint64_t n) noexcept {
    // Lemire's multiply-shift rejection method (bias-free).
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto low = static_cast<std::uint64_t>(m);
    if (low < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Bernoulli trial with probability p of returning true.
  constexpr bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Standard normal via Marsaglia polar method (no cached spare: keeps the
  /// generator state a pure function of call count).
  double normal() noexcept {
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    return u * std::sqrt(-2.0 * std::log(s) / s);
  }

  double normal(double mean, double stddev) noexcept { return mean + stddev * normal(); }

private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace spechd
