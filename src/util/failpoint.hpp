// Deterministic failpoint subsystem — the fault-injection surface of the
// durability tier.
//
// A *failpoint* is a named site compiled into production code (journal
// appends, snapshot renames, fsyncs, ...) where a test, the CLI, or an
// environment variable can inject a failure without touching the code
// under test. Sites are function-local statics:
//
//   static util::failpoint fp("journal.append.write");
//   if (auto action = fp.fire()) { /* inject *action instead of the syscall */ }
//
// Disarmed cost is one relaxed atomic load and a predictable branch — no
// lock, no lookup, no allocation — so the sites stay compiled into release
// builds and the fault-torture suite exercises the exact binary that
// serves traffic.
//
// Arming (programmatic, or parsed from a spec string):
//
//   registry().arm("journal.append.write", spec);
//   registry().arm_from_spec("journal.append.write=error:ENOSPC@after2,times1");
//
// Spec grammar (`arm_from_spec`, also the SPECHD_FAILPOINTS env var and
// the CLI `--failpoints` flag; entries separated by `;`):
//
//   name=action[@trigger[,trigger...]]
//   action:  error[:ERRNO]   inject a failing call with this errno
//                            (symbolic EIO/ENOSPC/EINTR/EAGAIN or a number;
//                            default EIO)
//            short           short write: the call transfers only part of
//                            the buffer (write sites only; others ignore it)
//            delay[:MS]      sleep MS milliseconds, then run the real call
//                            (latency injection; default 10)
//            abort           raise SIGABRT at the site (crash injection:
//                            with a crash handler installed this produces
//                            a `.sphcrash` dump mid-operation)
//   trigger: afterN          skip the first N hits (default 0)
//            timesN          fire at most N times (default unlimited)
//            pF              fire with probability F in [0,1] (default 1),
//                            decided by a seeded per-site hash of the hit
//                            index — deterministic for a fixed seed and
//                            per-site hit order, independent of threads
//
// Example: "journal.fsync=delay:5@p0.25;snapshot.rename=error:EIO@times1".
//
// Determinism: `registry().seed(s)` fixes the probabilistic decisions;
// per-site hit counters make every trigger a pure function of (seed, site
// name, hit index). `reset()` disarms everything and zeroes counters so
// consecutive torture iterations start identical.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace spechd::util {

/// What an armed failpoint injects when it fires.
struct failpoint_action {
  enum class kind : std::uint8_t {
    error,        ///< fail the call with `error_code` as errno
    short_write,  ///< transfer only part of the buffer (write sites)
    delay,        ///< sleep `delay`, then run the real call
    abort_now,    ///< raise SIGABRT at the site (never returns to the caller)
  };
  kind type = kind::error;
  int error_code = 5;  ///< EIO; numeric so this header stays errno.h-free
  std::chrono::milliseconds delay{0};
};

/// When an armed failpoint fires.
struct failpoint_spec {
  failpoint_action action;
  std::uint64_t skip = 0;        ///< ignore the first `skip` hits
  std::uint64_t max_fires = 0;   ///< fire at most N times; 0 = unlimited
  double probability = 1.0;      ///< per-hit fire probability (seeded)
};

/// Monotonic per-site counters (for assertions and CLI/bench reporting).
struct failpoint_stats {
  std::uint64_t hits = 0;   ///< times the site was evaluated while armed
  std::uint64_t fires = 0;  ///< times it actually injected
};

class failpoint;

/// Process-global registry of every failpoint site the running binary has
/// touched. Sites register lazily (first execution of their static), so
/// `names()` lists the sites a warm-up run exercised; arming a name that
/// has not registered yet is fine — the spec waits for the site.
class failpoint_registry {
public:
  /// The singleton (leaky: sites are function-local statics and may be
  /// evaluated during static destruction).
  static failpoint_registry& instance();

  /// Arms `name` with `spec`; replaces any previous arming and resets the
  /// site's fire budget (hit counters keep counting up).
  void arm(const std::string& name, const failpoint_spec& spec);

  /// Parses the spec grammar above; `entries` holds one or more
  /// `;`-separated entries. Throws spechd::error on a malformed spec.
  void arm_from_spec(const std::string& entries);

  void disarm(const std::string& name);

  /// Disarms every site and zeroes all hit/fire counters (fresh torture
  /// iteration). The seed is left as set.
  void reset();

  /// Seeds the probabilistic trigger decisions. Also settable via
  /// SPECHD_FAILPOINT_SEED before the first site registers.
  void seed(std::uint64_t seed);
  std::uint64_t seed() const;

  /// Every site name ever registered or armed, sorted.
  std::vector<std::string> names() const;

  /// True once the site has registered (its code path executed at least
  /// once) — lets a torture test assert its warm-up covered a site.
  bool known(const std::string& name) const;

  failpoint_stats stats(const std::string& name) const;

private:
  friend class failpoint;
  failpoint_registry();
  struct site;
  struct impl;
  site* bind(const char* name);  ///< find-or-create; called by failpoint ctor
  impl* impl_;
};

/// Shorthand for failpoint_registry::instance().
failpoint_registry& registry();

/// One named injection site. Cheap to evaluate when disarmed; intended to
/// be a function-local static next to the call it guards.
class failpoint {
public:
  explicit failpoint(const char* name)
      : site_(failpoint_registry::instance().bind(name)) {}

  /// Disarmed fast path: one relaxed load.
  bool armed() const noexcept;

  /// Counts a hit and returns the action to inject if the site fires,
  /// nullopt otherwise. Never fires while disarmed. A firing `delay`
  /// action sleeps here and then returns nullopt — the caller always runs
  /// the real call after a latency injection, so call sites only need to
  /// handle error / short_write results.
  std::optional<failpoint_action> fire() {
    if (!armed()) return std::nullopt;
    return fire_slow();
  }

private:
  std::optional<failpoint_action> fire_slow();
  failpoint_registry::site* site_;
};

}  // namespace spechd::util
