#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

namespace spechd {

thread_pool::thread_pool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

thread_pool::~thread_pool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void thread_pool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void thread_pool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                               std::size_t grain) {
  if (n == 0) return;
  if (grain == 0) {
    // ~8 chunks per worker balances claim overhead against tail imbalance.
    grain = std::max<std::size_t>(1, n / (size() * 8));
  }

  struct shared_state {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> remaining;
    std::atomic<bool> failed{false};
    std::mutex mutex;
    std::condition_variable done_cv;
    std::exception_ptr first_error;
  };
  auto st = std::make_shared<shared_state>();
  st->remaining.store(n, std::memory_order_relaxed);

  // Claims chunks until the index space is exhausted. Runs in the caller
  // *and* in helper tasks; helpers that arrive after the caller drained the
  // range return without touching `fn` (which lives on the caller's stack).
  auto claim_loop = [st, n, grain, &fn] {
    for (;;) {
      const std::size_t start = st->next.fetch_add(grain, std::memory_order_relaxed);
      if (start >= n) return;
      const std::size_t end = std::min(n, start + grain);
      if (!st->failed.load(std::memory_order_relaxed)) {
        try {
          for (std::size_t i = start; i < end; ++i) fn(i);
        } catch (...) {
          std::lock_guard lock(st->mutex);
          if (!st->first_error) st->first_error = std::current_exception();
          st->failed.store(true, std::memory_order_relaxed);
        }
      }
      // Claimed indices count as done even when skipped after a failure, so
      // `remaining` always reaches zero and the caller can return.
      if (st->remaining.fetch_sub(end - start, std::memory_order_acq_rel) ==
          end - start) {
        std::lock_guard lock(st->mutex);
        st->done_cv.notify_all();
      }
    }
  };

  // Helpers are fire-and-forget: completion is tracked through `remaining`,
  // not futures, so a nested call never deadlocks waiting for a queue slot.
  const std::size_t chunks = (n + grain - 1) / grain;
  const std::size_t helpers = std::min(chunks > 0 ? chunks - 1 : 0, size());
  for (std::size_t h = 0; h < helpers; ++h) {
    {
      std::lock_guard lock(mutex_);
      queue_.emplace(claim_loop);
    }
    cv_.notify_one();
  }

  claim_loop();
  {
    std::unique_lock lock(st->mutex);
    st->done_cv.wait(lock, [&] { return st->remaining.load(std::memory_order_acquire) == 0; });
  }
  if (st->first_error) std::rethrow_exception(st->first_error);
}

}  // namespace spechd
