#include "util/arena_pool.hpp"

#include <algorithm>

namespace spechd {

arena_lease::~arena_lease() {
  if (pool_ != nullptr) pool_->give_back(std::move(arena_));
}

arena_lease& arena_lease::operator=(arena_lease&& other) noexcept {
  if (this != &other) {
    if (pool_ != nullptr) pool_->give_back(std::move(arena_));
    pool_ = std::exchange(other.pool_, nullptr);
    arena_ = std::move(other.arena_);
  }
  return *this;
}

arena_lease arena_pool::checkout(std::size_t bytes) {
  arena a;
  {
    std::lock_guard lock(mutex_);
    ++stats_.checkouts;
    // Best fit: the smallest free arena that already holds `bytes`.
    auto it = std::lower_bound(free_.begin(), free_.end(), bytes,
                               [](const arena& x, std::size_t b) { return x.capacity() < b; });
    if (it != free_.end()) {
      ++stats_.reuses;
      stats_.retained_bytes -= it->capacity();
      a = std::move(*it);
      free_.erase(it);
    } else if (!free_.empty()) {
      // Nothing fits: regrow the largest free arena instead of letting a
      // stack of too-small arenas pile up behind a fresh allocation.
      ++stats_.allocations;
      stats_.retained_bytes -= free_.back().capacity();
      a = std::move(free_.back());
      free_.pop_back();
    } else {
      ++stats_.allocations;
    }
  }
  // Allocate outside the lock; only bookkeeping contends.
  a.grow(bytes);
  {
    std::lock_guard lock(mutex_);
    stats_.in_use_bytes += a.capacity();
    stats_.high_water_bytes =
        std::max(stats_.high_water_bytes, stats_.in_use_bytes + stats_.retained_bytes);
  }
  return arena_lease(this, std::move(a));
}

void arena_pool::give_back(arena a) {
  std::vector<arena> victims;  // destroyed (freed) outside the lock
  {
    std::lock_guard lock(mutex_);
    stats_.in_use_bytes -= a.capacity();
    stats_.retained_bytes += a.capacity();
    auto it = std::lower_bound(
        free_.begin(), free_.end(), a.capacity(),
        [](const arena& x, std::size_t b) { return x.capacity() < b; });
    free_.insert(it, std::move(a));
    // High-water trimming: anything beyond the retain budget is released
    // right away, largest arena first, so a spike cannot pin its footprint.
    while (stats_.retained_bytes > retain_limit_ && !free_.empty()) {
      ++stats_.trims;
      stats_.trimmed_bytes += free_.back().capacity();
      stats_.retained_bytes -= free_.back().capacity();
      victims.push_back(std::move(free_.back()));
      free_.pop_back();
    }
  }
}

std::size_t arena_pool::trim(std::size_t keep_bytes) {
  std::vector<arena> victims;
  std::size_t released = 0;
  {
    std::lock_guard lock(mutex_);
    while (stats_.retained_bytes > keep_bytes && !free_.empty()) {
      ++stats_.trims;
      const std::size_t cap = free_.back().capacity();
      stats_.trimmed_bytes += cap;
      stats_.retained_bytes -= cap;
      released += cap;
      victims.push_back(std::move(free_.back()));
      free_.pop_back();
    }
  }
  return released;
}

void arena_pool::set_retain_limit(std::size_t bytes) {
  {
    std::lock_guard lock(mutex_);
    retain_limit_ = bytes;
  }
  trim(bytes);
}

std::size_t arena_pool::retain_limit() const {
  std::lock_guard lock(mutex_);
  return retain_limit_;
}

arena_pool_stats arena_pool::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

arena_pool& arena_pool::global() {
  static arena_pool pool;
  return pool;
}

}  // namespace spechd
