#include "util/io.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <thread>

namespace spechd::util {

const char* io_op_name(io_op op) noexcept {
  switch (op) {
    case io_op::open: return "open";
    case io_op::write: return "write";
    case io_op::fsync: return "fsync";
    case io_op::truncate: return "truncate";
    case io_op::rename: return "rename";
    case io_op::remove: return "remove";
  }
  return "?";
}

io_failure::io_failure(io_op op, std::string path, int err, std::size_t bytes_completed)
    : io_error(std::string(io_op_name(op)) + " '" + path +
               "' failed: " + std::strerror(err) + " (errno " + std::to_string(err) +
               ")"),
      op_(op),
      path_(std::move(path)),
      errno_(err),
      bytes_completed_(bytes_completed) {}

bool io_error_is_transient(int err) noexcept {
  return err == EAGAIN || err == EWOULDBLOCK;
}

namespace {

// Runs `call` (returning -1/errno on failure) with EINTR restart and
// bounded transient retry; returns the first non-transient errno, or 0.
template <typename Call>
int run_with_retry(Call&& call, const io_retry_policy& retry) {
  auto backoff = retry.initial_backoff;
  int attempts_left = retry.max_retries;
  for (;;) {
    if (call() == 0) return 0;
    const int err = errno;
    if (err == EINTR) continue;  // restart immediately, not a retry
    if (io_error_is_transient(err) && attempts_left-- > 0) {
      std::this_thread::sleep_for(backoff);
      backoff *= 2;
      continue;
    }
    return err;
  }
}

// Failpoint check shared by the non-write wrappers: an armed `error`
// action becomes the syscall's errno; `short` is meaningless outside
// write_all and is treated as an error too (fail loudly, not silently).
int injected_errno(failpoint& fp) {
  if (auto action = fp.fire()) {
    return action->type == failpoint_action::kind::error ? action->error_code : EIO;
  }
  return 0;
}

}  // namespace

int open_fd(const std::string& path, int flags, unsigned mode, failpoint& fp,
            const io_retry_policy& retry) {
  int fd = -1;
  const int err = run_with_retry(
      [&] {
        if (int injected = injected_errno(fp)) {
          errno = injected;
          return -1;
        }
        fd = ::open(path.c_str(), flags, static_cast<mode_t>(mode));
        return fd >= 0 ? 0 : -1;
      },
      retry);
  if (err != 0) throw io_failure(io_op::open, path, err);
  return fd;
}

void write_all(int fd, const void* data, std::size_t size, const std::string& path,
               failpoint& fp, const io_retry_policy& retry) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::size_t written = 0;
  auto backoff = retry.initial_backoff;
  int attempts_left = retry.max_retries;
  while (written < size) {
    std::size_t chunk = size - written;
    int injected = 0;
    if (auto action = fp.fire()) {
      if (action->type == failpoint_action::kind::short_write) {
        // Transfer at most half of what remains (at least 1 byte when more
        // than one remains) so the continuation loop genuinely re-enters.
        chunk = chunk > 1 ? chunk / 2 : chunk;
      } else {
        injected = action->error_code;
      }
    }
    ssize_t n;
    if (injected != 0) {
      // Injected errnos take the exact path a real failure would — an
      // injected EINTR restarts, an injected EAGAIN consumes a retry.
      n = -1;
      errno = injected;
    } else {
      n = ::write(fd, bytes + written, chunk);
    }
    if (n > 0) {
      written += static_cast<std::size_t>(n);
      continue;
    }
    const int err = n < 0 ? errno : EIO;  // n == 0 on a regular file: treat as EIO
    if (err == EINTR) continue;
    if (io_error_is_transient(err) && attempts_left-- > 0) {
      std::this_thread::sleep_for(backoff);
      backoff *= 2;
      continue;
    }
    throw io_failure(io_op::write, path, err, written);
  }
}

void fsync_fd(int fd, const std::string& path, failpoint& fp,
              const io_retry_policy& retry) {
  const int err = run_with_retry(
      [&] {
        if (int injected = injected_errno(fp)) {
          errno = injected;
          return -1;
        }
        return ::fsync(fd);
      },
      retry);
  if (err != 0) throw io_failure(io_op::fsync, path, err);
}

void truncate_fd(int fd, std::uint64_t size, const std::string& path, failpoint& fp,
                 const io_retry_policy& retry) {
  const int err = run_with_retry(
      [&] {
        if (int injected = injected_errno(fp)) {
          errno = injected;
          return -1;
        }
        return ::ftruncate(fd, static_cast<off_t>(size));
      },
      retry);
  if (err != 0) throw io_failure(io_op::truncate, path, err);
}

void rename_file(const std::string& from, const std::string& to, failpoint& fp,
                 const io_retry_policy& retry) {
  const int err = run_with_retry(
      [&] {
        if (int injected = injected_errno(fp)) {
          errno = injected;
          return -1;
        }
        return ::rename(from.c_str(), to.c_str());
      },
      retry);
  if (err != 0) throw io_failure(io_op::rename, from + " -> " + to, err);
}

void remove_file(const std::string& path, failpoint& fp,
                 const io_retry_policy& retry) {
  const int err = run_with_retry(
      [&] {
        if (int injected = injected_errno(fp)) {
          errno = injected;
          return -1;
        }
        if (::unlink(path.c_str()) == 0 || errno == ENOENT) return 0;
        return -1;
      },
      retry);
  if (err != 0) throw io_failure(io_op::remove, path, err);
}

}  // namespace spechd::util
