// Byte-order contract for every SpecHD serialized format.
//
// The `.sphsnap` / `.sphjrnl` / `.sphv` files and the network wire frames
// all write fixed-width integers and floats by memcpy of the host
// representation. That is only a portable format if the host order is
// pinned, so the encode is *defined* as little-endian and the build
// refuses to compile anywhere else — the honest failure mode until a
// byte-swapping reader exists. Readers use `byteswap32` to recognise a
// file or frame written by a big-endian peer and name the real problem
// ("foreign-endian writer") instead of surfacing it as a misleading
// CRC/version mismatch.
#pragma once

#include <bit>
#include <cstdint>

namespace spechd::util {

static_assert(std::endian::native == std::endian::little,
              "SpecHD serialized formats (.sphsnap/.sphjrnl/.sphv and the "
              "net wire protocol) are defined as little-endian and this "
              "port writes host-order bytes; building on a big-endian "
              "target requires adding byte-swapping serialization first");

/// Byte-reverses a u32 — what a fixed-width field written by a
/// foreign-endian host reads back as. Used to turn "unsupported version
/// 33554432" into "written by a big-endian host".
constexpr std::uint32_t byteswap32(std::uint32_t v) noexcept {
  return ((v & 0x000000FFU) << 24) | ((v & 0x0000FF00U) << 8) |
         ((v & 0x00FF0000U) >> 8) | ((v & 0xFF000000U) >> 24);
}

}  // namespace spechd::util
