// Minimal fixed-size thread pool.
//
// Buckets cluster independently (Sec. III-A), so the CPU reference path and
// the FPGA dataflow simulator both need a work queue: on the CPU we execute
// bucket jobs on worker threads; on the FPGA model the same job list is
// assigned to kernel instances. The pool is deliberately simple — bounded,
// exception-propagating, no work stealing — since jobs are coarse.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace spechd {

class thread_pool {
public:
  /// Creates `threads` workers (defaults to hardware concurrency, min 1).
  explicit thread_pool(std::size_t threads = 0);

  /// Drains outstanding work, then joins all workers.
  ~thread_pool();

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; the returned future rethrows any task exception.
  template <typename F>
  std::future<std::invoke_result_t<F>> submit(F&& f) {
    using result_t = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<result_t()>>(std::forward<F>(f));
    std::future<result_t> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run fn(i) for i in [0, n) across the pool and wait for completion.
  /// Exceptions from any invocation are rethrown (first one wins).
  ///
  /// Indices are claimed in contiguous chunks (not one queued task per
  /// index), so fine-grained loops — per-spectrum encoding, per-tile
  /// Hamming blocks — don't drown in queue/future overhead. The calling
  /// thread participates in the claim loop, which makes nested calls from
  /// inside a worker safe: the caller can always finish the work itself,
  /// so completion never waits on a queue slot.
  ///
  /// `grain` fixes the chunk size; 0 picks one based on n and pool width.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 0);

private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace spechd
