// Persistent hypervector store.
//
// Sec. IV-B: "By storing spectral data in the hyperdimensional space, we
// achieve significant data compression ... One-time preprocessing and
// subsequent updates, therefore, emerge as a promising approach for
// enhancing real-time data analysis."
//
// The store is the on-disk artefact that makes that workflow concrete: a
// compact binary file holding, per spectrum, the D_hv-bit hypervector plus
// the metadata clustering needs (precursor m/z, charge, scan, label). A
// repository keeps the store instead of raw peak lists (24-108x smaller)
// and re-clusters or appends without re-encoding.
//
// Format (little-endian):
//   magic  "SPHV"            4 B
//   version u32              (currently 1)
//   dim     u32              bits per HV (multiple of 64)
//   count   u64              number of records
//   seed    u64              item-memory seed the HVs were encoded with
//   records: count x { precursor_mz f64, charge i32, scan u32, label i32,
//                      pad u32, words dim/64 x u64 }
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "hdc/hypervector.hpp"

namespace spechd::hdc {

/// One stored record: hypervector + clustering metadata.
struct hv_record {
  hypervector hv;
  double precursor_mz = 0.0;
  std::int32_t precursor_charge = 0;
  std::uint32_t scan = 0;
  std::int32_t label = -1;
};

/// In-memory representation of a store file.
class hv_store {
public:
  hv_store() = default;

  /// Creates an empty store for `dim`-bit vectors encoded with `seed`.
  hv_store(std::size_t dim, std::uint64_t encoder_seed);

  std::size_t dim() const noexcept { return dim_; }
  std::uint64_t encoder_seed() const noexcept { return seed_; }
  std::size_t size() const noexcept { return records_.size(); }
  bool empty() const noexcept { return records_.empty(); }

  const hv_record& at(std::size_t i) const { return records_.at(i); }
  const std::vector<hv_record>& records() const noexcept { return records_; }

  /// Appends a record; the vector's dimension must match the store's.
  void append(hv_record record);

  /// Byte size of the serialised store (header + records).
  std::size_t file_bytes() const noexcept;

  /// Serialisation. Throws spechd::io_error / parse_error on failure.
  void save(std::ostream& out) const;
  void save_file(const std::string& path) const;
  static hv_store load(std::istream& in, const std::string& source_name = "<hv_store>");
  static hv_store load_file(const std::string& path);

private:
  std::size_t dim_ = 0;
  std::uint64_t seed_ = 0;
  std::vector<hv_record> records_;
};

}  // namespace spechd::hdc
