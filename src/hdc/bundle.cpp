#include "hdc/bundle.hpp"

namespace spechd::hdc {

hypervector bundle_majority(std::span<const hypervector> inputs) {
  SPECHD_EXPECTS(!inputs.empty());
  incremental_bundle bundle(inputs.front().dim());
  for (const auto& hv : inputs) bundle.add(hv);
  return bundle.majority();
}

incremental_bundle::incremental_bundle(std::size_t dim) : dim_(dim), acc_(dim / 64) {
  SPECHD_EXPECTS(dim > 0 && dim % 64 == 0);
}

void incremental_bundle::add(const hypervector& hv) {
  SPECHD_EXPECTS(hv.dim() == dim_);
  if (empty()) first_ = hv;
  acc_.add(hv.words().data());
}

hypervector incremental_bundle::majority() const {
  SPECHD_EXPECTS(!empty());
  hypervector out(dim_);
  acc_.majority(first_.words().data(), out.words().data());
  return out;
}

}  // namespace spechd::hdc
