#include "hdc/bundle.hpp"

#include <bit>

namespace spechd::hdc {

hypervector bundle_majority(std::span<const hypervector> inputs) {
  SPECHD_EXPECTS(!inputs.empty());
  incremental_bundle bundle(inputs.front().dim());
  for (const auto& hv : inputs) bundle.add(hv);
  return bundle.majority();
}

incremental_bundle::incremental_bundle(std::size_t dim) : counts_(dim, 0) {
  SPECHD_EXPECTS(dim > 0 && dim % 64 == 0);
}

void incremental_bundle::add(const hypervector& hv) {
  SPECHD_EXPECTS(hv.dim() == counts_.size());
  if (members_ == 0) first_ = hv;
  const auto words = hv.words();
  for (std::size_t w = 0; w < words.size(); ++w) {
    std::uint64_t bits = words[w];
    while (bits != 0) {
      const auto bit = static_cast<std::size_t>(std::countr_zero(bits));
      ++counts_[w * 64 + bit];
      bits &= bits - 1;
    }
  }
  ++members_;
}

hypervector incremental_bundle::majority() const {
  SPECHD_EXPECTS(members_ > 0);
  hypervector out(counts_.size());
  const std::size_t half = members_ / 2;
  const bool even = (members_ % 2) == 0;
  for (std::size_t d = 0; d < counts_.size(); ++d) {
    const std::size_t c = counts_[d];
    bool bit;
    if (even && c == half) {
      bit = first_.test(d);
    } else {
      bit = c > half;
    }
    out.assign(d, bit);
  }
  return out;
}

}  // namespace spechd::hdc
