#include "hdc/hv_store.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "util/error.hpp"

namespace spechd::hdc {

namespace {

constexpr char k_magic[4] = {'S', 'P', 'H', 'V'};
constexpr std::uint32_t k_version = 1;

template <typename T>
void write_pod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in, const std::string& source) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in) throw parse_error(source, 0, "truncated hv_store");
  return v;
}

}  // namespace

hv_store::hv_store(std::size_t dim, std::uint64_t encoder_seed)
    : dim_(dim), seed_(encoder_seed) {
  SPECHD_EXPECTS(dim > 0 && dim % 64 == 0);
}

void hv_store::append(hv_record record) {
  SPECHD_EXPECTS(record.hv.dim() == dim_);
  records_.push_back(std::move(record));
}

std::size_t hv_store::file_bytes() const noexcept {
  const std::size_t header = 4 + 4 + 4 + 8 + 8;
  const std::size_t per_record = 8 + 4 + 4 + 4 + 4 + dim_ / 8;
  return header + records_.size() * per_record;
}

void hv_store::save(std::ostream& out) const {
  out.write(k_magic, 4);
  write_pod(out, k_version);
  write_pod(out, static_cast<std::uint32_t>(dim_));
  write_pod(out, static_cast<std::uint64_t>(records_.size()));
  write_pod(out, seed_);
  for (const auto& r : records_) {
    write_pod(out, r.precursor_mz);
    write_pod(out, r.precursor_charge);
    write_pod(out, r.scan);
    write_pod(out, r.label);
    write_pod(out, std::uint32_t{0});  // pad / reserved
    const auto words = r.hv.words();
    out.write(reinterpret_cast<const char*>(words.data()),
              static_cast<std::streamsize>(words.size() * sizeof(std::uint64_t)));
  }
  if (!out) throw io_error("hv_store write failure");
}

void hv_store::save_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw io_error("cannot create hv_store file: " + path);
  save(out);
}

hv_store hv_store::load(std::istream& in, const std::string& source_name) {
  char magic[4] = {};
  in.read(magic, 4);
  if (!in || std::memcmp(magic, k_magic, 4) != 0) {
    throw parse_error(source_name, 0, "not an hv_store file (bad magic)");
  }
  const auto version = read_pod<std::uint32_t>(in, source_name);
  if (version != k_version) {
    throw parse_error(source_name, 0,
                      "unsupported hv_store version " + std::to_string(version));
  }
  const auto dim = read_pod<std::uint32_t>(in, source_name);
  if (dim == 0 || dim % 64 != 0) {
    throw parse_error(source_name, 0, "invalid hv dimension " + std::to_string(dim));
  }
  const auto count = read_pod<std::uint64_t>(in, source_name);
  const auto seed = read_pod<std::uint64_t>(in, source_name);

  hv_store store(dim, seed);
  store.records_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    hv_record r;
    r.precursor_mz = read_pod<double>(in, source_name);
    r.precursor_charge = read_pod<std::int32_t>(in, source_name);
    r.scan = read_pod<std::uint32_t>(in, source_name);
    r.label = read_pod<std::int32_t>(in, source_name);
    (void)read_pod<std::uint32_t>(in, source_name);  // pad
    r.hv = hypervector(dim);
    const auto words = r.hv.words();
    in.read(reinterpret_cast<char*>(words.data()),
            static_cast<std::streamsize>(words.size() * sizeof(std::uint64_t)));
    if (!in) throw parse_error(source_name, 0, "truncated hv_store record");
    store.records_.push_back(std::move(r));
  }
  return store;
}

hv_store hv_store::load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw io_error("cannot open hv_store file: " + path);
  return load(in, path);
}

}  // namespace spechd::hdc
