#include "hdc/cpu_kernels.hpp"

#include <bit>
#include <cstring>

// SIMD variants are compiled only on x86-64 GCC/Clang builds (the target
// attribute lets one translation unit hold AVX code without global -mavx
// flags); every other platform keeps the portable scalar path and the
// runtime dispatcher simply never offers the SIMD variants.
#if defined(SPECHD_ENABLE_SIMD) && defined(__x86_64__) && defined(__GNUC__)
#define SPECHD_X86_KERNELS 1
#include <immintrin.h>
#else
#define SPECHD_X86_KERNELS 0
#endif

namespace spechd::hdc::kernels {
namespace {

// ---------------------------------------------------------------------------
// scalar reference kernels
// ---------------------------------------------------------------------------

std::size_t popcount_scalar(const std::uint64_t* a, std::size_t words) noexcept {
  std::size_t count = 0;
  for (std::size_t w = 0; w < words; ++w) {
    count += static_cast<std::size_t>(std::popcount(a[w]));
  }
  return count;
}

std::size_t xor_popcount_scalar(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t words) noexcept {
  std::size_t count = 0;
  for (std::size_t w = 0; w < words; ++w) {
    count += static_cast<std::size_t>(std::popcount(a[w] ^ b[w]));
  }
  return count;
}

void hamming_tile_scalar(const std::uint64_t* const* rows, std::size_t n_rows,
                         const std::uint64_t* const* cols, std::size_t n_cols,
                         std::size_t words, std::uint32_t* counts) noexcept {
  for (std::size_t r = 0; r < n_rows; ++r) {
    for (std::size_t c = 0; c < n_cols; ++c) {
      counts[r * n_cols + c] =
          static_cast<std::uint32_t>(xor_popcount_scalar(rows[r], cols[c], words));
    }
  }
}

// Ripple-carry add of one 0/1-per-dimension word array into the bit planes.
// Carry density halves per plane, so the expected work is ~2 word ops per
// input word — already far below the per-set-bit counter scatter it replaces.
void bitsliced_add_scalar(std::uint64_t* planes, std::size_t words, std::size_t plane_count,
                          const std::uint64_t* bits) noexcept {
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t carry = bits[w];
    for (std::size_t p = 0; p < plane_count && carry != 0; ++p) {
      std::uint64_t& a = planes[p * words + w];
      const std::uint64_t t = a ^ carry;
      carry &= a;
      a = t;
    }
  }
}

#if SPECHD_X86_KERNELS

// ---------------------------------------------------------------------------
// AVX2 kernels — Mula nibble-LUT popcount with byte-lane accumulation
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) inline __m256i popcount_epi8_avx2(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,  //
                                       0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
}

__attribute__((target("avx2"))) inline std::uint64_t hsum_epi64_avx2(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  const __m128i s = _mm_add_epi64(lo, hi);
  return static_cast<std::uint64_t>(_mm_cvtsi128_si64(s)) +
         static_cast<std::uint64_t>(_mm_cvtsi128_si64(_mm_unpackhi_epi64(s, s)));
}

__attribute__((target("avx2"))) std::size_t xor_popcount_avx2(const std::uint64_t* a,
                                                              const std::uint64_t* b,
                                                              std::size_t words) noexcept {
  const __m256i zero = _mm256_setzero_si256();
  __m256i total = zero;
  std::size_t w = 0;
  while (words - w >= 4) {
    // Byte counters saturate only past 255/8 = 31 vectors; block well below.
    const std::size_t block_end = std::min(words, w + 4 * 31);
    __m256i acc8 = zero;
    for (; w + 4 <= block_end; w += 4) {
      const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
      const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w));
      acc8 = _mm256_add_epi8(acc8, popcount_epi8_avx2(_mm256_xor_si256(va, vb)));
    }
    total = _mm256_add_epi64(total, _mm256_sad_epu8(acc8, zero));
  }
  std::size_t count = hsum_epi64_avx2(total);
  for (; w < words; ++w) count += static_cast<std::size_t>(std::popcount(a[w] ^ b[w]));
  return count;
}

__attribute__((target("avx2"))) std::size_t popcount_avx2(const std::uint64_t* a,
                                                          std::size_t words) noexcept {
  const __m256i zero = _mm256_setzero_si256();
  __m256i total = zero;
  std::size_t w = 0;
  while (words - w >= 4) {
    const std::size_t block_end = std::min(words, w + 4 * 31);
    __m256i acc8 = zero;
    for (; w + 4 <= block_end; w += 4) {
      const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
      acc8 = _mm256_add_epi8(acc8, popcount_epi8_avx2(va));
    }
    total = _mm256_add_epi64(total, _mm256_sad_epu8(acc8, zero));
  }
  std::size_t count = hsum_epi64_avx2(total);
  for (; w < words; ++w) count += static_cast<std::size_t>(std::popcount(a[w]));
  return count;
}

__attribute__((target("avx2"))) void hamming_tile_avx2(const std::uint64_t* const* rows,
                                                       std::size_t n_rows,
                                                       const std::uint64_t* const* cols,
                                                       std::size_t n_cols, std::size_t words,
                                                       std::uint32_t* counts) noexcept {
  for (std::size_t r = 0; r < n_rows; ++r) {
    for (std::size_t c = 0; c < n_cols; ++c) {
      counts[r * n_cols + c] =
          static_cast<std::uint32_t>(xor_popcount_avx2(rows[r], cols[c], words));
    }
  }
}

__attribute__((target("avx2"))) void bitsliced_add_avx2(std::uint64_t* planes,
                                                        std::size_t words,
                                                        std::size_t plane_count,
                                                        const std::uint64_t* bits) noexcept {
  std::size_t w = 0;
  for (; w + 4 <= words; w += 4) {
    __m256i carry = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bits + w));
    for (std::size_t p = 0; p < plane_count; ++p) {
      if (_mm256_testz_si256(carry, carry)) break;
      std::uint64_t* slot = planes + p * words + w;
      const __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(slot));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(slot), _mm256_xor_si256(a, carry));
      carry = _mm256_and_si256(a, carry);
    }
  }
  for (; w < words; ++w) {
    std::uint64_t carry = bits[w];
    for (std::size_t p = 0; p < plane_count && carry != 0; ++p) {
      std::uint64_t& a = planes[p * words + w];
      const std::uint64_t t = a ^ carry;
      carry &= a;
      a = t;
    }
  }
}

// ---------------------------------------------------------------------------
// AVX-512 kernels — native VPOPCNTQ (Ice Lake+)
// ---------------------------------------------------------------------------

__attribute__((target("avx512f,avx512vpopcntdq"))) std::size_t xor_popcount_avx512(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t words) noexcept {
  __m512i acc = _mm512_setzero_si512();
  std::size_t w = 0;
  for (; w + 8 <= words; w += 8) {
    const __m512i va = _mm512_loadu_si512(a + w);
    const __m512i vb = _mm512_loadu_si512(b + w);
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(_mm512_xor_si512(va, vb)));
  }
  std::size_t count = static_cast<std::size_t>(_mm512_reduce_add_epi64(acc));
  for (; w < words; ++w) count += static_cast<std::size_t>(std::popcount(a[w] ^ b[w]));
  return count;
}

__attribute__((target("avx512f,avx512vpopcntdq"))) std::size_t popcount_avx512(
    const std::uint64_t* a, std::size_t words) noexcept {
  __m512i acc = _mm512_setzero_si512();
  std::size_t w = 0;
  for (; w + 8 <= words; w += 8) {
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(_mm512_loadu_si512(a + w)));
  }
  std::size_t count = static_cast<std::size_t>(_mm512_reduce_add_epi64(acc));
  for (; w < words; ++w) count += static_cast<std::size_t>(std::popcount(a[w]));
  return count;
}

__attribute__((target("avx512f,avx512vpopcntdq"))) void hamming_tile_avx512(
    const std::uint64_t* const* rows, std::size_t n_rows, const std::uint64_t* const* cols,
    std::size_t n_cols, std::size_t words, std::uint32_t* counts) noexcept {
  for (std::size_t r = 0; r < n_rows; ++r) {
    for (std::size_t c = 0; c < n_cols; ++c) {
      counts[r * n_cols + c] =
          static_cast<std::uint32_t>(xor_popcount_avx512(rows[r], cols[c], words));
    }
  }
}

#endif  // SPECHD_X86_KERNELS

// ---------------------------------------------------------------------------
// runtime dispatch
// ---------------------------------------------------------------------------

struct kernel_table {
  std::size_t (*popcount)(const std::uint64_t*, std::size_t) noexcept;
  std::size_t (*xor_popcount)(const std::uint64_t*, const std::uint64_t*,
                              std::size_t) noexcept;
  void (*hamming_tile)(const std::uint64_t* const*, std::size_t, const std::uint64_t* const*,
                       std::size_t, std::size_t, std::uint32_t*) noexcept;
  void (*bitsliced_add)(std::uint64_t*, std::size_t, std::size_t,
                        const std::uint64_t*) noexcept;
};

constexpr kernel_table scalar_table{popcount_scalar, xor_popcount_scalar,
                                    hamming_tile_scalar, bitsliced_add_scalar};

kernel_table table_for(variant v) noexcept {
#if SPECHD_X86_KERNELS
  switch (v) {
    case variant::avx2:
      return {popcount_avx2, xor_popcount_avx2, hamming_tile_avx2, bitsliced_add_avx2};
    case variant::avx512:
      // The bit-sliced ripple is bound by carry shortening, not lane width;
      // AVX2 add alongside the 512-bit popcount datapath measures fastest.
      return {popcount_avx512, xor_popcount_avx512, hamming_tile_avx512, bitsliced_add_avx2};
    case variant::scalar:
      break;
  }
#else
  (void)v;
#endif
  return scalar_table;
}

struct dispatch_state {
  variant active = variant::scalar;
  kernel_table table = scalar_table;
};

dispatch_state& state() noexcept {
  static dispatch_state s{best_supported(), table_for(best_supported())};
  return s;
}

}  // namespace

const char* variant_name(variant v) noexcept {
  switch (v) {
    case variant::scalar: return "scalar";
    case variant::avx2: return "avx2";
    case variant::avx512: return "avx512";
  }
  return "unknown";
}

bool supported(variant v) noexcept {
  if (v == variant::scalar) return true;
#if SPECHD_X86_KERNELS
  if (v == variant::avx2) return __builtin_cpu_supports("avx2") != 0;
  if (v == variant::avx512) {
    return __builtin_cpu_supports("avx512f") != 0 &&
           __builtin_cpu_supports("avx512vpopcntdq") != 0;
  }
#endif
  return false;
}

variant best_supported() noexcept {
  if (supported(variant::avx512)) return variant::avx512;
  if (supported(variant::avx2)) return variant::avx2;
  return variant::scalar;
}

variant active() noexcept { return state().active; }

void set_active(variant v) {
  SPECHD_EXPECTS(supported(v));
  state().active = v;
  state().table = table_for(v);
}

variant parse_variant(const std::string& name) {
  if (name == "auto") return best_supported();
  for (const variant v : {variant::scalar, variant::avx2, variant::avx512}) {
    if (name == variant_name(v)) return v;
  }
  throw logic_error("unknown kernel variant: " + name);
}

std::size_t popcount(const std::uint64_t* a, std::size_t words) noexcept {
  return state().table.popcount(a, words);
}

std::size_t xor_popcount(const std::uint64_t* a, const std::uint64_t* b,
                         std::size_t words) noexcept {
  return state().table.xor_popcount(a, b, words);
}

void hamming_tile(const std::uint64_t* const* rows, std::size_t n_rows,
                  const std::uint64_t* const* cols, std::size_t n_cols, std::size_t words,
                  std::uint32_t* counts) noexcept {
  state().table.hamming_tile(rows, n_rows, cols, n_cols, words, counts);
}

// ---------------------------------------------------------------------------
// bitsliced_accumulator
// ---------------------------------------------------------------------------

void bitsliced_accumulator::reset(std::size_t words) {
  words_ = words;
  adds_ = 0;
  planes_.clear();
}

void bitsliced_accumulator::ensure_planes(std::size_t planes) {
  if (plane_count() < planes) planes_.resize(planes * words_, 0);
}

void bitsliced_accumulator::reserve_adds(std::uint64_t adds) {
  if (adds > 0) ensure_planes(static_cast<std::size_t>(std::bit_width(adds)));
}

void bitsliced_accumulator::add(const std::uint64_t* bits) {
  SPECHD_EXPECTS(words_ > 0);
  ++adds_;
  ensure_planes(static_cast<std::size_t>(std::bit_width(adds_)));
  state().table.bitsliced_add(planes_.data(), words_, plane_count(), bits);
}

void bitsliced_accumulator::majority(const std::uint64_t* tie_bits,
                                     std::uint64_t* out) const {
  const std::uint64_t half = adds_ / 2;
  const bool even = (adds_ % 2) == 0;
  const std::size_t planes = plane_count();
  // MSB-first bit-sliced comparison of each dimension's count against the
  // constant `half`: gt accumulates strict greater-than, eq tracks exact
  // equality; ties (only reachable when the add count is even) take the
  // corresponding tie_bits bit, matching the scalar reference exactly.
  for (std::size_t w = 0; w < words_; ++w) {
    std::uint64_t gt = 0;
    std::uint64_t eq = ~0ULL;
    for (std::size_t p = planes; p-- > 0;) {
      const std::uint64_t a = planes_[p * words_ + w];
      const std::uint64_t h = ((half >> p) & 1ULL) ? ~0ULL : 0ULL;
      gt |= eq & a & ~h;
      eq &= ~(a ^ h);
    }
    out[w] = gt | (even ? (eq & tie_bits[w]) : 0ULL);
  }
}

std::uint64_t bitsliced_accumulator::count_at(std::size_t dim) const {
  SPECHD_EXPECTS(dim < words_ * 64);
  const std::size_t w = dim / 64;
  const std::size_t bit = dim % 64;
  std::uint64_t count = 0;
  for (std::size_t p = 0; p < plane_count(); ++p) {
    count |= ((planes_[p * words_ + w] >> bit) & 1ULL) << p;
  }
  return count;
}

}  // namespace spechd::hdc::kernels
