#include "hdc/cpu_kernels.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>

#include "util/fixed_point.hpp"

// SIMD variants are compiled only on x86-64 GCC/Clang builds (the target
// attribute lets one translation unit hold AVX code without global -mavx
// flags); every other platform keeps the portable scalar path and the
// runtime dispatcher simply never offers the SIMD variants.
#if defined(SPECHD_ENABLE_SIMD) && defined(__x86_64__) && defined(__GNUC__)
#define SPECHD_X86_KERNELS 1
#include <immintrin.h>
#else
#define SPECHD_X86_KERNELS 0
#endif

namespace spechd::hdc::kernels {
namespace {

// ---------------------------------------------------------------------------
// scalar reference kernels
// ---------------------------------------------------------------------------

std::size_t popcount_scalar(const std::uint64_t* a, std::size_t words) noexcept {
  std::size_t count = 0;
  for (std::size_t w = 0; w < words; ++w) {
    count += static_cast<std::size_t>(std::popcount(a[w]));
  }
  return count;
}

std::size_t xor_popcount_scalar(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t words) noexcept {
  std::size_t count = 0;
  for (std::size_t w = 0; w < words; ++w) {
    count += static_cast<std::size_t>(std::popcount(a[w] ^ b[w]));
  }
  return count;
}

void hamming_tile_scalar(const std::uint64_t* const* rows, std::size_t n_rows,
                         const std::uint64_t* const* cols, std::size_t n_cols,
                         std::size_t words, std::uint32_t* counts) noexcept {
  for (std::size_t r = 0; r < n_rows; ++r) {
    for (std::size_t c = 0; c < n_cols; ++c) {
      counts[r * n_cols + c] =
          static_cast<std::uint32_t>(xor_popcount_scalar(rows[r], cols[c], words));
    }
  }
}

// Packed-operand reference: identical arithmetic to hamming_tile_scalar,
// just without the pointer chase. The SIMD packed variants must match this
// bit for bit (trivial — Hamming counts are exact integers).
void hamming_tile_packed_scalar(const std::uint64_t* rows, std::size_t n_rows,
                                const std::uint64_t* cols, std::size_t n_cols,
                                std::size_t words, std::uint32_t* counts) noexcept {
  for (std::size_t r = 0; r < n_rows; ++r) {
    const std::uint64_t* row = rows + r * words;
    for (std::size_t c = 0; c < n_cols; ++c) {
      counts[r * n_cols + c] =
          static_cast<std::uint32_t>(xor_popcount_scalar(row, cols + c * words, words));
    }
  }
}

// The packed comparison key of one candidate: counts are at most 64 * words
// (a popcount), far below 2^32, so (count << 32 | index) orders exactly by
// (count, index) — the deterministic lowest-index tie-break.
inline std::uint64_t kselect_key(std::uint32_t count, std::uint32_t index) noexcept {
  return (static_cast<std::uint64_t>(count) << 32) | index;
}

/// Inserts (count, index) into the sorted prefix out[0..size), bounded at
/// `cap` entries: a candidate no better than the current worst of a full
/// buffer is rejected, otherwise the worst is dropped and the candidate is
/// placed by binary search + memmove. Shared by every variant — the SIMD
/// paths only differ in how they *skip* non-qualifying candidates.
inline void kselect_insert(select_entry* out, std::size_t& size, std::size_t cap,
                           std::uint32_t count, std::uint32_t index) noexcept {
  const std::uint64_t key = kselect_key(count, index);
  if (size == cap) {
    if (key >= kselect_key(out[size - 1].count, out[size - 1].index)) return;
    --size;
  }
  std::size_t lo = 0;
  std::size_t hi = size;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (key < kselect_key(out[mid].count, out[mid].index)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  std::memmove(out + lo + 1, out + lo, (size - lo) * sizeof(select_entry));
  out[lo] = {count, index};
  ++size;
}

std::size_t k_select_scalar(const std::uint32_t* counts, std::size_t n, std::size_t k,
                            select_entry* out) noexcept {
  const std::size_t cap = std::min(k, n);
  if (cap == 0) return 0;
  std::size_t size = 0;
  for (std::size_t i = 0; i < n; ++i) {
    kselect_insert(out, size, cap, counts[i], static_cast<std::uint32_t>(i));
  }
  return size;
}

row_min nearest_active_scan_scalar(const double* row, const std::uint8_t* active,
                                   std::size_t n) noexcept {
  constexpr double inf = std::numeric_limits<double>::infinity();
  row_min best{0, inf};
  for (std::size_t i = 0; i < n; ++i) {
    const double v = active[i] != 0 ? row[i] : inf;
    if (v < best.value) {
      best.value = v;
      best.index = static_cast<std::uint32_t>(i);
    }
  }
  return best;
}

row_min nearest_active_scan_f32_scalar(const float* row, const std::uint8_t* active,
                                       std::size_t n) noexcept {
  constexpr float inf = std::numeric_limits<float>::infinity();
  std::uint32_t index = 0;
  float best = inf;
  for (std::size_t i = 0; i < n; ++i) {
    const float v = active[i] != 0 ? row[i] : inf;
    if (v < best) {
      best = v;
      index = static_cast<std::uint32_t>(i);
    }
  }
  return {index, static_cast<double>(best)};
}

// q16 store rounding over a double (see q16::from_double): used by the row
// update so the working matrix stays on the FPGA's Q0.16 grid.
double lw_store_q16(double v) noexcept { return q16::from_double(v).to_double(); }

void lance_williams_row_update_scalar(double* keep_row, const double* gone_row,
                                      const std::uint8_t* active, const double* sizes,
                                      std::size_t n, const lw_update& u) noexcept {
  const bool round = u.store == lw_store::q16;
  for (std::size_t k = 0; k < n; ++k) {
    if (active[k] == 0) continue;
    const double v = lance_williams(u.link, gone_row[k], keep_row[k], u.d_ab, u.size_a,
                                    u.size_b, sizes[k]);
    keep_row[k] = round ? lw_store_q16(v) : v;
  }
}

void lance_williams_row_update_f32_scalar(float* keep_row, const float* gone_row,
                                          const std::uint8_t* active, const double* sizes,
                                          std::size_t n, const lw_update& u) noexcept {
  const bool round = u.store == lw_store::q16;
  for (std::size_t k = 0; k < n; ++k) {
    if (active[k] == 0) continue;
    const double v = lance_williams(u.link, static_cast<double>(gone_row[k]),
                                    static_cast<double>(keep_row[k]), u.d_ab, u.size_a,
                                    u.size_b, sizes[k]);
    keep_row[k] = static_cast<float>(round ? lw_store_q16(v) : v);
  }
}

// Ripple-carry add of one 0/1-per-dimension word array into the bit planes.
// Carry density halves per plane, so the expected work is ~2 word ops per
// input word — already far below the per-set-bit counter scatter it replaces.
void bitsliced_add_scalar(std::uint64_t* planes, std::size_t words, std::size_t plane_count,
                          const std::uint64_t* bits) noexcept {
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t carry = bits[w];
    for (std::size_t p = 0; p < plane_count && carry != 0; ++p) {
      std::uint64_t& a = planes[p * words + w];
      const std::uint64_t t = a ^ carry;
      carry &= a;
      a = t;
    }
  }
}

#if SPECHD_X86_KERNELS

// ---------------------------------------------------------------------------
// AVX2 kernels — Mula nibble-LUT popcount with byte-lane accumulation
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) inline __m256i popcount_epi8_avx2(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,  //
                                       0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
}

__attribute__((target("avx2"))) inline std::uint64_t hsum_epi64_avx2(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  const __m128i s = _mm_add_epi64(lo, hi);
  return static_cast<std::uint64_t>(_mm_cvtsi128_si64(s)) +
         static_cast<std::uint64_t>(_mm_cvtsi128_si64(_mm_unpackhi_epi64(s, s)));
}

__attribute__((target("avx2"))) std::size_t xor_popcount_avx2(const std::uint64_t* a,
                                                              const std::uint64_t* b,
                                                              std::size_t words) noexcept {
  const __m256i zero = _mm256_setzero_si256();
  __m256i total = zero;
  std::size_t w = 0;
  while (words - w >= 4) {
    // Byte counters saturate only past 255/8 = 31 vectors; block well below.
    const std::size_t block_end = std::min(words, w + 4 * 31);
    __m256i acc8 = zero;
    for (; w + 4 <= block_end; w += 4) {
      const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
      const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w));
      acc8 = _mm256_add_epi8(acc8, popcount_epi8_avx2(_mm256_xor_si256(va, vb)));
    }
    total = _mm256_add_epi64(total, _mm256_sad_epu8(acc8, zero));
  }
  std::size_t count = hsum_epi64_avx2(total);
  for (; w < words; ++w) count += static_cast<std::size_t>(std::popcount(a[w] ^ b[w]));
  return count;
}

__attribute__((target("avx2"))) std::size_t popcount_avx2(const std::uint64_t* a,
                                                          std::size_t words) noexcept {
  const __m256i zero = _mm256_setzero_si256();
  __m256i total = zero;
  std::size_t w = 0;
  while (words - w >= 4) {
    const std::size_t block_end = std::min(words, w + 4 * 31);
    __m256i acc8 = zero;
    for (; w + 4 <= block_end; w += 4) {
      const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
      acc8 = _mm256_add_epi8(acc8, popcount_epi8_avx2(va));
    }
    total = _mm256_add_epi64(total, _mm256_sad_epu8(acc8, zero));
  }
  std::size_t count = hsum_epi64_avx2(total);
  for (; w < words; ++w) count += static_cast<std::size_t>(std::popcount(a[w]));
  return count;
}

__attribute__((target("avx2"))) void hamming_tile_avx2(const std::uint64_t* const* rows,
                                                       std::size_t n_rows,
                                                       const std::uint64_t* const* cols,
                                                       std::size_t n_cols, std::size_t words,
                                                       std::uint32_t* counts) noexcept {
  for (std::size_t r = 0; r < n_rows; ++r) {
    for (std::size_t c = 0; c < n_cols; ++c) {
      counts[r * n_cols + c] =
          static_cast<std::uint32_t>(xor_popcount_avx2(rows[r], cols[c], words));
    }
  }
}

/// Packed tile, AVX2: rows are processed in pairs so each column vector is
/// loaded once per two outputs, and the per-pair popcount reduction runs
/// through a carry-save accumulator — two XOR words are compressed with
/// full-adder logic (sum = xor3, carry = majority) and only the weight-2
/// carry goes through the (expensive, 2-shuffle) Mula popcount, halving
/// shuffle-port pressure; the residual weight-1 `ones` plane is popcounted
/// once per pair. Counts are exact, so this is bit-identical to the scalar
/// packed reference.
__attribute__((target("avx2"))) void hamming_tile_packed_avx2(
    const std::uint64_t* rows, std::size_t n_rows, const std::uint64_t* cols,
    std::size_t n_cols, std::size_t words, std::uint32_t* counts) noexcept {
  const __m256i zero = _mm256_setzero_si256();
  const std::size_t w8 = words & ~std::size_t{7};
  std::size_t r = 0;
  for (; r + 2 <= n_rows; r += 2) {
    const std::uint64_t* ra = rows + r * words;
    const std::uint64_t* rb = ra + words;
    std::uint32_t* out0 = counts + r * n_cols;
    std::uint32_t* out1 = out0 + n_cols;
    for (std::size_t c = 0; c < n_cols; ++c) {
      const std::uint64_t* cc = cols + c * words;
      __m256i ones_a = zero;
      __m256i ones_b = zero;
      __m256i total_a = zero;  // 64-bit lanes: accumulated weight-2 carries
      __m256i total_b = zero;
      std::size_t w = 0;
      while (w8 - w >= 8) {
        // Byte counters saturate only past 255/8 = 31 vectors; block below.
        const std::size_t block_end = std::min(w8, w + 8 * 31);
        __m256i acc_a = zero;
        __m256i acc_b = zero;
        for (; w + 8 <= block_end; w += 8) {
          const __m256i c0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cc + w));
          const __m256i c1 =
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cc + w + 4));
          {
            const __m256i x0 = _mm256_xor_si256(
                _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ra + w)), c0);
            const __m256i x1 = _mm256_xor_si256(
                _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ra + w + 4)), c1);
            const __m256i u = _mm256_xor_si256(x0, x1);
            const __m256i carry = _mm256_or_si256(_mm256_and_si256(x0, x1),
                                                  _mm256_and_si256(u, ones_a));
            acc_a = _mm256_add_epi8(acc_a, popcount_epi8_avx2(carry));
            ones_a = _mm256_xor_si256(u, ones_a);
          }
          {
            const __m256i x0 = _mm256_xor_si256(
                _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rb + w)), c0);
            const __m256i x1 = _mm256_xor_si256(
                _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rb + w + 4)), c1);
            const __m256i u = _mm256_xor_si256(x0, x1);
            const __m256i carry = _mm256_or_si256(_mm256_and_si256(x0, x1),
                                                  _mm256_and_si256(u, ones_b));
            acc_b = _mm256_add_epi8(acc_b, popcount_epi8_avx2(carry));
            ones_b = _mm256_xor_si256(u, ones_b);
          }
        }
        total_a = _mm256_add_epi64(total_a, _mm256_sad_epu8(acc_a, zero));
        total_b = _mm256_add_epi64(total_b, _mm256_sad_epu8(acc_b, zero));
      }
      std::size_t cnt_a =
          2 * hsum_epi64_avx2(total_a) +
          hsum_epi64_avx2(_mm256_sad_epu8(popcount_epi8_avx2(ones_a), zero));
      std::size_t cnt_b =
          2 * hsum_epi64_avx2(total_b) +
          hsum_epi64_avx2(_mm256_sad_epu8(popcount_epi8_avx2(ones_b), zero));
      for (; w < words; ++w) {
        cnt_a += static_cast<std::size_t>(std::popcount(ra[w] ^ cc[w]));
        cnt_b += static_cast<std::size_t>(std::popcount(rb[w] ^ cc[w]));
      }
      out0[c] = static_cast<std::uint32_t>(cnt_a);
      out1[c] = static_cast<std::uint32_t>(cnt_b);
    }
  }
  if (r < n_rows) {
    const std::uint64_t* ra = rows + r * words;
    std::uint32_t* out = counts + r * n_cols;
    for (std::size_t c = 0; c < n_cols; ++c) {
      out[c] = static_cast<std::uint32_t>(xor_popcount_avx2(ra, cols + c * words, words));
    }
  }
}

/// k-select, AVX2: scan 8 counts per compare against the running k-th best
/// count. `v <= thr` (unsigned, via min+cmpeq) is a *superset* of "improves
/// the top-k" — equal-count/higher-index candidates pass the lane test but
/// are rejected by kselect_insert's full-key compare — so skipped blocks
/// can never drop a qualifying candidate and the output stays bit-identical
/// to the scalar insertion order (which itself equals the sorted prefix).
__attribute__((target("avx2"))) std::size_t k_select_avx2(const std::uint32_t* counts,
                                                          std::size_t n, std::size_t k,
                                                          select_entry* out) noexcept {
  const std::size_t cap = std::min(k, n);
  if (cap == 0) return 0;
  std::size_t size = 0;
  std::size_t i = 0;
  for (; i < n && size < cap; ++i) {
    kselect_insert(out, size, cap, counts[i], static_cast<std::uint32_t>(i));
  }
  for (; i + 8 <= n; i += 8) {
    const __m256i thr = _mm256_set1_epi32(static_cast<int>(out[cap - 1].count));
    const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(counts + i));
    const __m256i le = _mm256_cmpeq_epi32(_mm256_min_epu32(v, thr), v);
    unsigned hits = static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(le)));
    while (hits != 0) {
      const auto lane = static_cast<std::size_t>(std::countr_zero(hits));
      hits &= hits - 1;
      kselect_insert(out, size, cap, counts[i + lane],
                     static_cast<std::uint32_t>(i + lane));
    }
  }
  for (; i < n; ++i) {
    kselect_insert(out, size, cap, counts[i], static_cast<std::uint32_t>(i));
  }
  return size;
}

/// 4 active bytes -> 4 all-ones/all-zeros double lanes.
__attribute__((target("avx2"))) inline __m256d active_mask_pd_avx2(const std::uint8_t* active) {
  std::uint32_t packed;
  std::memcpy(&packed, active, 4);
  const __m256i lanes = _mm256_cvtepu8_epi64(_mm_cvtsi32_si128(static_cast<int>(packed)));
  return _mm256_castsi256_pd(_mm256_cmpgt_epi64(lanes, _mm256_setzero_si256()));
}

__attribute__((target("avx2"))) row_min nearest_active_scan_avx2(
    const double* row, const std::uint8_t* active, std::size_t n) noexcept {
  if (n < 8) return nearest_active_scan_scalar(row, active, n);
  constexpr double inf = std::numeric_limits<double>::infinity();
  const __m256d vinf = _mm256_set1_pd(inf);
  // Pass 1: lane-wise minimum with inactive lanes blended to +inf.
  __m256d vmin = vinf;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_blendv_pd(vinf, _mm256_loadu_pd(row + i),
                                       active_mask_pd_avx2(active + i));
    vmin = _mm256_min_pd(vmin, v);
  }
  const __m128d lo = _mm256_castpd256_pd128(vmin);
  const __m128d hi = _mm256_extractf128_pd(vmin, 1);
  const __m128d m2 = _mm_min_pd(lo, hi);
  double m = _mm_cvtsd_f64(_mm_min_sd(m2, _mm_unpackhi_pd(m2, m2)));
  for (; i < n; ++i) {
    const double v = active[i] != 0 ? row[i] : inf;
    m = std::min(m, v);
  }
  // Pass 2: first masked lane equal to the minimum — the strict-< scalar
  // loop keeps the lowest index among ties, and so does this scan order.
  const __m256d vm = _mm256_set1_pd(m);
  for (std::size_t j = 0; j + 4 <= n; j += 4) {
    const __m256d v = _mm256_blendv_pd(vinf, _mm256_loadu_pd(row + j),
                                       active_mask_pd_avx2(active + j));
    const int hit = _mm256_movemask_pd(_mm256_cmp_pd(v, vm, _CMP_EQ_OQ));
    if (hit != 0) {
      const auto lane = static_cast<std::size_t>(std::countr_zero(static_cast<unsigned>(hit)));
      return {static_cast<std::uint32_t>(j + lane), m};
    }
  }
  for (std::size_t j = n & ~std::size_t{3}; j < n; ++j) {
    const double v = active[j] != 0 ? row[j] : inf;
    if (v == m) return {static_cast<std::uint32_t>(j), m};
  }
  return {0, m};  // unreachable for NaN-free active lanes
}

/// q16::from_double over 4 lanes: clamp at 0, round-half-up on the Q0.16
/// grid, saturate at 0xFFFF — every branch of the scalar matches a blend.
__attribute__((target("avx2"))) inline __m256d q16_store_pd_avx2(__m256d v) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d scale = _mm256_set1_pd(65536.0);
  const __m256d t = _mm256_add_pd(_mm256_mul_pd(v, scale), _mm256_set1_pd(0.5));
  __m256d r = _mm256_mul_pd(_mm256_round_pd(t, _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC),
                            _mm256_set1_pd(1.0 / 65536.0));
  r = _mm256_blendv_pd(r, _mm256_set1_pd(65535.0 / 65536.0),
                       _mm256_cmp_pd(t, scale, _CMP_GE_OQ));
  return _mm256_blendv_pd(r, zero, _mm256_cmp_pd(v, zero, _CMP_LE_OQ));
}

/// lance_williams over 4 lanes, operation-for-operation (the library builds
/// with -ffp-contract=off, so mul/add/div/sqrt below round exactly like the
/// scalar's).
__attribute__((target("avx2"))) inline __m256d lw_avx2(__m256d d_ka, __m256d d_kb,
                                                       __m256d nk, const lw_update& u) {
  switch (u.link) {
    case lw_linkage::single:
      return _mm256_min_pd(d_ka, d_kb);
    case lw_linkage::complete:
      return _mm256_max_pd(d_ka, d_kb);
    case lw_linkage::average: {
      const __m256d na = _mm256_set1_pd(u.size_a);
      const __m256d nb = _mm256_set1_pd(u.size_b);
      return _mm256_div_pd(_mm256_add_pd(_mm256_mul_pd(na, d_ka), _mm256_mul_pd(nb, d_kb)),
                           _mm256_set1_pd(u.size_a + u.size_b));
    }
    case lw_linkage::ward: {
      const __m256d na = _mm256_set1_pd(u.size_a);
      const __m256d nb = _mm256_set1_pd(u.size_b);
      const __m256d dab = _mm256_set1_pd(u.d_ab);
      const __m256d t = _mm256_add_pd(_mm256_set1_pd(u.size_a + u.size_b), nk);
      const __m256d t1 = _mm256_mul_pd(_mm256_mul_pd(_mm256_add_pd(na, nk), d_ka), d_ka);
      const __m256d t2 = _mm256_mul_pd(_mm256_mul_pd(_mm256_add_pd(nb, nk), d_kb), d_kb);
      const __m256d t3 = _mm256_mul_pd(_mm256_mul_pd(nk, dab), dab);
      const __m256d v = _mm256_div_pd(_mm256_sub_pd(_mm256_add_pd(t1, t2), t3), t);
      // std::max(0.0, v) with its exact NaN semantics: 0 < v is false for
      // NaN, so NaN (inf - inf on degenerate rows) collapses to 0.
      const __m256d pos = _mm256_cmp_pd(_mm256_setzero_pd(), v, _CMP_LT_OQ);
      return _mm256_sqrt_pd(_mm256_and_pd(v, pos));
    }
  }
  return d_ka;
}

__attribute__((target("avx2"))) void lance_williams_row_update_avx2(
    double* keep_row, const double* gone_row, const std::uint8_t* active,
    const double* sizes, std::size_t n, const lw_update& u) noexcept {
  const bool round = u.store == lw_store::q16;
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const __m256d mask = active_mask_pd_avx2(active + k);
    if (_mm256_testz_pd(mask, mask) != 0) continue;
    const __m256d d_kb = _mm256_loadu_pd(keep_row + k);
    const __m256d d_ka = _mm256_loadu_pd(gone_row + k);
    __m256d v = lw_avx2(d_ka, d_kb, _mm256_loadu_pd(sizes + k), u);
    if (round) v = q16_store_pd_avx2(v);
    _mm256_storeu_pd(keep_row + k, _mm256_blendv_pd(d_kb, v, mask));
  }
  for (; k < n; ++k) {
    if (active[k] == 0) continue;
    const double v = lance_williams(u.link, gone_row[k], keep_row[k], u.d_ab, u.size_a,
                                    u.size_b, sizes[k]);
    keep_row[k] = round ? lw_store_q16(v) : v;
  }
}

/// 8 active bytes -> 8 all-ones/all-zeros float lanes.
__attribute__((target("avx2"))) inline __m256 active_mask_ps_avx2(const std::uint8_t* active) {
  std::uint64_t packed;
  std::memcpy(&packed, active, 8);
  const __m256i lanes =
      _mm256_cvtepu8_epi32(_mm_cvtsi64_si128(static_cast<long long>(packed)));
  return _mm256_castsi256_ps(_mm256_cmpgt_epi32(lanes, _mm256_setzero_si256()));
}

__attribute__((target("avx2"))) row_min nearest_active_scan_f32_avx2(
    const float* row, const std::uint8_t* active, std::size_t n) noexcept {
  if (n < 16) return nearest_active_scan_f32_scalar(row, active, n);
  constexpr float inf = std::numeric_limits<float>::infinity();
  const __m256 vinf = _mm256_set1_ps(inf);
  __m256 vmin = vinf;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_blendv_ps(vinf, _mm256_loadu_ps(row + i),
                                      active_mask_ps_avx2(active + i));
    vmin = _mm256_min_ps(vmin, v);
  }
  __m128 x = _mm_min_ps(_mm256_castps256_ps128(vmin), _mm256_extractf128_ps(vmin, 1));
  x = _mm_min_ps(x, _mm_movehl_ps(x, x));
  x = _mm_min_ss(x, _mm_shuffle_ps(x, x, 1));
  float m = _mm_cvtss_f32(x);
  for (; i < n; ++i) {
    const float v = active[i] != 0 ? row[i] : inf;
    m = std::min(m, v);
  }
  const __m256 vm = _mm256_set1_ps(m);
  for (std::size_t j = 0; j + 8 <= n; j += 8) {
    const __m256 v = _mm256_blendv_ps(vinf, _mm256_loadu_ps(row + j),
                                      active_mask_ps_avx2(active + j));
    const int hit = _mm256_movemask_ps(_mm256_cmp_ps(v, vm, _CMP_EQ_OQ));
    if (hit != 0) {
      const auto lane = static_cast<std::size_t>(std::countr_zero(static_cast<unsigned>(hit)));
      return {static_cast<std::uint32_t>(j + lane), static_cast<double>(m)};
    }
  }
  for (std::size_t j = n & ~std::size_t{7}; j < n; ++j) {
    const float v = active[j] != 0 ? row[j] : inf;
    if (v == m) return {static_cast<std::uint32_t>(j), static_cast<double>(m)};
  }
  return {0, static_cast<double>(m)};  // unreachable for NaN-free active lanes
}

__attribute__((target("avx2"))) void lance_williams_row_update_f32_avx2(
    float* keep_row, const float* gone_row, const std::uint8_t* active,
    const double* sizes, std::size_t n, const lw_update& u) noexcept {
  const bool minmax = u.link == lw_linkage::single || u.link == lw_linkage::complete;
  const bool round = u.store == lw_store::q16;
  std::size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    const __m256 mask = active_mask_ps_avx2(active + k);
    if (_mm256_testz_ps(mask, mask) != 0) continue;
    const __m256 kb = _mm256_loadu_ps(keep_row + k);
    const __m256 ka = _mm256_loadu_ps(gone_row + k);
    __m256 res;
    if (minmax) {
      // min/max only ever *select* one of the two float operands, so no
      // widening (and no q16 re-rounding of on-grid values) is needed.
      res = u.link == lw_linkage::single ? _mm256_min_ps(ka, kb) : _mm256_max_ps(ka, kb);
    } else {
      // Widen each half to double, run the exact double-lane update, and
      // narrow the (grid-exact) results back.
      const __m256d ka_lo = _mm256_cvtps_pd(_mm256_castps256_ps128(ka));
      const __m256d ka_hi = _mm256_cvtps_pd(_mm256_extractf128_ps(ka, 1));
      const __m256d kb_lo = _mm256_cvtps_pd(_mm256_castps256_ps128(kb));
      const __m256d kb_hi = _mm256_cvtps_pd(_mm256_extractf128_ps(kb, 1));
      __m256d r_lo = lw_avx2(ka_lo, kb_lo, _mm256_loadu_pd(sizes + k), u);
      __m256d r_hi = lw_avx2(ka_hi, kb_hi, _mm256_loadu_pd(sizes + k + 4), u);
      if (round) {
        r_lo = q16_store_pd_avx2(r_lo);
        r_hi = q16_store_pd_avx2(r_hi);
      }
      res = _mm256_set_m128(_mm256_cvtpd_ps(r_hi), _mm256_cvtpd_ps(r_lo));
    }
    _mm256_storeu_ps(keep_row + k, _mm256_blendv_ps(kb, res, mask));
  }
  for (; k < n; ++k) {
    if (active[k] == 0) continue;
    const double v = lance_williams(u.link, static_cast<double>(gone_row[k]),
                                    static_cast<double>(keep_row[k]), u.d_ab, u.size_a,
                                    u.size_b, sizes[k]);
    keep_row[k] = static_cast<float>(round ? lw_store_q16(v) : v);
  }
}

__attribute__((target("avx2"))) void bitsliced_add_avx2(std::uint64_t* planes,
                                                        std::size_t words,
                                                        std::size_t plane_count,
                                                        const std::uint64_t* bits) noexcept {
  std::size_t w = 0;
  for (; w + 4 <= words; w += 4) {
    __m256i carry = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bits + w));
    for (std::size_t p = 0; p < plane_count; ++p) {
      if (_mm256_testz_si256(carry, carry)) break;
      std::uint64_t* slot = planes + p * words + w;
      const __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(slot));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(slot), _mm256_xor_si256(a, carry));
      carry = _mm256_and_si256(a, carry);
    }
  }
  for (; w < words; ++w) {
    std::uint64_t carry = bits[w];
    for (std::size_t p = 0; p < plane_count && carry != 0; ++p) {
      std::uint64_t& a = planes[p * words + w];
      const std::uint64_t t = a ^ carry;
      carry &= a;
      a = t;
    }
  }
}

// ---------------------------------------------------------------------------
// AVX-512 kernels — native VPOPCNTQ (Ice Lake+)
// ---------------------------------------------------------------------------

__attribute__((target("avx512f,avx512vpopcntdq"))) std::size_t xor_popcount_avx512(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t words) noexcept {
  __m512i acc = _mm512_setzero_si512();
  std::size_t w = 0;
  for (; w + 8 <= words; w += 8) {
    const __m512i va = _mm512_loadu_si512(a + w);
    const __m512i vb = _mm512_loadu_si512(b + w);
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(_mm512_xor_si512(va, vb)));
  }
  std::size_t count = static_cast<std::size_t>(_mm512_reduce_add_epi64(acc));
  for (; w < words; ++w) count += static_cast<std::size_t>(std::popcount(a[w] ^ b[w]));
  return count;
}

__attribute__((target("avx512f,avx512vpopcntdq"))) std::size_t popcount_avx512(
    const std::uint64_t* a, std::size_t words) noexcept {
  __m512i acc = _mm512_setzero_si512();
  std::size_t w = 0;
  for (; w + 8 <= words; w += 8) {
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(_mm512_loadu_si512(a + w)));
  }
  std::size_t count = static_cast<std::size_t>(_mm512_reduce_add_epi64(acc));
  for (; w < words; ++w) count += static_cast<std::size_t>(std::popcount(a[w]));
  return count;
}

__attribute__((target("avx512f,avx512vpopcntdq"))) void hamming_tile_avx512(
    const std::uint64_t* const* rows, std::size_t n_rows, const std::uint64_t* const* cols,
    std::size_t n_cols, std::size_t words, std::uint32_t* counts) noexcept {
  for (std::size_t r = 0; r < n_rows; ++r) {
    for (std::size_t c = 0; c < n_cols; ++c) {
      counts[r * n_cols + c] =
          static_cast<std::uint32_t>(xor_popcount_avx512(rows[r], cols[c], words));
    }
  }
}

/// Batched horizontal reduction of four 8-lane accumulators: sums each of
/// a/b/c/d's 64-bit lanes with one unpack/shuffle tree instead of four
/// sequential _mm512_reduce_add_epi64 chains (which would spend ~3 shuffle
/// ops on port 5 *per pair* — comparable to the popcounts themselves).
/// Totals land in out[0] (a), out[1] (b), out[4] (c), out[5] (d).
__attribute__((target("avx512f"))) inline void hsum4_epi64_avx512(
    __m512i a, __m512i b, __m512i c, __m512i d, std::uint64_t* out) {
  const __m512i s_ab =
      _mm512_add_epi64(_mm512_unpacklo_epi64(a, b), _mm512_unpackhi_epi64(a, b));
  const __m512i s_cd =
      _mm512_add_epi64(_mm512_unpacklo_epi64(c, d), _mm512_unpackhi_epi64(c, d));
  // 128-bit units: lo = [ab01 ab23 cd01 cd23], hi = [ab45 ab67 cd45 cd67].
  const __m512i lo = _mm512_shuffle_i64x2(s_ab, s_cd, 0x44);
  const __m512i hi = _mm512_shuffle_i64x2(s_ab, s_cd, 0xEE);
  const __m512i t = _mm512_add_epi64(lo, hi);
  // Swap adjacent 128-bit units and add: unit 0 = [a_total, b_total],
  // unit 2 = [c_total, d_total].
  const __m512i u = _mm512_add_epi64(t, _mm512_shuffle_i64x2(t, t, 0xB1));
  _mm512_storeu_si512(out, u);
}

/// Packed tile, AVX-512, plain reduction: rows are processed four at a
/// time so every column load is shared by four outputs, each XOR word goes
/// straight through VPOPCNTQ, and the four accumulators reduce through one
/// batched shuffle tree (hsum4) instead of four serial reduce_add chains.
/// Fastest shape up to words ≈ 64 on VPOPCNTDQ hardware (popcounts are
/// ~free there; see the CSA variant below for the long-vector regime).
__attribute__((target("avx512f,avx512vpopcntdq"))) void hamming_tile_packed_avx512_plain(
    const std::uint64_t* rows, std::size_t n_rows, const std::uint64_t* cols,
    std::size_t n_cols, std::size_t words, std::uint32_t* counts) noexcept {
  const std::size_t w8 = words & ~std::size_t{7};
  alignas(64) std::uint64_t totals[8];
  std::size_t r = 0;
  for (; r + 4 <= n_rows; r += 4) {
    const std::uint64_t* r0 = rows + r * words;
    const std::uint64_t* r1 = r0 + words;
    const std::uint64_t* r2 = r1 + words;
    const std::uint64_t* r3 = r2 + words;
    std::uint32_t* out = counts + r * n_cols;
    for (std::size_t c = 0; c < n_cols; ++c) {
      const std::uint64_t* cc = cols + c * words;
      __m512i acc0 = _mm512_setzero_si512();
      __m512i acc1 = _mm512_setzero_si512();
      __m512i acc2 = _mm512_setzero_si512();
      __m512i acc3 = _mm512_setzero_si512();
      std::size_t w = 0;
      for (; w < w8; w += 8) {
        const __m512i cv = _mm512_loadu_si512(cc + w);
        acc0 = _mm512_add_epi64(
            acc0, _mm512_popcnt_epi64(_mm512_xor_si512(_mm512_loadu_si512(r0 + w), cv)));
        acc1 = _mm512_add_epi64(
            acc1, _mm512_popcnt_epi64(_mm512_xor_si512(_mm512_loadu_si512(r1 + w), cv)));
        acc2 = _mm512_add_epi64(
            acc2, _mm512_popcnt_epi64(_mm512_xor_si512(_mm512_loadu_si512(r2 + w), cv)));
        acc3 = _mm512_add_epi64(
            acc3, _mm512_popcnt_epi64(_mm512_xor_si512(_mm512_loadu_si512(r3 + w), cv)));
      }
      hsum4_epi64_avx512(acc0, acc1, acc2, acc3, totals);
      std::size_t cnt0 = static_cast<std::size_t>(totals[0]);
      std::size_t cnt1 = static_cast<std::size_t>(totals[1]);
      std::size_t cnt2 = static_cast<std::size_t>(totals[4]);
      std::size_t cnt3 = static_cast<std::size_t>(totals[5]);
      for (; w < words; ++w) {
        const std::uint64_t cw = cc[w];
        cnt0 += static_cast<std::size_t>(std::popcount(r0[w] ^ cw));
        cnt1 += static_cast<std::size_t>(std::popcount(r1[w] ^ cw));
        cnt2 += static_cast<std::size_t>(std::popcount(r2[w] ^ cw));
        cnt3 += static_cast<std::size_t>(std::popcount(r3[w] ^ cw));
      }
      out[c] = static_cast<std::uint32_t>(cnt0);
      out[n_cols + c] = static_cast<std::uint32_t>(cnt1);
      out[2 * n_cols + c] = static_cast<std::uint32_t>(cnt2);
      out[3 * n_cols + c] = static_cast<std::uint32_t>(cnt3);
    }
  }
  for (; r < n_rows; ++r) {
    const std::uint64_t* ra = rows + r * words;
    std::uint32_t* out = counts + r * n_cols;
    for (std::size_t c = 0; c < n_cols; ++c) {
      out[c] = static_cast<std::uint32_t>(xor_popcount_avx512(ra, cols + c * words, words));
    }
  }
}

/// Packed tile, AVX-512, carry-save reduction: same four-row blocking, but
/// each pair's popcount stream is compressed with VPTERNLOG full adders —
/// two XOR words fold into a weight-2 carry plane (majority, imm 0xE8) and
/// a running weight-1 `ones` plane (xor3, imm 0x96); only the carry goes
/// through VPOPCNTQ each step, halving popcount traffic, and the ones
/// plane is popcounted once per pair. Exact integer arithmetic — bit-
/// identical to the plain and scalar paths by construction.
__attribute__((target("avx512f,avx512vpopcntdq"))) void hamming_tile_packed_avx512_csa(
    const std::uint64_t* rows, std::size_t n_rows, const std::uint64_t* cols,
    std::size_t n_cols, std::size_t words, std::uint32_t* counts) noexcept {
  const std::size_t w16 = words & ~std::size_t{15};
  const std::size_t w8 = words & ~std::size_t{7};
  alignas(64) std::uint64_t totals[8];
  std::size_t r = 0;
  for (; r + 4 <= n_rows; r += 4) {
    const std::uint64_t* r0 = rows + r * words;
    const std::uint64_t* r1 = r0 + words;
    const std::uint64_t* r2 = r1 + words;
    const std::uint64_t* r3 = r2 + words;
    std::uint32_t* out = counts + r * n_cols;
    for (std::size_t c = 0; c < n_cols; ++c) {
      const std::uint64_t* cc = cols + c * words;
      __m512i ones0 = _mm512_setzero_si512(), twos0 = _mm512_setzero_si512();
      __m512i ones1 = _mm512_setzero_si512(), twos1 = _mm512_setzero_si512();
      __m512i ones2 = _mm512_setzero_si512(), twos2 = _mm512_setzero_si512();
      __m512i ones3 = _mm512_setzero_si512(), twos3 = _mm512_setzero_si512();
      std::size_t w = 0;
      for (; w < w16; w += 16) {
        const __m512i c0 = _mm512_loadu_si512(cc + w);
        const __m512i c1 = _mm512_loadu_si512(cc + w + 8);
        {
          const __m512i x0 = _mm512_xor_si512(_mm512_loadu_si512(r0 + w), c0);
          const __m512i x1 = _mm512_xor_si512(_mm512_loadu_si512(r0 + w + 8), c1);
          const __m512i carry = _mm512_ternarylogic_epi64(ones0, x0, x1, 0xE8);
          ones0 = _mm512_ternarylogic_epi64(ones0, x0, x1, 0x96);
          twos0 = _mm512_add_epi64(twos0, _mm512_popcnt_epi64(carry));
        }
        {
          const __m512i x0 = _mm512_xor_si512(_mm512_loadu_si512(r1 + w), c0);
          const __m512i x1 = _mm512_xor_si512(_mm512_loadu_si512(r1 + w + 8), c1);
          const __m512i carry = _mm512_ternarylogic_epi64(ones1, x0, x1, 0xE8);
          ones1 = _mm512_ternarylogic_epi64(ones1, x0, x1, 0x96);
          twos1 = _mm512_add_epi64(twos1, _mm512_popcnt_epi64(carry));
        }
        {
          const __m512i x0 = _mm512_xor_si512(_mm512_loadu_si512(r2 + w), c0);
          const __m512i x1 = _mm512_xor_si512(_mm512_loadu_si512(r2 + w + 8), c1);
          const __m512i carry = _mm512_ternarylogic_epi64(ones2, x0, x1, 0xE8);
          ones2 = _mm512_ternarylogic_epi64(ones2, x0, x1, 0x96);
          twos2 = _mm512_add_epi64(twos2, _mm512_popcnt_epi64(carry));
        }
        {
          const __m512i x0 = _mm512_xor_si512(_mm512_loadu_si512(r3 + w), c0);
          const __m512i x1 = _mm512_xor_si512(_mm512_loadu_si512(r3 + w + 8), c1);
          const __m512i carry = _mm512_ternarylogic_epi64(ones3, x0, x1, 0xE8);
          ones3 = _mm512_ternarylogic_epi64(ones3, x0, x1, 0x96);
          twos3 = _mm512_add_epi64(twos3, _mm512_popcnt_epi64(carry));
        }
      }
      __m512i acc0 =
          _mm512_add_epi64(_mm512_slli_epi64(twos0, 1), _mm512_popcnt_epi64(ones0));
      __m512i acc1 =
          _mm512_add_epi64(_mm512_slli_epi64(twos1, 1), _mm512_popcnt_epi64(ones1));
      __m512i acc2 =
          _mm512_add_epi64(_mm512_slli_epi64(twos2, 1), _mm512_popcnt_epi64(ones2));
      __m512i acc3 =
          _mm512_add_epi64(_mm512_slli_epi64(twos3, 1), _mm512_popcnt_epi64(ones3));
      for (; w < w8; w += 8) {
        const __m512i cv = _mm512_loadu_si512(cc + w);
        acc0 = _mm512_add_epi64(
            acc0, _mm512_popcnt_epi64(_mm512_xor_si512(_mm512_loadu_si512(r0 + w), cv)));
        acc1 = _mm512_add_epi64(
            acc1, _mm512_popcnt_epi64(_mm512_xor_si512(_mm512_loadu_si512(r1 + w), cv)));
        acc2 = _mm512_add_epi64(
            acc2, _mm512_popcnt_epi64(_mm512_xor_si512(_mm512_loadu_si512(r2 + w), cv)));
        acc3 = _mm512_add_epi64(
            acc3, _mm512_popcnt_epi64(_mm512_xor_si512(_mm512_loadu_si512(r3 + w), cv)));
      }
      hsum4_epi64_avx512(acc0, acc1, acc2, acc3, totals);
      std::size_t cnt0 = static_cast<std::size_t>(totals[0]);
      std::size_t cnt1 = static_cast<std::size_t>(totals[1]);
      std::size_t cnt2 = static_cast<std::size_t>(totals[4]);
      std::size_t cnt3 = static_cast<std::size_t>(totals[5]);
      for (; w < words; ++w) {
        const std::uint64_t cw = cc[w];
        cnt0 += static_cast<std::size_t>(std::popcount(r0[w] ^ cw));
        cnt1 += static_cast<std::size_t>(std::popcount(r1[w] ^ cw));
        cnt2 += static_cast<std::size_t>(std::popcount(r2[w] ^ cw));
        cnt3 += static_cast<std::size_t>(std::popcount(r3[w] ^ cw));
      }
      out[c] = static_cast<std::uint32_t>(cnt0);
      out[n_cols + c] = static_cast<std::uint32_t>(cnt1);
      out[2 * n_cols + c] = static_cast<std::uint32_t>(cnt2);
      out[3 * n_cols + c] = static_cast<std::uint32_t>(cnt3);
    }
  }
  for (; r < n_rows; ++r) {
    const std::uint64_t* ra = rows + r * words;
    std::uint32_t* out = counts + r * n_cols;
    for (std::size_t c = 0; c < n_cols; ++c) {
      out[c] = static_cast<std::uint32_t>(xor_popcount_avx512(ra, cols + c * words, words));
    }
  }
}

/// Measured crossover on the Ice Lake dev container (bench_kernels,
/// packed_tile section): with native VPOPCNTQ the plain reduction beats the
/// carry-save ladder up to words ≈ 64 (dim 4096) — popcounts are nearly
/// free while the ternlog ladder adds port pressure — and the CSA pulls
/// ahead from words ≈ 128 (dim 8192), where halving the popcount stream
/// dominates. Both are exact, so the split is pure dispatch.
constexpr std::size_t avx512_csa_min_words = 128;

void hamming_tile_packed_avx512(const std::uint64_t* rows, std::size_t n_rows,
                                const std::uint64_t* cols, std::size_t n_cols,
                                std::size_t words, std::uint32_t* counts) noexcept {
  if (words >= avx512_csa_min_words) {
    hamming_tile_packed_avx512_csa(rows, n_rows, cols, n_cols, words, counts);
  } else {
    hamming_tile_packed_avx512_plain(rows, n_rows, cols, n_cols, words, counts);
  }
}

/// k-select, AVX-512: 16-lane unsigned compare-mask against the running
/// k-th best count. Same superset-prune contract as the AVX2 variant (the
/// threshold only tightens inside a block, so a stale per-block threshold
/// still never skips a qualifying lane), same bit-identical output.
__attribute__((target("avx512f"))) std::size_t k_select_avx512(const std::uint32_t* counts,
                                                               std::size_t n, std::size_t k,
                                                               select_entry* out) noexcept {
  const std::size_t cap = std::min(k, n);
  if (cap == 0) return 0;
  std::size_t size = 0;
  std::size_t i = 0;
  for (; i < n && size < cap; ++i) {
    kselect_insert(out, size, cap, counts[i], static_cast<std::uint32_t>(i));
  }
  for (; i + 16 <= n; i += 16) {
    const __m512i thr = _mm512_set1_epi32(static_cast<int>(out[cap - 1].count));
    const __m512i v = _mm512_loadu_si512(counts + i);
    unsigned hits = _mm512_cmple_epu32_mask(v, thr);
    while (hits != 0) {
      const auto lane = static_cast<std::size_t>(std::countr_zero(hits));
      hits &= hits - 1;
      kselect_insert(out, size, cap, counts[i + lane],
                     static_cast<std::uint32_t>(i + lane));
    }
  }
  for (; i < n; ++i) {
    kselect_insert(out, size, cap, counts[i], static_cast<std::uint32_t>(i));
  }
  return size;
}

/// 8 active bytes -> an 8-lane predicate mask.
__attribute__((target("avx512f"))) inline __mmask8 active_mask_avx512(
    const std::uint8_t* active) {
  const __m128i bytes = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(active));
  return _mm512_cmpneq_epi64_mask(_mm512_cvtepu8_epi64(bytes), _mm512_setzero_si512());
}

__attribute__((target("avx512f"))) row_min nearest_active_scan_avx512(
    const double* row, const std::uint8_t* active, std::size_t n) noexcept {
  if (n < 16) return nearest_active_scan_scalar(row, active, n);
  constexpr double inf = std::numeric_limits<double>::infinity();
  const __m512d vinf = _mm512_set1_pd(inf);
  __m512d vmin = vinf;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d v =
        _mm512_mask_loadu_pd(vinf, active_mask_avx512(active + i), row + i);
    vmin = _mm512_min_pd(vmin, v);
  }
  double m = _mm512_reduce_min_pd(vmin);
  for (; i < n; ++i) {
    const double v = active[i] != 0 ? row[i] : inf;
    m = std::min(m, v);
  }
  const __m512d vm = _mm512_set1_pd(m);
  for (std::size_t j = 0; j + 8 <= n; j += 8) {
    const __m512d v =
        _mm512_mask_loadu_pd(vinf, active_mask_avx512(active + j), row + j);
    const __mmask8 hit = _mm512_cmp_pd_mask(v, vm, _CMP_EQ_OQ);
    if (hit != 0) {
      const auto lane = static_cast<std::size_t>(std::countr_zero(static_cast<unsigned>(hit)));
      return {static_cast<std::uint32_t>(j + lane), m};
    }
  }
  for (std::size_t j = n & ~std::size_t{7}; j < n; ++j) {
    const double v = active[j] != 0 ? row[j] : inf;
    if (v == m) return {static_cast<std::uint32_t>(j), m};
  }
  return {0, m};  // unreachable for NaN-free active lanes
}

/// q16::from_double over 8 lanes (see the AVX2 variant for the mapping of
/// scalar branches to mask moves).
__attribute__((target("avx512f"))) inline __m512d q16_store_pd_avx512(__m512d v) {
  const __m512d scale = _mm512_set1_pd(65536.0);
  const __m512d t = _mm512_add_pd(_mm512_mul_pd(v, scale), _mm512_set1_pd(0.5));
  __m512d r =
      _mm512_mul_pd(_mm512_roundscale_pd(t, _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC),
                    _mm512_set1_pd(1.0 / 65536.0));
  r = _mm512_mask_mov_pd(r, _mm512_cmp_pd_mask(t, scale, _CMP_GE_OQ),
                         _mm512_set1_pd(65535.0 / 65536.0));
  return _mm512_mask_mov_pd(r, _mm512_cmp_pd_mask(v, _mm512_setzero_pd(), _CMP_LE_OQ),
                            _mm512_setzero_pd());
}

__attribute__((target("avx512f"))) inline __m512d lw_avx512(__m512d d_ka, __m512d d_kb,
                                                            __m512d nk,
                                                            const lw_update& u) {
  switch (u.link) {
    case lw_linkage::single:
      return _mm512_min_pd(d_ka, d_kb);
    case lw_linkage::complete:
      return _mm512_max_pd(d_ka, d_kb);
    case lw_linkage::average: {
      const __m512d na = _mm512_set1_pd(u.size_a);
      const __m512d nb = _mm512_set1_pd(u.size_b);
      return _mm512_div_pd(_mm512_add_pd(_mm512_mul_pd(na, d_ka), _mm512_mul_pd(nb, d_kb)),
                           _mm512_set1_pd(u.size_a + u.size_b));
    }
    case lw_linkage::ward: {
      const __m512d na = _mm512_set1_pd(u.size_a);
      const __m512d nb = _mm512_set1_pd(u.size_b);
      const __m512d dab = _mm512_set1_pd(u.d_ab);
      const __m512d t = _mm512_add_pd(_mm512_set1_pd(u.size_a + u.size_b), nk);
      const __m512d t1 = _mm512_mul_pd(_mm512_mul_pd(_mm512_add_pd(na, nk), d_ka), d_ka);
      const __m512d t2 = _mm512_mul_pd(_mm512_mul_pd(_mm512_add_pd(nb, nk), d_kb), d_kb);
      const __m512d t3 = _mm512_mul_pd(_mm512_mul_pd(nk, dab), dab);
      const __m512d v = _mm512_div_pd(_mm512_sub_pd(_mm512_add_pd(t1, t2), t3), t);
      const __mmask8 pos = _mm512_cmp_pd_mask(_mm512_setzero_pd(), v, _CMP_LT_OQ);
      return _mm512_sqrt_pd(_mm512_maskz_mov_pd(pos, v));
    }
  }
  return d_ka;
}

__attribute__((target("avx512f"))) void lance_williams_row_update_avx512(
    double* keep_row, const double* gone_row, const std::uint8_t* active,
    const double* sizes, std::size_t n, const lw_update& u) noexcept {
  const bool round = u.store == lw_store::q16;
  std::size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    const __m128i bytes = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(active + k));
    const __mmask8 mask =
        _mm512_cmpneq_epi64_mask(_mm512_cvtepu8_epi64(bytes), _mm512_setzero_si512());
    if (mask == 0) continue;
    const __m512d d_kb = _mm512_loadu_pd(keep_row + k);
    const __m512d d_ka = _mm512_loadu_pd(gone_row + k);
    __m512d v = lw_avx512(d_ka, d_kb, _mm512_loadu_pd(sizes + k), u);
    if (round) v = q16_store_pd_avx512(v);
    _mm512_mask_storeu_pd(keep_row + k, mask, v);
  }
  for (; k < n; ++k) {
    if (active[k] == 0) continue;
    const double v = lance_williams(u.link, gone_row[k], keep_row[k], u.d_ab, u.size_a,
                                    u.size_b, sizes[k]);
    keep_row[k] = round ? lw_store_q16(v) : v;
  }
}

/// 16 active bytes -> a 16-lane predicate mask.
__attribute__((target("avx512f"))) inline __mmask16 active_mask16_avx512(
    const std::uint8_t* active) {
  const __m128i bytes = _mm_loadu_si128(reinterpret_cast<const __m128i*>(active));
  return _mm512_cmpneq_epi32_mask(_mm512_cvtepu8_epi32(bytes), _mm512_setzero_si512());
}

__attribute__((target("avx512f"))) row_min nearest_active_scan_f32_avx512(
    const float* row, const std::uint8_t* active, std::size_t n) noexcept {
  if (n < 32) return nearest_active_scan_f32_scalar(row, active, n);
  constexpr float inf = std::numeric_limits<float>::infinity();
  const __m512 vinf = _mm512_set1_ps(inf);
  __m512 vmin = vinf;
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 v = _mm512_mask_loadu_ps(vinf, active_mask16_avx512(active + i), row + i);
    vmin = _mm512_min_ps(vmin, v);
  }
  float m = _mm512_reduce_min_ps(vmin);
  for (; i < n; ++i) {
    const float v = active[i] != 0 ? row[i] : inf;
    m = std::min(m, v);
  }
  const __m512 vm = _mm512_set1_ps(m);
  for (std::size_t j = 0; j + 16 <= n; j += 16) {
    const __m512 v = _mm512_mask_loadu_ps(vinf, active_mask16_avx512(active + j), row + j);
    const __mmask16 hit = _mm512_cmp_ps_mask(v, vm, _CMP_EQ_OQ);
    if (hit != 0) {
      const auto lane = static_cast<std::size_t>(std::countr_zero(static_cast<unsigned>(hit)));
      return {static_cast<std::uint32_t>(j + lane), static_cast<double>(m)};
    }
  }
  for (std::size_t j = n & ~std::size_t{15}; j < n; ++j) {
    const float v = active[j] != 0 ? row[j] : inf;
    if (v == m) return {static_cast<std::uint32_t>(j), static_cast<double>(m)};
  }
  return {0, static_cast<double>(m)};  // unreachable for NaN-free active lanes
}

__attribute__((target("avx512f"))) void lance_williams_row_update_f32_avx512(
    float* keep_row, const float* gone_row, const std::uint8_t* active,
    const double* sizes, std::size_t n, const lw_update& u) noexcept {
  const bool round = u.store == lw_store::q16;
  std::size_t k = 0;
  if (u.link == lw_linkage::single || u.link == lw_linkage::complete) {
    // min/max only ever *select* one of the two float operands, so no
    // widening (and no q16 re-rounding of on-grid values) is needed.
    for (; k + 16 <= n; k += 16) {
      const __mmask16 mask = active_mask16_avx512(active + k);
      if (mask == 0) continue;
      const __m512 kb = _mm512_loadu_ps(keep_row + k);
      const __m512 ka = _mm512_loadu_ps(gone_row + k);
      const __m512 res =
          u.link == lw_linkage::single ? _mm512_min_ps(ka, kb) : _mm512_max_ps(ka, kb);
      _mm512_mask_storeu_ps(keep_row + k, mask, res);
    }
  } else {
    // Widen 8 lanes to a 512-bit double vector, run the exact double-lane
    // update, and narrow the (grid-exact) results back.
    for (; k + 8 <= n; k += 8) {
      const __mmask8 mask = active_mask_avx512(active + k);
      if (mask == 0) continue;
      const __m256 kb = _mm256_loadu_ps(keep_row + k);
      const __m512d ka_d = _mm512_cvtps_pd(_mm256_loadu_ps(gone_row + k));
      const __m512d kb_d = _mm512_cvtps_pd(kb);
      __m512d r = lw_avx512(ka_d, kb_d, _mm512_loadu_pd(sizes + k), u);
      if (round) r = q16_store_pd_avx512(r);
      // Masked 256-bit stores need AVX-512VL; blend in the AVX2 domain
      // instead so plain avx512f machines stay supported.
      const __m256 res = _mm512_cvtpd_ps(r);
      _mm256_storeu_ps(keep_row + k,
                       _mm256_blendv_ps(kb, res, active_mask_ps_avx2(active + k)));
    }
  }
  for (; k < n; ++k) {
    if (active[k] == 0) continue;
    const double v = lance_williams(u.link, static_cast<double>(gone_row[k]),
                                    static_cast<double>(keep_row[k]), u.d_ab, u.size_a,
                                    u.size_b, sizes[k]);
    keep_row[k] = static_cast<float>(round ? lw_store_q16(v) : v);
  }
}

#endif  // SPECHD_X86_KERNELS

// ---------------------------------------------------------------------------
// runtime dispatch
// ---------------------------------------------------------------------------

struct kernel_table {
  std::size_t (*popcount)(const std::uint64_t*, std::size_t) noexcept;
  std::size_t (*xor_popcount)(const std::uint64_t*, const std::uint64_t*,
                              std::size_t) noexcept;
  void (*hamming_tile)(const std::uint64_t* const*, std::size_t, const std::uint64_t* const*,
                       std::size_t, std::size_t, std::uint32_t*) noexcept;
  void (*hamming_tile_packed)(const std::uint64_t*, std::size_t, const std::uint64_t*,
                              std::size_t, std::size_t, std::uint32_t*) noexcept;
  std::size_t (*k_select)(const std::uint32_t*, std::size_t, std::size_t,
                          select_entry*) noexcept;
  void (*bitsliced_add)(std::uint64_t*, std::size_t, std::size_t,
                        const std::uint64_t*) noexcept;
  row_min (*nearest_active_scan)(const double*, const std::uint8_t*,
                                 std::size_t) noexcept;
  void (*lw_row_update)(double*, const double*, const std::uint8_t*, const double*,
                        std::size_t, const lw_update&) noexcept;
  row_min (*nearest_active_scan_f32)(const float*, const std::uint8_t*,
                                     std::size_t) noexcept;
  void (*lw_row_update_f32)(float*, const float*, const std::uint8_t*, const double*,
                            std::size_t, const lw_update&) noexcept;
};

constexpr kernel_table scalar_table{popcount_scalar,
                                    xor_popcount_scalar,
                                    hamming_tile_scalar,
                                    hamming_tile_packed_scalar,
                                    k_select_scalar,
                                    bitsliced_add_scalar,
                                    nearest_active_scan_scalar,
                                    lance_williams_row_update_scalar,
                                    nearest_active_scan_f32_scalar,
                                    lance_williams_row_update_f32_scalar};

kernel_table table_for(variant v) noexcept {
#if SPECHD_X86_KERNELS
  switch (v) {
    case variant::avx2:
      return {popcount_avx2,           xor_popcount_avx2,
              hamming_tile_avx2,       hamming_tile_packed_avx2,
              k_select_avx2,
              bitsliced_add_avx2,
              nearest_active_scan_avx2, lance_williams_row_update_avx2,
              nearest_active_scan_f32_avx2, lance_williams_row_update_f32_avx2};
    case variant::avx512:
      // The bit-sliced ripple is bound by carry shortening, not lane width;
      // AVX2 add alongside the 512-bit popcount datapath measures fastest.
      return {popcount_avx512,          xor_popcount_avx512,
              hamming_tile_avx512,      hamming_tile_packed_avx512,
              k_select_avx512,
              bitsliced_add_avx2,
              nearest_active_scan_avx512, lance_williams_row_update_avx512,
              nearest_active_scan_f32_avx512, lance_williams_row_update_f32_avx512};
    case variant::scalar:
      break;
  }
#else
  (void)v;
#endif
  return scalar_table;
}

struct dispatch_state {
  variant active = variant::scalar;
  kernel_table table = scalar_table;
};

dispatch_state& state() noexcept {
  static dispatch_state s{best_supported(), table_for(best_supported())};
  return s;
}

}  // namespace

const char* variant_name(variant v) noexcept {
  switch (v) {
    case variant::scalar: return "scalar";
    case variant::avx2: return "avx2";
    case variant::avx512: return "avx512";
  }
  return "unknown";
}

bool supported(variant v) noexcept {
  if (v == variant::scalar) return true;
#if SPECHD_X86_KERNELS
  if (v == variant::avx2) return __builtin_cpu_supports("avx2") != 0;
  if (v == variant::avx512) {
    return __builtin_cpu_supports("avx512f") != 0 &&
           __builtin_cpu_supports("avx512vpopcntdq") != 0;
  }
#endif
  return false;
}

variant best_supported() noexcept {
  if (supported(variant::avx512)) return variant::avx512;
  if (supported(variant::avx2)) return variant::avx2;
  return variant::scalar;
}

variant active() noexcept { return state().active; }

void set_active(variant v) {
  SPECHD_EXPECTS(supported(v));
  state().active = v;
  state().table = table_for(v);
}

variant parse_variant(const std::string& name) {
  if (name == "auto") return best_supported();
  for (const variant v : {variant::scalar, variant::avx2, variant::avx512}) {
    if (name == variant_name(v)) return v;
  }
  throw logic_error("unknown kernel variant: " + name);
}

std::size_t popcount(const std::uint64_t* a, std::size_t words) noexcept {
  return state().table.popcount(a, words);
}

std::size_t xor_popcount(const std::uint64_t* a, const std::uint64_t* b,
                         std::size_t words) noexcept {
  return state().table.xor_popcount(a, b, words);
}

void hamming_tile(const std::uint64_t* const* rows, std::size_t n_rows,
                  const std::uint64_t* const* cols, std::size_t n_cols, std::size_t words,
                  std::uint32_t* counts) noexcept {
  state().table.hamming_tile(rows, n_rows, cols, n_cols, words, counts);
}

void pack_operands(const std::uint64_t* const* srcs, std::size_t n, std::size_t words,
                   std::uint64_t* dst) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    std::memcpy(dst + i * words, srcs[i], words * sizeof(std::uint64_t));
  }
}

void hamming_tile_packed(const std::uint64_t* rows, std::size_t n_rows,
                         const std::uint64_t* cols, std::size_t n_cols, std::size_t words,
                         std::uint32_t* counts) noexcept {
  state().table.hamming_tile_packed(rows, n_rows, cols, n_cols, words, counts);
}

std::size_t k_select(const std::uint32_t* counts, std::size_t n, std::size_t k,
                     select_entry* out) noexcept {
  return state().table.k_select(counts, n, k, out);
}

row_min nearest_active_scan(const double* row, const std::uint8_t* active,
                            std::size_t n) noexcept {
  return state().table.nearest_active_scan(row, active, n);
}

row_min nearest_active_scan(const float* row, const std::uint8_t* active,
                            std::size_t n) noexcept {
  return state().table.nearest_active_scan_f32(row, active, n);
}

void lance_williams_row_update(double* keep_row, const double* gone_row,
                               const std::uint8_t* active, const double* sizes,
                               std::size_t n, const lw_update& u) noexcept {
  state().table.lw_row_update(keep_row, gone_row, active, sizes, n, u);
}

void lance_williams_row_update(float* keep_row, const float* gone_row,
                               const std::uint8_t* active, const double* sizes,
                               std::size_t n, const lw_update& u) noexcept {
  state().table.lw_row_update_f32(keep_row, gone_row, active, sizes, n, u);
}

// ---------------------------------------------------------------------------
// bitsliced_accumulator
// ---------------------------------------------------------------------------

void bitsliced_accumulator::reset(std::size_t words) {
  words_ = words;
  adds_ = 0;
  planes_.clear();
}

void bitsliced_accumulator::ensure_planes(std::size_t planes) {
  if (plane_count() < planes) planes_.resize(planes * words_, 0);
}

void bitsliced_accumulator::reserve_adds(std::uint64_t adds) {
  if (adds > 0) ensure_planes(static_cast<std::size_t>(std::bit_width(adds)));
}

void bitsliced_accumulator::add(const std::uint64_t* bits) {
  SPECHD_EXPECTS(words_ > 0);
  ++adds_;
  ensure_planes(static_cast<std::size_t>(std::bit_width(adds_)));
  state().table.bitsliced_add(planes_.data(), words_, plane_count(), bits);
}

void bitsliced_accumulator::majority(const std::uint64_t* tie_bits,
                                     std::uint64_t* out) const {
  const std::uint64_t half = adds_ / 2;
  const bool even = (adds_ % 2) == 0;
  const std::size_t planes = plane_count();
  // MSB-first bit-sliced comparison of each dimension's count against the
  // constant `half`: gt accumulates strict greater-than, eq tracks exact
  // equality; ties (only reachable when the add count is even) take the
  // corresponding tie_bits bit, matching the scalar reference exactly.
  for (std::size_t w = 0; w < words_; ++w) {
    std::uint64_t gt = 0;
    std::uint64_t eq = ~0ULL;
    for (std::size_t p = planes; p-- > 0;) {
      const std::uint64_t a = planes_[p * words_ + w];
      const std::uint64_t h = ((half >> p) & 1ULL) ? ~0ULL : 0ULL;
      gt |= eq & a & ~h;
      eq &= ~(a ^ h);
    }
    out[w] = gt | (even ? (eq & tie_bits[w]) : 0ULL);
  }
}

std::uint64_t bitsliced_accumulator::count_at(std::size_t dim) const {
  SPECHD_EXPECTS(dim < words_ * 64);
  const std::size_t w = dim / 64;
  const std::size_t bit = dim % 64;
  std::uint64_t count = 0;
  for (std::size_t p = 0; p < plane_count(); ++p) {
    count |= ((planes_[p * words_ + w] >> bit) & 1ULL) << p;
  }
  return count;
}

}  // namespace spechd::hdc::kernels
