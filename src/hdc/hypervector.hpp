// Binary hypervector: the fundamental HDC datatype (Sec. II-B, III-B).
//
// SpecHD encodes each spectrum into a D_hv-dimensional binary vector
// (D_hv = 2048 in the paper). We bit-pack into 64-bit words so XOR/popcount
// map directly onto both CPU instructions and the FPGA's "fast unrolled XOR
// and efficient population count" modules (Sec. III-C).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace spechd::hdc {

class hypervector {
public:
  hypervector() = default;

  /// Zero vector of `dim` bits. dim must be a multiple of 64 (hardware word
  /// alignment; the paper's 2048 satisfies this).
  explicit hypervector(std::size_t dim) : dim_(dim), words_((dim + 63) / 64, 0) {
    SPECHD_EXPECTS(dim > 0 && dim % 64 == 0);
  }

  /// Random dense vector (each bit i.i.d. fair coin) from `rng`.
  static hypervector random(std::size_t dim, xoshiro256ss& rng);

  std::size_t dim() const noexcept { return dim_; }
  std::size_t word_count() const noexcept { return words_.size(); }
  std::span<const std::uint64_t> words() const noexcept { return words_; }
  std::span<std::uint64_t> words() noexcept { return words_; }

  bool test(std::size_t bit) const noexcept {
    return (words_[bit / 64] >> (bit % 64)) & 1ULL;
  }
  void set(std::size_t bit) noexcept { words_[bit / 64] |= 1ULL << (bit % 64); }
  void reset(std::size_t bit) noexcept { words_[bit / 64] &= ~(1ULL << (bit % 64)); }
  void flip(std::size_t bit) noexcept { words_[bit / 64] ^= 1ULL << (bit % 64); }
  void assign(std::size_t bit, bool value) noexcept {
    value ? set(bit) : reset(bit);
  }

  /// Number of set bits.
  std::size_t popcount() const noexcept;

  /// In-place XOR (binding). Dimensions must match.
  hypervector& operator^=(const hypervector& other);

  friend hypervector operator^(hypervector a, const hypervector& b) {
    a ^= b;
    return a;
  }

  friend bool operator==(const hypervector&, const hypervector&) = default;

private:
  std::size_t dim_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Hamming distance between equal-dimension vectors (number of differing
/// bits). This is the FPGA's XOR + popcount datapath.
std::size_t hamming(const hypervector& a, const hypervector& b);

/// Normalised Hamming distance in [0, 1].
double hamming_normalized(const hypervector& a, const hypervector& b);

}  // namespace spechd::hdc
