#include "hdc/item_memory.hpp"

#include <algorithm>
#include <cstdlib>
#include <numeric>

namespace spechd::hdc {

id_memory::id_memory(std::size_t dim, std::size_t count, std::uint64_t seed) : dim_(dim) {
  SPECHD_EXPECTS(count > 0);
  xoshiro256ss rng(seed ^ 0x1D1D1D1D1D1D1D1DULL);
  vectors_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    vectors_.push_back(hypervector::random(dim, rng));
  }
}

level_memory::level_memory(std::size_t dim, std::size_t levels, std::uint64_t seed)
    : dim_(dim) {
  SPECHD_EXPECTS(levels >= 2);
  xoshiro256ss rng(seed ^ 0x7E7E7E7E7E7E7E7EULL);

  // Random flip order over all D dimensions.
  std::vector<std::uint32_t> order(dim);
  std::iota(order.begin(), order.end(), 0U);
  for (std::size_t i = dim; i > 1; --i) {
    std::swap(order[i - 1], order[rng.bounded(i)]);
  }

  hypervector base = hypervector::random(dim, rng);
  vectors_.reserve(levels);
  flip_counts_.reserve(levels);

  const double step = static_cast<double>(dim) / 2.0 / static_cast<double>(levels - 1);
  hypervector current = base;
  std::size_t flipped = 0;
  for (std::size_t level = 0; level < levels; ++level) {
    const auto target = static_cast<std::size_t>(step * static_cast<double>(level) + 0.5);
    while (flipped < target && flipped < dim) {
      current.flip(order[flipped]);
      ++flipped;
    }
    vectors_.push_back(current);
    flip_counts_.push_back(flipped);
  }
}

std::size_t level_memory::expected_hamming(std::size_t a, std::size_t b) const noexcept {
  const auto fa = flip_counts_[std::min(a, flip_counts_.size() - 1)];
  const auto fb = flip_counts_[std::min(b, flip_counts_.size() - 1)];
  return fa > fb ? fa - fb : fb - fa;
}

}  // namespace spechd::hdc
