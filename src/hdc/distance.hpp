// Condensed distance matrices over hypervectors (Sec. III-C).
//
// "To conserve storage resources, only the lower triangular part of the
//  distance matrix is retained, capitalizing on its symmetry. Furthermore,
//  the use of 16-bit fixed-point arithmetic results in a significant
//  reduction in memory footprint."
//
// We provide a condensed (strictly-lower-triangular, row-major) matrix
// templated on the element type: float for the reference path, q16 for the
// FPGA-faithful path. Entry (i, j), i > j lives at i*(i-1)/2 + j.
#pragma once

#include <cstdint>
#include <vector>

#include "hdc/hypervector.hpp"
#include "util/fixed_point.hpp"

namespace spechd {
class thread_pool;
}

namespace spechd::hdc {

/// Condensed pairwise distance matrix for n items.
template <typename T>
class condensed_matrix {
public:
  condensed_matrix() = default;

  explicit condensed_matrix(std::size_t n, T init = T{})
      : n_(n), data_(n < 2 ? 0 : n * (n - 1) / 2, init) {}

  std::size_t size() const noexcept { return n_; }
  std::size_t entry_count() const noexcept { return data_.size(); }

  static std::size_t index_of(std::size_t i, std::size_t j) noexcept {
    // Requires i > j; callers use at() which normalises.
    return i * (i - 1) / 2 + j;
  }

  T& at(std::size_t i, std::size_t j) {
    SPECHD_EXPECTS(i != j && i < n_ && j < n_);
    return i > j ? data_[index_of(i, j)] : data_[index_of(j, i)];
  }
  const T& at(std::size_t i, std::size_t j) const {
    SPECHD_EXPECTS(i != j && i < n_ && j < n_);
    return i > j ? data_[index_of(i, j)] : data_[index_of(j, i)];
  }

  /// Raw storage (benches report bytes; serialisation uses it too). The
  /// mutable view lets the tile kernels write blocks without per-entry
  /// bounds checks; entry (i, j), i > j lives at index_of(i, j).
  const std::vector<T>& data() const noexcept { return data_; }
  std::vector<T>& data() noexcept { return data_; }
  std::size_t bytes() const noexcept { return data_.size() * sizeof(T); }

private:
  std::size_t n_ = 0;
  std::vector<T> data_;
};

using distance_matrix_f32 = condensed_matrix<float>;
using distance_matrix_q16 = condensed_matrix<q16>;

/// Computes the full condensed matrix of normalised Hamming distances.
///
/// Internally tiled through the dispatched XOR+popcount kernels
/// (hdc::kernels); when `pool` is non-null the block rows are distributed
/// across it, one task per block row, writing disjoint output ranges — the
/// result is bit-identical regardless of thread count or kernel variant.
distance_matrix_f32 pairwise_hamming_f32(const std::vector<hypervector>& hvs,
                                         spechd::thread_pool* pool = nullptr);

/// Same in Q0.16 fixed point (the FPGA layout). Max per-entry quantisation
/// error is q16::epsilon().
distance_matrix_q16 pairwise_hamming_q16(const std::vector<hypervector>& hvs,
                                         spechd::thread_pool* pool = nullptr);

}  // namespace spechd::hdc
