// ID-Level encoder (Sec. III-B, Eq. 2):
//
//   spectra_i = majority( sum over peaks (ID[mz_bin] XOR L[level]) )
//
// Each (m/z, intensity) pair binds its ID and Level vectors with XOR; the
// bound vectors are accumulated per dimension and thresholded by the
// pointwise majority function into the final binary spectrum hypervector.
//
// Ties (possible when the peak count is even) are broken by a fixed,
// seed-derived tiebreaker vector so encoding stays deterministic — the
// hardware uses the carry-out of its accumulator tree the same way.
#pragma once

#include <cstdint>
#include <vector>

#include "hdc/item_memory.hpp"
#include "preprocess/quantize.hpp"

namespace spechd {
class thread_pool;
}

namespace spechd::hdc {

struct encoder_config {
  std::size_t dim = 2048;       ///< D_hv (paper value)
  std::uint64_t seed = 0xC0FFEE;  ///< item-memory seed
};

/// Encodes quantised spectra into binary hypervectors. The item memories
/// are built once per (config, f, q) and reused across buckets.
class id_level_encoder {
public:
  /// f = number of m/z bins (ID vectors), q = number of intensity levels.
  id_level_encoder(const encoder_config& config, std::size_t mz_bins,
                   std::size_t intensity_levels);

  std::size_t dim() const noexcept { return config_.dim; }
  const id_memory& ids() const noexcept { return ids_; }
  const level_memory& levels() const noexcept { return levels_; }
  /// Deterministic tie-break donor for even peak counts (seed-derived).
  const hypervector& tiebreak() const noexcept { return tiebreak_; }

  /// Encodes one quantised spectrum (Eq. 2). The per-dimension accumulation
  /// runs through the bit-sliced carry-save counter in hdc::kernels instead
  /// of a per-set-bit scatter; results are bit-identical (same tie-break).
  hypervector encode(const preprocess::quantized_spectrum& s) const;

  /// Encodes a batch; order preserved. When `pool` is non-null, spectra are
  /// distributed across it (output order and bits are unchanged).
  std::vector<hypervector> encode_batch(
      const std::vector<preprocess::quantized_spectrum>& spectra,
      spechd::thread_pool* pool = nullptr) const;

private:
  encoder_config config_;
  id_memory ids_;
  level_memory levels_;
  hypervector tiebreak_;
};

/// Compression factor of HV storage vs raw peak lists (Fig. 6b): raw bytes
/// of all (f64 m/z, f32 intensity) peaks divided by D_hv/8 bytes per HV.
double compression_factor(std::size_t total_raw_peak_bytes, std::size_t spectrum_count,
                          std::size_t dim) noexcept;

}  // namespace spechd::hdc
