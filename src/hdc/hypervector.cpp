#include "hdc/hypervector.hpp"

#include "hdc/cpu_kernels.hpp"

namespace spechd::hdc {

hypervector hypervector::random(std::size_t dim, xoshiro256ss& rng) {
  hypervector hv(dim);
  for (auto& w : hv.words_) w = rng();
  return hv;
}

std::size_t hypervector::popcount() const noexcept {
  return kernels::popcount(words_.data(), words_.size());
}

hypervector& hypervector::operator^=(const hypervector& other) {
  SPECHD_EXPECTS(dim_ == other.dim_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
  return *this;
}

std::size_t hamming(const hypervector& a, const hypervector& b) {
  SPECHD_EXPECTS(a.dim() == b.dim());
  return kernels::xor_popcount(a.words().data(), b.words().data(), a.word_count());
}

double hamming_normalized(const hypervector& a, const hypervector& b) {
  return static_cast<double>(hamming(a, b)) / static_cast<double>(a.dim());
}

}  // namespace spechd::hdc
