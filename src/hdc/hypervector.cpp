#include "hdc/hypervector.hpp"

#include <bit>

namespace spechd::hdc {

hypervector hypervector::random(std::size_t dim, xoshiro256ss& rng) {
  hypervector hv(dim);
  for (auto& w : hv.words_) w = rng();
  return hv;
}

std::size_t hypervector::popcount() const noexcept {
  std::size_t count = 0;
  for (const auto w : words_) count += static_cast<std::size_t>(std::popcount(w));
  return count;
}

hypervector& hypervector::operator^=(const hypervector& other) {
  SPECHD_EXPECTS(dim_ == other.dim_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
  return *this;
}

std::size_t hamming(const hypervector& a, const hypervector& b) {
  SPECHD_EXPECTS(a.dim() == b.dim());
  std::size_t count = 0;
  const auto wa = a.words();
  const auto wb = b.words();
  for (std::size_t i = 0; i < wa.size(); ++i) {
    count += static_cast<std::size_t>(std::popcount(wa[i] ^ wb[i]));
  }
  return count;
}

double hamming_normalized(const hypervector& a, const hypervector& b) {
  return static_cast<double>(hamming(a, b)) / static_cast<double>(a.dim());
}

}  // namespace spechd::hdc
