// Item memories: the pre-allocated ID and Level hypervector tables.
//
// Sec. III-B: "Pre-allocated vectors from high-dimensional memory spaces,
// denoted as ID[0,f] for m/z and L[0,q] for intensity, each of size D_hv".
//
//   * ID memory — f independent random HVs, one per quantised m/z bin.
//     Random vectors are pairwise ~orthogonal (Hamming ~ D/2), so distinct
//     m/z bins do not alias.
//   * Level memory — q *correlated* HVs built by progressive bit flipping,
//     so nearby intensity levels have small Hamming distance and the
//     encoding degrades gracefully under intensity noise. L[0] and L[q-1]
//     differ in exactly D/2 bits (orthogonal endpoints), the standard
//     level-encoding construction in the HDC literature.
//
// Both tables are a pure function of (dim, count, seed): hardware
// regenerates them at configuration time instead of storing them off-chip.
#pragma once

#include <cstdint>
#include <vector>

#include "hdc/hypervector.hpp"

namespace spechd::hdc {

/// f random ID hypervectors.
class id_memory {
public:
  id_memory(std::size_t dim, std::size_t count, std::uint64_t seed);

  const hypervector& at(std::size_t i) const {
    SPECHD_EXPECTS(i < vectors_.size());
    return vectors_[i];
  }
  std::size_t size() const noexcept { return vectors_.size(); }
  std::size_t dim() const noexcept { return dim_; }

private:
  std::size_t dim_;
  std::vector<hypervector> vectors_;
};

/// q correlated Level hypervectors (progressive flips of a random base).
class level_memory {
public:
  level_memory(std::size_t dim, std::size_t levels, std::uint64_t seed);

  const hypervector& at(std::size_t level) const {
    SPECHD_EXPECTS(level < vectors_.size());
    return vectors_[level];
  }
  std::size_t size() const noexcept { return vectors_.size(); }
  std::size_t dim() const noexcept { return dim_; }

  /// Exact Hamming distance between levels a and b by construction:
  /// |flips(a) - flips(b)| where flips(i) = round(i * D/2 / (q-1)).
  std::size_t expected_hamming(std::size_t a, std::size_t b) const noexcept;

private:
  std::size_t dim_;
  std::vector<hypervector> vectors_;
  std::vector<std::size_t> flip_counts_;
};

}  // namespace spechd::hdc
