#include "hdc/distance.hpp"

namespace spechd::hdc {

distance_matrix_f32 pairwise_hamming_f32(const std::vector<hypervector>& hvs) {
  distance_matrix_f32 m(hvs.size());
  for (std::size_t i = 1; i < hvs.size(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      m.at(i, j) = static_cast<float>(hamming_normalized(hvs[i], hvs[j]));
    }
  }
  return m;
}

distance_matrix_q16 pairwise_hamming_q16(const std::vector<hypervector>& hvs) {
  distance_matrix_q16 m(hvs.size());
  if (hvs.empty()) return m;
  const std::size_t dim = hvs.front().dim();
  for (std::size_t i = 1; i < hvs.size(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      m.at(i, j) = q16::from_ratio(hamming(hvs[i], hvs[j]), dim);
    }
  }
  return m;
}

}  // namespace spechd::hdc
