#include "hdc/distance.hpp"

#include <algorithm>
#include <array>

#include "hdc/cpu_kernels.hpp"
#include "util/arena_pool.hpp"
#include "util/thread_pool.hpp"

namespace spechd::hdc {
namespace {

// Block edge of the tile kernel: 64 rows × 64 cols of 2048-bit vectors
// reads ~32 KiB of operands per tile, so both tile inputs stay cache-hot
// while the kernel revisits them 64 times each.
constexpr std::size_t tile = 64;

template <typename T, typename Convert>
condensed_matrix<T> pairwise_impl(const std::vector<hypervector>& hvs, Convert convert,
                                  thread_pool* pool) {
  const std::size_t n = hvs.size();
  condensed_matrix<T> m(n);
  if (n < 2) return m;

  // Validate dimensions once per batch — hoisted out of the O(n²) loop —
  // and flatten word pointers for the packing stage.
  const std::size_t dim = hvs.front().dim();
  const std::size_t words = hvs.front().word_count();
  std::vector<const std::uint64_t*> rows(n);
  for (std::size_t i = 0; i < n; ++i) {
    SPECHD_EXPECTS(hvs[i].dim() == dim);
    rows[i] = hvs[i].words().data();
  }

  // Packing stage (kernel layer v3): copy every operand once into one
  // contiguous, cache-aligned arena blob — an O(n·words) pass against the
  // O(n²·words) tile sweep. Every 64×64 tile then reads two contiguous
  // row-major slices of the blob (no per-row pointer chase, hardware
  // prefetch-friendly, 64-byte-aligned operands at the default dims), and
  // the packed kernels layer their carry-save popcount reduction on top.
  // The blob is read-only during the sweep, so block-row tasks share it.
  arena_lease packed = arena_pool::global().checkout(n * words * sizeof(std::uint64_t));
  std::uint64_t* const blob = packed.as<std::uint64_t>(n * words);
  kernels::pack_operands(rows.data(), n, words, blob);

  T* const out = m.data().data();
  const std::size_t block_rows = (n + tile - 1) / tile;

  auto run_block_row = [&](std::size_t br) {
    const std::size_t i0 = br * tile;
    const std::size_t i1 = std::min(n, i0 + tile);
    std::array<std::uint32_t, tile * tile> counts;

    // Full rectangular tiles: every column j < i0 pairs with every row.
    for (std::size_t j0 = 0; j0 < i0; j0 += tile) {
      const std::size_t j1 = std::min(i0, j0 + tile);
      const std::size_t cols = j1 - j0;
      kernels::hamming_tile_packed(blob + i0 * words, i1 - i0, blob + j0 * words, cols,
                                   words, counts.data());
      for (std::size_t i = i0; i < i1; ++i) {
        const std::size_t base = condensed_matrix<T>::index_of(i, 0);
        const std::uint32_t* row_counts = counts.data() + (i - i0) * cols;
        for (std::size_t j = j0; j < j1; ++j) {
          out[base + j] = convert(row_counts[j - j0]);
        }
      }
    }

    // Diagonal triangle: j in [i0, i).
    for (std::size_t i = i0 + 1; i < i1; ++i) {
      const std::size_t base = condensed_matrix<T>::index_of(i, 0);
      for (std::size_t j = i0; j < i; ++j) {
        out[base + j] = convert(static_cast<std::uint32_t>(
            kernels::xor_popcount(blob + i * words, blob + j * words, words)));
      }
    }
  };

  if (pool != nullptr) {
    // One task per block row; tasks write disjoint ranges of the condensed
    // array, so the output is deterministic for any thread count.
    pool->parallel_for(block_rows, run_block_row, /*grain=*/1);
  } else {
    for (std::size_t br = 0; br < block_rows; ++br) run_block_row(br);
  }
  return m;
}

}  // namespace

distance_matrix_f32 pairwise_hamming_f32(const std::vector<hypervector>& hvs,
                                         thread_pool* pool) {
  const double dim = hvs.empty() ? 1.0 : static_cast<double>(hvs.front().dim());
  return pairwise_impl<float>(
      hvs,
      [dim](std::uint32_t count) {
        // Matches the scalar reference exactly: divide in double, then
        // narrow to float (hamming_normalized's rounding).
        return static_cast<float>(static_cast<double>(count) / dim);
      },
      pool);
}

distance_matrix_q16 pairwise_hamming_q16(const std::vector<hypervector>& hvs,
                                         thread_pool* pool) {
  const std::uint64_t dim = hvs.empty() ? 1 : hvs.front().dim();
  return pairwise_impl<q16>(
      hvs, [dim](std::uint32_t count) { return q16::from_ratio(count, dim); }, pool);
}

}  // namespace spechd::hdc
