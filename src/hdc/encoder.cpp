#include "hdc/encoder.hpp"

#include "hdc/cpu_kernels.hpp"
#include "util/thread_pool.hpp"

namespace spechd::hdc {

id_level_encoder::id_level_encoder(const encoder_config& config, std::size_t mz_bins,
                                   std::size_t intensity_levels)
    : config_(config),
      ids_(config.dim, mz_bins, config.seed),
      levels_(config.dim, intensity_levels, config.seed),
      tiebreak_(hypervector(config.dim)) {
  xoshiro256ss rng(config.seed ^ 0x71EB4EA7B17EULL);
  tiebreak_ = hypervector::random(config.dim, rng);
}

hypervector id_level_encoder::encode(const preprocess::quantized_spectrum& s) const {
  const std::size_t words = config_.dim / 64;

  // Bit-sliced majority accumulation: each bound word feeds 64 dimension
  // counters at once through the carry-save ripple, replacing the per-set-bit
  // scatter of the scalar reference. Planes are pre-reserved for the peak
  // count so the hot loop never reallocates.
  kernels::bitsliced_accumulator acc(words);
  acc.reserve_adds(s.peaks.size());
  std::vector<std::uint64_t> bound(words);
  for (const auto& peak : s.peaks) {
    const auto wi = ids_.at(peak.mz_bin).words();
    const auto wl = levels_.at(peak.level).words();
    for (std::size_t w = 0; w < words; ++w) bound[w] = wi[w] ^ wl[w];
    acc.add(bound.data());
  }

  hypervector out(config_.dim);
  acc.majority(tiebreak_.words().data(), out.words().data());
  return out;
}

std::vector<hypervector> id_level_encoder::encode_batch(
    const std::vector<preprocess::quantized_spectrum>& spectra, thread_pool* pool) const {
  std::vector<hypervector> result(spectra.size());
  if (pool != nullptr) {
    pool->parallel_for(spectra.size(), [&](std::size_t i) { result[i] = encode(spectra[i]); });
  } else {
    for (std::size_t i = 0; i < spectra.size(); ++i) result[i] = encode(spectra[i]);
  }
  return result;
}

double compression_factor(std::size_t total_raw_peak_bytes, std::size_t spectrum_count,
                          std::size_t dim) noexcept {
  if (spectrum_count == 0 || dim == 0) return 0.0;
  const double hv_bytes = static_cast<double>(spectrum_count) * (static_cast<double>(dim) / 8.0);
  return static_cast<double>(total_raw_peak_bytes) / hv_bytes;
}

}  // namespace spechd::hdc
