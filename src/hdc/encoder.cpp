#include "hdc/encoder.hpp"

#include <bit>

namespace spechd::hdc {

id_level_encoder::id_level_encoder(const encoder_config& config, std::size_t mz_bins,
                                   std::size_t intensity_levels)
    : config_(config),
      ids_(config.dim, mz_bins, config.seed),
      levels_(config.dim, intensity_levels, config.seed),
      tiebreak_(hypervector(config.dim)) {
  xoshiro256ss rng(config.seed ^ 0x71EB4EA7B17EULL);
  tiebreak_ = hypervector::random(config.dim, rng);
}

hypervector id_level_encoder::encode(const preprocess::quantized_spectrum& s) const {
  const std::size_t dim = config_.dim;
  // Per-dimension accumulator; peak counts are bounded by top-k (< 2^16).
  std::vector<std::uint16_t> counts(dim, 0);

  for (const auto& peak : s.peaks) {
    const auto& id = ids_.at(peak.mz_bin);
    const auto& level = levels_.at(peak.level);
    const auto wi = id.words();
    const auto wl = level.words();
    for (std::size_t w = 0; w < wi.size(); ++w) {
      std::uint64_t bound = wi[w] ^ wl[w];
      // Scatter the 64 bound bits into the counters. The FPGA unrolls this
      // fully; on CPU we iterate set bits only.
      while (bound != 0) {
        const auto bit = static_cast<std::size_t>(std::countr_zero(bound));
        ++counts[w * 64 + bit];
        bound &= bound - 1;
      }
    }
  }

  hypervector out(dim);
  const std::size_t n = s.peaks.size();
  const std::size_t half = n / 2;
  const bool even = (n % 2) == 0;
  for (std::size_t d = 0; d < dim; ++d) {
    const std::size_t c = counts[d];
    bool bit;
    if (even && c == half) {
      bit = tiebreak_.test(d);  // deterministic tie-break
    } else {
      bit = c > half;
    }
    out.assign(d, bit);
  }
  return out;
}

std::vector<hypervector> id_level_encoder::encode_batch(
    const std::vector<preprocess::quantized_spectrum>& spectra) const {
  std::vector<hypervector> result;
  result.reserve(spectra.size());
  for (const auto& s : spectra) result.push_back(encode(s));
  return result;
}

double compression_factor(std::size_t total_raw_peak_bytes, std::size_t spectrum_count,
                          std::size_t dim) noexcept {
  if (spectrum_count == 0 || dim == 0) return 0.0;
  const double hv_bytes = static_cast<double>(spectrum_count) * (static_cast<double>(dim) / 8.0);
  return static_cast<double>(total_raw_peak_bytes) / hv_bytes;
}

}  // namespace spechd::hdc
