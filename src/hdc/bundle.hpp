// Majority bundling of hypervectors.
//
// Bundling is HDC's superposition operator: the pointwise majority of a set
// of binary HVs yields a vector similar to every input — the HDC-native
// cluster representative. SpecHD's incremental mode uses bundled
// representatives to test membership in O(1) Hamming comparisons instead
// of the O(|cluster|) complete-linkage scan, trading a little accuracy for
// update speed (the same trade HyperSpec makes for its streaming variant).
#pragma once

#include <span>

#include "hdc/cpu_kernels.hpp"
#include "hdc/hypervector.hpp"

namespace spechd::hdc {

/// Pointwise majority of `inputs` (ties on even counts break toward the
/// first input, keeping the operation deterministic and associative-ish
/// for incremental updates). All inputs must share a dimension; the list
/// must be non-empty.
hypervector bundle_majority(std::span<const hypervector> inputs);

/// Incrementally maintained bundle: keeps per-dimension counters so
/// members can be added without re-reading the full set. The counters are
/// bit-sliced (hdc::kernels::bitsliced_accumulator), so add() is a word-wide
/// carry-save ripple rather than a per-set-bit scatter; majority() output is
/// bit-identical to the integer-counter reference.
class incremental_bundle {
public:
  incremental_bundle() = default;
  explicit incremental_bundle(std::size_t dim);

  std::size_t dim() const noexcept { return dim_; }
  std::size_t members() const noexcept { return static_cast<std::size_t>(acc_.additions()); }
  bool empty() const noexcept { return members() == 0; }

  void add(const hypervector& hv);

  /// Current majority vector. Requires at least one member.
  hypervector majority() const;

private:
  std::size_t dim_ = 0;
  kernels::bitsliced_accumulator acc_;
  hypervector first_;  ///< tie-break donor
};

}  // namespace spechd::hdc
