// Majority bundling of hypervectors.
//
// Bundling is HDC's superposition operator: the pointwise majority of a set
// of binary HVs yields a vector similar to every input — the HDC-native
// cluster representative. SpecHD's incremental mode uses bundled
// representatives to test membership in O(1) Hamming comparisons instead
// of the O(|cluster|) complete-linkage scan, trading a little accuracy for
// update speed (the same trade HyperSpec makes for its streaming variant).
#pragma once

#include <span>

#include "hdc/hypervector.hpp"

namespace spechd::hdc {

/// Pointwise majority of `inputs` (ties on even counts break toward the
/// first input, keeping the operation deterministic and associative-ish
/// for incremental updates). All inputs must share a dimension; the list
/// must be non-empty.
hypervector bundle_majority(std::span<const hypervector> inputs);

/// Incrementally maintained bundle: keeps per-dimension counters so
/// members can be added without re-reading the full set.
class incremental_bundle {
public:
  incremental_bundle() = default;
  explicit incremental_bundle(std::size_t dim);

  std::size_t dim() const noexcept { return counts_.size(); }
  std::size_t members() const noexcept { return members_; }
  bool empty() const noexcept { return members_ == 0; }

  void add(const hypervector& hv);

  /// Current majority vector. Requires at least one member.
  hypervector majority() const;

private:
  std::vector<std::uint32_t> counts_;
  std::size_t members_ = 0;
  hypervector first_;  ///< tie-break donor
};

}  // namespace spechd::hdc
