// Dispatching CPU kernel layer for the binary-HDC hot loops (Sec. III-C).
//
// SpecHD's premise is that binary HDC reduces spectrum clustering to XOR +
// popcount datapaths; this header is the CPU-side equivalent of the FPGA's
// "fast unrolled XOR and efficient population count" modules. Three kernel
// families, each with a portable std::uint64_t fallback and SIMD variants
// selected at *runtime* (compile-time guarded so non-x86 builds work):
//
//   * xor_popcount / popcount — fused XOR+popcount over whole hypervectors.
//   * hamming_tile — a cache-blocked T×T tile of the condensed Hamming
//     matrix per call; the building block pairwise_hamming_* parallelises
//     over block rows.
//   * bitsliced_accumulator — a carry-save (bit-sliced) majority counter:
//     instead of scattering every set bit of a bound word into per-bit
//     integer counters, counts are kept as bit planes and each 64-dim word
//     is added with a ripple-carry of word-wide AND/XOR. This is the
//     combinational counter tree of Schmuck et al.'s dense-binary-HDC
//     hardware optimisations, expressed in SIMD registers.
//
// All variants are bit-identical to the scalar reference (same tie-break
// bits, same rounding); the equivalence tests in tests/hdc/test_cpu_kernels
// enforce this, so quality metrics cannot move when dispatch changes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace spechd::hdc::kernels {

/// Kernel implementation variants, in increasing preference order.
enum class variant : std::uint8_t {
  scalar = 0,  ///< portable uint64_t loops (always available)
  avx2 = 1,    ///< 256-bit SPSHUFB nibble-LUT popcount (Mula)
  avx512 = 2,  ///< 512-bit VPOPCNTQ (AVX-512 VPOPCNTDQ)
};

/// Human-readable variant name ("scalar", "avx2", "avx512").
const char* variant_name(variant v) noexcept;

/// True when the running CPU (and this build) can execute `v`.
bool supported(variant v) noexcept;

/// Best variant supported on the running CPU.
variant best_supported() noexcept;

/// Currently dispatched variant. Defaults to best_supported() on first use.
variant active() noexcept;

/// Forces dispatch to `v` (benches/tests compare variants; the pipeline's
/// kernel knob routes here). Throws spechd::logic_error if unsupported.
void set_active(variant v);

/// Parses "scalar" / "avx2" / "avx512" / "auto"; throws on anything else.
variant parse_variant(const std::string& name);

/// popcount(a[0..words)) — set bits over a packed bit vector.
std::size_t popcount(const std::uint64_t* a, std::size_t words) noexcept;

/// popcount((a ^ b)[0..words)) — the Hamming-distance datapath, fused so no
/// XOR temporary is materialised.
std::size_t xor_popcount(const std::uint64_t* a, const std::uint64_t* b,
                         std::size_t words) noexcept;

/// Dense Hamming tile: counts[r * n_cols + c] = xor_popcount(rows[r],
/// cols[c], words) for every (r, c) in the tile. Row/col pointers let the
/// caller block a triangular condensed matrix without copying vectors.
void hamming_tile(const std::uint64_t* const* rows, std::size_t n_rows,
                  const std::uint64_t* const* cols, std::size_t n_cols,
                  std::size_t words, std::uint32_t* counts) noexcept;

/// Carry-save bit-sliced counter over `words` 64-bit lanes (64 dimensions
/// per word). add() accumulates one 0/1 observation per dimension from a
/// packed word array; majority() thresholds against the add count with the
/// scalar reference's exact tie semantics.
class bitsliced_accumulator {
public:
  bitsliced_accumulator() = default;
  explicit bitsliced_accumulator(std::size_t words) { reset(words); }

  /// Clears all counts and resizes to `words` 64-bit lanes.
  void reset(std::size_t words);

  /// Pre-allocates enough bit planes for `adds` additions (avoids plane
  /// growth inside the per-peak loop).
  void reserve_adds(std::uint64_t adds);

  std::size_t words() const noexcept { return words_; }
  std::size_t plane_count() const noexcept { return planes_.size() / (words_ ? words_ : 1); }
  std::uint64_t additions() const noexcept { return adds_; }

  /// Adds bit d of `bits` to dimension d's counter, for all 64*words dims.
  void add(const std::uint64_t* bits);

  /// Writes the majority vector into out[0..words): bit d = count_d > n/2,
  /// where n = additions(); when n is even and count_d == n/2 exactly, the
  /// bit is taken from tie_bits (the deterministic tie-break donor).
  void majority(const std::uint64_t* tie_bits, std::uint64_t* out) const;

  /// Exact per-dimension count (test/diagnostic path; O(planes)).
  std::uint64_t count_at(std::size_t dim) const;

private:
  void ensure_planes(std::size_t planes);

  std::size_t words_ = 0;
  std::uint64_t adds_ = 0;
  std::vector<std::uint64_t> planes_;  ///< plane-major: planes_[p * words_ + w]
};

}  // namespace spechd::hdc::kernels
