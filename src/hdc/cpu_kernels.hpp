// Dispatching CPU kernel layer for the binary-HDC hot loops (Sec. III-C).
//
// SpecHD's premise is that binary HDC reduces spectrum clustering to XOR +
// popcount datapaths; this header is the CPU-side equivalent of the FPGA's
// "fast unrolled XOR and efficient population count" modules. Three kernel
// families, each with a portable std::uint64_t fallback and SIMD variants
// selected at *runtime* (compile-time guarded so non-x86 builds work):
//
//   * xor_popcount / popcount — fused XOR+popcount over whole hypervectors.
//   * hamming_tile — a cache-blocked T×T tile of the condensed Hamming
//     matrix per call; the building block pairwise_hamming_* parallelises
//     over block rows.
//   * hamming_tile_packed (kernel layer v3) — the same tile over *packed*
//     operands: callers stage row/column operands into one contiguous,
//     cache-aligned scratch blob (pack_operands, typically arena-pooled),
//     removing the per-row pointer indirection of hamming_tile. The SIMD
//     variants additionally pair rows so each column load is reused, and
//     reduce the per-pair popcounts through a carry-save (bit-sliced)
//     accumulator — XOR words are compressed with full-adder logic
//     (VPTERNLOG on AVX-512) before the expensive popcount, halving
//     popcount-port pressure. Counts are exact integers, so every variant
//     is trivially bit-identical to the scalar packed reference.
//   * bitsliced_accumulator — a carry-save (bit-sliced) majority counter:
//     instead of scattering every set bit of a bound word into per-bit
//     integer counters, counts are kept as bit planes and each 64-dim word
//     is added with a ripple-carry of word-wide AND/XOR. This is the
//     combinational counter tree of Schmuck et al.'s dense-binary-HDC
//     hardware optimisations, expressed in SIMD registers.
//   * nearest_active_scan / lance_williams_row_update — the HAC row
//     kernels: NN-chain's nearest-neighbour scan is an argmin over a flat
//     row of doubles (retired columns are parked at +inf so no mask load
//     is needed on the scan), and the post-merge Lance–Williams update
//     rewrites the survivor's row under an active-lane mask with the exact
//     arithmetic and store rounding of the scalar reference.
//
// All variants are bit-identical to the scalar reference (same tie-break
// bits, same rounding); the equivalence tests in tests/hdc/test_cpu_kernels
// enforce this, so quality metrics cannot move when dispatch changes.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace spechd::hdc::kernels {

/// Kernel implementation variants, in increasing preference order.
enum class variant : std::uint8_t {
  scalar = 0,  ///< portable uint64_t loops (always available)
  avx2 = 1,    ///< 256-bit SPSHUFB nibble-LUT popcount (Mula)
  avx512 = 2,  ///< 512-bit VPOPCNTQ (AVX-512 VPOPCNTDQ)
};

/// Human-readable variant name ("scalar", "avx2", "avx512").
const char* variant_name(variant v) noexcept;

/// True when the running CPU (and this build) can execute `v`.
bool supported(variant v) noexcept;

/// Best variant supported on the running CPU.
variant best_supported() noexcept;

/// Currently dispatched variant. Defaults to best_supported() on first use.
variant active() noexcept;

/// Forces dispatch to `v` (benches/tests compare variants; the pipeline's
/// kernel knob routes here). Throws spechd::logic_error if unsupported.
void set_active(variant v);

/// Parses "scalar" / "avx2" / "avx512" / "auto"; throws on anything else.
variant parse_variant(const std::string& name);

/// popcount(a[0..words)) — set bits over a packed bit vector.
std::size_t popcount(const std::uint64_t* a, std::size_t words) noexcept;

/// popcount((a ^ b)[0..words)) — the Hamming-distance datapath, fused so no
/// XOR temporary is materialised.
std::size_t xor_popcount(const std::uint64_t* a, const std::uint64_t* b,
                         std::size_t words) noexcept;

/// Dense Hamming tile: counts[r * n_cols + c] = xor_popcount(rows[r],
/// cols[c], words) for every (r, c) in the tile. Row/col pointers let the
/// caller block a triangular condensed matrix without copying vectors.
void hamming_tile(const std::uint64_t* const* rows, std::size_t n_rows,
                  const std::uint64_t* const* cols, std::size_t n_cols,
                  std::size_t words, std::uint32_t* counts) noexcept;

/// Packing stage of the v3 tile path: copies operand srcs[i][0..words) to
/// dst[i * words ..], producing the contiguous row-major blob that
/// hamming_tile_packed consumes. Plain copies (not dispatched); when `dst`
/// is 64-byte aligned (spechd::arena guarantees it) and `words` is a
/// multiple of 8, every packed operand starts on a cache-line boundary.
void pack_operands(const std::uint64_t* const* srcs, std::size_t n, std::size_t words,
                   std::uint64_t* dst) noexcept;

/// Dense Hamming tile over packed operands: operand r is the contiguous
/// range rows[r * words .. (r + 1) * words), likewise for cols, and
/// counts[r * n_cols + c] = popcount(row_r ^ col_c). Same contract and
/// results as hamming_tile, minus the pointer indirection; the SIMD
/// variants use carry-save popcount reduction (see the header comment).
void hamming_tile_packed(const std::uint64_t* rows, std::size_t n_rows,
                         const std::uint64_t* cols, std::size_t n_cols,
                         std::size_t words, std::uint32_t* counts) noexcept;

// ---------------------------------------------------------------------------
// top-k selection (OMS retrieval over per-bucket Hamming count rows)
// ---------------------------------------------------------------------------

/// One k-select hit: a Hamming count and the candidate index that produced
/// it. Ordered by the packed (count, index) key — lower count first, lower
/// index among equal counts — which is the deterministic tie-break every
/// variant must reproduce.
struct select_entry {
  std::uint32_t count = 0;
  std::uint32_t index = 0;

  friend constexpr bool operator==(const select_entry&, const select_entry&) = default;
};

/// Writes the min(k, n) smallest entries of counts[0..n) into out, sorted
/// ascending by (count, index). The output is a *totally ordered prefix* —
/// fully determined by the input — so every variant is bit-identical by
/// construction: ties between equal counts always resolve to the lowest
/// index, exactly like a std::partial_sort over (count << 32 | index) keys.
/// `out` must hold at least min(k, n) entries. Returns the number written.
/// The SIMD variants prune with a vectorised compare against the current
/// k-th best count (a superset test), so candidate rows where most counts
/// are worse than the running top-k skip 8/16 lanes per instruction.
std::size_t k_select(const std::uint32_t* counts, std::size_t n, std::size_t k,
                     select_entry* out) noexcept;

// ---------------------------------------------------------------------------
// HAC row kernels (NN-chain over a flat n×n working matrix)
// ---------------------------------------------------------------------------

/// Result of nearest_active_scan: the row minimum and the lowest index
/// attaining it.
struct row_min {
  std::uint32_t index = 0;
  double value = 0.0;
};

/// Masked argmin over row[0..n) with the scalar reference's tie semantics:
/// lanes with active[i] == 0 read as +inf, and among equal minima the
/// *lowest* index wins (the strict-< ascending scan order). The NN-chain
/// caller parks its own diagonal entry at +inf, so no self-exclusion
/// parameter is needed. When every active lane is +inf the returned index
/// is the lowest +inf lane (possibly inactive — the caller's degenerate
/// fallback handles it). Requires n >= 1; active lanes must not hold NaN.
row_min nearest_active_scan(const double* row, const std::uint8_t* active,
                            std::size_t n) noexcept;

/// Float-row overload (value is widened exactly). NN-chain stores its
/// working matrix as float whenever every reachable value is exactly
/// float-representable — q16-grid stores, or min/max linkages whose updates
/// only ever *select* existing values — which halves the memory traffic of
/// the scan-dominated inner loop without changing a single bit of output.
row_min nearest_active_scan(const float* row, const std::uint8_t* active,
                            std::size_t n) noexcept;

/// Linkage criterion of the Lance–Williams row update. Mirrors
/// cluster::linkage (which delegates its scalar arithmetic here so the SIMD
/// variants and the scalar reference share one definition — the hdc layer
/// cannot depend on cluster/).
enum class lw_linkage : std::uint8_t { single, complete, average, ward };

/// Store-rounding policy applied to every updated entry: f64 writes the
/// double back untouched; q16 re-quantises to the Q0.16 grid first, exactly
/// as the FPGA kernel writes back to its 16-bit BRAM matrix.
enum class lw_store : std::uint8_t { f64, q16 };

/// Canonical scalar Lance–Williams update (moved from cluster/linkage.cpp):
/// distance from cluster k to the merge of a and b given the previous
/// distances and cluster sizes. Every kernel variant reproduces this
/// arithmetic operation-for-operation (the library builds with
/// -ffp-contract=off so the compiler cannot fuse it differently). Inline:
/// NN-chain's lazy row repair calls it per replayed merge, and inlining
/// lets the optimiser hoist the linkage switch out of the replay loop.
inline double lance_williams(lw_linkage l, double d_ka, double d_kb, double d_ab,
                             double size_a, double size_b, double size_k) noexcept {
  switch (l) {
    case lw_linkage::single:
      return d_kb < d_ka ? d_kb : d_ka;  // std::min(d_ka, d_kb)
    case lw_linkage::complete:
      return d_ka < d_kb ? d_kb : d_ka;  // std::max(d_ka, d_kb)
    case lw_linkage::average:
      return (size_a * d_ka + size_b * d_kb) / (size_a + size_b);
    case lw_linkage::ward: {
      const double t = size_a + size_b + size_k;
      const double v = ((size_a + size_k) * d_ka * d_ka +
                        (size_b + size_k) * d_kb * d_kb - size_k * d_ab * d_ab) /
                       t;
      return std::sqrt(std::max(0.0, v));
    }
  }
  return d_ka;
}

/// Per-merge parameters of lance_williams_row_update.
struct lw_update {
  lw_linkage link = lw_linkage::complete;
  lw_store store = lw_store::f64;
  double size_a = 1.0;  ///< members in the retired cluster (d_ka side)
  double size_b = 1.0;  ///< members in the surviving cluster (d_kb side)
  double d_ab = 0.0;    ///< merge height
};

/// Post-merge row update: for every k with active[k] != 0,
///   keep_row[k] = store(lance_williams(link, gone_row[k], keep_row[k],
///                                      d_ab, size_a, size_b, sizes[k]))
/// Inactive lanes are left untouched. The caller is expected to clear the
/// survivor's own active flag around the call (its diagonal stays +inf).
void lance_williams_row_update(double* keep_row, const double* gone_row,
                               const std::uint8_t* active, const double* sizes,
                               std::size_t n, const lw_update& u) noexcept;

/// Float-row overload: lanes are widened to double, updated with the exact
/// scalar arithmetic, and narrowed back. Callers must only route cases
/// whose results are exactly float-representable here (q16 stores, or
/// min/max linkages over float-exact rows); otherwise the narrowing would
/// silently round and break the bit-identity guarantee.
void lance_williams_row_update(float* keep_row, const float* gone_row,
                               const std::uint8_t* active, const double* sizes,
                               std::size_t n, const lw_update& u) noexcept;

/// Carry-save bit-sliced counter over `words` 64-bit lanes (64 dimensions
/// per word). add() accumulates one 0/1 observation per dimension from a
/// packed word array; majority() thresholds against the add count with the
/// scalar reference's exact tie semantics.
class bitsliced_accumulator {
public:
  bitsliced_accumulator() = default;
  explicit bitsliced_accumulator(std::size_t words) { reset(words); }

  /// Clears all counts and resizes to `words` 64-bit lanes.
  void reset(std::size_t words);

  /// Pre-allocates enough bit planes for `adds` additions (avoids plane
  /// growth inside the per-peak loop).
  void reserve_adds(std::uint64_t adds);

  std::size_t words() const noexcept { return words_; }
  std::size_t plane_count() const noexcept { return planes_.size() / (words_ ? words_ : 1); }
  std::uint64_t additions() const noexcept { return adds_; }

  /// Adds bit d of `bits` to dimension d's counter, for all 64*words dims.
  void add(const std::uint64_t* bits);

  /// Writes the majority vector into out[0..words): bit d = count_d > n/2,
  /// where n = additions(); when n is even and count_d == n/2 exactly, the
  /// bit is taken from tie_bits (the deterministic tie-break donor).
  void majority(const std::uint64_t* tie_bits, std::uint64_t* out) const;

  /// Exact per-dimension count (test/diagnostic path; O(planes)).
  std::uint64_t count_at(std::size_t dim) const;

private:
  void ensure_planes(std::size_t planes);

  std::size_t words_ = 0;
  std::uint64_t adds_ = 0;
  std::vector<std::uint64_t> planes_;  ///< plane-major: planes_[p * words_ + w]
};

}  // namespace spechd::hdc::kernels
