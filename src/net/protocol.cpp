#include "net/protocol.hpp"

#include <cstring>

#include "ms/spectrum_wire.hpp"
#include "util/crc32.hpp"
#include "util/endian.hpp"
#include "util/error.hpp"

namespace spechd::net {

namespace {

/// Frame header: u32 payload_bytes + u32 crc (the journal record idiom).
constexpr std::size_t k_frame_bytes = 2 * sizeof(std::uint32_t);
/// Every payload starts with type u8 + request_id u64.
constexpr std::size_t k_payload_head = sizeof(std::uint8_t) + sizeof(std::uint64_t);

/// Grows `out` by one exactly-sized frame and returns a cursor positioned
/// past the type/request_id head; the caller writes `body_bytes` of body
/// and then seals the frame (CRC over the payload, length patched in).
ms::wire_cursor begin_frame(std::string& out, msg_type type, std::uint64_t request_id,
                            std::size_t body_bytes, std::size_t& frame_start) {
  frame_start = out.size();
  out.resize(out.size() + k_frame_bytes + k_payload_head + body_bytes);
  ms::wire_cursor cursor{out.data() + frame_start + k_frame_bytes};
  cursor.put(static_cast<std::uint8_t>(type));
  cursor.put(request_id);
  return cursor;
}

void seal_frame(std::string& out, std::size_t frame_start, const ms::wire_cursor& end) {
  SPECHD_EXPECTS(end.p == out.data() + out.size());
  char* frame = out.data() + frame_start;
  const auto payload_bytes =
      static_cast<std::uint32_t>(out.size() - frame_start - k_frame_bytes);
  const std::uint32_t crc = crc32(frame + k_frame_bytes, payload_bytes);
  std::memcpy(frame, &payload_bytes, sizeof(payload_bytes));
  std::memcpy(frame + sizeof(payload_bytes), &crc, sizeof(crc));
}

void encode_empty(std::string& out, msg_type type, std::uint64_t request_id) {
  std::size_t start = 0;
  auto cursor = begin_frame(out, type, request_id, 0, start);
  seal_frame(out, start, cursor);
}

}  // namespace

bool known_msg_type(std::uint8_t type) noexcept {
  switch (static_cast<msg_type>(type)) {
    case msg_type::hello:
    case msg_type::ping:
    case msg_type::ingest:
    case msg_type::query:
    case msg_type::stats:
    case msg_type::drain:
    case msg_type::query_topk:
    case msg_type::get_metrics:
    case msg_type::get_debug_dump:
    case msg_type::hello_ok:
    case msg_type::pong:
    case msg_type::ingest_ok:
    case msg_type::query_ok:
    case msg_type::stats_ok:
    case msg_type::drain_ok:
    case msg_type::error:
    case msg_type::query_topk_ok:
    case msg_type::metrics_ok:
    case msg_type::debug_dump_ok:
      return true;
  }
  return false;
}

const char* msg_type_name(msg_type type) noexcept {
  switch (type) {
    case msg_type::hello: return "hello";
    case msg_type::ping: return "ping";
    case msg_type::ingest: return "ingest";
    case msg_type::query: return "query";
    case msg_type::stats: return "stats";
    case msg_type::drain: return "drain";
    case msg_type::query_topk: return "query_topk";
    case msg_type::get_metrics: return "get_metrics";
    case msg_type::get_debug_dump: return "get_debug_dump";
    case msg_type::hello_ok: return "hello_ok";
    case msg_type::pong: return "pong";
    case msg_type::ingest_ok: return "ingest_ok";
    case msg_type::query_ok: return "query_ok";
    case msg_type::stats_ok: return "stats_ok";
    case msg_type::drain_ok: return "drain_ok";
    case msg_type::error: return "error";
    case msg_type::query_topk_ok: return "query_topk_ok";
    case msg_type::metrics_ok: return "metrics_ok";
    case msg_type::debug_dump_ok: return "debug_dump_ok";
  }
  return "unknown";
}

const char* error_code_name(error_code code) noexcept {
  switch (code) {
    case error_code::shed_load: return "shed_load";
    case error_code::malformed: return "malformed";
    case error_code::bad_crc: return "bad_crc";
    case error_code::too_large: return "too_large";
    case error_code::bad_version: return "bad_version";
    case error_code::foreign_endian: return "foreign_endian";
    case error_code::bad_handshake: return "bad_handshake";
    case error_code::rejected: return "rejected";
    case error_code::server_error: return "server_error";
  }
  return "unknown";
}

decode_status decode_frame(const char* data, std::size_t size,
                           std::size_t max_frame_bytes, frame_view& out) {
  if (size < k_frame_bytes) return decode_status::need_more;
  std::uint32_t payload_bytes = 0;
  std::uint32_t stored_crc = 0;
  std::memcpy(&payload_bytes, data, sizeof(payload_bytes));
  std::memcpy(&stored_crc, data + sizeof(payload_bytes), sizeof(stored_crc));
  // Order matters: the length field is validated *before* waiting for
  // `payload_bytes` of input — a hostile length must neither allocate nor
  // stall the connection in need_more forever.
  if (payload_bytes > max_frame_bytes) return decode_status::too_large;
  if (payload_bytes < k_payload_head) return decode_status::malformed;
  if (size - k_frame_bytes < payload_bytes) return decode_status::need_more;
  const char* payload = data + k_frame_bytes;
  if (crc32(payload, payload_bytes) != stored_crc) return decode_status::bad_crc;
  std::uint8_t type = 0;
  std::memcpy(&type, payload, sizeof(type));
  std::memcpy(&out.request_id, payload + sizeof(type), sizeof(out.request_id));
  out.type = static_cast<msg_type>(type);
  out.body = payload + k_payload_head;
  out.body_bytes = payload_bytes - k_payload_head;
  out.frame_bytes = k_frame_bytes + payload_bytes;
  return decode_status::ok;
}

// --- hello -------------------------------------------------------------------

void encode_hello_request(std::string& out, std::uint64_t request_id) {
  std::size_t start = 0;
  auto cursor = begin_frame(out, msg_type::hello, request_id,
                            sizeof(k_hello_magic) + 2 * sizeof(std::uint32_t), start);
  cursor.put_bytes(k_hello_magic, sizeof(k_hello_magic));
  cursor.put(k_protocol_version);
  cursor.put(k_endian_marker);
  seal_frame(out, start, cursor);
}

void encode_hello_response(std::string& out, std::uint64_t request_id) {
  std::size_t start = 0;
  auto cursor =
      begin_frame(out, msg_type::hello_ok, request_id, sizeof(std::uint32_t), start);
  cursor.put(k_protocol_version);
  seal_frame(out, start, cursor);
}

hello_status parse_hello_request(const frame_view& frame) {
  ms::byte_cursor in{frame.body, frame.body_bytes};
  char magic[4] = {};
  std::uint32_t version = 0;
  std::uint32_t marker = 0;
  if (!in.read_bytes(magic, 4) || !in.read(version) || !in.read(marker) ||
      in.pos != in.size) {
    return hello_status::malformed;
  }
  if (std::memcmp(magic, k_hello_magic, 4) != 0) return hello_status::bad_magic;
  // The marker is written in the peer's native order; byte-reversed means
  // a big-endian peer — every numeric field it sends would be garbage, so
  // refuse loudly at the handshake instead of with CRC noise later.
  if (marker == util::byteswap32(k_endian_marker)) return hello_status::foreign_endian;
  if (marker != k_endian_marker) return hello_status::malformed;
  if (version != k_protocol_version) return hello_status::bad_version;
  return hello_status::ok;
}

// --- ping / drain ------------------------------------------------------------

void encode_ping(std::string& out, std::uint64_t request_id) {
  encode_empty(out, msg_type::ping, request_id);
}

void encode_pong(std::string& out, std::uint64_t request_id) {
  encode_empty(out, msg_type::pong, request_id);
}

void encode_drain_request(std::string& out, std::uint64_t request_id) {
  encode_empty(out, msg_type::drain, request_id);
}

void encode_drain_response(std::string& out, std::uint64_t request_id) {
  encode_empty(out, msg_type::drain_ok, request_id);
}

// --- ingest ------------------------------------------------------------------

void encode_ingest_request(std::string& out, std::uint64_t request_id,
                           const std::vector<ms::spectrum>& batch) {
  std::size_t body = sizeof(std::uint64_t);
  for (const auto& s : batch) body += ms::spectrum_wire_bytes(s);
  std::size_t start = 0;
  auto cursor = begin_frame(out, msg_type::ingest, request_id, body, start);
  cursor.put(static_cast<std::uint64_t>(batch.size()));
  for (const auto& s : batch) ms::write_spectrum(cursor, s);
  seal_frame(out, start, cursor);
}

bool parse_ingest_request(const frame_view& frame, std::vector<ms::spectrum>& batch) {
  ms::byte_cursor in{frame.body, frame.body_bytes};
  std::uint64_t count = 0;
  if (!in.read(count)) return false;
  if (count > in.size - in.pos) return false;  // each spectrum is >= 1 byte
  batch.resize(count);
  for (auto& s : batch) {
    if (!ms::read_spectrum(in, s)) return false;
  }
  return in.pos == in.size;
}

void encode_ingest_response(std::string& out, std::uint64_t request_id,
                            std::uint64_t accepted) {
  std::size_t start = 0;
  auto cursor =
      begin_frame(out, msg_type::ingest_ok, request_id, sizeof(std::uint64_t), start);
  cursor.put(accepted);
  seal_frame(out, start, cursor);
}

bool parse_ingest_response(const frame_view& frame, std::uint64_t& accepted) {
  ms::byte_cursor in{frame.body, frame.body_bytes};
  return in.read(accepted) && in.pos == in.size;
}

// --- query -------------------------------------------------------------------

void encode_query_request(std::string& out, std::uint64_t request_id,
                          const ms::spectrum& spectrum) {
  std::size_t start = 0;
  auto cursor = begin_frame(out, msg_type::query, request_id,
                            ms::spectrum_wire_bytes(spectrum), start);
  ms::write_spectrum(cursor, spectrum);
  seal_frame(out, start, cursor);
}

bool parse_query_request(const frame_view& frame, ms::spectrum& spectrum) {
  ms::byte_cursor in{frame.body, frame.body_bytes};
  return ms::read_spectrum(in, spectrum) && in.pos == in.size;
}

void encode_query_response(std::string& out, std::uint64_t request_id,
                           const serve::query_result& result) {
  constexpr std::size_t body = 2 * sizeof(std::uint8_t) + sizeof(std::int64_t) +
                               sizeof(std::uint64_t) + sizeof(std::int32_t) +
                               2 * sizeof(double) + 2 * sizeof(std::uint64_t);
  std::size_t start = 0;
  auto cursor = begin_frame(out, msg_type::query_ok, request_id, body, start);
  cursor.put(static_cast<std::uint8_t>(result.encodable ? 1 : 0));
  cursor.put(static_cast<std::uint8_t>(result.matched ? 1 : 0));
  cursor.put(result.bucket_key);
  cursor.put(static_cast<std::uint64_t>(result.shard));
  cursor.put(result.local_label);
  cursor.put(result.distance);
  cursor.put(result.nearest_member);
  cursor.put(static_cast<std::uint64_t>(result.cluster_size));
  cursor.put(result.view_epoch);
  seal_frame(out, start, cursor);
}

bool parse_query_response(const frame_view& frame, serve::query_result& result) {
  ms::byte_cursor in{frame.body, frame.body_bytes};
  std::uint8_t encodable = 0;
  std::uint8_t matched = 0;
  std::uint64_t shard = 0;
  std::uint64_t cluster_size = 0;
  if (!in.read(encodable) || !in.read(matched) || !in.read(result.bucket_key) ||
      !in.read(shard) || !in.read(result.local_label) || !in.read(result.distance) ||
      !in.read(result.nearest_member) || !in.read(cluster_size) ||
      !in.read(result.view_epoch)) {
    return false;
  }
  result.encodable = encodable != 0;
  result.matched = matched != 0;
  result.shard = shard;
  result.cluster_size = cluster_size;
  return in.pos == in.size;
}

// --- search (query_topk) -----------------------------------------------------

void encode_search_request(std::string& out, std::uint64_t request_id,
                           const ms::spectrum& spectrum, std::uint32_t top_k,
                           double tolerance_da) {
  const std::size_t body =
      sizeof(std::uint32_t) + sizeof(double) + ms::spectrum_wire_bytes(spectrum);
  std::size_t start = 0;
  auto cursor = begin_frame(out, msg_type::query_topk, request_id, body, start);
  cursor.put(top_k);
  cursor.put(tolerance_da);
  ms::write_spectrum(cursor, spectrum);
  seal_frame(out, start, cursor);
}

bool parse_search_request(const frame_view& frame, ms::spectrum& spectrum,
                          std::uint32_t& top_k, double& tolerance_da) {
  ms::byte_cursor in{frame.body, frame.body_bytes};
  return in.read(top_k) && in.read(tolerance_da) && ms::read_spectrum(in, spectrum) &&
         in.pos == in.size;
}

void encode_search_response(std::string& out, std::uint64_t request_id,
                            const serve::search_result& result) {
  std::size_t body = sizeof(std::uint8_t) + 2 * sizeof(std::uint64_t) +
                     sizeof(std::uint32_t);
  for (const auto& hit : result.hits) {
    body += 2 * sizeof(std::uint32_t) + 2 * sizeof(double) + sizeof(std::int64_t) +
            sizeof(std::int32_t) + sizeof(std::uint32_t) + hit.name.size();
  }
  std::size_t start = 0;
  auto cursor = begin_frame(out, msg_type::query_topk_ok, request_id, body, start);
  cursor.put(static_cast<std::uint8_t>(result.encodable ? 1 : 0));
  cursor.put(result.buckets_probed);
  cursor.put(result.candidates);
  cursor.put(static_cast<std::uint32_t>(result.hits.size()));
  for (const auto& hit : result.hits) {
    cursor.put(hit.id);
    cursor.put(hit.hamming);
    cursor.put(hit.distance);
    cursor.put(hit.bucket_key);
    cursor.put(hit.precursor_mz);
    cursor.put(hit.precursor_charge);
    cursor.put(static_cast<std::uint32_t>(hit.name.size()));
    cursor.put_bytes(hit.name.data(), hit.name.size());
  }
  seal_frame(out, start, cursor);
}

bool parse_search_response(const frame_view& frame, serve::search_result& result) {
  ms::byte_cursor in{frame.body, frame.body_bytes};
  std::uint8_t encodable = 0;
  std::uint32_t hit_count = 0;
  if (!in.read(encodable) || !in.read(result.buckets_probed) ||
      !in.read(result.candidates) || !in.read(hit_count)) {
    return false;
  }
  result.encodable = encodable != 0;
  // Each hit is > 1 byte; a hostile count can't drive a huge allocation.
  if (hit_count > in.size - in.pos) return false;
  result.hits.clear();
  result.hits.resize(hit_count);
  for (auto& hit : result.hits) {
    std::uint32_t name_bytes = 0;
    if (!in.read(hit.id) || !in.read(hit.hamming) || !in.read(hit.distance) ||
        !in.read(hit.bucket_key) || !in.read(hit.precursor_mz) ||
        !in.read(hit.precursor_charge) || !in.read(name_bytes)) {
      return false;
    }
    if (name_bytes > in.size - in.pos) return false;
    hit.name.resize(name_bytes);
    if (!in.read_bytes(hit.name.data(), name_bytes)) return false;
  }
  return in.pos == in.size;
}

// --- metrics -----------------------------------------------------------------

namespace {

std::size_t str_wire_bytes(const std::string& s) {
  return sizeof(std::uint32_t) + s.size();
}

void put_str(ms::wire_cursor& cursor, const std::string& s) {
  cursor.put(static_cast<std::uint32_t>(s.size()));
  cursor.put_bytes(s.data(), s.size());
}

bool read_str(ms::byte_cursor& in, std::string& s) {
  std::uint32_t len = 0;
  if (!in.read(len)) return false;
  if (len > in.size - in.pos) return false;  // hostile length: never allocate past input
  s.resize(len);
  return in.read_bytes(s.data(), len);
}

}  // namespace

void encode_metrics_request(std::string& out, std::uint64_t request_id) {
  encode_empty(out, msg_type::get_metrics, request_id);
}

void encode_metrics_response(std::string& out, std::uint64_t request_id,
                             const wire_metrics& metrics) {
  const auto& snap = metrics.snapshot;
  std::size_t body = 4 * sizeof(std::uint32_t);  // the four section counts
  for (const auto& c : snap.counters) body += str_wire_bytes(c.name) + sizeof(std::uint64_t);
  for (const auto& g : snap.gauges) body += str_wire_bytes(g.name) + sizeof(std::int64_t);
  for (const auto& h : snap.histograms) {
    body += str_wire_bytes(h.name) + str_wire_bytes(h.unit) + 2 * sizeof(std::uint64_t) +
            sizeof(std::uint32_t) + h.buckets.size() * 3 * sizeof(std::uint64_t);
  }
  for (const auto& s : metrics.slow) {
    body += str_wire_bytes(s.kind) + 2 * sizeof(std::uint64_t) + sizeof(std::uint32_t) +
            s.stages.size() * (sizeof(std::uint8_t) + sizeof(std::uint64_t));
  }
  std::size_t start = 0;
  auto cursor = begin_frame(out, msg_type::metrics_ok, request_id, body, start);
  cursor.put(static_cast<std::uint32_t>(snap.counters.size()));
  for (const auto& c : snap.counters) {
    put_str(cursor, c.name);
    cursor.put(c.value);
  }
  cursor.put(static_cast<std::uint32_t>(snap.gauges.size()));
  for (const auto& g : snap.gauges) {
    put_str(cursor, g.name);
    cursor.put(g.value);
  }
  cursor.put(static_cast<std::uint32_t>(snap.histograms.size()));
  for (const auto& h : snap.histograms) {
    put_str(cursor, h.name);
    put_str(cursor, h.unit);
    cursor.put(h.count);
    cursor.put(h.sum);
    cursor.put(static_cast<std::uint32_t>(h.buckets.size()));
    for (const auto& b : h.buckets) {
      cursor.put(b.lo);
      cursor.put(b.hi);
      cursor.put(b.count);
    }
  }
  cursor.put(static_cast<std::uint32_t>(metrics.slow.size()));
  for (const auto& s : metrics.slow) {
    put_str(cursor, s.kind);
    cursor.put(s.seq);
    cursor.put(s.total_ns);
    cursor.put(static_cast<std::uint32_t>(s.stages.size()));
    for (const auto& st : s.stages) {
      cursor.put(static_cast<std::uint8_t>(st.st));
      cursor.put(st.ns);
    }
  }
  seal_frame(out, start, cursor);
}

bool parse_metrics_response(const frame_view& frame, wire_metrics& metrics) {
  ms::byte_cursor in{frame.body, frame.body_bytes};
  metrics = {};
  std::uint32_t count = 0;

  if (!in.read(count)) return false;
  if (count > (in.size - in.pos) / (sizeof(std::uint32_t) + sizeof(std::uint64_t))) {
    return false;
  }
  metrics.snapshot.counters.resize(count);
  for (auto& c : metrics.snapshot.counters) {
    if (!read_str(in, c.name) || !in.read(c.value)) return false;
  }

  if (!in.read(count)) return false;
  if (count > (in.size - in.pos) / (sizeof(std::uint32_t) + sizeof(std::int64_t))) {
    return false;
  }
  metrics.snapshot.gauges.resize(count);
  for (auto& g : metrics.snapshot.gauges) {
    if (!read_str(in, g.name) || !in.read(g.value)) return false;
  }

  if (!in.read(count)) return false;
  // Minimum histogram size: two empty strings, count, sum, bucket count.
  constexpr std::size_t k_min_hist =
      3 * sizeof(std::uint32_t) + 2 * sizeof(std::uint64_t);
  if (count > (in.size - in.pos) / k_min_hist) return false;
  metrics.snapshot.histograms.resize(count);
  for (auto& h : metrics.snapshot.histograms) {
    if (!read_str(in, h.name) || !read_str(in, h.unit)) return false;
    if (!in.read(h.count) || !in.read(h.sum)) return false;
    std::uint32_t buckets = 0;
    if (!in.read(buckets)) return false;
    if (buckets > (in.size - in.pos) / (3 * sizeof(std::uint64_t))) return false;
    h.buckets.resize(buckets);
    for (auto& b : h.buckets) {
      if (!in.read(b.lo) || !in.read(b.hi) || !in.read(b.count)) return false;
    }
  }

  if (!in.read(count)) return false;
  constexpr std::size_t k_min_slow =
      2 * sizeof(std::uint32_t) + 2 * sizeof(std::uint64_t);
  if (count > (in.size - in.pos) / k_min_slow) return false;
  metrics.slow.resize(count);
  for (auto& s : metrics.slow) {
    if (!read_str(in, s.kind)) return false;
    if (!in.read(s.seq) || !in.read(s.total_ns)) return false;
    std::uint32_t stages = 0;
    if (!in.read(stages)) return false;
    if (stages > (in.size - in.pos) / (sizeof(std::uint8_t) + sizeof(std::uint64_t))) {
      return false;
    }
    s.stages.resize(stages);
    for (auto& st : s.stages) {
      std::uint8_t raw = 0;
      if (!in.read(raw) || !in.read(st.ns)) return false;
      if (raw > obs::k_stage_max) return false;
      st.st = static_cast<obs::stage>(raw);
    }
  }
  return in.pos == in.size;
}

// --- debug dump --------------------------------------------------------------

namespace {

/// One flight event on the wire: every field except the struct's padding.
constexpr std::size_t k_event_bytes =
    6 * sizeof(std::uint64_t) + sizeof(std::uint32_t) + sizeof(std::uint8_t);
/// One shard-status row on the wire.
constexpr std::size_t k_shard_status_bytes =
    2 * sizeof(std::uint32_t) + 4 * sizeof(std::uint64_t);

}  // namespace

void encode_debug_dump_request(std::string& out, std::uint64_t request_id) {
  encode_empty(out, msg_type::get_debug_dump, request_id);
}

void encode_debug_dump_response(std::string& out, std::uint64_t request_id,
                                const wire_debug_dump& dump) {
  std::size_t body = sizeof(std::uint64_t) + 3 * sizeof(std::uint32_t) +
                     dump.events.size() * k_event_bytes +
                     dump.shards.size() * k_shard_status_bytes;
  for (const auto& name : dump.stalled) body += str_wire_bytes(name);
  std::size_t start = 0;
  auto cursor = begin_frame(out, msg_type::debug_dump_ok, request_id, body, start);
  cursor.put(dump.total_events_recorded);
  cursor.put(static_cast<std::uint32_t>(dump.events.size()));
  for (const auto& e : dump.events) {
    cursor.put(e.seq);
    cursor.put(e.steady_ns);
    cursor.put(e.wall_ns);
    cursor.put(e.request_id);
    cursor.put(e.arg0);
    cursor.put(e.arg1);
    cursor.put(e.thread_id);
    cursor.put(static_cast<std::uint8_t>(e.kind));
  }
  cursor.put(static_cast<std::uint32_t>(dump.shards.size()));
  for (const auto& s : dump.shards) {
    cursor.put(s.shard);
    cursor.put(s.health);
    cursor.put(s.generation);
    cursor.put(s.journal_bytes);
    cursor.put(s.journal_records);
    cursor.put(s.queue_depth);
  }
  cursor.put(static_cast<std::uint32_t>(dump.stalled.size()));
  for (const auto& name : dump.stalled) put_str(cursor, name);
  seal_frame(out, start, cursor);
}

bool parse_debug_dump_response(const frame_view& frame, wire_debug_dump& dump) {
  ms::byte_cursor in{frame.body, frame.body_bytes};
  dump = {};
  std::uint32_t count = 0;

  if (!in.read(dump.total_events_recorded)) return false;
  if (!in.read(count)) return false;
  if (count > (in.size - in.pos) / k_event_bytes) return false;
  dump.events.resize(count);
  for (auto& e : dump.events) {
    std::uint8_t raw_kind = 0;
    if (!in.read(e.seq) || !in.read(e.steady_ns) || !in.read(e.wall_ns) ||
        !in.read(e.request_id) || !in.read(e.arg0) || !in.read(e.arg1) ||
        !in.read(e.thread_id) || !in.read(raw_kind)) {
      return false;
    }
    if (raw_kind == 0 || raw_kind > obs::k_event_kind_max) return false;
    e.kind = static_cast<std::uint8_t>(raw_kind);
  }

  if (!in.read(count)) return false;
  if (count > (in.size - in.pos) / k_shard_status_bytes) return false;
  dump.shards.resize(count);
  for (auto& s : dump.shards) {
    if (!in.read(s.shard) || !in.read(s.health) || !in.read(s.generation) ||
        !in.read(s.journal_bytes) || !in.read(s.journal_records) ||
        !in.read(s.queue_depth)) {
      return false;
    }
  }

  if (!in.read(count)) return false;
  if (count > (in.size - in.pos) / sizeof(std::uint32_t)) return false;
  dump.stalled.resize(count);
  for (auto& name : dump.stalled) {
    if (!read_str(in, name)) return false;
  }
  return in.pos == in.size;
}

// --- stats -------------------------------------------------------------------

void encode_stats_request(std::string& out, std::uint64_t request_id) {
  encode_empty(out, msg_type::stats, request_id);
}

void encode_stats_response(std::string& out, std::uint64_t request_id,
                           const wire_stats& stats) {
  std::size_t start = 0;
  auto cursor =
      begin_frame(out, msg_type::stats_ok, request_id, 10 * sizeof(std::uint64_t), start);
  cursor.put(stats.ingested);
  cursor.put(stats.dropped);
  cursor.put(stats.batches);
  cursor.put(stats.record_count);
  cursor.put(stats.cluster_count);
  cursor.put(stats.queue_depth);
  cursor.put(stats.degraded_shards);
  cursor.put(stats.failed_shards);
  cursor.put(stats.requests);
  cursor.put(stats.shed);
  seal_frame(out, start, cursor);
}

bool parse_stats_response(const frame_view& frame, wire_stats& stats) {
  ms::byte_cursor in{frame.body, frame.body_bytes};
  return in.read(stats.ingested) && in.read(stats.dropped) && in.read(stats.batches) &&
         in.read(stats.record_count) && in.read(stats.cluster_count) &&
         in.read(stats.queue_depth) && in.read(stats.degraded_shards) &&
         in.read(stats.failed_shards) && in.read(stats.requests) &&
         in.read(stats.shed) && in.pos == in.size;
}

// --- error -------------------------------------------------------------------

void encode_error_response(std::string& out, std::uint64_t request_id,
                           error_code code, const std::string& message) {
  std::size_t start = 0;
  auto cursor = begin_frame(out, msg_type::error, request_id,
                            sizeof(std::uint16_t) + sizeof(std::uint32_t) +
                                message.size(),
                            start);
  cursor.put(static_cast<std::uint16_t>(code));
  cursor.put(static_cast<std::uint32_t>(message.size()));
  cursor.put_bytes(message.data(), message.size());
  seal_frame(out, start, cursor);
}

bool parse_error_response(const frame_view& frame, error_code& code,
                          std::string& message) {
  ms::byte_cursor in{frame.body, frame.body_bytes};
  std::uint16_t raw = 0;
  std::uint32_t len = 0;
  if (!in.read(raw) || !in.read(len)) return false;
  if (len > in.size - in.pos) return false;
  message.resize(len);
  if (!in.read_bytes(message.data(), len)) return false;
  code = static_cast<error_code>(raw);
  return in.pos == in.size;
}

}  // namespace spechd::net
