// Network front end of the serving tier: an epoll event-loop server that
// speaks the framed binary protocol (net/protocol.hpp) over TCP and
// drives a clustering_service.
//
//   clients ──frames──▶ epoll loop ──▶ clustering_service ingest/query
//                          │                │
//                          │     per-shard MPSC queues (backpressure)
//                          ▼
//               admission control: aggregate queue depth past the shed
//               threshold ⇒ typed `shed_load` error response — bounded
//               in-flight work, never an unbounded server-side queue
//
// One loop thread owns every connection; frames are processed inline in
// arrival order, so per-connection request order equals service apply
// order — which is what makes networked ingest bit-identical to calling
// the service in-process (the golden test pins this).
//
// Failure posture:
//  - A malformed / bad-CRC / oversized frame gets a typed error response,
//    then the connection closes. The server never crashes on input bytes.
//  - A client that stalls mid-frame (slowloris) or stops reading its
//    responses is closed after `stall_timeout`; idle connections *between*
//    frames are left alone (keep-alive).
//  - A client disconnecting mid-response costs exactly that connection:
//    sends use MSG_NOSIGNAL and the constructor ignores SIGPIPE
//    process-wide, so EPIPE is an errno, never a fatal signal.
//  - `net.accept` / `net.recv` / `net.send` failpoints inject socket
//    errors for the fault-torture idiom.
//
// Shutdown: `request_stop()` is async-signal-safe (one eventfd write) so
// a SIGTERM handler can call it directly; the loop then flushes, closes
// every connection, and exits — `wait()` joins it. The service itself
// (journal drain, etc.) is the caller's to wind down afterwards.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>

#include "net/protocol.hpp"
#include "serve/service.hpp"

namespace spechd::net {

/// Splits "HOST:PORT" (e.g. "127.0.0.1:7070", "0.0.0.0:0"); throws
/// spechd::error on a missing/unparsable port.
std::pair<std::string, std::uint16_t> split_host_port(const std::string& listen);

struct server_config {
  /// IPv4 dotted-quad or "localhost"; port 0 binds an ephemeral port
  /// (read it back with port()).
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Accepted connections beyond this are closed immediately.
  std::size_t max_connections = 256;
  /// Per-frame payload cap; a declared length above it draws a typed
  /// `too_large` error and a close — never an allocation.
  std::size_t max_frame_bytes = k_default_max_frame_bytes;
  /// A connection sitting mid-frame (slowloris) or with unread responses
  /// pending for longer than this is closed. Purely idle connections
  /// (no partial frame, nothing to send) are never reaped.
  std::chrono::milliseconds stall_timeout{5000};
  /// Outbound bytes buffered for one connection before it is declared a
  /// slow reader and closed.
  std::size_t max_outbound_bytes = 64ULL << 20;
  /// Admission control: refuse ingest with `shed_load` while the
  /// service's aggregate queue depth is at or above this. Defaults
  /// (nullopt) to shards × queue_capacity — the point where producers
  /// would start blocking the event loop. 0 sheds every ingest (tests).
  std::optional<std::size_t> shed_queue_depth;
};

/// Monotonic counters (readable from any thread).
struct server_counters {
  std::uint64_t accepted = 0;         ///< connections accepted
  std::uint64_t open = 0;             ///< currently open connections
  std::uint64_t refused = 0;          ///< accepts refused (max_connections)
  std::uint64_t requests = 0;         ///< frames processed
  std::uint64_t shed = 0;             ///< ingests refused by admission control
  std::uint64_t protocol_errors = 0;  ///< malformed/bad-CRC/oversized frames
  std::uint64_t disconnects = 0;      ///< peers that vanished (EOF/EPIPE/reset)
  std::uint64_t stalls_closed = 0;    ///< slowloris / slow-reader closes
};

class server {
public:
  /// Binds + listens and starts the loop thread; throws io_error when the
  /// address cannot be bound. `service` must outlive the server.
  server(serve::clustering_service& service, server_config config);
  ~server();

  server(const server&) = delete;
  server& operator=(const server&) = delete;

  /// The bound port (resolves port 0).
  std::uint16_t port() const noexcept { return port_; }

  /// Signals the loop to shut down. Async-signal-safe (one write(2) to an
  /// eventfd) — callable from a SIGTERM/SIGINT handler.
  void request_stop() noexcept;

  /// Joins the loop thread (after request_stop, or on its own exit).
  void wait();

  /// request_stop() + wait(). Idempotent.
  void stop();

  server_counters counters() const;

private:
  struct connection {
    std::string inbuf;
    std::string outbuf;
    std::size_t out_pos = 0;
    bool handshaken = false;
    bool closing = false;  ///< close once outbuf drains (post-error)
    bool want_write = false;
    std::chrono::steady_clock::time_point last_progress;
  };

  void loop();
  void accept_ready();
  void handle_readable(int fd, connection& conn);
  void process_frame(int fd, connection& conn, const frame_view& frame);
  /// Post-handshake request dispatch (the body of process_frame, split out
  /// so the per-request trace/timing wrapper stays readable).
  void dispatch_frame(connection& conn, const frame_view& frame);
  void handle_ingest(connection& conn, const frame_view& frame);
  void send_error(connection& conn, std::uint64_t request_id, error_code code,
                  const std::string& message, bool close_after);
  /// Writes as much of conn.outbuf as the socket takes; returns false when
  /// the connection must be closed (peer gone, send error, buffer cap).
  bool flush(int fd, connection& conn);
  void update_epoll(int fd, connection& conn);
  void close_connection(int fd);
  void sweep_stalls();

  serve::clustering_service& service_;
  server_config config_;
  std::size_t shed_threshold_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::uint16_t port_ = 0;
  std::unordered_map<int, connection> connections_;
  std::atomic<bool> stop_requested_{false};
  bool joined_ = false;
  std::mutex join_mutex_;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> open_{0};
  std::atomic<std::uint64_t> refused_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> disconnects_{0};
  std::atomic<std::uint64_t> stalls_closed_{0};

  std::thread thread_;  ///< last member: starts after everything above
};

}  // namespace spechd::net
