#include "net/client.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

namespace spechd::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw io_error(what + ": " + std::strerror(errno));
}

in_addr_t parse_ipv4(const std::string& host) {
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  in_addr addr{};
  if (inet_pton(AF_INET, resolved.c_str(), &addr) != 1) {
    throw io_error("client: not an IPv4 address: '" + host + "'");
  }
  return addr.s_addr;
}

timeval to_timeval(std::chrono::milliseconds ms) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(ms.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((ms.count() % 1000) * 1000);
  return tv;
}

}  // namespace

client::client(const std::string& host, std::uint16_t port, client_config config)
    : config_(config) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw_errno("client: socket");
  try {
    // Nonblocking connect + poll so a black-holed address honours the
    // configured timeout instead of the kernel's (minutes-long) default.
    const int flags = ::fcntl(fd_, F_GETFL);
    ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = parse_ipv4(host);
    int rc = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc < 0 && errno == EINPROGRESS) {
      pollfd pfd{fd_, POLLOUT, 0};
      rc = ::poll(&pfd, 1, static_cast<int>(config_.timeout.count()));
      if (rc == 0) {
        errno = ETIMEDOUT;
        throw_errno("client: connect to " + host + ":" + std::to_string(port));
      }
      int err = 0;
      socklen_t len = sizeof(err);
      ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len);
      if (err != 0) {
        errno = err;
        throw_errno("client: connect to " + host + ":" + std::to_string(port));
      }
    } else if (rc < 0) {
      throw_errno("client: connect to " + host + ":" + std::to_string(port));
    }
    ::fcntl(fd_, F_SETFL, flags);  // back to blocking with SO_*TIMEO below
    const timeval tv = to_timeval(config_.timeout);
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    handshake();
  } catch (...) {
    ::close(fd_);
    fd_ = -1;
    throw;
  }
}

client::~client() {
  if (fd_ >= 0) ::close(fd_);
}

void client::handshake() {
  const std::uint64_t id = next_request_id_++;
  std::string frame;
  encode_hello_request(frame, id);
  send_frame(frame);
  const frame_view response = read_response(msg_type::hello_ok, id);
  consume_frame(response);
}

void client::ping() {
  const std::uint64_t id = next_request_id_++;
  std::string frame;
  encode_ping(frame, id);
  send_frame(frame);
  consume_frame(read_response(msg_type::pong, id));
}

ingest_result client::ingest(const std::vector<ms::spectrum>& batch) {
  const std::uint64_t id = next_request_id_++;
  std::string frame;
  encode_ingest_request(frame, id, batch);
  send_frame(frame);

  const frame_view response = read_frame();
  if (response.request_id != id) {
    consume_frame(response);
    throw io_error("client: response id mismatch (pipelined reads pending?)");
  }
  ingest_result result;
  if (response.type == msg_type::ingest_ok) {
    if (!parse_ingest_response(response, result.count)) {
      consume_frame(response);
      throw io_error("client: malformed ingest_ok body");
    }
    result.accepted = true;
    consume_frame(response);
    return result;
  }
  if (response.type == msg_type::error) {
    error_code code{};
    std::string message;
    if (!parse_error_response(response, code, message)) {
      consume_frame(response);
      throw io_error("client: malformed error body");
    }
    consume_frame(response);
    if (code == error_code::shed_load) {
      // Expected admission-control outcome, not an exception: the load
      // generator counts these per attempt.
      result.accepted = false;
      result.code = code;
      result.message = std::move(message);
      return result;
    }
    throw remote_error(code, message);
  }
  consume_frame(response);
  throw io_error("client: unexpected response type to ingest");
}

serve::query_result client::query(const ms::spectrum& spectrum) {
  const std::uint64_t id = next_request_id_++;
  std::string frame;
  encode_query_request(frame, id, spectrum);
  send_frame(frame);
  const frame_view response = read_response(msg_type::query_ok, id);
  serve::query_result result;
  const bool ok = parse_query_response(response, result);
  consume_frame(response);
  if (!ok) throw io_error("client: malformed query_ok body");
  return result;
}

serve::search_result client::search(const ms::spectrum& spectrum, std::uint32_t top_k,
                                    double tolerance_da) {
  const std::uint64_t id = next_request_id_++;
  std::string frame;
  encode_search_request(frame, id, spectrum, top_k, tolerance_da);
  send_frame(frame);
  const frame_view response = read_response(msg_type::query_topk_ok, id);
  serve::search_result result;
  const bool ok = parse_search_response(response, result);
  consume_frame(response);
  if (!ok) throw io_error("client: malformed query_topk_ok body");
  return result;
}

wire_stats client::stats() {
  const std::uint64_t id = next_request_id_++;
  std::string frame;
  encode_stats_request(frame, id);
  send_frame(frame);
  const frame_view response = read_response(msg_type::stats_ok, id);
  wire_stats stats;
  const bool ok = parse_stats_response(response, stats);
  consume_frame(response);
  if (!ok) throw io_error("client: malformed stats_ok body");
  return stats;
}

wire_metrics client::metrics() {
  const std::uint64_t id = next_request_id_++;
  std::string frame;
  encode_metrics_request(frame, id);
  send_frame(frame);
  const frame_view response = read_response(msg_type::metrics_ok, id);
  wire_metrics metrics;
  const bool ok = parse_metrics_response(response, metrics);
  consume_frame(response);
  if (!ok) throw io_error("client: malformed metrics_ok body");
  return metrics;
}

wire_debug_dump client::debug_dump() {
  const std::uint64_t id = next_request_id_++;
  std::string frame;
  encode_debug_dump_request(frame, id);
  send_frame(frame);
  const frame_view response = read_response(msg_type::debug_dump_ok, id);
  wire_debug_dump dump;
  const bool ok = parse_debug_dump_response(response, dump);
  consume_frame(response);
  if (!ok) throw io_error("client: malformed debug_dump_ok body");
  return dump;
}

void client::drain() {
  const std::uint64_t id = next_request_id_++;
  std::string frame;
  encode_drain_request(frame, id);
  send_frame(frame);
  consume_frame(read_response(msg_type::drain_ok, id));
}

void client::send_query(const ms::spectrum& spectrum) {
  const std::uint64_t id = next_request_id_++;
  std::string frame;
  encode_query_request(frame, id, spectrum);
  send_frame(frame);
  pipelined_.push_back(id);
}

serve::query_result client::read_query_response() {
  if (pipelined_.empty()) {
    throw logic_error("client: read_query_response with no query in flight");
  }
  const std::uint64_t id = pipelined_.front();
  pipelined_.pop_front();
  const frame_view response = read_response(msg_type::query_ok, id);
  serve::query_result result;
  const bool ok = parse_query_response(response, result);
  consume_frame(response);
  if (!ok) throw io_error("client: malformed query_ok body");
  return result;
}

void client::send_frame(const std::string& frame) {
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("client: send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

frame_view client::read_frame() {
  char buf[64 * 1024];
  for (;;) {
    frame_view frame;
    const decode_status status =
        decode_frame(inbuf_.data(), inbuf_.size(), config_.max_frame_bytes, frame);
    switch (status) {
      case decode_status::ok:
        return frame;
      case decode_status::need_more:
        break;
      case decode_status::bad_crc:
        throw io_error("client: frame CRC mismatch from server");
      case decode_status::too_large:
        throw io_error("client: server frame exceeds max_frame_bytes");
      case decode_status::malformed:
        throw io_error("client: malformed frame from server");
    }
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) throw io_error("client: server closed the connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw io_error("client: timed out waiting for a response");
      }
      throw_errno("client: recv");
    }
    inbuf_.append(buf, static_cast<std::size_t>(n));
  }
}

void client::consume_frame(const frame_view& frame) {
  inbuf_.erase(0, frame.frame_bytes);
}

frame_view client::read_response(msg_type type, std::uint64_t request_id) {
  const frame_view response = read_frame();
  if (response.type == msg_type::error) {
    error_code code{};
    std::string message;
    if (!parse_error_response(response, code, message)) {
      consume_frame(response);
      throw io_error("client: malformed error body");
    }
    consume_frame(response);
    throw remote_error(code, message);
  }
  if (response.type != type || response.request_id != request_id) {
    consume_frame(response);
    throw io_error(std::string("client: expected ") + msg_type_name(type) +
                   ", got " + msg_type_name(response.type));
  }
  return response;
}

}  // namespace spechd::net
