// Blocking client for the SpecHD serving protocol (net/protocol.hpp).
//
// One TCP connection, synchronous request/response by default: connect()
// performs the hello handshake, then ingest/query/stats/drain each send
// one frame and block for the matching response. For the open-loop load
// generator there is a pipelined pair — send_query() fires without
// waiting, read_query_response() collects in order — exploiting the
// server's in-arrival-order processing guarantee.
//
// Failure posture: a typed `error` response surfaces as remote_error
// (carrying the error_code) — except shed_load on ingest, which is an
// expected admission-control outcome and is returned in ingest_result so
// a load generator can count sheds without exception overhead. Transport
// problems (peer gone, timeout, malformed server bytes) throw io_error.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "ms/spectrum.hpp"
#include "net/protocol.hpp"
#include "serve/shard.hpp"
#include "util/error.hpp"

namespace spechd::net {

/// The server refused a request with a typed `error` response.
class remote_error : public spechd::error {
public:
  remote_error(error_code code, const std::string& message)
      : spechd::error(std::string(error_code_name(code)) + ": " + message),
        code_(code) {}

  error_code code() const noexcept { return code_; }

private:
  error_code code_;
};

/// Outcome of one ingest request. `accepted == false` means admission
/// control shed the batch (code == shed_load) — retry with backoff.
struct ingest_result {
  bool accepted = false;
  std::uint64_t count = 0;  ///< spectra the server enqueued
  error_code code{};        ///< meaningful when !accepted
  std::string message;
};

struct client_config {
  std::chrono::milliseconds timeout{5000};  ///< connect + per-recv/send
  std::size_t max_frame_bytes = k_default_max_frame_bytes;
};

class client {
public:
  /// Connects and completes the hello handshake; throws io_error on
  /// connect/timeout failure, remote_error on a typed refusal (e.g.
  /// bad_version).
  client(const std::string& host, std::uint16_t port,
         client_config config = {});
  ~client();

  client(const client&) = delete;
  client& operator=(const client&) = delete;

  /// Round-trip liveness probe.
  void ping();

  /// Sends one batch; blocks for the response. Shed batches return
  /// accepted=false rather than throwing (see ingest_result).
  ingest_result ingest(const std::vector<ms::spectrum>& batch);

  serve::query_result query(const ms::spectrum& spectrum);

  /// OMS search (`query --topk`): top-k spectral-library retrieval with a
  /// precursor-mass-shift tolerance in Da. Throws remote_error with code
  /// `rejected` when the server has no library loaded.
  serve::search_result search(const ms::spectrum& spectrum, std::uint32_t top_k,
                              double tolerance_da);

  wire_stats stats();

  /// Full telemetry scrape: the server's metrics-registry snapshot
  /// (counters, gauges, per-stage histograms) plus its slow-request ring.
  /// Safe to call against a server under full load — building the
  /// snapshot never blocks the server's recording threads.
  wire_metrics metrics();

  /// Debug dump (`client --debug-dump`): the server's flight-recorder
  /// event tail, per-shard status table, and any watchdog-flagged stalled
  /// components — the live twin of a `.sphcrash` crash dump.
  wire_debug_dump debug_dump();

  /// Server-side barrier: returns once everything this connection (and
  /// every other producer) enqueued before the call is applied.
  void drain();

  // --- pipelined queries (open-loop load generation) ---------------------

  /// Fires a query without waiting; responses arrive in send order.
  void send_query(const ms::spectrum& spectrum);
  /// Blocks for the next pipelined query response.
  serve::query_result read_query_response();

private:
  /// Sends `frame` fully (MSG_NOSIGNAL); throws io_error on failure.
  void send_frame(const std::string& frame);
  /// Blocks until one complete frame is buffered; throws io_error on
  /// EOF/timeout/garbage. The view points into inbuf_ — consume it (and
  /// call consume_frame) before the next read.
  frame_view read_frame();
  void consume_frame(const frame_view& frame);
  /// read_frame + expect `type` with `request_id`; a typed `error`
  /// response throws remote_error, anything else io_error. The returned
  /// view is still buffered — call consume_frame when done with it.
  frame_view read_response(msg_type type, std::uint64_t request_id);
  void handshake();

  client_config config_;
  int fd_ = -1;
  std::string inbuf_;
  std::uint64_t next_request_id_ = 1;
  std::deque<std::uint64_t> pipelined_;  ///< in-flight send_query ids, send order
};

}  // namespace spechd::net
