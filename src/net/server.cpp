#include "net/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <vector>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace spechd::net {

namespace {

/// Process-wide telemetry (src/obs). The server also keeps per-instance
/// atomics for server_counters — tests assert exact per-server values, and
/// a process may run several servers — so the registry series aggregate
/// across instances while counters() stays instance-scoped.
obs::counter& net_requests_total() {
  static auto& c = obs::registry::instance().counter("spechd_net_requests_total");
  return c;
}
obs::counter& net_shed_total() {
  static auto& c = obs::registry::instance().counter("spechd_net_shed_total");
  return c;
}
obs::counter& net_protocol_errors_total() {
  static auto& c =
      obs::registry::instance().counter("spechd_net_protocol_errors_total");
  return c;
}

void throw_errno(const std::string& what) {
  throw io_error(what + ": " + std::strerror(errno));
}

/// SIGPIPE would kill the whole process when a peer disconnects between
/// our poll and our send; with it ignored (plus MSG_NOSIGNAL on every
/// send) a vanished client is just an EPIPE errno on one connection.
/// Never overrides a handler the application installed itself.
void ignore_sigpipe_once() {
  static const bool done = [] {
    struct sigaction current {};
    if (::sigaction(SIGPIPE, nullptr, &current) == 0 &&
        current.sa_handler == SIG_DFL) {
      struct sigaction ignore {};
      ignore.sa_handler = SIG_IGN;
      ::sigaction(SIGPIPE, &ignore, nullptr);
    }
    return true;
  }();
  (void)done;
}

in_addr parse_ipv4(const std::string& host) {
  in_addr addr{};
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr) != 1) {
    throw spechd::error("cannot parse listen host '" + host +
                        "' (expected an IPv4 address or 'localhost')");
  }
  return addr;
}

}  // namespace

std::pair<std::string, std::uint16_t> split_host_port(const std::string& listen) {
  const auto colon = listen.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == listen.size()) {
    throw spechd::error("expected HOST:PORT, got '" + listen + "'");
  }
  const std::string host = listen.substr(0, colon);
  const std::string port_str = listen.substr(colon + 1);
  unsigned long port = 0;
  try {
    std::size_t used = 0;
    port = std::stoul(port_str, &used);
    if (used != port_str.size()) throw std::invalid_argument(port_str);
  } catch (const std::exception&) {
    throw spechd::error("cannot parse port '" + port_str + "' in '" + listen + "'");
  }
  if (port > 65535) {
    throw spechd::error("port " + port_str + " out of range in '" + listen + "'");
  }
  return {host, static_cast<std::uint16_t>(port)};
}

server::server(serve::clustering_service& service, server_config config)
    : service_(service),
      config_(std::move(config)),
      shed_threshold_(config_.shed_queue_depth.value_or(
          service.config().shards * service.config().queue_capacity)) {
  ignore_sigpipe_once();
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw_errno("cannot create listen socket");
  try {
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr = parse_ipv4(config_.host);
    addr.sin_port = htons(config_.port);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      throw_errno("cannot bind " + config_.host + ":" + std::to_string(config_.port));
    }
    if (::listen(listen_fd_, 128) != 0) throw_errno("cannot listen");
    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
      throw_errno("cannot read bound port");
    }
    port_ = ntohs(addr.sin_port);

    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) throw_errno("cannot create epoll instance");
    wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (wake_fd_ < 0) throw_errno("cannot create wakeup eventfd");
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listen_fd_;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
      throw_errno("cannot register listen socket");
    }
    ev.data.fd = wake_fd_;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
      throw_errno("cannot register wakeup eventfd");
    }
  } catch (...) {
    if (wake_fd_ >= 0) ::close(wake_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    ::close(listen_fd_);
    throw;
  }
  thread_ = std::thread([this] { loop(); });
}

server::~server() { stop(); }

void server::request_stop() noexcept {
  // Only async-signal-safe operations: one relaxed store + one write(2).
  stop_requested_.store(true, std::memory_order_relaxed);
  const std::uint64_t one = 1;
  [[maybe_unused]] const auto n = ::write(wake_fd_, &one, sizeof(one));
}

void server::wait() {
  std::lock_guard lock(join_mutex_);
  if (!joined_ && thread_.joinable()) {
    thread_.join();
    joined_ = true;
  }
}

void server::stop() {
  request_stop();
  wait();
}

server_counters server::counters() const {
  server_counters c;
  c.accepted = accepted_.load(std::memory_order_relaxed);
  c.open = open_.load(std::memory_order_relaxed);
  c.refused = refused_.load(std::memory_order_relaxed);
  c.requests = requests_.load(std::memory_order_relaxed);
  c.shed = shed_.load(std::memory_order_relaxed);
  c.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  c.disconnects = disconnects_.load(std::memory_order_relaxed);
  c.stalls_closed = stalls_closed_.load(std::memory_order_relaxed);
  return c;
}

void server::loop() {
  // Tick fast enough that stall sweeps stay timely even with no events.
  const auto tick = std::max<std::chrono::milliseconds>(
      std::chrono::milliseconds{10},
      std::min<std::chrono::milliseconds>(config_.stall_timeout / 4,
                                          std::chrono::milliseconds{250}));
  std::vector<epoll_event> events(64);
  auto beat = obs::watchdog::instance().register_component("net/epoll");
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    beat.pulse();
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()),
                               static_cast<int>(tick.count()));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll itself failed; nothing sane left to do but shut down
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t drain = 0;
        [[maybe_unused]] const auto r = ::read(wake_fd_, &drain, sizeof(drain));
        continue;
      }
      if (fd == listen_fd_) {
        accept_ready();
        continue;
      }
      const auto it = connections_.find(fd);
      if (it == connections_.end()) continue;  // closed earlier this batch
      auto& conn = it->second;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        disconnects_.fetch_add(1, std::memory_order_relaxed);
        close_connection(fd);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) {
        if (!flush(fd, conn)) {
          close_connection(fd);
          continue;
        }
        update_epoll(fd, conn);
        if (conn.closing && conn.out_pos == conn.outbuf.size()) {
          close_connection(fd);
          continue;
        }
      }
      if ((events[i].events & EPOLLIN) != 0) handle_readable(fd, conn);
    }
    sweep_stalls();
  }
  beat.retire();
  // Shutdown: best-effort flush of pending responses, then close everything.
  for (auto& [fd, conn] : connections_) {
    flush(fd, conn);
    ::close(fd);
  }
  connections_.clear();
  open_.store(0, std::memory_order_relaxed);
  ::close(listen_fd_);
  ::close(epoll_fd_);
  ::close(wake_fd_);
  listen_fd_ = epoll_fd_ = -1;
}

void server::accept_ready() {
  static util::failpoint fp_accept("net.accept");
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure; epoll will re-report readiness
    }
    if (fp_accept.fire()) {
      // Injected accept failure: the connection is dropped at the door,
      // exactly like a transient ENFILE/EMFILE would.
      ::close(fd);
      refused_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (connections_.size() >= config_.max_connections) {
      ::close(fd);
      refused_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    auto& conn = connections_[fd];
    conn.last_progress = std::chrono::steady_clock::now();
    accepted_.fetch_add(1, std::memory_order_relaxed);
    const auto open = open_.fetch_add(1, std::memory_order_relaxed) + 1;
    obs::record_event(obs::event_kind::conn_open, static_cast<std::uint64_t>(fd),
                      open);
  }
}

void server::handle_readable(int fd, connection& conn) {
  static util::failpoint fp_recv("net.recv");
  char buf[64 * 1024];
  while (true) {
    if (fp_recv.fire()) {
      disconnects_.fetch_add(1, std::memory_order_relaxed);
      close_connection(fd);
      return;
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn.inbuf.append(buf, static_cast<std::size_t>(n));
      conn.last_progress = std::chrono::steady_clock::now();
      if (static_cast<std::size_t>(n) < sizeof(buf)) break;  // drained
      continue;
    }
    if (n == 0) {  // orderly EOF
      disconnects_.fetch_add(1, std::memory_order_relaxed);
      close_connection(fd);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    disconnects_.fetch_add(1, std::memory_order_relaxed);
    close_connection(fd);
    return;
  }

  // Process every complete frame in arrival order; a partial tail stays
  // buffered (and the stall sweep times it out if it never completes).
  std::size_t consumed = 0;
  while (!conn.closing) {
    frame_view frame;
    const auto status = decode_frame(conn.inbuf.data() + consumed,
                                     conn.inbuf.size() - consumed,
                                     config_.max_frame_bytes, frame);
    if (status == decode_status::need_more) break;
    if (status != decode_status::ok) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      net_protocol_errors_total().add(1);
      const auto code = status == decode_status::bad_crc    ? error_code::bad_crc
                        : status == decode_status::too_large ? error_code::too_large
                                                             : error_code::malformed;
      send_error(conn, 0, code,
                 std::string("invalid frame (") + error_code_name(code) + ")",
                 /*close_after=*/true);
      break;
    }
    consumed += frame.frame_bytes;
    process_frame(fd, conn, frame);
  }
  conn.inbuf.erase(0, consumed);

  if (!flush(fd, conn)) {
    close_connection(fd);
    return;
  }
  update_epoll(fd, conn);
  if (conn.closing && conn.out_pos == conn.outbuf.size()) close_connection(fd);
}

void server::process_frame(int fd, connection& conn, const frame_view& frame) {
  (void)fd;
  requests_.fetch_add(1, std::memory_order_relaxed);
  net_requests_total().add(1);
  if (!conn.handshaken) {
    if (frame.type != msg_type::hello) {
      send_error(conn, frame.request_id, error_code::bad_handshake,
                 "first frame must be a hello", /*close_after=*/true);
      return;
    }
    switch (parse_hello_request(frame)) {
      case hello_status::ok:
        conn.handshaken = true;
        encode_hello_response(conn.outbuf, frame.request_id);
        return;
      case hello_status::bad_version:
        send_error(conn, frame.request_id, error_code::bad_version,
                   "unsupported protocol version (server speaks " +
                       std::to_string(k_protocol_version) + ")",
                   /*close_after=*/true);
        return;
      case hello_status::foreign_endian:
        send_error(conn, frame.request_id, error_code::foreign_endian,
                   "client is big-endian; the spechd wire format is little-endian",
                   /*close_after=*/true);
        return;
      case hello_status::bad_magic:
      case hello_status::malformed:
        send_error(conn, frame.request_id, error_code::malformed,
                   "malformed hello", /*close_after=*/true);
        return;
    }
    return;
  }

  // Per-request tracing: traced kinds get an ambient request_trace (the
  // stage spans the dispatch runs on *this* thread append to it), an
  // end-to-end histogram sample, and a slow-ring offer. Stages that hop to
  // shard writer threads record into their histograms only.
  static auto& ingest_req_ns =
      obs::registry::instance().histogram("spechd_net_ingest_request_ns");
  static auto& query_req_ns =
      obs::registry::instance().histogram("spechd_net_query_request_ns");
  static auto& search_req_ns =
      obs::registry::instance().histogram("spechd_net_search_request_ns");
  const char* kind = nullptr;
  obs::histogram* total_hist = nullptr;
  switch (frame.type) {
    case msg_type::ingest: kind = "ingest"; total_hist = &ingest_req_ns; break;
    case msg_type::query: kind = "query"; total_hist = &query_req_ns; break;
    case msg_type::query_topk: kind = "search"; total_hist = &search_req_ns; break;
    default: break;
  }
  if (kind == nullptr || !obs::armed()) {
    dispatch_frame(conn, frame);
    return;
  }
  obs::request_trace trace;
  obs::trace_scope scope(trace);
  const auto start = std::chrono::steady_clock::now();
  dispatch_frame(conn, frame);
  const auto total_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  total_hist->record(total_ns);
  obs::slow_ring::instance().offer(kind, total_ns, trace);
}

void server::dispatch_frame(connection& conn, const frame_view& frame) {
  try {
    switch (frame.type) {
      case msg_type::ping:
        encode_pong(conn.outbuf, frame.request_id);
        return;
      case msg_type::ingest:
        handle_ingest(conn, frame);
        return;
      case msg_type::query: {
        static auto& parse_ns =
            obs::registry::instance().histogram("spechd_net_parse_ns");
        obs::trace_span parse_span(parse_ns, obs::stage::net_parse);
        ms::spectrum spectrum;
        if (!parse_query_request(frame, spectrum)) {
          protocol_errors_.fetch_add(1, std::memory_order_relaxed);
          net_protocol_errors_total().add(1);
          send_error(conn, frame.request_id, error_code::malformed,
                     "malformed query body", /*close_after=*/true);
          return;
        }
        parse_span.finish();
        encode_query_response(conn.outbuf, frame.request_id, service_.query(spectrum));
        return;
      }
      case msg_type::query_topk: {
        static auto& parse_ns =
            obs::registry::instance().histogram("spechd_net_parse_ns");
        obs::trace_span parse_span(parse_ns, obs::stage::net_parse);
        ms::spectrum spectrum;
        std::uint32_t top_k = 0;
        double tolerance_da = 0.0;
        if (!parse_search_request(frame, spectrum, top_k, tolerance_da)) {
          protocol_errors_.fetch_add(1, std::memory_order_relaxed);
          net_protocol_errors_total().add(1);
          send_error(conn, frame.request_id, error_code::malformed,
                     "malformed query_topk body", /*close_after=*/true);
          return;
        }
        parse_span.finish();
        // service_.search throws spechd::error when no library is loaded —
        // mapped to a typed `rejected` response by the catch below.
        encode_search_response(conn.outbuf, frame.request_id,
                               service_.search(spectrum, top_k, tolerance_da));
        return;
      }
      case msg_type::get_metrics: {
        // Snapshot + ring dump; neither blocks recording threads.
        wire_metrics metrics;
        metrics.snapshot = obs::registry::instance().snapshot();
        metrics.slow = obs::slow_ring::instance().dump();
        encode_metrics_response(conn.outbuf, frame.request_id, metrics);
        return;
      }
      case msg_type::get_debug_dump: {
        // The live twin of a `.sphcrash` dump: flight-recorder tail,
        // per-shard status table, and any currently stalled components.
        wire_debug_dump dump;
        dump.total_events_recorded = obs::flight_recorder::instance().total_recorded();
        dump.events = obs::flight_recorder::instance().snapshot();
        const auto shard_count = obs::status_shard_count();
        dump.shards.reserve(shard_count);
        for (std::size_t s = 0; s < shard_count; ++s) {
          const auto& status = obs::status_shard(s);
          wire_shard_status row;
          row.shard = static_cast<std::uint32_t>(s);
          row.health = status.health.load(std::memory_order_relaxed);
          row.generation = status.generation.load(std::memory_order_relaxed);
          row.journal_bytes = status.journal_bytes.load(std::memory_order_relaxed);
          row.journal_records = status.journal_records.load(std::memory_order_relaxed);
          row.queue_depth = status.queue_depth.load(std::memory_order_relaxed);
          dump.shards.push_back(row);
        }
        for (const auto& c : obs::watchdog::instance().components()) {
          if (c.stalled) dump.stalled.push_back(c.name);
        }
        encode_debug_dump_response(conn.outbuf, frame.request_id, dump);
        return;
      }
      case msg_type::stats: {
        const auto stats = service_.stats();
        wire_stats wire;
        wire.ingested = stats.ingested;
        wire.dropped = stats.dropped;
        wire.batches = stats.batches;
        wire.record_count = stats.record_count;
        wire.cluster_count = stats.cluster_count;
        wire.queue_depth = stats.queue_depth;
        wire.degraded_shards = stats.degraded_shards;
        wire.failed_shards = stats.failed_shards;
        wire.requests = requests_.load(std::memory_order_relaxed);
        wire.shed = shed_.load(std::memory_order_relaxed);
        encode_stats_response(conn.outbuf, frame.request_id, wire);
        return;
      }
      case msg_type::drain:
        service_.drain();
        encode_drain_response(conn.outbuf, frame.request_id);
        return;
      default:
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        net_protocol_errors_total().add(1);
        send_error(conn, frame.request_id, error_code::malformed,
                   std::string("unexpected message type ") + msg_type_name(frame.type),
                   /*close_after=*/true);
        return;
    }
  } catch (const spechd::error& e) {
    // A refusal from the service (degraded shard, drain rethrowing an
    // ingest error, ...) is the client's problem, not the connection's.
    send_error(conn, frame.request_id, error_code::rejected, e.what(),
               /*close_after=*/false);
  } catch (const std::exception& e) {
    send_error(conn, frame.request_id, error_code::server_error, e.what(),
               /*close_after=*/false);
  }
}

void server::handle_ingest(connection& conn, const frame_view& frame) {
  // Admission control *before* parsing the batch: once the aggregate
  // queue depth reaches the shed threshold, a further ingest would make
  // the event loop block in a full shard queue — refuse it with a typed
  // response instead, keeping in-flight work bounded and the loop live.
  static auto& admission_ns =
      obs::registry::instance().histogram("spechd_ingest_admission_ns");
  obs::trace_span admission_span(admission_ns, obs::stage::admission);
  const auto depth = service_.queue_depth();
  const bool shed = depth >= shed_threshold_;
  admission_span.finish();
  if (shed) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    net_shed_total().add(1);
    obs::record_event(obs::event_kind::shed_decision, depth, shed_threshold_,
                      frame.request_id);
    send_error(conn, frame.request_id, error_code::shed_load,
               "service overloaded (queue depth at shed threshold " +
                   std::to_string(shed_threshold_) + "); retry with backoff",
               /*close_after=*/false);
    return;
  }
  static auto& parse_ns = obs::registry::instance().histogram("spechd_net_parse_ns");
  obs::trace_span parse_span(parse_ns, obs::stage::net_parse);
  std::vector<ms::spectrum> batch;
  if (!parse_ingest_request(frame, batch)) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    net_protocol_errors_total().add(1);
    send_error(conn, frame.request_id, error_code::malformed,
               "malformed ingest body", /*close_after=*/true);
    return;
  }
  parse_span.finish();
  const auto count = static_cast<std::uint64_t>(batch.size());
  service_.ingest(std::move(batch));  // throws spechd::error on rejection
  encode_ingest_response(conn.outbuf, frame.request_id, count);
}

void server::send_error(connection& conn, std::uint64_t request_id, error_code code,
                        const std::string& message, bool close_after) {
  encode_error_response(conn.outbuf, request_id, code, message);
  if (close_after) conn.closing = true;
}

bool server::flush(int fd, connection& conn) {
  static util::failpoint fp_send("net.send");
  while (conn.out_pos < conn.outbuf.size()) {
    if (fp_send.fire()) {
      disconnects_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    const ssize_t n = ::send(fd, conn.outbuf.data() + conn.out_pos,
                             conn.outbuf.size() - conn.out_pos, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_pos += static_cast<std::size_t>(n);
      conn.last_progress = std::chrono::steady_clock::now();
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    // EPIPE/ECONNRESET: the peer vanished mid-response. MSG_NOSIGNAL (plus
    // the ignored SIGPIPE) makes this an errno on *this* connection only.
    disconnects_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (conn.out_pos == conn.outbuf.size()) {
    conn.outbuf.clear();
    conn.out_pos = 0;
  } else if (conn.outbuf.size() - conn.out_pos > config_.max_outbound_bytes) {
    // Slow reader: responses are piling up faster than the peer drains
    // them. Closing bounds the server-side memory a client can pin.
    stalls_closed_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void server::update_epoll(int fd, connection& conn) {
  const bool want_write = conn.out_pos < conn.outbuf.size();
  if (want_write == conn.want_write) return;
  conn.want_write = want_write;
  epoll_event ev{};
  ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0U);
  ev.data.fd = fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
}

void server::close_connection(int fd) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  connections_.erase(it);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  const auto open = open_.fetch_sub(1, std::memory_order_relaxed) - 1;
  obs::record_event(obs::event_kind::conn_close, static_cast<std::uint64_t>(fd),
                    open);
}

void server::sweep_stalls() {
  const auto now = std::chrono::steady_clock::now();
  std::vector<std::pair<int, std::uint64_t>> stalled;  // fd, idle ms
  for (const auto& [fd, conn] : connections_) {
    const bool mid_frame = !conn.inbuf.empty();       // partial frame buffered
    const bool pending = conn.out_pos < conn.outbuf.size();
    if ((mid_frame || pending) && now - conn.last_progress > config_.stall_timeout) {
      const auto idle_ms = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              now - conn.last_progress)
              .count());
      stalled.emplace_back(fd, idle_ms);
    }
  }
  for (const auto& [fd, idle_ms] : stalled) {
    stalls_closed_.fetch_add(1, std::memory_order_relaxed);
    obs::record_event(obs::event_kind::conn_reap, static_cast<std::uint64_t>(fd),
                      idle_ms);
    close_connection(fd);
  }
}

}  // namespace spechd::net
