// SpecHD wire protocol: length-prefixed, CRC-32-framed binary messages
// over a byte stream — the network face of the serving tier.
//
// Frames reuse the `.sphjrnl` record idiom so torn/corrupt detection is
// the same everywhere bytes cross a trust boundary:
//
//   u32 payload_bytes, u32 CRC-32(payload)
//   payload: type u8, request_id u64, body
//
// All integers and floats are little-endian (util/endian.hpp pins the
// build to that). The first frame on a connection must be a `hello`
// request carrying the protocol magic, version, and a native-order endian
// marker — a big-endian client's marker reads back byte-reversed, and the
// server rejects it with a typed `foreign_endian` error instead of a
// baffling CRC failure on the first real payload.
//
// Requests and responses are matched by `request_id` (client-chosen,
// echoed verbatim), so a client may pipeline requests; the server
// processes each connection's frames in arrival order and responds in
// that order.
//
// Spectra cross the wire in exactly the journal's spectrum layout
// (ms/spectrum_wire.hpp) — the basis of the golden guarantee that
// networked ingest is bit-identical to in-process ingest.
//
// Every refusal is a typed `error` response (code + human-readable
// message): admission control sheds with `shed_load`, a read-only shard
// rejects with `rejected`, malformed bytes get `malformed`/`too_large`/
// `bad_crc` followed by connection close.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ms/spectrum.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/search.hpp"
#include "serve/shard.hpp"

namespace spechd::net {

inline constexpr std::uint32_t k_protocol_version = 1;
/// Written as a native u32 in the hello body; reads back byte-reversed
/// when the peer's byte order differs.
inline constexpr std::uint32_t k_endian_marker = 0x01020304;
/// Hello magic ("SPNW": SPechd NetWork).
inline constexpr char k_hello_magic[4] = {'S', 'P', 'N', 'W'};
/// Default cap on one frame's payload — one ingest batch; far beyond any
/// real batch, and small enough that a corrupt/hostile length field never
/// drives a huge allocation before the CRC could catch it.
inline constexpr std::size_t k_default_max_frame_bytes = 32U << 20;

enum class msg_type : std::uint8_t {
  // requests
  hello = 1,
  ping = 2,
  ingest = 3,
  query = 4,
  stats = 5,
  drain = 6,
  query_topk = 7,      ///< OMS search: spectrum + top_k + tolerance
  get_metrics = 8,     ///< full telemetry snapshot (src/obs registry + slow ring)
  get_debug_dump = 9,  ///< flight-recorder tail + shard status + watchdog stalls
  // responses
  hello_ok = 64,
  pong = 65,
  ingest_ok = 66,
  query_ok = 67,
  stats_ok = 68,
  drain_ok = 69,
  error = 70,
  query_topk_ok = 71,
  metrics_ok = 72,
  debug_dump_ok = 73,
};

bool known_msg_type(std::uint8_t type) noexcept;
const char* msg_type_name(msg_type type) noexcept;

/// Typed refusal codes carried by `error` responses.
enum class error_code : std::uint16_t {
  shed_load = 1,       ///< admission control: queues past the shed threshold
  malformed = 2,       ///< frame/body did not parse (connection closes)
  bad_crc = 3,         ///< frame CRC mismatch (connection closes)
  too_large = 4,       ///< declared frame length above the cap (closes)
  bad_version = 5,     ///< hello carried an unsupported protocol version
  foreign_endian = 6,  ///< hello endian marker was byte-reversed
  bad_handshake = 7,   ///< first frame was not a hello
  rejected = 8,        ///< service refused (degraded/failed/shutdown shard)
  server_error = 9,    ///< unexpected server-side exception
};

const char* error_code_name(error_code code) noexcept;

/// Aggregate counters a `stats` request returns (service + server tier).
struct wire_stats {
  std::uint64_t ingested = 0;
  std::uint64_t dropped = 0;
  std::uint64_t batches = 0;
  std::uint64_t record_count = 0;
  std::uint64_t cluster_count = 0;
  std::uint64_t queue_depth = 0;
  std::uint64_t degraded_shards = 0;
  std::uint64_t failed_shards = 0;
  std::uint64_t requests = 0;  ///< frames the server processed
  std::uint64_t shed = 0;      ///< ingests refused by admission control
};

/// What a `get_metrics` request returns: the whole registry plus the
/// slow-request ring (obs/metrics.hpp, obs/trace.hpp).
struct wire_metrics {
  obs::metrics_snapshot snapshot;
  std::vector<obs::slow_request> slow;
  friend bool operator==(const wire_metrics&, const wire_metrics&) = default;
};

/// One shard's live status row in a debug dump (obs/flight.hpp's
/// shard-status table, mirrored by shard::update_status on every state
/// change).
struct wire_shard_status {
  std::uint32_t shard = 0;
  std::uint32_t health = 0;  ///< serve::shard_health numeric value
  std::uint64_t generation = 0;
  std::uint64_t journal_bytes = 0;
  std::uint64_t journal_records = 0;
  std::uint64_t queue_depth = 0;
  friend bool operator==(const wire_shard_status&, const wire_shard_status&) = default;
};

/// What a `get_debug_dump` request returns: the flight recorder's current
/// event tail (seq-ordered), lifetime recorded-event count (so the caller
/// can see how much the rings have dropped), the per-shard status table,
/// and the names of any components the watchdog currently flags as
/// stalled. This is the live-process twin of a `.sphcrash` dump — same
/// data, fetched over the wire instead of out of a crash file.
struct wire_debug_dump {
  std::uint64_t total_events_recorded = 0;
  std::vector<obs::flight_event> events;
  std::vector<wire_shard_status> shards;
  std::vector<std::string> stalled;
  friend bool operator==(const wire_debug_dump&, const wire_debug_dump&) = default;
};

// --- frame decode ------------------------------------------------------------

enum class decode_status {
  need_more,  ///< buffer ends mid-frame; read more bytes
  ok,         ///< one complete, CRC-verified frame parsed
  bad_crc,    ///< frame CRC mismatch
  too_large,  ///< declared payload exceeds the cap
  malformed,  ///< payload too small to hold type + request_id
};

/// Zero-copy view of one decoded frame; `body` points into the caller's
/// buffer and is valid only until that buffer changes.
struct frame_view {
  msg_type type{};
  std::uint64_t request_id = 0;
  const char* body = nullptr;
  std::size_t body_bytes = 0;
  std::size_t frame_bytes = 0;  ///< total bytes to consume from the buffer
};

/// Attempts to decode one frame from the front of `data`. On `ok` the
/// caller consumes `out.frame_bytes` and may try again; on `need_more` it
/// reads more input; anything else is a protocol violation (respond with
/// the matching typed error, then close).
decode_status decode_frame(const char* data, std::size_t size,
                           std::size_t max_frame_bytes, frame_view& out);

// --- encoders (append one complete frame to `out`) ---------------------------

void encode_hello_request(std::string& out, std::uint64_t request_id);
void encode_hello_response(std::string& out, std::uint64_t request_id);
void encode_ping(std::string& out, std::uint64_t request_id);
void encode_pong(std::string& out, std::uint64_t request_id);
void encode_ingest_request(std::string& out, std::uint64_t request_id,
                           const std::vector<ms::spectrum>& batch);
void encode_ingest_response(std::string& out, std::uint64_t request_id,
                            std::uint64_t accepted);
void encode_query_request(std::string& out, std::uint64_t request_id,
                          const ms::spectrum& spectrum);
void encode_query_response(std::string& out, std::uint64_t request_id,
                           const serve::query_result& result);
/// OMS search (`query --topk` over the wire): the spectrum crosses in the
/// journal's wire layout — exactly like ingest/query — plus the top-k and
/// modification-mass tolerance; the response carries every search_hit
/// field, so a networked search is field-for-field comparable to an
/// in-process clustering_service::search (the golden tests pin equality).
void encode_search_request(std::string& out, std::uint64_t request_id,
                           const ms::spectrum& spectrum, std::uint32_t top_k,
                           double tolerance_da);
void encode_search_response(std::string& out, std::uint64_t request_id,
                            const serve::search_result& result);
/// Telemetry scrape (`client --metrics` over the wire): the full metrics
/// registry snapshot — counters, gauges, histograms with their non-empty
/// buckets — plus the slow-request ring dump. Building the snapshot never
/// blocks recording threads (relaxed-sum of per-thread shards), so a
/// scrape is safe against a server under full ingest load.
void encode_metrics_request(std::string& out, std::uint64_t request_id);
void encode_metrics_response(std::string& out, std::uint64_t request_id,
                             const wire_metrics& metrics);
/// Debug dump (`client --debug-dump` over the wire): flight-recorder
/// events, per-shard status, watchdog stalls. Snapshotting the rings
/// never blocks recording threads; torn slots are dropped, not sent.
void encode_debug_dump_request(std::string& out, std::uint64_t request_id);
void encode_debug_dump_response(std::string& out, std::uint64_t request_id,
                                const wire_debug_dump& dump);
void encode_stats_request(std::string& out, std::uint64_t request_id);
void encode_stats_response(std::string& out, std::uint64_t request_id,
                           const wire_stats& stats);
void encode_drain_request(std::string& out, std::uint64_t request_id);
void encode_drain_response(std::string& out, std::uint64_t request_id);
void encode_error_response(std::string& out, std::uint64_t request_id,
                           error_code code, const std::string& message);

// --- body parsers (false = malformed body) -----------------------------------

enum class hello_status { ok, bad_magic, bad_version, foreign_endian, malformed };
hello_status parse_hello_request(const frame_view& frame);

bool parse_ingest_request(const frame_view& frame, std::vector<ms::spectrum>& batch);
bool parse_ingest_response(const frame_view& frame, std::uint64_t& accepted);
bool parse_query_request(const frame_view& frame, ms::spectrum& spectrum);
bool parse_query_response(const frame_view& frame, serve::query_result& result);
bool parse_search_request(const frame_view& frame, ms::spectrum& spectrum,
                          std::uint32_t& top_k, double& tolerance_da);
bool parse_search_response(const frame_view& frame, serve::search_result& result);
bool parse_metrics_response(const frame_view& frame, wire_metrics& metrics);
bool parse_debug_dump_response(const frame_view& frame, wire_debug_dump& dump);
bool parse_stats_response(const frame_view& frame, wire_stats& stats);
bool parse_error_response(const frame_view& frame, error_code& code,
                          std::string& message);

}  // namespace spechd::net
