#include "fpga/dse.hpp"

#include <algorithm>

#include "fpga/resources.hpp"

namespace spechd::fpga {

std::vector<dse_point> explore(const ms::dataset_descriptor& ds,
                               const spechd_hw_config& base, const dse_sweep& sweep) {
  std::vector<dse_point> points;
  for (const auto ck : sweep.cluster_kernels) {
    for (const auto ek : sweep.encoder_kernels) {
      for (const auto res : sweep.resolutions) {
        for (const auto p2p : sweep.p2p) {
          for (const auto dim : sweep.dims) {
            spechd_hw_config hw = base;
            hw.cluster_kernels = ck;
            hw.encoder_kernels = ek;
            hw.bucket_resolution = res;
            hw.p2p_enabled = p2p;
            hw.encoder.dim = dim;
            hw.cluster.dim = dim;

            const auto run = model_spechd_run(ds, hw);
            dse_point pt;
            pt.cluster_kernels = ck;
            pt.encoder_kernels = ek;
            pt.bucket_resolution = res;
            pt.p2p = p2p;
            pt.dim = dim;
            pt.end_to_end_s = run.time.end_to_end();
            pt.cluster_s = run.time.cluster;
            pt.energy_j = run.energy.end_to_end();
            pt.fits_hbm = run.fits_hbm;
            // Feasibility on the actual fabric: the largest modelled
            // bucket bounds the on-chip matrix tile.
            const auto sizes = model_bucket_sizes(ds.spectra, hw);
            std::uint64_t largest = 0;
            for (const auto s : sizes) largest = std::max(largest, s);
            const auto usage = estimate_design(hw.encoder, ek, hw.cluster, ck, 34000,
                                               64, static_cast<std::size_t>(largest));
            pt.fabric_utilisation = worst_utilisation(usage, u280_capacity());
            pt.fits_fabric = pt.fabric_utilisation <= 1.0;
            points.push_back(pt);
          }
        }
      }
    }
  }
  std::sort(points.begin(), points.end(),
            [](const dse_point& a, const dse_point& b) { return a.edp() < b.edp(); });
  return points;
}

}  // namespace spechd::fpga
