// MSAS near-storage preprocessing model (Table I).
//
// The paper integrates the MSAS accelerator [14] "into the same die as the
// SSD's embedded cores", fetching raw spectra straight from NAND channels
// and running Spectra Filter -> bitonic Top-k -> Scale/Normalize in
// storage. Table I reports preprocessing time and energy for five PRIDE
// datasets; this module reproduces those rows from first principles:
//
//   time   = max(NAND streaming time, accelerator compute time) + fixed setup
//   energy = time * (SSD active power) + per-spectrum accelerator energy
//
// The accelerator never beats the NAND channels (it is datapath-matched),
// so time is NAND-bandwidth-bound, matching Table I's near-linear scaling
// in dataset size.
#pragma once

#include <cstdint>

#include "fpga/device.hpp"
#include "ms/datasets.hpp"

namespace spechd::fpga {

struct msas_result {
  double time_s = 0.0;
  double energy_j = 0.0;
  double nand_stream_s = 0.0;     ///< NAND read component
  double compute_s = 0.0;         ///< accelerator component (overlapped)
  double output_gb = 0.0;         ///< filtered/top-k output volume
};

struct msas_config {
  ssd_device ssd = intel_p4500_msas();
  std::size_t top_k = 50;
  double setup_s = 0.05;             ///< per-job firmware/dma setup
  double per_spectrum_energy_nj = 200.0;  ///< accelerator dynamic energy/spectrum
  /// Post-filter output bytes per spectrum: top_k peaks * (f64 + f32) +
  /// ~64 B record header.
  double output_bytes_per_spectrum() const noexcept {
    return static_cast<double>(top_k) * 12.0 + 64.0;
  }
};

/// Models preprocessing one dataset (Table I row).
msas_result preprocess_dataset(const ms::dataset_descriptor& ds, const msas_config& config);

}  // namespace spechd::fpga
