// Cycle models of SpecHD's two HLS kernels (Sec. III-B, III-C).
//
//   * hd_encoding — the ID-Level encoder: streams (m/z, intensity) pairs,
//     binds ID and Level vectors (XOR), accumulates, majority-thresholds.
//     Array-partitioned item memories let the bind/accumulate loop run at
//     II = 1 over D/unroll-bit slices.
//   * agglomerative_ccl_kernel — distance-matrix construction (unrolled
//     XOR + popcount over D-bit vectors) followed by NN-chain HAC with
//     pipelined minimum scans and Lance–Williams updates.
//
// Models accept either analytic workload shapes (spectrum/bucket counts)
// or measured operation counters from the reference implementation, so
// simulated time can be produced both for paper-scale datasets and for the
// exact workloads executed in tests.
#pragma once

#include <cstdint>

#include "cluster/nn_chain.hpp"
#include "fpga/device.hpp"
#include "fpga/hls_kernel.hpp"

namespace spechd::fpga {

/// Encoder kernel configuration (HLS pragmas as numbers).
struct encoder_kernel_config {
  std::uint64_t dim = 2048;        ///< D_hv
  /// Bits bound+accumulated per cycle. The paper runs a *single* encoder
  /// CU and notes encoding is its throughput constraint (Sec. IV-C); a
  /// 32-bit-slice accumulator datapath reproduces the published end-to-end
  /// envelope ("5 minutes" for PXD000561).
  std::uint64_t bind_unroll = 32;
  std::uint64_t majority_unroll = 256;  ///< majority bits resolved per cycle
  std::uint64_t pipeline_depth = 24;
  std::uint64_t per_spectrum_overhead = 12;  ///< stream framing cycles
};

/// Cycles to encode one spectrum with `peaks` quantised peaks.
std::uint64_t encoder_cycles_per_spectrum(std::uint64_t peaks,
                                          const encoder_kernel_config& config) noexcept;

/// Cycles to encode a batch (single encoder instance, streaming).
std::uint64_t encoder_cycles(std::uint64_t spectra, double avg_peaks,
                             const encoder_kernel_config& config) noexcept;

/// Clustering kernel configuration.
struct cluster_kernel_config {
  std::uint64_t dim = 2048;
  /// Bits XORed+popcounted per cycle per CU. 64 (one BRAM word) calibrates
  /// the 5-CU configuration to the paper's 80 s standalone clustering on
  /// PXD000561; see DESIGN.md calibration notes.
  std::uint64_t xor_popcount_width = 64;
  std::uint64_t scan_lanes = 16;           ///< parallel comparators in min-scan
  std::uint64_t update_lanes = 8;          ///< parallel Lance–Williams updates
  std::uint64_t pipeline_depth = 32;
  std::uint64_t per_bucket_overhead = 200;  ///< BRAM init, result flush
};

/// Cycles for the distance-matrix phase of one bucket of n spectra.
std::uint64_t distance_phase_cycles(std::uint64_t n, const cluster_kernel_config& config) noexcept;

/// Cycles for the NN-chain phase given measured algorithm counters.
std::uint64_t nn_chain_phase_cycles(const cluster::hac_stats& stats,
                                    const cluster_kernel_config& config) noexcept;

/// Analytic NN-chain cycles for a bucket of n (uses the expected operation
/// counts of NN-chain: ~3 n^2 comparisons, ~n^2/2 updates).
std::uint64_t nn_chain_phase_cycles_analytic(std::uint64_t n,
                                             const cluster_kernel_config& config) noexcept;

/// Total clustering-kernel cycles for one bucket (analytic path).
std::uint64_t cluster_bucket_cycles(std::uint64_t n, const cluster_kernel_config& config) noexcept;

}  // namespace spechd::fpga
