// Runtime/energy cost models for the comparison tools (Fig. 7, 8, 9).
//
// Each baseline is modelled with the phase structure its publication
// describes, with rate constants calibrated to the paper's anchors:
//   * HyperSpec-HAC  — CPU loading/preprocessing, GPU HDC encode,
//     fastcluster (CPU) HAC. Anchor: 1000 s standalone clustering and ~6x
//     end-to-end vs SpecHD on PXD000561.
//   * HyperSpec-DBSCAN — same front end, cuML GPU DBSCAN ("threefold lower
//     runtime than HyperSpec-HAC" clustering).
//   * GLEAMS — CPU preprocessing, deep-network embedding (GPU inference,
//     the dominant cost), HAC in 32-d. Anchors: 31-54x e2e, 14.3x standalone.
//   * Falcon — CPU preprocessing, LSH vectorisation + ANN index build and
//     query. Anchor: ~100x standalone clustering.
//   * msCRUSH — CPU preprocessing + iterative LSH bucketing + consensus.
//
// The per-pair / per-spectrum constants are *documented calibration
// inputs*; benches print the paper anchor next to every model output.
#pragma once

#include <string_view>
#include <vector>

#include "fpga/dataflow.hpp"
#include "fpga/device.hpp"
#include "ms/datasets.hpp"

namespace spechd::fpga {

enum class tool {
  spechd,
  hyperspec_hac,
  hyperspec_dbscan,
  gleams,
  falcon,
  mscrush,
};

std::string_view tool_name(tool t) noexcept;

/// Modelled phase times/energies for one tool on one dataset.
struct tool_run_model {
  tool which = tool::spechd;
  phase_times time;
  phase_energy energy;
};

/// Baseline calibration constants (all rates per second unless noted).
struct baseline_rates {
  // CPU loading + preprocessing (file parse, filter, top-k); I/O + parse
  // bound. ~82% of conventional tools' end-to-end time (Sec. II-B, [14]).
  double cpu_preprocess_gb_per_s = 0.165;
  double cpu_preprocess_power_w = 120.0;  ///< parse-bound package power

  // HyperSpec GPU HDC encoding.
  double gpu_encode_spectra_per_s = 700e3;
  double gpu_encode_power_w = 350.0;

  // fastcluster-style CPU HAC over binary HVs (per candidate pair);
  // calibrated so PXD000561 standalone clustering lands at the paper's
  // 1000 s anchor.
  double cpu_hac_pairs_per_s = 3.56e6;
  double cpu_hac_power_w = 120.0;

  // cuML GPU DBSCAN: 3x faster than the CPU HAC path (paper text).
  double gpu_dbscan_speedup_vs_hac = 3.0;
  double gpu_dbscan_power_w = 110.0;

  // GLEAMS embedding inference (the dominant cost; calibrated to the
  // 31-54x end-to-end band) + 32-d HAC (14.3x standalone anchor).
  double gleams_embed_spectra_per_s = 1.48e3;
  double gleams_embed_power_w = 300.0;
  double gleams_cluster_pairs_per_s = 3.11e6;
  double gleams_cluster_power_w = 120.0;

  // Falcon ANN index build + query (per spectrum) and post-linking.
  double falcon_index_spectra_per_s = 2.6e3;
  double falcon_power_w = 100.0;

  // msCRUSH iterative LSH (per spectrum per iteration).
  double mscrush_spectra_per_s_per_iter = 21e3;
  int mscrush_iterations = 100;
  double mscrush_power_w = 110.0;
};

/// Candidate pair count shared by the pairwise-clustering models: the same
/// bucketed workload SpecHD sees (tools bucket/partition comparably).
double modelled_pair_count(const ms::dataset_descriptor& ds, const spechd_hw_config& hw);

/// Models one tool on one dataset. SpecHD delegates to model_spechd_run.
tool_run_model model_tool_run(tool t, const ms::dataset_descriptor& ds,
                              const spechd_hw_config& hw, const baseline_rates& rates);

/// All tools on one dataset (order: spechd, hyperspec_hac, hyperspec_dbscan,
/// gleams, falcon, mscrush).
std::vector<tool_run_model> model_all_tools(const ms::dataset_descriptor& ds,
                                            const spechd_hw_config& hw,
                                            const baseline_rates& rates);

}  // namespace spechd::fpga
