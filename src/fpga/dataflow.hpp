// End-to-end SpecHD execution model (Fig. 3 dataflow).
//
// Pipeline: MSAS near-storage preprocessing -> P2P NVMe->HBM transfer ->
// 1 encoder kernel -> 5 clustering kernels (bucket jobs scheduled onto
// kernel instances) -> consensus selection. The encoder overlaps with the
// P2P stream (dataflow), the clustering kernels overlap with encoding once
// their bucket's HVs are resident; we model phases with the coarser but
// conservative "max of overlapped stages" rule used for HLS dataflow
// regions plus LPT list-scheduling of bucket jobs onto kernel instances.
#pragma once

#include <cstdint>
#include <vector>

#include "fpga/device.hpp"
#include "fpga/kernels.hpp"
#include "fpga/memory_model.hpp"
#include "fpga/msas.hpp"
#include "ms/datasets.hpp"

namespace spechd::fpga {

/// SpecHD hardware configuration under evaluation.
struct spechd_hw_config {
  fpga_device fpga = alveo_u280();
  ssd_device ssd = intel_p4500_msas();
  encoder_kernel_config encoder;
  cluster_kernel_config cluster;
  unsigned encoder_kernels = 1;   ///< paper: "a single encoder"
  unsigned cluster_kernels = 5;   ///< paper: "5 clustering kernels"
  bool p2p_enabled = true;        ///< peer-to-peer NVMe->HBM
  double bucket_resolution = 0.08;///< Eq. 1 resolution for the bucket model
  std::size_t top_k = 50;
  double avg_mass_span_da = 5000.0;  ///< precursor-mass span covered by data
  double bucket_skew = 2.0;          ///< sum(n^2)/N/mean factor (size spread)
};

/// Phase breakdown of a modelled run (seconds).
struct phase_times {
  double preprocess = 0.0;
  double transfer = 0.0;
  double encode = 0.0;
  double cluster = 0.0;
  double consensus = 0.0;

  double end_to_end() const noexcept {
    return preprocess + transfer + encode + cluster + consensus;
  }
  double standalone_clustering() const noexcept { return cluster + consensus; }
};

/// Energy breakdown (joules), aligned with phase_times.
struct phase_energy {
  double preprocess = 0.0;
  double transfer = 0.0;
  double encode = 0.0;
  double cluster = 0.0;
  double consensus = 0.0;

  double end_to_end() const noexcept {
    return preprocess + transfer + encode + cluster + consensus;
  }
  double standalone_clustering() const noexcept { return cluster + consensus; }
};

struct spechd_run_model {
  phase_times time;
  phase_energy energy;
  std::size_t modelled_buckets = 0;
  double avg_bucket_size = 0.0;
  double hv_bytes = 0.0;   ///< HBM residency of all encoded HVs
  bool fits_hbm = true;
};

/// Deterministic synthetic bucket-size distribution for a dataset of
/// `spectra` spectra at Eq.-1 resolution `resolution`: sizes are drawn from
/// a truncated geometric-like spread with the configured skew (matches the
/// long-tailed precursor-mass histograms of real proteome data).
std::vector<std::uint64_t> model_bucket_sizes(std::uint64_t spectra,
                                              const spechd_hw_config& config);

/// LPT (longest processing time) list-scheduling makespan of per-bucket
/// cycle costs onto `kernels` instances.
std::uint64_t schedule_makespan_cycles(std::vector<std::uint64_t> job_cycles,
                                       unsigned kernels);

/// Models a full SpecHD run over a paper dataset descriptor.
spechd_run_model model_spechd_run(const ms::dataset_descriptor& ds,
                                  const spechd_hw_config& config);

}  // namespace spechd::fpga
