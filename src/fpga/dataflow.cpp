#include "fpga/dataflow.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "util/rng.hpp"

namespace spechd::fpga {

std::vector<std::uint64_t> model_bucket_sizes(std::uint64_t spectra,
                                              const spechd_hw_config& config) {
  // Bucket count: Eq. 1 maps precursor neutral-ish mass / resolution; with
  // two dominant charge states the key space spans ~2x the mass span.
  const double key_span = config.avg_mass_span_da * 2.0 / config.bucket_resolution;
  const auto buckets =
      static_cast<std::uint64_t>(std::max(1.0, std::min<double>(key_span,
                                                                static_cast<double>(spectra))));
  const double mean = static_cast<double>(spectra) / static_cast<double>(buckets);

  // Long-tailed sizes: exponential spread around the mean with the
  // configured skew (sum n_i^2 = skew * N * mean). Deterministic seed.
  xoshiro256ss rng(0xB0C4E7ULL ^ spectra);
  std::vector<std::uint64_t> sizes;
  sizes.reserve(buckets);
  std::uint64_t assigned = 0;
  for (std::uint64_t b = 0; b < buckets && assigned < spectra; ++b) {
    // Exponential with mean `mean`, scaled so the empirical second moment
    // approximates the requested skew; clamp to at least 1.
    const double u = std::max(1e-12, rng.uniform());
    double draw = -std::log(u) * mean * (config.bucket_skew / 2.0);
    auto size = static_cast<std::uint64_t>(std::max(1.0, draw));
    size = std::min<std::uint64_t>(size, spectra - assigned);
    sizes.push_back(size);
    assigned += size;
  }
  // Distribute any remainder over existing buckets round-robin.
  std::size_t i = 0;
  while (assigned < spectra && !sizes.empty()) {
    ++sizes[i % sizes.size()];
    ++assigned;
    ++i;
  }
  return sizes;
}

std::uint64_t schedule_makespan_cycles(std::vector<std::uint64_t> job_cycles,
                                       unsigned kernels) {
  if (kernels == 0 || job_cycles.empty()) return 0;
  std::sort(job_cycles.begin(), job_cycles.end(), std::greater<>());
  // Min-heap of kernel finish times.
  std::priority_queue<std::uint64_t, std::vector<std::uint64_t>, std::greater<>> finish;
  for (unsigned k = 0; k < kernels; ++k) finish.push(0);
  for (const auto job : job_cycles) {
    auto t = finish.top();
    finish.pop();
    finish.push(t + job);
  }
  std::uint64_t makespan = 0;
  while (!finish.empty()) {
    makespan = finish.top();
    finish.pop();
  }
  return makespan;
}

spechd_run_model model_spechd_run(const ms::dataset_descriptor& ds,
                                  const spechd_hw_config& config) {
  spechd_run_model run;

  // --- Phase 1: near-storage preprocessing (Table I model) ----------------
  msas_config pp;
  pp.ssd = config.ssd;
  pp.top_k = config.top_k;
  const auto msas = preprocess_dataset(ds, pp);
  run.time.preprocess = msas.time_s;
  run.energy.preprocess = msas.energy_j;

  // --- Phase 2: transfer preprocessed peaks to the FPGA -------------------
  const double payload_bytes = msas.output_gb * 1e9;
  transfer_model path =
      config.p2p_enabled
          ? p2p_path(config.fpga, config.ssd)
          : host_staged_path(config.fpga.pcie_p2p_bandwidth, config.ssd, server_cpu());
  run.time.transfer = path.seconds(payload_bytes);
  run.energy.transfer = run.time.transfer *
                        (config.fpga.power_idle_w + config.ssd.power_active_w);

  // --- Phase 3: encoding (1 encoder kernel by default) --------------------
  const double avg_peaks = std::min(static_cast<double>(config.top_k),
                                    ds.avg_peaks_per_spectrum);
  const auto enc_cycles = encoder_cycles(ds.spectra, avg_peaks, config.encoder);
  run.time.encode = cycles_to_seconds(enc_cycles / std::max(1U, config.encoder_kernels),
                                      config.fpga.clock_hz);
  // Only the (small) encoder CU plus HBM traffic is active during encoding;
  // board power sits well below the all-CUs-active figure.
  run.energy.encode = run.time.encode * (config.fpga.power_active_w * 0.62);

  // HBM residency of the encoded HVs.
  run.hv_bytes = static_cast<double>(ds.spectra) *
                 (static_cast<double>(config.encoder.dim) / 8.0);
  run.fits_hbm = hbm_access(config.fpga, run.hv_bytes, 1.0).fits;

  // --- Phase 4: clustering (bucket jobs on cluster_kernels instances) -----
  const auto sizes = model_bucket_sizes(ds.spectra, config);
  run.modelled_buckets = sizes.size();
  double total = 0.0;
  for (const auto s : sizes) total += static_cast<double>(s);
  run.avg_bucket_size = sizes.empty() ? 0.0 : total / static_cast<double>(sizes.size());

  std::vector<std::uint64_t> jobs;
  jobs.reserve(sizes.size());
  for (const auto s : sizes) jobs.push_back(cluster_bucket_cycles(s, config.cluster));
  const auto makespan = schedule_makespan_cycles(std::move(jobs), config.cluster_kernels);
  run.time.cluster = cycles_to_seconds(makespan, config.fpga.clock_hz);
  // Clustering exercises the cluster CUs only; board power sits below the
  // all-kernels-active figure.
  run.energy.cluster = run.time.cluster * (config.fpga.power_active_w * 0.85);

  // --- Phase 5: consensus + write-back -------------------------------------
  // Medoid evaluation re-reads each bucket's distance rows once; modelled
  // as one HBM pass over the matrices plus a fixed per-bucket latency.
  double matrix_bytes = 0.0;
  for (const auto s : sizes) {
    matrix_bytes += s < 2 ? 0.0 : static_cast<double>(s) * (s - 1) / 2.0 * 2.0;  // q16
  }
  run.time.consensus =
      matrix_bytes / config.fpga.hbm_bandwidth +
      static_cast<double>(sizes.size()) * 2e-6;
  run.energy.consensus = run.time.consensus * config.fpga.power_active_w * 0.5;

  return run;
}

}  // namespace spechd::fpga
