// Discrete-event simulation of the SpecHD dataflow (Fig. 3).
//
// The phase-additive model in dataflow.hpp charges transfer, encoding and
// clustering sequentially — a conservative bound. On the card the three
// stages overlap: the P2P stream feeds the encoder as buckets arrive, and
// each clustering kernel starts as soon as *its* bucket's hypervectors are
// resident in HBM. This module replays that pipeline event by event:
//
//   bucket i transferred  at T(i)   (cumulative bytes / stream bandwidth)
//   bucket i encoded      at E(i) = max(E(i-1), T(i)) + enc(i)
//   bucket i clustered    at C(i) = max(E(i), kernel_free) + job(i)
//
// and reports the true makespan plus per-stage utilisation, quantifying
// how much of the additive estimate the overlap recovers.
#pragma once

#include "fpga/dataflow.hpp"

namespace spechd::fpga {

struct des_result {
  double makespan_s = 0.0;        ///< preprocess + overlapped pipeline
  double pipeline_s = 0.0;        ///< transfer/encode/cluster region only
  double additive_s = 0.0;        ///< same phases, phase-additive model
  double overlap_saving = 0.0;    ///< 1 - pipeline/additive phase sum
  double encoder_utilisation = 0.0;   ///< busy fraction of the encoder CU
  double cluster_utilisation = 0.0;   ///< mean busy fraction of cluster CUs
  std::size_t buckets = 0;
};

/// Simulates one dataset under `config`. Deterministic.
des_result simulate_dataflow(const ms::dataset_descriptor& ds,
                             const spechd_hw_config& config);

}  // namespace spechd::fpga
