// FPGA resource estimation for SpecHD's kernels on the Alveo U280.
//
// The DSE of Sec. III-A is bounded by the card's fabric: how many encoder
// and clustering compute units fit, and whether the distance matrices fit
// BRAM/URAM. This module provides first-order post-synthesis estimates
// using standard HLS resource heuristics:
//   * XOR/popcount trees: ~1 LUT6 per 2 bits of XOR + a compressor tree of
//     ~0.9 LUT/bit for the population count,
//   * accumulator banks: 1 FF per counter bit, LUTs for the adders,
//   * item memories and distance tiles: BRAM36 blocks (36 Kb each) or URAM
//     (288 Kb) above the spill threshold.
// Estimates are deliberately conservative (±30%); the point is relative
// feasibility across DSE points, not sign-off accuracy.
#pragma once

#include <cstdint>

#include "fpga/device.hpp"
#include "fpga/kernels.hpp"

namespace spechd::fpga {

/// Resource vector (absolute counts).
struct resource_usage {
  double luts = 0.0;
  double ffs = 0.0;
  double bram36 = 0.0;  ///< 36 Kb block RAMs
  double uram = 0.0;    ///< 288 Kb UltraRAMs
  double dsps = 0.0;

  resource_usage& operator+=(const resource_usage& o) noexcept {
    luts += o.luts;
    ffs += o.ffs;
    bram36 += o.bram36;
    uram += o.uram;
    dsps += o.dsps;
    return *this;
  }
  friend resource_usage operator*(resource_usage u, double k) noexcept {
    u.luts *= k;
    u.ffs *= k;
    u.bram36 *= k;
    u.uram *= k;
    u.dsps *= k;
    return u;
  }
};

/// U280 fabric capacity (public datasheet).
struct fabric_capacity {
  double luts = 1'304'000;
  double ffs = 2'607'000;
  double bram36 = 2'016;
  double uram = 960;
  double dsps = 9'024;
};

constexpr fabric_capacity u280_capacity() { return {}; }

/// Estimate for one encoder CU (ID/Level memories + bind/accumulate +
/// majority). `mz_bins`/`levels` size the item memories.
resource_usage estimate_encoder(const encoder_kernel_config& config, std::size_t mz_bins,
                                std::size_t levels);

/// Estimate for one clustering CU (XOR+popcount distance unit, min-scan
/// comparators, Lance-Williams ALUs, cluster BRAM, matrix tile buffer).
/// `max_bucket` bounds the on-chip distance-tile size (q16 entries).
resource_usage estimate_cluster_kernel(const cluster_kernel_config& config,
                                       std::size_t max_bucket);

/// Whole-design estimate: encoders + cluster CUs + static region/shell.
resource_usage estimate_design(const encoder_kernel_config& enc, unsigned encoders,
                               const cluster_kernel_config& cl, unsigned cluster_kernels,
                               std::size_t mz_bins, std::size_t levels,
                               std::size_t max_bucket);

/// Utilisation of the worst resource class in [0, inf); > 1 means the
/// design does not fit (or exceeds the 70% routable threshold if
/// `routable_headroom` is applied).
double worst_utilisation(const resource_usage& usage, const fabric_capacity& cap,
                         bool routable_headroom = true);

}  // namespace spechd::fpga
