#include "fpga/des.hpp"

#include <algorithm>
#include <queue>

#include "fpga/msas.hpp"

namespace spechd::fpga {

des_result simulate_dataflow(const ms::dataset_descriptor& ds,
                             const spechd_hw_config& config) {
  des_result r;

  // Near-storage preprocessing runs before the card pipeline (its output
  // is what streams over P2P).
  msas_config pp;
  pp.ssd = config.ssd;
  pp.top_k = config.top_k;
  const auto msas = preprocess_dataset(ds, pp);

  const auto sizes = model_bucket_sizes(ds.spectra, config);
  r.buckets = sizes.size();
  const double avg_peaks =
      std::min(static_cast<double>(config.top_k), ds.avg_peaks_per_spectrum);
  const double bytes_per_spectrum = pp.output_bytes_per_spectrum();

  transfer_model path =
      config.p2p_enabled
          ? p2p_path(config.fpga, config.ssd)
          : host_staged_path(config.fpga.pcie_p2p_bandwidth, config.ssd, server_cpu());
  const double stream_rate = path.bandwidth * path.efficiency;  // bytes/s

  const double clock = config.fpga.clock_hz;
  const unsigned kernels = std::max(1U, config.cluster_kernels);

  // Encoder timeline and cluster-kernel free times.
  double cumulative_bytes = 0.0;
  double encoder_free = path.latency_s;
  double encoder_busy = 0.0;
  std::priority_queue<double, std::vector<double>, std::greater<>> kernel_free;
  for (unsigned k = 0; k < kernels; ++k) kernel_free.push(0.0);
  double cluster_busy = 0.0;
  double makespan = 0.0;

  for (const auto bucket : sizes) {
    cumulative_bytes += static_cast<double>(bucket) * bytes_per_spectrum;
    const double transferred = path.latency_s + cumulative_bytes / stream_rate;

    const double enc_seconds = cycles_to_seconds(
        encoder_cycles(bucket, avg_peaks, config.encoder) /
            std::max(1U, config.encoder_kernels),
        clock);
    const double enc_done = std::max(encoder_free, transferred) + enc_seconds;
    encoder_free = enc_done;
    encoder_busy += enc_seconds;

    const double job_seconds =
        cycles_to_seconds(cluster_bucket_cycles(bucket, config.cluster), clock);
    const double kernel_available = kernel_free.top();
    kernel_free.pop();
    const double start = std::max(enc_done, kernel_available);
    const double done = start + job_seconds;
    kernel_free.push(done);
    cluster_busy += job_seconds;
    makespan = std::max(makespan, done);
  }

  r.pipeline_s = makespan;
  r.makespan_s = msas.time_s + makespan;
  r.encoder_utilisation = makespan > 0.0 ? encoder_busy / makespan : 0.0;
  r.cluster_utilisation =
      makespan > 0.0 ? cluster_busy / (makespan * static_cast<double>(kernels)) : 0.0;

  // Phase-additive reference over the same phases (transfer+encode+cluster).
  const auto additive = model_spechd_run(ds, config);
  r.additive_s = additive.time.transfer + additive.time.encode + additive.time.cluster;
  r.overlap_saving = r.additive_s > 0.0 ? 1.0 - r.pipeline_s / r.additive_s : 0.0;
  return r;
}

}  // namespace spechd::fpga
