#include "fpga/msas.hpp"

#include <algorithm>
#include <cmath>

#include "preprocess/topk.hpp"

namespace spechd::fpga {

msas_result preprocess_dataset(const ms::dataset_descriptor& ds, const msas_config& config) {
  msas_result r;
  const double bytes = ds.size_gb * 1e9;

  // Streaming: NAND channels in aggregate exceed the global on-chip bus the
  // MSAS engine sits on ("achieving peak bandwidth equivalent to external
  // SSDs"), so the stream rate is capped by the external-equivalent
  // bandwidth at ~95% efficiency — this is exactly the ~3.0 GB/s effective
  // rate Table I's five rows exhibit.
  const double nand_bw = std::min(
      static_cast<double>(config.ssd.nand_channels) * config.ssd.channel_bandwidth * 0.85,
      config.ssd.external_bandwidth * 0.95);
  r.nand_stream_s = bytes / nand_bw;

  // Accelerator compute: filtering is datapath streaming (bytes/cycle);
  // the bitonic top-k adds stage-proportional work per spectrum.
  const double stream_cycles = bytes / config.ssd.msas_bytes_per_cycle;
  const auto sort_stats =
      spechd::preprocess::bitonic_network_stats(static_cast<std::size_t>(
          std::max(1.0, ds.avg_peaks_per_spectrum)));
  // One comparator column per cycle (the network is pipelined spatially).
  const double sort_cycles_per_spectrum = static_cast<double>(sort_stats.stages);
  const double compute_cycles =
      stream_cycles + sort_cycles_per_spectrum * static_cast<double>(ds.spectra);
  r.compute_s = compute_cycles / config.ssd.msas_clock_hz;

  // Streaming and compute overlap (dataflow); setup is serial.
  r.time_s = std::max(r.nand_stream_s, r.compute_s) + config.setup_s;

  // Energy: SSD active power over the run + accelerator dynamic energy.
  r.energy_j = r.time_s * config.ssd.power_active_w +
               static_cast<double>(ds.spectra) * config.per_spectrum_energy_nj * 1e-9;

  r.output_gb = static_cast<double>(ds.spectra) *
                config.output_bytes_per_spectrum() / 1e9;
  return r;
}

}  // namespace spechd::fpga
