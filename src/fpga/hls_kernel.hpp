// HLS kernel cycle model.
//
// SpecHD's kernels are written in HLS with explicit pragmas: array
// partitioning, loop unrolling and pipelining (Sec. III-B/III-C). For a
// pipelined loop the standard cycle formula is
//
//   cycles = depth + (trips_ceil - 1) * II,   trips_ceil = ceil(trips/unroll)
//
// and sequential loops compose additively; dataflow regions compose by
// max() (task-level parallelism). This module provides those composition
// rules so each kernel's cost model reads like its pragma annotations.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace spechd::fpga {

/// One pipelined (optionally unrolled) loop.
struct pipelined_loop {
  std::uint64_t trips = 0;      ///< logical iterations
  std::uint64_t unroll = 1;     ///< UNROLL factor (>=1)
  std::uint64_t ii = 1;         ///< initiation interval
  std::uint64_t depth = 1;      ///< pipeline depth (fill latency)

  std::uint64_t cycles() const noexcept {
    if (trips == 0) return 0;
    const std::uint64_t effective = (trips + unroll - 1) / unroll;
    return depth + (effective - 1) * ii;
  }
};

/// Cycles for a sequence of loops executed back to back.
inline std::uint64_t sequential_cycles(const std::vector<pipelined_loop>& loops) noexcept {
  std::uint64_t total = 0;
  for (const auto& l : loops) total += l.cycles();
  return total;
}

/// Cycles for a dataflow region (concurrent tasks, bounded by the slowest).
inline std::uint64_t dataflow_cycles(const std::vector<std::uint64_t>& task_cycles) noexcept {
  std::uint64_t worst = 0;
  for (const auto c : task_cycles) worst = std::max(worst, c);
  return worst;
}

/// Seconds for `cycles` at `clock_hz`.
inline double cycles_to_seconds(std::uint64_t cycles, double clock_hz) noexcept {
  return clock_hz <= 0.0 ? 0.0 : static_cast<double>(cycles) / clock_hz;
}

}  // namespace spechd::fpga
