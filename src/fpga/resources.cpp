#include "fpga/resources.hpp"

#include <algorithm>
#include <cmath>

namespace spechd::fpga {

namespace {

/// BRAM36 blocks needed for `bits` of storage with `width`-bit ports.
/// Each BRAM36 provides 36 Kb; wide ports consume blocks in parallel.
double bram_blocks(double bits, double port_width) {
  const double by_capacity = bits / (36.0 * 1024.0);
  const double by_width = port_width / 72.0;  // 72-bit max native port
  return std::ceil(std::max(by_capacity, by_width));
}

}  // namespace

resource_usage estimate_encoder(const encoder_kernel_config& config, std::size_t mz_bins,
                                std::size_t levels) {
  resource_usage u;
  const double dim = static_cast<double>(config.dim);
  const double unroll = static_cast<double>(config.bind_unroll);

  // Item memories: mz_bins x dim ID bits + levels x dim Level bits, read
  // `unroll` bits per cycle (partitioned across banks).
  const double id_bits = static_cast<double>(mz_bins) * dim;
  const double level_bits = static_cast<double>(levels) * dim;
  // Large ID memory spills to URAM (288 Kb blocks), Level memory to BRAM.
  u.uram += std::ceil(id_bits / (288.0 * 1024.0));
  u.bram36 += bram_blocks(level_bits, unroll);

  // Bind/accumulate datapath: `unroll` XOR gates + `unroll` 8-bit counters.
  u.luts += unroll * (0.5 /*xor*/ + 4.0 /*counter add*/);
  u.ffs += unroll * 8.0;

  // Majority threshold: comparator per lane.
  u.luts += static_cast<double>(config.majority_unroll) * 3.0;
  u.ffs += static_cast<double>(config.majority_unroll) * 1.0;

  // Stream framing / control.
  u.luts += 3'000;
  u.ffs += 4'000;
  return u;
}

resource_usage estimate_cluster_kernel(const cluster_kernel_config& config,
                                       std::size_t max_bucket) {
  resource_usage u;
  const double width = static_cast<double>(config.xor_popcount_width);

  // Distance unit: XOR + popcount compressor tree over `width` bits.
  u.luts += width * (0.5 + 0.9);
  u.ffs += width * 1.2;

  // HV tile buffer: two operand vectors of dim bits, double-buffered.
  u.bram36 += bram_blocks(4.0 * static_cast<double>(config.dim), width);

  // Condensed q16 distance tile for the largest bucket.
  const double matrix_bits =
      static_cast<double>(max_bucket) * (static_cast<double>(max_bucket) - 1.0) / 2.0 *
      16.0;
  // Spill strategy mirrors HLS: tiles above 4 Mb stream from HBM instead.
  const double on_chip_bits = std::min(matrix_bits, 4.0 * 1024.0 * 1024.0);
  u.uram += std::ceil(on_chip_bits / (288.0 * 1024.0));

  // Min-scan comparators and Lance-Williams ALUs (fixed-point mul/add ->
  // DSP48 each).
  u.luts += static_cast<double>(config.scan_lanes) * 40.0;
  u.dsps += static_cast<double>(config.update_lanes) * 2.0;
  u.ffs += static_cast<double>(config.scan_lanes + config.update_lanes) * 64.0;

  // Cluster bookkeeping BRAM (members, counts, correction factors;
  // Sec. III-C) + control.
  u.bram36 += 8;
  u.luts += 9'000;
  u.ffs += 11'000;
  return u;
}

resource_usage estimate_design(const encoder_kernel_config& enc, unsigned encoders,
                               const cluster_kernel_config& cl, unsigned cluster_kernels,
                               std::size_t mz_bins, std::size_t levels,
                               std::size_t max_bucket) {
  resource_usage total;
  total += estimate_encoder(enc, mz_bins, levels) * static_cast<double>(encoders);
  total += estimate_cluster_kernel(cl, max_bucket) * static_cast<double>(cluster_kernels);
  // Static region / XDMA shell + HBM controllers (typical U280 shell cost).
  resource_usage shell;
  shell.luts = 180'000;
  shell.ffs = 230'000;
  shell.bram36 = 250;
  total += shell;
  return total;
}

double worst_utilisation(const resource_usage& usage, const fabric_capacity& cap,
                         bool routable_headroom) {
  const double headroom = routable_headroom ? 0.70 : 1.00;
  double worst = 0.0;
  worst = std::max(worst, usage.luts / (cap.luts * headroom));
  worst = std::max(worst, usage.ffs / (cap.ffs * headroom));
  worst = std::max(worst, usage.bram36 / (cap.bram36 * headroom));
  worst = std::max(worst, usage.uram / (cap.uram * headroom));
  worst = std::max(worst, usage.dsps / (cap.dsps * headroom));
  return worst;
}

}  // namespace spechd::fpga
