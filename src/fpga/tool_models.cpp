#include "fpga/tool_models.hpp"

#include <algorithm>
#include <cmath>

namespace spechd::fpga {

std::string_view tool_name(tool t) noexcept {
  switch (t) {
    case tool::spechd: return "SpecHD";
    case tool::hyperspec_hac: return "HyperSpec-HAC";
    case tool::hyperspec_dbscan: return "HyperSpec-DBSCAN";
    case tool::gleams: return "GLEAMS";
    case tool::falcon: return "Falcon";
    case tool::mscrush: return "msCRUSH";
  }
  return "?";
}

double modelled_pair_count(const ms::dataset_descriptor& ds, const spechd_hw_config& hw) {
  const auto sizes = model_bucket_sizes(ds.spectra, hw);
  double pairs = 0.0;
  for (const auto s : sizes) {
    pairs += s < 2 ? 0.0 : static_cast<double>(s) * (static_cast<double>(s) - 1.0) / 2.0;
  }
  return pairs;
}

namespace {

tool_run_model model_spechd(const ms::dataset_descriptor& ds, const spechd_hw_config& hw) {
  const auto run = model_spechd_run(ds, hw);
  tool_run_model m;
  m.which = tool::spechd;
  m.time = run.time;
  m.energy = run.energy;
  return m;
}

/// Shared CPU loading/preprocessing front end of the software tools.
void add_cpu_preprocess(tool_run_model& m, const ms::dataset_descriptor& ds,
                        const baseline_rates& r) {
  m.time.preprocess = ds.size_gb / r.cpu_preprocess_gb_per_s;
  m.energy.preprocess = m.time.preprocess * r.cpu_preprocess_power_w;
}

}  // namespace

tool_run_model model_tool_run(tool t, const ms::dataset_descriptor& ds,
                              const spechd_hw_config& hw, const baseline_rates& r) {
  if (t == tool::spechd) return model_spechd(ds, hw);

  tool_run_model m;
  m.which = t;
  const double spectra = static_cast<double>(ds.spectra);
  const double pairs = modelled_pair_count(ds, hw);

  switch (t) {
    case tool::hyperspec_hac: {
      add_cpu_preprocess(m, ds, r);
      // Host -> GPU transfer folded into encode (PCIe overlapped).
      m.time.encode = spectra / r.gpu_encode_spectra_per_s;
      m.energy.encode = m.time.encode * r.gpu_encode_power_w;
      m.time.cluster = pairs / r.cpu_hac_pairs_per_s;
      m.energy.cluster = m.time.cluster * r.cpu_hac_power_w;
      break;
    }
    case tool::hyperspec_dbscan: {
      add_cpu_preprocess(m, ds, r);
      m.time.encode = spectra / r.gpu_encode_spectra_per_s;
      m.energy.encode = m.time.encode * r.gpu_encode_power_w;
      m.time.cluster =
          pairs / (r.cpu_hac_pairs_per_s * r.gpu_dbscan_speedup_vs_hac);
      m.energy.cluster = m.time.cluster * r.gpu_dbscan_power_w;
      break;
    }
    case tool::gleams: {
      add_cpu_preprocess(m, ds, r);
      m.time.encode = spectra / r.gleams_embed_spectra_per_s;  // DNN inference
      m.energy.encode = m.time.encode * r.gleams_embed_power_w;
      m.time.cluster = pairs / r.gleams_cluster_pairs_per_s;
      m.energy.cluster = m.time.cluster * r.gleams_cluster_power_w;
      break;
    }
    case tool::falcon: {
      add_cpu_preprocess(m, ds, r);
      // Vectorise + build/query the ANN index; reported under `cluster`
      // because falcon has no separate encode artefact.
      m.time.cluster = spectra / r.falcon_index_spectra_per_s;
      m.energy.cluster = m.time.cluster * r.falcon_power_w;
      break;
    }
    case tool::mscrush: {
      add_cpu_preprocess(m, ds, r);
      const double iter_cost = spectra / r.mscrush_spectra_per_s_per_iter;
      m.time.cluster = iter_cost * static_cast<double>(r.mscrush_iterations) /
                       std::max(1.0, std::log2(spectra));  // LSH rounds shrink
      m.energy.cluster = m.time.cluster * r.mscrush_power_w;
      break;
    }
    case tool::spechd:
      break;  // handled above
  }
  return m;
}

std::vector<tool_run_model> model_all_tools(const ms::dataset_descriptor& ds,
                                            const spechd_hw_config& hw,
                                            const baseline_rates& rates) {
  std::vector<tool_run_model> result;
  for (const tool t : {tool::spechd, tool::hyperspec_hac, tool::hyperspec_dbscan,
                       tool::gleams, tool::falcon, tool::mscrush}) {
    result.push_back(model_tool_run(t, ds, hw, rates));
  }
  return result;
}

}  // namespace spechd::fpga
