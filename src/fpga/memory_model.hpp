// Bandwidth/latency models for the memory and interconnect hierarchy:
// HBM on-card, PCIe peer-to-peer NVMe->FPGA, conventional host staging.
//
// Sec. III-A: "Enabling P2P allows for direct data exchanges between the
// FPGA and NVMe storage, eliminating intermediary host memory interactions
// and reducing bandwidth constraints."
#pragma once

#include <algorithm>
#include <cstdint>

#include "fpga/device.hpp"

namespace spechd::fpga {

/// Simple stream-transfer model: latency + size / effective_bandwidth.
struct transfer_model {
  double bandwidth = 1.0;   ///< bytes/s
  double latency_s = 0.0;   ///< fixed setup cost
  double efficiency = 1.0;  ///< fraction of peak achieved (0, 1]

  double seconds(double bytes) const noexcept {
    return latency_s + bytes / (bandwidth * efficiency);
  }
};

/// P2P path: NVMe -> FPGA HBM directly.
inline transfer_model p2p_path(const fpga_device& fpga, const ssd_device& ssd) noexcept {
  return {.bandwidth = std::min(fpga.pcie_p2p_bandwidth, ssd.external_bandwidth),
          .latency_s = 50e-6,
          .efficiency = 0.92};
}

/// Conventional path: NVMe -> host DRAM -> FPGA/GPU (two hops + host copy).
inline transfer_model host_staged_path(double device_pcie_bw, const ssd_device& ssd,
                                       const cpu_device& host) noexcept {
  // Effective bandwidth of a store-and-forward pipeline is the bottleneck
  // link; the host memcpy adds another serialised stage.
  const double bottleneck =
      std::min({ssd.external_bandwidth, device_pcie_bw, host.memory_bandwidth / 2.0});
  return {.bandwidth = bottleneck, .latency_s = 150e-6, .efficiency = 0.60};
}

/// HBM residency check + access time for a working set.
struct hbm_usage {
  double bytes = 0.0;
  bool fits = true;
  double read_seconds = 0.0;
};

inline hbm_usage hbm_access(const fpga_device& fpga, double bytes,
                            double read_passes) noexcept {
  hbm_usage u;
  u.bytes = bytes;
  u.fits = bytes <= fpga.hbm_capacity;
  u.read_seconds = bytes * read_passes / fpga.hbm_bandwidth;
  return u;
}

}  // namespace spechd::fpga
