// Device catalogue for the performance/energy models (Sec. IV setup).
//
// The paper's testbed: Xilinx Alveo U280 (HBM2 8 GB, 460 GB/s), a 12-core
// CPU server with 128 GB DDR4 and a 2 TB NVMe SSD (Intel DC P4500 for the
// near-storage experiments), and an NVIDIA RTX 3090 (24 GB) for the GPU
// baselines. Constants below are public datasheet numbers plus measured
// averages reported in the literature; they are *calibration inputs*, not
// claims — every bench prints paper-reported anchors next to model output.
#pragma once

#include <cstdint>
#include <string_view>

namespace spechd::fpga {

/// FPGA accelerator card.
struct fpga_device {
  std::string_view name;
  double clock_hz;          ///< achieved HLS kernel clock
  double hbm_bandwidth;     ///< bytes/s
  double hbm_capacity;      ///< bytes
  double pcie_p2p_bandwidth;///< bytes/s NVMe->FPGA peer-to-peer (XRT measured)
  double power_active_w;    ///< kernel-running board power (XRT telemetry)
  double power_idle_w;
};

constexpr fpga_device alveo_u280() {
  return {
      .name = "Xilinx Alveo U280",
      .clock_hz = 300e6,
      .hbm_bandwidth = 460e9,
      .hbm_capacity = 8ULL * 1024 * 1024 * 1024,
      .pcie_p2p_bandwidth = 3.2e9,  // measured P2P rate on Gen3 x16 platforms
      .power_active_w = 45.0,
      .power_idle_w = 25.0,
  };
}

/// GPU baseline device.
struct gpu_device {
  std::string_view name;
  double memory_bandwidth;  ///< bytes/s
  double memory_capacity;   ///< bytes
  double power_peak_w;      ///< board power at full occupancy
  double power_avg_clustering_w;  ///< nvidia-smi average during cuML work
  double pcie_bandwidth;    ///< host<->device, bytes/s
};

constexpr gpu_device rtx3090() {
  return {
      .name = "NVIDIA GeForce RTX 3090",
      .memory_bandwidth = 936e9,
      .memory_capacity = 24ULL * 1024 * 1024 * 1024,
      .power_peak_w = 350.0,
      .power_avg_clustering_w = 110.0,
      .pcie_bandwidth = 12e9,
  };
}

/// Host CPU.
struct cpu_device {
  std::string_view name;
  unsigned cores;
  double power_active_w;  ///< RAPL package power under load
  double power_idle_w;
  double memory_bandwidth;  ///< bytes/s
};

constexpr cpu_device server_cpu() {
  return {
      .name = "12-core server CPU",
      .cores = 12,
      .power_active_w = 120.0,
      .power_idle_w = 35.0,
      .memory_bandwidth = 40e9,
  };
}

/// NVMe SSD with the in-storage MSAS accelerator (Sec. III-A, ref [14]).
struct ssd_device {
  std::string_view name;
  unsigned nand_channels;
  double channel_bandwidth;   ///< bytes/s per NAND channel
  double external_bandwidth;  ///< bytes/s over the host interface
  double power_active_w;      ///< SSD + MSAS logic while streaming
  double power_idle_w;
  double msas_bytes_per_cycle;///< accelerator datapath width
  double msas_clock_hz;       ///< embedded accelerator clock
};

constexpr ssd_device intel_p4500_msas() {
  return {
      .name = "Intel SSD DC P4500 + MSAS",
      .nand_channels = 16,
      .channel_bandwidth = 400e6,
      .external_bandwidth = 3.2e9,
      .power_active_w = 9.0,
      .power_idle_w = 5.0,
      .msas_bytes_per_cycle = 32.0,
      .msas_clock_hz = 400e6,
  };
}

}  // namespace spechd::fpga
