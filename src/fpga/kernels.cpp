#include "fpga/kernels.hpp"

namespace spechd::fpga {

std::uint64_t encoder_cycles_per_spectrum(std::uint64_t peaks,
                                          const encoder_kernel_config& config) noexcept {
  // Bind + accumulate: peaks x (dim / bind_unroll) II=1 iterations.
  pipelined_loop bind{
      .trips = peaks * config.dim,
      .unroll = config.bind_unroll,
      .ii = 1,
      .depth = config.pipeline_depth,
  };
  // Majority threshold: dim / majority_unroll iterations.
  pipelined_loop majority{
      .trips = config.dim,
      .unroll = config.majority_unroll,
      .ii = 1,
      .depth = 8,
  };
  return bind.cycles() + majority.cycles() + config.per_spectrum_overhead;
}

std::uint64_t encoder_cycles(std::uint64_t spectra, double avg_peaks,
                             const encoder_kernel_config& config) noexcept {
  const auto per_spectrum = encoder_cycles_per_spectrum(
      static_cast<std::uint64_t>(avg_peaks + 0.5), config);
  return spectra * per_spectrum;
}

std::uint64_t distance_phase_cycles(std::uint64_t n,
                                    const cluster_kernel_config& config) noexcept {
  if (n < 2) return 0;
  const std::uint64_t pairs = n * (n - 1) / 2;
  // Each pair: XOR + popcount over dim bits, xor_popcount_width bits/cycle;
  // the read of the two HVs is overlapped by the dataflow pragma.
  pipelined_loop distance{
      .trips = pairs * config.dim,
      .unroll = config.xor_popcount_width,
      .ii = 1,
      .depth = config.pipeline_depth,
  };
  return distance.cycles();
}

std::uint64_t nn_chain_phase_cycles(const cluster::hac_stats& stats,
                                    const cluster_kernel_config& config) noexcept {
  // Min-scan comparisons stream through scan_lanes comparators at II=1;
  // Lance–Williams updates through update_lanes ALUs.
  pipelined_loop scans{
      .trips = stats.comparisons,
      .unroll = config.scan_lanes,
      .ii = 1,
      .depth = config.pipeline_depth,
  };
  pipelined_loop updates{
      .trips = stats.distance_updates,
      .unroll = config.update_lanes,
      .ii = 1,
      .depth = 16,
  };
  // Each merge serialises a short bookkeeping section (cluster BRAM merge,
  // correction-factor fixups; Sec. III-C).
  const std::uint64_t merge_overhead = stats.merges * 24;
  return scans.cycles() + updates.cycles() + merge_overhead;
}

std::uint64_t nn_chain_phase_cycles_analytic(std::uint64_t n,
                                             const cluster_kernel_config& config) noexcept {
  if (n < 2) return 0;
  // Expected NN-chain totals (Murtagh): the chain visits each cluster O(1)
  // times amortised, each visit scanning the active set -> ~3 n^2
  // comparisons; every merge updates the survivor row -> ~n^2/2 updates.
  cluster::hac_stats stats;
  stats.comparisons = 3 * n * n;
  stats.distance_updates = n * n / 2;
  stats.merges = n - 1;
  return nn_chain_phase_cycles(stats, config);
}

std::uint64_t cluster_bucket_cycles(std::uint64_t n,
                                    const cluster_kernel_config& config) noexcept {
  if (n < 2) return config.per_bucket_overhead;
  return distance_phase_cycles(n, config) + nn_chain_phase_cycles_analytic(n, config) +
         config.per_bucket_overhead;
}

}  // namespace spechd::fpga
