// Design-space exploration (Sec. III-A: "Guided by design space
// exploration, this combination yields notable advancements in both
// hardware efficiency and energy conservation").
//
// Sweeps the architectural knobs — cluster-kernel count, encoder unroll,
// bucketing resolution, P2P on/off, D_hv — and reports modelled end-to-end
// time, energy and HBM fit for each point.
#pragma once

#include <vector>

#include "fpga/dataflow.hpp"

namespace spechd::fpga {

struct dse_point {
  unsigned cluster_kernels = 5;
  unsigned encoder_kernels = 1;
  double bucket_resolution = 0.08;
  bool p2p = true;
  std::uint64_t dim = 2048;

  double end_to_end_s = 0.0;
  double cluster_s = 0.0;
  double energy_j = 0.0;
  bool fits_hbm = true;
  bool fits_fabric = true;          ///< resource estimate within the U280
  double fabric_utilisation = 0.0;  ///< worst resource class, 1.0 = full
  /// Energy-delay product, the DSE objective.
  double edp() const noexcept { return end_to_end_s * energy_j; }
};

struct dse_sweep {
  std::vector<unsigned> cluster_kernels = {1, 2, 3, 4, 5, 6, 8};
  std::vector<unsigned> encoder_kernels = {1, 2};
  std::vector<double> resolutions = {0.05, 0.08, 0.2, 0.5, 1.0};
  std::vector<bool> p2p = {true, false};
  std::vector<std::uint64_t> dims = {1024, 2048, 4096};
};

/// Evaluates the cross product of the sweep on one dataset; rows ordered by
/// ascending EDP (best first).
std::vector<dse_point> explore(const ms::dataset_descriptor& ds,
                               const spechd_hw_config& base, const dse_sweep& sweep);

}  // namespace spechd::fpga
