#include "core/sweep.hpp"

#include "util/error.hpp"

namespace spechd::core {

const sweep_point* sweep_result::best_at_icr(double icr_budget) const noexcept {
  const sweep_point* best = nullptr;
  for (const auto& p : points) {
    if (p.quality.incorrect_ratio <= icr_budget) {
      if (best == nullptr ||
          p.quality.clustered_ratio > best->quality.clustered_ratio) {
        best = &p;
      }
    }
  }
  return best;
}

sweep_result run_sweep(const std::string& tool_name, const ms::labelled_dataset& data,
                       const sweep_fn& fn, std::size_t steps, double lo, double hi) {
  SPECHD_EXPECTS(steps >= 2);
  SPECHD_EXPECTS(hi >= lo);

  std::vector<std::int32_t> truth;
  truth.reserve(data.spectra.size());
  for (const auto& s : data.spectra) truth.push_back(s.label);

  sweep_result result;
  result.tool = tool_name;
  result.points.reserve(steps);
  for (std::size_t i = 0; i < steps; ++i) {
    const double a = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(steps - 1);
    sweep_point point;
    point.aggressiveness = a;
    const auto clustering = fn(data.spectra, a);
    point.quality = metrics::evaluate_clustering(truth, clustering);
    result.points.push_back(point);
  }
  return result;
}

}  // namespace spechd::core
