// Quality-sweep harness (Fig. 10, Fig. 6a).
//
// Sweeps a tool's aggressiveness knob, evaluating clustered-spectra ratio
// and incorrect-clustering ratio at each point — the procedure the paper
// uses to place all nine tools on a common ICR axis ("we fine-tuned each
// to operate within an incorrect clustering ratio ranging from 0% to 7%").
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "metrics/quality.hpp"
#include "ms/synthetic.hpp"

namespace spechd::core {

/// One sweep sample.
struct sweep_point {
  double aggressiveness = 0.0;
  metrics::quality_report quality;
};

/// A tool under sweep: maps aggressiveness in [0, 1] to a flat clustering
/// of the given spectra.
using sweep_fn =
    std::function<cluster::flat_clustering(const std::vector<ms::spectrum>&, double)>;

struct sweep_result {
  std::string tool;
  std::vector<sweep_point> points;  ///< ordered by aggressiveness

  /// Clustered-spectra ratio at the largest aggressiveness whose ICR stays
  /// <= `icr_budget` (linear scan; the Fig. 6a / Sec. IV-E operating point).
  const sweep_point* best_at_icr(double icr_budget) const noexcept;
};

/// Runs `fn` across `steps` aggressiveness values in [lo, hi].
sweep_result run_sweep(const std::string& tool_name, const ms::labelled_dataset& data,
                       const sweep_fn& fn, std::size_t steps = 9, double lo = 0.0,
                       double hi = 1.0);

}  // namespace spechd::core
