#include "core/incremental.hpp"

#include <algorithm>
#include <limits>

#include "hdc/distance.hpp"
#include "preprocess/pipeline.hpp"

namespace spechd::core {

incremental_clusterer::incremental_clusterer(spechd_config config, assign_mode mode)
    : config_(std::move(config)),
      mode_(mode),
      encoder_(config_.encoder, config_.preprocess.quantize.mz_bins,
               config_.preprocess.quantize.intensity_levels) {}

void incremental_clusterer::bootstrap(const hdc::hv_store& store) {
  SPECHD_EXPECTS(store.dim() == config_.encoder.dim);
  records_ = store.records();
  buckets_.clear();
  for (std::uint32_t i = 0; i < records_.size(); ++i) {
    const auto key = preprocess::bucket_index(records_[i].precursor_mz,
                                              records_[i].precursor_charge,
                                              config_.preprocess.bucketing);
    buckets_[key].members.push_back(i);
  }
  for (auto& [key, bucket] : buckets_) {
    recluster(bucket);
  }
}

update_report incremental_clusterer::add_spectra(const std::vector<ms::spectrum>& spectra) {
  update_report report;
  auto batch = preprocess::run_preprocessing(spectra, config_.preprocess);
  for (const auto& q : batch.spectra) {
    hdc::hv_record record;
    record.hv = encoder_.encode(q);
    record.precursor_mz = q.precursor_mz;
    record.precursor_charge = q.precursor_charge;
    record.label = q.label;
    record.scan = static_cast<std::uint32_t>(records_.size());
    const auto index = static_cast<std::uint32_t>(records_.size());
    records_.push_back(std::move(record));

    const auto key = preprocess::bucket_index(q.precursor_mz, q.precursor_charge,
                                              config_.preprocess.bucketing);
    auto& bucket = buckets_[key];
    bucket.members.push_back(index);
    assign(bucket, index, report);
    bucket.dirty = true;
    ++report.added;
  }
  std::size_t touched = 0;
  for (const auto& [key, bucket] : buckets_) touched += bucket.dirty ? 1 : 0;
  report.buckets_touched = touched;
  return report;
}

void incremental_clusterer::assign(bucket_state& bucket, std::uint32_t index,
                                   update_report& report) {
  // The new member is the last entry; its local label is decided here.
  const auto& hv = records_[index].hv;
  const double threshold = config_.distance_threshold;

  std::int32_t best_label = -1;
  if (mode_ == assign_mode::bundle_representative) {
    // O(clusters) test against bundled representatives.
    double best = threshold;
    for (const auto& [label, bundle] : bucket.bundles) {
      if (bundle.empty()) continue;
      const double d = hdc::hamming_normalized(hv, bundle.majority());
      if (d <= best) {
        best = d;
        best_label = label;
      }
    }
  } else {
    // Complete-linkage test: per existing cluster, the *worst* distance to
    // any member must stay below the cut for a join.
    std::map<std::int32_t, double> worst;
    for (std::size_t i = 0; i + 1 < bucket.members.size(); ++i) {
      const auto other = bucket.members[i];
      const auto label = bucket.local_labels[i];
      const double d = hdc::hamming_normalized(hv, records_[other].hv);
      auto [it, inserted] = worst.try_emplace(label, d);
      if (!inserted) it->second = std::max(it->second, d);
    }
    double best_worst = threshold;
    for (const auto& [label, w] : worst) {
      if (w <= best_worst) {
        best_worst = w;
        best_label = label;
      }
    }
  }

  if (best_label >= 0) {
    bucket.local_labels.push_back(best_label);
    ++report.joined_existing;
  } else {
    best_label = bucket.next_local++;
    bucket.local_labels.push_back(best_label);
    ++report.new_clusters;
  }
  if (mode_ == assign_mode::bundle_representative) {
    auto [it, inserted] =
        bucket.bundles.try_emplace(best_label, config_.encoder.dim);
    it->second.add(hv);
  }
}

void incremental_clusterer::recluster(bucket_state& bucket) {
  const std::size_t n = bucket.members.size();
  bucket.local_labels.assign(n, 0);
  bucket.next_local = 0;
  if (n == 0) return;
  if (n == 1) {
    bucket.local_labels[0] = bucket.next_local++;
    bucket.dirty = false;
    bucket.bundles.clear();
    if (mode_ == assign_mode::bundle_representative) {
      auto [it, inserted] = bucket.bundles.try_emplace(bucket.local_labels[0],
                                                       config_.encoder.dim);
      it->second.add(records_[bucket.members[0]].hv);
    }
    return;
  }

  std::vector<hdc::hypervector> hvs;
  hvs.reserve(n);
  for (const auto idx : bucket.members) hvs.push_back(records_[idx].hv);

  cluster::hac_result hac;
  if (config_.use_fixed_point) {
    hac = cluster::nn_chain_hac(hdc::pairwise_hamming_q16(hvs), config_.link);
  } else {
    hac = cluster::nn_chain_hac(hdc::pairwise_hamming_f32(hvs), config_.link);
  }
  auto flat = hac.tree.cut(config_.distance_threshold);
  bucket.local_labels = std::move(flat.labels);
  bucket.next_local = static_cast<std::int32_t>(flat.cluster_count);
  bucket.dirty = false;

  // Rebuild bundled representatives from the fresh labels.
  bucket.bundles.clear();
  if (mode_ == assign_mode::bundle_representative) {
    for (std::size_t i = 0; i < bucket.members.size(); ++i) {
      auto [it, inserted] = bucket.bundles.try_emplace(bucket.local_labels[i],
                                                       config_.encoder.dim);
      it->second.add(records_[bucket.members[i]].hv);
    }
  }
}

void incremental_clusterer::rebuild_dirty_buckets() {
  for (auto& [key, bucket] : buckets_) {
    if (bucket.dirty) recluster(bucket);
  }
}

cluster::flat_clustering incremental_clusterer::clustering() const {
  cluster::flat_clustering out;
  out.labels.assign(records_.size(), -1);
  std::size_t offset = 0;
  for (const auto& [key, bucket] : buckets_) {
    for (std::size_t i = 0; i < bucket.members.size(); ++i) {
      out.labels[bucket.members[i]] =
          static_cast<std::int32_t>(offset + static_cast<std::size_t>(bucket.local_labels[i]));
    }
    offset += static_cast<std::size_t>(bucket.next_local);
  }
  out.cluster_count = offset;
  return out;
}

hdc::hv_store incremental_clusterer::to_store() const {
  hdc::hv_store store(config_.encoder.dim, config_.encoder.seed);
  for (const auto& r : records_) store.append(r);
  return store;
}

std::size_t incremental_clusterer::cluster_count() const noexcept {
  std::size_t total = 0;
  for (const auto& [key, bucket] : buckets_) {
    total += static_cast<std::size_t>(bucket.next_local);
  }
  return total;
}

}  // namespace spechd::core
