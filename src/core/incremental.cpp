#include "core/incremental.hpp"

#include <algorithm>
#include <limits>

#include "hdc/cpu_kernels.hpp"
#include "hdc/distance.hpp"
#include "preprocess/pipeline.hpp"
#include "util/arena_pool.hpp"
#include "util/thread_pool.hpp"

namespace spechd::core {

incremental_clusterer::incremental_clusterer(spechd_config config, assign_mode mode)
    : config_(std::move(config)),
      mode_(mode),
      encoder_(config_.encoder, config_.preprocess.quantize.mz_bins,
               config_.preprocess.quantize.intensity_levels) {}

incremental_clusterer::~incremental_clusterer() = default;
incremental_clusterer::incremental_clusterer(incremental_clusterer&&) noexcept = default;
incremental_clusterer& incremental_clusterer::operator=(incremental_clusterer&&) noexcept =
    default;

thread_pool& incremental_clusterer::pool() {
  if (!pool_) pool_ = std::make_unique<thread_pool>(config_.threads);
  return *pool_;
}

void incremental_clusterer::bootstrap(const hdc::hv_store& store) {
  SPECHD_EXPECTS(store.dim() == config_.encoder.dim);
  records_ = store.records();
  buckets_.clear();
  for (std::uint32_t i = 0; i < records_.size(); ++i) {
    const auto key = preprocess::bucket_index(records_[i].precursor_mz,
                                              records_[i].precursor_charge,
                                              config_.preprocess.bucketing);
    buckets_[key].members.push_back(i);
  }
  std::vector<bucket_state*> all;
  all.reserve(buckets_.size());
  for (auto& [key, bucket] : buckets_) all.push_back(&bucket);
  thread_pool& p = pool();
  p.parallel_for(all.size(), [&](std::size_t b) { recluster(*all[b]); }, /*grain=*/1);
}

update_report incremental_clusterer::push(const ms::spectrum& spectrum) {
  return add_spectra({spectrum});
}

update_report incremental_clusterer::add_spectra(const std::vector<ms::spectrum>& spectra) {
  update_report report;
  auto batch = preprocess::run_preprocessing(spectra, config_.preprocess);
  for (const auto& q : batch.spectra) {
    hdc::hv_record record;
    record.hv = encoder_.encode(q);
    record.precursor_mz = q.precursor_mz;
    record.precursor_charge = q.precursor_charge;
    record.label = q.label;
    record.scan = static_cast<std::uint32_t>(records_.size());
    const auto index = static_cast<std::uint32_t>(records_.size());
    records_.push_back(std::move(record));

    const auto key = preprocess::bucket_index(q.precursor_mz, q.precursor_charge,
                                              config_.preprocess.bucketing);
    auto& bucket = buckets_[key];
    bucket.members.push_back(index);
    assign(bucket, index, report);
    bucket.dirty = true;
    ++report.added;
  }
  std::size_t touched = 0;
  for (const auto& [key, bucket] : buckets_) touched += bucket.dirty ? 1 : 0;
  report.buckets_touched = touched;
  return report;
}

update_report incremental_clusterer::push_batch(const std::vector<ms::spectrum>& spectra) {
  update_report report;
  auto batch = preprocess::run_preprocessing(spectra, config_.preprocess);
  if (!batch.spectra.empty()) {
    thread_pool& p = pool();
    // One batch-parallel encode pass (bit-identical to per-spectrum
    // encode), then route every record to its bucket in arrival order.
    auto hvs = encoder_.encode_batch(batch.spectra, &p);
    std::map<std::int64_t, std::vector<std::uint32_t>> fresh;
    for (std::size_t i = 0; i < batch.spectra.size(); ++i) {
      const auto& q = batch.spectra[i];
      hdc::hv_record record;
      record.hv = std::move(hvs[i]);
      record.precursor_mz = q.precursor_mz;
      record.precursor_charge = q.precursor_charge;
      record.label = q.label;
      record.scan = static_cast<std::uint32_t>(records_.size());
      const auto index = static_cast<std::uint32_t>(records_.size());
      records_.push_back(std::move(record));
      const auto key = preprocess::bucket_index(q.precursor_mz, q.precursor_charge,
                                                config_.preprocess.bucketing);
      fresh[key].push_back(index);
    }

    // Buckets advance independently: parallel across buckets, arrival
    // order within each — so the assignment each member sees is exactly
    // what sequential push() would have shown it.
    struct job {
      bucket_state* bucket;
      const std::vector<std::uint32_t>* indices;
    };
    std::vector<job> jobs;
    jobs.reserve(fresh.size());
    for (auto& [key, indices] : fresh) jobs.push_back({&buckets_[key], &indices});
    std::vector<update_report> partial(jobs.size());
    p.parallel_for(
        jobs.size(),
        [&](std::size_t b) {
          bucket_state& bucket = *jobs[b].bucket;
          for (const auto index : *jobs[b].indices) {
            bucket.members.push_back(index);
            assign(bucket, index, partial[b]);
            bucket.dirty = true;
          }
        },
        /*grain=*/1);
    for (const auto& r : partial) {
      report.joined_existing += r.joined_existing;
      report.new_clusters += r.new_clusters;
    }
    report.added = batch.spectra.size();
  }
  std::size_t touched = 0;
  for (const auto& [key, bucket] : buckets_) touched += bucket.dirty ? 1 : 0;
  report.buckets_touched = touched;
  return report;
}

void incremental_clusterer::assign(bucket_state& bucket, std::uint32_t index,
                                   update_report& report) const {
  // The new member is the last entry; its local label is decided here.
  const auto& hv = records_[index].hv;
  const double threshold = config_.distance_threshold;

  std::int32_t best_label = -1;
  if (mode_ == assign_mode::bundle_representative) {
    // O(clusters) test against bundled representatives.
    double best = threshold;
    for (const auto& [label, bundle] : bucket.bundles) {
      if (bundle.empty()) continue;
      const double d = hdc::hamming_normalized(hv, bundle.majority());
      if (d <= best) {
        best = d;
        best_label = label;
      }
    }
  } else {
    // Complete-linkage test: per existing cluster, the *worst* distance to
    // any member must stay below the cut for a join. The whole member row
    // is computed with one dispatched Hamming-tile call (same kernels, and
    // bit-identical normalisation, as the per-pair path it replaces). The
    // *pointer* tile is deliberate here: packing amortises over many rows
    // (distance.cpp's O(n²) sweep packs once for n row sweeps), but this
    // is a single-row call that reads each member exactly once — staging
    // members into a packed blob would cost a full extra copy pass per
    // ingested spectrum for zero kernel-side gain. The pointer array and
    // counts row are still carved from one pooled arena so the hot
    // ingestion path does no per-assign heap allocation.
    std::map<std::int32_t, double> worst;
    const std::size_t existing = bucket.members.size() - 1;
    if (existing > 0) {
      const std::size_t words = hv.word_count();
      const double dim = static_cast<double>(hv.dim());
      arena_lease scratch = arena_pool::global().checkout(
          existing * (sizeof(const std::uint64_t*) + sizeof(std::uint32_t)));
      const std::uint64_t** const cols = scratch.as<const std::uint64_t*>(existing);
      for (std::size_t i = 0; i < existing; ++i) {
        cols[i] = records_[bucket.members[i]].hv.words().data();
      }
      auto* const counts = reinterpret_cast<std::uint32_t*>(cols + existing);
      const std::uint64_t* row = hv.words().data();
      hdc::kernels::hamming_tile(&row, 1, cols, existing, words, counts);
      for (std::size_t i = 0; i < existing; ++i) {
        const auto label = bucket.local_labels[i];
        const double d = static_cast<double>(counts[i]) / dim;
        auto [it, inserted] = worst.try_emplace(label, d);
        if (!inserted) it->second = std::max(it->second, d);
      }
    }
    double best_worst = threshold;
    for (const auto& [label, w] : worst) {
      if (w <= best_worst) {
        best_worst = w;
        best_label = label;
      }
    }
  }

  if (best_label >= 0) {
    bucket.local_labels.push_back(best_label);
    ++report.joined_existing;
  } else {
    best_label = bucket.next_local++;
    bucket.local_labels.push_back(best_label);
    ++report.new_clusters;
  }
  if (mode_ == assign_mode::bundle_representative) {
    auto [it, inserted] =
        bucket.bundles.try_emplace(best_label, config_.encoder.dim);
    it->second.add(hv);
  }
}

void incremental_clusterer::recluster(bucket_state& bucket) {
  const std::size_t n = bucket.members.size();
  bucket.local_labels.assign(n, 0);
  bucket.next_local = 0;
  if (n == 0) return;
  if (n == 1) {
    bucket.local_labels[0] = bucket.next_local++;
    bucket.dirty = false;
    bucket.bundles.clear();
    if (mode_ == assign_mode::bundle_representative) {
      auto [it, inserted] = bucket.bundles.try_emplace(bucket.local_labels[0],
                                                       config_.encoder.dim);
      it->second.add(records_[bucket.members[0]].hv);
    }
    return;
  }

  std::vector<hdc::hypervector> hvs;
  hvs.reserve(n);
  for (const auto idx : bucket.members) hvs.push_back(records_[idx].hv);

  // Same code path as the batch pipeline's per-bucket clustering (the pool
  // may be null when only sequential ingestion ever ran; parallel_for is
  // nested-safe, so reclusters dispatched from the pool can share it).
  cluster::hac_result hac = bucket_hac(hvs, config_, pool_.get());
  auto flat = hac.tree.cut(config_.distance_threshold);
  bucket.local_labels = std::move(flat.labels);
  bucket.next_local = static_cast<std::int32_t>(flat.cluster_count);
  bucket.dirty = false;

  // Rebuild bundled representatives from the fresh labels.
  bucket.bundles.clear();
  if (mode_ == assign_mode::bundle_representative) {
    for (std::size_t i = 0; i < bucket.members.size(); ++i) {
      auto [it, inserted] = bucket.bundles.try_emplace(bucket.local_labels[i],
                                                       config_.encoder.dim);
      it->second.add(records_[bucket.members[i]].hv);
    }
  }
}

void incremental_clusterer::rebuild_dirty_buckets() {
  std::vector<bucket_state*> dirty;
  for (auto& [key, bucket] : buckets_) {
    if (bucket.dirty) dirty.push_back(&bucket);
  }
  if (dirty.empty()) return;
  thread_pool& p = pool();
  p.parallel_for(dirty.size(), [&](std::size_t b) { recluster(*dirty[b]); },
                 /*grain=*/1);
}

cluster::flat_clustering incremental_clusterer::clustering() const {
  cluster::flat_clustering out;
  out.labels.assign(records_.size(), -1);
  std::size_t offset = 0;
  for (const auto& [key, bucket] : buckets_) {
    for (std::size_t i = 0; i < bucket.members.size(); ++i) {
      out.labels[bucket.members[i]] =
          static_cast<std::int32_t>(offset + static_cast<std::size_t>(bucket.local_labels[i]));
    }
    offset += static_cast<std::size_t>(bucket.next_local);
  }
  out.cluster_count = offset;
  return out;
}

clusterer_state incremental_clusterer::export_state() const {
  clusterer_state state;
  state.store = to_store();
  state.buckets.reserve(buckets_.size());
  for (const auto& [key, bucket] : buckets_) {
    bucket_snapshot snap;
    snap.key = key;
    snap.members = bucket.members;
    snap.local_labels = bucket.local_labels;
    snap.next_local = bucket.next_local;
    snap.dirty = bucket.dirty;
    state.buckets.push_back(std::move(snap));
  }
  return state;
}

void incremental_clusterer::import_state(clusterer_state state) {
  if (state.store.size() > 0 && state.store.dim() != config_.encoder.dim) {
    throw spechd::error("clusterer_state dimension " + std::to_string(state.store.dim()) +
                        " does not match configured dim " +
                        std::to_string(config_.encoder.dim));
  }
  const std::size_t n = state.store.size();
  // The buckets must partition [0, n): every record in exactly one bucket,
  // labels aligned with members and consistent with next_local, and every
  // member's bucket key must agree with this config's bucketing (otherwise
  // future pushes would route the same precursor to a different bucket).
  std::vector<bool> seen(n, false);
  std::int64_t previous_key = 0;
  bool first = true;
  for (const auto& snap : state.buckets) {
    if (!first && snap.key <= previous_key) {
      throw spechd::error("clusterer_state buckets not in ascending key order");
    }
    first = false;
    previous_key = snap.key;
    if (snap.members.size() != snap.local_labels.size()) {
      throw spechd::error("clusterer_state bucket " + std::to_string(snap.key) +
                          ": members/labels size mismatch");
    }
    for (std::size_t i = 0; i < snap.members.size(); ++i) {
      const auto idx = snap.members[i];
      if (idx >= n || seen[idx]) {
        throw spechd::error("clusterer_state bucket " + std::to_string(snap.key) +
                            ": invalid or duplicate record index " + std::to_string(idx));
      }
      seen[idx] = true;
      const auto label = snap.local_labels[i];
      if (label < 0 || label >= snap.next_local) {
        throw spechd::error("clusterer_state bucket " + std::to_string(snap.key) +
                            ": label " + std::to_string(label) + " outside [0, " +
                            std::to_string(snap.next_local) + ")");
      }
      const auto& r = state.store.at(idx);
      const auto expected =
          preprocess::bucket_index(r.precursor_mz, r.precursor_charge,
                                   config_.preprocess.bucketing);
      if (expected != snap.key) {
        throw spechd::error("clusterer_state bucket " + std::to_string(snap.key) +
                            ": record " + std::to_string(idx) +
                            " buckets to key " + std::to_string(expected) +
                            " under this config");
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!seen[i]) {
      throw spechd::error("clusterer_state: record " + std::to_string(i) +
                          " is in no bucket");
    }
  }

  records_ = state.store.records();
  buckets_.clear();
  for (auto& snap : state.buckets) {
    bucket_state& bucket = buckets_[snap.key];
    bucket.members = std::move(snap.members);
    bucket.local_labels = std::move(snap.local_labels);
    bucket.next_local = snap.next_local;
    bucket.dirty = snap.dirty;
    if (mode_ == assign_mode::bundle_representative) {
      // Bundle counters are per-bit sums over members, so rebuilding from
      // the records reproduces the original bundles exactly (order-free).
      for (std::size_t i = 0; i < bucket.members.size(); ++i) {
        auto [it, inserted] = bucket.bundles.try_emplace(bucket.local_labels[i],
                                                         config_.encoder.dim);
        it->second.add(records_[bucket.members[i]].hv);
      }
    }
  }
}

void incremental_clusterer::for_each_bucket(
    const std::function<void(const bucket_ref&)>& fn) const {
  for (const auto& [key, bucket] : buckets_) {
    fn(bucket_ref{key, bucket.members, bucket.local_labels, bucket.next_local,
                  bucket.dirty});
  }
}

hdc::hv_store incremental_clusterer::to_store() const {
  hdc::hv_store store(config_.encoder.dim, config_.encoder.seed);
  for (const auto& r : records_) store.append(r);
  return store;
}

std::size_t incremental_clusterer::dirty_bucket_count() const noexcept {
  std::size_t dirty = 0;
  for (const auto& [key, bucket] : buckets_) {
    dirty += bucket.dirty ? 1 : 0;
  }
  return dirty;
}

std::size_t incremental_clusterer::cluster_count() const noexcept {
  std::size_t total = 0;
  for (const auto& [key, bucket] : buckets_) {
    total += static_cast<std::size_t>(bucket.next_local);
  }
  return total;
}

}  // namespace spechd::core
