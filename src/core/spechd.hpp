// SpecHD end-to-end pipeline (the paper's primary contribution, Fig. 3).
//
//   load -> preprocess (filter, top-k, normalise, quantise, bucket)
//        -> ID-Level encode (Eq. 2)
//        -> per-bucket NN-chain HAC on (fixed-point) Hamming matrices
//        -> threshold cut -> medoid consensus
//
// This is the bit-exact reference of what the FPGA executes: the q16
// distance path and the NN-chain kernel behaviour match Sec. III-C, while
// wall-clock performance of the hardware is modelled separately in
// src/fpga (the simulator consumes the *operation counts* this pipeline
// measures). Buckets cluster independently and are dispatched onto a
// thread pool, mirroring the 5-kernel parallelism on the card.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/consensus.hpp"
#include "cluster/nn_chain.hpp"
#include "hdc/encoder.hpp"
#include "ms/spectrum.hpp"
#include "preprocess/pipeline.hpp"

namespace spechd {
class thread_pool;
}

namespace spechd::core {

/// Configuration for one pipeline (or incremental-clusterer) instance.
/// Defaults reproduce the paper's operating point end to end; every field
/// is safe to vary independently. The struct is plain data — copy it per
/// pipeline; it is never mutated by a run.
struct spechd_config {
  preprocess::preprocess_config preprocess;  ///< filter/top-k/quantise/bucket knobs
  hdc::encoder_config encoder;               ///< D_hv (2048), item-memory seed
  cluster::linkage link = cluster::linkage::complete;  ///< paper's choice
  /// Dendrogram cut, normalised Hamming. Majority-binarised HVs of
  /// replicate spectra land around 0.35-0.45 while unrelated in-bucket
  /// pairs concentrate near 0.5, so the operating window is narrow and
  /// high; 0.42 balances clustered ratio vs ICR on HCD-like data.
  double distance_threshold = 0.42;
  bool use_fixed_point = true;       ///< q16 matrix, as on the FPGA
  std::size_t threads = 0;           ///< pool workers (encode + buckets + tiles);
                                     ///< 0 = hardware concurrency
  /// CPU kernel variant for the XOR/popcount datapaths: "auto" (best the
  /// CPU supports), "scalar", "avx2", or "avx512". All variants produce
  /// bit-identical results; this knob exists so benches can measure them.
  /// Dispatch is process-global: a non-default value re-points every HDC
  /// kernel in the process, so don't run pipelines with *different* pinned
  /// variants concurrently (the default "auto" never writes global state).
  std::string kernel_variant = "auto";
};

/// Wall-clock phase breakdown of a reference-pipeline run (seconds).
struct measured_phases {
  double preprocess = 0.0;
  double encode = 0.0;
  double cluster = 0.0;
  double consensus = 0.0;

  double total() const noexcept { return preprocess + encode + cluster + consensus; }
};

struct spechd_result {
  cluster::flat_clustering clustering;  ///< label per input spectrum; dropped
                                        ///< spectra become singletons
  std::vector<ms::spectrum> consensus;  ///< one representative per cluster
  std::size_t encoded_spectra = 0;
  std::size_t bucket_count = 0;
  double compression_factor = 0.0;      ///< raw peak bytes / HV bytes (Fig. 6b)
  cluster::hac_stats hac_stats;         ///< summed over buckets (feeds the
                                        ///< FPGA cycle model)
  measured_phases phases;
};

/// Clusters one bucket's hypervectors exactly as the batch pipeline does:
/// kernel-tiled pairwise Hamming matrix (q16 when config.use_fixed_point,
/// f32 otherwise) into the kernel-backed NN-chain. Shared by the batch
/// pipeline and the incremental/streaming path so the two cannot drift.
///
/// Parameters: `hvs` must share one dimension (checked); `pool` may be
/// null (serial tiles) or a pool this call is itself running on —
/// parallel_for is nested-safe. `prebuilt_f32` lets a caller that already
/// built the float matrix (the pipeline keeps one for consensus) avoid a
/// rebuild on the f32 path; it must be the pairwise matrix of `hvs`.
///
/// Thread-safety: safe to call concurrently from many threads (the
/// pipeline does, one call per bucket). All large scratch comes from the
/// process-wide arena pool; the only shared mutable state. The result is
/// deterministic for any thread count and kernel variant.
cluster::hac_result bucket_hac(const std::vector<hdc::hypervector>& hvs,
                               const spechd_config& config, thread_pool* pool,
                               const hdc::distance_matrix_f32* prebuilt_f32 = nullptr);

/// The batch pipeline. Construct once with a config, call run() per
/// dataset; instances are cheap and carry no state besides the config.
class spechd_pipeline {
public:
  explicit spechd_pipeline(spechd_config config);

  const spechd_config& config() const noexcept { return config_; }

  /// Runs the full pipeline. Input spectra are copied (preprocessing is
  /// destructive); the result's label vector aligns with the input order,
  /// with dropped spectra labelled as trailing singletons.
  ///
  /// Thread-safety: run() creates its own thread pool (config_.threads
  /// workers) and is safe to call from any thread, but note the
  /// kernel_variant caveat above — two concurrent runs must not pin
  /// *different* non-"auto" variants. Output is bit-identical for any
  /// thread count and (per the kernel equivalence guarantee) any variant.
  spechd_result run(const std::vector<ms::spectrum>& spectra) const;

private:
  spechd_config config_;
};

}  // namespace spechd::core
