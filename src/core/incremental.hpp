// Incremental clustering over a persistent hypervector store.
//
// Sec. IV-B: "repeatedly initiating the computational pipeline from the
// beginning for every analysis proves not only inefficient but also
// counterproductive. One-time preprocessing and subsequent updates,
// therefore, emerge as a promising approach for enhancing real-time data
// analysis."
//
// The incremental clusterer maintains per-bucket cluster state (members +
// a representative hypervector per cluster). New batches are preprocessed
// and encoded once, then each new spectrum either joins the nearest
// existing cluster (complete-linkage test against all members, matching
// the batch pipeline's criterion) or founds a new cluster; buckets whose
// membership changed re-run NN-chain locally when `rebuild` is requested.
//
// Two ingestion paths share one assignment semantic:
//   * push() / add_spectra() — the sequential reference: one spectrum at a
//     time, in arrival order.
//   * push_batch() — the streaming fast path: the whole batch is
//     preprocessed once, encoded through the shared thread pool, routed to
//     buckets, and then assigned bucket-by-bucket in parallel. Members of
//     one bucket are still assigned in arrival order and the in-bucket
//     distance rows go through the same dispatched Hamming kernels, so the
//     resulting clusters are identical to sequential push() of the same
//     sequence for any thread count (tests/core/test_incremental_batch.cpp
//     pins this).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "cluster/nn_chain.hpp"
#include "core/spechd.hpp"
#include "hdc/bundle.hpp"
#include "hdc/encoder.hpp"
#include "hdc/hv_store.hpp"

namespace spechd {
class thread_pool;
}

namespace spechd::core {

/// Serialisable snapshot of one bucket's cluster state (see
/// incremental_clusterer::export_state). `members` index the exported
/// store's records; within a bucket they are in arrival order, which is
/// the order the assignment semantics depend on.
struct bucket_snapshot {
  std::int64_t key = 0;
  std::vector<std::uint32_t> members;
  std::vector<std::int32_t> local_labels;
  std::int32_t next_local = 0;
  bool dirty = false;
};

/// Complete externalised state of an incremental_clusterer: every record
/// (store order == ingestion order) plus the per-bucket cluster state.
/// This is what the serve layer persists into .sphsnap snapshots.
struct clusterer_state {
  hdc::hv_store store;
  std::vector<bucket_snapshot> buckets;  ///< ascending bucket key
};

/// Result of one incremental update.
struct update_report {
  std::size_t added = 0;             ///< spectra ingested in this batch
  std::size_t joined_existing = 0;   ///< assigned to a pre-existing cluster
  std::size_t new_clusters = 0;      ///< founded by this batch
  std::size_t buckets_touched = 0;
};

/// How new spectra are matched against existing clusters.
enum class assign_mode {
  /// Complete-linkage scan over every member (batch-equivalent criterion).
  complete_linkage,
  /// Compare against a majority-bundled representative per cluster — O(1)
  /// Hamming tests per cluster instead of O(|cluster|); the HDC-native
  /// streaming shortcut (slightly more permissive near the threshold).
  bundle_representative,
};

/// Streaming/incremental front end over per-bucket cluster state.
///
/// Thread-safety: an instance has single-owner semantics — do not call
/// two methods concurrently on the same instance. Internally, push_batch /
/// bootstrap / rebuild_dirty_buckets fan work out over a lazily created
/// shared pool (config.threads workers); that parallelism never changes
/// results (see the equivalence guarantee below). Distinct instances are
/// fully independent and may run concurrently.
///
/// Equivalence guarantee (pinned by tests/core/test_incremental_batch.cpp):
/// for the same spectrum sequence, push_batch() produces exactly the
/// clusters sequential push()/add_spectra() would — any batch split, any
/// thread count — and rebuild_dirty_buckets()/bootstrap() recluster
/// through the same core::bucket_hac path as the batch pipeline, so a
/// rebuilt incremental state matches a from-scratch pipeline run over the
/// same buckets.
class incremental_clusterer {
public:
  /// `config` is copied; `mode` picks the assignment criterion (see
  /// assign_mode). The config's kernel_variant is *not* applied here —
  /// dispatch is process-global and owned by the pipeline/bench entry
  /// points.
  explicit incremental_clusterer(spechd_config config,
                                 assign_mode mode = assign_mode::complete_linkage);
  ~incremental_clusterer();
  incremental_clusterer(incremental_clusterer&&) noexcept;
  incremental_clusterer& operator=(incremental_clusterer&&) noexcept;

  /// Bootstraps state from an existing store (e.g. loaded from disk):
  /// clusters every bucket with NN-chain — through the same bucket_hac
  /// path as the batch pipeline — in parallel across buckets. Replaces
  /// any previous state; store.dim() must equal config.encoder.dim.
  void bootstrap(const hdc::hv_store& store);

  /// Ingests one spectrum through the sequential reference path.
  update_report push(const ms::spectrum& spectrum);

  /// Ingests a new batch of raw spectra one at a time (sequential
  /// reference path): preprocess -> encode -> assign, in arrival order.
  update_report add_spectra(const std::vector<ms::spectrum>& spectra);

  /// Streaming fast path: preprocesses and encodes the whole batch at
  /// once (batch-parallel through the shared pool), then assigns per
  /// bucket in parallel. Produces exactly the clusters sequential push()
  /// of the same sequence would, for any thread count.
  update_report push_batch(const std::vector<ms::spectrum>& spectra);

  /// Fully re-clusters every bucket marked dirty by ingestion (restores
  /// batch-pipeline-equivalent assignments at O(changed buckets) cost);
  /// dirty buckets are redistributed over the shared pool.
  void rebuild_dirty_buckets();

  /// Current flat clustering over all ingested records, in ingestion order.
  cluster::flat_clustering clustering() const;

  /// All ingested records as a store (for persisting back to disk).
  hdc::hv_store to_store() const;

  /// Copies the complete state out — records plus per-bucket assignments —
  /// so a caller can persist it and later import_state() into an equally
  /// configured instance. Exported buckets are in ascending key order.
  clusterer_state export_state() const;

  /// Replaces all state with `state`, validating it first: the store's
  /// dimension must match the config, the buckets must partition the
  /// records exactly, every member's key must agree with the config's
  /// bucketing, and labels must be consistent with next_local. Throws
  /// spechd::error on any violation (the instance is unchanged then).
  /// After a successful import, subsequent pushes behave exactly as if
  /// this instance had ingested the original sequence itself
  /// (bundle-representative state is rebuilt from the records).
  void import_state(clusterer_state state);

  /// Read-only view of one bucket, valid only inside for_each_bucket.
  struct bucket_ref {
    std::int64_t key;
    const std::vector<std::uint32_t>& members;      ///< record indices, arrival order
    const std::vector<std::int32_t>& local_labels;  ///< cluster id per member
    std::int32_t cluster_count;                     ///< local cluster ids are [0, this)
    bool dirty;
  };

  /// Visits every bucket in ascending key order. The serve layer uses this
  /// to rebuild published query views without copying the whole state.
  /// Single-owner semantics apply (do not ingest concurrently).
  void for_each_bucket(const std::function<void(const bucket_ref&)>& fn) const;

  /// Record `index` (indices are what bucket_ref::members hold).
  const hdc::hv_record& record(std::size_t index) const { return records_.at(index); }

  std::size_t size() const noexcept { return records_.size(); }
  std::size_t cluster_count() const noexcept;
  std::size_t bucket_count() const noexcept { return buckets_.size(); }

  /// Buckets touched by ingestion since their last recluster — what a
  /// rebuild_dirty_buckets() call would visit. The serve layer's
  /// maintenance scheduler polls this (via the published view) to decide
  /// whether an idle shard needs a background recluster, and its journal
  /// replays recluster records against states whose dirty flags are
  /// identical — so the count is part of the deterministic-replay surface.
  std::size_t dirty_bucket_count() const noexcept;

private:
  struct bucket_state {
    std::vector<std::uint32_t> members;        ///< record indices
    std::vector<std::int32_t> local_labels;    ///< cluster id per member
    std::int32_t next_local = 0;
    bool dirty = false;
    /// Bundled representative per local cluster (bundle_representative mode).
    std::map<std::int32_t, hdc::incremental_bundle> bundles;
  };

  /// Assigns record `index` (already in `bucket`) to a cluster by the
  /// complete-linkage criterion: join the cluster whose *maximum* member
  /// distance is smallest and below threshold. The member-distance row is
  /// computed with one dispatched hamming_tile call. Thread-safe for
  /// distinct buckets (reads records_, mutates only `bucket` and `report`).
  void assign(bucket_state& bucket, std::uint32_t index, update_report& report) const;

  void recluster(bucket_state& bucket);

  /// Lazily-created shared pool (config_.threads workers) for push_batch,
  /// bootstrap, and rebuild_dirty_buckets.
  thread_pool& pool();

  spechd_config config_;
  assign_mode mode_;
  hdc::id_level_encoder encoder_;
  std::vector<hdc::hv_record> records_;
  std::map<std::int64_t, bucket_state> buckets_;
  std::unique_ptr<thread_pool> pool_;
};

}  // namespace spechd::core
