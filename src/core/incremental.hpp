// Incremental clustering over a persistent hypervector store.
//
// Sec. IV-B: "repeatedly initiating the computational pipeline from the
// beginning for every analysis proves not only inefficient but also
// counterproductive. One-time preprocessing and subsequent updates,
// therefore, emerge as a promising approach for enhancing real-time data
// analysis."
//
// The incremental clusterer maintains per-bucket cluster state (members +
// a representative hypervector per cluster). New batches are preprocessed
// and encoded once, then each new spectrum either joins the nearest
// existing cluster (complete-linkage test against all members, matching
// the batch pipeline's criterion) or founds a new cluster; buckets whose
// membership changed re-run NN-chain locally when `rebuild` is requested.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "cluster/nn_chain.hpp"
#include "core/spechd.hpp"
#include "hdc/bundle.hpp"
#include "hdc/encoder.hpp"
#include "hdc/hv_store.hpp"

namespace spechd::core {

/// Result of one incremental update.
struct update_report {
  std::size_t added = 0;             ///< spectra ingested in this batch
  std::size_t joined_existing = 0;   ///< assigned to a pre-existing cluster
  std::size_t new_clusters = 0;      ///< founded by this batch
  std::size_t buckets_touched = 0;
};

/// How new spectra are matched against existing clusters.
enum class assign_mode {
  /// Complete-linkage scan over every member (batch-equivalent criterion).
  complete_linkage,
  /// Compare against a majority-bundled representative per cluster — O(1)
  /// Hamming tests per cluster instead of O(|cluster|); the HDC-native
  /// streaming shortcut (slightly more permissive near the threshold).
  bundle_representative,
};

class incremental_clusterer {
public:
  explicit incremental_clusterer(spechd_config config,
                                 assign_mode mode = assign_mode::complete_linkage);

  /// Bootstraps state from an existing store (e.g. loaded from disk):
  /// clusters every bucket with NN-chain, exactly like the batch pipeline.
  void bootstrap(const hdc::hv_store& store);

  /// Ingests a new batch of raw spectra: preprocess -> encode -> assign.
  update_report add_spectra(const std::vector<ms::spectrum>& spectra);

  /// Fully re-clusters every bucket marked dirty by add_spectra (restores
  /// batch-pipeline-equivalent assignments at O(changed buckets) cost).
  void rebuild_dirty_buckets();

  /// Current flat clustering over all ingested records, in ingestion order.
  cluster::flat_clustering clustering() const;

  /// All ingested records as a store (for persisting back to disk).
  hdc::hv_store to_store() const;

  std::size_t size() const noexcept { return records_.size(); }
  std::size_t cluster_count() const noexcept;

private:
  struct bucket_state {
    std::vector<std::uint32_t> members;        ///< record indices
    std::vector<std::int32_t> local_labels;    ///< cluster id per member
    std::int32_t next_local = 0;
    bool dirty = false;
    /// Bundled representative per local cluster (bundle_representative mode).
    std::map<std::int32_t, hdc::incremental_bundle> bundles;
  };

  /// Assigns record `index` (already in `bucket`) to a cluster by the
  /// complete-linkage criterion: join the cluster whose *maximum* member
  /// distance is smallest and below threshold.
  void assign(bucket_state& bucket, std::uint32_t index, update_report& report);

  void recluster(bucket_state& bucket);

  spechd_config config_;
  assign_mode mode_;
  hdc::id_level_encoder encoder_;
  std::vector<hdc::hv_record> records_;
  std::map<std::int64_t, bucket_state> buckets_;
};

}  // namespace spechd::core
