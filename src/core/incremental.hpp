// Incremental clustering over a persistent hypervector store.
//
// Sec. IV-B: "repeatedly initiating the computational pipeline from the
// beginning for every analysis proves not only inefficient but also
// counterproductive. One-time preprocessing and subsequent updates,
// therefore, emerge as a promising approach for enhancing real-time data
// analysis."
//
// The incremental clusterer maintains per-bucket cluster state (members +
// a representative hypervector per cluster). New batches are preprocessed
// and encoded once, then each new spectrum either joins the nearest
// existing cluster (complete-linkage test against all members, matching
// the batch pipeline's criterion) or founds a new cluster; buckets whose
// membership changed re-run NN-chain locally when `rebuild` is requested.
//
// Two ingestion paths share one assignment semantic:
//   * push() / add_spectra() — the sequential reference: one spectrum at a
//     time, in arrival order.
//   * push_batch() — the streaming fast path: the whole batch is
//     preprocessed once, encoded through the shared thread pool, routed to
//     buckets, and then assigned bucket-by-bucket in parallel. Members of
//     one bucket are still assigned in arrival order and the in-bucket
//     distance rows go through the same dispatched Hamming kernels, so the
//     resulting clusters are identical to sequential push() of the same
//     sequence for any thread count (tests/core/test_incremental_batch.cpp
//     pins this).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "cluster/nn_chain.hpp"
#include "core/spechd.hpp"
#include "hdc/bundle.hpp"
#include "hdc/encoder.hpp"
#include "hdc/hv_store.hpp"

namespace spechd {
class thread_pool;
}

namespace spechd::core {

/// Result of one incremental update.
struct update_report {
  std::size_t added = 0;             ///< spectra ingested in this batch
  std::size_t joined_existing = 0;   ///< assigned to a pre-existing cluster
  std::size_t new_clusters = 0;      ///< founded by this batch
  std::size_t buckets_touched = 0;
};

/// How new spectra are matched against existing clusters.
enum class assign_mode {
  /// Complete-linkage scan over every member (batch-equivalent criterion).
  complete_linkage,
  /// Compare against a majority-bundled representative per cluster — O(1)
  /// Hamming tests per cluster instead of O(|cluster|); the HDC-native
  /// streaming shortcut (slightly more permissive near the threshold).
  bundle_representative,
};

/// Streaming/incremental front end over per-bucket cluster state.
///
/// Thread-safety: an instance has single-owner semantics — do not call
/// two methods concurrently on the same instance. Internally, push_batch /
/// bootstrap / rebuild_dirty_buckets fan work out over a lazily created
/// shared pool (config.threads workers); that parallelism never changes
/// results (see the equivalence guarantee below). Distinct instances are
/// fully independent and may run concurrently.
///
/// Equivalence guarantee (pinned by tests/core/test_incremental_batch.cpp):
/// for the same spectrum sequence, push_batch() produces exactly the
/// clusters sequential push()/add_spectra() would — any batch split, any
/// thread count — and rebuild_dirty_buckets()/bootstrap() recluster
/// through the same core::bucket_hac path as the batch pipeline, so a
/// rebuilt incremental state matches a from-scratch pipeline run over the
/// same buckets.
class incremental_clusterer {
public:
  /// `config` is copied; `mode` picks the assignment criterion (see
  /// assign_mode). The config's kernel_variant is *not* applied here —
  /// dispatch is process-global and owned by the pipeline/bench entry
  /// points.
  explicit incremental_clusterer(spechd_config config,
                                 assign_mode mode = assign_mode::complete_linkage);
  ~incremental_clusterer();
  incremental_clusterer(incremental_clusterer&&) noexcept;
  incremental_clusterer& operator=(incremental_clusterer&&) noexcept;

  /// Bootstraps state from an existing store (e.g. loaded from disk):
  /// clusters every bucket with NN-chain — through the same bucket_hac
  /// path as the batch pipeline — in parallel across buckets. Replaces
  /// any previous state; store.dim() must equal config.encoder.dim.
  void bootstrap(const hdc::hv_store& store);

  /// Ingests one spectrum through the sequential reference path.
  update_report push(const ms::spectrum& spectrum);

  /// Ingests a new batch of raw spectra one at a time (sequential
  /// reference path): preprocess -> encode -> assign, in arrival order.
  update_report add_spectra(const std::vector<ms::spectrum>& spectra);

  /// Streaming fast path: preprocesses and encodes the whole batch at
  /// once (batch-parallel through the shared pool), then assigns per
  /// bucket in parallel. Produces exactly the clusters sequential push()
  /// of the same sequence would, for any thread count.
  update_report push_batch(const std::vector<ms::spectrum>& spectra);

  /// Fully re-clusters every bucket marked dirty by ingestion (restores
  /// batch-pipeline-equivalent assignments at O(changed buckets) cost);
  /// dirty buckets are redistributed over the shared pool.
  void rebuild_dirty_buckets();

  /// Current flat clustering over all ingested records, in ingestion order.
  cluster::flat_clustering clustering() const;

  /// All ingested records as a store (for persisting back to disk).
  hdc::hv_store to_store() const;

  std::size_t size() const noexcept { return records_.size(); }
  std::size_t cluster_count() const noexcept;

private:
  struct bucket_state {
    std::vector<std::uint32_t> members;        ///< record indices
    std::vector<std::int32_t> local_labels;    ///< cluster id per member
    std::int32_t next_local = 0;
    bool dirty = false;
    /// Bundled representative per local cluster (bundle_representative mode).
    std::map<std::int32_t, hdc::incremental_bundle> bundles;
  };

  /// Assigns record `index` (already in `bucket`) to a cluster by the
  /// complete-linkage criterion: join the cluster whose *maximum* member
  /// distance is smallest and below threshold. The member-distance row is
  /// computed with one dispatched hamming_tile call. Thread-safe for
  /// distinct buckets (reads records_, mutates only `bucket` and `report`).
  void assign(bucket_state& bucket, std::uint32_t index, update_report& report) const;

  void recluster(bucket_state& bucket);

  /// Lazily-created shared pool (config_.threads workers) for push_batch,
  /// bootstrap, and rebuild_dirty_buckets.
  thread_pool& pool();

  spechd_config config_;
  assign_mode mode_;
  hdc::id_level_encoder encoder_;
  std::vector<hdc::hv_record> records_;
  std::map<std::int64_t, bucket_state> buckets_;
  std::unique_ptr<thread_pool> pool_;
};

}  // namespace spechd::core
