#include "core/spechd.hpp"

#include <atomic>
#include <mutex>

#include "hdc/cpu_kernels.hpp"
#include "hdc/distance.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace spechd::core {

cluster::hac_result bucket_hac(const std::vector<hdc::hypervector>& hvs,
                               const spechd_config& config, thread_pool* pool,
                               const hdc::distance_matrix_f32* prebuilt_f32) {
  // All large scratch below — the packed-tile operand blob inside
  // pairwise_hamming_* and the NN-chain flat working matrix — is checked
  // out of the shared arena pool (util/arena_pool), so concurrent
  // per-bucket calls reuse a small set of pooled allocations instead of
  // growing one thread_local arena per worker.
  if (config.use_fixed_point) {
    return cluster::nn_chain_hac(hdc::pairwise_hamming_q16(hvs, pool), config.link);
  }
  if (prebuilt_f32 != nullptr) {
    return cluster::nn_chain_hac(*prebuilt_f32, config.link);
  }
  return cluster::nn_chain_hac(hdc::pairwise_hamming_f32(hvs, pool), config.link);
}

spechd_pipeline::spechd_pipeline(spechd_config config) : config_(std::move(config)) {}

spechd_result spechd_pipeline::run(const std::vector<ms::spectrum>& spectra) const {
  // Kernel dispatch is process-global; write it only when this run actually
  // pins a different variant, so the default ("auto" = already-active best)
  // path stays free of global side effects. See the knob's doc in spechd.hpp.
  const auto requested = hdc::kernels::parse_variant(config_.kernel_variant);
  if (requested != hdc::kernels::active()) hdc::kernels::set_active(requested);
  spechd_result result;
  stopwatch watch;

  // --- preprocessing --------------------------------------------------------
  auto batch = preprocess::run_preprocessing(spectra, config_.preprocess);
  result.phases.preprocess = watch.seconds();
  result.encoded_spectra = batch.spectra.size();
  result.bucket_count = batch.buckets.size();
  log_info() << "preprocess: " << spectra.size() << " spectra -> "
             << batch.spectra.size() << " survivors in " << batch.buckets.size()
             << " buckets (" << batch.dropped << " dropped)";

  // Compression accounting: raw peak bytes of the *input* vs HV storage.
  std::size_t raw_bytes = 0;
  for (const auto& s : spectra) raw_bytes += ms::raw_peak_bytes(s);
  result.compression_factor =
      hdc::compression_factor(raw_bytes, batch.spectra.size(), config_.encoder.dim);

  // --- encoding -------------------------------------------------------------
  // One pool serves all phases: per-spectrum encoding, bucket-level
  // clustering, and the tile-parallel distance matrices inside each bucket
  // (parallel_for is nested-safe; output is deterministic either way).
  thread_pool pool(config_.threads);
  watch.reset();
  hdc::id_level_encoder encoder(config_.encoder, config_.preprocess.quantize.mz_bins,
                                config_.preprocess.quantize.intensity_levels);
  const auto hvs = encoder.encode_batch(batch.spectra, &pool);
  result.phases.encode = watch.seconds();

  // --- per-bucket clustering -------------------------------------------------
  watch.reset();
  result.clustering.labels.assign(spectra.size(), -1);

  struct bucket_output {
    std::vector<std::uint32_t> original;     ///< input indices
    std::vector<std::int32_t> local_labels;  ///< per member
    std::size_t local_clusters = 0;
    std::vector<ms::spectrum> consensus;
    cluster::hac_stats stats;
  };
  std::vector<bucket_output> outputs(batch.buckets.size());

  pool.parallel_for(batch.buckets.size(), [&](std::size_t b) {
    const auto& bucket = batch.buckets[b];
    bucket_output& out = outputs[b];
    out.original.reserve(bucket.size());
    for (const auto idx : bucket.members) {
      out.original.push_back(batch.spectra[idx].source_index);
    }

    if (bucket.size() == 1) {
      out.local_labels = {0};
      out.local_clusters = 1;
      out.consensus.push_back(spectra[out.original[0]]);
      return;
    }

    std::vector<hdc::hypervector> bucket_hvs;
    bucket_hvs.reserve(bucket.size());
    for (const auto idx : bucket.members) bucket_hvs.push_back(hvs[idx]);

    // Distance matrix: the f32 copy is always built for consensus (the
    // "original distance matrix" of Sec. III-C); the cluster path goes
    // through bucket_hac — the same code path the incremental clusterer
    // uses — which picks the FPGA's q16 grid when configured.
    const auto matrix_f32 = hdc::pairwise_hamming_f32(bucket_hvs, &pool);
    cluster::hac_result hac = bucket_hac(bucket_hvs, config_, &pool, &matrix_f32);
    out.stats = hac.stats;

    auto flat = hac.tree.cut(config_.distance_threshold);
    out.local_clusters = flat.cluster_count;

    // Consensus per local cluster on the bucket's original spectra.
    std::vector<ms::spectrum> bucket_spectra;
    bucket_spectra.reserve(bucket.size());
    for (const auto idx : out.original) bucket_spectra.push_back(spectra[idx]);
    out.consensus = cluster::consensus_spectra(flat, matrix_f32, bucket_spectra);
    out.local_labels = std::move(flat.labels);
  });
  result.phases.cluster = watch.seconds();

  // --- merge bucket outputs ---------------------------------------------------
  watch.reset();
  std::size_t offset = 0;
  for (auto& out : outputs) {
    for (std::size_t i = 0; i < out.original.size(); ++i) {
      result.clustering.labels[out.original[i]] =
          static_cast<std::int32_t>(offset + static_cast<std::size_t>(out.local_labels[i]));
    }
    offset += out.local_clusters;
    result.hac_stats.comparisons += out.stats.comparisons;
    result.hac_stats.distance_updates += out.stats.distance_updates;
    result.hac_stats.chain_pushes += out.stats.chain_pushes;
    result.hac_stats.merges += out.stats.merges;
    for (auto& c : out.consensus) result.consensus.push_back(std::move(c));
  }

  // Spectra dropped by the filter keep singleton labels at the end.
  for (auto& label : result.clustering.labels) {
    if (label < 0) label = static_cast<std::int32_t>(offset++);
  }
  result.clustering.cluster_count = offset;
  result.phases.consensus = watch.seconds();
  log_info() << "clustered " << spectra.size() << " spectra into " << offset
             << " clusters in " << result.phases.total() << " s";
  return result;
}

}  // namespace spechd::core
