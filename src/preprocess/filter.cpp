#include "preprocess/filter.hpp"

#include <algorithm>
#include <cmath>

namespace spechd::preprocess {

bool filter_spectrum(ms::spectrum& s, const filter_config& config) {
  const float base = ms::base_peak_intensity(s);
  const float floor = static_cast<float>(base * config.min_intensity_fraction);

  // Precursor-related m/z values: the precursor itself and charge-reduced
  // species down to 1+ (all appear as intense uninformative peaks).
  double precursor_windows[8];
  std::size_t window_count = 0;
  if (s.precursor_charge >= 1 && s.precursor_mz > 0.0) {
    const double neutral = s.precursor_neutral_mass();
    for (int z = 1; z <= s.precursor_charge && window_count < 8; ++z) {
      precursor_windows[window_count++] = (neutral + z * ms::proton_mass) / z;
    }
  } else if (s.precursor_mz > 0.0) {
    precursor_windows[window_count++] = s.precursor_mz;
  }

  auto is_precursor_related = [&](double mz) {
    for (std::size_t i = 0; i < window_count; ++i) {
      if (std::abs(mz - precursor_windows[i]) <= config.precursor_tolerance_da) {
        return true;
      }
    }
    return false;
  };

  std::erase_if(s.peaks, [&](const ms::peak& p) {
    return p.intensity < floor || p.mz < config.mz_min || p.mz > config.mz_max ||
           is_precursor_related(p.mz);
  });

  return s.peaks.size() >= config.min_peaks;
}

std::size_t filter_spectra(std::vector<ms::spectrum>& spectra, const filter_config& config) {
  const std::size_t before = spectra.size();
  std::erase_if(spectra, [&](ms::spectrum& s) { return !filter_spectrum(s, config); });
  return before - spectra.size();
}

}  // namespace spechd::preprocess
