#include "preprocess/quantize.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace spechd::preprocess {

std::uint32_t quantize_mz(double mz, const quantize_config& config) noexcept {
  if (mz <= config.mz_min) return 0;
  if (mz >= config.mz_max) return config.mz_bins - 1;
  const double frac = (mz - config.mz_min) / (config.mz_max - config.mz_min);
  auto bin = static_cast<std::uint32_t>(frac * config.mz_bins);
  return std::min(bin, config.mz_bins - 1);
}

std::uint16_t quantize_intensity(float intensity, float max_intensity,
                                 const quantize_config& config) noexcept {
  if (max_intensity <= 0.0F || intensity <= 0.0F) return 0;
  const double rel = std::min(1.0, static_cast<double>(intensity) / max_intensity);
  auto level = static_cast<std::uint16_t>(rel * config.intensity_levels);
  return std::min<std::uint16_t>(level, config.intensity_levels - 1);
}

quantized_spectrum quantize_spectrum(const ms::spectrum& s, std::uint32_t source_index,
                                     const quantize_config& config) {
  SPECHD_EXPECTS(config.mz_bins >= 2);
  SPECHD_EXPECTS(config.intensity_levels >= 2);
  SPECHD_EXPECTS(config.mz_max > config.mz_min);

  quantized_spectrum q;
  q.precursor_mz = s.precursor_mz;
  q.precursor_charge = s.precursor_charge;
  q.label = s.label;
  q.source_index = source_index;
  q.peaks.reserve(s.peaks.size());

  const float base = ms::base_peak_intensity(s);
  for (const auto& p : s.peaks) {
    q.peaks.push_back({quantize_mz(p.mz, config),
                       quantize_intensity(p.intensity, base, config)});
  }

  // Deduplicate equal m/z bins, keeping the strongest level. Peaks arrive
  // m/z-sorted, so duplicates are adjacent.
  if (!q.peaks.empty()) {
    std::size_t out = 0;
    for (std::size_t i = 1; i < q.peaks.size(); ++i) {
      if (q.peaks[i].mz_bin == q.peaks[out].mz_bin) {
        q.peaks[out].level = std::max(q.peaks[out].level, q.peaks[i].level);
      } else {
        q.peaks[++out] = q.peaks[i];
      }
    }
    q.peaks.resize(out + 1);
  }
  return q;
}

std::vector<quantized_spectrum> quantize_spectra(const std::vector<ms::spectrum>& spectra,
                                                 const quantize_config& config) {
  std::vector<quantized_spectrum> result;
  result.reserve(spectra.size());
  for (std::size_t i = 0; i < spectra.size(); ++i) {
    result.push_back(quantize_spectrum(spectra[i], static_cast<std::uint32_t>(i), config));
  }
  return result;
}

}  // namespace spechd::preprocess
