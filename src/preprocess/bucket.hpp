// Precursor-m/z bucketing (Eq. 1 of the paper).
//
//   bucket_i = floor( (mz_i - 1.00794) * C_i / resolution )
//
// Spectra in different buckets are never compared, bounding the pairwise
// work per bucket and mapping naturally onto parallel clustering kernels.
// The bucket key is the precursor's neutral(ish) mass divided by the
// resolution, so co-eluting charge variants of the same peptide land in
// nearby buckets of the same mass scale.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "preprocess/quantize.hpp"

namespace spechd::preprocess {

struct bucket_config {
  double resolution = 1.0;  ///< Eq. 1 resolution; paper range [0.05, 1]
  /// Spectra with unknown charge are assigned charge 2 (the most common
  /// tryptic state) rather than dropped; matches falcon's behaviour.
  int fallback_charge = 2;
};

/// Eq. (1): the bucket index for one spectrum.
std::int64_t bucket_index(double precursor_mz, int charge, const bucket_config& config) noexcept;

/// A bucket: indices into the quantised-spectra array.
struct bucket {
  std::int64_t key = 0;
  std::vector<std::uint32_t> members;  ///< positions in the input vector

  std::size_t size() const noexcept { return members.size(); }
};

/// Partitions spectra into buckets ordered by ascending key ("data
/// organization strategy based on precursor m/z sorting").
std::vector<bucket> bucket_spectra(const std::vector<quantized_spectrum>& spectra,
                                   const bucket_config& config);

/// Summary statistics used by the design-space exploration bench.
struct bucket_stats {
  std::size_t bucket_count = 0;
  std::size_t largest = 0;
  std::size_t singletons = 0;
  double mean_size = 0.0;
};
bucket_stats summarize(const std::vector<bucket>& buckets) noexcept;

}  // namespace spechd::preprocess
