#include "preprocess/topk.hpp"

#include <algorithm>
#include <bit>
#include <limits>

namespace spechd::preprocess {

namespace {

/// Restores ascending-m/z order after an intensity-based selection.
void restore_mz_order(ms::spectrum& s) { ms::sort_peaks(s); }

}  // namespace

void heap_topk(ms::spectrum& s, std::size_t k) {
  if (k == 0) {
    s.peaks.clear();
    return;
  }
  if (s.peaks.size() <= k) return;
  std::nth_element(s.peaks.begin(), s.peaks.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   s.peaks.end(), [](const ms::peak& a, const ms::peak& b) {
                     return a.intensity > b.intensity;
                   });
  s.peaks.resize(k);
  restore_mz_order(s);
}

bitonic_stats bitonic_network_stats(std::size_t n) noexcept {
  bitonic_stats st;
  if (n <= 1) {
    st.padded_n = n;
    return st;
  }
  st.padded_n = std::bit_ceil(n);
  const auto log_n = static_cast<std::size_t>(std::bit_width(st.padded_n) - 1);
  st.stages = log_n * (log_n + 1) / 2;
  st.comparators = st.stages * (st.padded_n / 2);
  return st;
}

void bitonic_sort_descending(std::vector<float>& values) {
  const std::size_t n = values.size();
  if (n <= 1) return;
  const std::size_t padded = std::bit_ceil(n);
  values.resize(padded, -std::numeric_limits<float>::infinity());

  // Classic iterative bitonic network. The (k, j) double loop enumerates the
  // same compare-exchange schedule an unrolled HLS implementation pipelines.
  for (std::size_t k = 2; k <= padded; k <<= 1) {
    for (std::size_t j = k >> 1; j > 0; j >>= 1) {
      for (std::size_t i = 0; i < padded; ++i) {
        const std::size_t partner = i ^ j;
        if (partner > i) {
          const bool descending = (i & k) == 0;
          if ((descending && values[i] < values[partner]) ||
              (!descending && values[i] > values[partner])) {
            std::swap(values[i], values[partner]);
          }
        }
      }
    }
  }
  values.resize(n);
}

void bitonic_topk(ms::spectrum& s, std::size_t k) {
  if (k == 0) {
    s.peaks.clear();
    return;
  }
  if (s.peaks.size() <= k) return;

  std::vector<float> intensities;
  intensities.reserve(s.peaks.size());
  for (const auto& p : s.peaks) intensities.push_back(p.intensity);
  bitonic_sort_descending(intensities);
  const float threshold = intensities[k - 1];

  // Keep peaks strictly above threshold, then fill remaining slots with
  // peaks equal to the threshold (deterministic: lowest m/z first, matching
  // the stable behaviour of the hardware selector's index tie-break).
  std::vector<ms::peak> kept;
  kept.reserve(k);
  for (const auto& p : s.peaks) {
    if (p.intensity > threshold) kept.push_back(p);
  }
  for (const auto& p : s.peaks) {
    if (kept.size() >= k) break;
    if (p.intensity == threshold) kept.push_back(p);
  }
  s.peaks = std::move(kept);
  restore_mz_order(s);
}

}  // namespace spechd::preprocess
