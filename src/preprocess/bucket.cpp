#include "preprocess/bucket.hpp"

#include <cmath>

#include "ms/spectrum.hpp"
#include "util/error.hpp"

namespace spechd::preprocess {

std::int64_t bucket_index(double precursor_mz, int charge,
                          const bucket_config& config) noexcept {
  const int c = charge > 0 ? charge : config.fallback_charge;
  // Eq. (1); 1.00794 is the hydrogen mass constant the paper uses.
  const double value = (precursor_mz - ms::hydrogen_mass) * c / config.resolution;
  return static_cast<std::int64_t>(std::floor(value));
}

std::vector<bucket> bucket_spectra(const std::vector<quantized_spectrum>& spectra,
                                   const bucket_config& config) {
  SPECHD_EXPECTS(config.resolution > 0.0);
  std::map<std::int64_t, bucket> by_key;
  for (std::uint32_t i = 0; i < spectra.size(); ++i) {
    const auto key =
        bucket_index(spectra[i].precursor_mz, spectra[i].precursor_charge, config);
    auto& b = by_key[key];
    b.key = key;
    b.members.push_back(i);
  }
  std::vector<bucket> result;
  result.reserve(by_key.size());
  for (auto& [key, b] : by_key) result.push_back(std::move(b));
  return result;
}

bucket_stats summarize(const std::vector<bucket>& buckets) noexcept {
  bucket_stats st;
  st.bucket_count = buckets.size();
  std::size_t total = 0;
  for (const auto& b : buckets) {
    total += b.size();
    st.largest = std::max(st.largest, b.size());
    if (b.size() == 1) ++st.singletons;
  }
  st.mean_size = buckets.empty() ? 0.0 : static_cast<double>(total) / buckets.size();
  return st;
}

}  // namespace spechd::preprocess
