#include "preprocess/window_filter.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace spechd::preprocess {

namespace {

/// Invokes fn(first, last) for each run of peaks sharing a window index;
/// peaks must be m/z-sorted (library invariant).
template <typename Fn>
void for_each_window(const ms::spectrum& s, double window_da, Fn&& fn) {
  std::size_t begin = 0;
  while (begin < s.peaks.size()) {
    const auto window =
        static_cast<std::int64_t>(s.peaks[begin].mz / window_da);
    std::size_t end = begin + 1;
    while (end < s.peaks.size() &&
           static_cast<std::int64_t>(s.peaks[end].mz / window_da) == window) {
      ++end;
    }
    fn(begin, end);
    begin = end;
  }
}

}  // namespace

void window_topk(ms::spectrum& s, const window_filter_config& config) {
  SPECHD_EXPECTS(config.window_da > 0.0);
  SPECHD_EXPECTS(config.peaks_per_window > 0);
  if (!ms::peaks_sorted(s)) ms::sort_peaks(s);

  std::vector<bool> keep(s.peaks.size(), false);
  std::vector<std::size_t> order;
  for_each_window(s, config.window_da, [&](std::size_t begin, std::size_t end) {
    const std::size_t count = end - begin;
    if (count <= config.peaks_per_window) {
      for (std::size_t i = begin; i < end; ++i) keep[i] = true;
      return;
    }
    order.resize(count);
    for (std::size_t i = 0; i < count; ++i) order[i] = begin + i;
    std::nth_element(order.begin(),
                     order.begin() + static_cast<std::ptrdiff_t>(config.peaks_per_window - 1),
                     order.end(), [&](std::size_t a, std::size_t b) {
                       return s.peaks[a].intensity > s.peaks[b].intensity;
                     });
    for (std::size_t i = 0; i < config.peaks_per_window; ++i) keep[order[i]] = true;
  });

  std::size_t out = 0;
  for (std::size_t i = 0; i < s.peaks.size(); ++i) {
    if (keep[i]) s.peaks[out++] = s.peaks[i];
  }
  s.peaks.resize(out);
}

std::size_t window_topk_survivors(const ms::spectrum& s,
                                  const window_filter_config& config) {
  SPECHD_EXPECTS(config.window_da > 0.0);
  std::size_t survivors = 0;
  for_each_window(s, config.window_da, [&](std::size_t begin, std::size_t end) {
    survivors += std::min(end - begin, config.peaks_per_window);
  });
  return survivors;
}

}  // namespace spechd::preprocess
