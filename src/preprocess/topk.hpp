// Top-k peak selector (Sec. III-A).
//
// The FPGA design uses a bitonic sorting network ("the Top-k Selector,
// which employs a streamlined Bitonic sorting algorithm") because bitonic
// networks have data-independent, fully pipelineable compare-exchange
// schedules. We provide:
//   * bitonic_sort / bitonic_topk — a faithful software model of the
//     network (operates on power-of-two padded arrays, records the
//     comparator schedule so the FPGA cost model can count stages), and
//   * heap_topk — the conventional CPU implementation used as the
//     correctness baseline and in the CPU reference pipeline.
// Both keep the k highest-intensity peaks and restore m/z order.
#pragma once

#include <cstdint>
#include <vector>

#include "ms/spectrum.hpp"

namespace spechd::preprocess {

/// Keeps the k most intense peaks of `s` (all if size() <= k), re-sorted by
/// m/z, using a binary-heap partial selection.
void heap_topk(ms::spectrum& s, std::size_t k);

/// Same result computed through the bitonic-network model.
void bitonic_topk(ms::spectrum& s, std::size_t k);

/// Sorts `values` descending with a bitonic network (power-of-two padding
/// with -inf sentinels). Exposed for tests and the FPGA cost model.
void bitonic_sort_descending(std::vector<float>& values);

/// Comparator/stage counts for a bitonic sort of n (padded) elements; used
/// by the FPGA cost model to derive cycle counts.
struct bitonic_stats {
  std::size_t padded_n = 0;     ///< next power of two >= n
  std::size_t stages = 0;       ///< log2(n) * (log2(n)+1) / 2
  std::size_t comparators = 0;  ///< padded_n/2 per stage
};
bitonic_stats bitonic_network_stats(std::size_t n) noexcept;

}  // namespace spechd::preprocess
