// Window-based peak picking.
//
// The global top-k selector (Sec. III-A) can starve low-m/z fragment
// series when a few dominant peaks absorb the budget. The standard remedy
// (used by msCRUSH and many search engines) keeps the top `peaks_per_window`
// peaks in every `window_da`-wide m/z window instead — preserving coverage
// across the fragment range at a similar total budget. Provided as an
// alternative selector for the preprocessing pipeline and the ablation
// benches.
#pragma once

#include "ms/spectrum.hpp"

namespace spechd::preprocess {

struct window_filter_config {
  double window_da = 100.0;          ///< m/z window width
  std::size_t peaks_per_window = 6;  ///< survivors per window
};

/// Keeps the strongest `peaks_per_window` peaks in each window; m/z order
/// is preserved.
void window_topk(ms::spectrum& s, const window_filter_config& config);

/// Number of peaks that would survive (for budget planning, no copy).
std::size_t window_topk_survivors(const ms::spectrum& s, const window_filter_config& config);

}  // namespace spechd::preprocess
