#include "preprocess/normalize.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace spechd::preprocess {

void normalize_spectrum(ms::spectrum& s, const normalize_config& config) {
  switch (config.scaling) {
    case intensity_scaling::none:
      break;
    case intensity_scaling::sqrt:
      for (auto& p : s.peaks) p.intensity = std::sqrt(p.intensity);
      break;
    case intensity_scaling::rank: {
      // Rank transform: the weakest peak gets 1, the strongest gets n.
      std::vector<std::size_t> order(s.peaks.size());
      std::iota(order.begin(), order.end(), std::size_t{0});
      std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return s.peaks[a].intensity < s.peaks[b].intensity;
      });
      std::vector<float> ranks(s.peaks.size());
      for (std::size_t r = 0; r < order.size(); ++r) {
        ranks[order[r]] = static_cast<float>(r + 1);
      }
      for (std::size_t i = 0; i < s.peaks.size(); ++i) s.peaks[i].intensity = ranks[i];
      break;
    }
  }

  if (config.unit_norm) {
    double norm_sq = 0.0;
    for (const auto& p : s.peaks) {
      norm_sq += static_cast<double>(p.intensity) * p.intensity;
    }
    if (norm_sq > 0.0) {
      const auto inv = static_cast<float>(1.0 / std::sqrt(norm_sq));
      for (auto& p : s.peaks) p.intensity *= inv;
    }
  }
}

void normalize_spectra(std::vector<ms::spectrum>& spectra, const normalize_config& config) {
  for (auto& s : spectra) normalize_spectrum(s, config);
}

}  // namespace spechd::preprocess
