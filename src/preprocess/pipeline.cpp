#include "preprocess/pipeline.hpp"

namespace spechd::preprocess {

preprocessed_batch run_preprocessing(std::vector<ms::spectrum> spectra,
                                     const preprocess_config& config) {
  preprocessed_batch out;
  out.input_count = spectra.size();
  for (const auto& s : spectra) out.total_peaks_before += s.size();

  // The filter drops junk spectra entirely; survivors keep their original
  // index via the order-preserving erase + a parallel index map.
  std::vector<std::uint32_t> survivor_index;
  survivor_index.reserve(spectra.size());
  {
    std::vector<ms::spectrum> kept;
    kept.reserve(spectra.size());
    for (std::uint32_t i = 0; i < spectra.size(); ++i) {
      ms::spectrum& s = spectra[i];
      if (filter_spectrum(s, config.filter)) {
        survivor_index.push_back(i);
        kept.push_back(std::move(s));
      }
    }
    out.dropped = spectra.size() - kept.size();
    spectra = std::move(kept);
  }

  for (auto& s : spectra) {
    switch (config.peak_selector) {
      case selector::heap_topk:
        heap_topk(s, config.top_k);
        break;
      case selector::bitonic_topk:
        bitonic_topk(s, config.top_k);
        break;
      case selector::window_topk:
        window_topk(s, config.window);
        break;
    }
    normalize_spectrum(s, config.normalize);
    out.total_peaks_after += s.size();
  }

  out.spectra.reserve(spectra.size());
  for (std::size_t i = 0; i < spectra.size(); ++i) {
    out.spectra.push_back(
        quantize_spectrum(spectra[i], survivor_index[i], config.quantize));
  }
  out.buckets = bucket_spectra(out.spectra, config.bucketing);
  return out;
}

}  // namespace spechd::preprocess
