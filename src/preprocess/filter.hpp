// Spectra Filter module (Sec. III-A).
//
// "the Spectra Filter module stands out by efficiently filtering out peaks
//  related to the precursor ion or with intensities less than 1% of the
//  base peak".
//
// We implement both rules plus the standard acquisition-window clamp used
// by clustering tools (falcon, HyperSpec): fragments outside
// [mz_min, mz_max] are discarded.
#pragma once

#include "ms/spectrum.hpp"

namespace spechd::preprocess {

struct filter_config {
  double precursor_tolerance_da = 1.5;   ///< window around precursor (and its
                                         ///< charge-reduced species) to remove
  double min_intensity_fraction = 0.01;  ///< "less than 1% of the base peak"
  double mz_min = 101.0;                 ///< acquisition window low edge
  double mz_max = 1905.0;                ///< acquisition window high edge
  std::size_t min_peaks = 5;             ///< spectra with fewer peaks after
                                         ///< filtering are rejected as junk
};

/// Applies the filter in place; returns false if the spectrum should be
/// dropped (too few informative peaks left).
bool filter_spectrum(ms::spectrum& s, const filter_config& config);

/// Filters a batch, dropping rejected spectra. Returns number dropped.
std::size_t filter_spectra(std::vector<ms::spectrum>& spectra, const filter_config& config);

}  // namespace spechd::preprocess
