// The complete preprocessing pipeline: filter -> top-k -> normalise ->
// quantise -> bucket, matching the Sec. III-A module chain
// (Spectra Filter, Top-k Selector, Scale and Normalization).
#pragma once

#include <vector>

#include "preprocess/bucket.hpp"
#include "preprocess/filter.hpp"
#include "preprocess/normalize.hpp"
#include "preprocess/quantize.hpp"
#include "preprocess/topk.hpp"
#include "preprocess/window_filter.hpp"

namespace spechd::preprocess {

/// Peak-budget selection strategy.
enum class selector {
  heap_topk,     ///< global top-k via partial selection (CPU reference)
  bitonic_topk,  ///< global top-k via the FPGA's bitonic network model
  window_topk,   ///< per-m/z-window top-n (coverage-preserving variant)
};

struct preprocess_config {
  filter_config filter;
  std::size_t top_k = 50;  ///< peaks kept per spectrum (HyperSpec default)
  selector peak_selector = selector::heap_topk;
  window_filter_config window;  ///< used when peak_selector == window_topk
  normalize_config normalize;
  quantize_config quantize;
  bucket_config bucketing;
};

/// Result of preprocessing a spectrum batch.
struct preprocessed_batch {
  std::vector<quantized_spectrum> spectra;  ///< survivors, quantised
  std::vector<bucket> buckets;              ///< partition of `spectra`
  std::size_t dropped = 0;                  ///< spectra rejected by the filter
  std::size_t input_count = 0;
  std::size_t total_peaks_before = 0;       ///< for compression accounting
  std::size_t total_peaks_after = 0;
};

/// Runs the full chain. The input batch is copied (callers typically keep
/// the raw spectra for consensus output and identification).
preprocessed_batch run_preprocessing(std::vector<ms::spectrum> spectra,
                                     const preprocess_config& config);

}  // namespace spechd::preprocess
